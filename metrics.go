package lclgrid

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// MetricsObserver is an Observer that aggregates engine events — request
// start/end, plan and strategy execution, SAT syntheses, cache traffic
// and Θ(n) fallbacks — into counters and latency histograms, and renders
// them in the Prometheus text exposition format (version 0.0.4) with no
// external dependencies. It is the metrics backend of the HTTP serving
// subsystem: install one on the engine with
//
//	m := lclgrid.NewMetricsObserver()
//	eng := lclgrid.NewEngine(lclgrid.WithObserver(m))
//	srv := lclgrid.NewServer(eng, lclgrid.WithMetricsObserver(m))
//
// and GET /metrics scrapes it. The HTTP-level series (request counts by
// path and status, in-flight gauge, admission rejections, handler
// latency) are recorded by the Server; the engine-level series flow in
// through the Observer callbacks, so one MetricsObserver shared between
// the two layers tells the whole story of a served request.
//
// All methods are safe for concurrent use; observation is a handful of
// atomic adds (labelled series take a mutex), cheap enough for the
// engine's synchronous observer path. WritePrometheus takes a
// best-effort snapshot: like CacheStats, counters scraped while requests
// are in flight are individually exact but not a single consistent cut.
type MetricsObserver struct {
	// Engine-level series, fed by the Observer callbacks.
	requests         atomic.Uint64
	requestErrors    atomic.Uint64
	requestsInflight atomic.Int64
	requestSeconds   *histogram
	plans            atomic.Uint64
	strategyRuns     labeledCounter
	strategyErrors   labeledCounter
	syntheses        atomic.Uint64
	synthesisErrors  atomic.Uint64
	synthesisAborts  atomic.Uint64
	synthesisSeconds *histogram
	cacheHits        atomic.Uint64
	cacheMisses      atomic.Uint64
	cacheEvictions   atomic.Uint64
	fallbacks        atomic.Uint64

	// Windowed-labeling series, fed by the WindowObserver callbacks
	// (LabelWindow and ExportGrid; exports count once with cumulative
	// stats).
	labelRequests    atomic.Uint64
	labelErrors      atomic.Uint64
	labelWindowNodes atomic.Uint64
	labelAnchorNodes atomic.Uint64
	labelHaloNodes   atomic.Uint64
	labelSeconds     *histogram

	// HTTP-level series, fed by the Server.
	httpInflight  atomic.Int64
	httpThrottled atomic.Uint64
	httpRequests  labeledCounter
	httpSeconds   labeledHistograms

	// Remote-cache series, fed by a RemoteCache's observer hook
	// (WithRemoteObserver).
	remoteOps      labeledCounter
	remoteSeconds  labeledHistograms
	remoteDegraded atomic.Uint64

	// cacheEntries, when set, reports the live entry count of the
	// engine's synthesis cache (SetCacheEntriesFunc).
	cacheEntries atomic.Pointer[func() int]

	// Gateway series, fed by a Gateway.
	gatewayRequests labeledCounter
	gatewayRetries  atomic.Uint64
	gatewayErrors   atomic.Uint64

	// traceStats, when set, reports the trace ring's lifetime
	// added/dropped counts (SetTraceStatsFunc).
	traceStats atomic.Pointer[func() (uint64, uint64)]

	// buildInfo, when set, renders the lclgrid_build_info gauge
	// (SetBuildInfo): [version, revision].
	buildInfo atomic.Pointer[[2]string]
}

var (
	_ Observer       = (*MetricsObserver)(nil)
	_ WindowObserver = (*MetricsObserver)(nil)
)

// NewMetricsObserver returns a ready-to-use metrics aggregator.
func NewMetricsObserver() *MetricsObserver {
	return &MetricsObserver{
		requestSeconds:   newHistogram(),
		synthesisSeconds: newHistogram(),
		labelSeconds:     newHistogram(),
	}
}

// --- Observer implementation ------------------------------------------------

func (m *MetricsObserver) RequestStart(SolveRequest) {
	m.requests.Add(1)
	m.requestsInflight.Add(1)
}

func (m *MetricsObserver) RequestEnd(_ SolveRequest, res *Result, err error) {
	m.requestsInflight.Add(-1)
	if err != nil {
		m.requestErrors.Add(1)
	}
	// Result.Elapsed is the engine-stamped wall clock of the request;
	// error-only completions carry no duration and are counted above.
	if res != nil {
		m.requestSeconds.observe(res.Elapsed)
	}
}

func (m *MetricsObserver) SynthesisStart(SynthKey) { m.syntheses.Add(1) }

func (m *MetricsObserver) SynthesisEnd(_ SynthKey, elapsed time.Duration, err error) {
	m.synthesisSeconds.observe(elapsed)
	if err != nil {
		m.synthesisErrors.Add(1)
		if IsContextError(err) {
			m.synthesisAborts.Add(1)
		}
	}
}

func (m *MetricsObserver) CacheHit(SynthKey)            { m.cacheHits.Add(1) }
func (m *MetricsObserver) CacheMiss(SynthKey)           { m.cacheMisses.Add(1) }
func (m *MetricsObserver) CacheEvict(SynthKey)          { m.cacheEvictions.Add(1) }
func (m *MetricsObserver) Fallback(SolveRequest, error) { m.fallbacks.Add(1) }

func (m *MetricsObserver) PlanBuilt(SolveRequest, *Plan) { m.plans.Add(1) }

func (m *MetricsObserver) StrategyStart(_ SolveRequest, s *PlannedStrategy) {
	m.strategyRuns.add(kindLabel(s))
}

func (m *MetricsObserver) StrategyEnd(_ SolveRequest, s *PlannedStrategy, _ *Result, err error) {
	if err != nil {
		m.strategyErrors.add(kindLabel(s))
	}
}

func kindLabel(s *PlannedStrategy) string {
	return `kind="` + string(s.Kind) + `"`
}

// --- WindowObserver implementation ------------------------------------------

func (m *MetricsObserver) WindowStart(LabelRequest) { m.labelRequests.Add(1) }

func (m *MetricsObserver) WindowEnd(_ LabelRequest, stats WindowStats, err error, elapsed time.Duration) {
	if err != nil {
		m.labelErrors.Add(1)
	}
	m.labelWindowNodes.Add(uint64(stats.WindowNodes))
	m.labelAnchorNodes.Add(uint64(stats.AnchorNodes))
	m.labelHaloNodes.Add(uint64(stats.HaloNodes))
	m.labelSeconds.observe(elapsed)
}

// --- RemoteCacheObserver implementation ---------------------------------------

// RemoteCacheOp records one remote-cache interaction
// (lclgrid_remote_cache_ops_total and the per-op latency histogram).
func (m *MetricsObserver) RemoteCacheOp(op, outcome string, elapsed time.Duration) {
	m.remoteOps.add(`op="` + op + `",outcome="` + outcome + `"`)
	m.remoteSeconds.observe(`op="`+op+`"`, elapsed)
}

// RemoteCacheDegraded records a fall-back to uncoordinated local
// synthesis (lclgrid_remote_cache_degraded_total) — the series to alert
// on when the shared cache backend is sick.
func (m *MetricsObserver) RemoteCacheDegraded() { m.remoteDegraded.Add(1) }

// SetCacheEntriesFunc installs the live source of the
// lclgrid_cache_entries gauge — typically
//
//	m.SetCacheEntriesFunc(func() int { return eng.CacheStats().Entries })
//
// (`lclgrid serve` wires this automatically). Without it the gauge is
// omitted from the rendering; a constant 0 would read as an empty
// cache, not an unplumbed one.
func (m *MetricsObserver) SetCacheEntriesFunc(fn func() int) {
	if fn == nil {
		m.cacheEntries.Store(nil)
		return
	}
	m.cacheEntries.Store(&fn)
}

// SetTraceStatsFunc installs the live source of the
// lclgrid_traces_total / lclgrid_traces_dropped_total counters —
// typically a TraceBuffer's Stats method:
//
//	m.SetTraceStatsFunc(buf.Stats)
//
// Without it the series are omitted (tracing is off, not idle).
func (m *MetricsObserver) SetTraceStatsFunc(fn func() (added, dropped uint64)) {
	if fn == nil {
		m.traceStats.Store(nil)
		return
	}
	m.traceStats.Store(&fn)
}

// SetBuildInfo installs the lclgrid_build_info{revision,version} gauge —
// the binary identity every scrape carries, so a dashboard can correlate
// a metrics regression with the deploy that shipped it. Empty fields
// render as "unknown"; without the call the gauge is omitted.
func (m *MetricsObserver) SetBuildInfo(version, revision string) {
	if version == "" {
		version = "unknown"
	}
	if revision == "" {
		revision = "unknown"
	}
	m.buildInfo.Store(&[2]string{version, revision})
}

// --- Gateway recording hooks --------------------------------------------------

func (m *MetricsObserver) gatewayRequest(route, shard string, code int) {
	m.gatewayRequests.add(`route="` + route + `",shard="` + shard + `",code="` + strconv.Itoa(code) + `"`)
}
func (m *MetricsObserver) gatewayRetry() { m.gatewayRetries.Add(1) }
func (m *MetricsObserver) gatewayError() { m.gatewayErrors.Add(1) }

// --- Server-side recording hooks --------------------------------------------

func (m *MetricsObserver) httpStart()    { m.httpInflight.Add(1) }
func (m *MetricsObserver) httpRejected() { m.httpThrottled.Add(1) }

func (m *MetricsObserver) httpEnd(path string, code int, elapsed time.Duration) {
	m.httpInflight.Add(-1)
	m.httpRequests.add(`path="` + path + `",code="` + strconv.Itoa(code) + `"`)
	m.httpSeconds.observe(`path="`+path+`"`, elapsed)
}

// --- Rendering --------------------------------------------------------------

// WritePrometheus renders every series in the Prometheus text exposition
// format (content type `text/plain; version=0.0.4`). The output is
// deterministic: labelled series are sorted by label value, so repeated
// scrapes of a quiescent observer are byte-identical.
func (m *MetricsObserver) WritePrometheus(w io.Writer) error {
	mw := &metricsWriter{w: w}

	mw.counter("lclgrid_requests_total", "Solve requests accepted by the engine (batch and stream items included).", m.requests.Load())
	mw.counter("lclgrid_request_errors_total", "Solve requests that completed with an error.", m.requestErrors.Load())
	mw.gauge("lclgrid_requests_inflight", "Solve requests currently executing inside the engine.", m.requestsInflight.Load())
	mw.histogram("lclgrid_request_duration_seconds", "Engine-side wall-clock duration of completed solve requests.", "", m.requestSeconds)
	mw.counter("lclgrid_plans_total", "Plans built by the Planner (one per accepted request).", m.plans.Load())
	mw.labeled("lclgrid_strategy_runs_total", "Plan stages executed, by strategy kind.", "counter", &m.strategyRuns)
	mw.labeled("lclgrid_strategy_errors_total", "Plan stages that failed, by strategy kind.", "counter", &m.strategyErrors)
	mw.counter("lclgrid_syntheses_total", "SAT syntheses started (cache misses elected to run).", m.syntheses.Load())
	mw.counter("lclgrid_synthesis_errors_total", "Syntheses that returned an error (UNSAT proofs and aborts included).", m.synthesisErrors.Load())
	mw.counter("lclgrid_synthesis_aborts_total", "Syntheses aborted by context cancellation (race losers included).", m.synthesisAborts.Load())
	mw.histogram("lclgrid_synthesis_duration_seconds", "Wall-clock duration of SAT syntheses, aborted ones included.", "", m.synthesisSeconds)
	mw.counter("lclgrid_cache_hits_total", "Synthesis lookups served from the cache (coalesced waiters included).", m.cacheHits.Load())
	mw.counter("lclgrid_cache_misses_total", "Synthesis lookups that found nothing and started a synthesis.", m.cacheMisses.Load())
	mw.counter("lclgrid_cache_evictions_total", "Cache entries removed by Evict or a capacity bound.", m.cacheEvictions.Load())
	if fn := m.cacheEntries.Load(); fn != nil {
		mw.gauge("lclgrid_cache_entries", "Entries resident in the synthesis cache.", int64((*fn)()))
	}
	mw.counter("lclgrid_fallbacks_total", "Requests redirected to the Θ(n) baseline by a too-small torus.", m.fallbacks.Load())

	mw.counter("lclgrid_label_requests_total", "Windowed label requests accepted (streaming exports count once).", m.labelRequests.Load())
	mw.counter("lclgrid_label_request_errors_total", "Windowed label requests that completed with an error.", m.labelErrors.Load())
	mw.counter("lclgrid_label_window_nodes_total", "Labels produced by windowed evaluation.", m.labelWindowNodes.Load())
	mw.counter("lclgrid_label_anchor_nodes_total", "Anchor-membership evaluations performed by windowed evaluation (window + halo work).", m.labelAnchorNodes.Load())
	mw.counter("lclgrid_label_halo_nodes_total", "Anchor-membership evaluations outside the requested windows (the halo overhead).", m.labelHaloNodes.Load())
	mw.histogram("lclgrid_label_duration_seconds", "Wall-clock duration of windowed label requests.", "", m.labelSeconds)

	mw.labeled("lclgrid_remote_cache_ops_total", "Remote synthesis-cache interactions, by protocol op and outcome.", "counter", &m.remoteOps)
	mw.labeledHistograms("lclgrid_remote_cache_op_duration_seconds", "Remote synthesis-cache interaction latency, by protocol op.", &m.remoteSeconds)
	mw.counter("lclgrid_remote_cache_degraded_total", "Cluster-coordination give-ups that fell back to uncoordinated local synthesis.", m.remoteDegraded.Load())

	mw.counter("lclgrid_http_throttled_total", "HTTP requests rejected with 429 by the in-flight admission bound.", m.httpThrottled.Load())
	mw.gauge("lclgrid_http_requests_inflight", "HTTP requests currently being handled.", m.httpInflight.Load())
	mw.labeled("lclgrid_http_requests_total", "HTTP requests served, by path and status code.", "counter", &m.httpRequests)
	mw.labeledHistograms("lclgrid_http_request_duration_seconds", "HTTP handler wall-clock duration, by path.", &m.httpSeconds)

	mw.labeled("lclgrid_gateway_requests_total", "Requests the gateway proxied, by route, shard and upstream status.", "counter", &m.gatewayRequests)
	mw.counter("lclgrid_gateway_retries_total", "Idempotent requests retried on the next ring replica after a shard failure.", m.gatewayRetries.Load())
	mw.counter("lclgrid_gateway_errors_total", "Gateway requests that exhausted every replica for their key.", m.gatewayErrors.Load())

	if fn := m.traceStats.Load(); fn != nil {
		added, dropped := (*fn)()
		mw.counter("lclgrid_traces_total", "Completed traces deposited in the /debug/traces ring.", added)
		mw.counter("lclgrid_traces_dropped_total", "Traces evicted from the ring by newer ones.", dropped)
	}
	if bi := m.buildInfo.Load(); bi != nil {
		mw.header("lclgrid_build_info", "Build identity of the running binary; always 1.", "gauge")
		mw.printf("lclgrid_build_info{revision=%q,version=%q} 1\n", bi[1], bi[0])
	}

	return mw.err
}

// metricsWriter accumulates the first write error so the render methods
// can be chained without per-line error plumbing.
type metricsWriter struct {
	w   io.Writer
	err error
}

func (mw *metricsWriter) printf(format string, args ...any) {
	if mw.err != nil {
		return
	}
	_, mw.err = fmt.Fprintf(mw.w, format, args...)
}

func (mw *metricsWriter) header(name, help, typ string) {
	mw.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (mw *metricsWriter) counter(name, help string, v uint64) {
	mw.header(name, help, "counter")
	mw.printf("%s %d\n", name, v)
}

func (mw *metricsWriter) gauge(name, help string, v int64) {
	mw.header(name, help, "gauge")
	mw.printf("%s %d\n", name, v)
}

func (mw *metricsWriter) labeled(name, help, typ string, c *labeledCounter) {
	mw.header(name, help, typ)
	for _, s := range c.snapshot() {
		mw.printf("%s{%s} %d\n", name, s.labels, s.value)
	}
}

func (mw *metricsWriter) histogram(name, help, labels string, h *histogram) {
	mw.header(name, help, "histogram")
	mw.histogramSeries(name, labels, h)
}

func (mw *metricsWriter) histogramSeries(name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, ub := range durationBuckets {
		cum += h.buckets[i].Load()
		mw.printf("%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatFloat(ub), cum)
	}
	cum += h.overflow.Load()
	mw.printf("%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		mw.printf("%s_sum %s\n", name, formatFloat(h.sumSeconds()))
		mw.printf("%s_count %d\n", name, cum)
	} else {
		mw.printf("%s_sum{%s} %s\n", name, labels, formatFloat(h.sumSeconds()))
		mw.printf("%s_count{%s} %d\n", name, labels, cum)
	}
}

func (mw *metricsWriter) labeledHistograms(name, help string, lh *labeledHistograms) {
	mw.header(name, help, "histogram")
	for _, s := range lh.snapshot() {
		mw.histogramSeries(name, s.labels, s.h)
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// --- Histograms -------------------------------------------------------------

// durationBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache hits to minute-scale cold syntheses.
var durationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram over durationBuckets.
// Buckets hold per-bucket (non-cumulative) counts; rendering accumulates
// them into the cumulative form Prometheus expects. The sum is kept in
// integer nanoseconds so observation needs no atomic float tricks.
type histogram struct {
	buckets  []atomic.Uint64
	overflow atomic.Uint64
	sumNanos atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{buckets: make([]atomic.Uint64, len(durationBuckets))}
}

func (h *histogram) observe(d time.Duration) {
	h.sumNanos.Add(int64(d))
	secs := d.Seconds()
	for i, ub := range durationBuckets {
		if secs <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.overflow.Add(1)
}

func (h *histogram) sumSeconds() float64 {
	return float64(h.sumNanos.Load()) / float64(time.Second)
}

// --- Labelled series --------------------------------------------------------

// labeledCounter is a counter family keyed by a rendered label string
// (`kind="synthesis"`, `path="/v1/solve",code="200"`). The label sets the
// server and engine produce are small and bounded, so a mutex-guarded map
// is plenty. The zero value is ready to use.
type labeledCounter struct {
	mu sync.Mutex
	m  map[string]uint64
}

func (c *labeledCounter) add(labels string) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]uint64)
	}
	c.m[labels]++
	c.mu.Unlock()
}

type labeledSample struct {
	labels string
	value  uint64
}

func (c *labeledCounter) snapshot() []labeledSample {
	c.mu.Lock()
	out := make([]labeledSample, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, labeledSample{labels: k, value: v})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}

// labeledHistograms is a histogram family keyed by a rendered label
// string. The zero value is ready to use.
type labeledHistograms struct {
	mu sync.Mutex
	m  map[string]*histogram
}

func (lh *labeledHistograms) observe(labels string, d time.Duration) {
	lh.mu.Lock()
	if lh.m == nil {
		lh.m = make(map[string]*histogram)
	}
	h, ok := lh.m[labels]
	if !ok {
		h = newHistogram()
		lh.m[labels] = h
	}
	lh.mu.Unlock()
	h.observe(d)
}

type labeledHistogram struct {
	labels string
	h      *histogram
}

func (lh *labeledHistograms) snapshot() []labeledHistogram {
	lh.mu.Lock()
	out := make([]labeledHistogram, 0, len(lh.m))
	for k, h := range lh.m {
		out = append(out, labeledHistogram{labels: k, h: h})
	}
	lh.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labels < out[j].labels })
	return out
}
