package lclgrid

import (
	"fmt"
)

// SolveRequest is the unit of service of the request/response API: "solve
// this LCL problem on this torus with these knobs". A request names a
// problem either by registry key (Key) or inline (Problem, programmatic
// callers only), a torus shape, an identifier assignment and the solver
// options. The zero values of the option fields select the same defaults
// as a bare solver call: verification on, MaxPower 3, MaxSteps 100.
//
// SolveRequest is JSON round-trippable, which is what the `lclgrid batch`
// JSONL front end decodes, e.g.:
//
//	{"key":"4col","n":32,"seed":7}
//	{"key":"orient134","sides":[16,20],"power":1}
//
// Problem and Torus are programmatic-only fields (function-valued and
// graph-valued respectively) and are excluded from the wire form.
type SolveRequest struct {
	// Key selects a registered problem (see Registry.Lookup). Exactly one
	// of Key, Problem and ProblemDef must be set.
	Key string `json:"key,omitempty"`
	// Problem supplies an inline, possibly unregistered SFT problem; the
	// engine classifies it with the cached one-sided oracle and picks the
	// best applicable solver (constant fill / synthesis / global brute
	// force).
	Problem *Problem `json:"-"`
	// ProblemDef supplies an inline problem in the wire-form table DSL
	// (see ProblemDef); it is the JSON-settable counterpart of Problem
	// and follows the same oracle-classified planning path. Exactly one
	// of Key, Problem and ProblemDef may be set.
	ProblemDef *ProblemDef `json:"problem_def,omitempty"`

	// Torus is an explicit torus; when nil the shape is built from Sides
	// (general) or N (the n×n square), in that order. When all three are
	// unset, a Key request defaults to the smallest torus the registered
	// solver supports; an explicit shape is honoured even when it violates
	// the spec's side hints (that is how unsolvability certificates are
	// produced).
	Torus *Torus `json:"-"`
	Sides []int  `json:"sides,omitempty"`
	N     int    `json:"n,omitempty"`

	// IDs is the identifier assignment; nil selects sequential
	// identifiers, unless Seed is non-zero, which selects the
	// deterministic pseudorandom assignment PermutedIDs(n, Seed).
	IDs  []int `json:"ids,omitempty"`
	Seed int64 `json:"seed,omitempty"`

	// NoVerify skips checking the labelling against the problem
	// definition (verification is on by default).
	NoVerify bool `json:"no_verify,omitempty"`
	// Power forces the synthesis path with this anchor power; H and W
	// override the anchor window shape (0 selects DefaultWindow(Power)).
	Power int `json:"power,omitempty"`
	H     int `json:"h,omitempty"`
	W     int `json:"w,omitempty"`
	// MaxPower bounds the powers tried when classifying an inline
	// problem (0 selects the default 3, the paper's largest).
	MaxPower int `json:"max_power,omitempty"`
	// Ell fixes the §8 ball parameter (0 retries automatically).
	Ell int `json:"ell,omitempty"`
	// EdgeParams override the §10 constants for edge-colouring solvers
	// (the zero value selects the paper's defaults, which need torus
	// sides above 679 for d = 2).
	EdgeParams EdgeColorParams `json:"edge_params,omitzero"`
	// MaxSteps bounds the Turing-machine simulation of L_M solvers (0
	// selects the default 100).
	MaxSteps int `json:"max_steps,omitempty"`
}

// Wire guards. SolveRequests arrive straight off the network (`lclgrid
// batch` stdin, the /v1/solve and /v1/batch endpoints), so the shapes
// they imply must be bounded before anything is allocated: an unchecked
// {"n": 3100000000} overflows n² on 64-bit ints, and anything close
// allocates identifier and labelling slices of n² machine words. The
// caps are far above every instance the paper (or a tractable solver
// run) uses; programmatic callers that really want a bigger instance
// can construct the Torus themselves and drive a Solver adapter
// directly, bypassing the request layer.
const (
	// maxRequestNodes bounds the torus size reachable through N or Sides
	// (2² ... 1024² squares).
	maxRequestNodes = 1 << 20
	// maxRequestDims bounds the dimension count of Sides.
	maxRequestDims = 8
	// maxRequestPower bounds Power and MaxPower (the paper uses k ≤ 3).
	maxRequestPower = 16
	// maxRequestWindow bounds the H×W anchor window overrides (the paper
	// uses 7×5).
	maxRequestWindow = 64
	// maxRequestSteps bounds MaxSteps (the Turing-machine simulation
	// budget of L_M solvers).
	maxRequestSteps = 1 << 20
	// maxRequestEll bounds the §8 ball parameter (the solver needs
	// 4·ell+2 ≤ side, so anything beyond the side cap is dead weight).
	maxRequestEll = 1 << 10
	// maxRequestEdgeK bounds the §10 ball radius: the construction
	// enumerates (4K+1)^d ball offsets with no cancellation checkpoint,
	// so K must be capped before the solver runs (the paper uses K = 3).
	maxRequestEdgeK = 16
)

// Validate checks the wire-settable fields of the request against the
// request-layer bounds: exactly one problem source, positive and bounded
// torus shape, bounded identifier count, and non-negative, bounded
// option knobs. The Planner validates every request before resolving
// it, so a malformed or adversarial JSON document fails with a clean
// per-request error instead of an overflow or a giant allocation; wire
// front ends (the HTTP server, `lclgrid batch`) call it right after
// decoding to reject bad documents before any engine work.
func (r *SolveRequest) Validate() error {
	sources := 0
	for _, set := range []bool{r.Key != "", r.Problem != nil, r.ProblemDef != nil} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		return fmt.Errorf("lclgrid: request names %d problem sources; choose one of Key, Problem and ProblemDef", sources)
	case sources == 0:
		return fmt.Errorf("lclgrid: request names no problem (set Key, Problem or ProblemDef)")
	}
	if r.ProblemDef != nil {
		if err := r.ProblemDef.Validate(); err != nil {
			return err
		}
	}
	if r.N < 0 {
		return fmt.Errorf("lclgrid: torus side must be positive, got %d", r.N)
	}
	if r.N > 0 && (r.N > maxRequestNodes || r.N > maxRequestNodes/r.N) {
		return fmt.Errorf("lclgrid: torus side %d exceeds the request bound (%d nodes); construct the Torus directly for bigger instances", r.N, maxRequestNodes)
	}
	if len(r.Sides) > maxRequestDims {
		return fmt.Errorf("lclgrid: request has %d torus dimensions, the bound is %d", len(r.Sides), maxRequestDims)
	}
	nodes := 1
	for i, side := range r.Sides {
		if side < 1 {
			return fmt.Errorf("lclgrid: torus dimension %d has side %d < 1", i, side)
		}
		if side > maxRequestNodes/nodes {
			return fmt.Errorf("lclgrid: torus shape %v exceeds the request bound (%d nodes); construct the Torus directly for bigger instances", r.Sides, maxRequestNodes)
		}
		nodes *= side
	}
	if len(r.IDs) > maxRequestNodes {
		return fmt.Errorf("lclgrid: request has %d ids, the bound is %d", len(r.IDs), maxRequestNodes)
	}
	for name, v := range map[string]int{
		"power": r.Power, "h": r.H, "w": r.W,
		"max_power": r.MaxPower, "ell": r.Ell, "max_steps": r.MaxSteps,
	} {
		if v < 0 {
			// 0 means "unset, use the default" for every one of these
			// knobs, so only a negative value is malformed.
			return fmt.Errorf("lclgrid: request field %q must be positive when set, got %d", name, v)
		}
	}
	if r.Power > maxRequestPower || r.MaxPower > maxRequestPower {
		return fmt.Errorf("lclgrid: anchor power %d exceeds the request bound %d", max(r.Power, r.MaxPower), maxRequestPower)
	}
	if r.H > maxRequestWindow || r.W > maxRequestWindow {
		return fmt.Errorf("lclgrid: anchor window %dx%d exceeds the request bound %d", r.H, r.W, maxRequestWindow)
	}
	if r.MaxSteps > maxRequestSteps {
		return fmt.Errorf("lclgrid: max_steps %d exceeds the request bound %d", r.MaxSteps, maxRequestSteps)
	}
	if r.Ell > maxRequestEll {
		return fmt.Errorf("lclgrid: ell %d exceeds the request bound %d", r.Ell, maxRequestEll)
	}
	// The §10 constants are wire-settable too, and K feeds a ball
	// enumeration that grows like (4K+1)^d with no context checkpoint —
	// an unbounded K would let one request pin a CPU past any deadline.
	ep := r.EdgeParams
	for name, v := range map[string]int{
		"edge_params.K": ep.K, "edge_params.RowSpacing": ep.RowSpacing, "edge_params.MoveCap": ep.MoveCap,
	} {
		if v < 0 {
			return fmt.Errorf("lclgrid: request field %q must be positive when set, got %d", name, v)
		}
	}
	if ep.K > maxRequestEdgeK {
		return fmt.Errorf("lclgrid: edge_params.K %d exceeds the request bound %d", ep.K, maxRequestEdgeK)
	}
	if ep.RowSpacing > maxRequestNodes || ep.MoveCap > maxRequestNodes {
		return fmt.Errorf("lclgrid: edge_params spacing %d/%d exceeds the request bound %d", ep.RowSpacing, ep.MoveCap, maxRequestNodes)
	}
	return nil
}

// options resolves the request's knobs into the Options a solver adapter
// consumes.
func (r *SolveRequest) options() Options {
	o := buildOptions(nil)
	o.Verify = !r.NoVerify
	o.Power, o.H, o.W, o.Ell = r.Power, r.H, r.W, r.Ell
	o.EdgeParams = r.EdgeParams
	if r.MaxPower > 0 {
		o.MaxPower = r.MaxPower
	}
	if r.MaxSteps > 0 {
		o.MaxSteps = r.MaxSteps
	}
	return o
}

// torus resolves the request's torus shape; spec (nil for inline
// problems) supplies the default side when no shape is given.
func (r *SolveRequest) torus(spec *ProblemSpec) (*Torus, error) {
	switch {
	case r.Torus != nil:
		return r.Torus, nil
	case len(r.Sides) > 0:
		return NewTorus(r.Sides...)
	case r.N > 0:
		return Square(r.N), nil
	case r.N < 0:
		return nil, fmt.Errorf("lclgrid: torus side must be positive, got %d", r.N)
	case spec != nil:
		return Square(spec.SmallestSide()), nil
	}
	return nil, fmt.Errorf("lclgrid: request needs a torus shape (set N, Sides or Torus)")
}

// ids resolves the request's identifier assignment for the torus; nil
// means "let the solver fill sequential identifiers". An explicit IDs
// slice must cover the torus exactly — this is a wire-settable field, so
// a mismatch is a per-request error, never a panic deeper in a solver.
func (r *SolveRequest) ids(t *Torus) ([]int, error) {
	if r.IDs != nil {
		if len(r.IDs) != t.N() {
			return nil, fmt.Errorf("lclgrid: request has %d ids for a %d-node torus", len(r.IDs), t.N())
		}
		return r.IDs, nil
	}
	if r.Seed != 0 {
		return PermutedIDs(t.N(), r.Seed), nil
	}
	return nil, nil
}
