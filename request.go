package lclgrid

import (
	"fmt"
)

// SolveRequest is the unit of service of the request/response API: "solve
// this LCL problem on this torus with these knobs". A request names a
// problem either by registry key (Key) or inline (Problem, programmatic
// callers only), a torus shape, an identifier assignment and the solver
// options. The zero values of the option fields select the same defaults
// as a bare solver call: verification on, MaxPower 3, MaxSteps 100.
//
// SolveRequest is JSON round-trippable, which is what the `lclgrid batch`
// JSONL front end decodes, e.g.:
//
//	{"key":"4col","n":32,"seed":7}
//	{"key":"orient134","sides":[16,20],"power":1}
//
// Problem and Torus are programmatic-only fields (function-valued and
// graph-valued respectively) and are excluded from the wire form.
type SolveRequest struct {
	// Key selects a registered problem (see Registry.Lookup). Exactly one
	// of Key and Problem must be set.
	Key string `json:"key,omitempty"`
	// Problem supplies an inline, possibly unregistered SFT problem; the
	// engine classifies it with the cached one-sided oracle and picks the
	// best applicable solver (constant fill / synthesis / global brute
	// force).
	Problem *Problem `json:"-"`

	// Torus is an explicit torus; when nil the shape is built from Sides
	// (general) or N (the n×n square), in that order. When all three are
	// unset, a Key request defaults to the smallest torus the registered
	// solver supports; an explicit shape is honoured even when it violates
	// the spec's side hints (that is how unsolvability certificates are
	// produced).
	Torus *Torus `json:"-"`
	Sides []int  `json:"sides,omitempty"`
	N     int    `json:"n,omitempty"`

	// IDs is the identifier assignment; nil selects sequential
	// identifiers, unless Seed is non-zero, which selects the
	// deterministic pseudorandom assignment PermutedIDs(n, Seed).
	IDs  []int `json:"ids,omitempty"`
	Seed int64 `json:"seed,omitempty"`

	// NoVerify skips checking the labelling against the problem
	// definition (verification is on by default).
	NoVerify bool `json:"no_verify,omitempty"`
	// Power forces the synthesis path with this anchor power; H and W
	// override the anchor window shape (0 selects DefaultWindow(Power)).
	Power int `json:"power,omitempty"`
	H     int `json:"h,omitempty"`
	W     int `json:"w,omitempty"`
	// MaxPower bounds the powers tried when classifying an inline
	// problem (0 selects the default 3, the paper's largest).
	MaxPower int `json:"max_power,omitempty"`
	// Ell fixes the §8 ball parameter (0 retries automatically).
	Ell int `json:"ell,omitempty"`
	// EdgeParams override the §10 constants for edge-colouring solvers
	// (the zero value selects the paper's defaults, which need torus
	// sides above 679 for d = 2).
	EdgeParams EdgeColorParams `json:"edge_params,omitzero"`
	// MaxSteps bounds the Turing-machine simulation of L_M solvers (0
	// selects the default 100).
	MaxSteps int `json:"max_steps,omitempty"`
}

// options resolves the request's knobs into the Options a solver adapter
// consumes.
func (r *SolveRequest) options() Options {
	o := buildOptions(nil)
	o.Verify = !r.NoVerify
	o.Power, o.H, o.W, o.Ell = r.Power, r.H, r.W, r.Ell
	o.EdgeParams = r.EdgeParams
	if r.MaxPower > 0 {
		o.MaxPower = r.MaxPower
	}
	if r.MaxSteps > 0 {
		o.MaxSteps = r.MaxSteps
	}
	return o
}

// torus resolves the request's torus shape; spec (nil for inline
// problems) supplies the default side when no shape is given.
func (r *SolveRequest) torus(spec *ProblemSpec) (*Torus, error) {
	switch {
	case r.Torus != nil:
		return r.Torus, nil
	case len(r.Sides) > 0:
		return NewTorus(r.Sides...)
	case r.N > 0:
		return Square(r.N), nil
	case r.N < 0:
		return nil, fmt.Errorf("lclgrid: torus side must be positive, got %d", r.N)
	case spec != nil:
		return Square(spec.SmallestSide()), nil
	}
	return nil, fmt.Errorf("lclgrid: request needs a torus shape (set N, Sides or Torus)")
}

// ids resolves the request's identifier assignment for the torus; nil
// means "let the solver fill sequential identifiers". An explicit IDs
// slice must cover the torus exactly — this is a wire-settable field, so
// a mismatch is a per-request error, never a panic deeper in a solver.
func (r *SolveRequest) ids(t *Torus) ([]int, error) {
	if r.IDs != nil {
		if len(r.IDs) != t.N() {
			return nil, fmt.Errorf("lclgrid: request has %d ids for a %d-node torus", len(r.IDs), t.N())
		}
		return r.IDs, nil
	}
	if r.Seed != 0 {
		return PermutedIDs(t.N(), r.Seed), nil
	}
	return nil, nil
}
