package lclgrid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutable lease clock for cache-server tests: takeover
// semantics are tested by advancing time, not by sleeping through TTLs.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestCacheServerBlobProtocol drives the full blob lifecycle over the
// wire: store, probe, fetch, list, delete, and the rejection paths.
func TestCacheServerBlobProtocol(t *testing.T) {
	cs := NewCacheServer(nil)
	ts := httptest.NewServer(cs)
	defer ts.Close()

	const name = "deadbeef-k1-3x2"
	record := []byte(`{"key":{"fingerprint":"deadbeef","k":1,"h":3,"w":2}}`)

	// A miss is a 404 on GET and HEAD.
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/cache/"+name, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: %d", resp.StatusCode)
	}

	// PUT stores; GET returns the exact bytes; HEAD confirms existence.
	if resp, body := doReq(t, http.MethodPut, ts.URL+"/cache/"+name, record); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: %d %s", resp.StatusCode, body)
	}
	if resp, body := doReq(t, http.MethodGet, ts.URL+"/cache/"+name, nil); resp.StatusCode != http.StatusOK || !bytes.Equal(body, record) {
		t.Fatalf("GET after PUT: %d %q", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, http.MethodHead, ts.URL+"/cache/"+name, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD after PUT: %d", resp.StatusCode)
	}

	// /keys lists the stored names, sorted.
	doReq(t, http.MethodPut, ts.URL+"/cache/aaaa-k1-3x3", record)
	resp, body := doReq(t, http.MethodGet, ts.URL+"/keys", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /keys: %d", resp.StatusCode)
	}
	var names []string
	if err := json.Unmarshal(body, &names); err != nil {
		t.Fatalf("keys decode: %v (%s)", err, body)
	}
	if len(names) != 2 || names[0] != "aaaa-k1-3x3" || names[1] != name {
		t.Fatalf("keys = %v", names)
	}

	// DELETE removes; a second DELETE is a 404.
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/cache/"+name, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/cache/"+name, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: %d", resp.StatusCode)
	}

	// Names that could escape a directory store are rejected outright.
	for _, bad := range []string{"..%2F..%2Fetc", "UPPER", "a_b", strings.Repeat("a", 200)} {
		if resp, _ := doReq(t, http.MethodPut, ts.URL+"/cache/"+bad, record); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %q: %d, want 400", bad, resp.StatusCode)
		}
	}

	// Gets counts HEAD probes too (they ride the GET handler).
	st := cs.Stats()
	if st.Blobs != 1 || st.Puts != 2 || st.Deletes != 1 || st.Gets != 3 || st.GetHits != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCacheServerBlobSizeCap pins the PUT body cap: an oversized record
// is refused with 413 and not stored.
func TestCacheServerBlobSizeCap(t *testing.T) {
	cs := NewCacheServer(nil, WithMaxBlobBytes(64))
	ts := httptest.NewServer(cs)
	defer ts.Close()
	big := bytes.Repeat([]byte("x"), 128)
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/cache/aaaa-k1-3x3", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: %d, want 413", resp.StatusCode)
	}
	if st := cs.Stats(); st.Blobs != 0 || st.Puts != 0 {
		t.Errorf("oversized record was stored: %+v", st)
	}
}

// TestCacheServerLeaseProtocol drives the cluster-singleflight lease
// over the wire with an injected clock: grant, conflict, heartbeat,
// expiry takeover and release.
func TestCacheServerLeaseProtocol(t *testing.T) {
	clock := newFakeClock()
	cs := NewCacheServer(nil, withCacheClock(clock.Now))
	ts := httptest.NewServer(cs)
	defer ts.Close()

	lease := func(method, owner, ttl string) (*http.Response, leaseDoc) {
		u := fmt.Sprintf("%s/lease/aaaa-k1-3x3?owner=%s&ttl=%s", ts.URL, owner, ttl)
		resp, body := doReq(t, method, u, nil)
		var doc leaseDoc
		_ = json.Unmarshal(body, &doc)
		return resp, doc
	}

	// First acquire is granted; re-acquire by the same owner renews.
	if resp, doc := lease(http.MethodPost, "a", "10s"); resp.StatusCode != http.StatusOK || !doc.Granted {
		t.Fatalf("acquire: %d %+v", resp.StatusCode, doc)
	}
	if resp, _ := lease(http.MethodPost, "a", "10s"); resp.StatusCode != http.StatusOK {
		t.Fatalf("renewing acquire: %d", resp.StatusCode)
	}

	// Another owner conflicts and learns the holder and its remaining TTL.
	resp, doc := lease(http.MethodPost, "b", "10s")
	if resp.StatusCode != http.StatusConflict || doc.Owner != "a" {
		t.Fatalf("conflicting acquire: %d %+v", resp.StatusCode, doc)
	}
	if doc.TTLMillis <= 0 || doc.TTLMillis > 10_000 {
		t.Fatalf("conflict ttl_ms = %d", doc.TTLMillis)
	}

	// The holder heartbeats (204); the loser cannot (409).
	if resp, _ := lease(http.MethodPut, "a", "10s"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("holder heartbeat: %d", resp.StatusCode)
	}
	if resp, _ := lease(http.MethodPut, "b", "10s"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("loser heartbeat: %d", resp.StatusCode)
	}

	// The owner dies (no more heartbeats). Past the TTL, the next
	// acquire takes the lease over — the takeover the fleet relies on.
	clock.Advance(11 * time.Second)
	if resp, doc := lease(http.MethodPost, "b", "10s"); resp.StatusCode != http.StatusOK || !doc.Granted {
		t.Fatalf("takeover acquire: %d %+v", resp.StatusCode, doc)
	}
	if st := cs.Stats(); st.LeaseExpiries != 1 {
		t.Fatalf("lease expiries = %d, want 1 (stats %+v)", st.LeaseExpiries, st)
	}
	// The dead owner's late heartbeat learns it lost the election.
	if resp, _ := lease(http.MethodPut, "a", "10s"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("dead owner heartbeat: %d", resp.StatusCode)
	}

	// Release frees the key immediately; a release by a non-holder is a
	// harmless no-op.
	if resp, _ := lease(http.MethodDelete, "zzz", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("non-holder release: %d", resp.StatusCode)
	}
	if resp, _ := lease(http.MethodDelete, "b", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("release: %d", resp.StatusCode)
	}
	if resp, doc := lease(http.MethodPost, "a", "10s"); resp.StatusCode != http.StatusOK || !doc.Granted {
		t.Fatalf("acquire after release: %d %+v", resp.StatusCode, doc)
	}

	// A lease without an owner identity is rejected.
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/lease/aaaa-k1-3x3", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ownerless acquire: %d", resp.StatusCode)
	}
}

// TestDirBlobStoreSharesDiskCacheLayout: a directory warmed through an
// engine's disk cache serves the same records through a DirBlobStore —
// the promotion path from a single replica's cache to the fleet store.
func TestDirBlobStoreSharesDiskCacheLayout(t *testing.T) {
	dir := t.TempDir()
	p5 := VertexColoring(5, 2)
	eng := NewEngine(WithCacheDir(dir))
	if _, _, err := eng.Synthesize(context.Background(), p5, 1, 3, 2); err != nil {
		t.Fatal(err)
	}

	store, err := NewDirBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := SynthKey{Fingerprint: p5.Fingerprint(), K: 1, H: 3, W: 2}
	name := cacheKeyName(key)
	if name == "" {
		t.Fatal("no canonical name for the warmed key")
	}
	names, err := store.Keys()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("disk-cache record %q not visible to the blob store (keys %v)", name, names)
	}
	data, ok, err := store.Get(name)
	if err != nil || !ok {
		t.Fatalf("blob store get: ok=%v err=%v", ok, err)
	}
	val, err := decodeDiskRecord(data, key)
	if err != nil || val.Alg == nil {
		t.Fatalf("stored record does not decode: %v", err)
	}

	// And the reverse: a record Put through the store is read by a fresh
	// disk-cache engine with zero syntheses.
	eng2 := NewEngine(WithCacheDir(dir))
	if _, cached, err := eng2.Synthesize(context.Background(), p5, 1, 3, 2); err != nil || !cached {
		t.Fatalf("fresh engine over the store directory: cached=%v err=%v", cached, err)
	}
}
