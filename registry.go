package lclgrid

import (
	"fmt"
	"strings"
	"sync"

	"lclgrid/internal/core"
	"lclgrid/internal/lm"
	"lclgrid/internal/orient"
)

// ProblemSpec is one registry entry: a problem constructor, the paper's
// classification of it, and a declarative plan hint telling the Planner
// how the problem is served. Specs are what SolveRequest keys — from the
// CLI, the `lclgrid batch` JSONL front end, the experiments and
// downstream services — resolve against.
//
// Exactly one of the five plan hints must be set:
//
//   - Constant: the problem is O(1); a constant label fills the grid.
//   - Attempts: normal-form synthesis; the listed (k, h, w) shapes are
//     raced concurrently until one admits a lookup table, with the Θ(n)
//     baseline as the automatic fallback when the torus is below the
//     normal form's minimum side.
//   - Direct: a hand-written algorithm adapter (§8, §10, the §6 L_M
//     construction, or a caller-supplied Solver). Direct specs get no
//     automatic baseline fallback — their failure modes are their own.
//   - Baseline: the Θ(n) gather-and-solve brute force is the primary
//     (and only) strategy.
//   - Oracle: the class is unknown up front (user-defined problems);
//     the cached one-sided oracle classifies at plan time, synthesis
//     serves when a normal form exists and the Θ(n) baseline otherwise.
//
// Declarative hints are what make `lclgrid explain` possible: the
// Planner can rank and print the strategies for a request without
// constructing (or running) any solver.
type ProblemSpec struct {
	// Key is the registry lookup key ("4col", "mis", "lm:halt", ...).
	Key string
	// Name is the display name of the problem.
	Name string
	// Dims is the grid dimension the spec is registered for.
	Dims int
	// NumLabels is the SFT alphabet size (0 for non-SFT problems).
	NumLabels int
	// Class is the complexity class established by the paper
	// (ClassUnknown when the one-sided oracle has not resolved it).
	Class Class
	// MinSide is the smallest torus side the default solver supports;
	// SideModulus, when non-zero, additionally requires sides to be
	// multiples of it.
	MinSide     int
	SideModulus int
	// Problem constructs the SFT form; nil for problems without an int
	// SFT encoding here (the L_M gadget). Required by the Constant,
	// Attempts and Baseline hints.
	Problem func() *Problem

	// Constant marks an O(1) problem served by constant fill.
	Constant bool
	// Attempts are the normal-form shapes synthesis tries; with more
	// than one shape the engine races them concurrently and the first
	// lookup table wins.
	Attempts []SynthAttempt
	// Direct constructs a direct-algorithm solver (context-aware; see
	// the Solver interface); the engine is passed so adapters that want
	// cached synthesis can use it.
	Direct func(e *Engine) Solver
	// Baseline marks a problem served by the Θ(n) brute force.
	Baseline bool
	// Oracle marks a problem classified at plan time by the cached
	// one-sided oracle — the hint user-defined problems register with.
	Oracle bool

	// Source names where the spec came from: "" or SourceBuiltin for the
	// catalogue, SourceFamily for parameterised-family resolutions,
	// SourceUser for DSL-registered problems.
	Source string

	// Verify checks a Result against the problem definition (used when
	// Labels is nil and the SFT Verify does not apply).
	Verify func(t *Torus, res *Result) error
}

// Spec sources, rendered by `lclgrid list -v` and GET /v1/problems.
const (
	SourceBuiltin = "builtin"
	SourceFamily  = "family"
	SourceUser    = "user"
)

// SourceLabel returns the spec's source, defaulting to SourceBuiltin —
// the catalogue specs predate the field and leave it empty.
func (s *ProblemSpec) SourceLabel() string {
	if s.Source == "" {
		return SourceBuiltin
	}
	return s.Source
}

// HintSummary returns a one-line human description of the spec's plan
// hint ("synthesis k=1 3×3 (side ≥ 12) | k=2 5×5 (side ≥ 20)", "constant
// fill", ...); empty when the spec carries no hint. `lclgrid list -v`
// prints it so plans from `lclgrid explain` are cross-checkable against
// the registry.
func (s *ProblemSpec) HintSummary() string {
	switch {
	case s.Constant:
		return "constant fill"
	case len(s.Attempts) > 0:
		parts := make([]string, len(s.Attempts))
		for i, a := range s.Attempts {
			parts[i] = fmt.Sprintf("k=%d %d×%d (side ≥ %d)", a.K, a.H, a.W, core.MinTorusSideFor(a.K, a.H, a.W))
		}
		return "synthesis " + strings.Join(parts, " | ") + ", Θ(n) fallback"
	case s.Direct != nil:
		return "direct algorithm"
	case s.Baseline:
		return "Θ(n) brute force"
	case s.Oracle:
		return "oracle-classified: synthesis when a normal form exists, Θ(n) fallback"
	}
	return ""
}

// StrategySummary is HintSummary with direct specs named through their
// constructed solver ("direct: §10 direct edge colouring") — the form
// `lclgrid list -v` and the GET /v1/problems catalogue both render, so
// the two surfaces cannot drift.
func (s *ProblemSpec) StrategySummary(e *Engine) string {
	if s.Direct != nil {
		return "direct: " + s.Direct(e).Name()
	}
	return s.HintSummary()
}

// SmallestSide returns the smallest torus side the spec's default
// solver supports: at least MinSide (floored at 4, the smallest torus
// every solver handles), rounded up to the side modulus.
func (s *ProblemSpec) SmallestSide() int {
	side := s.MinSide
	if side < 4 {
		side = 4
	}
	if s.SideModulus > 1 && side%s.SideModulus != 0 {
		side += s.SideModulus - side%s.SideModulus
	}
	return side
}

// CheckResult verifies a Result against the spec's problem definition.
func (s *ProblemSpec) CheckResult(t *Torus, res *Result) error {
	if s.Verify != nil {
		return s.Verify(t, res)
	}
	if s.Problem == nil {
		return fmt.Errorf("lclgrid: spec %q has no verifier", s.Key)
	}
	return s.Problem().Verify(t, res.Labels)
}

// Registry maps problem keys to specs. Beyond the registered keys it
// resolves three parameterised families — "<k>col", "<k>edgecol" and
// "orient<digits>" — so every problem the old CLI name switch accepted
// remains addressable. Registries are safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	specs map[string]*ProblemSpec
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]*ProblemSpec)}
}

// Register adds a spec; re-registering a key replaces the entry. The
// spec must carry a key and exactly one plan hint (Constant, Attempts,
// Direct, Baseline or Oracle); every hint but Direct needs a Problem
// constructor for the planner to build its solvers from.
func (r *Registry) Register(spec *ProblemSpec) error {
	if spec.Key == "" {
		return fmt.Errorf("lclgrid: spec needs a key")
	}
	hints := 0
	for _, set := range []bool{spec.Constant, len(spec.Attempts) > 0, spec.Direct != nil, spec.Baseline, spec.Oracle} {
		if set {
			hints++
		}
	}
	if hints != 1 {
		return fmt.Errorf("lclgrid: spec %q needs exactly one plan hint (Constant, Attempts, Direct, Baseline or Oracle), has %d", spec.Key, hints)
	}
	if spec.Direct == nil && spec.Problem == nil {
		return fmt.Errorf("lclgrid: spec %q hint needs a Problem constructor", spec.Key)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.specs[spec.Key]; !ok {
		r.order = append(r.order, spec.Key)
	}
	r.specs[spec.Key] = spec
	return nil
}

// Keys returns the registered keys in registration order.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Specs returns the registered specs in registration order.
func (r *Registry) Specs() []*ProblemSpec {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*ProblemSpec, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.specs[k])
	}
	return out
}

// Lookup resolves a key to a spec: registered keys first, then the
// parameterised families. Unknown keys fail with an error enumerating
// every valid key and family.
func (r *Registry) Lookup(key string) (*ProblemSpec, error) {
	r.mu.RLock()
	spec, ok := r.specs[key]
	r.mu.RUnlock()
	if ok {
		return spec, nil
	}
	if spec := familySpec(key); spec != nil {
		return spec, nil
	}
	return nil, fmt.Errorf("lclgrid: unknown problem %q; registered keys: %s; families: <k>col, <k>edgecol, orient<digits 0-4>",
		key, strings.Join(r.Keys(), ", "))
}

// Family parameter bounds. Keys reach this parser straight off the wire
// (the `lclgrid batch` JSONL front end), so the alphabets they imply
// must be bounded: an unchecked "<k>col" would allocate O(k²)-bit
// relation bitmaps, and the edge-colouring alphabet grows like k⁴.
// The caps are far above anything the paper (or a tractable SAT call)
// uses.
const (
	maxFamilyVertexColors = 1024
	maxFamilyEdgeColors   = 8
)

// familySpec constructs a spec for the parameterised families. Keys are
// validated strictly — exact round-trip formatting, bounded parameters,
// and (for orientations) X a non-empty set of out-degrees from
// {0,...,4} with no repeated digits — so a malformed or adversarial key
// yields the unknown-key error instead of a huge allocation (see
// FuzzRegistryLookup).
func familySpec(key string) *ProblemSpec {
	switch {
	case strings.HasSuffix(key, "edgecol"):
		var k int
		if _, err := fmt.Sscanf(key, "%dedgecol", &k); err != nil || k < 4 || k > maxFamilyEdgeColors || fmt.Sprintf("%dedgecol", k) != key {
			return nil
		}
		return asFamily(edgeColoringSpec(key, k))
	case strings.HasSuffix(key, "col"):
		var k int
		if _, err := fmt.Sscanf(key, "%dcol", &k); err != nil || k < 2 || k > maxFamilyVertexColors || fmt.Sprintf("%dcol", k) != key {
			return nil
		}
		return asFamily(vertexColoringSpec(key, k))
	case strings.HasPrefix(key, "orient"):
		var x []int
		var seen [5]bool
		for _, ch := range key[len("orient"):] {
			if ch < '0' || ch > '4' {
				return nil
			}
			d := int(ch - '0')
			if seen[d] {
				return nil // X is a set of out-degrees; "orient00" is no key
			}
			seen[d] = true
			x = append(x, d)
		}
		if len(x) == 0 {
			return nil
		}
		return asFamily(orientationSpec(key, x))
	}
	return nil
}

// asFamily marks a spec as a parameterised-family resolution (the
// catalogue registers the same constructors' output directly, keeping
// the builtin source).
func asFamily(spec *ProblemSpec) *ProblemSpec {
	spec.Source = SourceFamily
	return spec
}

// vertexColoringSpec builds the spec for proper k-colouring on
// 2-dimensional grids: global for k <= 3 (Thm 9), Θ(log* n) for k >= 4
// (Thm 4; k = 4 synthesizes the paper's headline k = 3 normal form,
// k >= 5 synthesizes with k = 1 anchors).
func vertexColoringSpec(key string, k int) *ProblemSpec {
	p := func() *Problem { return VertexColoring(k, 2) }
	spec := &ProblemSpec{
		Key: key, Name: p().Name(), Dims: 2, NumLabels: k, Problem: p,
	}
	switch {
	case k <= 3:
		spec.Class = ClassGlobal
		spec.MinSide = 4
		if k == 2 {
			spec.SideModulus = 2 // 2-colourings need even sides
		}
		spec.Baseline = true
	case k == 4:
		// The paper's headline synthesis (k = 3 over 2079 tiles); the §8
		// direct algorithm (FourColorSolver) needs much larger tori in
		// this implementation and stays available as an explicit adapter.
		spec.Class = ClassLogStar
		spec.MinSide = 28 // MinTorusSide for k=3, 7×5 windows
		spec.Attempts = []SynthAttempt{{K: 3, H: 7, W: 5}}
	default:
		spec.Class = ClassLogStar
		spec.MinSide = 12 // MinTorusSide for k=1, 3×2 windows
		spec.Attempts = []SynthAttempt{{K: 1, H: 3, W: 2}}
	}
	return spec
}

// edgeColoringSpec builds the spec for proper edge k-colouring on
// 2-dimensional grids: global for k = 2d (Thm 21 parity), Θ(log* n) for
// k >= 2d+1 (Thm 15 via the §10 direct algorithm).
func edgeColoringSpec(key string, k int) *ProblemSpec {
	p := func() *Problem { return EdgeColoring(k, 2).Problem }
	spec := &ProblemSpec{
		Key: key, Name: p().Name(), Dims: 2, NumLabels: p().K(), Problem: p,
	}
	if k == 4 {
		spec.Class = ClassGlobal
		spec.MinSide = 4
		spec.SideModulus = 2 // no 2d-edge-colouring when n is odd
		spec.Baseline = true
	} else {
		spec.Class = ClassLogStar
		spec.MinSide = 680 // §10 paper constants need sides > 2·338+2
		// Direct specs get no Θ(n) fallback on purpose: the edge
		// alphabet makes the SAT baseline intractable, so an honest
		// error beats an open-ended solve.
		spec.Direct = func(e *Engine) Solver { return &EdgeColorSolver{KColors: k} }
	}
	return spec
}

// orientationSpec builds the spec for an X-orientation problem using the
// Theorem 22 classification: O(1) when 2 ∈ X, Θ(log* n) for the Lemma 23
// sets (synthesized), global otherwise (brute force / certificates).
func orientationSpec(key string, x []int) *ProblemSpec {
	p := func() *Problem { return XOrientation(x, 2).Problem }
	spec := &ProblemSpec{
		Key: key, Name: p().Name(), Dims: 2, NumLabels: p().K(), Problem: p,
		Class: orient.Classify(x),
	}
	switch spec.Class {
	case ClassO1:
		spec.MinSide = 1
		spec.Constant = true
	case ClassLogStar:
		spec.MinSide = 12 // MinTorusSide for k=1, 3×3 windows
		// Lemma 23: k=1 suffices; the k=2 square window is the staged
		// backup. The engine races the two shapes and the k=1 table
		// (small and fast) cancels the expensive 5×5 search.
		spec.Attempts = []SynthAttempt{{K: 1, H: 3, W: 3}, {K: 2, H: 5, W: 5}}
	default:
		spec.Class = ClassGlobal
		spec.MinSide = 4
		spec.SideModulus = 2 // several global X are unsolvable on odd tori (Lemma 24)
		spec.Baseline = true
	}
	return spec
}

// lmSpec builds a spec for the §6 undecidability gadget L_M.
func lmSpec(key string, m *TuringMachine, halts bool, minSide, modulus int) *ProblemSpec {
	return &ProblemSpec{
		Key:  key,
		Name: fmt.Sprintf("L_M for %s", m.Name),
		Dims: 2,
		Class: func() Class {
			if halts {
				return ClassLogStar
			}
			return ClassGlobal
		}(),
		MinSide:     minSide,
		SideModulus: modulus,
		Direct: func(e *Engine) Solver {
			return &LMSolver{LM: LM(m), Halts: halts}
		},
		Verify: func(t *Torus, res *Result) error {
			labels, ok := res.Decoded.([]lm.Label)
			if !ok {
				return fmt.Errorf("lclgrid: L_M result carries no []lm.Label")
			}
			return LM(m).Verify(t, labels)
		},
	}
}

// DefaultRegistry returns a fresh registry populated with the paper's
// problem catalogue: the colouring and orientation thresholds, MIS,
// matchings, and the two L_M reference machines.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	mis := func() *Problem { return MIS(2).Problem }
	matching := func() *Problem { return MaximalMatching(2).Problem }
	is := func() *Problem { return IndependentSet(2) }
	specs := []*ProblemSpec{
		// O(1): trivial problems with constant solutions.
		{
			Key: "is", Name: is().Name(), Dims: 2, NumLabels: is().K(),
			Class: ClassO1, MinSide: 1, Problem: is,
			Constant: true,
		},
		orientationSpec("orient2", []int{2}),
		// Θ(log* n): synthesized normal forms and the direct algorithms.
		vertexColoringSpec("4col", 4),
		vertexColoringSpec("5col", 5),
		{
			Key: "mis", Name: mis().Name(), Dims: 2, NumLabels: mis().K(),
			Class: ClassLogStar, MinSide: 12, Problem: mis,
			Attempts: []SynthAttempt{{K: 1, H: 3, W: 3}},
		},
		edgeColoringSpec("5edgecol", 5),
		orientationSpec("orient134", []int{1, 3, 4}),
		orientationSpec("orient013", []int{0, 1, 3}),
		// Θ(n): global problems below the thresholds.
		vertexColoringSpec("3col", 3),
		vertexColoringSpec("2col", 2),
		edgeColoringSpec("4edgecol", 4),
		orientationSpec("orient034", []int{0, 3, 4}),
		// Conjectured global: bounded synthesis fails through k = 3; the
		// one-sided oracle cannot confirm (§7).
		{
			Key: "matching", Name: matching().Name(), Dims: 2, NumLabels: matching().K(),
			Class: ClassUnknown, MinSide: 4, Problem: matching,
			Baseline: true,
		},
		// The §6 undecidability gadget for the two reference machines.
		lmSpec("lm:halt", HaltingWriter(2), true, lm.TileSize(2), lm.TileSize(2)),
		lmSpec("lm:loop", RightLooper(), false, 9, 3),
	}
	for _, s := range specs {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}
	return r
}
