package lclgrid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestParseTraceparent pins the W3C traceparent acceptance surface: only
// version 00 with non-zero lowercase-hex ids parses, and a span's own
// Traceparent round-trips through the parser.
func TestParseTraceparent(t *testing.T) {
	tid, sid, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok || tid != "0af7651916cd43dd8448eb211c80319c" || sid != "b7ad6b7169203331" {
		t.Fatalf("valid traceparent rejected: tid=%q sid=%q ok=%v", tid, sid, ok)
	}

	rejects := []string{
		"",
		"garbage",
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // wrong version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01", // all-zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // all-zero span id
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-011", // shifted dashes
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333-011",
	}
	for _, h := range rejects {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", h)
		}
	}

	tr := StartTrace("serve", "/v1/solve")
	tp := tr.Root().Traceparent()
	tid, sid, ok = ParseTraceparent(tp)
	if !ok || tid != tr.ID() {
		t.Fatalf("own traceparent %q does not round-trip (tid=%q ok=%v)", tp, tid, ok)
	}
	if sid == "" {
		t.Fatal("round-tripped span id is empty")
	}

	// An invalid inbound trace id degrades to a fresh trace, never an
	// unusable one.
	j := JoinTrace("serve", "x", "not-hex", "b7ad6b7169203331")
	if !isHexID(j.ID(), 32) {
		t.Fatalf("JoinTrace with bad trace id produced id %q", j.ID())
	}
}

// TestNilSpanSafety checks the untraced path really is a no-op: every
// span helper tolerates the nil span an untraced context yields.
func TestNilSpanSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("StartSpan on an untraced context returned a live span")
	}
	if ctx2 != ctx {
		t.Error("StartSpan on an untraced context replaced the context")
	}
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetError(fmt.Errorf("boom"))
	if got := sp.TraceID(); got != "" {
		t.Errorf("nil span TraceID = %q", got)
	}
	if got := sp.Traceparent(); got != "" {
		t.Errorf("nil span Traceparent = %q", got)
	}
	if got := TraceIDFromContext(ctx); got != "" {
		t.Errorf("untraced TraceIDFromContext = %q", got)
	}
	h := http.Header{}
	injectTraceparent(ctx, h)
	if len(h) != 0 {
		t.Errorf("untraced injectTraceparent set headers: %v", h)
	}
	var buf *TraceBuffer
	buf.Add(StartTrace("serve", "req")) // nil buffer sink
	buf.SetLogger(nil, 0)               // nil buffer logger
	if buf.Len() != 0 {
		t.Error("nil buffer Len != 0")
	}
}

// TestTraceBufferBound hammers the ring from 16 goroutines and checks
// the bound holds exactly: capacity retained, everything else counted
// as dropped, nothing lost from the accounting. Run under -race this is
// also the buffer's concurrency test.
func TestTraceBufferBound(t *testing.T) {
	const capacity, writers, perWriter = 8, 16, 50
	buf := NewTraceBuffer(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr := StartTrace("serve", fmt.Sprintf("req-%d-%d", w, i))
				tr.Finish(buf)
			}
		}(w)
	}
	wg.Wait()

	if got := buf.Len(); got != capacity {
		t.Errorf("Len = %d, want %d", got, capacity)
	}
	added, dropped := buf.Stats()
	if added != writers*perWriter {
		t.Errorf("added = %d, want %d", added, writers*perWriter)
	}
	if dropped != writers*perWriter-capacity {
		t.Errorf("dropped = %d, want %d", dropped, writers*perWriter-capacity)
	}
	if got := len(buf.Snapshot(0)); got != capacity {
		t.Errorf("Snapshot returned %d traces, want %d", got, capacity)
	}
	// The filter drops everything at an absurd threshold.
	if got := len(buf.Snapshot(time.Hour)); got != 0 {
		t.Errorf("Snapshot(1h) returned %d traces, want 0", got)
	}
}

// TestTraceSnapshotNewestFirst checks /debug/traces ordering: the most
// recently finished trace leads the snapshot.
func TestTraceSnapshotNewestFirst(t *testing.T) {
	buf := NewTraceBuffer(4)
	for i := 0; i < 6; i++ {
		tr := StartTrace("serve", fmt.Sprintf("req-%d", i))
		tr.Finish(buf)
	}
	snap := buf.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("snapshot length %d, want 4", len(snap))
	}
	want := []string{"req-5", "req-4", "req-3", "req-2"}
	for i, doc := range snap {
		if doc.Name != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, doc.Name, want[i])
		}
	}
}

// TestTracesHandlerJSONShape pins the GET /debug/traces wire format —
// the document field names are an API now and dashboards parse them.
func TestTracesHandlerJSONShape(t *testing.T) {
	buf := NewTraceBuffer(4)
	tr := StartTrace("serve", "POST /v1/solve")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	_, sp := StartSpan(ctx, "synthesis")
	sp.SetAttr("synth_key", "5col/k=2")
	sp.End()
	tr.Root().SetAttr("status", "200")
	tr.Finish(buf)

	rec := httptest.NewRecorder()
	buf.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	var page struct {
		Count   int    `json:"count"`
		Added   uint64 `json:"added"`
		Dropped uint64 `json:"dropped"`
		Traces  []struct {
			TraceID   string  `json:"trace_id"`
			Service   string  `json:"service"`
			Name      string  `json:"name"`
			ElapsedMS float64 `json:"elapsed_ms"`
			Spans     []struct {
				ID        string            `json:"id"`
				Name      string            `json:"name"`
				StartMS   float64           `json:"start_ms"`
				ElapsedMS float64           `json:"elapsed_ms"`
				Attrs     map[string]string `json:"attrs"`
				Children  []struct {
					Name  string            `json:"name"`
					Attrs map[string]string `json:"attrs"`
				} `json:"children"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatalf("decode /debug/traces: %v\n%s", err, rec.Body)
	}
	if page.Count != 1 || page.Added != 1 || page.Dropped != 0 || len(page.Traces) != 1 {
		t.Fatalf("page = %+v, want one trace", page)
	}
	doc := page.Traces[0]
	if doc.Service != "serve" || doc.Name != "POST /v1/solve" || !isHexID(doc.TraceID, 32) {
		t.Errorf("trace header = %+v", doc)
	}
	if len(doc.Spans) != 1 {
		t.Fatalf("span tree has %d roots, want 1", len(doc.Spans))
	}
	root := doc.Spans[0]
	if root.Name != "POST /v1/solve" || root.Attrs["status"] != "200" || !isHexID(root.ID, 16) {
		t.Errorf("root span = %+v", root)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "synthesis" ||
		root.Children[0].Attrs["synth_key"] != "5col/k=2" {
		t.Errorf("children = %+v, want one synthesis span with synth_key", root.Children)
	}

	// Guardrails: only GET, and min_ms must be a non-negative number.
	rec = httptest.NewRecorder()
	buf.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/traces: status %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	buf.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?min_ms=nope", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad min_ms: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	buf.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?min_ms=100000", nil))
	var filtered TracesPage
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil || filtered.Count != 0 {
		t.Errorf("min_ms filter: count %d err %v, want 0 traces", filtered.Count, err)
	}
}

// TestServerTraceSolve drives a traced cold solve through the server
// and checks the whole observability contract on one request: the
// X-Trace-Id echo, the /debug/traces deposit, and a span tree carrying
// the plan, the ranked strategies, and the synthesis with its SynthKey
// and SAT-statistics attributes.
func TestServerTraceSolve(t *testing.T) {
	buf := NewTraceBuffer(16)
	srv := NewServer(NewEngine(), WithServerTracing(buf))
	base, _ := startServer(t, srv)

	resp, body := postJSON(t, base+"/v1/solve", `{"key":"5col","n":12}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	tid := resp.Header.Get(TraceIDHeader)
	if !isHexID(tid, 32) {
		t.Fatalf("X-Trace-Id = %q, want a 32-hex trace id", tid)
	}

	snap := buf.Snapshot(0)
	if len(snap) == 0 {
		t.Fatal("no trace deposited")
	}
	doc := snap[0]
	if doc.TraceID != tid {
		t.Errorf("buffer trace id %q != header %q", doc.TraceID, tid)
	}
	if doc.Service != "serve" {
		t.Errorf("service = %q", doc.Service)
	}

	names := spanNames(doc.Spans, nil)
	for _, want := range []string{"plan", "strategy", "cache.miss", "synthesis"} {
		if !names[want] {
			t.Errorf("span %q missing from trace; have %v", want, names)
		}
	}
	synth := findSpan(doc.Spans, "synthesis")
	if synth == nil {
		t.Fatal("no synthesis span")
	}
	if synth.Attrs["synth_key"] == "" {
		t.Error("synthesis span has no synth_key attribute")
	}
	for _, attr := range []string{"conflicts", "decisions", "propagations"} {
		if _, ok := synth.Attrs[attr]; !ok {
			t.Errorf("synthesis span missing %q attr; attrs=%v", attr, synth.Attrs)
		}
	}

	// The served cached re-solve traces a cache.hit instead.
	resp, body = postJSON(t, base+"/v1/solve", `{"key":"5col","n":12}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached solve: status %d: %s", resp.StatusCode, body)
	}
	hit := buf.Snapshot(0)[0]
	if hitNames := spanNames(hit.Spans, nil); !hitNames["cache.hit"] || hitNames["synthesis"] {
		t.Errorf("cached solve spans = %v, want cache.hit and no synthesis", hitNames)
	}

	// A caller-supplied traceparent is joined, not replaced.
	const parent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/solve", strings.NewReader(`{"key":"5col","n":12}`))
	req.Header.Set(TraceparentHeader, parent)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(TraceIDHeader); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("joined trace id = %q, want the traceparent's", got)
	}
	joined := buf.Snapshot(0)[0]
	if joined.Parent != "00f067aa0ba902b7" {
		t.Errorf("joined trace parent = %q, want the caller's span id", joined.Parent)
	}
}

// spanNames flattens a span tree into a name set.
func spanNames(spans []*SpanDoc, into map[string]bool) map[string]bool {
	if into == nil {
		into = make(map[string]bool)
	}
	for _, sp := range spans {
		into[sp.Name] = true
		spanNames(sp.Children, into)
	}
	return into
}

// findSpan returns the first span named name in the tree, depth-first.
func findSpan(spans []*SpanDoc, name string) *SpanDoc {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
		if found := findSpan(sp.Children, name); found != nil {
			return found
		}
	}
	return nil
}

// TestFleetTraceE2E is the tentpole acceptance check: one request with a
// caller traceparent enters the gateway, is forwarded to the serving
// shard, whose cold synthesis takes a cluster lease on the cachesvc —
// and afterwards all three processes' /debug/traces buffers hold a
// segment of the SAME trace id, linked parent→child.
func TestFleetTraceE2E(t *testing.T) {
	// cachesvc with its own trace buffer.
	csBuf := NewTraceBuffer(64)
	cs := NewCacheServer(nil, WithCacheTracing(csBuf))
	csURL := httptest.NewServer(cs)
	defer csURL.Close()

	// The serving shard: engine over the remote cache, traced server.
	remote, err := NewRemoteCache(csURL.URL, nil, WithRemoteOwner("shard1"))
	if err != nil {
		t.Fatal(err)
	}
	shardBuf := NewTraceBuffer(64)
	shard := NewServer(NewEngine(WithCache(remote)), WithServerTracing(shardBuf))
	shardBase, _ := startServer(t, shard)

	// The gateway in front.
	gwBuf := NewTraceBuffer(64)
	gw, err := NewGateway([]string{shardBase}, WithGatewayTracing(gwBuf))
	if err != nil {
		t.Fatal(err)
	}
	gwBase := startGateway(t, gw)

	const parent = "00-1af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, _ := http.NewRequest(http.MethodPost, gwBase+"/v1/solve",
		strings.NewReader(`{"key":"5col","n":12}`))
	req.Header.Set(TraceparentHeader, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway solve: status %d", resp.StatusCode)
	}
	const wantTID = "1af7651916cd43dd8448eb211c80319c"
	if got := resp.Header.Get(TraceIDHeader); got != wantTID {
		t.Fatalf("gateway X-Trace-Id = %q, want %q", got, wantTID)
	}

	find := func(buf *TraceBuffer, service string) *TraceDoc {
		for _, doc := range buf.Snapshot(0) {
			if doc.TraceID == wantTID {
				return doc
			}
		}
		t.Fatalf("trace %s not found in the %s buffer", wantTID, service)
		return nil
	}
	gwDoc := find(gwBuf, "gateway")
	shardDoc := find(shardBuf, "serve")
	csDoc := find(csBuf, "cachesvc")

	// The caller's span parents the gateway segment; the gateway's
	// forward span parents the shard segment.
	if gwDoc.Parent != "b7ad6b7169203331" {
		t.Errorf("gateway segment parent = %q, want the caller's span id", gwDoc.Parent)
	}
	fwd := findSpan(gwDoc.Spans, "forward")
	if fwd == nil {
		t.Fatalf("gateway trace has no forward span: %v", spanNames(gwDoc.Spans, nil))
	}
	if shardDoc.Parent != fwd.ID {
		t.Errorf("shard segment parent = %q, want the gateway forward span %q", shardDoc.Parent, fwd.ID)
	}
	if csDoc.Parent == "" {
		t.Error("cachesvc segment has no parent span — traceparent did not propagate")
	}

	// The shard's cold solve attributed its synthesis and lease work.
	shardNames := spanNames(shardDoc.Spans, nil)
	for _, want := range []string{"plan", "strategy", "synthesis", "lease.coordinate"} {
		if !shardNames[want] {
			t.Errorf("shard trace missing span %q; have %v", want, shardNames)
		}
	}
	if !strings.HasPrefix(csDoc.Name, "POST /lease/") && !strings.HasPrefix(csDoc.Name, "GET /cache/") {
		t.Errorf("cachesvc segment name = %q, want a lease or cache operation", csDoc.Name)
	}
}

// TestServerErrorBodiesCarryTraceID pins the error contract: 429, 413
// and 504 responses are {"error":..., "trace_id":...} JSON whose
// trace_id matches the X-Trace-Id header, so a shed or timed-out client
// can still quote the trace.
func TestServerErrorBodiesCarryTraceID(t *testing.T) {
	checkError := func(t *testing.T, resp *http.Response, body []byte, wantCode int) {
		t.Helper()
		if resp.StatusCode != wantCode {
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantCode, body)
		}
		var e struct {
			Error   string `json:"error"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("not an error document: %s", body)
		}
		if !isHexID(e.TraceID, 32) {
			t.Fatalf("trace_id = %q, want a 32-hex trace id: %s", e.TraceID, body)
		}
		if hdr := resp.Header.Get(TraceIDHeader); hdr != e.TraceID {
			t.Errorf("X-Trace-Id %q != body trace_id %q", hdr, e.TraceID)
		}
	}

	t.Run("413", func(t *testing.T) {
		srv := NewServer(NewEngine(), WithMaxBodyBytes(64), WithServerTracing(NewTraceBuffer(8)))
		base, _ := startServer(t, srv)
		resp, body := postJSON(t, base+"/v1/solve",
			`{"key":"4col","ids":[`+strings.Repeat("1,", 200)+`1]}`)
		checkError(t, resp, body, http.StatusRequestEntityTooLarge)
	})

	t.Run("504", func(t *testing.T) {
		reg, _, release := gatedRegistry(t)
		defer release()
		srv := NewServer(NewEngine(WithRegistry(reg)),
			WithRequestTimeout(50*time.Millisecond), WithServerTracing(NewTraceBuffer(8)))
		base, _ := startServer(t, srv)
		resp, body := postJSON(t, base+"/v1/solve", `{"key":"gate","n":4}`)
		checkError(t, resp, body, http.StatusGatewayTimeout)
	})

	t.Run("429", func(t *testing.T) {
		reg, started, release := gatedRegistry(t)
		srv := NewServer(NewEngine(WithRegistry(reg)),
			WithMaxInflight(1), WithServerTracing(NewTraceBuffer(8)))
		base, _ := startServer(t, srv)
		firstDone := make(chan struct{})
		go func() {
			defer close(firstDone)
			resp, _ := postJSON(t, base+"/v1/solve", `{"key":"gate","n":4}`)
			resp.Body.Close()
		}()
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("gated solve did not start")
		}
		resp, body := postJSON(t, base+"/v1/solve", `{"key":"is","n":4}`)
		checkError(t, resp, body, http.StatusTooManyRequests)
		release()
		<-firstDone
	})
}

// TestBatchLinesCarryTraceID checks the JSONL batch surface: every
// result line of a traced batch carries the request's trace id.
func TestBatchLinesCarryTraceID(t *testing.T) {
	buf := NewTraceBuffer(8)
	srv := NewServer(NewEngine(), WithServerTracing(buf))
	base, _ := startServer(t, srv)

	lines := batchLines(t, base, `{"key":"5col","n":8}`+"\n"+`{"key":"mis","n":8}`, "")
	if len(lines) != 2 {
		t.Fatalf("batch returned %d lines, want 2", len(lines))
	}
	tid := buf.Snapshot(0)[0].TraceID
	for _, line := range lines {
		var l struct {
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("bad line %s: %v", line, err)
		}
		if l.TraceID != tid {
			t.Errorf("line trace_id = %q, want %q: %s", l.TraceID, tid, line)
		}
	}
}

// newTestJSONLogger is a Debug-level JSON slog logger writing to w.
func newTestJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// TestTraceBufferSlowLogging checks SetLogger's two paths: every
// deposit logs a Debug "request" line with trace correlation fields,
// and a trace past the slow threshold logs a Warn "slow request" line
// carrying the span tree.
func TestTraceBufferSlowLogging(t *testing.T) {
	var out bytes.Buffer
	logger := newTestJSONLogger(&out)
	buf := NewTraceBuffer(8)
	buf.SetLogger(logger, 10*time.Millisecond)

	fast := StartTrace("serve", "fast")
	fast.Finish(buf)

	slow := StartTrace("serve", "slow")
	time.Sleep(20 * time.Millisecond)
	slow.Finish(buf)

	dec := json.NewDecoder(&out)
	var fastLine, slowLine map[string]any
	if err := dec.Decode(&fastLine); err != nil {
		t.Fatalf("no fast log line: %v", err)
	}
	if err := dec.Decode(&slowLine); err != nil {
		t.Fatalf("no slow log line: %v", err)
	}
	if fastLine["msg"] != "request" || fastLine["trace_id"] != fast.ID() {
		t.Errorf("fast line = %v", fastLine)
	}
	if slowLine["msg"] != "slow request" || slowLine["level"] != "WARN" {
		t.Errorf("slow line = %v", slowLine)
	}
	if slowLine["trace_id"] != slow.ID() {
		t.Errorf("slow line trace_id = %v, want %s", slowLine["trace_id"], slow.ID())
	}
	if tree, _ := slowLine["spans"].(string); !strings.Contains(tree, `"name":"slow"`) {
		t.Errorf("slow line has no span tree: %v", slowLine["spans"])
	}
}

// BenchmarkTracedSolveCached is BenchmarkServerSolveCached with tracing
// on — the CI gate that the trace plumbing stays within a few percent
// of the untraced cached-solve path.
func BenchmarkTracedSolveCached(b *testing.B) {
	srv := NewServer(NewEngine(), WithServerTracing(NewTraceBuffer(64)))
	body := []byte(`{"key":"5col","n":12}`)
	warm := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm solve: status %d: %s", rec.Code, rec.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
