package lclgrid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"iter"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"lclgrid/internal/ring"
)

// Gateway is the HTTP front of a sharded serving fleet: it owns no
// engine and runs no synthesis, it routes. Each request's problem is
// reduced to its canonical fingerprint and the fingerprint is placed on
// a consistent-hash ring over the shard set (internal/ring), so every
// request for the same problem lands on the same `lclgrid serve`
// replica — which is what makes each replica's cache slice hot and the
// fleet's synthesis work partition cleanly, even before the shared
// remote cache deduplicates across them.
//
// Routes:
//
//	POST /v1/solve     routed to the fingerprint's shard
//	POST /v1/explain   routed to the fingerprint's shard
//	POST /v1/labels    routed to the fingerprint's shard
//	POST /v1/export    routed to the fingerprint's shard
//	POST /v1/batch     fanned out: lines grouped by owning shard, one
//	                   upstream batch per shard, result streams merged
//	                   (completion order by default, ?ordered=1 restores
//	                   input order via the Reordered collector)
//	GET  /v1/problems  proxied to any healthy shard (catalogue is
//	                   replica-independent)
//	POST /v1/problems  broadcast to every reachable shard (registration
//	                   is process-local registry state; the post is
//	                   idempotent on the canonical fingerprint), the
//	                   fingerprint owner's answer relayed to the client
//	GET  /v1/problems/{key}  proxied to the key's owning shard
//	GET  /healthz      gateway liveness
//	GET  /readyz       503 until at least one shard probes healthy
//	GET  /metrics      gateway-side Prometheus series
//
// Failure handling: solve-shaped requests are idempotent (a solve is a
// pure function of its request), so a shard that fails at the transport
// level — or answers 502/503, the "not me" statuses — is marked
// unhealthy and the request is retried on the next replica in the
// key's ring sequence. Mid-batch shard loss cannot be retried
// transparently (the stream is already committed), so the lost shard's
// unanswered lines surface as in-band per-request {"error": ...} lines
// while every other shard's results keep flowing.
//
// A Gateway is an http.Handler; Serve adds the graceful drain and the
// background health prober.
type Gateway struct {
	shards  []string // normalized base URLs, ring member names
	ring    *ring.Ring
	client  *http.Client
	mux     *http.ServeMux
	metrics *MetricsObserver
	reg     *Registry

	inflight chan struct{}
	maxBody  int64
	timeout  time.Duration
	drain    time.Duration
	probeGap time.Duration
	traces   *TraceBuffer // nil = tracing off

	healthMu sync.Mutex
	health   map[string]*shardHealth

	// fpMu guards the routing-key memo: Problem.Fingerprint hashes the
	// whole constraint system on every call, far too hot for a per-line
	// recomputation during batch fan-out.
	fpMu sync.Mutex
	fps  map[string]string
}

// shardHealth is the gateway's view of one shard. known flips on the
// first probe or proxied response; until then the shard is neither
// healthy nor unhealthy and readiness treats it as absent.
type shardHealth struct {
	known   bool
	healthy bool
	lastErr string
}

// GatewayOption configures NewGateway.
type GatewayOption func(*gatewayConfig)

type gatewayConfig struct {
	client      *http.Client
	metrics     *MetricsObserver
	reg         *Registry
	maxInflight int
	maxBody     int64
	timeout     time.Duration
	drain       time.Duration
	probeGap    time.Duration
	traces      *TraceBuffer
}

// WithGatewayClient sets the HTTP client used for upstream shard
// requests. The default has no overall timeout (batch streams are
// long-lived) but inherits the per-request context deadlines.
func WithGatewayClient(c *http.Client) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.client = c }
}

// WithGatewayMetrics shares a MetricsObserver with the gateway (default
// private).
func WithGatewayMetrics(m *MetricsObserver) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.metrics = m }
}

// WithGatewayRegistry sets the registry used to reduce request keys to
// routing fingerprints (default DefaultRegistry()). The gateway's
// registry must resolve the same key set as the shards' or routed keys
// fall back to literal-key hashing — still deterministic, just not
// aligned with the shards' fingerprint ownership.
func WithGatewayRegistry(r *Registry) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.reg = r }
}

// WithGatewayMaxInflight bounds concurrently proxied solve/batch
// requests, with the same shed-don't-queue 429 semantics as the server
// (n <= 0 unbounded).
func WithGatewayMaxInflight(n int) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.maxInflight = n }
}

// WithGatewayMaxBodyBytes caps buffered request bodies (n <= 0 removes
// the cap).
func WithGatewayMaxBodyBytes(n int64) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.maxBody = n }
}

// WithGatewayRequestTimeout bounds each proxied request (0 disables).
func WithGatewayRequestTimeout(d time.Duration) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.timeout = d }
}

// WithGatewayDrainTimeout bounds Serve's graceful-shutdown drain.
func WithGatewayDrainTimeout(d time.Duration) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.drain = d }
}

// WithGatewayProbeInterval sets the background health-probe cadence
// (default 5s).
func WithGatewayProbeInterval(d time.Duration) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.probeGap = d }
}

// WithGatewayTracing enables request tracing: every routed request gets
// a Trace, the traceparent header is forwarded to the owning shard (so
// the shard's own spans join the same trace id), X-Trace-Id is echoed,
// and completed traces land in buf — exposed at GET /debug/traces.
func WithGatewayTracing(buf *TraceBuffer) GatewayOption {
	return func(cfg *gatewayConfig) { cfg.traces = buf }
}

// NewGateway builds a gateway over the given shard base URLs (e.g.
// "http://shard-a:8080"). At least one shard is required; duplicates
// are rejected by the ring.
func NewGateway(shards []string, opts ...GatewayOption) (*Gateway, error) {
	cfg := gatewayConfig{
		maxInflight: DefaultMaxInflight,
		maxBody:     DefaultMaxBodyBytes,
		timeout:     DefaultRequestTimeout,
		drain:       DefaultDrainTimeout,
		probeGap:    5 * time.Second,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	normalized := make([]string, len(shards))
	for i, s := range shards {
		u, err := url.Parse(strings.TrimSpace(s))
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("lclgrid: gateway shard %d: %q is not an absolute URL", i, s)
		}
		if u.Scheme == "" {
			u.Scheme = "http"
		}
		normalized[i] = strings.TrimRight(u.String(), "/")
	}
	r, err := ring.New(normalized, 0)
	if err != nil {
		return nil, fmt.Errorf("lclgrid: gateway: %w", err)
	}
	if cfg.client == nil {
		cfg.client = &http.Client{}
	}
	if cfg.metrics == nil {
		cfg.metrics = NewMetricsObserver()
	}
	if cfg.reg == nil {
		cfg.reg = DefaultRegistry()
	}
	if cfg.drain <= 0 {
		cfg.drain = DefaultDrainTimeout
	}
	g := &Gateway{
		shards:   normalized,
		ring:     r,
		client:   cfg.client,
		mux:      http.NewServeMux(),
		metrics:  cfg.metrics,
		reg:      cfg.reg,
		maxBody:  cfg.maxBody,
		timeout:  cfg.timeout,
		drain:    cfg.drain,
		probeGap: cfg.probeGap,
		traces:   cfg.traces,
		health:   make(map[string]*shardHealth),
		fps:      make(map[string]string),
	}
	for _, s := range normalized {
		g.health[s] = &shardHealth{}
	}
	if cfg.maxInflight > 0 {
		g.inflight = make(chan struct{}, cfg.maxInflight)
	}
	g.mux.Handle("POST /v1/solve", g.instrument("/v1/solve", g.admit(g.routed("/v1/solve"))))
	g.mux.Handle("POST /v1/explain", g.instrument("/v1/explain", http.HandlerFunc(g.routed("/v1/explain"))))
	g.mux.Handle("POST /v1/labels", g.instrument("/v1/labels", g.admit(g.routed("/v1/labels"))))
	g.mux.Handle("POST /v1/export", g.instrument("/v1/export", g.admit(g.routed("/v1/export"))))
	g.mux.Handle("POST /v1/batch", g.instrument("/v1/batch", g.admit(g.handleBatch)))
	g.mux.Handle("GET /v1/problems", g.instrument("/v1/problems", http.HandlerFunc(g.handleProblems)))
	g.mux.Handle("POST /v1/problems", g.instrument("/v1/problems", http.HandlerFunc(g.handleDefineProblem)))
	g.mux.Handle("GET /v1/problems/{key}", g.instrument("/v1/problems/{key}", http.HandlerFunc(g.handleProblemGet)))
	g.mux.Handle("GET /healthz", g.instrument("/healthz", http.HandlerFunc(g.handleHealthz)))
	g.mux.Handle("GET /readyz", g.instrument("/readyz", http.HandlerFunc(g.handleReadyz)))
	g.mux.Handle("GET /metrics", g.instrument("/metrics", http.HandlerFunc(g.handleMetrics)))
	if cfg.traces != nil {
		g.mux.Handle("GET /debug/traces", cfg.traces.Handler())
	}
	return g, nil
}

// Shards returns the normalized shard base URLs (the ring members).
func (g *Gateway) Shards() []string {
	out := make([]string, len(g.shards))
	copy(out, g.shards)
	return out
}

// Metrics returns the gateway's metrics observer.
func (g *Gateway) Metrics() *MetricsObserver { return g.metrics }

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Serve accepts connections on l until ctx is cancelled, running the
// background shard prober for the duration and draining in-flight
// requests on shutdown like Server.Serve.
func (g *Gateway) Serve(ctx context.Context, l net.Listener) error {
	probeCtx, stopProbe := context.WithCancel(ctx)
	defer stopProbe()
	go func() {
		g.ProbeShards(probeCtx)
		t := time.NewTicker(g.probeGap)
		defer t.Stop()
		for {
			select {
			case <-probeCtx.Done():
				return
			case <-t.C:
				g.ProbeShards(probeCtx)
			}
		}
	}()
	hs := &http.Server{
		Handler:           g,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), g.drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		hs.Close()
		<-serveErr
		return fmt.Errorf("lclgrid: drain window %v expired with requests still in flight: %w", g.drain, err)
	}
	<-serveErr
	return nil
}

// --- health -------------------------------------------------------------------

// ProbeShards probes every shard's /healthz once, updating the health
// table. Serve runs this on a ticker; tests call it directly.
func (g *Gateway) ProbeShards(ctx context.Context) {
	var wg sync.WaitGroup
	for _, shard := range g.shards {
		wg.Add(1)
		go func(shard string) {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, 3*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, shard+"/healthz", nil)
			if err != nil {
				g.setHealth(shard, false, err.Error())
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				g.setHealth(shard, false, err.Error())
				return
			}
			resp.Body.Close()
			g.setHealth(shard, resp.StatusCode == http.StatusOK, resp.Status)
		}(shard)
	}
	wg.Wait()
}

func (g *Gateway) setHealth(shard string, healthy bool, detail string) {
	g.healthMu.Lock()
	h := g.health[shard]
	if h == nil {
		h = &shardHealth{}
		g.health[shard] = h
	}
	h.known = true
	h.healthy = healthy
	if !healthy {
		h.lastErr = detail
	} else {
		h.lastErr = ""
	}
	g.healthMu.Unlock()
}

func (g *Gateway) shardHealthy(shard string) bool {
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	h := g.health[shard]
	// Unknown shards are assumed healthy for routing (the first request
	// is the probe); readiness is stricter and requires a known-healthy
	// shard.
	return h == nil || !h.known || h.healthy
}

// Ready reports gateway readiness: at least one shard has probed (or
// served) healthy. Until the first probe round completes the gateway is
// deliberately unready — routing every request into an unprobed fleet
// is how a supervisor turns one bad deploy into an outage.
func (g *Gateway) Ready() error {
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	for _, h := range g.health {
		if h.known && h.healthy {
			return nil
		}
	}
	return errors.New("lclgrid: no healthy shard")
}

// --- middleware (admission/metrics parity with Server) ------------------------

func (g *Gateway) instrument(path string, next http.Handler) http.Handler {
	// Only the /v1/ work endpoints trace — probe and scrape noise would
	// evict the traces worth keeping (same policy as Server).
	traced := strings.HasPrefix(path, "/v1/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.metrics.httpStart()
		sw := &statusWriter{ResponseWriter: w}
		if g.traces != nil && traced {
			tr := traceForRequest("gateway", path, r)
			sw.Header().Set(TraceIDHeader, tr.ID())
			r = r.WithContext(ContextWithSpan(r.Context(), tr.Root()))
			defer func() {
				tr.Root().SetAttr("status", strconv.Itoa(sw.status()))
				tr.Finish(g.traces)
			}()
		}
		start := time.Now()
		next.ServeHTTP(sw, r)
		g.metrics.httpEnd(path, sw.status(), time.Since(start))
	})
}

func (g *Gateway) admit(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if g.inflight != nil {
			select {
			case g.inflight <- struct{}{}:
				defer func() { <-g.inflight }()
			default:
				g.metrics.httpRejected()
				w.Header().Set("Retry-After", "1")
				httpError(w, r, http.StatusTooManyRequests,
					errors.New("lclgrid: gateway at capacity; retry after backoff"))
				return
			}
		}
		next(w, r)
	})
}

// --- routing ------------------------------------------------------------------

// routingKey reduces a request key to the string placed on the ring:
// the problem's canonical fingerprint when the registry resolves the
// key (memoized — fingerprints hash the whole constraint system), the
// literal key otherwise. Either way the same key always routes to the
// same shard; the fingerprint form additionally converges aliases
// ("3col" on a torus vs. its inline twin) onto one owner.
func (g *Gateway) routingKey(key string) string {
	if key == "" {
		return key
	}
	g.fpMu.Lock()
	fp, ok := g.fps[key]
	g.fpMu.Unlock()
	if ok {
		return fp
	}
	routed := key
	if spec, err := g.reg.Lookup(key); err == nil && spec.Problem != nil {
		routed = spec.Problem().Fingerprint()
	}
	g.fpMu.Lock()
	g.fps[key] = routed
	g.fpMu.Unlock()
	return routed
}

// readBody buffers the request body (the gateway must be able to replay
// it on retry), honouring the body cap.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body := io.Reader(r.Body)
	if g.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, g.maxBody)
	}
	data, err := io.ReadAll(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, r, http.StatusRequestEntityTooLarge, fmt.Errorf("lclgrid: request body exceeds %d bytes", mbe.Limit))
		} else {
			httpError(w, r, http.StatusBadRequest, fmt.Errorf("lclgrid: reading request body: %w", err))
		}
		return nil, false
	}
	return data, true
}

// keyDoc extracts the routing identity from a request document. Every
// routed wire type (SolveRequest, LabelRequest, ExportRequest) names its
// problem in a "key" field or carries an inline "problem_def".
type keyDoc struct {
	Key        string      `json:"key"`
	ProblemDef *ProblemDef `json:"problem_def"`
}

// docRoutingKey reduces one request document to its ring placement:
// the registry fingerprint for key-named problems (see routingKey), the
// definition's own canonical fingerprint for inline problem_def
// requests — so a DSL-defined problem lands on the same shard whether
// it arrives by registered key or restated inline, and that shard's
// cache slice stays the single synthesis site. A definition that does
// not compile routes by the empty string; the owning shard answers the
// 400 (the gateway never validates, it routes).
func (g *Gateway) docRoutingKey(doc keyDoc) string {
	if doc.Key != "" {
		return g.routingKey(doc.Key)
	}
	if doc.ProblemDef != nil {
		if fp, err := doc.ProblemDef.Fingerprint(); err == nil {
			return fp
		}
	}
	return ""
}

// routed returns a handler that proxies one buffered request document
// to the shards in ring order for its key: the owner first, then each
// successor on transport-level failure or a 502/503 answer. Requests
// are pure solves, so the retry is safe; a response with any other
// status (the shard answered, the answer just wasn't 2xx) is passed
// through untouched — it is the shard's verdict, not a routing failure.
func (g *Gateway) routed(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := g.readBody(w, r)
		if !ok {
			return
		}
		var doc keyDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			httpError(w, r, http.StatusBadRequest, fmt.Errorf("lclgrid: bad request document: %w", err))
			return
		}
		ctx := r.Context()
		if g.timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, g.timeout)
			defer cancel()
		}
		seq := g.ring.Sequence(g.docRoutingKey(doc))
		var lastErr error
		attempts := 0
		for _, shard := range seq {
			if attempts > 0 {
				g.metrics.gatewayRetry()
			}
			if !g.shardHealthy(shard) && attempts+1 < len(seq) {
				// Known-unhealthy shards are skipped while alternatives
				// remain; the last candidate is always tried (stale health
				// beats certain failure).
				continue
			}
			attempts++
			resp, err := g.forward(ctx, shard, path, r.URL.RawQuery, body)
			if err != nil {
				g.setHealth(shard, false, err.Error())
				lastErr = fmt.Errorf("shard %s: %w", shard, err)
				continue
			}
			if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
				resp.Body.Close()
				g.setHealth(shard, false, resp.Status)
				g.metrics.gatewayRequest(path, shard, resp.StatusCode)
				lastErr = fmt.Errorf("shard %s: %s", shard, resp.Status)
				continue
			}
			g.setHealth(shard, true, "")
			g.metrics.gatewayRequest(path, shard, resp.StatusCode)
			relay(w, resp)
			return
		}
		g.metrics.gatewayError()
		if lastErr == nil {
			lastErr = errors.New("no shard available")
		}
		httpError(w, r, http.StatusBadGateway, fmt.Errorf("lclgrid: every replica for this key failed: %w", lastErr))
	}
}

// forward issues one upstream request with the buffered body, carrying
// the request's trace to the shard via traceparent; each retry is its
// own "forward" span naming the shard it tried.
func (g *Gateway) forward(ctx context.Context, shard, path, rawQuery string, body []byte) (*http.Response, error) {
	u := shard + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	ctx, sp := StartSpan(ctx, "forward")
	sp.SetAttr("shard", shard)
	sp.SetAttr("path", path)
	defer sp.End()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	injectTraceparent(ctx, req.Header)
	resp, err := g.client.Do(req)
	if err != nil {
		sp.SetError(err)
		return nil, err
	}
	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	return resp, nil
}

// relay streams an upstream response to the client verbatim, flushing
// as it copies so upstream streams (export bands) stay streams.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "ETag", "Cache-Control", "Retry-After", TraceIDHeader} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleProblems proxies the catalogue from any healthy shard — the
// registry is identical across replicas, so the first answer wins.
func (g *Gateway) handleProblems(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	var lastErr error
	for _, shard := range g.ring.Sequence("catalogue") {
		if !g.shardHealthy(shard) {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/v1/problems", nil)
		if err != nil {
			lastErr = err
			continue
		}
		injectTraceparent(ctx, req.Header)
		if v := r.Header.Get("If-None-Match"); v != "" {
			req.Header.Set("If-None-Match", v)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.setHealth(shard, false, err.Error())
			lastErr = err
			continue
		}
		g.setHealth(shard, true, "")
		g.metrics.gatewayRequest("/v1/problems", shard, resp.StatusCode)
		relay(w, resp)
		return
	}
	g.metrics.gatewayError()
	if lastErr == nil {
		lastErr = errors.New("no healthy shard")
	}
	httpError(w, r, http.StatusBadGateway, fmt.Errorf("lclgrid: catalogue unavailable: %w", lastErr))
}

// definedDoc is the slice of a define/get response the gateway reads to
// learn a user key's routing fingerprint.
type definedDoc struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
}

// learnBinding memoizes a key→fingerprint binding from a shard's
// define/get response, so later requests naming the user key route to
// the fingerprint's owner exactly like catalogue keys (the gateway's
// own registry never learns user keys — the shards' registries do).
func (g *Gateway) learnBinding(body []byte) {
	var doc definedDoc
	if json.Unmarshal(body, &doc) != nil || doc.Key == "" || doc.Fingerprint == "" {
		return
	}
	g.fpMu.Lock()
	g.fps[doc.Key] = doc.Fingerprint
	g.fpMu.Unlock()
}

// relayBuffered writes an already-read upstream response to the client.
func relayBuffered(w http.ResponseWriter, resp *http.Response, body []byte) {
	for _, k := range []string{"Content-Type", "ETag", "Cache-Control", "Retry-After", TraceIDHeader} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// handleDefineProblem serves POST /v1/problems by broadcast: a problem
// registration is process-local registry state on each shard (unlike
// synthesis results, which the fleet shares through the remote cache),
// so the definition is posted to every reachable shard — the post is
// idempotent on the canonical fingerprint, so repeats are free. The
// ring sequence for the definition's fingerprint orders the fan-out, so
// the answer relayed to the client is the owning shard's (the one whose
// cache slice later serves this problem), and the returned key's
// binding is memoized for catalogue-style routing of later requests.
func (g *Gateway) handleDefineProblem(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if g.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.timeout)
		defer cancel()
	}
	var route string
	var def ProblemDef
	if err := json.Unmarshal(body, &def); err == nil {
		if fp, ferr := def.Fingerprint(); ferr == nil {
			route = fp
		}
	}
	relayed := false
	var lastErr error
	for _, shard := range g.ring.Sequence(route) {
		resp, err := g.forward(ctx, shard, "/v1/problems", "", body)
		if err != nil {
			g.setHealth(shard, false, err.Error())
			lastErr = fmt.Errorf("shard %s: %w", shard, err)
			continue
		}
		g.metrics.gatewayRequest("/v1/problems", shard, resp.StatusCode)
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			g.setHealth(shard, false, resp.Status)
			lastErr = fmt.Errorf("shard %s: %s", shard, resp.Status)
			continue
		}
		g.setHealth(shard, true, "")
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if rerr != nil {
			lastErr = fmt.Errorf("shard %s: %w", shard, rerr)
			continue
		}
		if resp.StatusCode < 300 {
			g.learnBinding(respBody)
		}
		if !relayed {
			relayBuffered(w, resp, respBody)
			relayed = true
			// A rejected definition (4xx) is the owner's verdict for the
			// whole fleet — no point posting it to the other shards.
			if resp.StatusCode >= 300 {
				return
			}
		}
	}
	if !relayed {
		g.metrics.gatewayError()
		if lastErr == nil {
			lastErr = errors.New("no shard available")
		}
		httpError(w, r, http.StatusBadGateway, fmt.Errorf("lclgrid: every shard refused the registration: %w", lastErr))
	}
}

// handleProblemGet proxies GET /v1/problems/{key} to the key's owning
// shard (falling through the ring sequence on failure), learning the
// key's fingerprint binding from the answer so a gateway that restarted
// after a registration re-converges on fingerprint routing lazily.
func (g *Gateway) handleProblemGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	ctx := r.Context()
	var lastErr error
	for _, shard := range g.ring.Sequence(g.routingKey(key)) {
		if !g.shardHealthy(shard) {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, shard+"/v1/problems/"+url.PathEscape(key), nil)
		if err != nil {
			lastErr = err
			continue
		}
		injectTraceparent(ctx, req.Header)
		if v := r.Header.Get("If-None-Match"); v != "" {
			req.Header.Set("If-None-Match", v)
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.setHealth(shard, false, err.Error())
			lastErr = err
			continue
		}
		g.setHealth(shard, true, "")
		g.metrics.gatewayRequest("/v1/problems/{key}", shard, resp.StatusCode)
		if resp.StatusCode == http.StatusOK {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
				continue
			}
			g.learnBinding(body)
			relayBuffered(w, resp, body)
			return
		}
		relay(w, resp)
		return
	}
	g.metrics.gatewayError()
	if lastErr == nil {
		lastErr = errors.New("no healthy shard")
	}
	httpError(w, r, http.StatusBadGateway, fmt.Errorf("lclgrid: problem lookup unavailable: %w", lastErr))
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := g.Ready(); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "unready", "error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = g.metrics.WritePrometheus(w)
}

// --- batch fan-out ------------------------------------------------------------

// gwLine mirrors the server's batchLine field-for-field (same names,
// same order, same omitempty), with the result carried as raw bytes:
// the gateway re-frames each upstream line with its global index but
// never re-marshals the shard's result object, so a gateway batch is
// byte-identical to a single-server batch line for line (modulo the
// elapsed_ns inside the result, which is wall-clock).
type gwLine struct {
	Index   *int            `json:"index,omitempty"`
	Key     string          `json:"key,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   string          `json:"error,omitempty"`
	TraceID string          `json:"trace_id,omitempty"`
}

// batchReq is one input line held for dispatch: its global index, its
// raw bytes (replayed verbatim to the owning shard — the gateway never
// re-marshals requests either), and its echo key.
type batchReq struct {
	index int
	raw   json.RawMessage
	key   string
}

// handleBatch serves POST /v1/batch by fan-out: input lines are grouped
// by the shard owning their fingerprint, each group becomes one
// upstream batch stream, and the result streams merge onto the client
// connection as lines complete (?ordered=1 restores global input order
// through the same Reordered collector the single server uses). A shard
// failing mid-stream fails only its own unanswered lines — each becomes
// an in-band {"index", "key", "error"} line — and a malformed input
// line stops the fan-out with the server's terminal index-less error
// line after the dispatched work drains.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	ordered := r.URL.Query().Get("ordered") == "1" || r.URL.Query().Get("ordered") == "true"
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	if g.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.timeout)
		defer cancel()
	}

	// Partition the input by owning shard. The whole batch is decoded
	// up front — the body is already buffered and capped, and grouping
	// needs the full index space anyway.
	var decodeErr error
	groups := make(map[string][]batchReq)
	total := 0
	dec := json.NewDecoder(bytes.NewReader(body))
	for index := 0; ; index++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err != io.EOF {
				decodeErr = err
			}
			break
		}
		var doc keyDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			decodeErr = err
			break
		}
		shard := g.pickShardRoute(g.docRoutingKey(doc))
		groups[shard] = append(groups[shard], batchReq{index: index, raw: raw, key: doc.Key})
		total++
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)

	// Collector: shard readers publish each global line here; the main
	// goroutine is the only writer to the connection.
	type done struct{ line gwLine }
	results := make(chan done)
	var wg sync.WaitGroup
	for shard, reqs := range groups {
		wg.Add(1)
		go func(shard string, reqs []batchReq) {
			defer wg.Done()
			g.runShardBatch(ctx, shard, reqs, func(line gwLine) {
				select {
				case results <- done{line: line}:
				case <-ctx.Done():
				}
			})
		}(shard, reqs)
	}
	go func() { wg.Wait(); close(results) }()

	emit := func(line gwLine) bool {
		if err := enc.Encode(line); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if ordered {
		// Feed the merged stream through the same collector the server
		// uses: BatchItems carry the global index, a side table carries
		// the frames.
		var frameMu sync.Mutex
		frames := make(map[int]gwLine, total)
		seq := iter.Seq2[BatchItem, error](func(yield func(BatchItem, error) bool) {
			for d := range results {
				frameMu.Lock()
				frames[*d.line.Index] = d.line
				frameMu.Unlock()
				if !yield(BatchItem{Index: *d.line.Index}, nil) {
					return
				}
			}
		})
		for it := range Reordered(seq) {
			frameMu.Lock()
			line := frames[it.Index]
			delete(frames, it.Index)
			frameMu.Unlock()
			if !emit(line) {
				go func() {
					for range results {
					} // unblock the shard readers; ctx teardown follows
				}()
				return
			}
		}
	} else {
		for d := range results {
			if !emit(d.line) {
				go func() {
					for range results {
					}
				}()
				return
			}
		}
	}

	if decodeErr != nil {
		_ = enc.Encode(gwLine{Error: fmt.Sprintf("lclgrid: bad batch document: %v", decodeErr), TraceID: TraceIDFromContext(ctx)})
		_ = rc.Flush()
	}
}

// pickShard returns the first routable shard for a request key.
func (g *Gateway) pickShard(key string) string {
	return g.pickShardRoute(g.routingKey(key))
}

// pickShardRoute returns the first routable shard for a routing
// identity (see docRoutingKey): the ring owner when healthy, else the
// first healthy successor (falling back to the owner when nothing
// probes healthy — stale health beats refusing the line).
func (g *Gateway) pickShardRoute(route string) string {
	seq := g.ring.Sequence(route)
	for _, shard := range seq {
		if g.shardHealthy(shard) {
			return shard
		}
	}
	return seq[0]
}

// runShardBatch streams one shard's sub-batch and republishes each line
// with its global index. Any failure — transport, status, a truncated
// or malformed upstream stream — fails the not-yet-answered lines
// in-band and marks the shard unhealthy; answered lines are never
// disturbed.
func (g *Gateway) runShardBatch(ctx context.Context, shard string, reqs []batchReq, publish func(gwLine)) {
	ctx, sp := StartSpan(ctx, "batch.shard")
	sp.SetAttr("shard", shard)
	sp.SetAttr("lines", strconv.Itoa(len(reqs)))
	defer sp.End()
	tid := TraceIDFromContext(ctx)
	// Indexes answered so far; on failure the remainder get error lines.
	answered := make([]bool, len(reqs))
	fail := func(err error) {
		sp.SetError(err)
		g.setHealth(shard, false, err.Error())
		g.metrics.gatewayError()
		for i := range reqs {
			if answered[i] {
				continue
			}
			index := reqs[i].index
			publish(gwLine{
				Index:   &index,
				Key:     reqs[i].key,
				Error:   fmt.Sprintf("lclgrid: shard %s failed mid-batch: %v", shard, err),
				TraceID: tid,
			})
		}
	}

	var sub bytes.Buffer
	for _, rq := range reqs {
		sub.Write(rq.raw)
		sub.WriteByte('\n')
	}
	// Sub-batches run unordered upstream even for ordered client
	// requests: global ordering is restored at the gateway's collector,
	// and an ordered upstream would only add head-of-line blocking.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, shard+"/v1/batch", &sub)
	if err != nil {
		fail(err)
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	injectTraceparent(ctx, req.Header)
	resp, err := g.client.Do(req)
	if err != nil {
		fail(err)
		return
	}
	defer resp.Body.Close()
	g.metrics.gatewayRequest("/v1/batch", shard, resp.StatusCode)
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		fail(fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data))))
		return
	}
	g.setHealth(shard, true, "")

	seen := 0
	updec := json.NewDecoder(bufio.NewReader(resp.Body))
	for {
		var line gwLine
		if err := updec.Decode(&line); err != nil {
			if err == io.EOF && seen == len(reqs) {
				return // clean: every line answered
			}
			if err == io.EOF {
				err = fmt.Errorf("stream ended after %d of %d lines", seen, len(reqs))
			}
			fail(err)
			return
		}
		if line.Index == nil {
			// A terminal index-less error line: the shard aborted its
			// stream. Everything unanswered fails with its message.
			fail(errors.New(line.Error))
			return
		}
		local := *line.Index
		if local < 0 || local >= len(reqs) || answered[local] {
			fail(fmt.Errorf("stream returned unexpected index %d", local))
			return
		}
		answered[local] = true
		seen++
		global := reqs[local].index
		line.Index = &global
		publish(line)
	}
}
