package lclgrid

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// threeColDef is a hand-written DSL statement of grid 3-colouring with
// deliberately unsorted, duplicated pairs — Canonical must not care.
func threeColDef() *ProblemDef {
	differ := []LabelPair{
		{"3", "1"}, {"1", "2"}, {"2", "3"}, {"1", "3"},
		{"2", "1"}, {"3", "2"}, {"1", "2"}, // duplicate
	}
	return &ProblemDef{
		Name:   "hand-written 3-colouring",
		Dims:   2,
		Labels: []string{"1", "2", "3"},
		Allow:  [][]LabelPair{differ, differ},
	}
}

// TestProblemDefFingerprintParity is the equivalence pin of the DSL: for
// every table-representable catalogue problem, extraction → JSON →
// decode → Compile yields a problem with the identical fingerprint. A
// DSL re-statement of a builtin therefore shares the builtin's cache
// entries everywhere the fingerprint keys them (SynthCache, the fleet
// store, the gateway ring).
func TestProblemDefFingerprintParity(t *testing.T) {
	reg := DefaultRegistry()
	checked := 0
	for _, spec := range reg.Specs() {
		if spec.Problem == nil {
			continue
		}
		p := spec.Problem()
		def := NewProblemDef(p)
		if err := def.Validate(); err != nil {
			t.Errorf("%s: extracted definition does not validate: %v", spec.Key, err)
			continue
		}
		wire, err := json.Marshal(def)
		if err != nil {
			t.Fatalf("%s: marshal: %v", spec.Key, err)
		}
		var decoded ProblemDef
		if err := json.Unmarshal(wire, &decoded); err != nil {
			t.Fatalf("%s: unmarshal: %v", spec.Key, err)
		}
		compiled, err := decoded.Compile()
		if err != nil {
			t.Errorf("%s: compile: %v", spec.Key, err)
			continue
		}
		if got, want := compiled.Fingerprint(), p.Fingerprint(); got != want {
			t.Errorf("%s: DSL round-trip changed the fingerprint:\nbuiltin: %s\nround-trip: %s", spec.Key, want, got)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d catalogue problems were table-representable; the catalogue carries more", checked)
	}
}

// TestProblemDefCanonicalNormalization: pair order, duplicate pairs and
// an all-label node_ok are representation noise — canonical forms and
// fingerprints must agree across them.
func TestProblemDefCanonicalNormalization(t *testing.T) {
	messy := threeColDef()
	messy.NodeOK = []string{"3", "1", "2", "1"} // full cover, shuffled, duplicated

	canon, err := messy.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if canon.NodeOK != nil {
		t.Errorf("node_ok covering the whole alphabet must be elided, got %v", canon.NodeOK)
	}
	for dim, pairs := range canon.Allow {
		if len(pairs) != 6 {
			t.Errorf("dimension %d: want 6 deduped pairs, got %d", dim, len(pairs))
		}
	}
	// Canonical is a fixed point.
	again, err := canon.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := json.Marshal(canon)
	cb, _ := json.Marshal(again)
	if !bytes.Equal(ca, cb) {
		t.Errorf("Canonical is not idempotent:\n%s\n%s", ca, cb)
	}

	fpMessy, err := messy.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpCanon, err := canon.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpMessy != fpCanon {
		t.Errorf("fingerprint depends on representation: %s vs %s", fpMessy, fpCanon)
	}

	// A partial node_ok is NOT elided and changes the fingerprint.
	partial := threeColDef()
	partial.NodeOK = []string{"2", "1"}
	pc, err := partial.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"1", "2"}; len(pc.NodeOK) != 2 || pc.NodeOK[0] != want[0] || pc.NodeOK[1] != want[1] {
		t.Errorf("partial node_ok must sort to %v, got %v", want, pc.NodeOK)
	}
	fpPartial, err := partial.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpPartial == fpCanon {
		t.Error("restricting node_ok must change the fingerprint")
	}
}

// TestProblemDefValidateRejects: structural defects fail with clear
// errors before anything quadratic is allocated.
func TestProblemDefValidateRejects(t *testing.T) {
	pair := func(a, b string) LabelPair { return LabelPair{A: a, B: b} }
	base := func() *ProblemDef {
		return &ProblemDef{
			Dims:   2,
			Labels: []string{"a", "b"},
			Allow: [][]LabelPair{
				{pair("a", "b"), pair("b", "a")},
				{pair("a", "b"), pair("b", "a")},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*ProblemDef)
		want   string
	}{
		{"zero dims", func(d *ProblemDef) { d.Dims = 0; d.Allow = nil }, "1..8 dims"},
		{"too many dims", func(d *ProblemDef) { d.Dims = 9 }, "1..8 dims"},
		{"no labels", func(d *ProblemDef) { d.Labels = nil }, "at least one label"},
		{"empty label", func(d *ProblemDef) { d.Labels = []string{"a", ""} }, "is empty"},
		{"duplicate label", func(d *ProblemDef) { d.Labels = []string{"a", "a"} }, "appears twice"},
		{"huge alphabet", func(d *ProblemDef) {
			d.Labels = make([]string, maxDefLabels+1)
			for i := range d.Labels {
				d.Labels[i] = fmt.Sprintf("l%d", i)
			}
		}, "the bound is 512"},
		{"table count mismatch", func(d *ProblemDef) { d.Allow = d.Allow[:1] }, "one per dimension"},
		{"unknown pair label", func(d *ProblemDef) { d.Allow[0] = append(d.Allow[0], pair("a", "zzz")) }, "not in the alphabet"},
		{"unknown node_ok label", func(d *ProblemDef) { d.NodeOK = []string{"zzz"} }, "not in the alphabet"},
		{"long name", func(d *ProblemDef) { d.Name = strings.Repeat("n", maxDefNameLen+1) }, "the bound is"},
		{"pair table flood", func(d *ProblemDef) {
			flood := make([]LabelPair, 4*2*2+1)
			for i := range flood {
				flood[i] = pair("a", "b")
			}
			d.Allow[1] = flood
		}, "allowed pairs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			tc.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("Validate accepted a defective definition")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("the base definition must validate: %v", err)
	}
}

// TestLabelPairStrictArity: the wire form rejects arrays that are not
// exactly two labels — encoding/json would otherwise silently truncate
// or zero-fill.
func TestLabelPairStrictArity(t *testing.T) {
	for _, bad := range []string{`["a"]`, `["a","b","c"]`, `[]`, `"ab"`, `{"a":"b"}`} {
		var p LabelPair
		if err := json.Unmarshal([]byte(bad), &p); err == nil {
			t.Errorf("%s decoded as a LabelPair", bad)
		}
	}
	var p LabelPair
	if err := json.Unmarshal([]byte(`["x","y"]`), &p); err != nil || p.A != "x" || p.B != "y" {
		t.Errorf(`["x","y"] should decode, got %+v, %v`, p, err)
	}
	out, err := json.Marshal(LabelPair{A: "x", B: "y"})
	if err != nil || string(out) != `["x","y"]` {
		t.Errorf("marshal: got %s, %v", out, err)
	}
}

// TestDefineProblemIdempotent: registration keys on the canonical
// fingerprint, so a restated equivalent returns the existing key.
func TestDefineProblemIdempotent(t *testing.T) {
	e := NewEngine()
	rec, created, err := e.DefineProblem(threeColDef())
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first definition must create")
	}
	if !strings.HasPrefix(rec.Key, UserKeyPrefix) {
		t.Errorf("key %q lacks the %q prefix", rec.Key, UserKeyPrefix)
	}

	// Restate it: different display name, reversed pair order, explicit
	// full-coverage node_ok. Same constraint system, same key.
	restated := threeColDef()
	restated.Name = "a different name for the same problem"
	for dim := range restated.Allow {
		for i, j := 0, len(restated.Allow[dim])-1; i < j; i, j = i+1, j-1 {
			restated.Allow[dim][i], restated.Allow[dim][j] = restated.Allow[dim][j], restated.Allow[dim][i]
		}
	}
	restated.NodeOK = []string{"1", "2", "3"}
	rec2, created2, err := e.DefineProblem(restated)
	if err != nil {
		t.Fatal(err)
	}
	if created2 {
		t.Error("restated definition must not re-create")
	}
	if rec2.Key != rec.Key || rec2.Fingerprint != rec.Fingerprint {
		t.Errorf("restated definition got a different identity: %+v vs %+v", rec2, rec)
	}

	// The registered spec is a user-sourced oracle spec.
	spec, err := e.Registry().Lookup(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Oracle || spec.SourceLabel() != SourceUser {
		t.Errorf("user spec: Oracle=%v source=%q", spec.Oracle, spec.SourceLabel())
	}

	// Defects arrive off the wire: every DefineProblem error is a
	// *RequestError.
	bad := threeColDef()
	bad.Labels = nil
	if _, _, err := e.DefineProblem(bad); err == nil {
		t.Fatal("defective definition must fail")
	} else {
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("DefineProblem error %v is not a *RequestError", err)
		}
	}
}

// TestSolveInlineDefSharesBuiltinCache: a DSL re-statement of the 5col
// builtin solves from the builtin's warm cache — zero new syntheses —
// and produces byte-identical labels. This is the acceptance pin for
// "same fingerprint → same warm cache".
func TestSolveInlineDefSharesBuiltinCache(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()

	spec, err := e.Registry().Lookup("5col")
	if err != nil {
		t.Fatal(err)
	}
	def := NewProblemDef(spec.Problem())

	builtin, err := e.Solve(ctx, SolveRequest{Key: "5col", N: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	misses := e.CacheStats().Misses

	inline, err := e.Solve(ctx, SolveRequest{ProblemDef: def, N: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// 5col's hinted attempt (k=1, 3x2) is the oracle schedule's first
	// shape, so the inline path probes the identical SynthKey first and
	// must run no new synthesis.
	if got := e.CacheStats().Misses; got != misses {
		t.Errorf("inline solve ran %d new syntheses; the builtin's cache should serve it", got-misses)
	}
	if !inline.CacheHit {
		t.Error("inline solve must report a cache hit")
	}
	if len(builtin.Labels) == 0 || len(inline.Labels) != len(builtin.Labels) {
		t.Fatalf("label shapes differ: %d vs %d", len(inline.Labels), len(builtin.Labels))
	}
	for i := range builtin.Labels {
		if builtin.Labels[i] != inline.Labels[i] {
			t.Fatalf("labels differ at %d: %d vs %d", i, builtin.Labels[i], inline.Labels[i])
		}
	}
}

// TestLabelWindowInlineDef: windowed labeling accepts an inline
// definition and serves the same bytes as the registered key.
func TestLabelWindowInlineDef(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	spec, err := e.Registry().Lookup("5col")
	if err != nil {
		t.Fatal(err)
	}
	def := NewProblemDef(spec.Problem())

	byKey, err := e.LabelWindow(ctx, LabelRequest{Key: "5col", N: 100, Seed: 3, X: 40, Y: 41, W: 5, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	byDef, err := e.LabelWindow(ctx, LabelRequest{ProblemDef: def, N: 100, Seed: 3, X: 40, Y: 41, W: 5, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(byDef.Labels) != len(byKey.Labels) {
		t.Fatalf("window sizes differ: %d vs %d", len(byDef.Labels), len(byKey.Labels))
	}
	for i := range byKey.Labels {
		if byKey.Labels[i] != byDef.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
	if !byDef.CacheHit {
		t.Error("the inline window must serve from the key-warmed cache")
	}
}

// TestSolveUserRegisteredKey: a registered user problem solves through
// its "user:" key like any catalogue key, and plans through the oracle
// path (synthesis first, Θ(n) fallback armed).
func TestSolveUserRegisteredKey(t *testing.T) {
	e := NewEngine()
	rec, _, err := e.DefineProblem(threeColDef())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := e.Plan(SolveRequest{Key: rec.Key, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Key != rec.Key {
		t.Errorf("plan key %q, want %q", plan.Key, rec.Key)
	}
	if len(plan.Strategies) == 0 {
		t.Fatal("user problem planned no strategies")
	}
	res, err := e.Solve(context.Background(), SolveRequest{Key: rec.Key, N: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verification != Verified {
		t.Errorf("user problem solve did not verify: %v", res.Verification)
	}
}

// TestWarmOracleSpec: Warm covers user-registered (oracle-hinted) keys —
// afterwards a solve runs zero syntheses.
func TestWarmOracleSpec(t *testing.T) {
	e := NewEngine()
	rec, _, err := e.DefineProblem(threeColDef())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := e.Warm(context.Background(), rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Warmed != 1 {
		t.Fatalf("warm stats: %+v, want 1 warmed", ws)
	}
	misses := e.CacheStats().Misses
	if _, err := e.Solve(context.Background(), SolveRequest{Key: rec.Key, N: 12}); err != nil {
		t.Fatal(err)
	}
	if got := e.CacheStats().Misses; got != misses {
		t.Errorf("solve after warm ran %d syntheses", got-misses)
	}
}

// FuzzProblemDef fuzzes the definition pipeline end to end: any byte
// string that decodes into a ProblemDef and passes Validate must
// canonicalize, compile, fingerprint, register and plan without
// panicking, overflowing, or allocating beyond the wire bounds — the
// exact exposure of POST /v1/problems and inline "problem_def" fields.
// Validation failures are fine and must be *RequestError when they come
// out of DefineProblem; crashes and runaway allocations are the bugs
// this hunts.
func FuzzProblemDef(f *testing.F) {
	seeds := []string{
		`{"dims":2,"labels":["a","b"],"allow":[[["a","b"],["b","a"]],[["a","b"],["b","a"]]]}`,
		`{"name":"my-3col","dims":2,"labels":["1","2","3"],"allow":[[["1","2"],["2","3"],["3","1"]],[["1","2"],["2","3"],["3","1"]]]}`,
		`{"dims":1,"labels":["x"],"allow":[[["x","x"]]],"node_ok":["x"]}`,
		`{"dims":2,"labels":["a"],"allow":[[],[]],"node_ok":[]}`,
		`{"dims":0,"labels":["a"],"allow":[]}`,
		`{"dims":9,"labels":["a"],"allow":[[],[],[],[],[],[],[],[],[]]}`,
		`{"dims":2,"labels":["a","a"],"allow":[[],[]]}`,
		`{"dims":2,"labels":["a",""],"allow":[[],[]]}`,
		`{"dims":2,"labels":["a","b"],"allow":[[["a","zzz"]],[]]}`,
		`{"dims":2,"labels":["a","b"],"allow":[[["a"]],[]]}`,
		`{"dims":2,"labels":["a","b"],"allow":[[["a","b","c"]],[]]}`,
		`{"dims":2,"labels":["a","b"],"allow":[[],[]],"node_ok":["zzz"]}`,
		`{"dims":3,"labels":["a","b"],"allow":[[],[]]}`,
		`{"dims":2}`,
		`[]`,
		`{"dims":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	eng := NewEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		var def ProblemDef
		if err := json.Unmarshal(data, &def); err != nil {
			return // not a ProblemDef document; nothing to check
		}
		if err := def.Validate(); err != nil {
			return // rejected at the wire, as intended
		}
		// A validated definition must canonicalize, compile and
		// fingerprint; the canonical form must fingerprint identically.
		canon, err := def.Canonical()
		if err != nil {
			t.Fatalf("Validate accepted but Canonical rejected: %v", err)
		}
		fp, err := def.Fingerprint()
		if err != nil {
			t.Fatalf("Validate accepted but Fingerprint rejected: %v", err)
		}
		cfp, err := canon.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp != cfp {
			t.Fatalf("canonicalization changed the fingerprint: %s vs %s", fp, cfp)
		}
		// Registration keys on the fingerprint and never panics; its
		// errors are the client's (*RequestError).
		rec, _, err := eng.DefineProblem(&def)
		if err != nil {
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("DefineProblem error %v is not a *RequestError", err)
			}
			return
		}
		// A registered definition must be plannable without a panic.
		// Planning is probe-only (the oracle runs inside strategy
		// closures), so this is cheap even for the largest alphabets the
		// bounds admit.
		plan, err := eng.Plan(SolveRequest{Key: rec.Key, N: 12})
		if err == nil && plan == nil {
			t.Fatal("Plan returned nil plan and nil error")
		}
	})
}
