package lclgrid

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lclgrid/internal/core"
)

// StrategyKind names one way the engine can serve a request. The
// Planner ranks strategies into a Plan; the plan executor runs them in
// order until one succeeds.
type StrategyKind string

const (
	// StrategyConstant fills the grid with a constant solution label
	// (O(1) problems, zero rounds).
	StrategyConstant StrategyKind = "constant-fill"
	// StrategyDirect runs a hand-written algorithm adapter (§8, §10,
	// the §6 L_M construction, or a caller-supplied Solver).
	StrategyDirect StrategyKind = "direct"
	// StrategyCached serves a normal form whose lookup table is already
	// in the synthesis cache — no SAT work at all.
	StrategyCached StrategyKind = "cached-table"
	// StrategySynthesis searches for a normal-form lookup table (§7),
	// racing multiple (k, h, w) candidates concurrently.
	StrategySynthesis StrategyKind = "synthesis"
	// StrategyBaseline runs the Θ(n) gather-and-solve brute force —
	// either as the problem's primary strategy or as the fallback when
	// a normal form needs a larger torus than the request asked for.
	StrategyBaseline StrategyKind = "baseline"
)

// PlanAttempt is one normal-form shape annotated for planning: the
// smallest torus side it supports, whether the request's torus meets it,
// and whether a completed outcome for it is already cached.
type PlanAttempt struct {
	K       int  `json:"k"`
	H       int  `json:"h"`
	W       int  `json:"w"`
	MinSide int  `json:"min_side"`
	Fits    bool `json:"fits"`
	Cached  bool `json:"cached,omitempty"`
}

// PlannedStrategy is one ranked stage of a Plan. Skip non-empty means
// the planner already knows the stage cannot run for this request (it is
// recorded as skipped in the Result's Trace); Fallback marks the Θ(n)
// stage that runs only when the preceding synthesis failed because the
// torus is below the normal form's minimum side. Observers receive the
// strategy by pointer and must treat it as read-only.
type PlannedStrategy struct {
	Kind     StrategyKind  `json:"kind"`
	Solver   string        `json:"solver,omitempty"`
	Attempts []PlanAttempt `json:"attempts,omitempty"`
	Reason   string        `json:"reason,omitempty"`
	Skip     string        `json:"skip,omitempty"`
	Fallback bool          `json:"fallback,omitempty"`

	// run executes the stage; nil exactly when Skip is set.
	run func(ctx context.Context) (*Result, error)
	// skipErr carries the canonical error of a planner-skipped stage
	// (e.g. the ErrTorusTooSmall that arms the fallback gate).
	skipErr error
}

// Plan is the ranked strategy list the Planner builds for one request —
// everything Engine.Solve will do, decided up front from the registry
// spec, the request options, the torus shape and a non-blocking cache
// probe, with no SAT work. `lclgrid explain` prints it; the executor
// runs it and records each stage's outcome in Result.Trace.
type Plan struct {
	// Key is the registry key the request named ("" for inline problems).
	Key string `json:"key,omitempty"`
	// Problem is the display name of the problem instance.
	Problem string `json:"problem"`
	// Class is the registered classification (ClassUnknown for inline
	// problems until the oracle runs).
	Class Class `json:"class"`
	// Sides is the resolved torus shape.
	Sides []int `json:"sides"`
	// Strategies is the ranked stage list.
	Strategies []PlannedStrategy `json:"strategies"`

	torus *Torus
	ids   []int
	opts  Options
}

// String implements fmt.Stringer with a compact one-line-per-stage form.
func (p *Plan) String() string {
	s := fmt.Sprintf("plan for %s on torus %v (%v):", p.Problem, p.Sides, p.Class)
	for i := range p.Strategies {
		st := &p.Strategies[i]
		line := fmt.Sprintf("\n  %d. %s", i+1, st.Kind)
		if st.Solver != "" {
			line += " [" + st.Solver + "]"
		}
		for _, a := range st.Attempts {
			line += fmt.Sprintf(" k=%d %dx%d", a.K, a.H, a.W)
		}
		if st.Skip != "" {
			line += " — skipped: " + st.Skip
		} else if st.Reason != "" {
			line += " — " + st.Reason
		}
		s += line
	}
	return s
}

// TraceOutcome is the recorded fate of one plan stage.
type TraceOutcome string

const (
	// TraceOK: the stage produced the result.
	TraceOK TraceOutcome = "ok"
	// TraceFailed: the stage ran and failed; the executor moved on (or
	// returned its error when no later stage applied).
	TraceFailed TraceOutcome = "failed"
	// TraceSkipped: the stage never ran — the planner ruled it out, or
	// its gate (fallback-only) did not open.
	TraceSkipped TraceOutcome = "skipped"
)

// TraceStep records one plan stage's outcome in Result.Trace. It is
// JSON-marshallable ({"strategy":"synthesis","outcome":"ok",
// "detail":"k=1 window 3x3, 97 tiles","elapsed_ns":123456}); the trace
// itself is deliberately excluded from Result's wire form — marshal
// res.Trace directly when a service wants to ship it.
type TraceStep struct {
	Strategy StrategyKind  `json:"strategy"`
	Outcome  TraceOutcome  `json:"outcome"`
	Detail   string        `json:"detail,omitempty"`
	Elapsed  time.Duration `json:"elapsed_ns,omitempty"`
}

// Planner builds Plans from SolveRequests: registry spec (or inline
// problem), request options, torus shape and the engine's non-blocking
// SynthCache.Contains probe. Planning performs no SAT work — that is
// what makes `lclgrid explain` free — and no solver runs until the
// executor walks the plan.
type Planner struct {
	e *Engine
}

// Planner returns the engine's request planner.
func (e *Engine) Planner() *Planner { return &Planner{e: e} }

// Plan builds the ranked plan for req without solving it — the
// explainability entry point. Engine.Solve builds the identical plan
// internally, so the printed strategies are exactly what a Solve of the
// same request would execute (modulo cache churn between the two calls).
func (e *Engine) Plan(req SolveRequest) (*Plan, error) { return e.Planner().Plan(req) }

// errNoNormalForm marks the one-sided oracle exhausting its power budget
// without finding a normal form: the problem is conjectured global and
// the baseline fallback stage takes over.
var errNoNormalForm = errors.New("no normal form found within the power budget (one-sided oracle: conjectured Θ(n))")

// fallbackTriggers reports whether a failed stage's error arms the
// Θ(n) fallback stage: a normal form that needs a larger torus, or an
// oracle that found no normal form at all. Any other failure (UNSAT at
// every shape with a big-enough torus, a rejected labelling, an
// unsolvable instance) is the request's real answer.
func fallbackTriggers(err error) bool {
	return errors.Is(err, ErrTorusTooSmall) || errors.Is(err, errNoNormalForm)
}

// RequestError marks a request-shaped failure: the request itself —
// not the problem instance — is unserveable (bad document, unknown
// key, shape beyond the wire bounds, mismatched dimensions or ids).
// Every error Planner.Plan returns is one, which is how services
// separate client errors (HTTP 400) from solver outcomes without
// re-planning: errors.As on the error from Engine.Solve.
type RequestError struct {
	Err error
}

func (e *RequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RequestError) Unwrap() error { return e.Err }

// Plan builds the ranked plan for req; see Engine.Plan. All errors are
// request-shaped and returned wrapped in *RequestError.
func (pl *Planner) Plan(req SolveRequest) (*Plan, error) {
	plan, err := pl.plan(req)
	if err != nil {
		return nil, &RequestError{Err: err}
	}
	return plan, nil
}

// plan is Plan without the RequestError wrapping.
func (pl *Planner) plan(req SolveRequest) (*Plan, error) {
	e := pl.e
	// Wire validation first: requests reach the planner straight off the
	// network, and the bounds must hold before any shape is resolved or
	// allocated (see SolveRequest.Validate).
	if err := req.Validate(); err != nil {
		return nil, err
	}
	o := req.options()
	if req.ProblemDef != nil {
		// A wire-form definition compiles to the same table-backed
		// *lcl.Problem a programmatic caller would pass, then follows the
		// inline-problem path: oracle classification, synthesis when a
		// normal form exists, Θ(n) fallback otherwise.
		p, err := req.ProblemDef.Compile()
		if err != nil {
			return nil, err
		}
		req.Problem = p
	}
	if req.Problem != nil {
		t, err := req.torus(nil)
		if err != nil {
			return nil, err
		}
		if req.Problem.Dims() != t.Dim() {
			return nil, fmt.Errorf("lclgrid: %d-dimensional problem %s on a %d-dimensional torus", req.Problem.Dims(), req.Problem.Name(), t.Dim())
		}
		ids, err := req.ids(t)
		if err != nil {
			return nil, err
		}
		return pl.planProblem(req.Problem, t, ids, o)
	}
	spec, err := e.reg.Lookup(req.Key)
	if err != nil {
		return nil, err
	}
	t, err := req.torus(spec)
	if err != nil {
		return nil, err
	}
	if spec.Dims != 0 && spec.Dims != t.Dim() {
		return nil, fmt.Errorf("lclgrid: %s is registered for %d-dimensional grids, torus is %d-dimensional", spec.Key, spec.Dims, t.Dim())
	}
	ids, err := req.ids(t)
	if err != nil {
		return nil, err
	}
	return pl.planSpec(spec, t, ids, o)
}

// planSpec builds the plan for a registered key from the spec's plan
// hint.
func (pl *Planner) planSpec(spec *ProblemSpec, t *Torus, ids []int, o Options) (*Plan, error) {
	plan := &Plan{Key: spec.Key, Problem: spec.Name, Class: spec.Class, Sides: t.Sides(), torus: t, ids: ids, opts: o}
	if o.Power > 0 {
		if spec.Problem == nil {
			return nil, fmt.Errorf("lclgrid: %s has no SFT form to synthesize against", spec.Name)
		}
		h, w := o.H, o.W
		if h == 0 || w == 0 {
			h, w = DefaultWindow(o.Power)
		}
		// A forced power is a demand for that normal form specifically:
		// no baseline fallback.
		pl.addSynthesisStages(plan, spec.Problem(), []SynthAttempt{{o.Power, h, w}},
			fmt.Sprintf("synthesis forced by the request (power %d)", o.Power), false, nil)
		return plan, nil
	}
	switch {
	case spec.Constant:
		p := spec.Problem()
		plan.Strategies = append(plan.Strategies, PlannedStrategy{
			Kind:   StrategyConstant,
			Solver: (&ConstantSolver{}).Name(),
			Reason: "O(1): a constant label tiles the grid (§6)",
			run: func(ctx context.Context) (*Result, error) {
				return (&ConstantSolver{Problem: p}).Solve(ctx, t, ids, withOptions(o))
			},
		})
	case len(spec.Attempts) > 0:
		pl.addSynthesisStages(plan, spec.Problem(), spec.Attempts, "", spec.Problem != nil, nil)
	case spec.Direct != nil:
		solver := spec.Direct(pl.e)
		plan.Strategies = append(plan.Strategies, PlannedStrategy{
			Kind:   StrategyDirect,
			Solver: solver.Name(),
			Reason: "registered direct algorithm",
			run: func(ctx context.Context) (*Result, error) {
				return solver.Solve(ctx, t, ids, withOptions(o))
			},
		})
	case spec.Baseline:
		p := spec.Problem()
		plan.Strategies = append(plan.Strategies, pl.baselineStage(p, t, ids, o,
			func() Class { return spec.Class }, false,
			"Θ(n) gather-and-solve is the registered strategy"))
	case spec.Oracle:
		// Oracle specs (user-defined problems) plan exactly like inline
		// problems — the cached one-sided oracle classifies at execution
		// time, synthesis serves Θ(log* n) outcomes and the Θ(n) baseline
		// everything else — with the registry key stamped onto the plan.
		inline, err := pl.planProblem(spec.Problem(), t, ids, o)
		if err != nil {
			return nil, err
		}
		inline.Key = spec.Key
		if inline.Class == ClassUnknown {
			inline.Class = spec.Class
		}
		return inline, nil
	default:
		return nil, fmt.Errorf("lclgrid: spec %q carries no plan hint", spec.Key)
	}
	return plan, nil
}

// planProblem builds the plan for an inline (possibly unregistered) SFT
// problem: constant fill when a constant solution exists, otherwise the
// cached one-sided oracle drives a synthesis stage with the Θ(n) brute
// force as the fallback — including when a synthesized normal form
// exists but needs a larger torus than the request asked for (the same
// semantics as the registered-key path).
func (pl *Planner) planProblem(p *Problem, t *Torus, ids []int, o Options) (*Plan, error) {
	plan := &Plan{Problem: p.Name(), Class: ClassUnknown, Sides: t.Sides(), torus: t, ids: ids, opts: o}
	if o.Power > 0 {
		h, w := o.H, o.W
		if h == 0 || w == 0 {
			h, w = DefaultWindow(o.Power)
		}
		pl.addSynthesisStages(plan, p, []SynthAttempt{{o.Power, h, w}},
			fmt.Sprintf("synthesis forced by the request (power %d)", o.Power), false, nil)
		return plan, nil
	}
	if len(p.ConstantSolutions()) > 0 {
		plan.Class = ClassO1
		plan.Strategies = append(plan.Strategies, PlannedStrategy{
			Kind:   StrategyConstant,
			Solver: (&ConstantSolver{}).Name(),
			Reason: "O(1): a constant label tiles the grid (§6)",
			run: func(ctx context.Context) (*Result, error) {
				return (&ConstantSolver{Problem: p}).Solve(ctx, t, ids, withOptions(o))
			},
		})
		return plan, nil
	}

	// The oracle proving Θ(log* n) but the normal form not fitting the
	// torus must reach the baseline as a Θ(log* n) problem; the oracle
	// finding nothing reaches it as conjectured-global. The stages share
	// this cell to communicate which happened.
	knownClass := ClassUnknown
	st := PlannedStrategy{
		Kind:   StrategySynthesis,
		Solver: (&SynthesisSolver{}).Name(),
		Reason: fmt.Sprintf("§7 one-sided oracle: race window candidates for k = 1..%d until a lookup table exists", o.MaxPower),
	}
	if p.Dims() != 2 {
		st.Skip = fmt.Sprintf("normal-form synthesis is implemented for 2-dimensional problems only; %s is %d-dimensional", p.Name(), p.Dims())
		st.skipErr = fmt.Errorf("lclgrid: %s: %w", p.Name(), errNoNormalForm)
	} else {
		for _, shape := range core.OracleSchedule(o.MaxPower) {
			st.Attempts = append(st.Attempts, pl.annotateAttempt(p, t, SynthAttempt{shape[0], shape[1], shape[2]}))
		}
		st.run = func(ctx context.Context) (*Result, error) {
			oracle := pl.e.Classify(ctx, p, o.MaxPower)
			if oracle.Err != nil {
				return nil, oracle.Err
			}
			if oracle.Class != ClassLogStar {
				return nil, fmt.Errorf("lclgrid: %s: %w", p.Name(), errNoNormalForm)
			}
			knownClass = ClassLogStar
			s := &SynthesisSolver{
				Problem:  p,
				Attempts: []SynthAttempt{{oracle.Alg.K, oracle.Alg.H, oracle.Alg.W}},
				Engine:   pl.e,
			}
			return s.Solve(ctx, t, ids, withOptions(o))
		}
	}
	plan.Strategies = append(plan.Strategies, st)
	plan.Strategies = append(plan.Strategies, pl.baselineStage(p, t, ids, o,
		func() Class { return knownClass }, true,
		"Θ(n) gather-and-solve serves the problem when no normal form applies"))
	return plan, nil
}

// annotateAttempt builds the PlanAttempt annotation for one shape.
func (pl *Planner) annotateAttempt(p *Problem, t *Torus, a SynthAttempt) PlanAttempt {
	return PlanAttempt{
		K: a.K, H: a.H, W: a.W,
		MinSide: core.MinTorusSideFor(a.K, a.H, a.W),
		Fits:    attemptFits(t, a),
		Cached:  pl.e.cache.Contains(SynthKey{Fingerprint: p.Fingerprint(), K: a.K, H: a.H, W: a.W}),
	}
}

// addSynthesisStages appends the cached-outcome probe stage (when the
// cache already holds a completed outcome for a fitting shape), the
// synthesis race stage over the remaining shapes, and — when
// withFallback — the gated Θ(n) baseline. The cached stage owns the
// probed shapes entirely: a cached table serves the request instantly,
// a cached UNSAT fails the stage without SAT work, and either way the
// synthesis stage never replays a shape whose outcome is already known.
func (pl *Planner) addSynthesisStages(plan *Plan, p *Problem, attempts []SynthAttempt, reason string, withFallback bool, classOf func() Class) {
	e := pl.e
	t, ids, o := plan.torus, plan.ids, plan.opts
	var cachedFit, uncached []SynthAttempt
	var cachedAnnotated, uncachedAnnotated []PlanAttempt
	for _, a := range attempts {
		ann := pl.annotateAttempt(p, t, a)
		if ann.Cached && ann.Fits {
			cachedFit = append(cachedFit, a)
			cachedAnnotated = append(cachedAnnotated, ann)
		} else {
			// Non-fitting shapes stay with the synthesis stage (cached or
			// not) so its too-small accounting arms the fallback.
			uncached = append(uncached, a)
			uncachedAnnotated = append(uncachedAnnotated, ann)
		}
	}
	if len(cachedFit) > 0 {
		plan.Strategies = append(plan.Strategies, PlannedStrategy{
			Kind:     StrategyCached,
			Solver:   (&SynthesisSolver{}).Name(),
			Attempts: cachedAnnotated,
			Reason:   "completed outcomes for these shapes are already in the synthesis cache — replayed with no SAT work (a cached table serves the request, a cached UNSAT falls through)",
			run: func(ctx context.Context) (*Result, error) {
				s := &SynthesisSolver{Problem: p, Attempts: cachedFit, Engine: e}
				return s.Solve(ctx, t, ids, withOptions(o))
			},
		})
	}
	if len(uncached) > 0 {
		st := PlannedStrategy{
			Kind:     StrategySynthesis,
			Solver:   (&SynthesisSolver{}).Name(),
			Attempts: uncachedAnnotated,
			Reason:   reason,
		}
		if st.Reason == "" {
			if len(uncached) > 1 {
				st.Reason = "registered normal-form shapes; candidates race concurrently and the first table wins"
			} else {
				st.Reason = "registered normal-form shape"
			}
		}
		anyFits := false
		for _, a := range uncachedAnnotated {
			if a.Fits {
				anyFits = true
				break
			}
		}
		if !anyFits {
			smallest, small := uncachedAnnotated[0].MinSide, uncachedAnnotated[0]
			for _, a := range uncachedAnnotated[1:] {
				if a.MinSide < smallest {
					smallest, small = a.MinSide, a
				}
			}
			st.Skip = fmt.Sprintf("torus %v is below the smallest side %d any attempt shape supports", t.Sides(), smallest)
			st.skipErr = core.TorusTooSmallError(small.K, small.H, small.W)
		} else {
			st.run = func(ctx context.Context) (*Result, error) {
				s := &SynthesisSolver{Problem: p, Attempts: uncached, Engine: e}
				return s.Solve(ctx, t, ids, withOptions(o))
			}
		}
		plan.Strategies = append(plan.Strategies, st)
	}
	if withFallback {
		if classOf == nil {
			cls := plan.Class
			classOf = func() Class { return cls }
		}
		plan.Strategies = append(plan.Strategies, pl.baselineStage(p, t, ids, o, classOf, true,
			"Θ(n) gather-and-solve serves the problem when the normal form needs a larger torus"))
	}
}

// baselineStage builds the Θ(n) brute-force stage. classOf is read at
// execution time so an earlier stage (the inline oracle) can refine the
// class the baseline records; fallback gates the stage on a
// too-small-torus (or no-normal-form) failure of the stage before it.
func (pl *Planner) baselineStage(p *Problem, t *Torus, ids []int, o Options, classOf func() Class, fallback bool, reason string) PlannedStrategy {
	return PlannedStrategy{
		Kind:     StrategyBaseline,
		Solver:   (&GlobalSolver{}).Name(),
		Reason:   reason,
		Fallback: fallback,
		run: func(ctx context.Context) (*Result, error) {
			return (&GlobalSolver{Problem: p, KnownClass: classOf()}).Solve(ctx, t, ids, withOptions(o))
		},
	}
}

// executePlan walks the plan's ranked strategies under ctx: skipped
// stages are recorded and passed over, the fallback baseline runs only
// when the preceding failure arms it, and the first success returns a
// Result (on a copy — solvers own the Results they return) carrying the
// full Trace and, when the solver left the class open, the plan's
// registered classification. Per-stage outcomes are mirrored to the
// observers as StrategyStart/StrategyEnd pairs.
func (e *Engine) executePlan(ctx context.Context, req SolveRequest, plan *Plan) (*Result, error) {
	var trace []TraceStep
	var lastRes *Result
	var lastErr error
	for i := range plan.Strategies {
		st := &plan.Strategies[i]
		if st.Skip != "" {
			trace = append(trace, TraceStep{Strategy: st.Kind, Outcome: TraceSkipped, Detail: st.Skip})
			if st.skipErr != nil {
				lastErr = st.skipErr
			}
			continue
		}
		if st.Fallback {
			if lastErr != nil && !fallbackTriggers(lastErr) {
				// The earlier failure is the request's real answer (UNSAT
				// everywhere, a rejected labelling, ...): do not mask it
				// with an open-ended brute force.
				trace = append(trace, TraceStep{Strategy: st.Kind, Outcome: TraceSkipped,
					Detail: "not reached: the preceding failure is not a too-small-torus redirect"})
				break
			}
			if lastErr != nil && errors.Is(lastErr, ErrTorusTooSmall) {
				e.observeFallback(req, lastErr)
			}
		}
		e.observeStrategyStart(req, st)
		sctx, sp := StartSpan(ctx, "strategy")
		sp.SetAttr("kind", string(st.Kind))
		start := time.Now()
		res, err := st.run(sctx)
		elapsed := time.Since(start)
		sp.SetError(err)
		sp.End()
		e.observeStrategyEnd(req, st, res, err)
		if err == nil {
			detail := ""
			if res != nil {
				detail = res.Note
			}
			trace = append(trace, TraceStep{Strategy: st.Kind, Outcome: TraceOK, Detail: detail, Elapsed: elapsed})
			// Copy before stamping: the solver may legitimately share or
			// reuse the Result it returned.
			out := *res
			if out.Class == ClassUnknown && plan.Class != ClassUnknown {
				out.Class = plan.Class
			}
			out.Trace = trace
			return &out, nil
		}
		if isCtxErr(err) {
			return nil, err
		}
		trace = append(trace, TraceStep{Strategy: st.Kind, Outcome: TraceFailed, Detail: err.Error(), Elapsed: elapsed})
		lastRes, lastErr = res, err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("lclgrid: no strategy applies to %s on torus %v", plan.Problem, plan.Sides)
	}
	if lastRes != nil {
		out := *lastRes
		out.Trace = trace
		lastRes = &out
	}
	return lastRes, lastErr
}
