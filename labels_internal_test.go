package lclgrid

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestPlanLabel exercises the label planner white-box: resolved shapes,
// hint filtering, the forced-power override, and the RequestError
// contract on every client-side failure.
func TestPlanLabel(t *testing.T) {
	eng := NewEngine()

	lp, err := eng.planLabel(LabelRequest{Key: "mis", W: 2, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	if side := lp.spec.SmallestSide(); lp.t.NX() != side || lp.t.NY() != side {
		t.Errorf("defaulted torus %dx%d, want the spec's smallest side %d", lp.t.NX(), lp.t.NY(), side)
	}
	if lp.mode != LabelModeExact {
		t.Errorf("defaulted mode %q, want %q", lp.mode, LabelModeExact)
	}
	if len(lp.attempts) != 1 || lp.attempts[0].K != 1 {
		t.Errorf("attempts = %v, want the spec's single k=1 hint", lp.attempts)
	}

	// Power forces a single synthesis shape with DefaultWindow defaults.
	lp, err = eng.planLabel(LabelRequest{Key: "mis", N: 40, W: 2, H: 2, Power: 2})
	if err != nil {
		t.Fatal(err)
	}
	dh, dw := DefaultWindow(2)
	if len(lp.attempts) != 1 || lp.attempts[0] != (SynthAttempt{K: 2, H: dh, W: dw}) {
		t.Errorf("forced-power attempts = %v, want [{2 %d %d}]", lp.attempts, dh, dw)
	}

	// Hints that don't fit the torus are filtered, not tried and failed.
	lp, err = eng.planLabel(LabelRequest{Key: "orient134", N: 12, W: 2, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range lp.attempts {
		if !attemptFits(lp.t, a) {
			t.Errorf("planned attempt %v does not fit a 12x12 torus", a)
		}
	}

	for name, req := range map[string]LabelRequest{
		"unknown key":   {Key: "nope", W: 1, H: 1},
		"inline-only":   {Key: "is", W: 1, H: 1},
		"too small":     {Key: "mis", N: 4, W: 1, H: 1},
		"power too big": {Key: "mis", W: 1, H: 1, Power: maxRequestPower + 1},
		"bad sides":     {Key: "mis", Sides: []int{12}, W: 1, H: 1},
	} {
		if _, err := eng.planLabel(req); err == nil {
			t.Errorf("%s: planned without error", name)
		} else if reqErr := (*RequestError)(nil); !errors.As(err, &reqErr) {
			t.Errorf("%s: got %v, want a RequestError", name, err)
		}
	}
}

// FuzzLabelRequestJSON fuzzes the label wire decoder end to end: any
// byte string that decodes into a LabelRequest and passes Validate must
// plan without panicking or allocating beyond the request bounds — the
// exact exposure of POST /v1/labels. Planning is SAT-free, so even the
// largest admissible shapes (10^12-node tori) stay cheap.
func FuzzLabelRequestJSON(f *testing.F) {
	seeds := []string{
		`{"key":"mis","sides":[100000,100000],"seed":7,"x":12345,"y":99999,"w":4,"h":3}`,
		`{"key":"mis","n":1000000,"x":-3,"y":999999,"w":6,"h":4}`,
		`{"key":"4col","n":28,"w":8,"h":8,"mode":"exact"}`,
		`{"key":"mis","n":15,"mode":"lattice","w":15,"h":15}`,
		`{"key":"orient134","sides":[16,20],"w":2,"h":2,"power":1}`,
		`{"key":"mis","w":1048576,"h":2}`,
		`{"key":"mis","w":-1,"h":3}`,
		`{"key":"mis","n":2000000,"w":1,"h":1}`,
		`{"key":"mis","sides":[0,5],"w":1,"h":1}`,
		`{"key":"mis","sides":[5,5,5],"w":1,"h":1}`,
		`{"key":"5col","w":1,"h":1,"power":99,"window_h":-2}`,
		`{"key":"is","w":1,"h":1}`,
		`{"key":"1024col","n":12,"w":1,"h":1}`,
		`{"key":"mis","mode":"psychic","w":1,"h":1}`,
		`{"w":3,"h":3}`,
		`[]`,
		`{"key":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	eng := NewEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req LabelRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a LabelRequest document; nothing to check
		}
		if err := req.Validate(); err != nil {
			return // rejected at the wire, as intended
		}
		lp, err := eng.planLabel(req)
		if err == nil && lp == nil {
			t.Fatal("planLabel returned nil plan and nil error")
		}
		if err != nil {
			// Planning failures after a passing Validate must still be
			// client-attributable (HTTP 400), never a server fault.
			reqErr := (*RequestError)(nil)
			if !errors.As(err, &reqErr) {
				t.Fatalf("planLabel error %v is not a RequestError", err)
			}
		}
	})
}
