package lclgrid_test

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"slices"
	"testing"
	"time"

	lclgrid "lclgrid"
)

// gatedSolver blocks every Solve until release is closed — a stand-in
// for a slow SAT synthesis with a deterministic trigger.
type gatedSolver struct {
	release chan struct{}
	name    string
}

func (s *gatedSolver) Name() string { return s.name }

func (s *gatedSolver) Solve(ctx context.Context, t *lclgrid.Torus, ids []int, opts ...lclgrid.Option) (*lclgrid.Result, error) {
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &lclgrid.Result{Problem: s.name, Solver: s.name, Class: lclgrid.ClassO1}, nil
}

// instantSolver returns immediately.
type instantSolver struct{ name string }

func (s *instantSolver) Name() string { return s.name }

func (s *instantSolver) Solve(ctx context.Context, t *lclgrid.Torus, ids []int, opts ...lclgrid.Option) (*lclgrid.Result, error) {
	return &lclgrid.Result{Problem: s.name, Solver: s.name, Class: lclgrid.ClassO1}, nil
}

// gatedEngine builds an engine whose "slow" key blocks until the
// returned channel is closed and whose "fast" key returns immediately.
func gatedEngine(t *testing.T) (*lclgrid.Engine, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	reg := lclgrid.NewRegistry()
	if err := reg.Register(&lclgrid.ProblemSpec{
		Key: "slow", Name: "slow", Class: lclgrid.ClassO1,
		Direct: func(e *lclgrid.Engine) lclgrid.Solver { return &gatedSolver{release: release, name: "slow"} },
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(&lclgrid.ProblemSpec{
		Key: "fast", Name: "fast", Class: lclgrid.ClassO1,
		Direct: func(e *lclgrid.Engine) lclgrid.Solver { return &instantSolver{name: "fast"} },
	}); err != nil {
		t.Fatal(err)
	}
	return lclgrid.NewEngine(lclgrid.WithRegistry(reg)), release
}

// TestSolveStreamYieldsOutOfOrder is the streaming acceptance contract:
// a slow request must not block a fast request's result. The slow
// solver is gated on a channel that is only closed AFTER the fast
// result has been observed, so the test deadlocks (and times out)
// rather than passes if the stream head-of-line blocks.
func TestSolveStreamYieldsOutOfOrder(t *testing.T) {
	eng, release := gatedEngine(t)
	reqs := []lclgrid.SolveRequest{
		{Key: "slow", N: 4}, // index 0, dispatched first
		{Key: "fast", N: 4}, // index 1, must be yielded first
	}
	var got []lclgrid.BatchItem
	done := make(chan struct{})
	go func() {
		defer close(done)
		for it, err := range eng.SolveStream(bg, slices.Values(reqs), lclgrid.WithWorkers(2)) {
			if err != nil {
				t.Errorf("item %d: %v", it.Index, err)
			}
			got = append(got, it)
			if len(got) == 1 {
				// The fast result arrived while the slow one is still
				// blocked; only now may the slow solve finish.
				close(release)
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not complete: the slow request blocked the fast one")
	}
	if len(got) != 2 {
		t.Fatalf("got %d items, want 2", len(got))
	}
	if got[0].Index != 1 || got[0].Result.Problem != "fast" {
		t.Errorf("first yielded item is %+v, want the fast request (index 1)", got[0])
	}
	if got[1].Index != 0 || got[1].Result.Problem != "slow" {
		t.Errorf("second yielded item is %+v, want the slow request (index 0)", got[1])
	}
}

// TestSolveStreamErrorMirror: the iterator's second value mirrors the
// item's error, so `for item, err := range` reads naturally.
func TestSolveStreamErrorMirror(t *testing.T) {
	eng := lclgrid.NewEngine()
	reqs := []lclgrid.SolveRequest{
		{Key: "is", N: 4},
		{Key: "nope"},
	}
	for it, err := range eng.SolveStream(bg, slices.Values(reqs), lclgrid.WithWorkers(1)) {
		if !errors.Is(err, it.Err) || (err == nil) != (it.Err == nil) {
			t.Errorf("item %d: iterator err %v does not mirror item err %v", it.Index, err, it.Err)
		}
	}
}

// TestSolveStreamPreCancelled: an already-cancelled context performs
// zero syntheses, and every item the stream does yield (it stops
// pulling once it observes the cancel, so never-pulled requests yield
// nothing — SolveBatch is the collector that fills those in) carries
// the context's error.
func TestSolveStreamPreCancelled(t *testing.T) {
	eng := lclgrid.NewEngine()
	ctx, cancel := context.WithCancel(bg)
	cancel()
	reqs := []lclgrid.SolveRequest{{Key: "5col", N: 16}, {Key: "mis", N: 12}, {Key: "4col", N: 28}}
	n := 0
	for it, err := range eng.SolveStream(ctx, slices.Values(reqs), lclgrid.WithWorkers(2)) {
		n++
		if !errors.Is(err, context.Canceled) {
			t.Errorf("item %d: err = %v, want context.Canceled", it.Index, err)
		}
		if it.Result != nil {
			t.Errorf("item %d carries a result", it.Index)
		}
	}
	if n > len(reqs) {
		t.Errorf("stream yielded %d items for %d requests", n, len(reqs))
	}
	if got := eng.CacheStats().Misses; got != 0 {
		t.Errorf("pre-cancelled stream performed %d syntheses, want 0", got)
	}
}

// TestSolveStreamEarlyBreak: breaking out of the consuming loop stops
// the pool — the producer stops pulling requests, blocked goroutines
// drain, and the engine stays usable. The input sequence is unbounded,
// so a stream that kept pulling would never return.
func TestSolveStreamEarlyBreak(t *testing.T) {
	eng := lclgrid.NewEngine()
	endless := func(yield func(lclgrid.SolveRequest) bool) {
		for {
			if !yield(lclgrid.SolveRequest{Key: "is", N: 4}) {
				return
			}
		}
	}
	before := runtime.NumGoroutine()
	seen := 0
	for it := range eng.SolveStream(bg, iter.Seq[lclgrid.SolveRequest](endless), lclgrid.WithWorkers(4)) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		if seen++; seen >= 8 {
			break
		}
	}
	// The pool tears down asynchronously after the break; give it a
	// bounded moment to drain before asserting no goroutines leaked.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		t.Errorf("goroutines after early break: %d, was %d before the stream", got, before)
	}
	// The engine is still serviceable.
	if res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "is", N: 4}); err != nil || res.Verification != lclgrid.Verified {
		t.Errorf("engine unusable after early break: res=%v err=%v", res, err)
	}
}

// TestSolveStreamCancelEndsUnboundedInput: cancelling the context mid
// stream terminates it even when the input sequence is unbounded — the
// producer stops pulling instead of converting the infinite tail into
// an infinite run of error items.
func TestSolveStreamCancelEndsUnboundedInput(t *testing.T) {
	eng := lclgrid.NewEngine()
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	endless := func(yield func(lclgrid.SolveRequest) bool) {
		for {
			if !yield(lclgrid.SolveRequest{Key: "is", N: 4}) {
				return
			}
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		n := 0
		for range eng.SolveStream(ctx, endless, lclgrid.WithWorkers(2)) {
			if n++; n == 5 {
				cancel()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled stream over an unbounded input never terminated")
	}
}

// TestSolveStreamMatchesBatch: collecting a stream by index is
// item-for-item identical to SolveBatch over the same requests.
func TestSolveStreamMatchesBatch(t *testing.T) {
	eng := lclgrid.NewEngine()
	var reqs []lclgrid.SolveRequest
	keys := []string{"5col", "mis", "is", "orient2"}
	for i := 0; i < 12; i++ {
		reqs = append(reqs, lclgrid.SolveRequest{Key: keys[i%len(keys)], N: 16, Seed: int64(i + 1)})
	}
	fromStream := make([]lclgrid.BatchItem, len(reqs))
	for it := range eng.SolveStream(bg, slices.Values(reqs), lclgrid.WithWorkers(4)) {
		fromStream[it.Index] = it
	}
	items, _ := eng.SolveBatch(bg, reqs, lclgrid.WithWorkers(4))
	for i := range items {
		if (items[i].Err == nil) != (fromStream[i].Err == nil) {
			t.Errorf("item %d: batch err %v vs stream err %v", i, items[i].Err, fromStream[i].Err)
			continue
		}
		if items[i].Err != nil {
			continue
		}
		if items[i].Result.Problem != fromStream[i].Result.Problem ||
			items[i].Result.Rounds != fromStream[i].Result.Rounds ||
			!slices.Equal(items[i].Result.Labels, fromStream[i].Result.Labels) {
			t.Errorf("item %d: batch and stream results differ:\n %v\n %v", i, items[i].Result, fromStream[i].Result)
		}
	}
}
