package lclgrid_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"slices"
	"testing"

	lclgrid "lclgrid"
	"lclgrid/internal/experiments"
	"lclgrid/internal/sat"
	"lclgrid/internal/tiles"
)

// The benchmarks below regenerate every table/figure of the paper, one
// benchmark per experiment id (see DESIGN.md's per-experiment index).
// Run `go test -bench=. -benchmem` to print the paper-vs-measured tables;
// verbose tables go to stderr once per benchmark.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var exp experiments.Experiment
	for _, e := range experiments.All() {
		if e.ID == id {
			exp = e
		}
	}
	if exp.Run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	// Print the table once for the record, then benchmark silently.
	ctx := context.Background()
	fmt.Fprintf(os.Stderr, "--- %s: %s ---\n", exp.ID, exp.Title)
	if err := exp.Run(ctx, os.Stderr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exp.Run(ctx, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1CycleClassification(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2TileEnumeration(b *testing.B)          { benchExperiment(b, "E2") }
func BenchmarkE3Synthesis4Colouring(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4SynthesisOrientation(b *testing.B)     { benchExperiment(b, "E4") }
func BenchmarkE5VertexColouringThreshold(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6EdgeColouringThreshold(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7OrientationClassification(b *testing.B) {
	benchExperiment(b, "E7")
}
func BenchmarkE8RoundScaling(b *testing.B)             { benchExperiment(b, "E8") }
func BenchmarkE9Undecidability(b *testing.B)           { benchExperiment(b, "E9") }
func BenchmarkE10ThreeColouringInvariant(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11OrientationInvariant(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12CornerCoordination(b *testing.B)      { benchExperiment(b, "E12") }

// --- Component micro-benchmarks -------------------------------------------

func BenchmarkTileEnumerationK3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tiles.Count(3, 7, 5) != 2079 {
			b.Fatal("tile count drifted")
		}
	}
}

func BenchmarkTileEnumerationPacked(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		keys, err := tiles.EnumeratePacked(ctx, 3, 7, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(keys) != 2079 {
			b.Fatal("packed tile count drifted")
		}
	}
}

// BenchmarkSATPropagation isolates unit propagation: an implication
// cascade alternating binary links (inline-watcher path) and ternary
// links (blocker/long-clause path), fired by a single unit at the end.
func BenchmarkSATPropagation(b *testing.B) {
	const n = 4096
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver(n)
		for v := 0; v+2 < n; v += 2 {
			s.AddClause(sat.Neg(v), sat.Pos(v+1))
			s.AddClause(sat.Neg(v), sat.Neg(v+1), sat.Pos(v+2))
		}
		s.AddClause(sat.Pos(0)) // triggers the full cascade
		if !s.Solve() {
			b.Fatal("chain must be SAT")
		}
		if s.Stats.Propagated < n-2 {
			b.Fatalf("expected a full cascade, propagated only %d", s.Stats.Propagated)
		}
	}
}

func BenchmarkAnchorsK3(b *testing.B) {
	g := lclgrid.Square(64)
	ids := lclgrid.PermutedIDs(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r lclgrid.Rounds
		lclgrid.Anchors(g, 3, lclgrid.L1, ids, &r)
	}
}

func BenchmarkNormalForm4ColouringApply(b *testing.B) {
	alg, err := lclgrid.Synthesize(context.Background(), lclgrid.VertexColoring(4, 2), 3, 7, 5)
	if err != nil {
		b.Fatal(err)
	}
	g := lclgrid.Square(56)
	ids := lclgrid.PermutedIDs(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := alg.Run(g, ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalBaseline3Colouring(b *testing.B) {
	p := lclgrid.VertexColoring(3, 2)
	g := lclgrid.Square(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := lclgrid.SolveGlobal(context.Background(), p, g); !ok || err != nil {
			b.Fatal("unsolvable")
		}
	}
}

func BenchmarkCycleSynthesisMIS(b *testing.B) {
	p := lclgrid.CycleMIS()
	for i := 0; i < b.N; i++ {
		if _, err := p.Synthesize(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSATPigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver(6 * 5)
		v := func(p, h int) int { return p*5 + h }
		for p := 0; p < 6; p++ {
			lits := make([]sat.Lit, 5)
			for h := 0; h < 5; h++ {
				lits[h] = sat.Pos(v(p, h))
			}
			s.AddClause(lits...)
		}
		for h := 0; h < 5; h++ {
			for p1 := 0; p1 < 6; p1++ {
				for p2 := p1 + 1; p2 < 6; p2++ {
					s.AddClause(sat.Neg(v(p1, h)), sat.Neg(v(p2, h)))
				}
			}
		}
		if s.Solve() {
			b.Fatal("PHP(6,5) must be UNSAT")
		}
	}
}

func BenchmarkFourColorDirect(b *testing.B) {
	g := lclgrid.Square(128)
	ids := lclgrid.PermutedIDs(g.N(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r lclgrid.Rounds
		if _, _, err := lclgrid.FourColor(g, ids, &r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine synthesis cache ------------------------------------------------

// The cold/cached pair measures the synthesis-cache win of the Engine on
// the paper's headline problem (4-colouring, k = 3 over 2079 tiles): cold
// pays the SAT synthesis on every solve, cached pays it once per problem
// fingerprint.

func BenchmarkEngineSolveCold(b *testing.B) {
	ctx := context.Background()
	req := lclgrid.SolveRequest{Key: "4col", N: 28, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := lclgrid.NewEngine() // fresh cache: every solve synthesizes
		if _, err := eng.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSolveCached(b *testing.B) {
	ctx := context.Background()
	eng := lclgrid.NewEngine()
	req := lclgrid.SolveRequest{Key: "4col", N: 28, Seed: 1}
	if _, err := eng.Solve(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	if stats := eng.CacheStats(); stats.Misses != 1 {
		b.Fatalf("cached benchmark synthesized %d times", stats.Misses)
	}
}

// BenchmarkEngineSolveBatch measures batch throughput over a mixed
// 32-request workload (four problem fingerprints, eight tori each) at
// 1, 4 and 16 workers — the first perf trajectory numbers for the
// request/response path. The engine is warmed so the numbers measure
// pool scheduling plus the Θ(log* n)/O(1) runs, not the one-off SAT
// syntheses.
func BenchmarkEngineSolveBatch(b *testing.B) {
	ctx := context.Background()
	keys := []string{"5col", "mis", "orient134", "is"}
	var reqs []lclgrid.SolveRequest
	for i := 0; i < 32; i++ {
		reqs = append(reqs, lclgrid.SolveRequest{Key: keys[i%len(keys)], N: 16, Seed: int64(i + 1)})
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := lclgrid.NewEngine()
			items, _ := eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(workers)) // warm the cache
			for i, it := range items {
				if it.Err != nil {
					b.Fatalf("request %d: %v", i, it.Err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items, stats := eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(workers))
				if stats.Errors != 0 {
					b.Fatalf("batch errors: %+v, first item err %v", stats, firstErr(items))
				}
			}
		})
	}
}

func firstErr(items []lclgrid.BatchItem) error {
	for _, it := range items {
		if it.Err != nil {
			return it.Err
		}
	}
	return nil
}

// BenchmarkEngineSolveStream is the streaming counterpart of
// BenchmarkEngineSolveBatch: the same warmed 32-request workload
// consumed through SolveStream in completion order. The delta against
// SolveBatch is the cost of order-preserving collection.
func BenchmarkEngineSolveStream(b *testing.B) {
	ctx := context.Background()
	keys := []string{"5col", "mis", "orient134", "is"}
	var reqs []lclgrid.SolveRequest
	for i := 0; i < 32; i++ {
		reqs = append(reqs, lclgrid.SolveRequest{Key: keys[i%len(keys)], N: 16, Seed: int64(i + 1)})
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := lclgrid.NewEngine()
			if items, _ := eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(workers)); firstErr(items) != nil { // warm the cache
				b.Fatal(firstErr(items))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				for it, err := range eng.SolveStream(ctx, slices.Values(reqs), lclgrid.WithWorkers(workers)) {
					if err != nil {
						b.Fatalf("request %d: %v", it.Index, err)
					}
					n++
				}
				if n != len(reqs) {
					b.Fatalf("stream yielded %d items for %d requests", n, len(reqs))
				}
			}
		})
	}
}

// BenchmarkClassifySequential / BenchmarkClassifyParallel measure the
// racing window sweep of the classification oracle on a cold cache.
// The subject is MIS at k = 1: the 3×2 window is a ~4ms UNSAT proof and
// the 3×3 window a ~12ms successful synthesis, so the sequential sweep
// pays their sum while the parallel sweep pays roughly the maximum —
// on ≥4 cores the parallel wall-clock sits below the sequential sum of
// the attempt times. The engine cache is reset every iteration so each
// classification is genuinely cold (exactly one completed synthesis per
// winning fingerprint; the parallel run may additionally start-and-
// abort the losing candidate).
func benchClassifyCold(b *testing.B, workers int) {
	ctx := context.Background()
	eng := lclgrid.NewEngine(lclgrid.WithSynthWorkers(workers))
	p := lclgrid.MIS(2).Problem
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		res := eng.Classify(ctx, p, 1)
		if res.Class != lclgrid.ClassLogStar {
			b.Fatalf("classification drifted: %v (err %v)", res.Class, res.Err)
		}
	}
}

func BenchmarkClassifySequential(b *testing.B) { benchClassifyCold(b, 1) }
func BenchmarkClassifyParallel(b *testing.B)   { benchClassifyCold(b, 0) } // 0 = GOMAXPROCS

// BenchmarkEngineSolveDiskWarm pairs with BenchmarkEngineSolveCold:
// the same fresh-engine-per-solve workload, but over a disk-warmed
// cache directory, so every solve deserializes the k = 3 4-colouring
// table instead of re-running the SAT synthesis. The cold/disk-warm
// ratio is the value of `lclgrid warm -cache-dir` on a service restart.
func BenchmarkEngineSolveDiskWarm(b *testing.B) {
	ctx := context.Background()
	dir := b.TempDir()
	req := lclgrid.SolveRequest{Key: "4col", N: 28, Seed: 1}
	if _, err := lclgrid.NewEngine(lclgrid.WithCacheDir(dir)).Solve(ctx, req); err != nil { // warm the directory
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := lclgrid.NewEngine(lclgrid.WithCacheDir(dir)) // fresh process-equivalent: cold memory, warm disk
		if _, err := eng.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
		if misses := eng.CacheStats().Misses; misses != 0 {
			b.Fatalf("disk-warmed solve synthesized %d times", misses)
		}
	}
}

// BenchmarkLabelWindowWarm measures the coordinate-addressed labeling
// path on a warm engine: one 8×6 window of a 10^10-node torus per
// iteration, pure table lookups — the subsystem's headline operation.
func BenchmarkLabelWindowWarm(b *testing.B) {
	ctx := context.Background()
	eng := lclgrid.NewEngine()
	req := lclgrid.LabelRequest{
		Key: "mis", Sides: []int{100_000, 100_000}, Seed: 7,
		X: 99_998, Y: 42_000, W: 8, H: 6,
	}
	if _, err := eng.LabelWindow(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.LabelWindow(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	if stats := eng.CacheStats(); stats.Misses != 1 {
		b.Fatalf("warm benchmark synthesized %d times", stats.Misses)
	}
}

// BenchmarkExportGrid measures streaming whole-grid export throughput
// (bounded memory, evaluator reset between bands) on a 100×100 torus.
func BenchmarkExportGrid(b *testing.B) {
	ctx := context.Background()
	eng := lclgrid.NewEngine()
	req := lclgrid.ExportRequest{Key: "mis", N: 100, Seed: 7, BandRows: 25}
	sink := func(lclgrid.LabelBand) error { return nil }
	if err := eng.ExportGrid(ctx, req, sink); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.ExportGrid(ctx, req, sink); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(100 * 100 * 4)
}

// BenchmarkProblemDefCompile measures the wire→engine path of the
// problem DSL: JSON decode, structural validation and table
// materialisation of the catalogue's 5-colouring stated as a
// ProblemDef. This is the per-request overhead an inline "problem_def"
// solve pays over a registered key.
func BenchmarkProblemDefCompile(b *testing.B) {
	spec, err := lclgrid.DefaultRegistry().Lookup("5col")
	if err != nil {
		b.Fatal(err)
	}
	wire, err := json.Marshal(lclgrid.NewProblemDef(spec.Problem()))
	if err != nil {
		b.Fatal(err)
	}
	want := spec.Problem().Fingerprint()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var def lclgrid.ProblemDef
		if err := json.Unmarshal(wire, &def); err != nil {
			b.Fatal(err)
		}
		p, err := def.Compile()
		if err != nil {
			b.Fatal(err)
		}
		if p.Fingerprint() != want {
			b.Fatal("fingerprint drifted")
		}
	}
}

// The cold/cached pair below measures a user-defined problem through
// the full DSL pipeline (DefineProblem + Solve by the "user:" key) on
// the 5-colouring restatement: cold pays registration and the k = 1
// oracle synthesis every iteration, cached pays them once and then
// serves from the fingerprint-shared synthesis cache.

func BenchmarkEngineSolveUserProblemCold(b *testing.B) {
	ctx := context.Background()
	spec, err := lclgrid.DefaultRegistry().Lookup("5col")
	if err != nil {
		b.Fatal(err)
	}
	def := lclgrid.NewProblemDef(spec.Problem())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := lclgrid.NewEngine() // fresh cache: every solve synthesizes
		rec, _, err := eng.DefineProblem(def)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: rec.Key, N: 16, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSolveUserProblemCached(b *testing.B) {
	ctx := context.Background()
	spec, err := lclgrid.DefaultRegistry().Lookup("5col")
	if err != nil {
		b.Fatal(err)
	}
	def := lclgrid.NewProblemDef(spec.Problem())
	eng := lclgrid.NewEngine()
	rec, _, err := eng.DefineProblem(def)
	if err != nil {
		b.Fatal(err)
	}
	req := lclgrid.SolveRequest{Key: rec.Key, N: 16, Seed: 1}
	if _, err := eng.Solve(ctx, req); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	if stats := eng.CacheStats(); stats.Misses != 1 {
		b.Fatalf("cached benchmark synthesized %d times", stats.Misses)
	}
}
