package lclgrid

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"time"
)

// BatchItem is the outcome of one request in a batch or stream: Err nil
// means the request succeeded and Result is set; Err non-nil means it
// failed, usually with a nil Result — except that a labelling rejected
// by verification arrives as a partial Result alongside its error, the
// same convention as Solver.Solve. Index is the 0-based position of the
// request that produced the item in its input sequence — SolveBatch
// returns items sorted by it, while SolveStream yields them in
// completion order.
type BatchItem struct {
	Index  int
	Result *Result
	Err    error
}

// BatchStats aggregates one SolveBatch call.
type BatchStats struct {
	// Requests is the number of requests in the batch.
	Requests int `json:"requests"`
	// Errors counts requests that failed (including ones cancelled by the
	// batch context).
	Errors int `json:"errors"`
	// CacheHits counts successful requests whose synthesis was served
	// from the engine cache (Result.CacheHit); requests solved without a
	// synthesis do not count.
	CacheHits int `json:"cache_hits"`
	// Workers is the worker pool size the batch ran with.
	Workers int `json:"workers"`
	// Wall is the wall-clock duration of the whole batch; per-request
	// durations are in each Result.Elapsed.
	Wall time.Duration `json:"wall_ns"`
}

// SolveBatch serves a batch of requests on a bounded worker pool and
// returns one BatchItem per request, in input order, plus aggregate
// statistics. It is the order-preserving collector over SolveStream:
// results are computed concurrently and reassembled by BatchItem.Index.
// The pool size comes from WithWorkers (default runtime.GOMAXPROCS(0),
// never more than the number of requests); opts configure only the
// batch itself — per-request knobs (verification, forced power, ...)
// are fields of each SolveRequest. Callers that want results as they
// complete, or that cannot hold the whole batch in memory, should range
// over SolveStream directly.
//
// Duplicate work coalesces through the engine's synthesis cache: a batch
// of requests sharing a problem fingerprint performs the SAT synthesis
// exactly once however many workers run.
//
// Cancellation is per batch: when ctx is cancelled every not-yet-started
// request fails immediately with the context's error (an
// already-cancelled ctx performs zero syntheses), and in-flight requests
// abort at their next checkpoint. Per-request failures are recorded in
// their BatchItem and never abort the rest of the batch.
func (e *Engine) SolveBatch(ctx context.Context, reqs []SolveRequest, opts ...Option) ([]BatchItem, BatchStats) {
	o := buildOptions(opts)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	start := time.Now()
	items := make([]BatchItem, len(reqs))
	if len(reqs) > 0 {
		o.Workers = workers
		yielded := make([]bool, len(reqs))
		for it := range e.SolveStream(ctx, slices.Values(reqs), withOptions(o)) {
			items[it.Index] = it
			yielded[it.Index] = true
		}
		if err := ctx.Err(); err != nil {
			// A cancelled stream stops pulling requests; the batch
			// contract is one item per request, so the never-pulled tail
			// fails here with the context's error.
			for i := range items {
				if !yielded[i] {
					items[i] = BatchItem{Index: i, Err: err}
				}
			}
		}
	}
	stats := BatchStats{Requests: len(reqs), Workers: workers, Wall: time.Since(start)}
	for _, it := range items {
		switch {
		case it.Err != nil:
			stats.Errors++
		case it.Result != nil && it.Result.CacheHit:
			stats.CacheHits++
		}
	}
	return items, stats
}

// solveItem serves one batch request, converting a panic into the item's
// error: requests are wire-decodable values, and the batch contract is
// that no single request — however malformed — aborts the rest.
func (e *Engine) solveItem(ctx context.Context, req SolveRequest) (item BatchItem) {
	defer func() {
		if r := recover(); r != nil {
			item = BatchItem{Err: fmt.Errorf("lclgrid: request panicked: %v", r)}
		}
	}()
	res, err := e.Solve(ctx, req)
	return BatchItem{Result: res, Err: err}
}
