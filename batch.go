package lclgrid

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BatchItem is the outcome of one request in a batch: exactly one of
// Result and Err is meaningful (Err nil means Result is set). Items are
// returned in the order of the requests that produced them.
type BatchItem struct {
	Result *Result
	Err    error
}

// BatchStats aggregates one SolveBatch call.
type BatchStats struct {
	// Requests is the number of requests in the batch.
	Requests int `json:"requests"`
	// Errors counts requests that failed (including ones cancelled by the
	// batch context).
	Errors int `json:"errors"`
	// CacheHits counts successful requests whose synthesis was served
	// from the engine cache (Result.CacheHit); requests solved without a
	// synthesis do not count.
	CacheHits int `json:"cache_hits"`
	// Workers is the worker pool size the batch ran with.
	Workers int `json:"workers"`
	// Wall is the wall-clock duration of the whole batch; per-request
	// durations are in each Result.Elapsed.
	Wall time.Duration `json:"wall_ns"`
}

// Add accumulates another batch's statistics into s (Workers keeps the
// maximum pool size seen) — for callers like the JSONL CLI that dispatch
// one logical batch as several worker-pool rounds.
func (s *BatchStats) Add(o BatchStats) {
	s.Requests += o.Requests
	s.Errors += o.Errors
	s.CacheHits += o.CacheHits
	s.Wall += o.Wall
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
}

// SolveBatch serves a batch of requests on a bounded worker pool and
// returns one BatchItem per request, in input order, plus aggregate
// statistics. The pool size comes from WithWorkers (default
// runtime.GOMAXPROCS(0), never more than the number of requests); opts
// configure only the batch itself — per-request knobs (verification,
// forced power, ...) are fields of each SolveRequest.
//
// Duplicate work coalesces through the engine's synthesis cache: a batch
// of requests sharing a problem fingerprint performs the SAT synthesis
// exactly once however many workers run.
//
// Cancellation is per batch: when ctx is cancelled every not-yet-started
// request fails immediately with the context's error (an
// already-cancelled ctx performs zero syntheses), and in-flight requests
// abort at their next checkpoint. Per-request failures are recorded in
// their BatchItem and never abort the rest of the batch.
func (e *Engine) SolveBatch(ctx context.Context, reqs []SolveRequest, opts ...Option) ([]BatchItem, BatchStats) {
	o := buildOptions(opts)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	start := time.Now()
	items := make([]BatchItem, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if err := ctx.Err(); err != nil {
					items[i] = BatchItem{Err: err}
					continue
				}
				items[i] = e.solveItem(ctx, reqs[i])
			}
		}()
	}
	wg.Wait()
	stats := BatchStats{Requests: len(reqs), Workers: workers, Wall: time.Since(start)}
	for _, it := range items {
		switch {
		case it.Err != nil:
			stats.Errors++
		case it.Result != nil && it.Result.CacheHit:
			stats.CacheHits++
		}
	}
	return items, stats
}

// solveItem serves one batch request, converting a panic into the item's
// error: requests are wire-decodable values, and the batch contract is
// that no single request — however malformed — aborts the rest.
func (e *Engine) solveItem(ctx context.Context, req SolveRequest) (item BatchItem) {
	defer func() {
		if r := recover(); r != nil {
			item = BatchItem{Err: fmt.Errorf("lclgrid: request panicked: %v", r)}
		}
	}()
	res, err := e.Solve(ctx, req)
	return BatchItem{Result: res, Err: err}
}
