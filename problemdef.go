package lclgrid

import (
	"encoding/json"
	"fmt"
	"sort"

	"lclgrid/internal/core"
	"lclgrid/internal/lcl"
)

// ProblemDef is the wire-level table form of an LCL problem: a label
// alphabet, one allowed-pair table per grid dimension, and an optional
// per-vertex allowed set. It is the JSON-definable twin of the
// programmatic lcl.NewProblem constructor — tables replace the
// function-valued relations — and the unit of the problem-definition
// API: POST /v1/problems registers one, SolveRequest and LabelRequest
// accept one inline in "problem_def", and `lclgrid define` ships one to
// a running server. Example (a 3-colouring of the 2-dimensional grid):
//
//	{
//	  "name": "my 3-colouring",
//	  "dims": 2,
//	  "labels": ["1", "2", "3"],
//	  "allow": [
//	    [["1","2"],["1","3"],["2","1"],["2","3"],["3","1"],["3","2"]],
//	    [["1","2"],["1","3"],["2","1"],["2","3"],["3","1"],["3","2"]]
//	  ]
//	}
//
// allow[i] lists the (node label, positive-direction neighbour label)
// pairs permitted across dimension i; node_ok, when present, lists the
// labels valid on a node in isolation (absent means all labels are).
//
// Compile turns a ProblemDef into the engine's *Problem; the problem's
// Fingerprint() hashes the label names (in order), the relation tables
// and the node predicate — not the display name — so a DSL re-statement
// of a catalogue problem that uses the same label names in the same
// order hashes to the same fingerprint and serves from the same warm
// cache as the builtin. NewProblemDef is the inverse: it extracts the
// canonical table form of any table-backed *Problem.
type ProblemDef struct {
	// Name is the display name (optional; fingerprints ignore it).
	Name string `json:"name,omitempty"`
	// Dims is the number of grid dimensions (1..8).
	Dims int `json:"dims"`
	// Labels is the alphabet, in fingerprint order: reordering or
	// renaming labels changes the fingerprint even when the constraint
	// system is isomorphic.
	Labels []string `json:"labels"`
	// Allow is the per-dimension allowed-pair table; Allow[i] lists the
	// label pairs permitted across dimension i. Pairs may arrive in any
	// order and duplicated; Canonical sorts and dedupes them.
	Allow [][]LabelPair `json:"allow"`
	// NodeOK lists the labels valid on a node in isolation; nil (the
	// field absent) means every label is. An explicit empty list means
	// no label is valid on its own — a legal, if unsolvable, problem.
	NodeOK []string `json:"node_ok,omitempty"`
}

// LabelPair is one allowed (node, positive-direction neighbour) label
// pair. Its wire form is the two-element array ["a","b"].
type LabelPair struct {
	A string
	B string
}

// MarshalJSON encodes the pair as ["a","b"].
func (p LabelPair) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]string{p.A, p.B})
}

// UnmarshalJSON decodes ["a","b"], rejecting any other arity — a
// silent drop of a third element would make a typo'd table look valid.
func (p *LabelPair) UnmarshalJSON(data []byte) error {
	var arr []string
	if err := json.Unmarshal(data, &arr); err != nil {
		return fmt.Errorf("lclgrid: allowed pair must be a [\"a\",\"b\"] array: %w", err)
	}
	if len(arr) != 2 {
		return fmt.Errorf("lclgrid: allowed pair must have exactly 2 labels, got %d", len(arr))
	}
	p.A, p.B = arr[0], arr[1]
	return nil
}

// Problem-definition wire guards. Definitions arrive straight off the
// network (POST /v1/problems, inline "problem_def" fields), so the
// alphabet and table sizes must be bounded before anything quadratic is
// allocated: Compile materialises dims·K² relation bits, and the
// synthesis oracle's SAT encoding grows from there. The label cap
// clears the biggest catalogue alphabet (5-edge-colouring's 120 labels)
// with room to spare while keeping the relation tables small.
const (
	// maxDefLabels bounds the alphabet size.
	maxDefLabels = 512
	// maxDefLabelLen bounds each label name's byte length.
	maxDefLabelLen = 128
	// maxDefNameLen bounds the display name's byte length.
	maxDefNameLen = 256
)

// Validate checks the definition's structure against the wire bounds:
// bounded dimensions and alphabet, unique non-empty label names, one
// pair table per dimension, and every pair (and node_ok entry) naming a
// declared label. It allocates nothing quadratic, so front ends can run
// it on untrusted documents before Compile builds the tables.
func (d *ProblemDef) Validate() error {
	if d.Dims < 1 || d.Dims > maxRequestDims {
		return fmt.Errorf("lclgrid: problem definition needs 1..%d dims, got %d", maxRequestDims, d.Dims)
	}
	if len(d.Name) > maxDefNameLen {
		return fmt.Errorf("lclgrid: problem name is %d bytes, the bound is %d", len(d.Name), maxDefNameLen)
	}
	if len(d.Labels) == 0 {
		return fmt.Errorf("lclgrid: problem definition needs at least one label")
	}
	if len(d.Labels) > maxDefLabels {
		return fmt.Errorf("lclgrid: problem definition has %d labels, the bound is %d", len(d.Labels), maxDefLabels)
	}
	seen := make(map[string]bool, len(d.Labels))
	for i, l := range d.Labels {
		if l == "" {
			return fmt.Errorf("lclgrid: label %d is empty", i)
		}
		if len(l) > maxDefLabelLen {
			return fmt.Errorf("lclgrid: label %d is %d bytes, the bound is %d", i, len(l), maxDefLabelLen)
		}
		if seen[l] {
			return fmt.Errorf("lclgrid: label %q appears twice in the alphabet", l)
		}
		seen[l] = true
	}
	if len(d.Allow) != d.Dims {
		return fmt.Errorf("lclgrid: problem definition is %d-dimensional but has %d allowed-pair tables (one per dimension)", d.Dims, len(d.Allow))
	}
	k := len(d.Labels)
	maxPairs := 4 * k * k
	for dim, pairs := range d.Allow {
		if len(pairs) > maxPairs {
			return fmt.Errorf("lclgrid: dimension %d lists %d allowed pairs; a %d-label alphabet admits at most %d distinct pairs", dim, len(pairs), k, k*k)
		}
		for _, pr := range pairs {
			if !seen[pr.A] {
				return fmt.Errorf("lclgrid: dimension %d allows pair [%q, %q] but %q is not in the alphabet", dim, pr.A, pr.B, pr.A)
			}
			if !seen[pr.B] {
				return fmt.Errorf("lclgrid: dimension %d allows pair [%q, %q] but %q is not in the alphabet", dim, pr.A, pr.B, pr.B)
			}
		}
	}
	if len(d.NodeOK) > maxPairs {
		return fmt.Errorf("lclgrid: node_ok has %d entries for a %d-label alphabet", len(d.NodeOK), k)
	}
	for _, l := range d.NodeOK {
		if !seen[l] {
			return fmt.Errorf("lclgrid: node_ok names %q, which is not in the alphabet", l)
		}
	}
	return nil
}

// labelIndex builds the name→index map of the alphabet. Call after
// Validate (which guarantees uniqueness).
func (d *ProblemDef) labelIndex() map[string]int {
	idx := make(map[string]int, len(d.Labels))
	for i, l := range d.Labels {
		idx[l] = i
	}
	return idx
}

// Canonical validates the definition and returns its canonical form: a
// deep copy with each dimension's pairs sorted by label index and
// deduplicated, node_ok sorted, deduplicated and elided when it covers
// the whole alphabet. The alphabet itself is never reordered or renamed
// — label names and order are part of the fingerprint, so normalisation
// must not touch them. Two definitions with equal canonical forms
// compile to problems with equal fingerprints; the problem store and
// GET /v1/problems/{key} serve this form.
func (d *ProblemDef) Canonical() (*ProblemDef, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	idx := d.labelIndex()
	k := len(d.Labels)
	out := &ProblemDef{
		Name:   d.Name,
		Dims:   d.Dims,
		Labels: append([]string(nil), d.Labels...),
		Allow:  make([][]LabelPair, d.Dims),
	}
	for dim, pairs := range d.Allow {
		set := make(map[int]bool, len(pairs))
		for _, pr := range pairs {
			set[idx[pr.A]*k+idx[pr.B]] = true
		}
		codes := make([]int, 0, len(set))
		for c := range set {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		canon := make([]LabelPair, len(codes))
		for i, c := range codes {
			canon[i] = LabelPair{A: d.Labels[c/k], B: d.Labels[c%k]}
		}
		out.Allow[dim] = canon
	}
	if d.NodeOK != nil {
		set := make(map[int]bool, len(d.NodeOK))
		for _, l := range d.NodeOK {
			set[idx[l]] = true
		}
		if len(set) < k {
			codes := make([]int, 0, len(set))
			for c := range set {
				codes = append(codes, c)
			}
			sort.Ints(codes)
			canon := make([]string, len(codes))
			for i, c := range codes {
				canon[i] = d.Labels[c]
			}
			out.NodeOK = canon
		}
		// A node_ok covering every label is the same constraint system as
		// no node_ok at all (and fingerprints identically): elide it.
	}
	return out, nil
}

// Compile validates the definition and materialises it as the engine's
// *Problem. The compiled problem's Fingerprint() is a pure function of
// the canonical form — pair order, duplicate pairs and an all-label
// node_ok do not affect it — so a DSL re-statement of a catalogue
// problem fingerprint-matches the builtin and shares its synthesis
// cache entries.
func (d *ProblemDef) Compile() (*Problem, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	idx := d.labelIndex()
	k := len(d.Labels)
	allowed := make([][]bool, d.Dims)
	for dim := range allowed {
		tbl := make([]bool, k*k)
		for _, pr := range d.Allow[dim] {
			tbl[idx[pr.A]*k+idx[pr.B]] = true
		}
		allowed[dim] = tbl
	}
	var nodeOK func(a int) bool
	if d.NodeOK != nil {
		ok := make([]bool, k)
		for _, l := range d.NodeOK {
			ok[idx[l]] = true
		}
		nodeOK = func(a int) bool { return ok[a] }
	}
	name := d.Name
	if name == "" {
		name = fmt.Sprintf("user-defined LCL (%d labels, %d-dimensional)", k, d.Dims)
	}
	return lcl.NewProblem(name, d.Labels, d.Dims,
		func(dim, a, b int) bool { return allowed[dim][a*k+b] },
		nodeOK), nil
}

// Fingerprint compiles the definition and returns its canonical
// problem fingerprint — the value synthesis caches, the fleet store and
// the gateway's ring placement all key on.
func (d *ProblemDef) Fingerprint() (string, error) {
	p, err := d.Compile()
	if err != nil {
		return "", err
	}
	return p.Fingerprint(), nil
}

// NewProblemDef extracts the canonical table form of a problem — the
// inverse of Compile. Every *Problem materialises its relations as
// tables at construction, so the extraction is total: round-tripping a
// table-representable catalogue problem through NewProblemDef, JSON and
// Compile yields a problem with the identical fingerprint.
func NewProblemDef(p *Problem) *ProblemDef {
	k := p.K()
	d := &ProblemDef{
		Name:   p.Name(),
		Dims:   p.Dims(),
		Labels: make([]string, k),
		Allow:  make([][]LabelPair, p.Dims()),
	}
	for a := 0; a < k; a++ {
		d.Labels[a] = p.Label(a)
	}
	for dim := 0; dim < p.Dims(); dim++ {
		var pairs []LabelPair
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if p.Allowed(dim, a, b) {
					pairs = append(pairs, LabelPair{A: d.Labels[a], B: d.Labels[b]})
				}
			}
		}
		d.Allow[dim] = pairs
	}
	allOK := true
	for a := 0; a < k; a++ {
		if !p.NodeOK(a) {
			allOK = false
			break
		}
	}
	if !allOK {
		for a := 0; a < k; a++ {
			if p.NodeOK(a) {
				d.NodeOK = append(d.NodeOK, d.Labels[a])
			}
		}
		if d.NodeOK == nil {
			d.NodeOK = []string{} // explicit: no label is valid alone
		}
	}
	return d
}

// UserKeyPrefix prefixes the registry keys of user-defined problems.
// The key is derived from the fingerprint, so registration is
// idempotent: re-defining the same constraint system yields the same
// key on every replica.
const UserKeyPrefix = "user:"

// userKey derives the registry key of a user-defined problem from its
// fingerprint.
func userKey(fingerprint string) string {
	fp := fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	return UserKeyPrefix + fp
}

// oracleAttempts returns the synthesis shapes an oracle-classified spec
// warms and labels through: the one-sided oracle's (k, h, w) schedule
// up to the default power budget, tried smallest first.
func oracleAttempts() []SynthAttempt {
	shapes := core.OracleSchedule(3)
	attempts := make([]SynthAttempt, len(shapes))
	for i, s := range shapes {
		attempts[i] = SynthAttempt{K: s[0], H: s[1], W: s[2]}
	}
	return attempts
}

// DefineProblem compiles and registers a user problem definition in the
// engine's registry under its fingerprint-derived key ("user:<fp12>").
// Registration is idempotent on the fingerprint: re-defining the same
// constraint system (under any name, any pair order) returns the
// existing key with created == false. The returned record carries the
// canonical definition form — the one the problem store persists and
// GET /v1/problems/{key} serves. All errors are *RequestError: a
// definition arrives off the wire and its defects are the client's.
//
// The registered spec carries the Oracle plan hint: solves flow through
// the same Planner → synthesis-oracle → SynthCache pipeline as inline
// problems, so classification results are cached under the fingerprint
// and shared with every other route to the same constraint system.
func (e *Engine) DefineProblem(def *ProblemDef) (StoredProblem, bool, error) {
	canon, err := def.Canonical()
	if err != nil {
		return StoredProblem{}, false, &RequestError{Err: err}
	}
	p, err := canon.Compile()
	if err != nil {
		return StoredProblem{}, false, &RequestError{Err: err}
	}
	fp := p.Fingerprint()
	key := userKey(fp)
	rec := StoredProblem{Key: key, Fingerprint: fp, Def: canon}
	if existing, lerr := e.reg.Lookup(key); lerr == nil {
		if existing.Problem != nil && existing.Problem().Fingerprint() != fp {
			// A truncated-fingerprint collision — astronomically unlikely,
			// but refusing beats silently serving someone else's tables.
			return StoredProblem{}, false, &RequestError{Err: fmt.Errorf("lclgrid: key %s already names a different problem", key)}
		}
		return rec, false, nil
	}
	minSide := 4
	if p.Dims() == 2 {
		minSide = 12 // MinTorusSide for the oracle's smallest k=1 shape
	}
	spec := &ProblemSpec{
		Key:       key,
		Name:      p.Name(),
		Dims:      p.Dims(),
		NumLabels: p.K(),
		Class:     ClassUnknown,
		MinSide:   minSide,
		Problem:   func() *Problem { return p },
		Oracle:    true,
		Source:    SourceUser,
	}
	if err := e.reg.Register(spec); err != nil {
		return StoredProblem{}, false, &RequestError{Err: err}
	}
	return rec, true, nil
}
