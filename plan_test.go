package lclgrid_test

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	lclgrid "lclgrid"
)

// TestPlanExplainNoSynthesis is the explainability acceptance contract:
// Engine.Plan ranks the strategies for a request without performing any
// SAT work, and the ranked list matches what Solve would do.
func TestPlanExplainNoSynthesis(t *testing.T) {
	eng := lclgrid.NewEngine()
	plan, err := eng.Plan(lclgrid.SolveRequest{Key: "4col", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Key != "4col" || plan.Class != lclgrid.ClassLogStar {
		t.Errorf("plan header = %q/%v, want 4col/Θ(log* n)", plan.Key, plan.Class)
	}
	if len(plan.Strategies) != 2 {
		t.Fatalf("plan has %d strategies, want synthesis + baseline:\n%v", len(plan.Strategies), plan)
	}
	synth := plan.Strategies[0]
	if synth.Kind != lclgrid.StrategySynthesis || synth.Skip == "" {
		t.Errorf("stage 0 = %+v, want synthesis skipped (torus 8 below MinTorusSide 28)", synth)
	}
	if len(synth.Attempts) != 1 || synth.Attempts[0].MinSide != 28 || synth.Attempts[0].Fits {
		t.Errorf("synthesis attempts = %+v, want one k=3 7x5 attempt with MinSide 28 that does not fit", synth.Attempts)
	}
	base := plan.Strategies[1]
	if base.Kind != lclgrid.StrategyBaseline || !base.Fallback {
		t.Errorf("stage 1 = %+v, want the gated Θ(n) fallback", base)
	}
	// Planning is probe-only: zero syntheses, zero cache traffic counted.
	if stats := eng.CacheStats(); stats.Misses != 0 || stats.Hits != 0 {
		t.Errorf("planning touched the synthesis path: %+v", stats)
	}
	// The plan is JSON-marshallable (the `lclgrid explain` wire form).
	b, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"synthesis"`, `"kind":"baseline"`, `"min_side":28`, `"fallback":true`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("plan JSON missing %s:\n%s", want, b)
		}
	}
}

// TestSolveTraceFallback is the fallback-trace contract: a request below
// the registered normal form's minimum side produces a Trace showing
// synthesis skipped → baseline used, and the Result's JSON wire form is
// identical to the plain Θ(n) fallback result (the trace is engine
// observability, not wire data).
func TestSolveTraceFallback(t *testing.T) {
	eng := lclgrid.NewEngine()
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 2 {
		t.Fatalf("trace = %+v, want [synthesis skipped, baseline ok]", res.Trace)
	}
	if res.Trace[0].Strategy != lclgrid.StrategySynthesis || res.Trace[0].Outcome != lclgrid.TraceSkipped {
		t.Errorf("trace[0] = %+v, want synthesis skipped", res.Trace[0])
	}
	if !strings.Contains(res.Trace[0].Detail, "below the smallest side") {
		t.Errorf("trace[0] detail %q does not explain the skip", res.Trace[0].Detail)
	}
	if res.Trace[1].Strategy != lclgrid.StrategyBaseline || res.Trace[1].Outcome != lclgrid.TraceOK {
		t.Errorf("trace[1] = %+v, want baseline ok", res.Trace[1])
	}

	// The wire form is byte-identical to the baseline solver's own result
	// (plus the registered class and the engine's Elapsed stamp), with no
	// trace key: downstream JSONL consumers see exactly the pre-planner
	// fallback output.
	spec, err := eng.Registry().Lookup("4col")
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&lclgrid.GlobalSolver{Problem: spec.Problem(), KnownClass: spec.Class}).
		Solve(bg, lclgrid.Square(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := *res
	got.Elapsed = 0 // stamped per call; not part of the comparison
	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("fallback wire form drifted:\n got  %s\n want %s", gotJSON, wantJSON)
	}
	if strings.Contains(string(gotJSON), "trace") {
		t.Errorf("wire form leaks the trace: %s", gotJSON)
	}
}

// TestSolveTraceMatchesPlan: the Trace a Solve records lines up stage by
// stage with the Plan the engine builds for the same request.
func TestSolveTraceMatchesPlan(t *testing.T) {
	eng := lclgrid.NewEngine()
	for _, req := range []lclgrid.SolveRequest{
		{Key: "4col", N: 16},   // synthesis skipped → baseline
		{Key: "5col", N: 16},   // synthesis ok
		{Key: "is", N: 4},      // constant fill
		{Key: "3col", N: 6},    // primary baseline
		{Key: "lm:halt", N: 9}, // direct L_M
	} {
		plan, err := eng.Plan(req)
		if err != nil {
			t.Fatalf("%s: plan: %v", req.Key, err)
		}
		res, err := eng.Solve(bg, req)
		if err != nil {
			t.Fatalf("%s: solve: %v", req.Key, err)
		}
		if len(res.Trace) == 0 || len(res.Trace) > len(plan.Strategies) {
			t.Fatalf("%s: trace has %d steps for a %d-stage plan", req.Key, len(res.Trace), len(plan.Strategies))
		}
		for i, step := range res.Trace {
			if step.Strategy != plan.Strategies[i].Kind {
				t.Errorf("%s: trace[%d] = %v, plan stage %d = %v", req.Key, i, step.Strategy, i, plan.Strategies[i].Kind)
			}
		}
		if last := res.Trace[len(res.Trace)-1]; last.Outcome != lclgrid.TraceOK {
			t.Errorf("%s: final trace step = %+v, want ok", req.Key, last)
		}
	}
}

// TestPlanCachedTableStage: once a table is cached, the planner ranks a
// cached-table stage first and the solve is served by it (trace and
// CacheHit agree).
func TestPlanCachedTableStage(t *testing.T) {
	eng := lclgrid.NewEngine()
	cold, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Trace[len(cold.Trace)-1].Strategy != lclgrid.StrategySynthesis {
		t.Errorf("cold solve served by %v, want the synthesis stage", cold.Trace)
	}
	plan, err := eng.Plan(lclgrid.SolveRequest{Key: "5col", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	// The cached stage owns the (only) shape entirely, so no synthesis
	// stage remains: [cached-table, baseline].
	if len(plan.Strategies) != 2 || plan.Strategies[0].Kind != lclgrid.StrategyCached {
		t.Fatalf("warm plan = %v, want cached-table ranked first with no residual synthesis stage", plan)
	}
	if atts := plan.Strategies[0].Attempts; len(atts) != 1 || !atts[0].Cached {
		t.Errorf("cached stage attempts = %+v, want the cached k=1 3x2 shape", atts)
	}
	warm, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("warm solve did not record the cache hit")
	}
	if warm.Trace[0].Strategy != lclgrid.StrategyCached || warm.Trace[0].Outcome != lclgrid.TraceOK {
		t.Errorf("warm trace = %+v, want cached-table ok first", warm.Trace)
	}
}

// TestPlanCachedUnsatNotReplayed: a cached UNSAT is owned by the
// cached-outcome stage — the planner must not advertise it as a served
// table twice (a residual synthesis stage replaying the same cache
// entry), and the solve must report the honest UNSAT failure.
func TestPlanCachedUnsatNotReplayed(t *testing.T) {
	reg := lclgrid.DefaultRegistry()
	if err := reg.Register(&lclgrid.ProblemSpec{
		Key: "doomed", Name: "doomed", Class: lclgrid.ClassLogStar,
		Problem: func() *lclgrid.Problem { return lclgrid.VertexColoring(4, 2) },
		// 4-colouring is UNSAT at k=1 with 3×2 windows.
		Attempts: []lclgrid.SynthAttempt{{K: 1, H: 3, W: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	eng := lclgrid.NewEngine(lclgrid.WithRegistry(reg))
	if _, _, err := eng.Synthesize(bg, lclgrid.VertexColoring(4, 2), 1, 3, 2); !errors.Is(err, lclgrid.ErrUnsatisfiable) {
		t.Fatalf("priming synthesis: err = %v, want ErrUnsatisfiable", err)
	}
	plan, err := eng.Plan(lclgrid.SolveRequest{Key: "doomed", N: 16})
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]lclgrid.StrategyKind, len(plan.Strategies))
	for i := range plan.Strategies {
		kinds[i] = plan.Strategies[i].Kind
		if plan.Strategies[i].Kind == lclgrid.StrategySynthesis {
			t.Errorf("plan %v replays the cached shape in a synthesis stage", kinds)
		}
	}
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "doomed", N: 16})
	if !errors.Is(err, lclgrid.ErrUnsatisfiable) {
		t.Fatalf("solve: err = %v (res %v), want the honest cached UNSAT", err, res)
	}
	if misses := eng.CacheStats().Misses; misses != 1 {
		t.Errorf("solve re-synthesized the cached UNSAT shape (%d misses, want the priming 1)", misses)
	}
}

// TestSynthesisSolverNoAttempts is the regression test for the empty
// attempt list: the solver must report that nothing was configured, not
// claim the problem unsatisfiable.
func TestSynthesisSolverNoAttempts(t *testing.T) {
	s := &lclgrid.SynthesisSolver{Problem: lclgrid.VertexColoring(5, 2)}
	_, err := s.Solve(bg, lclgrid.Square(16), nil)
	if err == nil {
		t.Fatal("empty-attempts solve succeeded")
	}
	if !strings.Contains(err.Error(), "no attempts configured") {
		t.Errorf("err = %v, want an explicit no-attempts-configured error", err)
	}
	if errors.Is(err, lclgrid.ErrUnsatisfiable) || strings.Contains(err.Error(), "unsatisfiable") {
		t.Errorf("err = %v, must not blame unsatisfiability", err)
	}
	// A forced power overrides the empty list, as before.
	if _, err := s.Solve(bg, lclgrid.Square(16), nil, lclgrid.WithPower(1)); err != nil {
		t.Errorf("forced-power solve over an empty attempt list failed: %v", err)
	}
}

// TestOrientationRaceCancelsLoser: the orientation spec's staged
// attempts ({1,3,3} then {2,5,5}, Lemma 23) race under the parallel
// path; the small k=1 table wins within milliseconds and must cancel
// the k=2 5×5 search (a multi-second SAT instance if left to finish).
// The CountingObserver sees both syntheses start and the loser end as
// an abort.
func TestOrientationRaceCancelsLoser(t *testing.T) {
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&c), lclgrid.WithSynthWorkers(2))
	start := time.Now()
	// N=20 meets both minimum sides (12 and 20), so both shapes race.
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "orient134", N: 20})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("raced solve took %v; the loser was not cancelled", elapsed)
	}
	if !strings.Contains(res.Note, "k=1 window 3x3") {
		t.Errorf("winner note = %q, want the k=1 3×3 table", res.Note)
	}
	if res.Verification != lclgrid.Verified {
		t.Errorf("raced result not verified: %v", res)
	}
	counts := c.Counts()
	if counts.Syntheses != 2 {
		// The loser may have still been queued on the worker semaphore
		// when the winner finished — then it was cancelled before
		// starting and no synthesis event fired for it.
		if counts.Syntheses == 1 && counts.SynthesisAborts == 0 {
			t.Skip("loser was cancelled before its synthesis started; no abort to observe")
		}
		t.Fatalf("syntheses = %d, want 2 (winner + cancelled loser)", counts.Syntheses)
	}
	if counts.SynthesisAborts != 1 {
		t.Errorf("synthesis aborts = %d, want exactly the cancelled k=2 5×5 loser", counts.SynthesisAborts)
	}
	// The winner is cached; the aborted loser left nothing behind.
	if stats := eng.CacheStats(); stats.Entries != 1 {
		t.Errorf("cache entries = %d, want only the winning table", stats.Entries)
	}
	// A repeat solve is served from the cached-table stage: no new race.
	before := c.Counts().Syntheses
	if res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "orient134", N: 20, Seed: 2}); err != nil || !res.CacheHit {
		t.Fatalf("warm repeat: err=%v cacheHit=%v", err, res.CacheHit)
	}
	if got := c.Counts().Syntheses; got != before {
		t.Errorf("warm repeat started %d new syntheses", got-before)
	}
}

// keyedStartObserver counts SynthesisStart events per SynthKey.
type keyedStartObserver struct {
	lclgrid.NopObserver
	mu     sync.Mutex
	starts map[lclgrid.SynthKey]int
}

func (o *keyedStartObserver) SynthesisStart(key lclgrid.SynthKey) {
	o.mu.Lock()
	if o.starts == nil {
		o.starts = make(map[lclgrid.SynthKey]int)
	}
	o.starts[key]++
	o.mu.Unlock()
}

// TestParallelSynthesisStress is the racing-oracle stress contract (run
// under -race in CI): 16 goroutines classify the same problem over one
// engine while its window candidates race; every caller gets the same
// Θ(log* n) answer, and the winning fingerprint's shape is synthesized
// exactly once — singleflight coalescing survives the racing sweep.
func TestParallelSynthesisStress(t *testing.T) {
	var keyed keyedStartObserver
	// Force a real race even on single-core hosts (the default worker
	// budget is GOMAXPROCS, which would serialize the sweep there).
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&keyed), lclgrid.WithSynthWorkers(4))
	p := lclgrid.MIS(2).Problem // k=1: 3×2 is UNSAT, 3×3 admits a table
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([]lclgrid.OracleResult, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = eng.Classify(bg, p, 1)
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("goroutine %d: oracle aborted: %v", i, res.Err)
		}
		if res.Class != lclgrid.ClassLogStar || res.Alg == nil {
			t.Fatalf("goroutine %d: class %v, want Θ(log* n)", i, res.Class)
		}
		if res.Alg.K != 1 || res.Alg.H != 3 || res.Alg.W != 3 {
			t.Fatalf("goroutine %d: winner k=%d %dx%d, want the k=1 3×3 table", i, res.Alg.K, res.Alg.H, res.Alg.W)
		}
	}
	winner := lclgrid.SynthKey{Fingerprint: p.Fingerprint(), K: 1, H: 3, W: 3}
	keyed.mu.Lock()
	winnerStarts := keyed.starts[winner]
	keyed.mu.Unlock()
	if winnerStarts != 1 {
		t.Errorf("winning fingerprint synthesized %d times, want exactly 1", winnerStarts)
	}
	if !eng.Cache().Contains(winner) {
		t.Error("winning table not cached")
	}
	// Classifying again over the warm cache probes instead of racing:
	// zero new syntheses for any shape.
	before := eng.CacheStats().Misses
	if res := eng.Classify(bg, p, 1); res.Class != lclgrid.ClassLogStar {
		t.Fatalf("warm classify: %v", res.Class)
	}
	if got := eng.CacheStats().Misses; got != before {
		t.Errorf("warm classify started %d new syntheses", got-before)
	}
}

// TestWarmStaysSequential: Warm tries a spec's attempt shapes in order
// instead of racing them — the preferred (first) shape is cached and no
// speculative candidate is started or aborted.
func TestWarmStaysSequential(t *testing.T) {
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&c))
	ws, err := eng.Warm(bg, "orient134")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Warmed != 1 || ws.Syntheses != 1 {
		t.Errorf("warm stats = %+v, want 1 warmed with 1 synthesis (the k=1 3×3 shape)", ws)
	}
	counts := c.Counts()
	if counts.Syntheses != 1 || counts.SynthesisAborts != 0 {
		t.Errorf("warm ran %d syntheses (%d aborted), want exactly the first shape and no races", counts.Syntheses, counts.SynthesisAborts)
	}
}

// TestPlanObserverEvents: a solve emits PlanBuilt and one
// StrategyStart/StrategyEnd pair per executed (non-skipped) stage.
func TestPlanObserverEvents(t *testing.T) {
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&c))
	// 4col at N=16: synthesis is skipped (no events), baseline executes.
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 16}); err != nil {
		t.Fatal(err)
	}
	counts := c.Counts()
	if counts.Plans != 1 {
		t.Errorf("plans = %d, want 1", counts.Plans)
	}
	if counts.Strategies != 1 || counts.StrategyErrors != 0 {
		t.Errorf("strategies = %d/%d errors, want exactly the baseline stage", counts.Strategies, counts.StrategyErrors)
	}
	if counts.Fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1 (too-small redirect)", counts.Fallbacks)
	}
	// A request error (unknown key) builds no plan.
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "nope"}); err == nil {
		t.Fatal("unknown key succeeded")
	}
	if got := c.Counts().Plans; got != 1 {
		t.Errorf("plans after failed lookup = %d, want still 1", got)
	}
}

// TestPlanForcedPowerNoFallback: forcing a power produces a
// synthesis-only plan — the baseline must not rescue a request that
// demanded the normal form (the historic ErrTorusTooSmall contract).
func TestPlanForcedPowerNoFallback(t *testing.T) {
	eng := lclgrid.NewEngine()
	plan, err := eng.Plan(lclgrid.SolveRequest{Key: "4col", N: 16, Power: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Strategies {
		if plan.Strategies[i].Kind == lclgrid.StrategyBaseline {
			t.Errorf("forced-power plan contains a baseline stage: %v", plan)
		}
	}
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 16, Power: 3}); !errors.Is(err, lclgrid.ErrTorusTooSmall) {
		t.Errorf("forced synthesis on a small torus: err = %v, want ErrTorusTooSmall", err)
	}
}

// TestSolveStreamCarriesTrace: results served through the worker pool
// carry traces too — the plan pipeline is the single execution path.
func TestSolveStreamCarriesTrace(t *testing.T) {
	eng := lclgrid.NewEngine()
	items, stats := eng.SolveBatch(bg, []lclgrid.SolveRequest{
		{Key: "is", N: 4},
		{Key: "4col", N: 16},
	}, lclgrid.WithWorkers(2))
	if stats.Errors != 0 {
		t.Fatalf("batch errors: %+v", items)
	}
	for i, it := range items {
		if len(it.Result.Trace) == 0 {
			t.Errorf("item %d carries no trace", i)
		}
	}
}

// TestPlanInlineProblem: inline problems plan through the oracle stage
// with the full shape schedule listed, and the executed trace matches.
func TestPlanInlineProblem(t *testing.T) {
	eng := lclgrid.NewEngine()
	req := lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(5, 2), N: 16, MaxPower: 1}
	plan, err := eng.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Strategies) != 2 || plan.Strategies[0].Kind != lclgrid.StrategySynthesis {
		t.Fatalf("inline plan = %v, want oracle synthesis + baseline", plan)
	}
	if atts := plan.Strategies[0].Attempts; len(atts) != 2 {
		t.Errorf("oracle stage lists %d shapes, want the k=1 window schedule (3x2, 3x3)", len(atts))
	}
	res, err := eng.Solve(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != lclgrid.ClassLogStar {
		t.Errorf("class = %v, want Θ(log* n)", res.Class)
	}
	if res.Trace[len(res.Trace)-1].Strategy != lclgrid.StrategySynthesis {
		t.Errorf("trace = %+v, want the synthesis stage to win", res.Trace)
	}
	// A 3-dimensional inline problem: the oracle stage is planned as
	// skipped (2-d synthesis only) and the baseline serves it.
	res3, err := eng.Solve(bg, lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(4, 3), Sides: []int{6, 6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Trace[0].Outcome != lclgrid.TraceSkipped || res3.Trace[1].Strategy != lclgrid.StrategyBaseline {
		t.Errorf("3-d trace = %+v, want [synthesis skipped, baseline ok]", res3.Trace)
	}
}
