package lclgrid

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

func threeColJSON(t *testing.T) string {
	t.Helper()
	data, err := json.Marshal(threeColDef())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestServerDefineProblem pins the POST /v1/problems contract: 201 with
// key + fingerprint + plan on first registration, 200 and the same
// identity on an idempotent re-post, GET /v1/problems/{key} serving the
// canonical definition, and the registered key solving through
// /v1/solve like any catalogue key.
func TestServerDefineProblem(t *testing.T) {
	base, _ := startServer(t, NewServer(NewEngine()))
	doc := threeColJSON(t)

	resp, body := postJSON(t, base+"/v1/problems", doc)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST: %d\n%s", resp.StatusCode, body)
	}
	var dr defineResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatalf("define response: %v\n%s", err, body)
	}
	if !dr.Created || dr.Key == "" || dr.Fingerprint == "" {
		t.Fatalf("define response: %+v", dr)
	}
	if dr.Plan == nil || len(dr.Plan.Strategies) == 0 {
		t.Fatalf("define response carries no plan: %+v", dr)
	}

	// Idempotent re-post: 200, same identity, created == false.
	resp, body = postJSON(t, base+"/v1/problems", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-POST: %d\n%s", resp.StatusCode, body)
	}
	var again defineResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.Created || again.Key != dr.Key || again.Fingerprint != dr.Fingerprint {
		t.Fatalf("re-POST changed identity: %+v vs %+v", again, dr)
	}

	// Read back: the canonical form (sorted deduped pairs, full-coverage
	// node_ok elided), source "user".
	resp, body = getBody(t, base+"/v1/problems/"+dr.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET problem: %d\n%s", resp.StatusCode, body)
	}
	var pd problemDoc
	if err := json.Unmarshal(body, &pd); err != nil {
		t.Fatal(err)
	}
	if pd.Source != SourceUser || pd.Key != dr.Key || pd.Fingerprint != dr.Fingerprint {
		t.Errorf("problem doc: %+v", pd)
	}
	if pd.Def == nil || len(pd.Def.Allow[0]) != 6 || pd.Def.NodeOK != nil {
		t.Errorf("served definition is not canonical: %+v", pd.Def)
	}

	// Conditional GET: strong ETag, 304 on If-None-Match.
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("problem GET carries no ETag")
	}
	req, err := http.NewRequest(http.MethodGet, base+"/v1/problems/"+dr.Key, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Errorf("conditional GET: %d, want 304", cond.StatusCode)
	}

	// The registered key solves. (3-colouring is the paper's headline
	// conjectured-global problem, so this runs the Θ(n) fallback — the
	// oracle finds no normal form.)
	resp, body = postJSON(t, base+"/v1/solve", fmt.Sprintf(`{"key":%q,"n":12,"seed":3}`, dr.Key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve by user key: %d\n%s", resp.StatusCode, body)
	}
	var byKey Result
	if err := json.Unmarshal(body, &byKey); err != nil {
		t.Fatal(err)
	}

	// The same definition solves inline to the identical labelling: both
	// routes plan the same strategies over the same identifiers.
	resp, body = postJSON(t, base+"/v1/solve", fmt.Sprintf(`{"problem_def":%s,"n":12,"seed":3}`, doc))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve by inline def: %d\n%s", resp.StatusCode, body)
	}
	var inline Result
	if err := json.Unmarshal(body, &inline); err != nil {
		t.Fatal(err)
	}
	if len(inline.Labels) == 0 || len(inline.Labels) != len(byKey.Labels) {
		t.Fatalf("label shapes differ: %d vs %d", len(inline.Labels), len(byKey.Labels))
	}
	for i := range byKey.Labels {
		if byKey.Labels[i] != inline.Labels[i] {
			t.Fatalf("labels differ at %d: %d vs %d", i, byKey.Labels[i], inline.Labels[i])
		}
	}

	// The catalogue listing carries the user entry with its source.
	resp, body = getBody(t, base+"/v1/problems")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var listing struct {
		Problems []struct {
			Key    string `json:"key"`
			Source string `json:"source"`
		} `json:"problems"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range listing.Problems {
		if p.Key == dr.Key {
			found = p.Source == SourceUser
		}
	}
	if !found {
		t.Errorf("listing does not carry %s with source %q:\n%s", dr.Key, SourceUser, body)
	}
}

// TestServerProblemGetBuiltin: every table-backed catalogue entry reads
// back in DSL form, and the extraction fingerprints identically to the
// builtin.
func TestServerProblemGetBuiltin(t *testing.T) {
	e := NewEngine()
	base, _ := startServer(t, NewServer(e))
	resp, body := getBody(t, base+"/v1/problems/5col")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET 5col: %d\n%s", resp.StatusCode, body)
	}
	var pd problemDoc
	if err := json.Unmarshal(body, &pd); err != nil {
		t.Fatal(err)
	}
	if pd.Source != SourceBuiltin {
		t.Errorf("5col source = %q, want %q", pd.Source, SourceBuiltin)
	}
	spec, err := e.Registry().Lookup("5col")
	if err != nil {
		t.Fatal(err)
	}
	fp, err := pd.Def.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.Problem().Fingerprint(); fp != want {
		t.Errorf("extracted definition fingerprints to %s, want %s", fp, want)
	}

	// A key with no table form has no DSL view.
	resp, body = getBody(t, base+"/v1/problems/no-such-key")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown key: %d\n%s", resp.StatusCode, body)
	}
}

// TestServerDefineProblemRejects pins the 4xx surface of POST
// /v1/problems.
func TestServerDefineProblemRejects(t *testing.T) {
	base, _ := startServer(t, NewServer(NewEngine()))
	for name, doc := range map[string]string{
		"not json":     `{"dims":`,
		"no labels":    `{"dims":2,"labels":[],"allow":[[],[]]}`,
		"bad pair":     `{"dims":2,"labels":["a"],"allow":[[["a","b"]],[]]}`,
		"wrong tables": `{"dims":2,"labels":["a"],"allow":[[]]}`,
		"bad arity":    `{"dims":2,"labels":["a"],"allow":[[["a"]],[]]}`,
		"zero dims":    `{"dims":0,"labels":["a"],"allow":[]}`,
	} {
		resp, body := postJSON(t, base+"/v1/problems", doc)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400\n%s", name, resp.StatusCode, body)
		}
	}
}

// TestServerProblemsSurviveRestart is the persistence acceptance round
// trip: POST against a dir-backed store, boot a fresh engine + server
// from the same directory (the serve command's restore path), and the
// problem is still registered, readable and solvable.
func TestServerProblemsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := NewDirProblemStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	base1, shutdown := startServer(t, NewServer(NewEngine(), WithProblemStore(store1)))

	resp, body := postJSON(t, base1+"/v1/problems", threeColJSON(t))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d\n%s", resp.StatusCode, body)
	}
	var dr defineResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// "Restart": a fresh engine restored from the directory, exactly as
	// `lclgrid serve -problems-dir` does on boot.
	store2, err := NewDirProblemStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine()
	for _, sp := range store2.List() {
		if _, _, err := eng2.DefineProblem(sp.Def); err != nil {
			t.Fatalf("restore %s: %v", sp.Key, err)
		}
	}
	base2, _ := startServer(t, NewServer(eng2, WithProblemStore(store2)))

	resp, body = getBody(t, base2+"/v1/problems/"+dr.Key)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after restart: %d\n%s", resp.StatusCode, body)
	}
	var pd problemDoc
	if err := json.Unmarshal(body, &pd); err != nil {
		t.Fatal(err)
	}
	if pd.Fingerprint != dr.Fingerprint || pd.Source != SourceUser {
		t.Errorf("restarted doc: %+v, want fingerprint %s", pd, dr.Fingerprint)
	}

	// Re-posting after the restart is still idempotent (200, not 201).
	resp, body = postJSON(t, base2+"/v1/problems", threeColJSON(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-POST after restart: %d\n%s", resp.StatusCode, body)
	}

	// And it still solves.
	resp, body = postJSON(t, base2+"/v1/solve", fmt.Sprintf(`{"key":%q,"n":12}`, dr.Key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after restart: %d\n%s", resp.StatusCode, body)
	}
}
