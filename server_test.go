package lclgrid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer boots srv on an ephemeral port and returns its base URL
// and a shutdown func that cancels the serve context and returns
// Serve's error (nil = clean drain). Shutdown is idempotent and runs as
// a cleanup if the test does not call it.
func startServer(t *testing.T, srv *Server) (string, func() error) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	var once sync.Once
	var serveErr error
	shutdown := func() error {
		once.Do(func() {
			cancel()
			serveErr = <-done
		})
		return serveErr
	}
	t.Cleanup(func() {
		if err := shutdown(); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return "http://" + l.Addr().String(), shutdown
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", url, err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s response: %v", url, err)
	}
	return resp, data
}

// normalizeResult strips the run-dependent wall clock from a Result
// JSON document and re-marshals it canonically, so two runs of the same
// deterministic request can be compared byte for byte.
func normalizeResult(t *testing.T, data []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("result document does not decode: %v\n%s", err, data)
	}
	delete(m, "elapsed_ns")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return out
}

// gateSolver blocks inside Solve until its gate closes — the in-flight
// request the admission, timeout and drain tests need.
type gateSolver struct {
	gate    <-chan struct{}
	started chan<- struct{}
}

func (g *gateSolver) Name() string { return "gate" }

func (g *gateSolver) Solve(ctx context.Context, tor *Torus, ids []int, opts ...Option) (*Result, error) {
	if g.started != nil {
		g.started <- struct{}{}
	}
	select {
	case <-g.gate:
		return &Result{Problem: "gated", Solver: g.Name(), Class: ClassO1}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// gatedRegistry is the default catalogue plus a "gate" key whose solver
// blocks until the returned release func is called. started receives one
// element per solve that entered the gate.
func gatedRegistry(t *testing.T) (reg *Registry, started chan struct{}, release func()) {
	t.Helper()
	reg = DefaultRegistry()
	gate := make(chan struct{})
	started = make(chan struct{}, 64)
	spec := &ProblemSpec{
		Key: "gate", Name: "gated", Dims: 2, Class: ClassO1, MinSide: 4,
		Direct: func(e *Engine) Solver { return &gateSolver{gate: gate, started: started} },
		Verify: func(*Torus, *Result) error { return nil },
	}
	if err := reg.Register(spec); err != nil {
		t.Fatalf("register gate spec: %v", err)
	}
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	return reg, started, release
}

// TestServerSolveMatchesEngine is the wire-fidelity acceptance check: a
// server on an ephemeral port must return byte-equivalent Result JSON
// to an Engine.Solve of the same request (the `lclgrid run` path),
// modulo the wall clock.
func TestServerSolveMatchesEngine(t *testing.T) {
	srv := NewServer(NewEngine())
	base, _ := startServer(t, srv)

	reqs := []string{
		`{"key":"orient2","n":8}`,
		`{"key":"mis","n":12,"seed":7}`,
		`{"key":"3col","n":4}`,
	}
	ref := NewEngine() // a fresh engine, as `lclgrid run` would build
	for _, doc := range reqs {
		var req SolveRequest
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatalf("unmarshal %s: %v", doc, err)
		}
		want, err := ref.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("engine solve %s: %v", doc, err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("marshal reference result: %v", err)
		}
		resp, got := postJSON(t, base+"/v1/solve", doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", doc, resp.StatusCode, got)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content type %q", doc, ct)
		}
		if a, b := normalizeResult(t, got), normalizeResult(t, wantJSON); !bytes.Equal(a, b) {
			t.Errorf("%s: served result differs from engine result\nserver: %s\nengine: %s", doc, a, b)
		}
	}
}

// TestServerWarmBootServesCatalogueWithZeroSyntheses is the warm-boot
// acceptance check: warm a cache directory, boot a fresh server over
// it, solve every key in the catalogue through HTTP, and verify via the
// metrics endpoint that the served traffic ran zero SAT syntheses and
// that the counters reflect exactly the served requests.
func TestServerWarmBootServesCatalogueWithZeroSyntheses(t *testing.T) {
	if testing.Short() {
		t.Skip("solves the whole catalogue")
	}
	dir := t.TempDir()
	warmEng := NewEngine(WithCacheDir(dir))
	ws, err := warmEng.Warm(context.Background())
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if ws.Syntheses == 0 {
		t.Fatalf("cold warm performed no syntheses: %+v", ws)
	}

	// A restarted server: fresh engine, same cache directory.
	m := NewMetricsObserver()
	eng := NewEngine(WithCacheDir(dir), WithObserver(m))
	srv := NewServer(eng, WithMetricsObserver(m))
	base, _ := startServer(t, srv)

	keys := eng.Registry().Keys()
	for _, key := range keys {
		resp, body := postJSON(t, base+"/v1/solve", fmt.Sprintf(`{"key":%q}`, key))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: status %d: %s", key, resp.StatusCode, body)
		}
	}

	_, metrics := getBody(t, base+"/metrics")
	body := string(metrics)
	if got := metricValue(t, body, "lclgrid_syntheses_total"); got != 0 {
		t.Errorf("warm-booted server ran %v syntheses, want 0\n%s", got, body)
	}
	if got := metricValue(t, body, "lclgrid_requests_total"); got != float64(len(keys)) {
		t.Errorf("lclgrid_requests_total = %v, want %d", got, len(keys))
	}
	if got := metricValue(t, body, "lclgrid_request_errors_total"); got != 0 {
		t.Errorf("lclgrid_request_errors_total = %v, want 0", got)
	}
	if got := metricValue(t, body, "lclgrid_cache_hits_total"); got == 0 {
		t.Error("no cache hits recorded for a warm-booted catalogue sweep")
	}
	want := fmt.Sprintf(`lclgrid_http_requests_total{path="/v1/solve",code="200"} %d`, len(keys))
	if !strings.Contains(body, want) {
		t.Errorf("missing %q in metrics:\n%s", want, body)
	}
}

// TestServerBatchStreamsAndDrains is the graceful-shutdown acceptance
// check: shutdown begins while a batch is in flight, and every JSONL
// line still arrives before the connection closes.
func TestServerBatchStreamsAndDrains(t *testing.T) {
	reg, started, release := gatedRegistry(t)
	eng := NewEngine(WithRegistry(reg))
	srv := NewServer(eng, WithBatchWorkers(4))
	base, shutdown := startServer(t, srv)

	body := strings.Repeat(`{"key":"gate","n":4}`+"\n", 3)
	type lineOrErr struct {
		line []byte
		err  error
	}
	lines := make(chan lineOrErr)
	go func() {
		resp, err := http.Post(base+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			lines <- lineOrErr{err: err}
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineOrErr{line: append([]byte(nil), sc.Bytes()...)}
		}
		lines <- lineOrErr{err: sc.Err()} // nil on clean EOF
	}()

	// All three solves in flight...
	for i := 0; i < 3; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("batch solves did not start")
		}
	}
	// ...then shutdown begins with the batch mid-stream.
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- shutdown() }()
	// Release the gate and collect every line.
	time.Sleep(50 * time.Millisecond) // let Shutdown enter its drain loop
	release()

	got := make(map[int]bool)
	for len(got) < 3 {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream ended early with %d/3 lines: %v", len(got), l.err)
			}
			var line struct {
				Index  *int            `json:"index"`
				Key    string          `json:"key"`
				Result json.RawMessage `json:"result"`
				Error  string          `json:"error"`
			}
			if err := json.Unmarshal(l.line, &line); err != nil {
				t.Fatalf("bad line %s: %v", l.line, err)
			}
			if line.Index == nil || line.Error != "" || len(line.Result) == 0 {
				t.Fatalf("dropped or failed line during drain: %s", l.line)
			}
			got[*line.Index] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("drain dropped lines: got %d/3", len(got))
		}
	}
	if l := <-lines; l.err != nil {
		t.Fatalf("stream did not end cleanly: %v", l.err)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete after the batch drained")
	}
	// The drained server refuses new connections.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("drained server still accepts connections")
	}
}

// TestServerBatchOrdered checks ?ordered=1 restores input order while
// the default stream yields in completion order.
func TestServerBatchOrdered(t *testing.T) {
	reg, started, release := gatedRegistry(t)
	eng := NewEngine(WithRegistry(reg))
	srv := NewServer(eng, WithBatchWorkers(2))
	base, _ := startServer(t, srv)

	// Default order: the gated line 0 completes after the fast line 1.
	body := `{"key":"gate","n":4}` + "\n" + `{"key":"is","n":4}` + "\n"
	respCh := make(chan [][]byte, 1)
	go func() {
		resp, err := http.Post(base+"/v1/batch", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			respCh <- nil
			return
		}
		defer resp.Body.Close()
		var out [][]byte
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			out = append(out, append([]byte(nil), sc.Bytes()...))
		}
		respCh <- out
	}()
	<-started // the gate line is in flight; the fast line races ahead
	release()
	lines := <-respCh
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %s", len(lines), bytes.Join(lines, []byte("|")))
	}

	// Ordered: same body, indexes must ascend regardless of completion.
	resp, data := postJSON(t, base+"/v1/batch?ordered=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ordered batch: status %d", resp.StatusCode)
	}
	var indexes []int
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var l struct {
			Index *int `json:"index"`
		}
		if err := json.Unmarshal(line, &l); err != nil || l.Index == nil {
			t.Fatalf("bad ordered line %s: %v", line, err)
		}
		indexes = append(indexes, *l.Index)
	}
	if len(indexes) != 2 || indexes[0] != 0 || indexes[1] != 1 {
		t.Errorf("ordered batch yielded indexes %v, want [0 1]", indexes)
	}
}

// TestServerAdmissionControl checks the in-flight bound: the saturated
// server sheds the second solve with 429 + Retry-After while the cheap
// endpoints stay available, and serves again once the slot frees.
func TestServerAdmissionControl(t *testing.T) {
	reg, started, release := gatedRegistry(t)
	m := NewMetricsObserver()
	eng := NewEngine(WithRegistry(reg), WithObserver(m))
	srv := NewServer(eng, WithMetricsObserver(m), WithMaxInflight(1))
	base, _ := startServer(t, srv)

	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, base+"/v1/solve", `{"key":"gate","n":4}`)
		firstDone <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first solve did not start")
	}

	resp, body := postJSON(t, base+"/v1/solve", `{"key":"is","n":4}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
	if !strings.Contains(string(body), "capacity") {
		t.Errorf("429 body does not explain the rejection: %s", body)
	}
	// Observability survives saturation.
	if resp, _ := getBody(t, base+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz under saturation: status %d", resp.StatusCode)
	}
	resp, metrics := getBody(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics under saturation: status %d", resp.StatusCode)
	}
	if got := metricValue(t, string(metrics), "lclgrid_http_throttled_total"); got != 1 {
		t.Errorf("lclgrid_http_throttled_total = %v, want 1", got)
	}
	if got := metricValue(t, string(metrics), "lclgrid_requests_inflight"); got != 1 {
		t.Errorf("lclgrid_requests_inflight = %v, want 1 (the gated solve)", got)
	}

	release()
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("gated solve: status %d, want 200", code)
	}
	// The slot is free again.
	if resp, body := postJSON(t, base+"/v1/solve", `{"key":"is","n":4}`); resp.StatusCode != http.StatusOK {
		t.Errorf("post-release solve: status %d: %s", resp.StatusCode, body)
	}
}

// TestServerRequestTimeout checks the per-request deadline derived from
// the server config aborts a hung solve with 504.
func TestServerRequestTimeout(t *testing.T) {
	reg, _, release := gatedRegistry(t)
	defer release()
	eng := NewEngine(WithRegistry(reg))
	srv := NewServer(eng, WithRequestTimeout(50*time.Millisecond))
	base, _ := startServer(t, srv)

	start := time.Now()
	resp, body := postJSON(t, base+"/v1/solve", `{"key":"gate","n":4}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("hung solve: status %d, want 504: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, deadline was 50ms", elapsed)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("504 body does not name the deadline: %s", body)
	}
}

// TestServerStalledBodyReleasesSlot checks the slowloris defence: a
// client that sends half a request document and stalls is cut off by
// the read deadline instead of parking the handler (and its admission
// slot) forever.
func TestServerStalledBodyReleasesSlot(t *testing.T) {
	srv := NewServer(NewEngine(), WithRequestTimeout(200*time.Millisecond), WithMaxInflight(1))
	base, _ := startServer(t, srv)

	conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	partial := `{"key":"4col",`
	fmt.Fprintf(conn, "POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n%s", partial)
	// The server must answer within the read deadline, not hang.
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1024)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("stalled request got no response: %v", err)
	}
	if !strings.Contains(string(buf[:n]), "400") {
		t.Errorf("stalled request response is not a 400:\n%s", buf[:n])
	}
	// The admission slot is free again: a real request serves.
	resp, body := postJSON(t, base+"/v1/solve", `{"key":"is","n":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("solve after stalled client: status %d: %s", resp.StatusCode, body)
	}
}

// TestServerClientDisconnectIs499 checks a client abort mid-solve is
// recorded as 499 (client closed request), not as a 504 server
// deadline.
func TestServerClientDisconnectIs499(t *testing.T) {
	reg, started, release := gatedRegistry(t)
	defer release()
	m := NewMetricsObserver()
	eng := NewEngine(WithRegistry(reg), WithObserver(m))
	srv := NewServer(eng, WithMetricsObserver(m))
	base, _ := startServer(t, srv)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/solve", strings.NewReader(`{"key":"gate","n":4}`))
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("gated solve did not start")
	}
	cancel() // the client goes away; the gate never opens
	if err := <-errCh; err == nil {
		t.Fatal("cancelled client request unexpectedly succeeded")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, metrics := getBody(t, base+"/metrics")
		if strings.Contains(string(metrics), `path="/v1/solve",code="499"`) {
			break
		}
		if strings.Contains(string(metrics), `path="/v1/solve",code="504"`) {
			t.Fatal("client abort recorded as a 504 server deadline")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no 499 series appeared:\n%s", metrics)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerRejectsBadRequests pins the 4xx surface of /v1/solve.
func TestServerRejectsBadRequests(t *testing.T) {
	srv := NewServer(NewEngine(), WithMaxBodyBytes(256))
	base, _ := startServer(t, srv)

	tests := []struct {
		name string
		body string
		code int
	}{
		{"malformed json", `{"key":`, http.StatusBadRequest},
		{"unknown key", `{"key":"nope","n":8}`, http.StatusBadRequest},
		{"no problem", `{"n":8}`, http.StatusBadRequest},
		{"huge n", `{"key":"4col","n":1000000000}`, http.StatusBadRequest},
		{"trailing document", `{"key":"4col","n":8}{"key":"mis"}`, http.StatusBadRequest},
		{"oversized body", `{"key":"4col","ids":[` + strings.Repeat("1,", 200) + `1]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			resp, body := postJSON(t, base+"/v1/solve", tt.body)
			if resp.StatusCode != tt.code {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tt.code, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error response is not an {\"error\": ...} document: %s", body)
			}
		})
	}

	// Method mismatches are 405 from the mux patterns.
	resp, _ := getBody(t, base+"/v1/solve")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: status %d, want 405", resp.StatusCode)
	}
}

// TestServerBatchDeadlineLeavesTruncationMarker checks a deadline that
// stops the batch before the input is fully read leaves an in-band
// terminal error line — a client counting lines must be able to tell
// "all served" from "truncated".
func TestServerBatchDeadlineLeavesTruncationMarker(t *testing.T) {
	reg, started, release := gatedRegistry(t)
	defer release()
	eng := NewEngine(WithRegistry(reg))
	srv := NewServer(eng, WithBatchWorkers(1), WithRequestTimeout(300*time.Millisecond))
	base, _ := startServer(t, srv)

	// Worker pool of 1: the first gated solve blocks the pool, so the
	// deadline fires with most of the input still unread.
	body := strings.Repeat(`{"key":"gate","n":4}`+"\n", 8)
	go func() {
		<-started // let the first solve enter the gate; the rest queue
	}()
	resp, data := postJSON(t, base+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("no output lines")
	}
	var last struct {
		Index *int   `json:"index"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("bad terminal line %s: %v", lines[len(lines)-1], err)
	}
	if last.Index != nil || !strings.Contains(last.Error, "truncated") {
		t.Errorf("terminal line is not a truncation marker: %s", lines[len(lines)-1])
	}
	// A complete batch, by contrast, ends without a marker.
	resp, data = postJSON(t, base+"/v1/batch", `{"key":"is","n":4}`+"\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("complete batch: status %d", resp.StatusCode)
	}
	lines = bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) != 1 {
		t.Fatalf("complete batch produced %d lines, want 1: %s", len(lines), data)
	}
	var only struct {
		Index *int   `json:"index"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(lines[0], &only); err != nil || only.Index == nil || only.Error != "" {
		t.Errorf("complete batch line wrong: %s (err %v)", lines[0], err)
	}
}

// TestServerExplainRunsNoSAT checks /v1/explain returns the ranked plan
// with zero syntheses started, and /v1/problems lists the catalogue.
func TestServerExplainRunsNoSAT(t *testing.T) {
	m := NewMetricsObserver()
	eng := NewEngine(WithObserver(m))
	srv := NewServer(eng, WithMetricsObserver(m))
	base, _ := startServer(t, srv)

	resp, body := postJSON(t, base+"/v1/explain", `{"key":"4col","n":8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d: %s", resp.StatusCode, body)
	}
	var plan Plan
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("explain response does not decode as a Plan: %v", err)
	}
	if plan.Key != "4col" || len(plan.Strategies) == 0 {
		t.Errorf("unexpected plan: %+v", plan)
	}
	_, metrics := getBody(t, base+"/metrics")
	if got := metricValue(t, string(metrics), "lclgrid_syntheses_total"); got != 0 {
		t.Errorf("explain started %v syntheses, want 0", got)
	}

	resp, body = getBody(t, base+"/v1/problems")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("problems: status %d", resp.StatusCode)
	}
	var catalogue struct {
		Problems []struct {
			Key      string `json:"key"`
			Class    string `json:"class"`
			Strategy string `json:"strategy"`
		} `json:"problems"`
		Families []string `json:"families"`
	}
	if err := json.Unmarshal(body, &catalogue); err != nil {
		t.Fatalf("problems response does not decode: %v\n%s", err, body)
	}
	if want := len(eng.Registry().Keys()); len(catalogue.Problems) != want {
		t.Errorf("catalogue has %d problems, want %d", len(catalogue.Problems), want)
	}
	byKey := map[string]string{}
	for _, p := range catalogue.Problems {
		if p.Strategy == "" {
			t.Errorf("problem %s has no strategy hint", p.Key)
		}
		byKey[p.Key] = p.Class
	}
	if byKey["4col"] != "logstar" || byKey["3col"] != "global" {
		t.Errorf("catalogue classes wrong: %v", byKey)
	}
	if len(catalogue.Families) == 0 {
		t.Error("catalogue lists no families")
	}
}

// BenchmarkServerSolveCached measures the full HTTP round trip of a
// cache-warm solve through the in-process handler (no network).
func BenchmarkServerSolveCached(b *testing.B) {
	srv := NewServer(NewEngine())
	body := []byte(`{"key":"5col","n":12}`)
	// Warm the synthesis cache once.
	warm := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warm solve: status %d: %s", rec.Code, rec.Body)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest(http.MethodPost, "/v1/solve", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// TestServerLabelsETagRoundTrip serves a label window over HTTP,
// asserts the response matches the engine exactly and carries the
// caching headers, then revalidates with If-None-Match and checks the
// 304 short-circuits before any evaluation.
func TestServerLabelsETagRoundTrip(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng)
	base, _ := startServer(t, srv)

	doc := `{"key":"mis","sides":[100000,100000],"seed":7,"x":99998,"y":42000,"w":6,"h":4}`
	resp, got := postJSON(t, base+"/v1/labels", doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != labelCacheControl {
		t.Errorf("Cache-Control = %q, want %q", cc, labelCacheControl)
	}
	var req LabelRequest
	if err := json.Unmarshal([]byte(doc), &req); err != nil {
		t.Fatal(err)
	}
	want, err := eng.LabelWindow(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want.CacheHit = false // the HTTP call was the cold one; this call found it warm
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), wantJSON) {
		t.Errorf("served labels differ from engine:\nserver: %s\nengine: %s", got, wantJSON)
	}

	// Revalidation: same document, If-None-Match → 304 with no body,
	// and no new evaluation (the engine's counters stay put).
	misses := eng.CacheStats().Misses
	r, err := http.NewRequest(http.MethodPost, base+"/v1/labels", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set("Content-Type", "application/json")
	r.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d: %s", resp2.StatusCode, body)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a body: %s", body)
	}
	if resp2.Header.Get("ETag") != etag {
		t.Errorf("304 ETag = %q, want %q", resp2.Header.Get("ETag"), etag)
	}
	if got := eng.CacheStats().Misses; got != misses {
		t.Errorf("revalidation synthesized: misses %d -> %d", misses, got)
	}

	// A different window gets a different validator.
	resp3, _ := postJSON(t, base+"/v1/labels", `{"key":"mis","sides":[100000,100000],"seed":7,"x":0,"y":0,"w":6,"h":4}`)
	if other := resp3.Header.Get("ETag"); other == "" || other == etag {
		t.Errorf("distinct windows share ETag %q", other)
	}
}

// TestServerProblemsETag checks the catalogue endpoint's validator:
// stable across requests, honoured by If-None-Match.
func TestServerProblemsETag(t *testing.T) {
	srv := NewServer(NewEngine())
	base, _ := startServer(t, srv)

	resp, err := http.Get(base + "/v1/problems")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("catalogue response has no ETag")
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Errorf("Cache-Control = %q", cc)
	}
	r, err := http.NewRequest(http.MethodGet, base+"/v1/problems", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(r)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d: %s", resp2.StatusCode, body)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a body: %s", body)
	}
}

// TestServerExportJSONL streams a small grid export and checks the
// framing: one band line per band, in row order, then a terminal done
// line with the totals, and labels matching the engine's solve.
func TestServerExportJSONL(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng)
	base, _ := startServer(t, srv)

	const side = 13
	want, err := eng.Solve(context.Background(), SolveRequest{
		Key: "mis", N: side, IDs: AffineIDs(side*side, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/export", "application/json",
		strings.NewReader(`{"key":"mis","n":13,"seed":3,"band_rows":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	labels := make([]int, side*side)
	nextY, bands, done := 0, 0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line exportLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Done:
			done = true
			if line.Bands != bands || line.Nodes != side*side {
				t.Errorf("done line reports %d bands / %d nodes, want %d / %d",
					line.Bands, line.Nodes, bands, side*side)
			}
		case line.Band != nil:
			if done {
				t.Fatal("band after the done line")
			}
			if line.Band.Y != nextY {
				t.Errorf("band at row %d, want %d", line.Band.Y, nextY)
			}
			copy(labels[line.Band.Y*side:], line.Band.Labels)
			nextY += line.Band.Rows
			bands++
		default:
			t.Fatalf("unrecognised line %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done || nextY != side {
		t.Fatalf("done=%v, rows covered %d/%d", done, nextY, side)
	}
	for v := range labels {
		if labels[v] != want.Labels[v] {
			t.Fatalf("node %d: export %d, solve %d", v, labels[v], want.Labels[v])
		}
	}
}

// TestServerExportInt32 checks the raw binary framing: exactly
// nx*ny*4 little-endian bytes, row-major, equal to the engine's labels.
func TestServerExportInt32(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng)
	base, _ := startServer(t, srv)

	const side = 12
	want, err := eng.Solve(context.Background(), SolveRequest{
		Key: "mis", N: side, IDs: AffineIDs(side*side, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/export", "application/json",
		strings.NewReader(`{"key":"mis","n":12,"format":"int32"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	if len(data) != side*side*4 {
		t.Fatalf("body is %d bytes, want %d", len(data), side*side*4)
	}
	for v := range want.Labels {
		got := int(int32(binary.LittleEndian.Uint32(data[v*4:])))
		if got != want.Labels[v] {
			t.Fatalf("node %d: export %d, solve %d", v, got, want.Labels[v])
		}
	}
}

// TestServerLabelsRejectsBadRequests checks the 400 path of the new
// endpoints: malformed documents, validation failures and
// client-attributable planning failures all map to 400.
func TestServerLabelsRejectsBadRequests(t *testing.T) {
	srv := NewServer(NewEngine())
	base, _ := startServer(t, srv)

	for _, tc := range []struct{ url, body string }{
		{"/v1/labels", `{"key":`},
		{"/v1/labels", `{"key":"mis","w":0,"h":1}`},
		{"/v1/labels", `{"key":"nope","w":1,"h":1}`},
		{"/v1/labels", `{"key":"is","w":1,"h":1}`},
		{"/v1/labels", `{"key":"mis","n":2000000,"w":1,"h":1}`},
		{"/v1/labels", `{"key":"mis","n":16,"mode":"lattice","w":1,"h":1}`},
		{"/v1/export", `{"key":"mis","format":"yaml"}`},
		{"/v1/export", `{"key":"mis","band_rows":-1}`},
	} {
		resp, body := postJSON(t, base+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d (%s), want 400", tc.url, tc.body, resp.StatusCode, body)
		}
	}
}

// TestServerLabelMetrics checks the windowed-labeling series reach the
// exposition when engine and server share a metrics observer.
func TestServerLabelMetrics(t *testing.T) {
	m := NewMetricsObserver()
	eng := NewEngine(WithObserver(m))
	srv := NewServer(eng, WithMetricsObserver(m))
	base, _ := startServer(t, srv)

	if resp, body := postJSON(t, base+"/v1/labels", `{"key":"mis","n":16,"w":3,"h":3}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: status %d: %s", resp.StatusCode, body)
	}
	// A request that passes wire validation but fails planning reaches
	// the engine, so the error shows up in the label series.
	resp, metrics := postJSON(t, base+"/v1/labels", `{"key":"nope","w":1,"h":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad labels: status %d: %s", resp.StatusCode, metrics)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"lclgrid_label_requests_total 2",
		"lclgrid_label_request_errors_total 1",
		"lclgrid_label_window_nodes_total 9",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
