package lclgrid

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startCacheService boots a CacheServer over httptest and returns it
// with its base URL.
func startCacheService(t *testing.T, opts ...CacheServerOption) (*CacheServer, string) {
	t.Helper()
	cs := NewCacheServer(nil, opts...)
	ts := httptest.NewServer(cs)
	t.Cleanup(ts.Close)
	return cs, ts.URL
}

// TestRemoteCacheSharesSynthesesAcrossEngines is the tentpole's core
// promise: a table synthesized by one replica is a cache hit on every
// other replica pointing at the same cache service.
func TestRemoteCacheSharesSynthesesAcrossEngines(t *testing.T) {
	cs, base := startCacheService(t)
	p5 := VertexColoring(5, 2)

	rcA, err := NewRemoteCache(base, nil, WithRemoteOwner("a"))
	if err != nil {
		t.Fatal(err)
	}
	engA := NewEngine(WithCache(rcA))
	if _, cached, err := engA.Synthesize(context.Background(), p5, 1, 3, 2); err != nil || cached {
		t.Fatalf("cold synthesis: cached=%v err=%v", cached, err)
	}
	if st := cs.Stats(); st.Puts != 1 {
		t.Fatalf("synthesis was not published to the fleet store: %+v", st)
	}

	// A different process (fresh RemoteCache, fresh engine) hits.
	rcB, err := NewRemoteCache(base, nil, WithRemoteOwner("b"))
	if err != nil {
		t.Fatal(err)
	}
	engB := NewEngine(WithCache(rcB))
	if _, cached, err := engB.Synthesize(context.Background(), p5, 1, 3, 2); err != nil || !cached {
		t.Fatalf("remote record not served as a hit: cached=%v err=%v", cached, err)
	}
	if got := engB.CacheStats().Misses; got != 0 {
		t.Fatalf("engine B synthesized %d times over a warm fleet store", got)
	}
	// The remote hit is folded into Stats as a hit (the diskCache fold).
	if st := rcB.Stats(); st.Hits == 0 {
		t.Fatalf("remote hit not folded into Stats: %+v", st)
	}

	// Second lookup on B is served by the memory layer: no new remote GET.
	gets := cs.Stats().Gets
	if _, cached, _ := engB.Synthesize(context.Background(), p5, 1, 3, 2); !cached {
		t.Fatal("second lookup missed")
	}
	if cs.Stats().Gets != gets {
		t.Fatal("memory layer did not absorb the repeat lookup")
	}
}

// TestRemoteCacheDegradesToLocalSynthesis: every backend failure mode —
// unreachable, 5xx, timeout — must leave the engine fully serviceable
// via local synthesis, with the degradation observable, never an error.
func TestRemoteCacheDegradesToLocalSynthesis(t *testing.T) {
	p5 := VertexColoring(5, 2)
	cases := []struct {
		name    string
		handler http.Handler
	}{
		{"http-500", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "sick backend", http.StatusInternalServerError)
		})},
		{"timeout", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(2 * time.Second)
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			obs := NewMetricsObserver()
			rc, err := NewRemoteCache(ts.URL, nil,
				WithRemoteClient(&http.Client{Timeout: 100 * time.Millisecond}),
				WithRemoteObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			eng := NewEngine(WithCache(rc))
			alg, cached, err := eng.Synthesize(context.Background(), p5, 1, 3, 2)
			if err != nil || cached || alg == nil {
				t.Fatalf("degraded solve: alg=%v cached=%v err=%v", alg, cached, err)
			}
			var sb strings.Builder
			obs.WritePrometheus(&sb)
			text := sb.String()
			if !strings.Contains(text, "lclgrid_remote_cache_degraded_total 1") {
				t.Errorf("degradation not counted:\n%s", grepMetrics(text, "remote_cache"))
			}
			if !strings.Contains(text, `lclgrid_remote_cache_ops_total{op="get",outcome="error"}`) &&
				!strings.Contains(text, `lclgrid_remote_cache_ops_total{op="get",outcome="miss"}`) {
				t.Errorf("remote get failure not counted:\n%s", grepMetrics(text, "remote_cache"))
			}
		})
	}

	// Connection refused (no server at all) behaves the same.
	t.Run("unreachable", func(t *testing.T) {
		rc, err := NewRemoteCache("http://127.0.0.1:1", nil,
			WithRemoteClient(&http.Client{Timeout: 100 * time.Millisecond}))
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(WithCache(rc))
		if alg, _, err := eng.Synthesize(context.Background(), p5, 1, 3, 2); err != nil || alg == nil {
			t.Fatalf("solve with unreachable cache service: %v", err)
		}
	})
}

// grepMetrics filters a Prometheus rendering to the lines mentioning
// substr, for focused failure messages.
func grepMetrics(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestRemoteCacheCorruptRecordHeals: a corrupt stored record is a miss
// (never an error), is deleted so it cannot poison other replicas, and
// the next Put heals the store.
func TestRemoteCacheCorruptRecordHeals(t *testing.T) {
	cs, base := startCacheService(t)
	p5 := VertexColoring(5, 2)
	key := SynthKey{Fingerprint: p5.Fingerprint(), K: 1, H: 3, W: 2}
	name := cacheKeyName(key)
	if name == "" {
		t.Fatal("key has no canonical name")
	}

	// Plant garbage under the canonical name.
	if err := cs.store.Put(name, []byte(`{"key":{"fingerprint":"not-this-one"}}`)); err != nil {
		t.Fatal(err)
	}
	obs := NewMetricsObserver()
	rc, err := NewRemoteCache(base, nil, WithRemoteObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rc.Get(key); ok {
		t.Fatal("corrupt record served as a hit")
	}
	if _, ok, _ := cs.store.Get(name); ok {
		t.Fatal("corrupt record not removed from the store")
	}
	var sb strings.Builder
	obs.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `op="get",outcome="corrupt"`) {
		t.Errorf("corrupt fetch not counted:\n%s", grepMetrics(sb.String(), "remote_cache"))
	}

	// The engine synthesizes through the miss and Put heals the store:
	// a second replica now reads a valid record.
	eng := NewEngine(WithCache(rc))
	if alg, _, err := eng.Synthesize(context.Background(), p5, 1, 3, 2); err != nil || alg == nil {
		t.Fatalf("synthesis through corrupt record: %v", err)
	}
	data, ok, _ := cs.store.Get(name)
	if !ok {
		t.Fatal("Put did not heal the store")
	}
	if _, err := decodeDiskRecord(data, key); err != nil {
		t.Fatalf("healed record does not decode: %v", err)
	}
	rc2, _ := NewRemoteCache(base, nil, WithRemoteOwner("b"))
	if val, ok := rc2.Get(key); !ok || val.Alg == nil {
		t.Fatal("healed record not served to a fresh replica")
	}
}

// TestRemoteCacheFailuresNeverPoisonSingleflight: with a backend that
// errors on every call, concurrent requests for one cold key still
// coalesce onto exactly one local synthesis — remote failures must not
// break the engine's singleflight invariants. Run under -race.
func TestRemoteCacheFailuresNeverPoisonSingleflight(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "flaky", http.StatusInternalServerError)
	}))
	defer ts.Close()
	rc, err := NewRemoteCache(ts.URL, nil,
		WithRemoteClient(&http.Client{Timeout: 200 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(WithCache(rc))
	p5 := VertexColoring(5, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			alg, _, err := eng.Synthesize(context.Background(), p5, 1, 3, 2)
			if err != nil || alg == nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request failed under remote faults: %v", err)
	}
	if got := eng.CacheStats().Misses; got != 1 {
		t.Fatalf("singleflight ran %d syntheses, want 1", got)
	}
}

// TestFleetSingleSynthesis is the fleet e2e acceptance check: three
// replicas (engines with distinct RemoteCaches over one cache service)
// racing the same cold fingerprint run the SAT synthesis exactly once
// cluster-wide — one replica holds the lease and synthesizes, the rest
// are served its published outcome.
func TestFleetSingleSynthesis(t *testing.T) {
	cs, base := startCacheService(t)
	p5 := VertexColoring(5, 2)

	const replicas = 3
	engines := make([]*Engine, replicas)
	for i := range engines {
		rc, err := NewRemoteCache(base, nil,
			WithRemoteOwner(string(rune('a'+i))),
			WithLeaseTTL(time.Second), // poll at ttl/4 = 250ms
			WithLeaseWait(30*time.Second))
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = NewEngine(WithCache(rc))
	}

	var wg sync.WaitGroup
	errs := make(chan error, replicas)
	for _, eng := range engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			alg, _, err := e.Synthesize(context.Background(), p5, 1, 3, 2)
			if err != nil || alg == nil {
				errs <- err
			}
		}(eng)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("replica failed: %v", err)
	}

	total := uint64(0)
	for _, eng := range engines {
		total += eng.CacheStats().Misses
	}
	if total != 1 {
		t.Fatalf("cluster ran %d syntheses for one fingerprint, want exactly 1", total)
	}
	st := cs.Stats()
	if st.LeaseGrants == 0 {
		t.Fatalf("no lease was ever granted: %+v", st)
	}
	if st.Puts != 1 {
		t.Fatalf("store received %d puts, want 1: %+v", st.Puts, st)
	}
}

// TestFleetLeaseTakeover: a replica that dies mid-synthesis (lease
// acquired, never heartbeated, never released) blocks the fleet for at
// most the lease TTL; the next replica then takes the synthesis over
// and completes it.
func TestFleetLeaseTakeover(t *testing.T) {
	clock := newFakeClock()
	cs, base := startCacheService(t, withCacheClock(clock.Now))
	p5 := VertexColoring(5, 2)
	key := SynthKey{Fingerprint: p5.Fingerprint(), K: 1, H: 3, W: 2}
	name := cacheKeyName(key)

	// Replica "dead" wins the cluster election and immediately dies:
	// acquire the lease raw, with no heartbeat loop and no release.
	rcDead, err := NewRemoteCache(base, nil, WithRemoteOwner("dead"), WithLeaseTTL(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	granted, _, err := rcDead.acquireLease(context.Background(), name)
	if err != nil || !granted {
		t.Fatalf("dead replica's acquire: granted=%v err=%v", granted, err)
	}

	// Replica "live" contends. While the dead lease is fresh it is told
	// to wait; once the TTL lapses its next acquire takes over.
	rcLive, err := NewRemoteCache(base, nil, WithRemoteOwner("live"),
		WithLeaseTTL(time.Second), WithLeaseWait(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if granted, holdWait, err := rcLive.acquireLease(context.Background(), name); err != nil || granted {
		t.Fatalf("live replica acquired a held lease: granted=%v err=%v", granted, err)
	} else if holdWait <= 0 {
		t.Fatalf("conflict carried no holder TTL: %v", holdWait)
	}

	clock.Advance(6 * time.Second) // the dead owner's TTL lapses

	engLive := NewEngine(WithCache(rcLive))
	start := time.Now()
	alg, cached, err := engLive.Synthesize(context.Background(), p5, 1, 3, 2)
	if err != nil || cached || alg == nil {
		t.Fatalf("takeover synthesis: alg=%v cached=%v err=%v", alg, cached, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("takeover took %v", elapsed)
	}
	st := cs.Stats()
	if st.LeaseExpiries != 1 {
		t.Fatalf("takeover not recorded as a lease expiry: %+v", st)
	}
	if st.Puts != 1 {
		t.Fatalf("takeover synthesis not published: %+v", st)
	}
}

// TestRemoteCachePullOwned: warm-on-boot pulls exactly the owned slice
// of the shared store into the memory layer.
func TestRemoteCachePullOwned(t *testing.T) {
	_, base := startCacheService(t)
	p5 := VertexColoring(5, 2)
	p4 := VertexColoring(4, 2)

	// Publish two fingerprints through a seeding replica.
	seed, err := NewRemoteCache(base, nil, WithRemoteOwner("seed"))
	if err != nil {
		t.Fatal(err)
	}
	engSeed := NewEngine(WithCache(seed))
	if _, _, err := engSeed.Synthesize(context.Background(), p5, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := engSeed.Synthesize(context.Background(), p4, 3, 7, 5); err != nil {
		t.Fatal(err)
	}

	// A booting replica owning only p5's fingerprint pulls exactly it.
	rc, err := NewRemoteCache(base, nil, WithRemoteOwner("boot"))
	if err != nil {
		t.Fatal(err)
	}
	owned := p5.Fingerprint()
	n, err := rc.PullOwned(context.Background(), func(k SynthKey) bool { return k.Fingerprint == owned })
	if err != nil || n != 1 {
		t.Fatalf("PullOwned = %d, %v; want 1, nil", n, err)
	}
	if !rc.inner.Contains(SynthKey{Fingerprint: owned, K: 1, H: 3, W: 2}) {
		t.Fatal("owned record not in the memory layer")
	}
	if rc.inner.Contains(SynthKey{Fingerprint: p4.Fingerprint(), K: 3, H: 7, W: 5}) {
		t.Fatal("unowned record was pulled")
	}
}

// BenchmarkRemoteCacheWarmSolve measures a solve whose table comes from
// the shared fleet store: the memory layer is cleared every iteration,
// so each solve pays one remote GET + record decode (the steady state
// of a replica serving a fingerprint another replica synthesized).
func BenchmarkRemoteCacheWarmSolve(b *testing.B) {
	cs := NewCacheServer(nil)
	ts := httptest.NewServer(cs)
	defer ts.Close()
	rc, err := NewRemoteCache(ts.URL, nil, WithRemoteOwner("bench"))
	if err != nil {
		b.Fatal(err)
	}
	eng := NewEngine(WithCache(rc))
	req := SolveRequest{Key: "5col", N: 12}
	if _, err := eng.Solve(context.Background(), req); err != nil {
		b.Fatalf("warming solve: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.inner.Reset() // force the remote layer to serve the table
		if _, err := eng.Solve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
