package lclgrid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"
)

// startGateway boots gw on an ephemeral port (Serve path: real drain,
// real health prober) and returns its base URL.
func startGateway(t *testing.T, gw *Gateway) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- gw.Serve(ctx, l) }()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
	})
	return "http://" + l.Addr().String()
}

// normalizeBatchLine strips the wall clock from one JSONL line and
// re-marshals it canonically so gateway and single-server output can be
// compared for identical content.
func normalizeBatchLine(t *testing.T, line []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("bad batch line %s: %v", line, err)
	}
	if res, ok := m["result"].(map[string]any); ok {
		delete(res, "elapsed_ns")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func batchLines(t *testing.T, base, body, query string) []string {
	t.Helper()
	resp, err := http.Post(base+"/v1/batch"+query, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("batch POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, string(append([]byte(nil), sc.Bytes()...)))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("batch stream: %v", err)
	}
	return lines
}

// TestGatewayBatchMatchesSingleServer is the fan-out fidelity check: a
// two-shard gateway batch must produce the same JSONL content as one
// server solving the whole document — the same set of lines in
// completion mode, the identical sequence with ?ordered=1 (modulo
// elapsed_ns in both cases).
func TestGatewayBatchMatchesSingleServer(t *testing.T) {
	// The reference: one server over one engine.
	single := NewServer(NewEngine())
	singleBase, _ := startServer(t, single)

	// The fleet: two independent shards (separate engines — no shared
	// cache needed for fidelity) behind a gateway.
	shardA, _ := startServer(t, NewServer(NewEngine()))
	shardB, _ := startServer(t, NewServer(NewEngine()))
	gw, err := NewGateway([]string{shardA, shardB})
	if err != nil {
		t.Fatal(err)
	}
	gwBase := startGateway(t, gw)

	doc := `{"key":"5col","n":8}
{"key":"mis","n":8}
{"key":"orient134","n":6}
{"key":"5col","n":10}
{"key":"is","n":8}
`
	want := batchLines(t, singleBase, doc, "?ordered=1")

	// Ordered mode: the gateway stream is line-for-line identical.
	got := batchLines(t, gwBase, doc, "?ordered=1")
	if len(got) != len(want) {
		t.Fatalf("gateway returned %d lines, single server %d", len(got), len(want))
	}
	for i := range want {
		w, g := normalizeBatchLine(t, []byte(want[i])), normalizeBatchLine(t, []byte(got[i]))
		if w != g {
			t.Errorf("ordered line %d differs:\nsingle:  %s\ngateway: %s", i, w, g)
		}
	}

	// Completion mode: same content, order free.
	gotC := batchLines(t, gwBase, doc, "")
	if len(gotC) != len(want) {
		t.Fatalf("completion mode returned %d lines, want %d", len(gotC), len(want))
	}
	var wantN, gotN []string
	for i := range want {
		wantN = append(wantN, normalizeBatchLine(t, []byte(want[i])))
		gotN = append(gotN, normalizeBatchLine(t, []byte(gotC[i])))
	}
	sort.Strings(wantN)
	sort.Strings(gotN)
	for i := range wantN {
		if wantN[i] != gotN[i] {
			t.Errorf("completion content differs at %d:\nsingle:  %s\ngateway: %s", i, wantN[i], gotN[i])
		}
	}

	// Every shard the ring routes a document key to actually served
	// traffic. (The split itself depends on the ephemeral shard
	// addresses hashed onto the ring, so the expectation is computed
	// with the gateway's own routing, not assumed to cover all shards.)
	expected := make(map[string]bool)
	for _, key := range []string{"5col", "mis", "orient134", "is"} {
		expected[gw.ring.Sequence(gw.routingKey(key))[0]] = true
	}
	var sb strings.Builder
	gw.Metrics().WritePrometheus(&sb)
	for shard := range expected {
		if !strings.Contains(sb.String(), fmt.Sprintf("shard=%q", shard)) {
			t.Errorf("shard %s served no requests:\n%s", shard, grepMetrics(sb.String(), "gateway"))
		}
	}
}

// TestGatewaySolveMatchesSingleServer: a routed solve through the
// gateway returns the same Result bytes as the shard would (the relay
// never re-marshals), and repeated requests for one key land on one
// shard.
func TestGatewaySolveMatchesSingleServer(t *testing.T) {
	shardA, _ := startServer(t, NewServer(NewEngine()))
	shardB, _ := startServer(t, NewServer(NewEngine()))
	gw, err := NewGateway([]string{shardA, shardB})
	if err != nil {
		t.Fatal(err)
	}
	gwBase := startGateway(t, gw)

	body := `{"key":"5col","n":12}`
	owner := gw.pickShard("5col")
	// Warm the owner first so the direct and routed responses are both
	// cache hits — the comparison is about routing fidelity, not about
	// which request paid the synthesis.
	if resp, warm := postJSON(t, owner+"/v1/solve", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming solve: %d %s", resp.StatusCode, warm)
	}
	resp, direct := postJSON(t, owner+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct solve: %d %s", resp.StatusCode, direct)
	}
	resp, routed := postJSON(t, gwBase+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed solve: %d %s", resp.StatusCode, routed)
	}
	if !bytes.Equal(normalizeResult(t, direct), normalizeResult(t, routed)) {
		t.Errorf("routed result differs:\ndirect: %s\nrouted: %s", direct, routed)
	}
}

// TestGatewayRetriesNextReplica: a key whose ring owner is unreachable
// is served by the next replica in the key's sequence, the dead shard
// is marked unhealthy, and the retry is counted.
func TestGatewayRetriesNextReplica(t *testing.T) {
	live, _ := startServer(t, NewServer(NewEngine()))

	// A dead shard: reserve an address, then close the listener.
	deadL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + deadL.Addr().String()
	deadL.Close()

	gw, err := NewGateway([]string{dead, live})
	if err != nil {
		t.Fatal(err)
	}
	// Mount the handler directly — no Serve, no background prober: the
	// dead shard must still be unknown so the first attempt really hits
	// it (a known-dead shard is skipped, which is not a retry).
	ts := httptest.NewServer(gw)
	defer ts.Close()
	gwBase := ts.URL

	// Find a registry key the dead shard owns, so the first attempt
	// fails over. (With two shards roughly half the catalogue will do.)
	key := ""
	for _, k := range DefaultRegistry().Keys() {
		if gw.ring.Owner(gw.routingKey(k)) == dead {
			key = k
			break
		}
	}
	if key == "" {
		t.Skip("no catalogue key maps to the dead shard on this ring")
	}

	resp, body := postJSON(t, gwBase+"/v1/solve", fmt.Sprintf(`{"key":%q,"n":8}`, key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover solve: %d %s", resp.StatusCode, body)
	}
	var sb strings.Builder
	gw.Metrics().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "lclgrid_gateway_retries_total 1") {
		t.Errorf("failover not counted as a retry:\n%s", grepMetrics(sb.String(), "gateway"))
	}
	if gw.shardHealthy(dead) {
		t.Error("dead shard still marked healthy after a failed attempt")
	}

	// Later requests skip the known-dead shard without another retry.
	resp, _ = postJSON(t, gwBase+"/v1/solve", fmt.Sprintf(`{"key":%q,"n":8}`, key))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second solve: %d", resp.StatusCode)
	}
}

// TestGatewayShardLossMidBatch: a shard dying mid-stream fails exactly
// its unanswered lines — each as an in-band {"index","key","error"}
// line — while already-answered lines survive untouched.
func TestGatewayShardLossMidBatch(t *testing.T) {
	// A fake shard that answers the first batch line and then drops the
	// connection (the abrupt close of a crashing replica).
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Write([]byte(`{"status":"ok"}`))
		case "/v1/batch":
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.Write([]byte(`{"index":0,"key":"5col","result":{"problem":"5col","status":"ok"}}` + "\n"))
			http.NewResponseController(w).Flush()
			panic(http.ErrAbortHandler)
		default:
			http.NotFound(w, r)
		}
	}))
	defer fake.Close()

	gw, err := NewGateway([]string{fake.URL})
	if err != nil {
		t.Fatal(err)
	}
	gwBase := startGateway(t, gw)

	doc := `{"key":"5col","n":8}
{"key":"mis","n":8}
{"key":"is","n":8}
`
	lines := batchLines(t, gwBase, doc, "")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (one answer, two in-band errors):\n%s", len(lines), strings.Join(lines, "\n"))
	}
	byIndex := make(map[int]gwLine, 3)
	for _, l := range lines {
		var line gwLine
		if err := json.Unmarshal([]byte(l), &line); err != nil || line.Index == nil {
			t.Fatalf("unframed line %q: %v", l, err)
		}
		byIndex[*line.Index] = line
	}
	if line := byIndex[0]; line.Error != "" || len(line.Result) == 0 {
		t.Errorf("answered line 0 was disturbed: %+v", line)
	}
	for _, i := range []int{1, 2} {
		line, ok := byIndex[i]
		if !ok {
			t.Fatalf("line %d missing", i)
		}
		if !strings.Contains(line.Error, "failed mid-batch") {
			t.Errorf("line %d: error %q does not name the mid-batch failure", i, line.Error)
		}
		if line.Key == "" {
			t.Errorf("line %d error lost its echo key", i)
		}
	}
}

// TestGatewayReadiness: the gateway reports unready until a shard
// probes healthy, and recovers when one appears.
func TestGatewayReadiness(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "warming", http.StatusServiceUnavailable)
	}))
	defer down.Close()

	gw, err := NewGateway([]string{down.URL}, WithGatewayProbeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Before any probe: unready (nothing is known-healthy).
	if err := gw.Ready(); err == nil {
		t.Fatal("gateway ready before any probe")
	}
	gw.ProbeShards(context.Background())
	if err := gw.Ready(); err == nil {
		t.Fatal("gateway ready with every shard unhealthy")
	}

	// /readyz wires Ready to 503, /healthz stays 200 (liveness).
	ts := httptest.NewServer(gw)
	defer ts.Close()
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no healthy shard: %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// A healthy shard flips readiness on the next probe.
	live, _ := startServer(t, NewServer(NewEngine()))
	gw2, err := NewGateway([]string{down.URL, live}, WithGatewayProbeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	gw2.ProbeShards(context.Background())
	if err := gw2.Ready(); err != nil {
		t.Fatalf("gateway unready with a healthy shard: %v", err)
	}
}

// TestServerReadyzSplit: /healthz (liveness) answers 200 throughout,
// /readyz mirrors the WithReadyCheck hook — 503 while warming, 200
// after — and defaults to ready when no hook is installed.
func TestServerReadyzSplit(t *testing.T) {
	eng := NewEngine()
	plain := httptest.NewServer(NewServer(eng))
	defer plain.Close()
	if resp, _ := getBody(t, plain.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with no hook: %d", resp.StatusCode)
	}

	warming := true
	srv := NewServer(eng, WithReadyCheck(func() error {
		if warming {
			return fmt.Errorf("warm-on-boot in progress")
		}
		return nil
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while warming: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "warm-on-boot") {
		t.Errorf("readyz body does not carry the reason: %s", body)
	}
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while warming: %d", resp.StatusCode)
	}

	warming = false
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after warm: %d", resp.StatusCode)
	}
}

// BenchmarkGatewayBatch measures a six-line batch fanned across two
// warm shards and merged in order — the gateway's full fan-out path
// over real HTTP shard connections.
func BenchmarkGatewayBatch(b *testing.B) {
	newShard := func() *httptest.Server {
		return httptest.NewServer(NewServer(NewEngine()))
	}
	shardA, shardB := newShard(), newShard()
	defer shardA.Close()
	defer shardB.Close()
	gw, err := NewGateway([]string{shardA.URL, shardB.URL})
	if err != nil {
		b.Fatal(err)
	}
	doc := []byte(`{"key":"5col","n":8}
{"key":"mis","n":8}
{"key":"orient134","n":6}
{"key":"5col","n":10}
{"key":"is","n":8}
{"key":"mis","n":10}
`)
	run := func() int {
		r := httptest.NewRequest(http.MethodPost, "/v1/batch?ordered=1", bytes.NewReader(doc))
		w := httptest.NewRecorder()
		gw.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
		return bytes.Count(w.Body.Bytes(), []byte("\n"))
	}
	if lines := run(); lines != 6 { // warm both shards
		b.Fatalf("warm batch returned %d lines", lines)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lines := run(); lines != 6 {
			b.Fatalf("batch returned %d lines", lines)
		}
	}
}
