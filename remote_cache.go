package lclgrid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteCache is the fleet side of the synthesis cache: a SynthCache
// that layers a shared CacheServer under a local in-memory cache,
// exactly as diskCache layers a directory — the memory layer absorbs
// the steady state, and a miss consults the cluster store before the
// engine pays for a SAT synthesis. A table synthesized by any replica
// becomes a hit on every replica.
//
// Two properties drive the design:
//
//   - Availability over freshness: every remote failure — timeout, 5xx,
//     connection refused, corrupt record — degrades to a local miss.
//     The engine then synthesizes locally, so a dead cache backend
//     costs duplicated work, never an outage. Degradations are counted
//     (RemoteCacheObserver / lclgrid_remote_cache_* metrics) so the
//     condition is visible without being fatal.
//   - Cluster-wide singleflight: the engine's per-process singleflight
//     elects one synthesizing goroutine per key; RemoteCache extends
//     the election across processes through the cache service's lease
//     protocol (see the leaseCoordinator seam in Engine.Synthesize).
//     The local election winner tries to acquire the key's lease;
//     losers poll the shared store until the cluster winner publishes
//     the result, taking over if the winner's lease expires — so a
//     fleet racing one cold fingerprint runs the synthesis once, and a
//     replica dying mid-synthesis delays the others by at most the
//     lease TTL.
//
// Construct with NewRemoteCache and install via WithCache. Safe for
// concurrent use.
type RemoteCache struct {
	base    string // normalized base URL, no trailing slash
	inner   SynthCache
	client  *http.Client
	owner   string
	ttl     time.Duration
	maxWait time.Duration
	obs     RemoteCacheObserver

	// remoteHits counts Gets served by the shared store; folded into
	// Stats exactly like diskCache.diskHits.
	remoteHits atomic.Uint64
}

var _ SynthCache = (*RemoteCache)(nil)

// RemoteCacheObserver receives remote-cache events; MetricsObserver
// implements it (lclgrid_remote_cache_* series). Install with
// WithRemoteObserver.
type RemoteCacheObserver interface {
	// RemoteCacheOp records one remote interaction: op is the protocol
	// verb ("get", "head", "put", "delete", "lease", "wait"), outcome
	// its result ("hit", "miss", "stored", "granted", "conflict",
	// "served", "error", "corrupt", "expired").
	RemoteCacheOp(op, outcome string, elapsed time.Duration)
	// RemoteCacheDegraded records a coordination give-up: the replica
	// fell back to uncoordinated local synthesis because the cache
	// service was unreachable or the lease wait timed out.
	RemoteCacheDegraded()
}

// RemoteCacheOption configures NewRemoteCache.
type RemoteCacheOption func(*remoteCacheConfig)

type remoteCacheConfig struct {
	client  *http.Client
	owner   string
	ttl     time.Duration
	maxWait time.Duration
	obs     RemoteCacheObserver
}

// WithRemoteClient sets the HTTP client used for every cache-service
// interaction. The default client carries a 5-second timeout — the
// remote layer must fail fast into local synthesis, not hang solves on
// a sick backend.
func WithRemoteClient(c *http.Client) RemoteCacheOption {
	return func(cfg *remoteCacheConfig) { cfg.client = c }
}

// WithRemoteOwner sets the replica identity used for synthesis leases
// (default: hostname#pid). Every replica in a fleet must use a distinct
// owner string; two replicas sharing one identity would both believe
// they hold the same lease.
func WithRemoteOwner(owner string) RemoteCacheOption {
	return func(cfg *remoteCacheConfig) { cfg.owner = owner }
}

// WithLeaseTTL sets the synthesis lease TTL (default 15s). The owner
// heartbeats at ttl/3, so a live owner holds its lease indefinitely; a
// dead one blocks other replicas for at most this long before they take
// the synthesis over.
func WithLeaseTTL(ttl time.Duration) RemoteCacheOption {
	return func(cfg *remoteCacheConfig) { cfg.ttl = ttl }
}

// WithLeaseWait bounds how long a replica waits on another replica's
// in-flight synthesis before giving up and synthesizing locally
// (default 60s). Non-positive disables waiting entirely: lease
// conflicts degrade straight to local synthesis.
func WithLeaseWait(d time.Duration) RemoteCacheOption {
	return func(cfg *remoteCacheConfig) { cfg.maxWait = d }
}

// WithRemoteObserver installs the remote-cache event observer
// (typically the serving MetricsObserver).
func WithRemoteObserver(obs RemoteCacheObserver) RemoteCacheOption {
	return func(cfg *remoteCacheConfig) { cfg.obs = obs }
}

// NewRemoteCache returns a SynthCache backed by the cache service at
// baseURL (e.g. "http://cache:8090", or a serve replica's
// ".../v1/cache" mount), layered over inner (nil selects a fresh
// NewMemoryCache).
func NewRemoteCache(baseURL string, inner SynthCache, opts ...RemoteCacheOption) (*RemoteCache, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("lclgrid: remote cache needs an absolute base URL, got %q", baseURL)
	}
	cfg := remoteCacheConfig{
		ttl:     15 * time.Second,
		maxWait: 60 * time.Second,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.client == nil {
		cfg.client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.owner == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "lclgrid"
		}
		cfg.owner = fmt.Sprintf("%s#%d", host, os.Getpid())
	}
	if cfg.ttl < time.Second {
		cfg.ttl = time.Second
	}
	if inner == nil {
		inner = NewMemoryCache()
	}
	return &RemoteCache{
		base:    strings.TrimRight(u.String(), "/"),
		inner:   inner,
		client:  cfg.client,
		owner:   cfg.owner,
		ttl:     cfg.ttl,
		maxWait: cfg.maxWait,
		obs:     cfg.obs,
	}, nil
}

// Owner returns the replica identity used for synthesis leases.
func (c *RemoteCache) Owner() string { return c.owner }

func (c *RemoteCache) setOnEvict(fn func(SynthKey)) {
	if en, ok := c.inner.(evictNotifier); ok {
		en.setOnEvict(fn)
	}
}

func (c *RemoteCache) observeOp(op, outcome string, elapsed time.Duration) {
	if c.obs != nil {
		c.obs.RemoteCacheOp(op, outcome, elapsed)
	}
}

func (c *RemoteCache) observeDegraded() {
	if c.obs != nil {
		c.obs.RemoteCacheDegraded()
	}
}

func (c *RemoteCache) cacheURL(name string) string { return c.base + "/cache/" + name }
func (c *RemoteCache) leaseURL(name string) string { return c.base + "/lease/" + name }

// Get consults the memory layer, then the shared store. Any remote
// failure — including a record that fails to decode, which is deleted
// best-effort so the next Put heals it — is a miss.
func (c *RemoteCache) Get(key SynthKey) (CachedSynthesis, bool) {
	if val, ok := c.inner.Get(key); ok {
		return val, true
	}
	name := cacheKeyName(key)
	if name == "" {
		return CachedSynthesis{}, false
	}
	val, ok := c.fetch(context.Background(), name, key)
	if !ok {
		return CachedSynthesis{}, false
	}
	c.remoteHits.Add(1)
	c.inner.Put(key, val)
	return val, true
}

// fetch retrieves and decodes one record from the shared store. It does
// not touch the memory layer or the hit counters — Get and the lease
// wait loop layer their own bookkeeping on top.
func (c *RemoteCache) fetch(ctx context.Context, name string, key SynthKey) (CachedSynthesis, bool) {
	start := time.Now()
	ctx, sp := StartSpan(ctx, "remote.get")
	sp.SetAttr("blob", name)
	// done settles both telemetry layers in one place: the aggregate
	// RemoteCacheOp counter and the span's outcome attribute.
	done := func(outcome string) {
		c.observeOp("get", outcome, time.Since(start))
		sp.SetAttr("outcome", outcome)
		sp.End()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cacheURL(name), nil)
	if err != nil {
		done("error")
		return CachedSynthesis{}, false
	}
	injectTraceparent(ctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		done("error")
		return CachedSynthesis{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		done("miss")
		return CachedSynthesis{}, false
	}
	if resp.StatusCode != http.StatusOK {
		done("error")
		return CachedSynthesis{}, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, DefaultMaxBlobBytes+1))
	if err != nil || int64(len(data)) > DefaultMaxBlobBytes {
		done("error")
		return CachedSynthesis{}, false
	}
	val, err := decodeDiskRecord(data, key)
	if err != nil {
		// Corrupt or mismatched: a miss locally, and the record is
		// removed best-effort so the cluster heals on the next Put
		// instead of serving the same poison to every replica.
		done("corrupt")
		c.deleteRemote(name)
		return CachedSynthesis{}, false
	}
	done("hit")
	return val, true
}

// Contains probes the memory layer, then HEADs the shared store.
func (c *RemoteCache) Contains(key SynthKey) bool {
	if c.inner.Contains(key) {
		return true
	}
	name := cacheKeyName(key)
	if name == "" {
		return false
	}
	start := time.Now()
	req, err := http.NewRequest(http.MethodHead, c.cacheURL(name), nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeOp("head", "error", time.Since(start))
		return false
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		c.observeOp("head", "hit", time.Since(start))
		return true
	}
	c.observeOp("head", "miss", time.Since(start))
	return false
}

// Put stores into both layers. The remote write is best-effort and
// synchronous: by the time the engine retires a singleflight slot (and
// releases the key's cluster lease) the record is visible to the
// replicas polling for it. A failed remote write leaves the memory
// entry intact — the table is just not shared.
func (c *RemoteCache) Put(key SynthKey, val CachedSynthesis) {
	c.inner.Put(key, val)
	data, ok := encodeCacheRecord(key, val)
	if !ok {
		return // process-local failures are not shared
	}
	name := cacheKeyName(key)
	if name == "" {
		return
	}
	start := time.Now()
	req, err := http.NewRequest(http.MethodPut, c.cacheURL(name), bytes.NewReader(data))
	if err != nil {
		c.observeOp("put", "error", time.Since(start))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeOp("put", "error", time.Since(start))
		return
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		c.observeOp("put", "error", time.Since(start))
		return
	}
	c.observeOp("put", "stored", time.Since(start))
}

// Evict removes from both layers.
func (c *RemoteCache) Evict(key SynthKey) bool {
	removed := c.inner.Evict(key)
	if name := cacheKeyName(key); name != "" {
		if c.deleteRemote(name) {
			removed = true
		}
	}
	return removed
}

func (c *RemoteCache) deleteRemote(name string) bool {
	start := time.Now()
	req, err := http.NewRequest(http.MethodDelete, c.cacheURL(name), nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.observeOp("delete", "error", time.Since(start))
		return false
	}
	resp.Body.Close()
	c.observeOp("delete", "ok", time.Since(start))
	return resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK
}

// Reset clears the memory layer only: the shared store is the fleet's
// catalogue, not this process's to clear. Evict individual keys (or
// administer the cache service directly) to remove shared records.
func (c *RemoteCache) Reset() int {
	n := c.inner.Reset()
	c.remoteHits.Store(0)
	return n
}

// Stats reports the two layers as one, with the same fold as diskCache:
// lookups served by the shared store count as Hits rather than Misses.
func (c *RemoteCache) Stats() CacheStats {
	s := c.inner.Stats()
	h := c.remoteHits.Load()
	s.Hits += h
	if s.Misses >= h {
		s.Misses -= h
	} else {
		s.Misses = 0
	}
	return s
}

// Keys lists every SynthKey in the shared store (non-canonical names
// are skipped). This is the discovery half of warm-on-boot.
func (c *RemoteCache) Keys(ctx context.Context) ([]SynthKey, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/keys", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("lclgrid: remote cache key listing: %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return nil, err
	}
	keys := make([]SynthKey, 0, len(names))
	for _, name := range names {
		key, err := parseCacheKeyName(name)
		if err != nil {
			continue
		}
		keys = append(keys, key)
	}
	return keys, nil
}

// PullOwned pre-loads the memory layer with every shared record whose
// key satisfies owns (nil pulls everything): the warm-on-boot a ring
// member runs so it boots hot for the slice of fingerprint space it
// serves. Undecodable records are skipped. Returns how many entries
// were loaded.
func (c *RemoteCache) PullOwned(ctx context.Context, owns func(SynthKey) bool) (int, error) {
	keys, err := c.Keys(ctx)
	if err != nil {
		return 0, err
	}
	loaded := 0
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return loaded, err
		}
		if owns != nil && !owns(key) {
			continue
		}
		if c.inner.Contains(key) {
			loaded++
			continue
		}
		name := cacheKeyName(key)
		if name == "" {
			continue
		}
		if val, ok := c.fetch(ctx, name, key); ok {
			c.inner.Put(key, val)
			loaded++
		}
	}
	return loaded, nil
}

// --- Cluster singleflight ----------------------------------------------------

// leaseCoordinator is the seam Engine.Synthesize probes (by type
// assertion on its SynthCache) to extend singleflight across processes.
// The engine calls coordinate after winning the local election for a
// key and before starting the synthesis:
//
//   - served=true: another replica completed the synthesis while we
//     coordinated; val is its outcome and the engine serves it as a
//     cache hit without synthesizing. release is nil.
//   - served=false: this replica should synthesize. release is non-nil
//     exactly when a cluster lease is held, and must be called after
//     the outcome is Put in the cache (Put-then-release: a waiter woken
//     by the lease disappearing must find the value already published).
//
// Implementations must degrade to (served=false, release=nil) on any
// coordination failure — cluster coordination is an optimisation, never
// a gate on serving.
type leaseCoordinator interface {
	coordinate(ctx context.Context, key SynthKey) (val CachedSynthesis, served bool, release func())
}

var _ leaseCoordinator = (*RemoteCache)(nil)

// coordinate implements the cluster singleflight for one key: try to
// acquire the key's lease; while another replica holds it, poll the
// shared store for the published outcome, re-contending for the lease
// each round so an expired owner is taken over within the TTL. Gives up
// (degrading to uncoordinated local synthesis) on any transport error
// or after WithLeaseWait.
func (c *RemoteCache) coordinate(ctx context.Context, key SynthKey) (CachedSynthesis, bool, func()) {
	name := cacheKeyName(key)
	if name == "" {
		return CachedSynthesis{}, false, nil
	}
	deadline := time.Now().Add(c.maxWait)
	poll := c.ttl / 4
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	if poll > 2*time.Second {
		poll = 2 * time.Second
	}
	waitStart := time.Now()
	for {
		granted, holderWait, err := c.acquireLease(ctx, name)
		if err != nil {
			// The cache service is unreachable: synthesize locally,
			// uncoordinated. Availability beats deduplication.
			c.observeDegraded()
			return CachedSynthesis{}, false, nil
		}
		if granted {
			// Re-check the store while holding the lease: our local miss
			// may predate another replica's publish-and-release, in which
			// case we were granted a lease for work already done.
			release := c.startLease(name)
			if val, ok := c.fetch(ctx, name, key); ok {
				release()
				c.observeOp("wait", "served", time.Since(waitStart))
				return val, true, nil
			}
			return CachedSynthesis{}, false, release
		}
		// Another replica is synthesizing. Poll for its result; if its
		// lease lapses (crash mid-synthesis), the next acquire above
		// takes the key over.
		if val, ok := c.fetch(ctx, name, key); ok {
			c.observeOp("wait", "served", time.Since(waitStart))
			return val, true, nil
		}
		if c.maxWait <= 0 || time.Now().After(deadline) || ctx.Err() != nil {
			c.observeOp("wait", "expired", time.Since(waitStart))
			c.observeDegraded()
			return CachedSynthesis{}, false, nil
		}
		sleep := poll
		if holderWait > 0 && holderWait < sleep {
			// The holder's lease expires sooner than our poll interval;
			// wake in time to contend for the takeover.
			sleep = holderWait
		}
		select {
		case <-ctx.Done():
			c.observeOp("wait", "expired", time.Since(waitStart))
			c.observeDegraded()
			return CachedSynthesis{}, false, nil
		case <-time.After(sleep):
		}
	}
}

// acquireLease attempts to take the key's synthesis lease. holderWait
// is the refusing holder's remaining TTL (0 when unknown).
func (c *RemoteCache) acquireLease(ctx context.Context, name string) (granted bool, holderWait time.Duration, err error) {
	start := time.Now()
	ctx, sp := StartSpan(ctx, "lease.acquire")
	sp.SetAttr("lease", name)
	done := func(outcome string) {
		c.observeOp("lease", outcome, time.Since(start))
		sp.SetAttr("outcome", outcome)
		sp.End()
	}
	u := fmt.Sprintf("%s?owner=%s&ttl=%s", c.leaseURL(name), url.QueryEscape(c.owner), c.ttl)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		sp.SetError(err)
		sp.End()
		return false, 0, err
	}
	injectTraceparent(ctx, req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		sp.SetError(err)
		done("error")
		return false, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		done("granted")
		return true, 0, nil
	case http.StatusConflict:
		var doc struct {
			TTLMillis int64 `json:"ttl_ms"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&doc)
		done("conflict")
		return false, time.Duration(doc.TTLMillis) * time.Millisecond, nil
	default:
		done("error")
		return false, 0, fmt.Errorf("lclgrid: lease acquire: %s", resp.Status)
	}
}

// startLease begins heartbeating the held lease and returns the release
// function: it stops the heartbeat and deletes the lease (idempotent).
// Heartbeats run at ttl/3, so one lost beat never costs the lease.
func (c *RemoteCache) startLease(name string) func() {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(c.ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.heartbeatLease(name)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			c.releaseLease(name)
		})
	}
}

func (c *RemoteCache) heartbeatLease(name string) {
	u := fmt.Sprintf("%s?owner=%s&ttl=%s", c.leaseURL(name), url.QueryEscape(c.owner), c.ttl)
	req, err := http.NewRequest(http.MethodPut, u, nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return // best-effort; the lease may lapse, costing only duplicated work
	}
	resp.Body.Close()
}

func (c *RemoteCache) releaseLease(name string) {
	u := c.leaseURL(name) + "?owner=" + url.QueryEscape(c.owner)
	req, err := http.NewRequest(http.MethodDelete, u, nil)
	if err != nil {
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return
	}
	resp.Body.Close()
}
