package lclgrid

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func storedThreeCol(t *testing.T) StoredProblem {
	t.Helper()
	canon, err := threeColDef().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := canon.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return StoredProblem{Key: userKey(fp), Fingerprint: fp, Def: canon}
}

func TestMemoryProblemStore(t *testing.T) {
	s := NewMemoryProblemStore()
	sp := storedThreeCol(t)

	if _, ok := s.Get(sp.Key); ok {
		t.Fatal("empty store returned a record")
	}
	if err := s.Put(sp); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(sp.Key)
	if !ok || got.Fingerprint != sp.Fingerprint {
		t.Fatalf("Get: %+v, %v", got, ok)
	}
	byFP, ok := s.ByFingerprint(sp.Fingerprint)
	if !ok || byFP.Key != sp.Key {
		t.Fatalf("ByFingerprint: %+v, %v", byFP, ok)
	}
	if list := s.List(); len(list) != 1 || list[0].Key != sp.Key {
		t.Fatalf("List: %+v", list)
	}
	if err := s.Put(StoredProblem{}); err == nil {
		t.Error("Put accepted an empty record")
	}
}

// TestDirProblemStorePersistence: the acceptance round trip — Put into a
// dir-backed store, reopen the directory, and the record (with its
// canonical definition) is back, fingerprint intact.
func TestDirProblemStorePersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirProblemStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := storedThreeCol(t)
	if err := s.Put(sp); err != nil {
		t.Fatal(err)
	}
	// The file is named by the full fingerprint.
	if _, err := os.Stat(filepath.Join(dir, sp.Fingerprint+problemFileSuffix)); err != nil {
		t.Fatalf("store file missing: %v", err)
	}

	reopened, err := NewDirProblemStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reopened.Get(sp.Key)
	if !ok {
		t.Fatal("record did not survive reopen")
	}
	if got.Fingerprint != sp.Fingerprint {
		t.Errorf("fingerprint changed across restart: %s vs %s", got.Fingerprint, sp.Fingerprint)
	}
	fp, err := got.Def.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp != sp.Fingerprint {
		t.Errorf("reloaded definition compiles to %s, want %s", fp, sp.Fingerprint)
	}

	// The reloaded definition re-registers and solves.
	e := NewEngine()
	rec, created, err := e.DefineProblem(got.Def)
	if err != nil {
		t.Fatal(err)
	}
	if !created || rec.Key != sp.Key {
		t.Errorf("re-registration: created=%v key=%s, want created under %s", created, rec.Key, sp.Key)
	}
}

// TestDirProblemStoreSelfHeal: corrupt, truncated, renamed or foreign
// files are dropped during the load, never served.
func TestDirProblemStoreSelfHeal(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirProblemStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := storedThreeCol(t)
	if err := s.Put(sp); err != nil {
		t.Fatal(err)
	}

	// Corrupt: truncated JSON under a plausible name.
	badFP := strings.Repeat("ab", 32)
	corrupt := filepath.Join(dir, badFP+problemFileSuffix)
	if err := os.WriteFile(corrupt, []byte(`{"key":"user:`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Misnamed: a valid record under the wrong fingerprint stem.
	data, err := os.ReadFile(filepath.Join(dir, sp.Fingerprint+problemFileSuffix))
	if err != nil {
		t.Fatal(err)
	}
	wrongFP := strings.Repeat("cd", 32)
	misnamed := filepath.Join(dir, wrongFP+problemFileSuffix)
	if err := os.WriteFile(misnamed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Unrelated files are left alone.
	unrelated := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(unrelated, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewDirProblemStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if list := reopened.List(); len(list) != 1 || list[0].Key != sp.Key {
		t.Fatalf("self-heal load kept %+v, want only %s", list, sp.Key)
	}
	for _, path := range []string{corrupt, misnamed} {
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s survived the self-heal load", filepath.Base(path))
		}
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Errorf("unrelated file was touched: %v", err)
	}
}

func TestDirProblemStoreRejectsBadFingerprint(t *testing.T) {
	s, err := NewDirProblemStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := storedThreeCol(t)
	sp.Fingerprint = "../escape"
	if err := s.Put(sp); err == nil {
		t.Fatal("Put accepted a path-traversal fingerprint")
	}
}
