package lclgrid

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"lclgrid/internal/core"
)

// SynthKey identifies one synthesis in a SynthCache: the canonical
// problem fingerprint (Problem.Fingerprint) plus the anchor power and
// window shape. Two problems with the same fingerprint are the same
// constraint system, so their lookup tables are interchangeable.
type SynthKey struct {
	Fingerprint string `json:"fingerprint"`
	K           int    `json:"k"`
	H           int    `json:"h"`
	W           int    `json:"w"`
}

// String returns a compact human-readable form (truncated fingerprint
// plus shape), used by logging observers.
func (k SynthKey) String() string {
	fp := k.Fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	return fmt.Sprintf("%s/k%d/%dx%d", fp, k.K, k.H, k.W)
}

// CachedSynthesis is the value a SynthCache stores for a key: exactly
// one of Alg and Err is meaningful. Err records a cached failure — most
// importantly ErrUnsatisfiable, so the classification oracle never
// re-proves a failed shape — and is replayed to every later requester
// of the key. Alg may have a nil Problem when it was loaded from disk
// (the table is a pure label-index function); Engine.Synthesize stamps
// the requester's problem onto a copy before returning it.
type CachedSynthesis struct {
	Alg *Synthesized
	Err error
}

// SynthCache is the pluggable storage behind the engine's synthesis
// memoisation. The engine keeps the singleflight coordination to
// itself — an in-flight synthesis never appears in a SynthCache; only
// completed outcomes are stored — so implementations are plain
// key-value stores with eviction. Implementations must be safe for
// concurrent use.
//
// Built-in implementations: NewMemoryCache (unbounded, the engine
// default), NewLRUCache (capacity-bounded with least-recently-used
// eviction) and NewDiskCache (a persistent layer over either).
type SynthCache interface {
	// Get returns the cached outcome for key and whether one exists.
	Get(key SynthKey) (CachedSynthesis, bool)
	// Contains reports whether a completed outcome for key exists,
	// without counting a hit or miss, refreshing recency, or promoting a
	// disk entry into memory. It is the planner's non-blocking probe: a
	// Plan can say "this shape will be served from cache" without
	// paying Get's side effects (a disk-backed cache answers with a
	// stat, not a read). The answer is advisory — a concurrent Evict may
	// invalidate it before the entry is used.
	Contains(key SynthKey) bool
	// Put stores the outcome for key, replacing any previous entry.
	Put(key SynthKey, val CachedSynthesis)
	// Evict removes the entry for key, reporting whether one existed.
	Evict(key SynthKey) bool
	// Reset removes every entry and zeroes the counters, returning the
	// number of entries removed.
	Reset() int
	// Stats returns a snapshot of the cache counters.
	Stats() CacheStats
}

// CacheStats is a snapshot of synthesis-cache counters.
//
// Snapshot semantics: the counters are read independently, so a
// snapshot taken while solves are in flight is not a single consistent
// cut — Hits+Misses may disagree with the number of Synthesize calls
// that have fully returned, and Entries may lag an in-flight miss. Each
// counter is individually monotone (until Reset) and exact once the
// engine is quiescent.
type CacheStats struct {
	// Hits counts lookups served from the cache. On Engine.CacheStats
	// this includes waiters coalesced onto an in-flight synthesis;
	// waiters that detach on their own cancelled context are not
	// counted.
	Hits uint64
	// Misses counts lookups that found nothing. On Engine.CacheStats
	// this is the exact number of SAT syntheses started (an aborted
	// synthesis counts, its entry just never enters the cache).
	Misses uint64
	// Entries is the number of cached (fingerprint, k, h, w) slots.
	// In-flight syntheses are not entries.
	Entries int
	// Evictions counts entries removed by Evict calls or by a bounded
	// cache making room (Reset removals are not evictions).
	Evictions uint64
}

// evictNotifier is implemented by the built-in caches so the engine can
// observe capacity evictions (Observer.CacheEvict) without widening the
// SynthCache interface.
type evictNotifier interface {
	setOnEvict(fn func(SynthKey))
}

// --- In-memory cache (unbounded and LRU-bounded) ---------------------------

// lruCache is the built-in in-memory SynthCache: a map plus a recency
// list. capacity 0 means unbounded (the engine default); a positive
// capacity evicts the least-recently-used entry on overflow.
type lruCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[SynthKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	onEvict   func(SynthKey) // capacity evictions only, called without mu
}

type lruEntry struct {
	key SynthKey
	val CachedSynthesis
}

// NewMemoryCache returns the engine's default synthesis cache: an
// unbounded concurrency-safe in-memory map.
func NewMemoryCache() SynthCache { return newLRU(0) }

// NewLRUCache returns an in-memory synthesis cache bounded to capacity
// entries; inserting beyond the bound evicts the least-recently-used
// entry. A capacity below 1 selects the unbounded NewMemoryCache
// behaviour.
func NewLRUCache(capacity int) SynthCache { return newLRU(capacity) }

func newLRU(capacity int) *lruCache {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[SynthKey]*list.Element),
	}
}

func (c *lruCache) setOnEvict(fn func(SynthKey)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

func (c *lruCache) Get(key SynthKey) (CachedSynthesis, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return CachedSynthesis{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) Contains(key SynthKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

func (c *lruCache) Put(key SynthKey, val CachedSynthesis) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	var evicted []SynthKey
	var notify func(SynthKey)
	if c.capacity > 0 {
		for c.ll.Len() > c.capacity {
			back := c.ll.Back()
			ent := back.Value.(*lruEntry)
			c.ll.Remove(back)
			delete(c.items, ent.key)
			c.evictions++
			evicted = append(evicted, ent.key)
		}
		notify = c.onEvict
	}
	c.mu.Unlock()
	if notify != nil {
		for _, k := range evicted {
			notify(k)
		}
	}
}

func (c *lruCache) Evict(key SynthKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	c.evictions++
	return true
}

func (c *lruCache) Reset() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := len(c.items)
	c.ll.Init()
	c.items = make(map[SynthKey]*list.Element)
	c.hits, c.misses, c.evictions = 0, 0, 0
	return removed
}

func (c *lruCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   len(c.items),
		Evictions: c.evictions,
	}
}

// --- Disk-backed cache ------------------------------------------------------

// diskCache layers persistence under an in-memory SynthCache: every
// successfully synthesized table (and every cached UNSAT) is serialized
// to a JSON file under dir, and a Get that misses the inner cache loads
// from disk, so tables survive process restarts. Writes are atomic
// (temp file + rename) and file names are keyed by the problem
// fingerprint and shape, so concurrent engines can safely share a
// directory. Failures other than UNSAT (malformed shapes, structural
// errors) stay in the inner cache only.
//
// I/O is best-effort: an unreadable or corrupt file is treated as a
// miss (and removed, so the next Put heals it), and a failed write
// leaves the in-memory entry intact.
type diskCache struct {
	dir   string
	inner SynthCache

	// mu serialises the disk interactions — load-and-promote (Get's
	// file read + inner.Put), file writes and file removals — across
	// ALL keys: without it a Get that read a file could re-promote an
	// entry a concurrent Evict just removed. Disk traffic is cold-path
	// only (the in-memory layer absorbs the steady state and is checked
	// before the lock), so a single mutex costs nothing measurable.
	mu sync.Mutex

	// diskHits counts Gets served by deserializing a file; folded into
	// Stats so the disk layer's effectiveness is observable.
	diskHits atomic.Uint64
}

// NewDiskCache returns a SynthCache that persists synthesized lookup
// tables (and cached UNSAT results) as JSON files under dir, layered
// over inner (nil selects a fresh NewMemoryCache). The directory is
// created if needed; creation failure is the only error path. See
// WithCacheDir for attaching one to an engine, and Engine.Warm for
// filling one from the registry catalogue.
func NewDiskCache(dir string, inner SynthCache) (SynthCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("lclgrid: disk cache needs a directory")
	}
	if inner == nil {
		inner = NewMemoryCache()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lclgrid: disk cache: %w", err)
	}
	return &diskCache{dir: dir, inner: inner}, nil
}

func (c *diskCache) setOnEvict(fn func(SynthKey)) {
	if en, ok := c.inner.(evictNotifier); ok {
		en.setOnEvict(fn)
	}
}

// diskRecord is the persistence format shared by the disk cache, the
// remote blob cache and the cache service: the key for sanity checking
// plus either an UNSAT marker or the wire form of the table.
type diskRecord struct {
	Key   SynthKey              `json:"key"`
	Unsat bool                  `json:"unsat,omitempty"`
	Alg   *core.SynthesizedWire `json:"alg,omitempty"`
}

// cacheKeyName returns the canonical blob name of a key —
// "fingerprint-k<K>-<H>x<W>", the same stem the disk cache uses for its
// files and the remote cache uses in its URLs — or "" when the key is
// not safely encodable (fingerprints are lowercase hex in practice, but
// SynthCache is a public seam and keys may come from anywhere — never
// let one escape a cache directory or smuggle path segments into a
// URL).
func cacheKeyName(key SynthKey) string {
	if key.Fingerprint == "" || len(key.Fingerprint) > 128 {
		return ""
	}
	for _, ch := range key.Fingerprint {
		switch {
		case ch >= '0' && ch <= '9', ch >= 'a' && ch <= 'f':
		default:
			return ""
		}
	}
	if key.K < 0 || key.H < 0 || key.W < 0 {
		return ""
	}
	return fmt.Sprintf("%s-k%d-%dx%d", key.Fingerprint, key.K, key.H, key.W)
}

// parseCacheKeyName inverts cacheKeyName. It is how a replica turns the
// cache service's key listing back into SynthKeys for warm-on-boot.
func parseCacheKeyName(name string) (SynthKey, error) {
	var key SynthKey
	i := strings.Index(name, "-k")
	if i <= 0 {
		return key, fmt.Errorf("lclgrid: cache name %q has no -k separator", name)
	}
	key.Fingerprint = name[:i]
	if _, err := fmt.Sscanf(name[i:], "-k%d-%dx%d", &key.K, &key.H, &key.W); err != nil {
		return key, fmt.Errorf("lclgrid: cache name %q: %w", name, err)
	}
	if cacheKeyName(key) != name {
		return key, fmt.Errorf("lclgrid: cache name %q is not canonical", name)
	}
	return key, nil
}

// encodeCacheRecord serializes a cached outcome into the shared
// persistence format. ok is false when the outcome must stay
// process-local: only synthesized tables and proven-UNSAT markers are
// durable; other failures (malformed shapes, structural errors, panics
// converted upstream) describe this process, not the problem.
func encodeCacheRecord(key SynthKey, val CachedSynthesis) (data []byte, ok bool) {
	rec := diskRecord{Key: key}
	switch {
	case val.Err == nil && val.Alg != nil:
		rec.Alg = val.Alg.Wire()
	case errors.Is(val.Err, ErrUnsatisfiable):
		rec.Unsat = true
	default:
		return nil, false
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, false
	}
	return data, true
}

// path returns the cache file for a key, or "" when the key is not
// safely encodable as a file name.
func (c *diskCache) path(key SynthKey) string {
	name := cacheKeyName(key)
	if name == "" {
		return ""
	}
	return filepath.Join(c.dir, name+".synth.json")
}

func (c *diskCache) Get(key SynthKey) (CachedSynthesis, bool) {
	if val, ok := c.inner.Get(key); ok {
		return val, true
	}
	path := c.path(key)
	if path == "" {
		return CachedSynthesis{}, false
	}
	// The read and the promotion into the memory layer happen under mu
	// so a concurrent Evict cannot interleave (read file → evict both
	// layers → promote stale entry back).
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := os.ReadFile(path)
	if err != nil {
		return CachedSynthesis{}, false
	}
	val, err := decodeDiskRecord(data, key)
	if err != nil {
		// Corrupt or mismatched: drop the file so the next Put heals it.
		os.Remove(path)
		return CachedSynthesis{}, false
	}
	c.diskHits.Add(1)
	c.inner.Put(key, val)
	return val, true
}

func decodeDiskRecord(data []byte, key SynthKey) (CachedSynthesis, error) {
	var rec diskRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return CachedSynthesis{}, err
	}
	if rec.Key != key {
		return CachedSynthesis{}, fmt.Errorf("lclgrid: cache file is for %v, not %v", rec.Key, key)
	}
	if rec.Unsat {
		return CachedSynthesis{Err: ErrUnsatisfiable}, nil
	}
	if rec.Alg == nil {
		return CachedSynthesis{}, fmt.Errorf("lclgrid: cache file carries neither a table nor an UNSAT marker")
	}
	if rec.Alg.K != key.K || rec.Alg.H != key.H || rec.Alg.W != key.W {
		return CachedSynthesis{}, fmt.Errorf("lclgrid: cache file table shape disagrees with its key")
	}
	alg, err := rec.Alg.Decode()
	if err != nil {
		return CachedSynthesis{}, err
	}
	return CachedSynthesis{Alg: alg}, nil
}

// Contains probes both layers without promoting: the memory layer by
// map lookup, the disk layer by a bare stat. A file that would later
// fail to decode still answers true — the probe is advisory, and the
// self-healing Get path resolves the lie at execution time.
func (c *diskCache) Contains(key SynthKey) bool {
	if c.inner.Contains(key) {
		return true
	}
	path := c.path(key)
	if path == "" {
		return false
	}
	_, err := os.Stat(path)
	return err == nil
}

func (c *diskCache) Put(key SynthKey, val CachedSynthesis) {
	c.inner.Put(key, val)
	data, ok := encodeCacheRecord(key, val)
	if !ok {
		// Process-local failures are not persisted.
		return
	}
	path := c.path(key)
	if path == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	tmp, err := os.CreateTemp(c.dir, ".tmp-*.synth.json")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

func (c *diskCache) Evict(key SynthKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := c.inner.Evict(key)
	if path := c.path(key); path != "" {
		if err := os.Remove(path); err == nil {
			removed = true
		}
	}
	return removed
}

// Reset clears the in-memory layer only: the disk files are the
// persistence the layer exists for, so bounding memory with periodic
// Resets does not throw warm state away. Remove the directory (or Evict
// individual keys) to clear the disk.
func (c *diskCache) Reset() int {
	n := c.inner.Reset()
	c.diskHits.Store(0)
	return n
}

// Stats reports the two layers as one: Entries is the number of tables
// resident in memory (not the number of files on disk), and lookups
// served by deserializing a file count as Hits rather than Misses —
// each disk hit first missed the memory layer, so the fold moves it
// from one column to the other. The engine-level view is simpler
// still: with a warm directory, Engine.CacheStats().Misses stays zero
// across process restarts.
func (c *diskCache) Stats() CacheStats {
	s := c.inner.Stats()
	h := c.diskHits.Load()
	s.Hits += h
	if s.Misses >= h {
		s.Misses -= h
	} else {
		s.Misses = 0
	}
	return s
}
