package lclgrid_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	lclgrid "lclgrid"
)

// TestRegistryRoundTrip is the round-trip contract of the registry:
// every registered key constructs, carries a classification consistent
// with its problem, solves on a small torus through the engine, and the
// problem's Verify accepts the labelling.
func TestRegistryRoundTrip(t *testing.T) {
	eng := lclgrid.NewEngine()
	for _, spec := range eng.Registry().Specs() {
		spec := spec
		t.Run(spec.Key, func(t *testing.T) {
			if spec.Key == "5edgecol" && testing.Short() {
				t.Skip("§10 needs a 680×680 torus")
			}
			// Construct.
			if spec.Problem != nil {
				p := spec.Problem()
				if p.K() != spec.NumLabels {
					t.Errorf("NumLabels %d, problem has %d", spec.NumLabels, p.K())
				}
				if p.Dims() != spec.Dims {
					t.Errorf("Dims %d, problem has %d", spec.Dims, p.Dims())
				}
				// Classify: O(1) iff a constant solution exists (§6).
				if (spec.Class == lclgrid.ClassO1) != (len(p.ConstantSolutions()) > 0) {
					t.Errorf("class %v inconsistent with constant solutions %v",
						spec.Class, p.ConstantSolutions())
				}
			}
			// Solve.
			side := spec.SmallestSide()
			g := lclgrid.Square(side)
			res, err := eng.Solve(context.Background(), lclgrid.SolveRequest{Key: spec.Key, Torus: g, Seed: 1})
			if err != nil {
				t.Fatalf("solve on %d×%d: %v", side, side, err)
			}
			if res.Verification != lclgrid.Verified {
				t.Errorf("result not verified: %v", res)
			}
			if res.Solver == "" || res.Problem == "" {
				t.Errorf("result missing provenance: %v", res)
			}
			// A solved Θ(log* n) problem must report that class; global
			// solvers report the registered class.
			if res.Class != spec.Class {
				t.Errorf("result class %v, spec class %v", res.Class, spec.Class)
			}
			// Verify independently of the solver's own check.
			if err := spec.CheckResult(g, res); err != nil {
				t.Errorf("CheckResult: %v", err)
			}
		})
	}
}

// TestRegistryFamilies checks the parameterised families that replace
// the old per-command name switches.
func TestRegistryFamilies(t *testing.T) {
	reg := lclgrid.DefaultRegistry()
	for _, tt := range []struct {
		key   string
		class lclgrid.Class
	}{
		{"6col", lclgrid.ClassLogStar},
		{"2col", lclgrid.ClassGlobal},
		{"6edgecol", lclgrid.ClassLogStar},
		{"orient24", lclgrid.ClassO1},
		{"orient0134", lclgrid.ClassLogStar},
		{"orient04", lclgrid.ClassGlobal},
	} {
		spec, err := reg.Lookup(tt.key)
		if err != nil {
			t.Errorf("%s: %v", tt.key, err)
			continue
		}
		if spec.Class != tt.class {
			t.Errorf("%s: class %v, want %v", tt.key, spec.Class, tt.class)
		}
	}
	for _, bad := range []string{"", "col", "0col", "orient", "orient5", "xedgecol", "nope"} {
		if _, err := reg.Lookup(bad); err == nil {
			t.Errorf("%q: lookup should fail", bad)
		}
	}
}

// FuzzRegistryLookup fuzzes the <k>col / <k>edgecol / orient<digits>
// family key parser: for arbitrary keys, Lookup must either fail
// cleanly or return a well-formed spec whose Key round-trips — never
// panic, and never accept a parameter outside the documented bounds
// (unbounded k would imply O(k²)-bit relation bitmaps allocated
// straight off the wire).
func FuzzRegistryLookup(f *testing.F) {
	for _, seed := range []string{
		"4col", "2col", "0col", "1col", "-4col", "04col", "1025col",
		"99999999999999999999col", "col", "xcol", "4COL", " 4col",
		"4edgecol", "5edgecol", "3edgecol", "9edgecol", "edgecol", "-5edgecol",
		"orient", "orient2", "orient034", "orient01234", "orient00",
		"orient43210", "orient5", "orient-1", "orient2x",
		"", "mis", "lm:halt", "nope", "4col ", "4colcol", "4edgecolcol",
	} {
		f.Add(seed)
	}
	reg := lclgrid.DefaultRegistry()
	f.Fuzz(func(t *testing.T, key string) {
		spec, err := reg.Lookup(key)
		if err != nil {
			if spec != nil {
				t.Errorf("%q: non-nil spec alongside error %v", key, err)
			}
			return
		}
		if spec.Key != key {
			t.Errorf("%q: resolved spec carries key %q", key, spec.Key)
		}
		if spec.HintSummary() == "" {
			t.Errorf("%q: spec has no plan hint", key)
		}
		if spec.Name == "" {
			t.Errorf("%q: spec has no name", key)
		}
		if spec.Problem != nil {
			if k := spec.Problem().K(); k != spec.NumLabels {
				t.Errorf("%q: NumLabels %d but problem has %d labels", key, spec.NumLabels, k)
			}
		}
	})
}

// TestRegistryFamilyBounds pins the wire-hardening of the family
// parser: parameters beyond the documented caps and orientation keys
// with repeated digits are unknown keys, not huge allocations.
func TestRegistryFamilyBounds(t *testing.T) {
	reg := lclgrid.DefaultRegistry()
	for _, bad := range []string{
		"1025col", "100000col", "9edgecol", "1000edgecol",
		"orient00", "orient22", "orient01230",
	} {
		if _, err := reg.Lookup(bad); err == nil {
			t.Errorf("%q: lookup should fail (outside family bounds)", bad)
		}
	}
	for _, good := range []string{"1024col", "8edgecol", "orient01234"} {
		if _, err := reg.Lookup(good); err != nil {
			t.Errorf("%q: lookup failed at the family bound: %v", good, err)
		}
	}
}

// TestUnknownKeyError checks that unknown keys enumerate the valid ones.
func TestUnknownKeyError(t *testing.T) {
	_, err := lclgrid.DefaultRegistry().Lookup("unknown-problem")
	if err == nil {
		t.Fatal("lookup succeeded")
	}
	for _, want := range []string{"4col", "mis", "5edgecol", "orient034", "lm:halt", "<k>col", "<k>edgecol"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not enumerate %q: %v", want, err)
		}
	}
}

// TestGlobalSolverCertificates checks that unsolvable instances surface
// ErrUnsolvable (the §7 certificate path).
func TestGlobalSolverCertificates(t *testing.T) {
	eng := lclgrid.NewEngine()
	if _, err := eng.Solve(context.Background(), lclgrid.SolveRequest{Key: "2col", N: 5}); !errors.Is(err, lclgrid.ErrUnsolvable) {
		t.Errorf("2col on odd torus: want ErrUnsolvable, got %v", err)
	}
	if _, err := eng.Solve(context.Background(), lclgrid.SolveRequest{Key: "4edgecol", N: 3}); !errors.Is(err, lclgrid.ErrUnsolvable) {
		t.Errorf("4edgecol on odd torus: want ErrUnsolvable, got %v", err)
	}
}

// TestSolveInlineProblemAuto checks the generic path for unregistered
// problems carried inline in the request: classification through the
// cached oracle, then the right solver.
func TestSolveInlineProblemAuto(t *testing.T) {
	eng := lclgrid.NewEngine()
	ctx := context.Background()
	// Trivial: the empty independent set is a constant solution.
	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Problem: lclgrid.IndependentSet(2), N: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != lclgrid.ClassO1 || res.Rounds != 0 {
		t.Errorf("independent set: %v, want O(1) in 0 rounds", res)
	}
	// A user-defined problem with no constant solution but a k = 1
	// normal form: "no two horizontally adjacent nodes share a label".
	rowCol := lclgrid.NewProblem("row 3-colouring", []string{"a", "b", "c"}, 2,
		func(dim, a, b int) bool { return dim == 1 || a != b }, nil)
	res, err = eng.Solve(ctx, lclgrid.SolveRequest{Problem: rowCol, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != lclgrid.ClassLogStar {
		t.Errorf("row colouring: %v, want Θ(log* n) by synthesis", res)
	}
	// Θ(log* n): 5-colouring synthesizes at k = 1.
	res, err = eng.Solve(ctx, lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(5, 2), N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != lclgrid.ClassLogStar {
		t.Errorf("5col: %v, want Θ(log* n)", res)
	}
	// Global fallback: 3-colouring (oracle UNSAT through maxK).
	res, err = eng.Solve(ctx, lclgrid.SolveRequest{Problem: lclgrid.VertexColoring(3, 2), N: 6, MaxPower: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver != "global brute force" {
		t.Errorf("3col fell to %q, want the global baseline", res.Solver)
	}
	// A request naming both a key and an inline problem is ambiguous.
	if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "4col", Problem: rowCol, N: 12}); err == nil {
		t.Error("request with both Key and Problem must fail")
	}
}
