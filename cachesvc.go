package lclgrid

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CacheServer is the shared-cache side of the serving fleet: a small
// HTTP service storing synthesized-table blobs and coordinating
// cluster-wide synthesis leases. N `lclgrid serve` replicas point a
// RemoteCache at one CacheServer (standalone via `lclgrid cachesvc`, or
// mounted on a serve replica under /v1/cache/ with WithCacheService)
// and behave as one warm catalogue: a table synthesized by any replica
// is a cache hit on every other, and the lease protocol extends the
// engine's singleflight across processes so the expensive SAT synthesis
// of a fingerprint happens exactly once cluster-wide.
//
// The blob protocol (all names are canonical cache-key names,
// "fingerprint-k<K>-<H>x<W>"):
//
//	GET    /cache/{name}   the stored record (the diskRecord JSON the
//	                       disk cache writes), or 404
//	HEAD   /cache/{name}   existence probe (Contains)
//	PUT    /cache/{name}   store a record (body capped; 204)
//	DELETE /cache/{name}   remove (204, or 404 when absent)
//	GET    /keys           JSON array of every stored name
//
// The lease protocol (cluster singleflight; owner identifies the
// requesting replica, ttl bounds how long a dead owner can block the
// key):
//
//	POST   /lease/{name}?owner=X&ttl=15s   acquire: 200 {"granted":true}
//	                                       when free, expired, or already
//	                                       held by X (renewed); 409 with
//	                                       the holder and remaining TTL
//	                                       otherwise
//	PUT    /lease/{name}?owner=X&ttl=15s   heartbeat: 204 renews X's
//	                                       lease; 409 when X lost it
//	DELETE /lease/{name}?owner=X           release: 204 (only X's own
//	                                       lease is removed)
//
// Plus GET /healthz (liveness) and GET /metrics (a minimal Prometheus
// rendering of the service counters). Blobs are stored in a BlobStore
// (in-memory, or a directory sharing the disk cache's file format);
// leases are in-memory — they are short-lived coordination state, and
// losing them on restart costs at most one duplicated synthesis per
// in-flight key, never correctness.
//
// A CacheServer is an http.Handler; Serve runs it with the same
// graceful-drain behaviour as Server.Serve.
type CacheServer struct {
	store   BlobStore
	mux     *http.ServeMux
	maxBlob int64
	drain   time.Duration
	now     func() time.Time
	traces  *TraceBuffer // nil = tracing off

	leaseMu sync.Mutex
	leases  map[string]*cacheLease

	// Service counters, rendered by /metrics and snapshot by Stats.
	gets           atomic.Uint64
	getHits        atomic.Uint64
	puts           atomic.Uint64
	deletes        atomic.Uint64
	leaseGrants    atomic.Uint64
	leaseConflicts atomic.Uint64
	leaseExpiries  atomic.Uint64
}

// cacheLease is one cluster-singleflight lease: the owning replica and
// when its claim lapses (heartbeats push expires forward).
type cacheLease struct {
	owner   string
	expires time.Time
}

// CacheServerStats is a snapshot of the service counters.
type CacheServerStats struct {
	// Blobs is the number of records in the store.
	Blobs int `json:"blobs"`
	// Gets counts GET /cache lookups; GetHits the ones that found a
	// record.
	Gets    uint64 `json:"gets"`
	GetHits uint64 `json:"get_hits"`
	// Puts and Deletes count stores and removals.
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	// LeaseGrants counts acquisitions granted (renewals included),
	// LeaseConflicts acquisitions refused because another owner holds
	// the lease, and LeaseExpiries grants that took over an expired
	// lease — the count the fleet e2e test uses to prove a dead owner's
	// synthesis was taken over.
	LeaseGrants    uint64 `json:"lease_grants"`
	LeaseConflicts uint64 `json:"lease_conflicts"`
	LeaseExpiries  uint64 `json:"lease_expiries"`
}

// CacheServerOption configures NewCacheServer.
type CacheServerOption func(*cacheServerConfig)

type cacheServerConfig struct {
	maxBlob int64
	drain   time.Duration
	now     func() time.Time
	traces  *TraceBuffer
}

// DefaultMaxBlobBytes caps PUT /cache bodies: far above any real
// synthesized-table record (the largest catalogue tables serialize to
// well under a megabyte) while keeping a misbehaving client from
// filling the store's memory with one request.
const DefaultMaxBlobBytes = 64 << 20

// WithMaxBlobBytes caps the size of stored records (n <= 0 keeps the
// default).
func WithMaxBlobBytes(n int64) CacheServerOption {
	return func(c *cacheServerConfig) { c.maxBlob = n }
}

// WithCacheDrainTimeout bounds Serve's graceful-shutdown drain window.
func WithCacheDrainTimeout(d time.Duration) CacheServerOption {
	return func(c *cacheServerConfig) { c.drain = d }
}

// withCacheClock injects the lease clock (tests).
func withCacheClock(now func() time.Time) CacheServerOption {
	return func(c *cacheServerConfig) { c.now = now }
}

// WithCacheTracing enables request tracing on the blob and lease
// routes: each request joins its caller's trace via the traceparent
// header a traced replica sends, echoes X-Trace-Id, and deposits the
// finished trace into buf — exposed at GET /debug/traces. The health
// and metrics probes stay untraced (they would drown the buffer in
// scrape noise).
func WithCacheTracing(buf *TraceBuffer) CacheServerOption {
	return func(c *cacheServerConfig) { c.traces = buf }
}

// NewCacheServer returns a cache service over the given store (nil
// selects a fresh in-memory store).
func NewCacheServer(store BlobStore, opts ...CacheServerOption) *CacheServer {
	cfg := cacheServerConfig{maxBlob: DefaultMaxBlobBytes, drain: DefaultDrainTimeout, now: time.Now}
	for _, opt := range opts {
		opt(&cfg)
	}
	if store == nil {
		store = NewMemoryBlobStore()
	}
	if cfg.maxBlob <= 0 {
		cfg.maxBlob = DefaultMaxBlobBytes
	}
	s := &CacheServer{
		store:   store,
		mux:     http.NewServeMux(),
		maxBlob: cfg.maxBlob,
		drain:   cfg.drain,
		now:     cfg.now,
		traces:  cfg.traces,
		leases:  make(map[string]*cacheLease),
	}
	s.mux.HandleFunc("GET /cache/{name}", s.handleGet) // HEAD rides along
	s.mux.HandleFunc("PUT /cache/{name}", s.handlePut)
	s.mux.HandleFunc("DELETE /cache/{name}", s.handleDelete)
	s.mux.HandleFunc("GET /keys", s.handleKeys)
	s.mux.HandleFunc("POST /lease/{name}", s.handleLeaseAcquire)
	s.mux.HandleFunc("PUT /lease/{name}", s.handleLeaseHeartbeat)
	s.mux.HandleFunc("DELETE /lease/{name}", s.handleLeaseRelease)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.traces != nil {
		s.mux.Handle("GET /debug/traces", cfg.traces.Handler())
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *CacheServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.traces != nil && (strings.HasPrefix(r.URL.Path, "/cache/") || strings.HasPrefix(r.URL.Path, "/lease/")) {
		tr := traceForRequest("cachesvc", r.Method+" "+r.URL.Path, r)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(TraceIDHeader, tr.ID())
		s.mux.ServeHTTP(sw, r.WithContext(ContextWithSpan(r.Context(), tr.Root())))
		tr.Root().SetAttr("status", strconv.Itoa(sw.status()))
		tr.Finish(s.traces)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on l until ctx is cancelled, then drains
// in-flight requests like Server.Serve: a bounded graceful shutdown,
// force-closing connections only when the drain window expires.
func (s *CacheServer) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		hs.Close()
		<-serveErr
		return fmt.Errorf("lclgrid: drain window %v expired with requests still in flight: %w", s.drain, err)
	}
	<-serveErr
	return nil
}

// Stats returns a snapshot of the service counters.
func (s *CacheServer) Stats() CacheServerStats {
	blobs, _ := s.store.Keys()
	return CacheServerStats{
		Blobs:          len(blobs),
		Gets:           s.gets.Load(),
		GetHits:        s.getHits.Load(),
		Puts:           s.puts.Load(),
		Deletes:        s.deletes.Load(),
		LeaseGrants:    s.leaseGrants.Load(),
		LeaseConflicts: s.leaseConflicts.Load(),
		LeaseExpiries:  s.leaseExpiries.Load(),
	}
}

// blobName extracts and validates the {name} path segment. Names are
// canonical cache-key stems; anything else is rejected before it can
// reach a directory-backed store.
func blobName(r *http.Request) (string, bool) {
	name := r.PathValue("name")
	if name == "" || len(name) > 192 {
		return "", false
	}
	for _, ch := range name {
		switch {
		case ch >= '0' && ch <= '9', ch >= 'a' && ch <= 'z', ch == '-':
		default:
			return "", false
		}
	}
	return name, true
}

func (s *CacheServer) handleGet(w http.ResponseWriter, r *http.Request) {
	name, ok := blobName(r)
	if !ok {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: bad cache key name"))
		return
	}
	s.gets.Add(1)
	data, ok, err := s.store.Get(name)
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("lclgrid: no cache entry %q", name))
		return
	}
	s.getHits.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	_, _ = w.Write(data)
}

func (s *CacheServer) handlePut(w http.ResponseWriter, r *http.Request) {
	name, ok := blobName(r)
	if !ok {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: bad cache key name"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBlob))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, r, http.StatusRequestEntityTooLarge, fmt.Errorf("lclgrid: cache record exceeds %d bytes", mbe.Limit))
		} else {
			httpError(w, r, http.StatusBadRequest, err)
		}
		return
	}
	if err := s.store.Put(name, data); err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	s.puts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	name, ok := blobName(r)
	if !ok {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: bad cache key name"))
		return
	}
	removed, err := s.store.Delete(name)
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	if !removed {
		httpError(w, r, http.StatusNotFound, fmt.Errorf("lclgrid: no cache entry %q", name))
		return
	}
	s.deletes.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) handleKeys(w http.ResponseWriter, r *http.Request) {
	names, err := s.store.Keys()
	if err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(names)
}

// leaseParams extracts the owner and TTL of a lease request. The TTL is
// clamped to [1s, 10m]: a zero TTL would deadlock waiters and an
// unbounded one would let a dead owner block a key forever.
func leaseParams(r *http.Request) (owner string, ttl time.Duration, err error) {
	owner = r.URL.Query().Get("owner")
	if owner == "" || len(owner) > 128 {
		return "", 0, errors.New("lclgrid: lease needs an owner identity")
	}
	ttl = 15 * time.Second
	if raw := r.URL.Query().Get("ttl"); raw != "" {
		ttl, err = time.ParseDuration(raw)
		if err != nil {
			return "", 0, fmt.Errorf("lclgrid: bad lease ttl: %w", err)
		}
	}
	if ttl < time.Second {
		ttl = time.Second
	}
	if ttl > 10*time.Minute {
		ttl = 10 * time.Minute
	}
	return owner, ttl, nil
}

// leaseDoc is the acquire/heartbeat response body.
type leaseDoc struct {
	Granted bool   `json:"granted"`
	Owner   string `json:"owner,omitempty"`
	// TTLMillis is the holder's remaining TTL when the lease was
	// refused — the longest a waiter needs to poll before the lease can
	// change hands.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

func (s *CacheServer) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	name, ok := blobName(r)
	if !ok {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: bad cache key name"))
		return
	}
	owner, ttl, err := leaseParams(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	now := s.now()
	s.leaseMu.Lock()
	l, held := s.leases[name]
	switch {
	case held && l.owner != owner && now.Before(l.expires):
		// Someone else is synthesizing this key.
		holder, remaining := l.owner, l.expires.Sub(now)
		if remaining < 0 {
			remaining = 0
		}
		s.leaseMu.Unlock()
		s.leaseConflicts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(leaseDoc{Owner: holder, TTLMillis: remaining.Milliseconds()})
		return
	case held && l.owner != owner:
		// Expired: the previous owner died mid-synthesis (or forgot to
		// release). The lease changes hands — this is the takeover path
		// the fleet e2e test exercises.
		s.leaseExpiries.Add(1)
		fallthrough
	default:
		s.leases[name] = &cacheLease{owner: owner, expires: now.Add(ttl)}
		s.leaseMu.Unlock()
		s.leaseGrants.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(leaseDoc{Granted: true, Owner: owner, TTLMillis: ttl.Milliseconds()})
	}
}

func (s *CacheServer) handleLeaseHeartbeat(w http.ResponseWriter, r *http.Request) {
	name, ok := blobName(r)
	if !ok {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: bad cache key name"))
		return
	}
	owner, ttl, err := leaseParams(r)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	now := s.now()
	s.leaseMu.Lock()
	l, held := s.leases[name]
	if !held || l.owner != owner || !now.Before(l.expires) {
		// The lease lapsed (and may have been taken over). The owner
		// learns it lost the cluster election; its synthesis continues —
		// a duplicated synthesis is wasted work, never wrong work.
		s.leaseMu.Unlock()
		httpError(w, r, http.StatusConflict, fmt.Errorf("lclgrid: lease on %q is no longer held by %q", name, owner))
		return
	}
	l.expires = now.Add(ttl)
	s.leaseMu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) handleLeaseRelease(w http.ResponseWriter, r *http.Request) {
	name, ok := blobName(r)
	if !ok {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: bad cache key name"))
		return
	}
	owner := r.URL.Query().Get("owner")
	s.leaseMu.Lock()
	if l, held := s.leases[name]; held && l.owner == owner {
		delete(s.leases, name)
	}
	s.leaseMu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *CacheServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	mw := &metricsWriter{w: w}
	mw.gauge("lclgrid_cachesvc_blobs", "Records in the shared synthesis store.", int64(st.Blobs))
	mw.counter("lclgrid_cachesvc_gets_total", "GET /cache lookups.", st.Gets)
	mw.counter("lclgrid_cachesvc_get_hits_total", "GET /cache lookups that found a record.", st.GetHits)
	mw.counter("lclgrid_cachesvc_puts_total", "Records stored.", st.Puts)
	mw.counter("lclgrid_cachesvc_deletes_total", "Records removed.", st.Deletes)
	mw.counter("lclgrid_cachesvc_lease_grants_total", "Synthesis leases granted (renewing acquires included).", st.LeaseGrants)
	mw.counter("lclgrid_cachesvc_lease_conflicts_total", "Lease acquisitions refused because another replica holds the key.", st.LeaseConflicts)
	mw.counter("lclgrid_cachesvc_lease_expiries_total", "Leases taken over after their owner's TTL lapsed.", st.LeaseExpiries)
	if s.traces != nil {
		added, dropped := s.traces.Stats()
		mw.counter("lclgrid_cachesvc_traces_total", "Completed traces deposited in the /debug/traces ring.", added)
		mw.counter("lclgrid_cachesvc_traces_dropped_total", "Traces evicted from the ring by newer ones.", dropped)
	}
}

// --- Blob stores ------------------------------------------------------------

// BlobStore is the persistence behind a CacheServer: an opaque
// name→bytes map. The server never decodes records — validation happens
// at the RemoteCache client, which treats a corrupt record as a miss
// and heals it on the next Put. Implementations must be safe for
// concurrent use.
type BlobStore interface {
	Get(name string) (data []byte, ok bool, err error)
	Put(name string, data []byte) error
	Delete(name string) (removed bool, err error)
	// Keys lists every stored name (unordered) — what warm-on-boot
	// iterates to pull a replica's owned slice.
	Keys() ([]string, error)
}

// memoryBlobStore is the in-memory BlobStore.
type memoryBlobStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemoryBlobStore returns an in-memory BlobStore (the CacheServer
// default). Contents die with the process; pair the cache service with
// NewDirBlobStore when the shared catalogue must survive restarts.
func NewMemoryBlobStore() BlobStore {
	return &memoryBlobStore{m: make(map[string][]byte)}
}

func (s *memoryBlobStore) Get(name string) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[name]
	return data, ok, nil
}

func (s *memoryBlobStore) Put(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[name] = cp
	s.mu.Unlock()
	return nil
}

func (s *memoryBlobStore) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[name]
	delete(s.m, name)
	return ok, nil
}

func (s *memoryBlobStore) Keys() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for name := range s.m {
		out = append(out, name)
	}
	return out, nil
}

// dirBlobStore persists blobs as files, one per name, using the disk
// cache's "<name>.synth.json" convention — so a cache service pointed
// at an existing warm cache directory serves its tables to the whole
// fleet, and records the fleet stores are readable by a local
// WithCacheDir engine sharing the directory.
type dirBlobStore struct {
	dir string
	mu  sync.Mutex // serialize writes (atomic temp+rename per file)
}

// blobFileSuffix is the shared file convention with the disk cache.
const blobFileSuffix = ".synth.json"

// NewDirBlobStore returns a BlobStore persisting records under dir
// (created if needed), file-compatible with NewDiskCache's layout.
func NewDirBlobStore(dir string) (BlobStore, error) {
	if dir == "" {
		return nil, errors.New("lclgrid: blob store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lclgrid: blob store: %w", err)
	}
	return &dirBlobStore{dir: dir}, nil
}

func (s *dirBlobStore) path(name string) string {
	return filepath.Join(s.dir, name+blobFileSuffix)
}

func (s *dirBlobStore) Get(name string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func (s *dirBlobStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".tmp-*"+blobFileSuffix)
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), s.path(name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func (s *dirBlobStore) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(name))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (s *dirBlobStore) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, blobFileSuffix) {
			continue
		}
		out = append(out, strings.TrimSuffix(name, blobFileSuffix))
	}
	return out, nil
}
