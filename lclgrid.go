// Package lclgrid is a complete reproduction of "LCL problems on grids"
// (Brandt et al., PODC 2017): the complexity theory of locally checkable
// labelling problems on toroidal oriented grids in the LOCAL model.
//
// # Primary entry point: the request/response Engine layer
//
// The package is organised around four concepts that turn "solve LCL
// problem P on torus T" into a cancellable service call:
//
//   - SolveRequest is the unit of service: a problem (registry key or
//     inline *Problem), a torus shape, an identifier assignment and the
//     solver knobs, all JSON round-trippable.
//   - Solver is the uniform algorithm interface — Solve(ctx, t, ids,
//     opts) returns a structured *Result carrying the labelling, the
//     exact round account, the complexity Class, the solver name and a
//     verification status. Every algorithm of the paper is an adapter:
//     SynthesisSolver (§7 normal forms), GlobalSolver (the Θ(n) brute
//     force and unsolvability certificates), ConstantSolver (O(1)
//     problems), FourColorSolver (§8), EdgeColorSolver (§10) and
//     LMSolver (§6).
//   - Registry maps problem keys ("4col", "mis", "5edgecol",
//     "orient034", "lm:halt", ...) to ProblemSpecs: a constructor, the
//     paper's classification and the known best solver. Beyond the
//     registered keys it resolves the parameterised families "<k>col",
//     "<k>edgecol" and "orient<digits>". DefaultRegistry returns the
//     paper's catalogue.
//   - Engine serves requests — Solve(ctx, req) one at a time,
//     SolveStream(ctx, reqs) yielding results as they complete from a
//     bounded worker pool, SolveBatch(ctx, reqs) as the
//     order-preserving collector over the stream — and memoises SAT
//     syntheses in a pluggable SynthCache keyed by the canonical
//     Problem.Fingerprint plus the anchor power and window shape, so
//     repeated and concurrent requests pay the expensive synthesis once
//     per problem. Every Solve flows through the Planner → Plan →
//     Strategy pipeline: the Planner ranks the applicable strategies
//     (constant fill, direct algorithm, cached-table probe, racing
//     normal-form synthesis, Θ(n) baseline) from the registry spec, the
//     request options, the torus shape and a non-blocking cache probe —
//     with no SAT work, which is what Engine.Plan and `lclgrid explain`
//     expose — and the executor walks the stages, recording each
//     outcome in Result.Trace. Multi-shape synthesis and the per-power
//     window sweep of the classification oracle race their candidates
//     concurrently (bounded by WithSynthWorkers); the first lookup
//     table cancels the losing searches. The cache is chosen at
//     construction (in-memory by default, LRU-bounded with
//     WithCacheCapacity, persisted across process restarts with
//     WithCacheDir; Engine.Warm pre-synthesizes a catalogue on
//     startup), and Observers installed with WithObserver see every
//     request, plan, strategy, synthesis and cache event. Context
//     cancellation reaches all the way into the tile enumeration and
//     the CDCL SAT loop, so a deadline aborts an in-flight synthesis
//     promptly.
//
// Beyond materializing solves, Engine.LabelWindow serves the paper's
// locality directly: because a synthesized normal form makes every
// node's output a pure local function of its anchor window, any
// rectangle of an arbitrarily large torus (up to 10^6 per side, 10^12
// nodes) is labelled in O(window + halo) work from the cached table —
// LabelRequest/LabelResponse on the wire, `lclgrid labels` on the
// command line, with a deterministic coordinate-addressable identifier
// assignment (AffineIDs) and an optional periodic-anchor lattice fast
// path. Engine.ExportGrid streams a whole grid in bounded-memory row
// bands.
//
// A Server mounts the engine behind HTTP (`lclgrid serve`): streaming
// solve and batch endpoints, windowed labels and whole-grid export
// endpoints with deterministic-response ETags, a registry catalogue and
// plan-explain endpoint, bounded in-flight admission with 429 shedding,
// per-request timeouts, graceful drain, and a dependency-free
// Prometheus /metrics exporter (MetricsObserver) fed by the same
// Observer events.
//
// A minimal session:
//
//	eng := lclgrid.NewEngine()
//	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "4col", N: 32})
//	// res.Labels, res.Rounds, res.Class, res.Verification, res.Elapsed ...
//
// Batches coalesce duplicate syntheses and report aggregate stats, and
// streams yield each result the moment it is ready:
//
//	items, stats := eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(8))
//	for item, err := range eng.SolveStream(ctx, reqSeq) { ... }
//
// # The underlying pipeline
//
// The paper's machinery remains exported for direct use:
//
//   - Problem definitions in nearest-neighbour SFT form and a catalogue
//     of the paper's concrete problems (vertex/edge colouring,
//     X-orientations, MIS, matchings): NewProblem, VertexColoring,
//     EdgeColoring, XOrientation, MIS, MaximalMatching.
//   - The normal form A' ∘ S_k of §5/§7 and its automatic synthesis:
//     Synthesize, ClassifyOracle, DefaultWindow (Engine.Synthesize and
//     Engine.Classify are the cached equivalents).
//   - The Θ(n) brute-force baseline and solvability certificates:
//     SolveGlobal.
//   - The decidable 1-dimensional (cycle) theory of §4: CycleProblem and
//     friends in the internal/cycle package, re-exported here.
//   - The direct algorithms of §8 (4-colouring for any d) and §10
//     ((2d+1)-edge colouring): FourColor, EdgeColor5.
//   - The §6 undecidability gadget L_M: LM, HaltingWriter, RightLooper.
//   - The §9/§11 lower-bound invariants: BuildAux, Orient034Invariant.
//
// Runnable walkthroughs live in examples/ (see the README for a guided
// tour), and the benchmark harness in bench_test.go regenerates every
// quantitative claim of the paper — run `go test -bench=.` or `lclgrid
// experiments`.
package lclgrid

import (
	"context"

	"lclgrid/internal/coloring"
	"lclgrid/internal/coordination"
	"lclgrid/internal/core"
	"lclgrid/internal/cycle"
	"lclgrid/internal/edgecolor"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/lm"
	"lclgrid/internal/local"
	"lclgrid/internal/logstar"
	"lclgrid/internal/tm"
	"lclgrid/internal/vertexcolor"
)

// --- Topology -------------------------------------------------------------

// Torus is a d-dimensional toroidal grid with a consistent orientation.
type Torus = grid.Torus

// Norm selects the metric for balls and graph powers (L1 or LInf).
type Norm = grid.Norm

// The two norms used by the paper.
const (
	L1   = grid.L1
	LInf = grid.LInf
)

// NewTorus creates a torus with the given side lengths.
func NewTorus(dims ...int) (*Torus, error) { return grid.New(dims...) }

// Square returns the paper's main setting: the 2-dimensional n×n torus.
func Square(n int) *Torus { return grid.Square(n) }

// Cycle returns the directed n-cycle (1-dimensional torus) of §4.
func Cycle(n int) *Torus { return grid.Cycle(n) }

// --- Identifiers and rounds -------------------------------------------------

// Rounds accumulates exact round complexity, including power-graph
// simulation overheads.
type Rounds = local.Rounds

// SequentialIDs returns the identifier assignment id[v] = v+1.
func SequentialIDs(n int) []int { return local.SequentialIDs(n) }

// PermutedIDs returns a deterministic pseudorandom identifier assignment.
func PermutedIDs(n int, seed int64) []int { return local.PermutedIDs(n, seed) }

// LogStar returns the iterated logarithm log*(n).
func LogStar(n int) int { return logstar.LogStar(n) }

// --- LCL problems -----------------------------------------------------------

// Problem is an LCL problem in nearest-neighbour SFT form.
type Problem = lcl.Problem

// NewProblem constructs a problem from per-dimension label relations.
func NewProblem(name string, labels []string, dims int, allow func(dim, a, b int) bool, nodeOK func(a int) bool) *Problem {
	return lcl.NewProblem(name, labels, dims, allow, nodeOK)
}

// VertexColoring returns the proper k-colouring problem.
func VertexColoring(k, dims int) *Problem { return lcl.VertexColoring(k, dims) }

// EdgeColoring returns the proper edge k-colouring problem.
func EdgeColoring(k, dims int) *lcl.EdgeColoringProblem { return lcl.EdgeColoring(k, dims) }

// XOrientation returns the X-orientation problem of §11.
func XOrientation(x []int, dims int) *lcl.OrientationProblem { return lcl.XOrientation(x, dims) }

// MIS returns the maximal independent set problem.
func MIS(dims int) *lcl.MISProblem { return lcl.MIS(dims) }

// MaximalMatching returns the maximal matching problem.
func MaximalMatching(dims int) *lcl.MatchingProblem { return lcl.MaximalMatching(dims) }

// EdgeColors is an explicit edge colouring, decodable to and from the
// SFT alphabet of EdgeColoring.
type EdgeColors = lcl.EdgeColors

// Orientation is an explicit edge orientation, decodable from the SFT
// alphabet of XOrientation.
type Orientation = lcl.Orientation

// OrientationFromLabels decodes an SFT labelling of an X-orientation
// problem into the explicit edge orientation.
func OrientationFromLabels(p *lcl.OrientationProblem, t *Torus, labelling []int) *Orientation {
	return lcl.OrientationFromLabels(p, t, labelling)
}

// IndependentSet returns the (trivial) independent set problem.
func IndependentSet(dims int) *Problem { return lcl.IndependentSet(dims) }

// --- Classification and synthesis (§5, §7) ----------------------------------

// Class is a complexity class: O(1), Θ(log* n) or Θ(n).
type Class = core.Class

// The complexity classes of the paper's classification theorem.
const (
	ClassUnknown = core.ClassUnknown
	ClassO1      = core.ClassO1
	ClassLogStar = core.ClassLogStar
	ClassGlobal  = core.ClassGlobal
)

// Synthesized is a normal-form algorithm A' ∘ S_k produced by synthesis.
type Synthesized = core.Synthesized

// ErrUnsatisfiable reports that no lookup table exists for the chosen
// parameters (the problem may still be Θ(log* n) for larger k).
var ErrUnsatisfiable = core.ErrUnsatisfiable

// ErrTorusTooSmall reports that a synthesized normal form does not apply
// on the given torus (below its MinTorusSide); Engine.Solve falls back to
// the Θ(n) baseline in that case unless synthesis was forced.
var ErrTorusTooSmall = core.ErrTorusTooSmall

// IsContextError reports whether err is a context cancellation or
// deadline expiry — the distinction between an aborted request and a
// failed one, used by services to decide retries and exit codes.
func IsContextError(err error) bool { return core.IsContextError(err) }

// Synthesize searches for a normal-form algorithm with anchor power k and
// h×w anchor windows (§7). Cancelling ctx aborts the tile enumeration or
// the SAT search at the next checkpoint with the context's error.
func Synthesize(ctx context.Context, p *Problem, k, h, w int) (*Synthesized, error) {
	return core.Synthesize(ctx, p, k, h, w)
}

// DefaultWindow returns the window shape the paper uses for power k
// (3×2 for k=1, 7×5 for k=3).
func DefaultWindow(k int) (h, w int) { return core.DefaultWindow(k) }

// MinTorusSide returns the smallest torus side on which a normal form
// with anchor power k and h×w windows is guaranteed correct — the
// fail-fast bound the Planner annotates each PlanAttempt with and the
// synthesis solvers check before paying for a SAT call.
func MinTorusSide(k, h, w int) int { return core.MinTorusSideFor(k, h, w) }

// OracleResult is the outcome of the one-sided classification oracle.
type OracleResult = core.OracleResult

// ClassifyOracle runs the one-sided classification oracle of §7 without
// caching; Engine.Classify is the cached equivalent. Cancelling ctx
// aborts the shape schedule (OracleResult.Err carries the context's
// error).
func ClassifyOracle(ctx context.Context, p *Problem, maxK int) OracleResult {
	return core.ClassifyOracle(ctx, p, maxK)
}

// SolveGlobal decides solvability of p on t and returns a solution — the
// Θ(n) brute-force baseline and unsolvability certificate generator. The
// error is non-nil exactly when ctx was cancelled, in which case the
// solvability answer is meaningless.
func SolveGlobal(ctx context.Context, p *Problem, t *Torus) ([]int, bool, error) {
	return core.SolveGlobal(ctx, p, t)
}

// Diameter returns the torus diameter (the brute-force round cost).
func Diameter(t *Torus) int { return core.Diameter(t) }

// Anchors computes S_k: a maximal independent set of the k-th power of
// the torus, in O(log* n) rounds.
func Anchors(t *Torus, k int, norm Norm, ids []int, r *Rounds) []bool {
	return coloring.Anchors(t, k, norm, ids, r)
}

// --- The 1-dimensional theory (§4) -------------------------------------------

// CycleProblem is an LCL problem on directed cycles given by feasible
// windows.
type CycleProblem = cycle.Problem

// CycleAlgorithm is a synthesized optimal algorithm for a cycle problem.
type CycleAlgorithm = cycle.Algorithm

// NewCycleProblem builds a cycle problem from its feasible windows.
func NewCycleProblem(name string, labels []string, r int, windows [][]int) *CycleProblem {
	return cycle.NewProblem(name, labels, r, windows)
}

// CycleFromSFT converts a 1-dimensional SFT problem to window form.
func CycleFromSFT(p *Problem) *CycleProblem { return cycle.FromSFT(p) }

// CycleTwoColoring, CycleThreeColoring, CycleMIS and CycleIndependentSet
// are the Fig. 2 catalogue.
func CycleTwoColoring() *CycleProblem   { return cycle.TwoColoring() }
func CycleThreeColoring() *CycleProblem { return cycle.ThreeColoring() }
func CycleMIS() *CycleProblem           { return cycle.MIS() }
func CycleIndependentSet() *CycleProblem {
	return cycle.IndependentSet()
}

// --- Direct algorithms (§8, §10) ---------------------------------------------

// FourColor runs the §8 algorithm: a proper 4-colouring of a
// d-dimensional torus (d >= 2) in Θ(log* n) rounds, retrying the ball
// parameter ℓ until the conflict colouring succeeds. It returns the
// colouring and the ℓ used.
func FourColor(t *Torus, ids []int, r *Rounds) ([]int, int, error) {
	return vertexcolor.RunAuto(t, ids, r)
}

// EdgeColorParams are the §10 constants.
type EdgeColorParams = edgecolor.Params

// EdgeColor5 runs the §10 algorithm with the paper's constants: a proper
// (2d+1)-edge colouring in Θ(log* n) rounds. The zero Params select the
// paper's defaults (which require torus sides of at least 679 for d=2).
func EdgeColor5(t *Torus, ids []int, params EdgeColorParams) (*lcl.EdgeColors, *Rounds, error) {
	return edgecolor.Run(t, ids, params)
}

// --- Undecidability (§6) -------------------------------------------------------

// TuringMachine is a deterministic single-tape Turing machine.
type TuringMachine = tm.Machine

// LMProblem is the undecidability gadget L_M.
type LMProblem = lm.Problem

// LM returns the L_M problem for machine m: Θ(log* n)-solvable iff m
// halts on the empty tape, Θ(n) otherwise (Theorem 3).
func LM(m *TuringMachine) *LMProblem { return lm.New(m) }

// HaltingWriter returns a machine halting in exactly `steps` steps.
func HaltingWriter(steps int) *TuringMachine { return tm.HaltingWriter(steps) }

// RightLooper returns a machine that never halts.
func RightLooper() *TuringMachine { return tm.RightLooper() }

// --- Lower-bound machinery (§9, §11) -------------------------------------------

// BuildAux constructs the §9 auxiliary graph of a greedy 3-colouring; its
// Invariant method verifies Lemmas 12 and 14.
func BuildAux(t *Torus, colors []int) *coordination.Aux { return coordination.BuildAux(t, colors) }

// MakeGreedy converts a proper 3-colouring into a greedy one.
func MakeGreedy(t *Torus, colors []int) []int { return coordination.MakeGreedy(t, colors) }

// Orient034Invariant computes the Theorem 25 invariant of a
// {0,3,4}-orientation.
func Orient034Invariant(o *lcl.Orientation) (int, error) {
	return coordination.Orient034Invariant(o)
}
