// Define: the wire-level problem DSL end to end, in-process. A
// ProblemDef states an LCL problem as tables — a label alphabet and one
// allowed-pair list per grid dimension — which is the JSON-settable
// twin of the programmatic lcl.NewProblem constructor. The walkthrough
// registers a user problem, shows that registration is idempotent on
// the canonical fingerprint (pair order, duplicates and display names
// are representation noise), and demonstrates the headline equivalence:
// a DSL re-statement of a catalogue builtin hashes to the *same*
// fingerprint and solves from the builtin's warm synthesis cache with
// zero new SAT work. The same documents drive POST /v1/problems and the
// `lclgrid define` command against a running server.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	eng := lclgrid.NewEngine()
	ctx := context.Background()

	// A problem definition as it would arrive off the wire: grid
	// 3-colouring under home-grown label names, pairs in no particular
	// order. This is the paper's headline conjectured-global problem.
	doc := `{
	  "name": "my 3-colouring",
	  "dims": 2,
	  "labels": ["red", "green", "blue"],
	  "allow": [
	    [["green","red"],["red","green"],["red","blue"],["blue","red"],["green","blue"],["blue","green"]],
	    [["red","green"],["red","blue"],["green","red"],["green","blue"],["blue","red"],["blue","green"]]
	  ]
	}`
	var def lclgrid.ProblemDef
	if err := json.Unmarshal([]byte(doc), &def); err != nil {
		log.Fatal(err)
	}

	rec, created, err := eng.DefineProblem(&def)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q as %s (created=%v)\n", def.Name, rec.Key, created)
	fmt.Printf("fingerprint %s\n", rec.Fingerprint[:16])

	// Idempotency: a differently-stated equivalent — new display name,
	// reversed pair order — normalizes to the same canonical tables and
	// lands on the same key.
	restated := def
	restated.Name = "the same problem, restated"
	for dim := range restated.Allow {
		pairs := restated.Allow[dim]
		for i, j := 0, len(pairs)-1; i < j; i, j = i+1, j-1 {
			pairs[i], pairs[j] = pairs[j], pairs[i]
		}
	}
	rec2, created2, err := eng.DefineProblem(&restated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restated definition resolves to %s (created=%v)\n\n", rec2.Key, created2)

	// The registered key plans and solves like any catalogue entry: the
	// §7 oracle finds no normal form for 3-colouring, so the Θ(n)
	// baseline serves it.
	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: rec.Key, N: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %s on a 12×12 torus: %s via %s\n\n", rec.Key, res.Class, res.Solver)

	// The equivalence pin: extract the catalogue 5-colouring into DSL
	// form and solve it inline. The extraction keeps label names and
	// order, so the fingerprints match — and because the fingerprint
	// keys the synthesis cache, the inline solve reuses the table the
	// key solve synthesized. Zero new SAT work.
	spec, err := eng.Registry().Lookup("5col")
	if err != nil {
		log.Fatal(err)
	}
	fiveCol := lclgrid.NewProblemDef(spec.Problem())
	fp, err := fiveCol.Fingerprint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5col builtin fingerprint:   %s\n", spec.Problem().Fingerprint()[:16])
	fmt.Printf("5col DSL re-statement:      %s\n", fp[:16])

	if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "5col", N: 12, Seed: 7}); err != nil {
		log.Fatal(err)
	}
	before := eng.CacheStats().Misses
	inline, err := eng.Solve(ctx, lclgrid.SolveRequest{ProblemDef: fiveCol, N: 12, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inline solve: cache_hit=%v, new syntheses=%d\n",
		inline.CacheHit, eng.CacheStats().Misses-before)
}
