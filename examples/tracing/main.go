// Command tracing demonstrates the distributed-tracing subsystem on one
// process: it boots a traced Server, provokes a cold synthesis over
// HTTP, and prints the request's span tree — the plan, the ranked
// strategies, and the synthesis with its SynthKey and SAT-statistics
// attributes — exactly as GET /debug/traces would serve it, followed by
// the cheap cached re-solve for contrast.
//
//	go run ./examples/tracing
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	lclgrid "lclgrid"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// A trace buffer shared with the server: every completed request
	// deposits its span tree here, newest first.
	traces := lclgrid.NewTraceBuffer(16)
	srv := lclgrid.NewServer(lclgrid.NewEngine(), lclgrid.WithServerTracing(traces))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()

	// The cold solve: nothing is cached, so the trace shows the full
	// pipeline — plan, strategy, cache.miss, and the SAT synthesis.
	solve := func(label string) {
		resp, err := http.Post(base+"/v1/solve", "application/json",
			strings.NewReader(`{"key":"5col","n":12}`))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("solve: status %d", resp.StatusCode)
		}
		doc := traces.Snapshot(0)[0]
		fmt.Printf("%s  trace %s (%s, %.3fms)\n", label, doc.TraceID, doc.Service, doc.ElapsedMS)
		for _, sp := range doc.Spans {
			printSpan(sp, 1)
		}
		fmt.Println()
	}
	solve("cold solve")
	solve("cached re-solve")

	cancel()
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
}

// printSpan renders one span and its children as an indented tree with
// the attributes that matter inline.
func printSpan(sp *lclgrid.SpanDoc, depth int) {
	fmt.Printf("%s%-16s %8.3fms", strings.Repeat("  ", depth), sp.Name, sp.ElapsedMS)
	if len(sp.Attrs) > 0 {
		keys := []string{"status", "class", "strategies", "kind", "synth_key", "conflicts", "decisions", "propagations", "outcome"}
		var parts []string
		for _, k := range keys {
			if v, ok := sp.Attrs[k]; ok {
				parts = append(parts, k+"="+v)
			}
		}
		if len(parts) > 0 {
			fmt.Printf("  %s", strings.Join(parts, " "))
		}
	}
	if sp.Error != "" {
		fmt.Printf("  error=%q", sp.Error)
	}
	fmt.Println()
	for _, child := range sp.Children {
		printSpan(child, depth+1)
	}
}
