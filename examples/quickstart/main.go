// Quickstart: synthesize the paper's headline result — an optimal
// Θ(log* n) normal-form algorithm for 4-colouring the toroidal grid
// (§7: fails for k = 1, 2; succeeds for k = 3 over 2079 tiles) — and run
// it on a torus.
package main

import (
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	p := lclgrid.VertexColoring(4, 2)

	for k := 1; k <= 3; k++ {
		h, w := lclgrid.DefaultWindow(k)
		alg, err := lclgrid.Synthesize(p, k, h, w)
		if err != nil {
			fmt.Printf("k=%d (%dx%d windows): no normal-form table (expected for k<3)\n", k, h, w)
			continue
		}
		fmt.Printf("k=%d (%dx%d windows): synthesized over %d tiles\n", k, h, w, alg.Graph.NumTiles())

		g := lclgrid.Square(32)
		ids := lclgrid.PermutedIDs(g.N(), 42)
		out, rounds, err := alg.Run(g, ids)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Verify(g, out); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
		fmt.Printf("ran A' ∘ S_%d on a 32×32 torus: valid 4-colouring in %d rounds (log*(n²) = %d)\n",
			k, rounds.Total(), lclgrid.LogStar(32*32))

		// Print a corner of the colouring.
		for y := 7; y >= 0; y-- {
			for x := 0; x < 16; x++ {
				fmt.Print(out[g.At(x, y)] + 1)
			}
			fmt.Println()
		}
	}
}
