// Quickstart: the context-aware request/response API. Solve the paper's
// headline problem — 4-colouring the toroidal grid, Θ(log* n) by a
// normal-form algorithm synthesized at k = 3 over 2079 tiles (§7) — as a
// single cancellable service call, then batch a mixed workload through
// the bounded worker pool and show the synthesis cache coalescing the
// duplicate requests.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	lclgrid "lclgrid"
)

func main() {
	eng := lclgrid.NewEngine()
	ctx := context.Background()

	// The registry maps problem keys to constructors, the paper's
	// classification and the known best solver.
	fmt.Println("registered problems:")
	for _, spec := range eng.Registry().Specs() {
		fmt.Printf("  %-10s %-28s %s\n", spec.Key, spec.Name, spec.Class)
	}

	// Solve 4-colouring on a 32×32 torus: one request synthesizes the
	// lookup table (SAT), runs A' ∘ S_3 and verifies the labelling.
	// Requests are plain JSON-able values.
	req := lclgrid.SolveRequest{Key: "4col", N: 32, Seed: 42}
	res, err := eng.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold:   %v  [%v]\n", res, res.Elapsed.Round(time.Microsecond))

	// The same request again: the synthesis is served from the engine's
	// fingerprint-keyed cache — only the Θ(log* n) run remains.
	res, err = eng.Solve(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached: %v  [%v, cache hit=%v]\n", res, res.Elapsed.Round(time.Microsecond), res.CacheHit)
	stats := eng.CacheStats()
	fmt.Printf("cache stats: %d hits, %d syntheses, %d entries\n", stats.Hits, stats.Misses, stats.Entries)

	// Requests and results round-trip through JSON — this is exactly what
	// the `lclgrid batch` JSONL front end speaks.
	wire, _ := json.Marshal(req)
	fmt.Printf("\nwire form of the request: %s\n", wire)

	// Deadlines are honoured all the way down into the tile enumeration
	// and the SAT search: an impossible deadline aborts the k = 3 cold
	// synthesis at the next checkpoint instead of blocking the caller.
	eng2 := lclgrid.NewEngine()
	hurried, cancel := context.WithTimeout(ctx, time.Millisecond)
	_, err = eng2.Solve(hurried, lclgrid.SolveRequest{Key: "4col", N: 28})
	cancel()
	fmt.Printf("1ms deadline on a cold synthesis: %v\n", err)
	// The abort does not poison the cache: the same request succeeds.
	if _, err := eng2.Solve(ctx, lclgrid.SolveRequest{Key: "4col", N: 28}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("...and the same request succeeds afterwards")

	// Batches run on a bounded worker pool, preserve input order, and
	// coalesce duplicate syntheses: 12 requests over 3 distinct problems
	// cost 3 syntheses however many workers run.
	var reqs []lclgrid.SolveRequest
	for i := 0; i < 4; i++ {
		reqs = append(reqs,
			lclgrid.SolveRequest{Key: "5col", N: 16, Seed: int64(i + 1)},
			lclgrid.SolveRequest{Key: "orient134", N: 16, Seed: int64(i + 1)},
			lclgrid.SolveRequest{Key: "orient013", N: 16, Seed: int64(i + 1)},
		)
	}
	items, bstats := eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(4))
	for _, it := range items[:3] {
		fmt.Printf("  %v\n", it.Result)
	}
	fmt.Printf("batch: %d requests, %d errors, %d cache hits, %d workers, %v wall\n",
		bstats.Requests, bstats.Errors, bstats.CacheHits, bstats.Workers, bstats.Wall.Round(time.Microsecond))

	// Inline problems go through the same engine: the request carries the
	// *Problem, the cached one-sided oracle classifies it and the best
	// applicable solver runs.
	p := lclgrid.NewProblem("row 3-colouring", []string{"a", "b", "c"}, 2,
		func(dim, a, b int) bool { return dim == 1 || a != b }, nil)
	res, err = eng.Solve(ctx, lclgrid.SolveRequest{Problem: p, N: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom problem: %v\n", res)
}
