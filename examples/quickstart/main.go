// Quickstart: the Engine/Registry API. Solve the paper's headline
// problem — 4-colouring the toroidal grid, Θ(log* n) by a normal-form
// algorithm synthesized at k = 3 over 2079 tiles (§7) — as a single
// service call, then show the synthesis cache at work.
package main

import (
	"fmt"
	"log"
	"time"

	lclgrid "lclgrid"
)

func main() {
	eng := lclgrid.NewEngine()

	// The registry maps problem keys to constructors, the paper's
	// classification and the known best solver.
	fmt.Println("registered problems:")
	for _, spec := range eng.Registry().Specs() {
		fmt.Printf("  %-10s %-28s %s\n", spec.Key, spec.Name, spec.Class)
	}

	// Solve 4-colouring on a 32×32 torus: one call synthesizes the
	// lookup table (SAT), runs A' ∘ S_3 and verifies the labelling.
	g := lclgrid.Square(32)
	ids := lclgrid.PermutedIDs(g.N(), 42)

	start := time.Now()
	res, err := eng.Solve("4col", g, ids)
	if err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	fmt.Printf("\ncold:   %v  [%v]\n", res, cold)

	// The same call again: the synthesis is served from the engine's
	// fingerprint-keyed cache — only the Θ(log* n) run remains.
	start = time.Now()
	res, err = eng.Solve("4col", g, ids)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cached: %v  [%v, cache hit=%v]\n", res, time.Since(start), res.CacheHit)
	stats := eng.CacheStats()
	fmt.Printf("cache stats: %d hits, %d syntheses, %d entries\n", stats.Hits, stats.Misses, stats.Entries)

	// Print a corner of the colouring.
	fmt.Printf("\nA' ∘ S_3 on a 32×32 torus: %d rounds (log*(n²) = %d)\n",
		res.Rounds, lclgrid.LogStar(32*32))
	for y := 7; y >= 0; y-- {
		for x := 0; x < 16; x++ {
			fmt.Print(res.Labels[g.At(x, y)] + 1)
		}
		fmt.Println()
	}

	// User-defined problems go through the same engine: SolveProblem
	// classifies with the cached oracle and picks the right solver.
	p := lclgrid.NewProblem("row 3-colouring", []string{"a", "b", "c"}, 2,
		func(dim, a, b int) bool { return dim == 1 || a != b }, nil)
	res, err = eng.SolveProblem(p, lclgrid.Square(16), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom problem: %v\n", res)
}
