// Orientation: the exhaustive X-orientation classification of Theorem 22,
// with the {1,3,4}-orientation (Lemma 23) solved through the registry's
// synthesized Θ(log* n) solver and decoded into an explicit edge
// orientation.
package main

import (
	"context"
	"fmt"
	"log"
	"math/bits"

	lclgrid "lclgrid"
)

func main() {
	eng := lclgrid.NewEngine()
	ctx := context.Background()

	// The registry resolves every "orient<digits>" key with the Thm 22
	// classification built in; tally all 32 subsets.
	fmt.Println("Theorem 22 — in-degree sets X ⊆ {0..4} on 2-dimensional grids:")
	classes := map[string][]string{}
	for mask := 1; mask < 32; mask++ {
		key := "orient"
		var x []int
		for d := 0; d <= 4; d++ {
			if mask&(1<<d) != 0 {
				key += fmt.Sprint(d)
				x = append(x, d)
			}
		}
		spec, err := eng.Registry().Lookup(key)
		if err != nil {
			log.Fatal(err)
		}
		cls := spec.Class.String()
		classes[cls] = append(classes[cls], fmt.Sprint(x))
	}
	classes["Θ(n)"] = append(classes["Θ(n)"], "[]") // X=∅ has no labels: never solvable
	for _, cls := range []string{"O(1)", "Θ(log* n)", "Θ(n)"} {
		fmt.Printf("  %-10s %d sets: %v\n", cls, len(classes[cls]), classes[cls])
	}

	// Solve the {1,3,4}-orientation through the engine.
	x := []int{1, 3, 4}
	g := lclgrid.Square(20)
	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "orient134", Torus: g, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{1,3,4}-orientation on 20×20: %v\n", res)

	// Decode and tally the in-degree histogram.
	op := lclgrid.XOrientation(x, 2)
	hist := map[int]int{}
	for v := 0; v < g.N(); v++ {
		hist[bits.OnesCount(op.Masks[res.Labels[v]])]++
	}
	fmt.Printf("in-degree histogram: %v\n", hist)

	o := lclgrid.OrientationFromLabels(op, g, res.Labels)
	if err := o.VerifyX(x); err != nil {
		log.Fatal(err)
	}
	fmt.Println("explicit edge orientation decoded and re-verified")
}
