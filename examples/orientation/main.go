// Orientation: the exhaustive X-orientation classification of Theorem 22,
// with a synthesized Θ(log* n) algorithm for X = {1,3,4} (Lemma 23) run
// and decoded into an explicit edge orientation.
package main

import (
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	fmt.Println("Theorem 22 — in-degree sets X ⊆ {0..4} on 2-dimensional grids:")
	classes := map[string][]string{}
	for mask := 0; mask < 32; mask++ {
		var x []int
		for d := 0; d <= 4; d++ {
			if mask&(1<<d) != 0 {
				x = append(x, d)
			}
		}
		var cls lclgrid.Class
		switch {
		case contains(x, 2):
			cls = lclgrid.ClassO1
		case contains(x, 1) && contains(x, 3) && (contains(x, 0) || contains(x, 4)):
			cls = lclgrid.ClassLogStar
		default:
			cls = lclgrid.ClassGlobal
		}
		key := cls.String()
		classes[key] = append(classes[key], fmt.Sprint(x))
	}
	for _, cls := range []string{"O(1)", "Θ(log* n)", "Θ(n)"} {
		fmt.Printf("  %-10s %d sets: %v\n", cls, len(classes[cls]), classes[cls])
	}

	// Synthesize and run the {1,3,4}-orientation.
	x := []int{1, 3, 4}
	op := lclgrid.XOrientation(x, 2)
	alg, err := lclgrid.Synthesize(op.Problem, 1, 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	g := lclgrid.Square(20)
	out, rounds, err := alg.Run(g, lclgrid.PermutedIDs(g.N(), 3))
	if err != nil {
		log.Fatal(err)
	}
	if err := op.Verify(g, out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{1,3,4}-orientation on 20×20: verified in %d rounds (k=1, as in Lemma 23)\n", rounds.Total())

	// Decode and tally the in-degree histogram.
	hist := map[int]int{}
	for v := 0; v < g.N(); v++ {
		// In-degree = popcount of the label's incoming mask.
		mask := op.Masks[out[v]]
		c := 0
		for m := mask; m != 0; m >>= 1 {
			c += int(m & 1)
		}
		hist[c]++
	}
	fmt.Printf("in-degree histogram: %v\n", hist)
}

func contains(x []int, d int) bool {
	for _, v := range x {
		if v == d {
			return true
		}
	}
	return false
}
