// Command server demonstrates the HTTP serving subsystem end to end: it
// warms an engine, boots a Server on an ephemeral port, solves a request
// and streams a small batch over real HTTP, prints the ranked plan from
// /v1/explain, scrapes /metrics, and shuts down gracefully.
//
//	go run ./examples/server
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	lclgrid "lclgrid"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// One MetricsObserver shared between the engine and the server: the
	// engine feeds it synthesis/cache events, the server the HTTP-level
	// series, and /metrics exposes both.
	metrics := lclgrid.NewMetricsObserver()
	eng := lclgrid.NewEngine(lclgrid.WithObserver(metrics))

	// Warm a slice of the catalogue so the served requests below are
	// cache hits (a production deployment would add WithCacheDir and
	// warm the whole catalogue once, surviving restarts).
	ws, err := eng.Warm(ctx, "5col", "mis", "orient134")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warmed %d problems with %d syntheses\n", ws.Warmed, ws.Syntheses)

	srv := lclgrid.NewServer(eng,
		lclgrid.WithMetricsObserver(metrics),
		lclgrid.WithMaxInflight(8),
		lclgrid.WithRequestTimeout(30*time.Second),
	)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// One solve over the wire: the warmed table makes it a cache hit.
	res, err := http.Post(base+"/v1/solve", "application/json",
		strings.NewReader(`{"key":"5col","n":12,"seed":7}`))
	if err != nil {
		log.Fatal(err)
	}
	var result lclgrid.Result
	if err := decodeJSON(res.Body, &result); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("POST /v1/solve  → %s (cache hit: %v, %v)\n",
		&result, result.CacheHit, result.Elapsed.Round(time.Microsecond))

	// The ranked plan, with zero SAT work.
	res, err = http.Post(base+"/v1/explain", "application/json",
		strings.NewReader(`{"key":"4col","n":8}`))
	if err != nil {
		log.Fatal(err)
	}
	var plan lclgrid.Plan
	if err := decodeJSON(res.Body, &plan); err != nil {
		log.Fatal(err)
	}
	fmt.Print("POST /v1/explain → ")
	for i := range plan.Strategies {
		if i > 0 {
			fmt.Print(" → ")
		}
		fmt.Print(plan.Strategies[i].Kind)
	}
	fmt.Println()

	// A streamed batch: results arrive line by line in completion order.
	batch := `{"key":"mis","n":12}` + "\n" + `{"key":"orient134","n":20}` + "\n"
	res, err = http.Post(base+"/v1/batch", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(res.Body)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 100 {
			line = line[:100] + "..."
		}
		fmt.Printf("POST /v1/batch  → %s\n", line)
	}
	res.Body.Close()

	// Scrape the metrics the traffic above produced.
	res, err = http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	data, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGET /metrics (excerpt):")
	for _, line := range strings.Split(string(data), "\n") {
		for _, name := range []string{
			"lclgrid_requests_total ", "lclgrid_syntheses_total ",
			"lclgrid_cache_hits_total ", "lclgrid_http_requests_total{",
		} {
			if strings.HasPrefix(line, name) {
				fmt.Println("  " + line)
			}
		}
	}

	// Graceful shutdown: cancel the serve context and wait for the drain.
	cancel()
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndrained and shut down cleanly")
}

func decodeJSON(r io.ReadCloser, v any) error {
	defer r.Close()
	return json.NewDecoder(r).Decode(v)
}
