// Labels: coordinate-addressed label serving on a torus far too large to
// materialise. The paper's normal form A = A' ∘ S_k makes every node's
// output a pure local function of its h×w anchor window, so after one
// cached synthesis the engine can answer "what does the optimal
// algorithm output at these coordinates?" for a 10^5×10^5 torus — ten
// billion nodes, ten thousand times the solve path's 1M-node cap — in
// O(window + halo) work, never allocating anything proportional to the
// grid. The same windowed evaluator proves its own correctness here by
// reproducing a full-grid run byte for byte on a small torus.
package main

import (
	"context"
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	eng := lclgrid.NewEngine()
	ctx := context.Background()

	// One synthesis (k=1, 3×3 window for MIS) backs every query below;
	// a warm cache or disk cache makes even this a lookup.
	const side = 100_000
	res, err := eng.LabelWindow(ctx, lclgrid.LabelRequest{
		Key:   "mis",
		Sides: []int{side, side}, // 10^10 nodes
		Seed:  7,
		X:     99_998, Y: 42_000, // wraps east over the seam
		W: 8, H: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on a %d×%d torus (10^10 nodes), window %dx%d at (%d,%d):\n",
		res.Problem, res.Sides[0], res.Sides[1], res.W, res.H, res.X, res.Y)
	for r := res.H - 1; r >= 0; r-- {
		for c := 0; c < res.W; c++ {
			fmt.Printf("%3d", res.Labels[r*res.W+c])
		}
		fmt.Println()
	}
	st := res.Stats
	fmt.Printf("work: %d labels from %d anchor evaluations (%d in the halo, radius %d) — O(window+halo), not O(n)\n",
		st.WindowNodes, st.AnchorNodes, st.HaloNodes, st.HaloRadius)
	fmt.Printf("the simulated distributed algorithm would need %d rounds; log*(10^10) = %d\n\n",
		res.Rounds, lclgrid.LogStar(side*side))

	// Same table, second query: the cache hit means zero SAT work.
	res2, err := eng.LabelWindow(ctx, lclgrid.LabelRequest{
		Key: "mis", Sides: []int{side, side}, Seed: 7, X: 0, Y: 0, W: 4, H: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second window at the origin: cache hit %v\n\n", res2.CacheHit)

	// Equivalence, demonstrated: tile a small torus with window calls and
	// compare against the full-grid run under the same identifiers.
	small := 16
	full, err := eng.Solve(ctx, lclgrid.SolveRequest{
		Key: "mis", N: small, IDs: lclgrid.AffineIDs(small*small, 7),
	})
	if err != nil {
		log.Fatal(err)
	}
	window, err := eng.LabelWindow(ctx, lclgrid.LabelRequest{
		Key: "mis", N: small, Seed: 7, X: 0, Y: 0, W: small, H: small,
	})
	if err != nil {
		log.Fatal(err)
	}
	for v := range full.Labels {
		if full.Labels[v] != window.Labels[v] {
			log.Fatalf("mismatch at node %d: run %d, window %d", v, full.Labels[v], window.Labels[v])
		}
	}
	fmt.Printf("windowed labels == full-grid run labels on the %d×%d torus (%d nodes checked)\n",
		small, small, len(full.Labels))
}
