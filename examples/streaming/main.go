// Command streaming walks the service-layer seams of the Engine: a
// disk-persisted synthesis cache warmed at startup, an observer
// counting every engine event, and SolveStream yielding results in
// completion order while SolveBatch collects the same work in input
// order.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"slices"

	lclgrid "lclgrid"
)

func main() {
	ctx := context.Background()

	// A disk-backed cache directory: synthesized lookup tables (and
	// proven-UNSAT shapes) are serialized here and survive restarts. A
	// real service points this at a persistent volume; Warm loads the
	// catalogue it plans to serve.
	cacheDir := filepath.Join(os.TempDir(), "lclgrid-example-cache")
	var counts lclgrid.CountingObserver
	eng := lclgrid.NewEngine(
		lclgrid.WithCacheDir(cacheDir),
		lclgrid.WithObserver(&counts),
	)
	ws, err := eng.Warm(ctx, "5col", "mis", "orient134")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm: %d warmed, %d syntheses (0 on every restart after the first run)\n",
		ws.Warmed, ws.Syntheses)

	// A workload with duplicate fingerprints: the syntheses coalesce
	// through the cache however the requests are executed.
	keys := []string{"5col", "mis", "orient134", "is"}
	var reqs []lclgrid.SolveRequest
	for i := 0; i < 12; i++ {
		reqs = append(reqs, lclgrid.SolveRequest{Key: keys[i%len(keys)], N: 16, Seed: int64(i + 1)})
	}

	// SolveStream yields each result the moment it completes — the
	// indexes below arrive out of input order, and memory stays
	// O(workers) however long the request sequence is.
	fmt.Println("\nstreaming, in completion order:")
	for item, err := range eng.SolveStream(ctx, slices.Values(reqs), lclgrid.WithWorkers(4)) {
		if err != nil {
			fmt.Printf("  #%d failed: %v\n", item.Index, err)
			continue
		}
		fmt.Printf("  #%-2d %-28s %-8v %4d rounds  cache_hit=%v\n",
			item.Index, item.Result.Problem, item.Result.Class, item.Result.Rounds, item.Result.CacheHit)
	}

	// SolveBatch is the order-preserving collector over the same pool.
	items, stats := eng.SolveBatch(ctx, reqs, lclgrid.WithWorkers(4))
	fmt.Printf("\nbatch, in input order: %d requests, %d errors, %d cache hits, %v wall\n",
		stats.Requests, stats.Errors, stats.CacheHits, stats.Wall)
	for _, item := range items[:4] {
		fmt.Printf("  #%-2d %s\n", item.Index, item.Result)
	}

	// The observer saw everything: requests, syntheses, cache traffic.
	c := counts.Counts()
	fmt.Printf("\nobserved: %d requests, %d syntheses (%v in SAT), %d cache hits, %d misses\n",
		c.Requests, c.Syntheses, c.SynthesisTime.Round(1e6), c.CacheHits, c.CacheMisses)
}
