// Edgecoloring: the §10 algorithm through the request/response API — a
// proper 5-edge-colouring of the 2-dimensional torus in Θ(log* n) rounds
// with the paper's constants (k = 3, row spacing 2(4k+1)² = 338), plus
// the Theorem 21 parity obstruction for 4 colours on odd tori.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	eng := lclgrid.NewEngine()
	ctx := context.Background()

	n := 680 // the paper's constants need sides above 2·338+2
	g := lclgrid.Square(n)
	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "5edgecol", Torus: g, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n", res)
	fmt.Printf("on the %d×%d torus (log*(n²)=%d)\n", n, n, lclgrid.LogStar(n*n))

	// The Result carries both the SFT labelling and the decoded edge
	// colouring; colour 5 is the sparse "cutting" colour.
	out := res.Decoded.(*lclgrid.EdgeColors)
	if err := out.VerifyProper(5); err != nil {
		log.Fatal(err)
	}
	hist := make([]int, 5)
	for q := 0; q < 2; q++ {
		for v := 0; v < g.N(); v++ {
			hist[out.C[q][v]]++
		}
	}
	for c, k := range hist {
		fmt.Printf("  colour %d: %6d edges\n", c+1, k)
	}

	// Theorem 21: 2d colours are impossible on odd tori; the registry's
	// global solver doubles as the certificate generator.
	if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "4edgecol", N: 3}); errors.Is(err, lclgrid.ErrUnsolvable) {
		fmt.Println("edge 4-colouring on a 3×3 torus: UNSAT certificate (Thm 21: nd/2 not an integer)")
	}
}
