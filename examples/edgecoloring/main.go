// Edgecoloring: the §10 algorithm — a proper 5-edge-colouring of the
// 2-dimensional torus in Θ(log* n) rounds with the paper's constants
// (k = 3, row spacing 2(4k+1)² = 338), plus the Theorem 21 parity
// obstruction for 4 colours on odd tori.
package main

import (
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	n := 680 // the paper's constants need sides above 2·338+2
	g := lclgrid.Square(n)
	ids := lclgrid.PermutedIDs(g.N(), 1)

	out, rounds, err := lclgrid.EdgeColor5(g, ids, lclgrid.EdgeColorParams{})
	if err != nil {
		log.Fatal(err)
	}
	if err := out.VerifyProper(5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge 5-colouring of the %d×%d torus: verified, %d rounds (log*(n²)=%d)\n",
		n, n, rounds.Total(), lclgrid.LogStar(n*n))

	// Colour histogram: colour 5 is the sparse "cutting" colour.
	hist := make([]int, 5)
	for q := 0; q < 2; q++ {
		for v := 0; v < g.N(); v++ {
			hist[out.C[q][v]]++
		}
	}
	for c, k := range hist {
		fmt.Printf("  colour %d: %6d edges\n", c+1, k)
	}

	// Theorem 21: 2d colours are impossible on odd tori.
	if _, ok := lclgrid.SolveGlobal(lclgrid.EdgeColoring(4, 2).Problem, lclgrid.Square(3)); !ok {
		fmt.Println("edge 4-colouring on a 3×3 torus: UNSAT certificate (Thm 21: nd/2 not an integer)")
	}
}
