// Cycles: the fully decidable 1-dimensional theory of §4 (Fig. 2).
// Classify the four example problems by inspecting their output
// neighbourhood graphs, then synthesize and run optimal algorithms.
//
// Cycle problems sit outside the grid SolveRequest/Engine API on
// purpose: in one dimension classification is decidable and synthesis is
// per-problem exact (CycleProblem.Classify/Synthesize), so there is no
// oracle, SAT cache or batch pool to share — and nothing long-running
// enough to want a context.
package main

import (
	"fmt"
	"log"

	lclgrid "lclgrid"
)

func main() {
	problems := []*lclgrid.CycleProblem{
		lclgrid.CycleIndependentSet(),
		lclgrid.CycleThreeColoring(),
		lclgrid.CycleMIS(),
		lclgrid.CycleTwoColoring(),
	}
	fmt.Println("Fig. 2 classification on directed cycles:")
	for _, p := range problems {
		cls := p.Classify()
		fmt.Printf("  %-26s %v", p.Name(), cls.Class)
		if cls.Flexible >= 0 {
			fmt.Printf(" (flexibility %d)", cls.Flexibility)
		}
		fmt.Println()
	}

	// Run the synthesized MIS algorithm on a large cycle.
	p := lclgrid.CycleMIS()
	alg, err := p.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	n := 1000
	c := lclgrid.Cycle(n)
	out, rounds, err := alg.Run(c, lclgrid.PermutedIDs(n, 7))
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Verify(c, out); err != nil {
		log.Fatal(err)
	}
	members := 0
	for _, x := range out {
		members += x
	}
	fmt.Printf("\nMIS on a %d-cycle: %d members, verified, %d rounds (anchor power k=%d)\n",
		n, members, rounds.Total(), alg.K())

	// The global problem really is global: brute force on even cycles,
	// no solution on odd ones.
	two := lclgrid.CycleTwoColoring()
	galg, err := two.Synthesize()
	if err != nil {
		log.Fatal(err)
	}
	if _, r, err := galg.Run(lclgrid.Cycle(500), lclgrid.SequentialIDs(500)); err == nil {
		fmt.Printf("2-colouring a 500-cycle by brute force: %d rounds (Θ(n))\n", r.Total())
	}
	if _, _, err := galg.Run(lclgrid.Cycle(501), lclgrid.SequentialIDs(501)); err != nil {
		fmt.Println("2-colouring a 501-cycle: no solution exists (odd cycle)")
	}
}
