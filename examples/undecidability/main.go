// Undecidability: the §6 gadget L_M. For a machine that halts, the
// Θ(log* n)-style tiling (anchors + quadrant types + execution table)
// exists and verifies; for a machine that loops, every anchored labelling
// is rejected and only the Θ(n) 3-colouring escape remains — which is why
// deciding Θ(log* n) vs Θ(n) on grids is undecidable (Theorem 3).
package main

import (
	"fmt"
	"log"

	lclgrid "lclgrid"
	"lclgrid/internal/grid"
	"lclgrid/internal/lm"
)

func main() {
	halting := lclgrid.HaltingWriter(2)
	p := lclgrid.LM(halting)
	n := lm.TileSize(2) * 2
	g := grid.Square(n)

	labels, err := p.SolveLattice(g, 100)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Verify(g, labels); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine %q halts in 2 steps: P2 labelling built and verified on %d×%d\n",
		halting.Name, n, n)

	// Draw the type structure of one tile (A = anchor; the execution
	// table of M sits NE of each anchor on S/W/SW-typed nodes).
	fmt.Println("\ntile types around the first anchor (rows north to south):")
	for y := 13; y >= 0; y-- {
		for x := 0; x < 14; x++ {
			l := labels[g.At(x, y)]
			mark := fmt.Sprintf("%-3s", l.Q)
			if l.Cell != nil {
				mark = fmt.Sprintf("%d%-2s", l.Cell.Sym, markHead(l))
			}
			fmt.Print(mark)
		}
		fmt.Println()
	}

	looper := lclgrid.RightLooper()
	lp := lclgrid.LM(looper)
	if err := lp.Verify(g, labels); err != nil {
		fmt.Printf("\nmachine %q never halts: the same anchored labelling is rejected:\n  %v\n",
			looper.Name, err)
	}
	p1, rounds, err := lp.SolveP1(grid.Square(9))
	if err != nil {
		log.Fatal(err)
	}
	if err := lp.Verify(grid.Square(9), p1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("only escape: P1 3-colouring, inherently Θ(n) (%d rounds on 9×9)\n", rounds.Total())
}

func markHead(l lm.Label) string {
	if l.Cell.HasHead {
		return "H"
	}
	return " "
}
