// Undecidability: the §6 gadget L_M through the registry's lm:halt and
// lm:loop entries. For a machine that halts, the Θ(log* n)-style tiling
// (anchors + quadrant types + execution table) exists and verifies; for a
// machine that loops, every anchored labelling is rejected and only the
// Θ(n) 3-colouring escape remains — which is why deciding Θ(log* n) vs
// Θ(n) on grids is undecidable (Theorem 3).
package main

import (
	"context"
	"fmt"
	"log"

	lclgrid "lclgrid"
	"lclgrid/internal/lm"
)

func main() {
	eng := lclgrid.NewEngine()
	ctx := context.Background()

	n := lm.TileSize(2) * 2
	g := lclgrid.Square(n)
	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "lm:halt", Torus: g})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine halts in 2 steps: %v\n", res)
	labels := res.Decoded.([]lm.Label)

	// Draw the type structure of one tile (A = anchor; the execution
	// table of M sits NE of each anchor on S/W/SW-typed nodes).
	fmt.Println("\ntile types around the first anchor (rows north to south):")
	for y := 13; y >= 0; y-- {
		for x := 0; x < 14; x++ {
			l := labels[g.At(x, y)]
			mark := fmt.Sprintf("%-3s", l.Q)
			if l.Cell != nil {
				mark = fmt.Sprintf("%d%-2s", l.Cell.Sym, markHead(l))
			}
			fmt.Print(mark)
		}
		fmt.Println()
	}

	// The same anchored labelling is rejected for a non-halting machine.
	looper := lclgrid.LM(lclgrid.RightLooper())
	if err := looper.Verify(g, labels); err != nil {
		fmt.Printf("\nmachine %q never halts: the same anchored labelling is rejected:\n  %v\n",
			lclgrid.RightLooper().Name, err)
	}

	// lm:loop falls back to the P1 escape — inherently Θ(n).
	resLoop, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "lm:loop", N: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("only escape: %v\n", resLoop)
}

func markHead(l lm.Label) string {
	if l.Cell.HasHead {
		return "H"
	}
	return " "
}
