package lclgrid

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

// metricValue extracts an unlabelled sample value from Prometheus text
// output, failing the test when the series is missing.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s has unparsable value %q: %v", name, rest, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// metricText renders the observer for assertions.
func metricText(t *testing.T, m *MetricsObserver) string {
	t.Helper()
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return sb.String()
}

// TestMetricsObserverAggregatesEngineEvents drives a real engine with a
// MetricsObserver installed and checks the rendered counters tell the
// same story as the built-in CountingObserver.
func TestMetricsObserverAggregatesEngineEvents(t *testing.T) {
	m := NewMetricsObserver()
	c := &CountingObserver{}
	eng := NewEngine(WithObserver(m), WithObserver(c))
	ctx := context.Background()

	reqs := []SolveRequest{
		{Key: "mis", N: 12},
		{Key: "mis", N: 12},    // second solve reuses the cached table
		{Key: "nope", N: 12},   // request error (unknown key)
		{Key: "orient2", N: 8}, // constant fill, no synthesis
	}
	for _, req := range reqs {
		_, _ = eng.Solve(ctx, req)
	}

	body := metricText(t, m)
	counts := c.Counts()
	for name, want := range map[string]float64{
		"lclgrid_requests_total":       float64(counts.Requests),
		"lclgrid_request_errors_total": float64(counts.RequestErrors),
		"lclgrid_syntheses_total":      float64(counts.Syntheses),
		"lclgrid_cache_hits_total":     float64(counts.CacheHits),
		"lclgrid_cache_misses_total":   float64(counts.CacheMisses),
		"lclgrid_plans_total":          float64(counts.Plans),
		"lclgrid_requests_inflight":    0,
	} {
		if got := metricValue(t, body, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if got := metricValue(t, body, "lclgrid_requests_total"); got != 4 {
		t.Errorf("lclgrid_requests_total = %v, want 4", got)
	}
	// The successful solves ran a strategy; the labelled series must
	// name the kinds.
	if !strings.Contains(body, `lclgrid_strategy_runs_total{kind="synthesis"}`) {
		t.Errorf("no synthesis strategy series in:\n%s", body)
	}
	if !strings.Contains(body, `lclgrid_strategy_runs_total{kind="constant-fill"} 1`) {
		t.Errorf("no constant-fill strategy series in:\n%s", body)
	}
	// Request durations flow from Result.Elapsed into the histogram.
	if got := metricValue(t, body, "lclgrid_request_duration_seconds_count"); got != 3 {
		t.Errorf("request duration count = %v, want 3 (the completed solves)", got)
	}
	if got := metricValue(t, body, "lclgrid_synthesis_duration_seconds_count"); got != float64(counts.Syntheses) {
		t.Errorf("synthesis duration count = %v, want %v", got, counts.Syntheses)
	}
}

// TestHistogramBuckets pins the cumulative bucket rendering: counts
// accumulate across bucket boundaries and the +Inf bucket equals the
// total count.
func TestHistogramBuckets(t *testing.T) {
	m := NewMetricsObserver()
	for _, d := range []time.Duration{
		100 * time.Microsecond, // le 0.0005
		2 * time.Millisecond,   // le 0.0025
		40 * time.Millisecond,  // le 0.05
		2 * time.Minute,        // overflow
	} {
		m.synthesisSeconds.observe(d)
	}
	body := metricText(t, m)
	for _, want := range []string{
		`lclgrid_synthesis_duration_seconds_bucket{le="0.0005"} 1`,
		`lclgrid_synthesis_duration_seconds_bucket{le="0.001"} 1`,
		`lclgrid_synthesis_duration_seconds_bucket{le="0.0025"} 2`,
		`lclgrid_synthesis_duration_seconds_bucket{le="0.05"} 3`,
		`lclgrid_synthesis_duration_seconds_bucket{le="60"} 3`,
		`lclgrid_synthesis_duration_seconds_bucket{le="+Inf"} 4`,
		`lclgrid_synthesis_duration_seconds_count 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
	wantSum := (100*time.Microsecond + 2*time.Millisecond + 40*time.Millisecond + 2*time.Minute).Seconds()
	if got := metricValue(t, body, "lclgrid_synthesis_duration_seconds_sum"); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

// TestSynthesisAbortAccounting checks the abort counter follows the
// shared context-error predicate, not just any error.
func TestSynthesisAbortAccounting(t *testing.T) {
	m := NewMetricsObserver()
	key := SynthKey{K: 1, H: 3, W: 3}
	m.SynthesisEnd(key, time.Millisecond, nil)
	m.SynthesisEnd(key, time.Millisecond, errors.New("unsat"))
	m.SynthesisEnd(key, time.Millisecond, context.Canceled)
	m.SynthesisEnd(key, time.Millisecond, context.DeadlineExceeded)
	body := metricText(t, m)
	if got := metricValue(t, body, "lclgrid_synthesis_errors_total"); got != 3 {
		t.Errorf("synthesis errors = %v, want 3", got)
	}
	if got := metricValue(t, body, "lclgrid_synthesis_aborts_total"); got != 2 {
		t.Errorf("synthesis aborts = %v, want 2", got)
	}
}

// TestWritePrometheusDeterministic checks repeated renders of a
// quiescent observer are byte-identical (labelled series are sorted),
// and that every series family carries HELP and TYPE headers.
func TestWritePrometheusDeterministic(t *testing.T) {
	m := NewMetricsObserver()
	m.httpEnd("/v1/solve", 200, time.Millisecond)
	m.httpStart() // balance the httpEnd decrement
	m.httpEnd("/v1/batch", 200, time.Millisecond)
	m.httpStart()
	m.httpEnd("/healthz", 404, time.Microsecond)
	m.httpStart()

	a, b := metricText(t, m), metricText(t, m)
	if a != b {
		t.Fatalf("two renders differ:\n%s\n---\n%s", a, b)
	}
	for _, name := range []string{
		"lclgrid_requests_total", "lclgrid_http_requests_total",
		"lclgrid_http_request_duration_seconds", "lclgrid_synthesis_duration_seconds",
	} {
		if !strings.Contains(a, "# HELP "+name+" ") || !strings.Contains(a, "# TYPE "+name+" ") {
			t.Errorf("family %s lacks HELP/TYPE headers", name)
		}
	}
	// Label sets sort deterministically: /healthz before /v1/batch
	// before /v1/solve.
	i := strings.Index(a, `path="/healthz",code="404"`)
	j := strings.Index(a, `path="/v1/batch",code="200"`)
	k := strings.Index(a, `path="/v1/solve",code="200"`)
	if i < 0 || j < 0 || k < 0 || !(i < j && j < k) {
		t.Errorf("labelled series not sorted: healthz@%d batch@%d solve@%d", i, j, k)
	}
}

// TestMetricsCacheEntriesGauge: the lclgrid_cache_entries gauge renders
// the live entry count when a provider is installed and is omitted
// entirely when none is — a constant 0 would read as an empty cache,
// not an unplumbed one.
func TestMetricsCacheEntriesGauge(t *testing.T) {
	m := NewMetricsObserver()
	if text := metricText(t, m); strings.Contains(text, "lclgrid_cache_entries") {
		t.Fatalf("gauge rendered without a provider:\n%s", text)
	}
	n := 3
	m.SetCacheEntriesFunc(func() int { return n })
	if got := metricValue(t, metricText(t, m), "lclgrid_cache_entries"); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	n = 7 // the gauge reads live, not a snapshot
	if got := metricValue(t, metricText(t, m), "lclgrid_cache_entries"); got != 7 {
		t.Fatalf("gauge after change = %v, want 7", got)
	}
	m.SetCacheEntriesFunc(nil)
	if text := metricText(t, m); strings.Contains(text, "lclgrid_cache_entries") {
		t.Fatalf("gauge rendered after the provider was cleared:\n%s", text)
	}

	// An engine-backed server wires the gauge to CacheStats().Entries.
	eng := NewEngine()
	srv := NewServer(eng)
	_ = srv
	if _, _, err := eng.Synthesize(context.Background(), VertexColoring(5, 2), 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	text := metricText(t, srv.metrics)
	if got := metricValue(t, text, "lclgrid_cache_entries"); got != 1 {
		t.Fatalf("server gauge = %v, want 1", got)
	}
}

// TestMetricsRemoteCacheSeries pins the wire format of the remote-cache
// series: labelled op/outcome counters, per-op latency histograms and
// the degradation counter, all with HELP/TYPE headers and sorted label
// sets.
func TestMetricsRemoteCacheSeries(t *testing.T) {
	m := NewMetricsObserver()
	m.RemoteCacheOp("get", "hit", 2*time.Millisecond)
	m.RemoteCacheOp("get", "miss", time.Millisecond)
	m.RemoteCacheOp("get", "hit", 3*time.Millisecond)
	m.RemoteCacheOp("put", "stored", time.Millisecond)
	m.RemoteCacheDegraded()

	text := metricText(t, m)
	for _, name := range []string{
		"lclgrid_remote_cache_ops_total",
		"lclgrid_remote_cache_op_duration_seconds",
		"lclgrid_remote_cache_degraded_total",
	} {
		if !strings.Contains(text, "# HELP "+name+" ") || !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("family %s lacks HELP/TYPE headers", name)
		}
	}
	for _, want := range []string{
		`lclgrid_remote_cache_ops_total{op="get",outcome="hit"} 2`,
		`lclgrid_remote_cache_ops_total{op="get",outcome="miss"} 1`,
		`lclgrid_remote_cache_ops_total{op="put",outcome="stored"} 1`,
		`lclgrid_remote_cache_degraded_total 1`,
		`lclgrid_remote_cache_op_duration_seconds_count{op="get"} 3`,
		`lclgrid_remote_cache_op_duration_seconds_count{op="put"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing series %q in:\n%s", want, grepMetrics(text, "remote_cache"))
		}
	}
	// Histogram buckets carry the +Inf terminal and a sum.
	if !strings.Contains(text, `lclgrid_remote_cache_op_duration_seconds_bucket{op="get",le="+Inf"} 3`) {
		t.Errorf("get histogram lacks +Inf bucket:\n%s", grepMetrics(text, "remote_cache"))
	}
	if !strings.Contains(text, `lclgrid_remote_cache_op_duration_seconds_sum{op="get"}`) {
		t.Errorf("get histogram lacks a sum:\n%s", grepMetrics(text, "remote_cache"))
	}
	// Two renders are identical (sorted, deterministic).
	if a, b := metricText(t, m), metricText(t, m); a != b {
		t.Fatalf("remote-cache renders differ:\n%s\n---\n%s", a, b)
	}
}

// TestMetricsGatewaySeries pins the gateway-side series format.
func TestMetricsGatewaySeries(t *testing.T) {
	m := NewMetricsObserver()
	m.gatewayRequest("/v1/solve", "http://a:1", 200)
	m.gatewayRequest("/v1/solve", "http://a:1", 200)
	m.gatewayRequest("/v1/batch", "http://b:2", 503)
	m.gatewayRetry()
	m.gatewayError()

	text := metricText(t, m)
	for _, want := range []string{
		`lclgrid_gateway_requests_total{route="/v1/batch",shard="http://b:2",code="503"} 1`,
		`lclgrid_gateway_requests_total{route="/v1/solve",shard="http://a:1",code="200"} 2`,
		`lclgrid_gateway_retries_total 1`,
		`lclgrid_gateway_errors_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing series %q in:\n%s", want, grepMetrics(text, "gateway"))
		}
	}
	for _, name := range []string{
		"lclgrid_gateway_requests_total", "lclgrid_gateway_retries_total", "lclgrid_gateway_errors_total",
	} {
		if !strings.Contains(text, "# HELP "+name+" ") || !strings.Contains(text, "# TYPE "+name+" ") {
			t.Errorf("family %s lacks HELP/TYPE headers", name)
		}
	}
}

// TestMetricsTraceAndBuildInfoSeries pins the observability series added
// with distributed tracing: the trace deposit/eviction counters read
// live from a TraceBuffer, and lclgrid_build_info renders the binary
// identity with alphabetically sorted labels and a constant value of 1.
func TestMetricsTraceAndBuildInfoSeries(t *testing.T) {
	m := NewMetricsObserver()
	text := metricText(t, m)
	for _, name := range []string{"lclgrid_traces_total", "lclgrid_build_info"} {
		if strings.Contains(text, name) {
			t.Fatalf("%s rendered without a provider:\n%s", name, text)
		}
	}

	buf := NewTraceBuffer(2)
	m.SetTraceStatsFunc(buf.Stats)
	for i := 0; i < 3; i++ {
		StartTrace("serve", "req").Finish(buf)
	}
	text = metricText(t, m)
	if got := metricValue(t, text, "lclgrid_traces_total"); got != 3 {
		t.Errorf("lclgrid_traces_total = %v, want 3", got)
	}
	if got := metricValue(t, text, "lclgrid_traces_dropped_total"); got != 1 {
		t.Errorf("lclgrid_traces_dropped_total = %v, want 1", got)
	}

	m.SetBuildInfo("v1.2.3", "abcdef123456")
	text = metricText(t, m)
	want := `lclgrid_build_info{revision="abcdef123456",version="v1.2.3"} 1`
	if !strings.Contains(text, want) {
		t.Errorf("build info series missing; want %q in:\n%s", want, text)
	}
	if !strings.Contains(text, "# TYPE lclgrid_build_info gauge") {
		t.Error("lclgrid_build_info lacks its TYPE header")
	}

	// Empty identity degrades to "unknown", never an empty label.
	m.SetBuildInfo("", "")
	if text := metricText(t, m); !strings.Contains(text, `lclgrid_build_info{revision="unknown",version="unknown"} 1`) {
		t.Errorf("empty identity did not render as unknown:\n%s", text)
	}
}
