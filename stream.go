package lclgrid

import (
	"context"
	"iter"
	"runtime"
	"sync"
)

// SolveStream serves an iterator of requests on a bounded worker pool
// (WithWorkers, default runtime.GOMAXPROCS(0)) and yields each result
// the moment it completes — a slow request (a cold SAT synthesis, say)
// never blocks a fast one's result. BatchItem.Index carries the 0-based
// position of the request in the input sequence, so callers that need
// input order can reassemble it (SolveBatch is exactly that collector).
//
// Memory is O(workers): requests are pulled from reqs only as workers
// free up, and results are handed to the consumer unbuffered — a huge
// (or unbounded) JSONL stream flows through without ever being resident.
// Duplicate syntheses coalesce through the engine's cache exactly as in
// SolveBatch.
//
// Cancellation and termination: when ctx is cancelled, already-started
// requests abort at their next checkpoint and already-pulled requests
// fail immediately with the context's error (carried in their
// BatchItems) — every request pulled from reqs yields exactly one item.
// Requests not yet pulled when the cancel lands are never pulled, so
// the stream terminates promptly even over an unbounded input sequence
// (SolveBatch synthesizes the missing items itself, preserving its
// one-item-per-request contract). Breaking out of the consuming loop
// stops the pool the same way: no further requests are pulled,
// in-flight SAT work is aborted via a derived context, and the
// stream's own goroutines drain. One caveat is outside the stream's
// control: the pull happens inside reqs itself, so a sequence that is
// blocked waiting for its source (a channel, a network read) keeps its
// goroutine parked until the source yields once more or ends — an
// input sequence backed by an external source should select on its own
// cancellation signal alongside the source. Per-request failures are
// recorded in their BatchItem (and mirrored as the iterator's second
// value) and never stop the stream.
func (e *Engine) SolveStream(ctx context.Context, reqs iter.Seq[SolveRequest], opts ...Option) iter.Seq2[BatchItem, error] {
	o := buildOptions(opts)
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return func(yield func(BatchItem, error) bool) {
		// The derived context aborts in-flight solver work when the
		// consumer stops early; on a normal drain it is cancelled only
		// after every worker has finished.
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		// done releases any goroutine blocked handing work forward when
		// the consumer breaks out of the loop.
		done := make(chan struct{})
		defer close(done)

		type job struct {
			index int
			req   SolveRequest
		}
		jobs := make(chan job)
		results := make(chan BatchItem)

		go func() {
			defer close(jobs)
			index := 0
			for req := range reqs {
				select {
				case jobs <- job{index: index, req: req}:
				case <-done:
					return
				case <-ctx.Done():
					// Stop pulling — the input may be unbounded and every
					// further request would only become an error item. This
					// request was already pulled, so it still gets its item.
					select {
					case results <- BatchItem{Index: index, Err: ctx.Err()}:
					case <-done:
					}
					return
				}
				index++
			}
		}()

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					var it BatchItem
					if err := ctx.Err(); err != nil {
						it = BatchItem{Index: j.index, Err: err}
					} else {
						it = e.solveItem(ctx, j.req)
						it.Index = j.index
					}
					select {
					case results <- it:
					case <-done:
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(results)
		}()

		for it := range results {
			if !yield(it, it.Err) {
				return
			}
		}
	}
}

// Reordered wraps a SolveStream so items are yielded in input order
// (ascending BatchItem.Index) instead of completion order, buffering a
// completed item only until its predecessors arrive. Every request
// pulled from the stream's input yields exactly one item, so the buffer
// always drains; peak buffer size is bounded by how far completion
// order ran ahead of input order. It is the collector both `lclgrid
// batch -ordered` and the server's /v1/batch?ordered=1 use.
func Reordered(stream iter.Seq2[BatchItem, error]) iter.Seq2[BatchItem, error] {
	return func(yield func(BatchItem, error) bool) {
		next := 0
		pending := make(map[int]BatchItem)
		for it := range stream {
			pending[it.Index] = it
			for {
				p, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				if !yield(p, p.Err) {
					return
				}
			}
		}
	}
}
