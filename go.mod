module lclgrid

go 1.24
