package lclgrid

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lclgrid/internal/core"
)

// Engine is the service front of the package: it resolves problem keys
// through a Registry and memoises expensive SAT syntheses in a
// concurrency-safe cache keyed by the canonical problem fingerprint plus
// the anchor power and window shape. Repeated and concurrent Solve calls
// for the same problem reuse one synthesized lookup table; UNSAT results
// are cached too, so the classification oracle never re-proves a failed
// shape. The zero value is not usable; construct with NewEngine.
type Engine struct {
	reg *Registry

	mu    sync.Mutex
	cache map[synthKey]*synthEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type synthKey struct {
	fp      string
	k, h, w int
}

// synthEntry is a singleflight slot: the first requester synthesizes
// while later ones wait on ready.
type synthEntry struct {
	ready chan struct{}
	alg   *core.Synthesized
	err   error
}

// NewEngine returns an engine over the given registry; nil selects
// DefaultRegistry().
func NewEngine(reg ...*Registry) *Engine {
	r := DefaultRegistry()
	if len(reg) > 0 && reg[0] != nil {
		r = reg[0]
	}
	return &Engine{reg: r, cache: make(map[synthKey]*synthEntry)}
}

// Registry returns the engine's problem registry.
func (e *Engine) Registry() *Registry { return e.reg }

// CacheStats is a snapshot of the synthesis cache counters.
type CacheStats struct {
	// Hits counts Synthesize calls served from the cache (including
	// waiters coalesced onto an in-flight synthesis).
	Hits uint64
	// Misses counts Synthesize calls that ran the SAT synthesizer; this
	// is the exact number of syntheses performed.
	Misses uint64
	// Entries is the number of cached (fingerprint, k, h, w) slots.
	Entries int
}

// CacheStats returns a snapshot of the synthesis cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	return CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load(), Entries: entries}
}

// Synthesize returns the normal-form algorithm for (p, k, h, w), running
// the SAT synthesis at most once per (fingerprint, k, h, w) across all
// goroutines; cached reports whether the result (including a cached
// UNSAT) was reused.
func (e *Engine) Synthesize(p *Problem, k, h, w int) (alg *Synthesized, cached bool, err error) {
	key := synthKey{fp: p.Fingerprint(), k: k, h: h, w: w}
	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.mu.Unlock()
		e.hits.Add(1)
		<-ent.ready
		return ent.alg, true, ent.err
	}
	ent = &synthEntry{ready: make(chan struct{})}
	e.cache[key] = ent
	e.mu.Unlock()
	e.misses.Add(1)
	ent.alg, ent.err = core.Synthesize(p, k, h, w)
	close(ent.ready)
	return ent.alg, false, ent.err
}

// Classify runs the §7 one-sided classification oracle through the
// synthesis cache: same shape schedule and semantics as ClassifyOracle,
// but failed shapes are cached, so repeated classification of the same
// problem is cheap.
func (e *Engine) Classify(p *Problem, maxK int) OracleResult {
	return core.ClassifyOracleWith(func(p *Problem, k, h, w int) (*Synthesized, error) {
		alg, _, err := e.Synthesize(p, k, h, w)
		return alg, err
	}, p, maxK)
}

// Solve resolves the problem key through the registry and runs its known
// best solver — the single service call "solve LCL problem key on torus
// t". A nil ids selects sequential identifiers; WithPower forces the
// synthesis path regardless of the registered solver.
func (e *Engine) Solve(key string, t *Torus, ids []int, opts ...Option) (*Result, error) {
	spec, err := e.reg.Lookup(key)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	var solver Solver
	if o.Power > 0 {
		if spec.Problem == nil {
			return nil, fmt.Errorf("lclgrid: %s has no SFT form to synthesize against", spec.Name)
		}
		solver = NewSynthesisSolver(e, spec.Problem(), o.Power, o.H, o.W)
	} else {
		solver = spec.Solver(e)
	}
	res, err := solver.Solve(t, ids, opts...)
	if res != nil && res.Class == ClassUnknown {
		res.Class = spec.Class
	}
	return res, err
}

// SolveProblem serves an unregistered SFT problem end to end: constant
// solutions are used when they exist, otherwise cached synthesis is tried
// up to WithMaxPower, and the Θ(n) brute force is the fallback. This is
// the generic path for user-defined problems.
func (e *Engine) SolveProblem(p *Problem, t *Torus, ids []int, opts ...Option) (*Result, error) {
	o := buildOptions(opts)
	if o.Power > 0 {
		return NewSynthesisSolver(e, p, o.Power, o.H, o.W).Solve(t, ids, opts...)
	}
	if len(p.ConstantSolutions()) > 0 {
		return (&ConstantSolver{Problem: p}).Solve(t, ids, opts...)
	}
	if oracle := e.Classify(p, o.MaxPower); oracle.Class == ClassLogStar {
		s := &SynthesisSolver{
			Problem:  p,
			Attempts: []SynthAttempt{{oracle.Alg.K, oracle.Alg.H, oracle.Alg.W}},
			Engine:   e,
		}
		return s.Solve(t, ids, opts...)
	}
	return (&GlobalSolver{Problem: p}).Solve(t, ids, opts...)
}
