package lclgrid

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lclgrid/internal/core"
)

// Engine is the service front of the package: it resolves SolveRequests
// through a Registry and memoises expensive SAT syntheses in a pluggable
// SynthCache keyed by the canonical problem fingerprint plus the anchor
// power and window shape (SynthKey). Repeated and concurrent Solve calls
// for the same problem reuse one synthesized lookup table; UNSAT results
// are cached too, so the classification oracle never re-proves a failed
// shape.
//
// The execution layer has three composable seams:
//
//   - Streaming: SolveStream serves an iterator of requests on a bounded
//     worker pool and yields each result the moment it completes;
//     SolveBatch is the order-preserving collector over it.
//   - Caching: the SynthCache behind Synthesize is chosen at
//     construction (WithCache, WithCacheCapacity, WithCacheDir) — the
//     disk-backed layer persists lookup tables across process restarts,
//     and Warm pre-synthesizes a catalogue on startup.
//   - Observability: Observers installed with WithObserver receive
//     request, synthesis and cache events from the engine and its
//     singleflight path.
//
// Every entry point takes a context.Context and honours cancellation all
// the way down into the SAT search: a cancelled request aborts an
// in-flight synthesis it owns, and a request waiting on another
// request's synthesis detaches on its own context without disturbing the
// shared work. The zero value is not usable; construct with NewEngine.
type Engine struct {
	reg          *Registry
	cache        SynthCache
	obs          []Observer
	synthWorkers int

	mu       sync.Mutex
	inflight map[SynthKey]*synthEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

// synthEntry is a singleflight slot: the first requester synthesizes
// while later ones wait on ready. In-flight slots live in the engine's
// inflight map, never in the SynthCache; a completed outcome is Put in
// the cache before the slot is retired, and an entry whose synthesis was
// aborted by its owner's context is retired without a Put — waiters
// observe the context error and re-run the election, so an abort never
// poisons anything.
type synthEntry struct {
	ready chan struct{}
	alg   *core.Synthesized
	err   error
	// failed marks an entry whose synthesis panicked: nothing was
	// cached, so waiters must not report it as a cache hit.
	failed bool
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	reg          *Registry
	cache        SynthCache
	capacity     int
	cacheDir     string
	obs          []Observer
	synthWorkers int
}

// WithRegistry selects the problem registry (default DefaultRegistry()).
func WithRegistry(r *Registry) EngineOption {
	return func(c *engineConfig) { c.reg = r }
}

// WithCache installs a custom SynthCache. It overrides WithCacheCapacity
// and is itself wrapped by WithCacheDir when both are given.
func WithCache(cache SynthCache) EngineOption {
	return func(c *engineConfig) { c.cache = cache }
}

// WithCacheCapacity bounds the default in-memory synthesis cache to n
// entries with least-recently-used eviction (n < 1 keeps it unbounded).
// Ignored when WithCache supplies an explicit cache.
func WithCacheCapacity(n int) EngineOption {
	return func(c *engineConfig) { c.capacity = n }
}

// WithCacheDir layers disk persistence under the synthesis cache:
// synthesized lookup tables (and cached UNSAT results) are serialized
// under dir and survive process restarts. It panics when the directory
// cannot be created — construction-time configuration errors should not
// be silently dropped; callers that need an error path can build the
// layer themselves with NewDiskCache and pass it via WithCache.
func WithCacheDir(dir string) EngineOption {
	return func(c *engineConfig) { c.cacheDir = dir }
}

// WithSynthWorkers bounds how many synthesis candidates the engine runs
// concurrently when a multi-attempt solve or a classification races its
// (k, h, w) shapes (default runtime.GOMAXPROCS(0)). 1 disables racing:
// candidates run strictly in schedule order, the historic sequential
// behaviour.
func WithSynthWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.synthWorkers = n }
}

// WithObserver installs an Observer; repeated options compose (every
// observer receives every event, in installation order).
func WithObserver(o Observer) EngineOption {
	return func(c *engineConfig) {
		if o != nil {
			c.obs = append(c.obs, o)
		}
	}
}

// NewEngine returns an engine configured by opts: the registry, the
// synthesis cache (unbounded in-memory by default; see WithCache,
// WithCacheCapacity and WithCacheDir) and the observers.
func NewEngine(opts ...EngineOption) *Engine {
	var cfg engineConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.reg == nil {
		cfg.reg = DefaultRegistry()
	}
	cache := cfg.cache
	if cache == nil {
		if cfg.capacity > 0 {
			cache = NewLRUCache(cfg.capacity)
		} else {
			cache = NewMemoryCache()
		}
	}
	if cfg.cacheDir != "" {
		layered, err := NewDiskCache(cfg.cacheDir, cache)
		if err != nil {
			panic(fmt.Sprintf("lclgrid: WithCacheDir(%q): %v", cfg.cacheDir, err))
		}
		cache = layered
	}
	workers := cfg.synthWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		reg:          cfg.reg,
		cache:        cache,
		obs:          cfg.obs,
		synthWorkers: workers,
		inflight:     make(map[SynthKey]*synthEntry),
	}
	if len(e.obs) > 0 {
		if en, ok := cache.(evictNotifier); ok {
			en.setOnEvict(e.observeCacheEvict)
		}
	}
	return e
}

// Registry returns the engine's problem registry.
func (e *Engine) Registry() *Registry { return e.reg }

// Cache returns the engine's synthesis cache — useful for inspecting
// the store-level counters of a bounded or disk-backed cache (the
// engine-level singleflight-aware counters are in CacheStats).
func (e *Engine) Cache() SynthCache { return e.cache }

// CacheStats returns a snapshot of the engine-level synthesis counters:
// Hits and Misses follow the singleflight semantics (waiters coalesced
// onto an in-flight synthesis count as hits; Misses is the exact number
// of SAT syntheses started), Entries and Evictions come from the
// underlying SynthCache. See the CacheStats type for the snapshot
// semantics.
func (e *Engine) CacheStats() CacheStats {
	cs := e.cache.Stats()
	return CacheStats{
		Hits:      e.hits.Load(),
		Misses:    e.misses.Load(),
		Entries:   cs.Entries,
		Evictions: cs.Evictions,
	}
}

// Evict removes the cached synthesis (including a cached UNSAT) for
// (p, k, h, w) and reports whether an entry was removed. An in-flight
// synthesis is left alone — evicting it would let a concurrent caller
// start a duplicate of work that is still running.
func (e *Engine) Evict(p *Problem, k, h, w int) bool {
	key := SynthKey{Fingerprint: p.Fingerprint(), K: k, H: h, W: w}
	e.mu.Lock()
	_, inflight := e.inflight[key]
	e.mu.Unlock()
	if inflight {
		return false
	}
	removed := e.cache.Evict(key)
	if removed {
		e.observeCacheEvict(key)
	}
	return removed
}

// Reset removes every completed cache entry and zeroes the hit/miss
// counters, returning the number of entries removed. In-flight
// syntheses are left to complete and stay cached; long-lived services
// can therefore call Reset periodically to bound cache growth without
// racing their own traffic (or bound it structurally with
// WithCacheCapacity). On a disk-backed cache Reset clears the in-memory
// layer only; the files persist.
func (e *Engine) Reset() int {
	removed := e.cache.Reset()
	e.hits.Store(0)
	e.misses.Store(0)
	return removed
}

// isCtxErr reports whether err is a context cancellation or deadline
// (the shared core predicate; the singleflight re-election below and the
// oracle's abort detection must agree on it).
func isCtxErr(err error) bool { return core.IsContextError(err) }

// withProblem attaches p to a cache-loaded algorithm: tables
// deserialized from disk carry no problem (it is function-valued), and
// the stamp must go on a copy because the cached value is shared between
// goroutines.
func withProblem(alg *Synthesized, p *Problem) *Synthesized {
	if alg == nil || alg.Problem != nil {
		return alg
	}
	stamped := *alg
	stamped.Problem = p
	return &stamped
}

// Synthesize returns the normal-form algorithm for (p, k, h, w), running
// the SAT synthesis at most once per (fingerprint, k, h, w) across all
// goroutines; cached reports whether the result (including a cached
// UNSAT) was reused. Completed outcomes live in the engine's SynthCache
// — with a disk-backed cache a table synthesized by an earlier process
// is a hit here, not a new synthesis.
//
// Cancellation: the first requester of a key owns the synthesis and runs
// it under its own ctx; cancelling that ctx aborts the SAT search, the
// dead singleflight slot is retired without entering the cache (no
// poisoned slot), and a subsequent call re-synthesizes. Waiters
// coalesced onto an in-flight synthesis detach with their own ctx's
// error the moment it is cancelled; the shared synthesis keeps running
// for the remaining waiters.
func (e *Engine) Synthesize(ctx context.Context, p *Problem, k, h, w int) (alg *Synthesized, cached bool, err error) {
	return e.synthesizeWith(ctx, p, k, h, w, nil)
}

// synthFn is a pluggable cold-path synthesizer: Synthesize passes nil
// (plain core.Synthesize), sequential sweeps pass a SynthSweep adapter so
// cache misses share one incremental solver. The fn only runs on a cache
// miss with the local (and cluster) singleflight election won, so a
// single-threaded caller's fn is never invoked concurrently.
type synthFn func(ctx context.Context, k, h, w int) (*Synthesized, error)

// synthKeyAttr renders a SynthKey as a span attribute: the stable cache
// file name when the key is well-formed, the full form otherwise.
func synthKeyAttr(key SynthKey) string {
	if name := cacheKeyName(key); name != "" {
		return name
	}
	return key.String()
}

func (e *Engine) synthesizeWith(ctx context.Context, p *Problem, k, h, w int, fn synthFn) (alg *Synthesized, cached bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	key := SynthKey{Fingerprint: p.Fingerprint(), K: k, H: h, W: w}
	// release drops the cluster-wide synthesis lease when the cache
	// extends singleflight across replicas (see leaseCoordinator). The
	// deferred call is the panic-safety net; the normal path releases
	// explicitly after the outcome is Put in the cache, so a replica
	// polling on the lease never wakes to find the value missing.
	var release func()
	defer func() {
		if release != nil {
			release()
		}
	}()
	for {
		// Fast path: a completed outcome in the cache.
		if val, ok := e.cache.Get(key); ok {
			e.hits.Add(1)
			e.observeCacheHit(key)
			traceEvent(ctx, "cache.hit", "synth_key", synthKeyAttr(key))
			return withProblem(val.Alg, p), true, val.Err
		}
		e.mu.Lock()
		if ent, ok := e.inflight[key]; ok {
			e.mu.Unlock()
			_, wsp := StartSpan(ctx, "cache.wait")
			wsp.SetAttr("synth_key", synthKeyAttr(key))
			select {
			case <-ctx.Done():
				wsp.SetAttr("outcome", "detached")
				wsp.End()
				return nil, false, ctx.Err() // detach; the synthesis continues
			case <-ent.ready:
			}
			wsp.SetAttr("outcome", "ready")
			wsp.End()
			if isCtxErr(ent.err) {
				// The owner aborted; its slot is already retired. Re-run
				// the election (we may become the owner).
				continue
			}
			if ent.failed {
				// The owner panicked; nothing was cached. Report the
				// failure without counting a hit — and without retrying,
				// which would just re-run the panicking synthesis.
				return nil, false, ent.err
			}
			e.hits.Add(1)
			e.observeCacheHit(key)
			traceEvent(ctx, "cache.hit", "synth_key", synthKeyAttr(key))
			return withProblem(ent.alg, p), true, ent.err
		}
		ent := &synthEntry{ready: make(chan struct{})}
		e.inflight[key] = ent
		e.mu.Unlock()
		// Double-check the cache: a previous owner may have completed
		// between our Get miss and taking the lock. Waiters that raced
		// onto our slot in the meantime are fed the cached outcome.
		if val, ok := e.cache.Get(key); ok {
			e.retire(key)
			ent.alg, ent.err = val.Alg, val.Err
			close(ent.ready)
			e.hits.Add(1)
			e.observeCacheHit(key)
			traceEvent(ctx, "cache.hit", "synth_key", synthKeyAttr(key))
			return withProblem(val.Alg, p), true, val.Err
		}
		// Cluster singleflight: having won the local election, contend
		// for the key cluster-wide. Either another replica's outcome
		// comes back (serve it to our waiters as a hit) or we hold the
		// cluster lease (or degraded to uncoordinated local synthesis —
		// coordination is an optimisation, never a gate).
		if lc, ok := e.cache.(leaseCoordinator); ok {
			cctx, csp := StartSpan(ctx, "lease.coordinate")
			csp.SetAttr("synth_key", synthKeyAttr(key))
			val, served, rel := lc.coordinate(cctx, key)
			if served {
				csp.SetAttr("outcome", "served")
				csp.End()
				e.retire(key)
				ent.alg, ent.err = val.Alg, val.Err
				close(ent.ready)
				e.hits.Add(1)
				e.observeCacheHit(key)
				return withProblem(val.Alg, p), true, val.Err
			}
			if rel != nil {
				csp.SetAttr("outcome", "granted")
			} else {
				csp.SetAttr("outcome", "degraded")
			}
			csp.End()
			release = rel
		}
		e.misses.Add(1)
		e.observeCacheMiss(key)
		e.observeSynthesisStart(key)
		traceEvent(ctx, "cache.miss", "synth_key", synthKeyAttr(key))
		sctx, ssp := StartSpan(ctx, "synthesis")
		ssp.SetAttr("synth_key", synthKeyAttr(key))
		start := time.Now()
		func() {
			// Panic safety: a panic below (user-supplied Problem callbacks
			// run inside the synthesis) must not leave the slot registered
			// with ready never closed — that would deadlock every later
			// request for this key. Unregister, fail the waiters, then let
			// the panic propagate to this caller.
			defer func() {
				if r := recover(); r != nil {
					e.retire(key)
					ent.err = fmt.Errorf("lclgrid: synthesis panicked: %v", r)
					ent.failed = true
					ssp.SetError(ent.err)
					ssp.End()
					e.observeSynthesisEnd(key, time.Since(start), ent.err)
					close(ent.ready)
					panic(r)
				}
			}()
			if fn != nil {
				ent.alg, ent.err = fn(sctx, k, h, w)
			} else {
				ent.alg, ent.err = core.Synthesize(sctx, p, k, h, w)
			}
		}()
		ssp.SetError(ent.err)
		if ent.alg != nil {
			// Attribute the SAT work so a slow trace names its cost:
			// conflict/decision/propagation counts straight off the solver.
			ss := ent.alg.SolverStats
			ssp.SetAttr("conflicts", strconv.Itoa(ss.Conflicts))
			ssp.SetAttr("decisions", strconv.Itoa(ss.Decisions))
			ssp.SetAttr("propagations", strconv.Itoa(ss.Propagated))
		}
		ssp.End()
		e.observeSynthesisEnd(key, time.Since(start), ent.err)
		if !isCtxErr(ent.err) {
			// Cache the completed outcome (success, UNSAT or a structural
			// failure) before retiring the slot, so no later Get can miss
			// a result that a waiter is about to observe.
			e.cache.Put(key, CachedSynthesis{Alg: ent.alg, Err: ent.err})
		}
		if release != nil {
			// Put-then-release: the shared store holds the outcome (a
			// remote-capable cache publishes synchronously in Put), so
			// replicas woken by the lease vanishing find it immediately.
			release()
			release = nil
		}
		e.retire(key)
		close(ent.ready)
		return ent.alg, false, ent.err
	}
}

// retire removes the singleflight slot for key.
func (e *Engine) retire(key SynthKey) {
	e.mu.Lock()
	delete(e.inflight, key)
	e.mu.Unlock()
}

// Classify runs the §7 one-sided classification oracle through the
// synthesis cache: same smallest-power-first schedule and one-sided
// semantics as ClassifyOracle, but the window candidates of each power
// race concurrently (bounded by WithSynthWorkers; the first lookup
// table cancels the remaining searches) and completed shapes — failed
// ones included — are cached. A non-blocking cache probe resolves
// already-known shapes before any speculative SAT work is launched, so
// re-classifying a warm problem starts zero syntheses. Cancelling ctx
// aborts the schedule; the context's error is recorded in
// OracleResult.Err.
func (e *Engine) Classify(ctx context.Context, p *Problem, maxK int) OracleResult {
	// A single-worker oracle visits its shapes strictly sequentially, so
	// cache misses can share one incremental solver: each miss extends the
	// sweep's formula and is decided under an activation assumption,
	// reusing everything learned from the previous shapes.
	var fn synthFn
	if e.synthWorkers == 1 {
		sweep := core.NewSynthSweep(p)
		fn = sweep.Synthesize
	}
	synth := func(ctx context.Context, p *Problem, k, h, w int) (*Synthesized, error) {
		alg, _, err := e.synthesizeWith(ctx, p, k, h, w, fn)
		return alg, err
	}
	probe := func(k, h, w int) bool {
		return e.cache.Contains(SynthKey{Fingerprint: p.Fingerprint(), K: k, H: h, W: w})
	}
	return core.ClassifyOracleRace(ctx, synth, probe, p, maxK, e.synthWorkers)
}

// raceSynthesize synthesizes the attempt shapes concurrently under a
// derived context, bounded by the engine's synthesis worker budget
// (WithSynthWorkers): the first shape to admit a lookup table wins and
// cancels the remaining searches, which retire their singleflight slots
// without caching (an aborted candidate proves nothing and poisons
// nothing). Workers pull attempts from an ordered queue, so the
// schedule's preference order decides which candidates start when the
// budget is smaller than the attempt list — a 1-worker budget degrades
// to exactly the historic strictly sequential sweep, never to an
// arbitrary attempt hogging the only slot. When no shape succeeds it
// returns the first non-abort failure in schedule order; a cancelled
// parent ctx returns its error.
func (e *Engine) raceSynthesize(ctx context.Context, p *Problem, attempts []SynthAttempt) (*Synthesized, SynthAttempt, bool, error) {
	workers := e.synthWorkers
	if workers > len(attempts) {
		workers = len(attempts)
	}
	if len(attempts) == 1 || workers <= 1 {
		// Strict schedule order, stop at the first success; no
		// speculative work to cancel. The reported failure is the first
		// in schedule order — the same selection the parallel path makes,
		// so the error does not depend on the worker budget. Being
		// sequential, cache misses share one incremental solver.
		var fn synthFn
		if len(attempts) > 1 {
			sweep := core.NewSynthSweep(p)
			fn = sweep.Synthesize
		}
		var firstErr error
		for _, a := range attempts {
			alg, cached, err := e.synthesizeWith(ctx, p, a.K, a.H, a.W, fn)
			if err == nil {
				return alg, a, cached, err
			}
			if isCtxErr(err) {
				return nil, SynthAttempt{}, false, err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, SynthAttempt{}, false, firstErr
	}
	type outcome struct {
		alg      *Synthesized
		cached   bool
		err      error
		panicked any
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	outs := make([]outcome, len(attempts))
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range attempts {
			select {
			case jobs <- i:
			case <-raceCtx.Done():
				return // never-started attempts are backfilled below
			}
		}
	}()
	var winner atomic.Int32
	winner.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := raceCtx.Err(); err != nil {
					outs[i].err = err
					continue
				}
				// User-supplied problem callbacks run inside the
				// synthesis; a panic must reach the race's caller, not
				// kill the process from this goroutine.
				func() {
					defer func() {
						if r := recover(); r != nil {
							outs[i].panicked = r
						}
					}()
					a := attempts[i]
					alg, cached, err := e.Synthesize(raceCtx, p, a.K, a.H, a.W)
					outs[i] = outcome{alg: alg, cached: cached, err: err}
					if err == nil {
						winner.CompareAndSwap(-1, int32(i))
						cancel() // first table wins; stop the other searches
					}
				}()
			}
		}()
	}
	wg.Wait()
	for i := range outs {
		if outs[i].panicked != nil {
			panic(outs[i].panicked)
		}
		if outs[i].alg == nil && outs[i].err == nil {
			// Never pulled from the queue: the race was over first.
			outs[i].err = raceCtx.Err()
		}
	}
	if w := winner.Load(); w >= 0 {
		return outs[w].alg, attempts[w], outs[w].cached, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, SynthAttempt{}, false, err
	}
	// No winner, no parent abort: every candidate completed with a real
	// failure. Report the first in schedule order (deterministic).
	for i := range outs {
		if err := outs[i].err; err != nil && !isCtxErr(err) {
			return nil, SynthAttempt{}, false, err
		}
	}
	return nil, SynthAttempt{}, false, ErrUnsatisfiable
}

// WarmStats summarises one Engine.Warm call.
type WarmStats struct {
	// Problems is the number of registry keys examined.
	Problems int `json:"problems"`
	// Warmed counts keys that are now backed by a cached lookup table.
	Warmed int `json:"warmed"`
	// Skipped counts keys whose best solver needs no synthesis (direct
	// algorithms, constant fills, brute force, the L_M gadget).
	Skipped int `json:"skipped"`
	// Failed counts synthesis-backed keys none of whose attempt shapes
	// admitted a table; Warm also returns an error naming them.
	Failed int `json:"failed,omitempty"`
	// Syntheses counts cold SAT syntheses performed by this call — zero
	// when everything was already cached (e.g. a disk-warmed restart).
	Syntheses int `json:"syntheses"`
}

// Warm pre-synthesizes the lookup tables behind the given registry keys
// (every registered key when none are given), so a long-lived service
// pays its SAT costs at startup instead of on first request. Keys whose
// plan hint needs no synthesis (constant fill, direct algorithms, the
// Θ(n) baseline) are skipped; unknown keys abort the sweep. Unlike live
// solves, Warm tries a spec's attempt shapes strictly in order — at
// startup there is no latency to win by racing, and sequential warming
// caches the first (preferred) shape without burning cores on
// speculative candidates. A synthesis-backed key none of whose attempt shapes admits a
// table is counted in WarmStats.Failed and reported in the returned
// error — after the rest of the sweep completes, so one unservable key
// does not leave the catalogue cold. With a disk-backed cache
// (WithCacheDir), Warm is the catalogue loader: a warmed directory
// makes every later engine start with Syntheses == 0. Cancelling ctx
// aborts the sweep with the context's error.
func (e *Engine) Warm(ctx context.Context, keys ...string) (WarmStats, error) {
	if len(keys) == 0 {
		keys = e.reg.Keys()
	}
	var stats WarmStats
	var failed []string
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		spec, err := e.reg.Lookup(key)
		if err != nil {
			return stats, err
		}
		stats.Problems++
		attempts := spec.Attempts
		if len(attempts) == 0 && spec.Oracle && spec.Problem != nil && spec.Dims == 2 {
			// Oracle specs (user-defined problems) have no synthesis hint;
			// warming walks the paper's oracle schedule so the classification
			// — a cached table, or cached UNSATs at every shape — is paid at
			// startup. Either outcome is the warm state: a conjectured-global
			// problem's negative certificates serve requests just as a table
			// does.
			attempts = oracleAttempts()
		}
		if len(attempts) == 0 || spec.Problem == nil {
			stats.Skipped++
			continue
		}
		oracleWarm := spec.Oracle
		p := spec.Problem()
		warmed := false
		// Warm is deliberately sequential, so each key's cache misses
		// share one incremental solver across its attempt shapes.
		var fn synthFn
		if len(attempts) > 1 {
			sweep := core.NewSynthSweep(p)
			fn = sweep.Synthesize
		}
		for _, a := range attempts {
			_, cached, err := e.synthesizeWith(ctx, p, a.K, a.H, a.W, fn)
			if isCtxErr(err) {
				// An aborted call ran no synthesis to completion (or only
				// waited on someone else's); it must not inflate Syntheses.
				return stats, err
			}
			if !cached {
				stats.Syntheses++
			}
			if err == nil {
				stats.Warmed++
				warmed = true
				break
			}
			// UNSAT (now cached, so the miss is not repaid) or a
			// structural failure: try the solver's next attempt shape.
		}
		if !warmed && oracleWarm {
			// Every oracle shape refused a table: the problem is conjectured
			// global, the refusals are cached, and live requests fall back to
			// the Θ(n) baseline — the key is as warm as it can be.
			stats.Warmed++
			warmed = true
		}
		if !warmed {
			stats.Failed++
			failed = append(failed, key)
		}
	}
	if len(failed) > 0 {
		return stats, fmt.Errorf("lclgrid: warm: no lookup table admitted for %s (every attempt shape failed); live requests for these keys will fail too", strings.Join(failed, ", "))
	}
	return stats, nil
}

// Solve serves one SolveRequest through the Planner → Plan → Strategy
// pipeline: the Planner resolves the problem (registry Key or inline
// Problem), torus and identifier assignment, and ranks the applicable
// strategies — constant fill, direct algorithm, cached-table probe,
// racing normal-form synthesis, Θ(n) baseline — into a Plan; the plan
// executor then runs the stages in order until one produces a Result.
// The returned Result carries the request's wall-clock duration in
// Elapsed and the per-stage outcomes in Trace (the same plan `lclgrid
// explain` prints). A cancelled ctx aborts promptly — before any work
// when already cancelled, or mid-synthesis at the next checkpoint.
// Observers see a RequestStart/RequestEnd pair for every call, a
// PlanBuilt event once the plan exists, and a StrategyStart/StrategyEnd
// pair per executed stage.
//
// The Θ(n) fallback is deliberately scoped to too-small-torus failures
// of synthesis stages: at normal-form scale the brute force is cheap.
// Direct-algorithm specs with large minimum sides (5edgecol, 680+) are
// NOT redirected — their alphabets make the SAT baseline intractable,
// so an honest error beats an open-ended solve.
func (e *Engine) Solve(ctx context.Context, req SolveRequest) (*Result, error) {
	start := time.Now()
	e.observeRequestStart(req)
	var res *Result
	var err error
	if err = ctx.Err(); err == nil {
		res, err = e.solve(ctx, req)
	}
	if res != nil {
		// Stamp the duration on a shallow copy: the pointer may still be
		// the solver's own Result, which the engine never writes through.
		stamped := *res
		stamped.Elapsed = time.Since(start)
		res = &stamped
	}
	e.observeRequestEnd(req, res, err)
	return res, err
}

// solve is the uniform execution path of every request: build the plan,
// announce it, walk it.
func (e *Engine) solve(ctx context.Context, req SolveRequest) (*Result, error) {
	_, psp := StartSpan(ctx, "plan")
	plan, err := e.Plan(req)
	if err != nil {
		psp.SetError(err)
		psp.End()
		return nil, err
	}
	psp.SetAttr("strategies", strconv.Itoa(len(plan.Strategies)))
	psp.SetAttr("class", plan.Class.String())
	psp.End()
	e.observePlanBuilt(req, plan)
	return e.executePlan(ctx, req, plan)
}
