package lclgrid

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lclgrid/internal/core"
)

// Engine is the service front of the package: it resolves SolveRequests
// through a Registry and memoises expensive SAT syntheses in a
// concurrency-safe cache keyed by the canonical problem fingerprint plus
// the anchor power and window shape. Repeated and concurrent Solve calls
// for the same problem reuse one synthesized lookup table; UNSAT results
// are cached too, so the classification oracle never re-proves a failed
// shape.
//
// Every entry point takes a context.Context and honours cancellation all
// the way down into the SAT search: a cancelled request aborts an
// in-flight synthesis it owns, and a request waiting on another
// request's synthesis detaches on its own context without disturbing the
// shared work. The zero value is not usable; construct with NewEngine.
type Engine struct {
	reg *Registry

	mu    sync.Mutex
	cache map[synthKey]*synthEntry

	hits   atomic.Uint64
	misses atomic.Uint64
}

type synthKey struct {
	fp      string
	k, h, w int
}

// synthEntry is a singleflight slot: the first requester synthesizes
// while later ones wait on ready. An entry whose synthesis was aborted by
// its owner's context is removed from the cache before ready is closed,
// so an abort never poisons the slot — waiters observe the context error
// and re-run the election.
type synthEntry struct {
	ready chan struct{}
	alg   *core.Synthesized
	err   error
	// failed marks an entry whose synthesis panicked: it was removed
	// from the cache, so waiters must not report it as a cache hit.
	failed bool
}

// NewEngine returns an engine over the given registry; nil selects
// DefaultRegistry().
func NewEngine(reg ...*Registry) *Engine {
	r := DefaultRegistry()
	if len(reg) > 0 && reg[0] != nil {
		r = reg[0]
	}
	return &Engine{reg: r, cache: make(map[synthKey]*synthEntry)}
}

// Registry returns the engine's problem registry.
func (e *Engine) Registry() *Registry { return e.reg }

// CacheStats is a snapshot of the synthesis cache counters.
//
// Snapshot semantics: Entries is read under the cache lock, while Hits
// and Misses are independent atomic counters read without it. A snapshot
// taken while solves are in flight is therefore not a single consistent
// cut — Hits+Misses may disagree with the number of Synthesize calls
// that have fully returned, and Entries may lag an in-flight miss. Each
// counter is individually monotone (until Reset) and exact once the
// engine is quiescent.
type CacheStats struct {
	// Hits counts Synthesize calls served from the cache, including
	// waiters coalesced onto an in-flight synthesis. Waiters that detach
	// on their own cancelled context are not counted.
	Hits uint64
	// Misses counts Synthesize calls that ran the SAT synthesizer; this
	// is the exact number of syntheses started (an aborted synthesis
	// counts, its entry just never enters the cache).
	Misses uint64
	// Entries is the number of cached (fingerprint, k, h, w) slots.
	Entries int
}

// CacheStats returns a snapshot of the synthesis cache counters; see the
// CacheStats type for the snapshot semantics.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	return CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load(), Entries: entries}
}

// Evict removes the cached synthesis (including a cached UNSAT) for
// (p, k, h, w) and reports whether an entry was removed. An in-flight
// synthesis is left alone — evicting it would let a concurrent caller
// start a duplicate of work that is still running.
func (e *Engine) Evict(p *Problem, k, h, w int) bool {
	key := synthKey{fp: p.Fingerprint(), k: k, h: h, w: w}
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.cache[key]
	if !ok || !ent.done() {
		return false
	}
	delete(e.cache, key)
	return true
}

// Reset removes every completed cache entry and zeroes the hit/miss
// counters, returning the number of entries removed. In-flight
// syntheses are left to complete and stay cached; long-lived services
// can therefore call Reset periodically to bound cache growth without
// racing their own traffic.
func (e *Engine) Reset() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	removed := 0
	for key, ent := range e.cache {
		if !ent.done() {
			continue
		}
		delete(e.cache, key)
		removed++
	}
	e.hits.Store(0)
	e.misses.Store(0)
	return removed
}

// done reports whether the entry's synthesis has completed (ready
// closed); it must only be called while holding e.mu or after receiving
// from ready.
func (ent *synthEntry) done() bool {
	select {
	case <-ent.ready:
		return true
	default:
		return false
	}
}

// isCtxErr reports whether err is a context cancellation or deadline
// (the shared core predicate; the singleflight re-election below and the
// oracle's abort detection must agree on it).
func isCtxErr(err error) bool { return core.IsContextError(err) }

// Synthesize returns the normal-form algorithm for (p, k, h, w), running
// the SAT synthesis at most once per (fingerprint, k, h, w) across all
// goroutines; cached reports whether the result (including a cached
// UNSAT) was reused.
//
// Cancellation: the first requester of a key owns the synthesis and runs
// it under its own ctx; cancelling that ctx aborts the SAT search, the
// dead entry is removed from the cache before waiters are woken (no
// poisoned slot), and a subsequent call re-synthesizes. Waiters
// coalesced onto an in-flight synthesis detach with their own ctx's
// error the moment it is cancelled; the shared synthesis keeps running
// for the remaining waiters.
func (e *Engine) Synthesize(ctx context.Context, p *Problem, k, h, w int) (alg *Synthesized, cached bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	key := synthKey{fp: p.Fingerprint(), k: k, h: h, w: w}
	for {
		e.mu.Lock()
		ent, ok := e.cache[key]
		if ok {
			e.mu.Unlock()
			select {
			case <-ctx.Done():
				return nil, false, ctx.Err() // detach; the synthesis continues
			case <-ent.ready:
			}
			if isCtxErr(ent.err) {
				// The owner aborted; its entry is already gone from the
				// cache. Re-run the election (we may become the owner).
				continue
			}
			if ent.failed {
				// The owner panicked; nothing was cached. Report the
				// failure without counting a hit — and without retrying,
				// which would just re-run the panicking synthesis.
				return nil, false, ent.err
			}
			e.hits.Add(1)
			return ent.alg, true, ent.err
		}
		ent = &synthEntry{ready: make(chan struct{})}
		e.cache[key] = ent
		e.mu.Unlock()
		e.misses.Add(1)
		func() {
			// Panic safety: a panic below (user-supplied Problem callbacks
			// run inside the synthesis) must not leave the entry registered
			// with ready never closed — that would deadlock every later
			// request for this key. Unregister, fail the waiters, then let
			// the panic propagate to this caller.
			defer func() {
				if r := recover(); r != nil {
					e.mu.Lock()
					delete(e.cache, key)
					e.mu.Unlock()
					ent.err = fmt.Errorf("lclgrid: synthesis panicked: %v", r)
					ent.failed = true
					close(ent.ready)
					panic(r)
				}
			}()
			ent.alg, ent.err = core.Synthesize(ctx, p, k, h, w)
		}()
		if isCtxErr(ent.err) {
			// Remove the aborted entry before waking waiters so no caller
			// can coalesce onto a poisoned slot.
			e.mu.Lock()
			delete(e.cache, key)
			e.mu.Unlock()
		}
		close(ent.ready)
		return ent.alg, false, ent.err
	}
}

// Classify runs the §7 one-sided classification oracle through the
// synthesis cache: same shape schedule and semantics as ClassifyOracle,
// but failed shapes are cached, so repeated classification of the same
// problem is cheap. Cancelling ctx aborts the schedule; the context's
// error is recorded in OracleResult.Err.
func (e *Engine) Classify(ctx context.Context, p *Problem, maxK int) OracleResult {
	return core.ClassifyOracleWith(ctx, func(ctx context.Context, p *Problem, k, h, w int) (*Synthesized, error) {
		alg, _, err := e.Synthesize(ctx, p, k, h, w)
		return alg, err
	}, p, maxK)
}

// Solve serves one SolveRequest: the problem is resolved through the
// registry (Key) or taken inline (Problem), the torus and identifier
// assignment are built from the request, and the known best solver runs
// under ctx. The returned Result carries the request's wall-clock
// duration in Elapsed. A cancelled ctx aborts promptly — before any work
// when already cancelled, or mid-synthesis at the next checkpoint.
func (e *Engine) Solve(ctx context.Context, req SolveRequest) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := e.solve(ctx, req)
	if res != nil {
		// Stamp the duration on a shallow copy: the pointer may still be
		// the solver's own Result, which the engine never writes through.
		stamped := *res
		stamped.Elapsed = time.Since(start)
		res = &stamped
	}
	return res, err
}

func (e *Engine) solve(ctx context.Context, req SolveRequest) (*Result, error) {
	switch {
	case req.Key != "" && req.Problem != nil:
		return nil, fmt.Errorf("lclgrid: request sets both Key %q and an inline Problem; choose one", req.Key)
	case req.Key == "" && req.Problem == nil:
		return nil, fmt.Errorf("lclgrid: request names no problem (set Key or Problem)")
	}
	o := req.options()
	if req.Problem != nil {
		t, err := req.torus(nil)
		if err != nil {
			return nil, err
		}
		if req.Problem.Dims() != t.Dim() {
			return nil, fmt.Errorf("lclgrid: %d-dimensional problem %s on a %d-dimensional torus", req.Problem.Dims(), req.Problem.Name(), t.Dim())
		}
		ids, err := req.ids(t)
		if err != nil {
			return nil, err
		}
		return e.solveProblem(ctx, req.Problem, t, ids, o)
	}
	spec, err := e.reg.Lookup(req.Key)
	if err != nil {
		return nil, err
	}
	t, err := req.torus(spec)
	if err != nil {
		return nil, err
	}
	if spec.Dims != 0 && spec.Dims != t.Dim() {
		return nil, fmt.Errorf("lclgrid: %s is registered for %d-dimensional grids, torus is %d-dimensional", spec.Key, spec.Dims, t.Dim())
	}
	var solver Solver
	if o.Power > 0 {
		if spec.Problem == nil {
			return nil, fmt.Errorf("lclgrid: %s has no SFT form to synthesize against", spec.Name)
		}
		solver = NewSynthesisSolver(e, spec.Problem(), o.Power, o.H, o.W)
	} else {
		solver = spec.Solver(e)
	}
	ids, err := req.ids(t)
	if err != nil {
		return nil, err
	}
	res, err := solver.Solve(ctx, t, ids, withOptions(o))
	if err != nil && o.Power == 0 && spec.Problem != nil && errors.Is(err, ErrTorusTooSmall) {
		// The registered Θ(log* n) normal form needs a larger torus than
		// the request asked for; the problem is still solvable there, so
		// serve it with the Θ(n) baseline. The Result records the solver
		// actually used; the class stays the problem's classification.
		//
		// The fallback is deliberately scoped to ErrTorusTooSmall
		// (synthesis-backed solvers): at normal-form scale the brute
		// force is cheap. Direct-algorithm specs with large minimum
		// sides (5edgecol, 680+) are NOT redirected — their alphabets
		// make the SAT baseline intractable, so an honest error beats an
		// open-ended solve.
		res, err = (&GlobalSolver{Problem: spec.Problem(), KnownClass: spec.Class}).
			Solve(ctx, t, ids, withOptions(o))
	}
	if err != nil {
		return res, err
	}
	if res != nil && res.Class == ClassUnknown && spec.Class != ClassUnknown {
		// Fill the registered classification on a copy: the solver owns
		// the Result it returned and may legitimately share or reuse it,
		// so the registry fallback must not mutate it in place.
		filled := *res
		filled.Class = spec.Class
		res = &filled
	}
	return res, nil
}

// solveProblem serves an inline (possibly unregistered) SFT problem end
// to end: constant solutions are used when they exist, otherwise cached
// synthesis is tried up to MaxPower through the classification oracle,
// and the Θ(n) brute force is the fallback — including when a
// synthesized normal form exists but needs a larger torus than the
// request asked for (same semantics as the registered-key path).
func (e *Engine) solveProblem(ctx context.Context, p *Problem, t *Torus, ids []int, o Options) (*Result, error) {
	if o.Power > 0 {
		return NewSynthesisSolver(e, p, o.Power, o.H, o.W).Solve(ctx, t, ids, withOptions(o))
	}
	if len(p.ConstantSolutions()) > 0 {
		return (&ConstantSolver{Problem: p}).Solve(ctx, t, ids, withOptions(o))
	}
	oracle := e.Classify(ctx, p, o.MaxPower)
	if oracle.Err != nil {
		return nil, oracle.Err
	}
	if oracle.Class == ClassLogStar {
		s := &SynthesisSolver{
			Problem:  p,
			Attempts: []SynthAttempt{{oracle.Alg.K, oracle.Alg.H, oracle.Alg.W}},
			Engine:   e,
		}
		res, err := s.Solve(ctx, t, ids, withOptions(o))
		if err != nil && errors.Is(err, ErrTorusTooSmall) {
			return (&GlobalSolver{Problem: p, KnownClass: ClassLogStar}).Solve(ctx, t, ids, withOptions(o))
		}
		return res, err
	}
	return (&GlobalSolver{Problem: p}).Solve(ctx, t, ids, withOptions(o))
}
