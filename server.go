package lclgrid

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Server mounts an Engine behind HTTP — the network face of the solving
// service, `lclgrid serve` on the command line. The endpoints:
//
//	POST /v1/solve     one SolveRequest JSON document → one Result JSON document
//	POST /v1/batch     JSONL SolveRequests → JSONL results, streamed in
//	                   completion order over Engine.SolveStream
//	                   (?ordered=1 restores input order)
//	POST /v1/labels    one LabelRequest → the labels of one window of an
//	                   arbitrarily large torus (up to 10^6 per side),
//	                   O(window+halo) work on a warm cache; deterministic,
//	                   so responses carry a strong ETag
//	POST /v1/export    one ExportRequest → the whole grid streamed in
//	                   row-banded JSONL (or raw int32) chunks with
//	                   bounded memory
//	POST /v1/explain   one SolveRequest → its ranked Plan, zero SAT work
//	GET  /v1/problems  the registry catalogue with plan-hint summaries
//	                   (ETag + Cache-Control; If-None-Match → 304)
//	POST /v1/problems  register a wire-form ProblemDef → key, fingerprint
//	                   and ranked Plan; idempotent on the canonical
//	                   fingerprint (see WithProblemStore for persistence)
//	GET  /v1/problems/{key}  the canonical DSL form of one problem
//	                   (user-registered, or a table-backed catalogue entry)
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus text exposition (see MetricsObserver)
//
// Production behaviours, configured with the Server options:
//
//   - Admission control: WithMaxInflight bounds the solve/batch requests
//     executing at once; excess requests are rejected immediately with
//     429 and a Retry-After header instead of queueing without bound.
//     The cheap endpoints (explain, problems, healthz, metrics) bypass
//     admission, so a saturated server stays observable.
//   - Timeouts: WithRequestTimeout derives a deadline for each solve
//     (and each batch stream) from the request's own context, so a hung
//     SAT search cannot pin a connection forever — cancellation reaches
//     the CDCL loop through the engine's context plumbing.
//   - Body limits: WithMaxBodyBytes caps request bodies; an oversized
//     solve document is rejected with 413 before it is decoded.
//   - Graceful shutdown: Serve drains in-flight requests when its
//     context is cancelled — a streaming batch completes every line —
//     and only force-closes (aborting solves through their derived
//     contexts) when WithDrainTimeout expires.
//
// A Server is an http.Handler; callers that want their own listener,
// TLS, or middleware can mount it directly and skip Serve.
type Server struct {
	engine  *Engine
	metrics *MetricsObserver
	mux     *http.ServeMux

	inflight chan struct{} // nil = unbounded admission
	timeout  time.Duration
	maxBody  int64
	workers  int
	drain    time.Duration
	ready    func() error // nil = always ready
	problems ProblemStore
	traces   *TraceBuffer // nil = tracing off
}

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

type serverConfig struct {
	metrics     *MetricsObserver
	maxInflight int
	timeout     time.Duration
	maxBody     int64
	workers     int
	drain       time.Duration
	ready       func() error
	cacheSvc    *CacheServer
	problems    ProblemStore
	traces      *TraceBuffer
}

// Server defaults. They favour a service exposed to real traffic: a
// bounded number of concurrent solves, a deadline on every one of them,
// and bodies capped well above any legitimate SolveRequest.
const (
	// DefaultMaxInflight is the default admission bound on concurrently
	// executing solve/batch requests.
	DefaultMaxInflight = 64
	// DefaultRequestTimeout is the default per-request solve deadline.
	DefaultRequestTimeout = 60 * time.Second
	// DefaultMaxBodyBytes is the default request body cap (8 MiB —
	// thousands of JSONL batch lines, or a solve document with an
	// explicit identifier assignment for a large torus).
	DefaultMaxBodyBytes = 8 << 20
	// DefaultDrainTimeout is how long Serve waits for in-flight requests
	// on graceful shutdown before force-closing them.
	DefaultDrainTimeout = 30 * time.Second
)

// WithMaxInflight bounds how many solve/batch requests execute at once;
// excess requests receive 429 with Retry-After. n <= 0 removes the bound
// (not recommended for an exposed service).
func WithMaxInflight(n int) ServerOption {
	return func(c *serverConfig) { c.maxInflight = n }
}

// WithRequestTimeout sets the deadline applied to each solve request and
// to each batch stream (0 disables the deadline).
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.timeout = d }
}

// WithMaxBodyBytes caps the request body size (n <= 0 removes the cap).
func WithMaxBodyBytes(n int64) ServerOption {
	return func(c *serverConfig) { c.maxBody = n }
}

// WithBatchWorkers bounds the worker pool each /v1/batch stream runs on
// (0 selects runtime.GOMAXPROCS(0), the SolveStream default).
func WithBatchWorkers(n int) ServerOption {
	return func(c *serverConfig) { c.workers = n }
}

// WithDrainTimeout bounds how long graceful shutdown waits for in-flight
// requests before force-closing them (0 selects DefaultDrainTimeout).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.drain = d }
}

// WithReadyCheck installs the readiness probe behind GET /readyz: the
// endpoint answers 503 (naming the returned error) until fn returns
// nil. Liveness (/healthz) and readiness are deliberately split — a
// replica warming its cache slice on boot is alive but must not receive
// traffic yet, and a supervisor that conflates the two either kills a
// healthy warming replica or routes to a cold one. Without this option
// /readyz always answers 200.
func WithReadyCheck(fn func() error) ServerOption {
	return func(c *serverConfig) { c.ready = fn }
}

// WithCacheService mounts a CacheServer under /v1/cache/ on this
// server, so a serve replica can double as the fleet's shared cache
// backend without a separate cachesvc process: point the other
// replicas' -remote-cache at "http://this-host/v1/cache". The cache
// routes bypass admission control — a replica at solve capacity must
// keep answering the (cheap) cache traffic that lets the rest of the
// fleet avoid duplicate synthesis.
func WithCacheService(cs *CacheServer) ServerOption {
	return func(c *serverConfig) { c.cacheSvc = cs }
}

// WithProblemStore installs the ProblemStore behind POST /v1/problems —
// NewDirProblemStore to persist user definitions across restarts
// (`serve -problems-dir`), or any other implementation. Without this
// option the server uses a process-local in-memory store: definitions
// still register and solve, but do not survive a restart.
func WithProblemStore(ps ProblemStore) ServerOption {
	return func(c *serverConfig) { c.problems = ps }
}

// WithServerTracing enables request tracing: every request gets a
// Trace (joining the caller's via a W3C traceparent header when one is
// present), spans are recorded through the engine's context plumbing,
// the trace id is echoed as X-Trace-Id, and completed traces land in
// buf — exposed at GET /debug/traces. Without this option requests are
// untraced and the endpoint is not mounted.
func WithServerTracing(buf *TraceBuffer) ServerOption {
	return func(c *serverConfig) { c.traces = buf }
}

// WithMetricsObserver shares a MetricsObserver between the server and
// the engine: install the same observer on the engine with WithObserver
// so the /metrics endpoint exposes engine events (syntheses, cache
// traffic, plans) alongside the HTTP-level series. Without this option
// the server creates a private observer and /metrics carries the HTTP
// series only.
func WithMetricsObserver(m *MetricsObserver) ServerOption {
	return func(c *serverConfig) { c.metrics = m }
}

// NewServer mounts the engine's endpoints on a new Server.
func NewServer(e *Engine, opts ...ServerOption) *Server {
	cfg := serverConfig{
		maxInflight: DefaultMaxInflight,
		timeout:     DefaultRequestTimeout,
		maxBody:     DefaultMaxBodyBytes,
		drain:       DefaultDrainTimeout,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.metrics == nil {
		cfg.metrics = NewMetricsObserver()
	}
	if cfg.drain <= 0 {
		cfg.drain = DefaultDrainTimeout
	}
	if cfg.problems == nil {
		cfg.problems = NewMemoryProblemStore()
	}
	s := &Server{
		engine:   e,
		metrics:  cfg.metrics,
		mux:      http.NewServeMux(),
		timeout:  cfg.timeout,
		maxBody:  cfg.maxBody,
		workers:  cfg.workers,
		drain:    cfg.drain,
		ready:    cfg.ready,
		problems: cfg.problems,
		traces:   cfg.traces,
	}
	// The cache-entries gauge reads the live engine state at scrape time.
	cfg.metrics.SetCacheEntriesFunc(func() int { return e.CacheStats().Entries })
	if cfg.maxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.maxInflight)
	}
	s.mux.Handle("POST /v1/solve", s.instrument("/v1/solve", s.admit(s.handleSolve)))
	s.mux.Handle("POST /v1/batch", s.instrument("/v1/batch", s.admit(s.handleBatch)))
	s.mux.Handle("POST /v1/labels", s.instrument("/v1/labels", s.admit(s.handleLabels)))
	s.mux.Handle("POST /v1/export", s.instrument("/v1/export", s.admit(s.handleExport)))
	s.mux.Handle("POST /v1/explain", s.instrument("/v1/explain", http.HandlerFunc(s.handleExplain)))
	s.mux.Handle("GET /v1/problems", s.instrument("/v1/problems", http.HandlerFunc(s.handleProblems)))
	s.mux.Handle("POST /v1/problems", s.instrument("/v1/problems", http.HandlerFunc(s.handleDefineProblem)))
	s.mux.Handle("GET /v1/problems/{key}", s.instrument("/v1/problems/{key}", http.HandlerFunc(s.handleProblemGet)))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /readyz", s.instrument("/readyz", http.HandlerFunc(s.handleReadyz)))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", http.HandlerFunc(s.handleMetrics)))
	if cfg.cacheSvc != nil {
		s.mux.Handle("/v1/cache/", http.StripPrefix("/v1/cache", cfg.cacheSvc))
	}
	if cfg.traces != nil {
		// Mounted raw — the trace inspector must not disturb the
		// request-metrics series it exists to explain.
		s.mux.Handle("GET /debug/traces", cfg.traces.Handler())
	}
	return s
}

// Engine returns the engine the server serves.
func (s *Server) Engine() *Engine { return s.engine }

// Metrics returns the server's metrics observer (the one passed with
// WithMetricsObserver, or the private one created without it).
func (s *Server) Metrics() *MetricsObserver { return s.metrics }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Serve accepts connections on l until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests (streaming batches
// included) run to completion, and only when WithDrainTimeout expires
// are the stragglers force-closed — which cancels their request
// contexts, so an in-flight SAT search aborts at its next checkpoint
// instead of leaking. Serve returns nil after a clean drain, the
// listener's error if accepting fails, or a drain error naming the
// timeout when requests had to be cut off.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(l) }()
	select {
	case err := <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		// The drain window closed with requests still running: force the
		// connections shut. Their request contexts cancel, the engine's
		// context plumbing aborts the solver work, and the handler
		// goroutines unwind.
		hs.Close()
		<-serveErr
		return fmt.Errorf("lclgrid: drain window %v expired with requests still in flight: %w", s.drain, err)
	}
	<-serveErr // hs.Serve has returned http.ErrServerClosed
	return nil
}

// --- middleware -------------------------------------------------------------

// instrument records the HTTP-level metrics for one route: in-flight
// gauge, per-path/status counters and the handler latency histogram.
// With tracing enabled it also roots the request's trace here — joining
// the caller's via traceparent, echoing X-Trace-Id, and depositing the
// finished trace (status attribute included) into the buffer. Only the
// /v1/ work endpoints trace: liveness/readiness probes and metric
// scrapes are high-frequency noise that would evict the traces worth
// keeping.
func (s *Server) instrument(path string, next http.Handler) http.Handler {
	traced := strings.HasPrefix(path, "/v1/")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.httpStart()
		sw := &statusWriter{ResponseWriter: w}
		if s.traces != nil && traced {
			tr := traceForRequest("serve", path, r)
			sw.Header().Set(TraceIDHeader, tr.ID())
			r = r.WithContext(ContextWithSpan(r.Context(), tr.Root()))
			defer func() {
				tr.Root().SetAttr("status", strconv.Itoa(sw.status()))
				tr.Finish(s.traces)
			}()
		}
		start := time.Now()
		next.ServeHTTP(sw, r)
		s.metrics.httpEnd(path, sw.status(), time.Since(start))
	})
}

// admit gates a handler behind the in-flight admission bound. A request
// that cannot take a slot immediately is rejected with 429 and
// Retry-After — shedding load beats queueing it unboundedly, and the
// client's backoff is the queue.
func (s *Server) admit(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.metrics.httpRejected()
				w.Header().Set("Retry-After", "1")
				httpError(w, r, http.StatusTooManyRequests,
					errors.New("lclgrid: server at capacity (max in-flight solves reached); retry after backoff"))
				return
			}
		}
		next(w, r)
	})
}

// statusWriter captures the response status for the metrics middleware.
// It forwards Flush (the batch endpoint streams) and exposes Unwrap for
// http.NewResponseController.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) status() int {
	if sw.code == 0 {
		return http.StatusOK
	}
	return sw.code
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// Flush implements http.Flusher for the streaming batch endpoint.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// --- handlers ---------------------------------------------------------------

// errorBody is the JSON error document every non-2xx response carries.
// The trace id (present when the request is traced) lets a client quote
// the exact failing request — 429/413/504 rejections included — in a
// bug report an operator can look up in /debug/traces.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

// httpError writes a JSON error document with the given status,
// stamping the request's trace id when it has one.
func httpError(w http.ResponseWriter, r *http.Request, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := errorBody{Error: err.Error()}
	if r != nil {
		body.TraceID = TraceIDFromContext(r.Context())
	}
	_ = json.NewEncoder(w).Encode(body)
}

// decodeDocument reads a single JSON document of any wire type from the
// request body, writing the HTTP error itself when the document is
// oversized, malformed, or trailed by more input.
func (s *Server) decodeDocument(w http.ResponseWriter, r *http.Request, dst any) bool {
	s.limitBodyRead(w)
	body := io.Reader(r.Body)
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, r, http.StatusRequestEntityTooLarge, fmt.Errorf("lclgrid: request body exceeds %d bytes", mbe.Limit))
		} else {
			httpError(w, r, http.StatusBadRequest, fmt.Errorf("lclgrid: bad request document: %w", err))
		}
		return false
	}
	if dec.More() {
		httpError(w, r, http.StatusBadRequest, errors.New("lclgrid: request body must be a single JSON document (use /v1/batch for JSONL)"))
		return false
	}
	return true
}

// decodeRequest reads and validates a single SolveRequest document from
// the request body, writing the HTTP error itself when the document is
// oversized, malformed, trailed by more input, or fails wire validation.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (SolveRequest, bool) {
	var req SolveRequest
	if !s.decodeDocument(w, r, &req) {
		return req, false
	}
	if err := req.Validate(); err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return req, false
	}
	return req, true
}

// solveCtx derives the per-request solve context from the connection's.
func (s *Server) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout > 0 {
		return context.WithTimeout(r.Context(), s.timeout)
	}
	return context.WithCancel(r.Context())
}

// limitBodyRead puts the request timeout on the connection's read side.
// Body reads do not observe the request context, so without this a
// client that sends half a JSON document and stalls would park the
// handler in Decode indefinitely — holding an admission slot and
// defeating -max-inflight (the slowloris the admission bound exists to
// survive). Best-effort: a transport without deadline support just
// keeps the context-level timeout.
func (s *Server) limitBodyRead(w http.ResponseWriter) {
	if s.timeout > 0 {
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(s.timeout))
	}
}

// errStatus maps a Solve error to its HTTP status: request-shaped
// failures are the client's (400), a server-side deadline is 504, a
// cancellation that was not the deadline means the client went away
// (499, the de-facto client-closed-request code — the response is dead,
// but the metrics series should not read as server timeouts), proven
// impossibility is 422, anything else 500.
func errStatus(ctx context.Context, err error) int {
	var reqErr *RequestError
	switch {
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case IsContextError(err):
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return http.StatusGatewayTimeout
		}
		return 499
	case errors.Is(err, ErrUnsolvable), errors.Is(err, ErrUnsatisfiable):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// handleSolve serves POST /v1/solve: one SolveRequest in, one Result
// out. Request-shaped failures (bad document, unknown key, invalid
// shape — the Planner's *RequestError, surfaced through Solve) are 400
// and never run a solver; proven-impossible outcomes (an unsolvable
// instance, UNSAT at every shape) are 422; the server-side deadline is
// 504 and a client disconnect 499 (see errStatus); anything else is
// 500.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	res, err := s.engine.Solve(ctx, req)
	if err != nil {
		httpError(w, r, errStatus(ctx, err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// handleExplain serves POST /v1/explain: the ranked Plan for one
// request, built with zero SAT work (`lclgrid explain` over HTTP).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	plan, err := s.engine.Plan(req)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(plan)
}

// batchLine is one JSONL record of the /v1/batch response: index and key
// echo the request; exactly one of result and error is set. A terminal
// {"error": ...} line with no index reports a mid-stream decode failure.
// TraceID carries the stream's trace id on every line when the server
// traces requests, so any line can be quoted in a bug report.
type batchLine struct {
	Index   *int    `json:"index,omitempty"`
	Key     string  `json:"key,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Error   string  `json:"error,omitempty"`
	TraceID string  `json:"trace_id,omitempty"`
}

// handleBatch serves POST /v1/batch: JSONL SolveRequests in, JSONL
// results out, streamed over Engine.SolveStream in completion order
// (each line's index names its request) and flushed per line, so a slow
// solve never delays a fast one's result. ?ordered=1 buffers just enough
// to restore input order. Per-request failures (including wire
// validation) become {"error": ...} lines and never abort the stream; a
// malformed JSONL document ends the stream with a terminal error line —
// the status is already committed at that point, so in-band is the only
// place the error can go.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	ordered := r.URL.Query().Get("ordered") == "1" || r.URL.Query().Get("ordered") == "true"
	// The read deadline covers the whole JSONL decode: a stalled
	// producer fails the in-stream Decode (emitting the terminal error
	// line below) instead of parking the handler past the batch
	// deadline with an admission slot held.
	s.limitBodyRead(w)
	body := io.Reader(r.Body)
	if s.maxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()

	// Index→key echo map; only in-flight indexes are resident, mirroring
	// the O(workers) memory of the stream itself.
	var (
		keyMu sync.Mutex
		keys  = make(map[int]string)
	)
	// decodeErr and sawEOF are written by the stream's producer
	// goroutine and read only after the stream is fully drained (the
	// stream's teardown is the happens-before edge). sawEOF
	// distinguishes "every request was read" from "the deadline stopped
	// the decode early" — the latter must leave a marker on the wire.
	var decodeErr error
	var sawEOF bool
	dec := json.NewDecoder(bufio.NewReader(body))
	reqSeq := func(yield func(SolveRequest) bool) {
		for index := 0; ; index++ {
			if ctx.Err() != nil {
				return
			}
			var req SolveRequest
			if err := dec.Decode(&req); err != nil {
				if err != io.EOF {
					decodeErr = err
				} else {
					sawEOF = true
				}
				return
			}
			keyMu.Lock()
			keys[index] = req.Key
			keyMu.Unlock()
			if !yield(req) {
				return
			}
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	tid := TraceIDFromContext(ctx)
	emit := func(it BatchItem) error {
		keyMu.Lock()
		key := keys[it.Index]
		delete(keys, it.Index)
		keyMu.Unlock()
		index := it.Index
		line := batchLine{Index: &index, Key: key, TraceID: tid}
		if it.Err != nil {
			line.Error = it.Err.Error()
		} else {
			line.Result = it.Result
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
		return rc.Flush()
	}

	stream := s.engine.SolveStream(ctx, reqSeq, WithWorkers(s.workers))
	if ordered {
		stream = Reordered(stream)
	}
	for it := range stream {
		if err := emit(it); err != nil {
			return // client gone; the derived ctx tears the pool down
		}
	}
	// The status is already committed, so stream-level failures go on
	// the wire as a terminal index-less error line: a malformed JSONL
	// document, or a deadline that stopped the decode before EOF (whose
	// unread requests would otherwise vanish silently — each dispatched
	// request already carried its own per-line error).
	switch {
	case decodeErr != nil:
		msg := fmt.Sprintf("lclgrid: bad batch document: %v", decodeErr)
		if os.IsTimeout(decodeErr) {
			// The read deadline fired mid-decode: a stalled producer, not
			// a malformed document.
			msg = fmt.Sprintf("lclgrid: batch truncated before the input was fully read: %v", decodeErr)
		}
		_ = enc.Encode(batchLine{Error: msg, TraceID: tid})
		_ = rc.Flush()
	case !sawEOF:
		err := ctx.Err()
		if err == nil {
			err = context.Canceled // consumer stopped: the client went away
		}
		_ = enc.Encode(batchLine{Error: fmt.Sprintf("lclgrid: batch truncated before the input was fully read: %v", err), TraceID: tid})
		_ = rc.Flush()
	}
}

// --- windowed labeling ------------------------------------------------------

// labelETag computes the strong ETag of a label response without
// evaluating it: every field of a LabelResponse is a deterministic
// function of the resolved request and the catalogue (synthesis is
// deterministic and label requests never race attempts), so the
// canonical form of the resolved request identifies the response. ok is
// false when the request does not resolve (the handler then reports the
// planning error through the normal path).
func (s *Server) labelETag(req LabelRequest) (string, bool) {
	lp, err := s.engine.planLabel(req)
	if err != nil {
		return "", false
	}
	identity := req.Key
	if identity == "" {
		// Inline problem_def requests have no key; the compiled problem's
		// fingerprint is the identity (two definitions normalizing to the
		// same tables serve byte-identical windows).
		identity = "def:" + lp.spec.Problem().Fingerprint()
	}
	nx, ny := lp.t.NX(), lp.t.NY()
	h := sha256.New()
	fmt.Fprintf(h, "lclgrid-labels-v1\x00%s\x00%dx%d\x00seed=%d\x00rect=%d,%d,%d,%d\x00mode=%s",
		identity, nx, ny, req.Seed,
		((req.X%nx)+nx)%nx, ((req.Y%ny)+ny)%ny, req.W, req.H, lp.mode)
	for _, a := range lp.attempts {
		fmt.Fprintf(h, "\x00k=%d,%dx%d", a.K, a.H, a.W)
	}
	return `"` + hex.EncodeToString(h.Sum(nil)[:16]) + `"`, true
}

// etagMatches reports whether the request's If-None-Match header matches
// the given strong ETag.
func etagMatches(r *http.Request, etag string) bool {
	header := r.Header.Get("If-None-Match")
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// labelCacheControl is the Cache-Control of deterministic label
// responses: cacheable by anyone, revalidated cheaply via the ETag.
const labelCacheControl = "public, max-age=3600"

// handleLabels serves POST /v1/labels: one LabelRequest in, the labels
// of one window of an arbitrarily large torus out. The response is a
// deterministic function of the request, so it carries a strong ETag
// and Cache-Control; If-None-Match revalidation answers 304 before any
// evaluation (and before any synthesis).
func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	var req LabelRequest
	if !s.decodeDocument(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if etag, ok := s.labelETag(req); ok {
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", labelCacheControl)
		if etagMatches(r, etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	res, err := s.engine.LabelWindow(ctx, req)
	if err != nil {
		httpError(w, r, errStatus(ctx, err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// exportLine is one JSONL record of the /v1/export response: a row band,
// a terminal {"done": ...} summary, or a terminal {"error": ...} line
// when the stream was cut mid-flight (the status is committed by then,
// so in-band is the only place the error can go).
type exportLine struct {
	Band  *LabelBand `json:"band,omitempty"`
	Done  bool       `json:"done,omitempty"`
	Bands int        `json:"bands,omitempty"`
	Nodes int        `json:"nodes,omitempty"`
	Error string     `json:"error,omitempty"`
}

// handleExport serves POST /v1/export: the whole grid streamed in row
// bands with bounded memory — each band is evaluated, written and
// flushed before the next is computed, and the evaluator's memo state is
// reset between bands. "jsonl" (default) frames each band as a JSON
// line; "int32" writes raw little-endian labels row-major. Graceful
// shutdown drains the stream: an in-flight export keeps emitting bands
// until it finishes or its deadline cuts it (leaving a terminal error
// line in JSONL mode, a short stream in int32 mode).
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	var req ExportRequest
	if !s.decodeDocument(w, r, &req) {
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	rc := http.NewResponseController(w)

	if req.Format == ExportFormatInt32 {
		w.Header().Set("Content-Type", "application/octet-stream")
		buf := bufio.NewWriter(w)
		err := s.engine.ExportGrid(ctx, req, func(b LabelBand) error {
			for _, lab := range b.Labels {
				var le [4]byte
				binary.LittleEndian.PutUint32(le[:], uint32(int32(lab)))
				if _, err := buf.Write(le[:]); err != nil {
					return err
				}
			}
			if err := buf.Flush(); err != nil {
				return err
			}
			return rc.Flush()
		})
		if err != nil && !headerWritten(w) {
			// Planning/synthesis failed before the first band: the status
			// is still ours to set.
			httpError(w, r, errStatus(ctx, err), err)
		}
		return
	}

	enc := json.NewEncoder(w)
	bands, nodes := 0, 0
	wroteBand := false
	err := s.engine.ExportGrid(ctx, req, func(b LabelBand) error {
		if !wroteBand {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wroteBand = true
		}
		band := b
		if err := enc.Encode(exportLine{Band: &band}); err != nil {
			return err
		}
		bands++
		nodes += len(b.Labels)
		return rc.Flush()
	})
	switch {
	case err != nil && !wroteBand:
		httpError(w, r, errStatus(ctx, err), err)
	case err != nil:
		_ = enc.Encode(exportLine{Error: fmt.Sprintf("lclgrid: export truncated: %v", err)})
		_ = rc.Flush()
	default:
		_ = enc.Encode(exportLine{Done: true, Bands: bands, Nodes: nodes})
		_ = rc.Flush()
	}
}

// headerWritten reports whether the response status is already on the
// wire (the instrument middleware's statusWriter tracks it).
func headerWritten(w http.ResponseWriter) bool {
	sw, ok := w.(*statusWriter)
	return ok && sw.code != 0
}

// problemEntry is one /v1/problems catalogue record.
type problemEntry struct {
	Key         string `json:"key"`
	Name        string `json:"name"`
	Dims        int    `json:"dims"`
	Labels      int    `json:"labels,omitempty"`
	Class       Class  `json:"class"`
	MinSide     int    `json:"min_side"`
	SideModulus int    `json:"side_modulus,omitempty"`
	Strategy    string `json:"strategy"`
	Source      string `json:"source"`
}

// problemsResponse is the /v1/problems document.
type problemsResponse struct {
	Problems []problemEntry `json:"problems"`
	Families []string       `json:"families"`
}

// handleProblems serves GET /v1/problems: the registry catalogue with
// each spec's plan-hint summary, plus the parameterised families the
// registry resolves beyond the registered keys. The document is rendered
// first so its hash can serve as a strong ETag — the catalogue only
// changes when the registry does, so HTTP caches can revalidate repeat
// reads for free.
func (s *Server) handleProblems(w http.ResponseWriter, r *http.Request) {
	specs := s.engine.Registry().Specs()
	resp := problemsResponse{
		Problems: make([]problemEntry, 0, len(specs)),
		Families: []string{"<k>col", "<k>edgecol", "orient<digits 0-4>"},
	}
	for _, spec := range specs {
		resp.Problems = append(resp.Problems, problemEntry{
			Key:         spec.Key,
			Name:        spec.Name,
			Dims:        spec.Dims,
			Labels:      spec.NumLabels,
			Class:       spec.Class,
			MinSide:     spec.MinSide,
			SideModulus: spec.SideModulus,
			Strategy:    spec.StrategySummary(s.engine),
			Source:      spec.SourceLabel(),
		})
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=300")
	if etagMatches(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// defineResponse is the POST /v1/problems document: the registered key
// (deterministic — derived from the canonical fingerprint, so every
// replica agrees), the fingerprint itself, whether this call created the
// registration, and the ranked Plan the engine would execute for it
// (built with zero SAT work, like /v1/explain).
type defineResponse struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
	Created     bool   `json:"created"`
	Plan        *Plan  `json:"plan"`
}

// handleDefineProblem serves POST /v1/problems: one wire-form ProblemDef
// in, its registration out. Registration is idempotent on the canonical
// fingerprint — re-posting a definition (or a differently-stated
// equivalent that normalizes to the same tables) returns the same key
// with created=false. New registrations answer 201, repeats 200.
func (s *Server) handleDefineProblem(w http.ResponseWriter, r *http.Request) {
	var def ProblemDef
	if !s.decodeDocument(w, r, &def) {
		return
	}
	rec, created, err := s.engine.DefineProblem(&def)
	if err != nil {
		httpError(w, r, http.StatusBadRequest, err)
		return
	}
	if err := s.problems.Put(rec); err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	plan, err := s.engine.Plan(SolveRequest{Key: rec.Key})
	if err != nil {
		httpError(w, r, errStatus(r.Context(), err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(defineResponse{
		Key: rec.Key, Fingerprint: rec.Fingerprint, Created: created, Plan: plan,
	})
}

// problemDoc is the GET /v1/problems/{key} document: the canonical DSL
// form of one problem plus its identity.
type problemDoc struct {
	Key         string      `json:"key"`
	Fingerprint string      `json:"fingerprint"`
	Source      string      `json:"source"`
	Def         *ProblemDef `json:"def"`
}

// handleProblemGet serves GET /v1/problems/{key}: the canonical DSL form
// of a user-registered problem, or the extracted table form of any
// table-backed catalogue entry (so every servable problem can be read
// back in definition form). Like the catalogue listing, the document
// only changes when the registry does, so it carries a strong ETag.
func (s *Server) handleProblemGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	doc := problemDoc{Key: key, Source: SourceUser}
	if rec, ok := s.problems.Get(key); ok {
		doc.Fingerprint, doc.Def = rec.Fingerprint, rec.Def
	} else {
		spec, err := s.engine.Registry().Lookup(key)
		if err != nil || spec.Problem == nil {
			httpError(w, r, http.StatusNotFound, fmt.Errorf("lclgrid: no problem definition for %q (unknown key, or a direct-algorithm entry with no table form)", key))
			return
		}
		p := spec.Problem()
		def, cerr := NewProblemDef(p).Canonical()
		if cerr != nil {
			httpError(w, r, http.StatusNotFound, fmt.Errorf("lclgrid: problem %q is not representable in the table DSL: %w", key, cerr))
			return
		}
		doc.Fingerprint, doc.Source, doc.Def = p.Fingerprint(), spec.SourceLabel(), def
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(doc); err != nil {
		httpError(w, r, http.StatusInternalServerError, err)
		return
	}
	sum := sha256.Sum256(buf.Bytes())
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=300")
	if etagMatches(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

// handleHealthz serves GET /healthz: pure liveness — the process is up
// and handling HTTP. Readiness (warm enough to take traffic) is the
// separate /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// handleReadyz serves GET /readyz: 200 once the WithReadyCheck probe
// passes (or none is installed), 503 with the probe's error until then.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready != nil {
		if err := s.ready(); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(map[string]string{"status": "unready", "error": err.Error()})
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ready"})
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}
