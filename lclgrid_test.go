package lclgrid_test

import (
	"context"
	"testing"
	"testing/quick"

	lclgrid "lclgrid"
)

// The tests below exercise the public facade end to end, the way a
// downstream user would.

func TestPublicTopology(t *testing.T) {
	if _, err := lclgrid.NewTorus(); err == nil {
		t.Error("NewTorus() should fail without dimensions")
	}
	g, err := lclgrid.NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 64 || g.Dim() != 2 {
		t.Error("torus shape wrong")
	}
	if lclgrid.Square(5).N() != 25 || lclgrid.Cycle(7).N() != 7 {
		t.Error("constructors wrong")
	}
	if lclgrid.Diameter(lclgrid.Square(8)) != 8 {
		t.Error("diameter wrong")
	}
}

func TestPublicSynthesisPipeline(t *testing.T) {
	p := lclgrid.VertexColoring(5, 2)
	h, w := lclgrid.DefaultWindow(1)
	alg, err := lclgrid.Synthesize(context.Background(), p, 1, h, w)
	if err != nil {
		t.Fatal(err)
	}
	g := lclgrid.Square(16)
	out, rounds, err := alg.Run(g, lclgrid.PermutedIDs(g.N(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, out); err != nil {
		t.Fatal(err)
	}
	if rounds.Total() <= 0 {
		t.Error("no rounds accounted")
	}
}

func TestPublicClassifyOracle(t *testing.T) {
	if res := lclgrid.ClassifyOracle(context.Background(), lclgrid.IndependentSet(2), 1); res.Class != lclgrid.ClassO1 {
		t.Errorf("independent set: %v", res.Class)
	}
	if res := lclgrid.ClassifyOracle(context.Background(), lclgrid.VertexColoring(5, 2), 1); res.Class != lclgrid.ClassLogStar {
		t.Errorf("5-colouring: %v", res.Class)
	}
	if res := lclgrid.ClassifyOracle(context.Background(), lclgrid.VertexColoring(2, 2), 1); res.Class != lclgrid.ClassUnknown {
		t.Errorf("2-colouring: %v", res.Class)
	}
}

func TestPublicAnchorsProperty(t *testing.T) {
	// For every k and seed, anchors form an independent, dominating set
	// of the k-th power.
	g := lclgrid.Square(15)
	f := func(kRaw uint8, seed int64) bool {
		k := 1 + int(kRaw%3)
		var r lclgrid.Rounds
		set := lclgrid.Anchors(g, k, lclgrid.L1, lclgrid.PermutedIDs(g.N(), seed), &r)
		for u := 0; u < g.N(); u++ {
			nearest := 1 << 30
			for v := 0; v < g.N(); v++ {
				if !set[v] || v == u {
					continue
				}
				if d := g.Dist(u, v, lclgrid.L1); d < nearest {
					nearest = d
				}
			}
			if set[u] && nearest <= k {
				return false // not independent
			}
			if !set[u] && nearest > k {
				return false // not dominated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestPublicCyclePipeline(t *testing.T) {
	p := lclgrid.CycleThreeColoring()
	alg, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	c := lclgrid.Cycle(40)
	out, _, err := alg.Run(c, lclgrid.PermutedIDs(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(c, out); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCustomProblem(t *testing.T) {
	// A user-defined problem: "no two horizontally adjacent nodes share a
	// label" with 3 labels; vertically unconstrained. Constant columns
	// exist, so it is not trivial horizontally but solvable.
	p := lclgrid.NewProblem("row 3-colouring", []string{"a", "b", "c"}, 2,
		func(dim, a, b int) bool { return dim == 1 || a != b }, nil)
	g := lclgrid.Square(9)
	sol, ok, err := lclgrid.SolveGlobal(context.Background(), p, g)
	if !ok || err != nil {
		t.Fatalf("row colouring should be solvable (err=%v)", err)
	}
	if err := p.Verify(g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestPublicLMPipeline(t *testing.T) {
	m := lclgrid.HaltingWriter(1)
	p := lclgrid.LM(m)
	g := lclgrid.Square(16) // tile size 4(s+1) = 8 divides 16
	labels, err := p.SolveLattice(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, labels); err != nil {
		t.Fatal(err)
	}
	if err := lclgrid.LM(lclgrid.RightLooper()).Verify(g, labels); err == nil {
		t.Error("looper must reject anchored labelling")
	}
}

func TestPublicInvariants(t *testing.T) {
	g := lclgrid.Square(9)
	colors := make([]int, g.N())
	for v := range colors {
		x, y := g.XY(v)
		colors[v] = (x+y)%3 + 1
	}
	aux := lclgrid.BuildAux(g, lclgrid.MakeGreedy(g, colors))
	s, err := aux.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if s%2 == 0 {
		t.Error("invariant must be odd on odd torus")
	}
}

func TestPublicLogStar(t *testing.T) {
	if lclgrid.LogStar(65536) != 4 {
		t.Error("LogStar wrong")
	}
}
