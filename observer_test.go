package lclgrid_test

import (
	"sync"
	"testing"
	"time"

	lclgrid "lclgrid"
)

// TestCountingObserver walks one engine lifecycle past a
// CountingObserver and checks every counter: cold solve (miss +
// synthesis), warm solve (hit), a too-small-torus fallback, an evict
// and a failing request.
func TestCountingObserver(t *testing.T) {
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&c))

	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	counts := c.Counts()
	if counts.Requests != 2 || counts.RequestErrors != 0 {
		t.Errorf("requests = %d/%d errors, want 2/0", counts.Requests, counts.RequestErrors)
	}
	if counts.Syntheses != 1 || counts.CacheMisses != 1 {
		t.Errorf("syntheses/misses = %d/%d, want 1/1", counts.Syntheses, counts.CacheMisses)
	}
	if counts.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", counts.CacheHits)
	}
	if counts.SynthesisTime <= 0 {
		t.Error("synthesis time not accumulated")
	}

	// 4col below the normal form's minimum side redirects to the Θ(n)
	// baseline: a Fallback event.
	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "4col", N: 16}); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().Fallbacks; got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}

	if !eng.Evict(lclgrid.VertexColoring(5, 2), 1, 3, 2) {
		t.Fatal("evict found no entry")
	}
	if got := c.Counts().CacheEvicts; got != 1 {
		t.Errorf("evicts = %d, want 1", got)
	}

	if _, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "nope"}); err == nil {
		t.Fatal("unknown key succeeded")
	}
	if got := c.Counts().RequestErrors; got != 1 {
		t.Errorf("request errors = %d, want 1", got)
	}
}

// TestCountingObserverFleetParity checks the counters added for
// event-parity with the MetricsObserver: windowed label requests flow
// through the real WindowObserver seam, and the remote-cache/gateway
// mirrors count what they are handed.
func TestCountingObserverFleetParity(t *testing.T) {
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&c))

	if _, err := eng.LabelWindow(bg, lclgrid.LabelRequest{
		Key: "mis", Sides: []int{100000, 100000}, X: 42, Y: 7, W: 6, H: 4,
	}); err != nil {
		t.Fatal(err)
	}
	counts := c.Counts()
	if counts.Windows != 1 || counts.WindowErrors != 0 {
		t.Errorf("windows = %d/%d errors, want 1/0", counts.Windows, counts.WindowErrors)
	}
	if counts.WindowTime <= 0 {
		t.Error("window time not accumulated")
	}

	// A rejected window (absurd dimensions) is an error event.
	if _, err := eng.LabelWindow(bg, lclgrid.LabelRequest{
		Key: "mis", Sides: []int{100000, 100000}, W: 1 << 21, H: 1,
	}); err == nil {
		t.Fatal("oversized window succeeded")
	}
	if got := c.Counts().WindowErrors; got != 1 {
		t.Errorf("window errors = %d, want 1", got)
	}

	// The remote-cache and gateway hooks are direct mirrors.
	c.RemoteCacheOp("get", "hit", time.Millisecond)
	c.RemoteCacheOp("get", "error", time.Millisecond)
	c.RemoteCacheDegraded()
	c.GatewayRequest("/v1/solve", "shard1:8081", 200)
	c.GatewayRetry()
	c.GatewayError()
	counts = c.Counts()
	if counts.RemoteOps != 2 || counts.RemoteOpErrors != 1 || counts.RemoteDegraded != 1 {
		t.Errorf("remote ops = %d/%d errors/%d degraded, want 2/1/1",
			counts.RemoteOps, counts.RemoteOpErrors, counts.RemoteDegraded)
	}
	if counts.GatewayRequests != 1 || counts.GatewayRetries != 1 || counts.GatewayErrors != 1 {
		t.Errorf("gateway = %d/%d/%d, want 1/1/1",
			counts.GatewayRequests, counts.GatewayRetries, counts.GatewayErrors)
	}
}

// TestObserverLRUEviction: a capacity eviction inside the bounded cache
// surfaces as a CacheEvict event even though the engine never called
// Evict.
func TestObserverLRUEviction(t *testing.T) {
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithCacheCapacity(1), lclgrid.WithObserver(&c))
	if _, _, err := eng.Synthesize(bg, lclgrid.VertexColoring(5, 2), 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Synthesize(bg, lclgrid.VertexColoring(6, 2), 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().CacheEvicts; got != 1 {
		t.Errorf("capacity eviction not observed: evicts = %d, want 1", got)
	}
}

// eventObserver records the ordered event names for one key, to pin the
// miss → start → end sequencing contract.
type eventObserver struct {
	lclgrid.NopObserver
	mu     sync.Mutex
	events []string
}

func (o *eventObserver) record(ev string) {
	o.mu.Lock()
	o.events = append(o.events, ev)
	o.mu.Unlock()
}

func (o *eventObserver) SynthesisStart(lclgrid.SynthKey) { o.record("synth-start") }
func (o *eventObserver) SynthesisEnd(_ lclgrid.SynthKey, _ time.Duration, _ error) {
	o.record("synth-end")
}
func (o *eventObserver) CacheHit(lclgrid.SynthKey)  { o.record("hit") }
func (o *eventObserver) CacheMiss(lclgrid.SynthKey) { o.record("miss") }

// TestObserverEventOrder: a cold synthesis emits miss, synth-start,
// synth-end in that order, then a warm lookup emits hit — and multiple
// observers both see everything.
func TestObserverEventOrder(t *testing.T) {
	var seq eventObserver
	var c lclgrid.CountingObserver
	eng := lclgrid.NewEngine(lclgrid.WithObserver(&seq), lclgrid.WithObserver(&c))
	p := lclgrid.VertexColoring(5, 2)
	if _, _, err := eng.Synthesize(bg, p, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Synthesize(bg, p, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	want := []string{"miss", "synth-start", "synth-end", "hit"}
	seq.mu.Lock()
	got := append([]string(nil), seq.events...)
	seq.mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
	counts := c.Counts()
	if counts.CacheMisses != 1 || counts.CacheHits != 1 || counts.Syntheses != 1 {
		t.Errorf("second observer saw %+v, want 1 miss / 1 hit / 1 synthesis", counts)
	}
}
