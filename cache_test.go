package lclgrid_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"testing"

	lclgrid "lclgrid"
)

// TestLRUCacheBounds: a capacity-bounded engine cache evicts the
// least-recently-used table and re-synthesizes it on demand.
func TestLRUCacheBounds(t *testing.T) {
	eng := lclgrid.NewEngine(lclgrid.WithCacheCapacity(1))
	p5 := lclgrid.VertexColoring(5, 2)
	p6 := lclgrid.VertexColoring(6, 2)
	if _, _, err := eng.Synthesize(bg, p5, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Synthesize(bg, p6, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	stats := eng.CacheStats()
	if stats.Entries != 1 {
		t.Errorf("entries = %d, want the capacity bound 1", stats.Entries)
	}
	if stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", stats.Evictions)
	}
	// p6 is resident, p5 was evicted.
	if _, cached, err := eng.Synthesize(bg, p6, 1, 3, 2); err != nil || !cached {
		t.Errorf("most recent entry not resident: cached=%v err=%v", cached, err)
	}
	if _, cached, err := eng.Synthesize(bg, p5, 1, 3, 2); err != nil || cached {
		t.Errorf("evicted entry served from cache: cached=%v err=%v", cached, err)
	}
}

// TestLRUCacheRecency: a Get refreshes recency, so the hot entry
// survives an insertion at capacity.
func TestLRUCacheRecency(t *testing.T) {
	cache := lclgrid.NewLRUCache(2)
	a := lclgrid.SynthKey{Fingerprint: "a", K: 1, H: 3, W: 2}
	b := lclgrid.SynthKey{Fingerprint: "b", K: 1, H: 3, W: 2}
	c := lclgrid.SynthKey{Fingerprint: "c", K: 1, H: 3, W: 2}
	cache.Put(a, lclgrid.CachedSynthesis{Err: lclgrid.ErrUnsatisfiable})
	cache.Put(b, lclgrid.CachedSynthesis{Err: lclgrid.ErrUnsatisfiable})
	if _, ok := cache.Get(a); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	cache.Put(c, lclgrid.CachedSynthesis{Err: lclgrid.ErrUnsatisfiable})
	if _, ok := cache.Get(a); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := cache.Get(b); ok {
		t.Error("least recently used entry survived the capacity bound")
	}
	if s := cache.Stats(); s.Entries != 2 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 2 entries, 1 eviction", s)
	}
}

// TestDiskCacheRoundTrip is the persistence acceptance contract: a
// fresh engine over a warmed cache directory re-solves a previously
// synthesized problem with zero syntheses (Misses == 0), the
// process-restart case being modelled by constructing a new engine.
func TestDiskCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	req := lclgrid.SolveRequest{Key: "5col", N: 16, Seed: 3}

	eng1 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	res1, err := eng1.Solve(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := eng1.CacheStats().Misses; got != 1 {
		t.Fatalf("cold engine performed %d syntheses, want 1", got)
	}

	// "Restart": a brand-new engine sharing only the directory.
	eng2 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	res2, err := eng2.Solve(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	stats := eng2.CacheStats()
	if stats.Misses != 0 {
		t.Errorf("disk-warmed engine performed %d syntheses, want 0", stats.Misses)
	}
	if stats.Hits != 1 {
		t.Errorf("disk-warmed engine hits = %d, want 1", stats.Hits)
	}
	if !res2.CacheHit {
		t.Error("disk-served result does not record the cache hit")
	}
	if res2.Verification != lclgrid.Verified {
		t.Errorf("disk-served result not verified: %v", res2)
	}
	if res2.Rounds != res1.Rounds || !slices.Equal(res1.Labels, res2.Labels) {
		t.Errorf("disk-served labelling differs from the synthesized one:\n %v\n %v", res1, res2)
	}
}

// TestDiskCacheUnsatPersists: cached UNSAT outcomes survive restarts
// too, so a disk-warmed classification never re-proves a failed shape.
func TestDiskCacheUnsatPersists(t *testing.T) {
	dir := t.TempDir()
	p4 := lclgrid.VertexColoring(4, 2)

	eng1 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	if _, _, err := eng1.Synthesize(bg, p4, 1, 3, 2); !errors.Is(err, lclgrid.ErrUnsatisfiable) {
		t.Fatalf("4col at k=1: err = %v, want ErrUnsatisfiable", err)
	}

	eng2 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	_, cached, err := eng2.Synthesize(bg, p4, 1, 3, 2)
	if !errors.Is(err, lclgrid.ErrUnsatisfiable) || !cached {
		t.Errorf("restarted engine: cached=%v err=%v, want a cached UNSAT", cached, err)
	}
	if got := eng2.CacheStats().Misses; got != 0 {
		t.Errorf("restarted engine re-proved the UNSAT shape (%d syntheses)", got)
	}
}

// TestDiskCacheCorruptFile: a corrupt cache file is a miss, not an
// error — the engine re-synthesizes and heals the file.
func TestDiskCacheCorruptFile(t *testing.T) {
	dir := t.TempDir()
	req := lclgrid.SolveRequest{Key: "5col", N: 16}
	if _, err := lclgrid.NewEngine(lclgrid.WithCacheDir(dir)).Solve(bg, req); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.synth.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v (err %v), want exactly 1", files, err)
	}
	if err := os.WriteFile(files[0], []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	res, err := eng.Solve(bg, req)
	if err != nil {
		t.Fatalf("solve over a corrupt cache file: %v", err)
	}
	if res.Verification != lclgrid.Verified {
		t.Errorf("result not verified: %v", res)
	}
	if got := eng.CacheStats().Misses; got != 1 {
		t.Errorf("corrupt file served without a synthesis (misses = %d, want 1)", got)
	}
	// The healed file serves the next restart.
	eng3 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	if _, err := eng3.Solve(bg, req); err != nil {
		t.Fatal(err)
	}
	if got := eng3.CacheStats().Misses; got != 0 {
		t.Errorf("healed file not served (misses = %d, want 0)", got)
	}
}

// TestDiskCacheEvictRemovesFile: Evict reaches through to the disk, so
// an evicted table is really gone across restarts.
func TestDiskCacheEvictRemovesFile(t *testing.T) {
	dir := t.TempDir()
	p5 := lclgrid.VertexColoring(5, 2)
	eng1 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	if _, _, err := eng1.Synthesize(bg, p5, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	if !eng1.Evict(p5, 1, 3, 2) {
		t.Fatal("Evict reported no entry")
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*.synth.json")); len(files) != 0 {
		t.Errorf("cache files after Evict: %v, want none", files)
	}
	eng2 := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	if _, cached, err := eng2.Synthesize(bg, p5, 1, 3, 2); err != nil || cached {
		t.Errorf("evicted table still served: cached=%v err=%v", cached, err)
	}
}

// TestEngineWarm: Warm pre-synthesizes the synthesis-backed catalogue
// keys, skips the rest, fails on unknown keys, and reports zero
// syntheses on a second pass.
func TestEngineWarm(t *testing.T) {
	eng := lclgrid.NewEngine()
	ws, err := eng.Warm(bg, "5col", "mis", "is", "3col")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Problems != 4 || ws.Warmed != 2 || ws.Skipped != 2 {
		t.Errorf("stats = %+v, want 4 problems, 2 warmed (5col, mis), 2 skipped (is, 3col)", ws)
	}
	if ws.Syntheses != 2 {
		t.Errorf("syntheses = %d, want 2", ws.Syntheses)
	}
	again, err := eng.Warm(bg, "5col", "mis")
	if err != nil {
		t.Fatal(err)
	}
	if again.Syntheses != 0 || again.Warmed != 2 {
		t.Errorf("re-warm stats = %+v, want 0 syntheses, 2 warmed", again)
	}
	// Warmed solves are pure cache hits.
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16})
	if err != nil || !res.CacheHit {
		t.Errorf("post-warm solve: err=%v cacheHit=%v", err, res.CacheHit)
	}
	if _, err := eng.Warm(bg, "nope"); err == nil {
		t.Error("warming an unknown key must fail")
	}
	// A cancelled context aborts the sweep with its error.
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := eng.Warm(ctx, "5col"); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled warm: err = %v, want context.Canceled", err)
	}
}

// TestEngineWarmReportsUnwarmableKeys: a synthesis-backed key none of
// whose attempt shapes admits a table is not silently "examined" — it
// is counted in Failed and named in the returned error, after the rest
// of the sweep completed.
func TestEngineWarmReportsUnwarmableKeys(t *testing.T) {
	reg := lclgrid.DefaultRegistry()
	if err := reg.Register(&lclgrid.ProblemSpec{
		Key: "doomed", Name: "doomed", Class: lclgrid.ClassLogStar,
		Problem: func() *lclgrid.Problem { return lclgrid.VertexColoring(4, 2) },
		// 4-colouring is UNSAT at k=1 with 3×2 windows.
		Attempts: []lclgrid.SynthAttempt{{K: 1, H: 3, W: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	eng := lclgrid.NewEngine(lclgrid.WithRegistry(reg))
	ws, err := eng.Warm(bg, "doomed", "5col")
	if err == nil || !strings.Contains(err.Error(), "doomed") {
		t.Errorf("err = %v, want an error naming the unwarmable key", err)
	}
	if ws.Failed != 1 {
		t.Errorf("Failed = %d, want 1", ws.Failed)
	}
	if ws.Warmed != 1 {
		t.Errorf("Warmed = %d, want 1 — the sweep must finish past the failed key", ws.Warmed)
	}
}

// TestCacheChurnRace hammers Synthesize from several goroutines while
// others Evict and Reset concurrently — the cache-churn soak the
// singleflight redesign must survive under -race. Correctness here is
// "no race, no deadlock, no panic, and every synthesis outcome is the
// right one for its key".
func TestCacheChurnRace(t *testing.T) {
	eng := lclgrid.NewEngine(lclgrid.WithCacheCapacity(2))
	problems := []*lclgrid.Problem{
		lclgrid.VertexColoring(5, 2),
		lclgrid.VertexColoring(6, 2),
		lclgrid.VertexColoring(7, 2),
	}
	unsat := lclgrid.VertexColoring(4, 2) // UNSAT at k=1
	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p := problems[(g+i)%len(problems)]
				alg, _, err := eng.Synthesize(bg, p, 1, 3, 2)
				if err != nil || alg == nil {
					errs <- err
					return
				}
				if _, _, err := eng.Synthesize(bg, unsat, 1, 3, 2); !errors.Is(err, lclgrid.ErrUnsatisfiable) {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds*len(problems); i++ {
			eng.Evict(problems[i%len(problems)], 1, 3, 2)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			eng.Reset()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("churn race produced a wrong outcome: %v", err)
	}
	// The engine still serves correctly after the churn.
	res, err := eng.Solve(bg, lclgrid.SolveRequest{Key: "5col", N: 16})
	if err != nil || res.Verification != lclgrid.Verified {
		t.Fatalf("post-churn solve: res=%v err=%v", res, err)
	}
}

// TestDiskCacheSharedDirChurn: two engines over one directory with
// concurrent warms and evictions stay consistent (atomic writes mean a
// reader never sees a torn file).
func TestDiskCacheSharedDirChurn(t *testing.T) {
	dir := t.TempDir()
	p5 := lclgrid.VertexColoring(5, 2)
	engA := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	engB := lclgrid.NewEngine(lclgrid.WithCacheDir(dir))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, eng := range []*lclgrid.Engine{engA, engB} {
		wg.Add(1)
		go func(e *lclgrid.Engine) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if alg, _, err := e.Synthesize(bg, p5, 1, 3, 2); err != nil || alg == nil {
					errs <- err
					return
				}
				e.Evict(p5, 1, 3, 2)
			}
		}(eng)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("shared-directory churn failed: %v", err)
	}
}

// TestNewEngineCustomCache: WithCache installs the caller's SynthCache
// and the engine routes every completed synthesis through it.
func TestNewEngineCustomCache(t *testing.T) {
	cache := lclgrid.NewMemoryCache()
	eng := lclgrid.NewEngine(lclgrid.WithCache(cache))
	p5 := lclgrid.VertexColoring(5, 2)
	if _, _, err := eng.Synthesize(bg, p5, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
	key := lclgrid.SynthKey{Fingerprint: p5.Fingerprint(), K: 1, H: 3, W: 2}
	val, ok := cache.Get(key)
	if !ok || val.Alg == nil || val.Err != nil {
		t.Fatalf("custom cache does not hold the synthesis: ok=%v val=%+v", ok, val)
	}
	// A table planted in the cache is served without a synthesis.
	eng2 := lclgrid.NewEngine(lclgrid.WithCache(cache))
	if _, cached, err := eng2.Synthesize(bg, p5, 1, 3, 2); err != nil || !cached {
		t.Errorf("planted table not served: cached=%v err=%v", cached, err)
	}
	if got := eng2.CacheStats().Misses; got != 0 {
		t.Errorf("engine over a warm custom cache synthesized %d times", got)
	}
}

// TestWithCacheDirPanicsOnBadDir pins the documented construction-time
// failure mode: an unusable cache directory is a configuration error.
func TestWithCacheDirPanicsOnBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Error("WithCacheDir over a regular file did not panic")
		} else if !strings.Contains(r.(string), "WithCacheDir") {
			t.Errorf("panic %v does not name WithCacheDir", r)
		}
	}()
	lclgrid.NewEngine(lclgrid.WithCacheDir(filepath.Join(file, "sub")))
}
