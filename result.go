package lclgrid

import (
	"fmt"
	"time"
)

// VerifyStatus records whether a Result's labelling was checked against
// the problem definition.
type VerifyStatus int

const (
	// Unverified means verification was skipped (WithVerify(false)).
	Unverified VerifyStatus = iota
	// Verified means the labelling passed the problem's checker.
	Verified
	// VerifyFailed means the labelling was rejected; solvers return an
	// error alongside, so a VerifyFailed Result is only seen by callers
	// that inspect partial results.
	VerifyFailed
)

// String implements fmt.Stringer.
func (s VerifyStatus) String() string {
	switch s {
	case Verified:
		return "verified"
	case VerifyFailed:
		return "verification failed"
	default:
		return "unverified"
	}
}

// verifyTokens are the stable wire names used by the JSON encoding.
var verifyTokens = map[VerifyStatus]string{
	Unverified:   "unverified",
	Verified:     "verified",
	VerifyFailed: "failed",
}

// MarshalText encodes the status as its wire token ("unverified",
// "verified", "failed"), making VerifyStatus round-trippable through
// encoding/json.
func (s VerifyStatus) MarshalText() ([]byte, error) {
	tok, ok := verifyTokens[s]
	if !ok {
		return nil, fmt.Errorf("lclgrid: cannot marshal invalid verify status %d", int(s))
	}
	return []byte(tok), nil
}

// UnmarshalText decodes a wire token produced by MarshalText.
func (s *VerifyStatus) UnmarshalText(b []byte) error {
	for st, tok := range verifyTokens {
		if tok == string(b) {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("lclgrid: unknown verify status token %q", b)
}

// Result is the structured outcome of a Solver run: the labelling, the
// exact round account, the complexity class of the problem, the solver
// that produced it and its verification status. It is the uniform return
// shape of every solver adapter and of Engine.Solve, and it is JSON
// round-trippable (Class and Verification marshal as stable text tokens;
// Decoded is solver-native and excluded from the wire form).
type Result struct {
	// Problem is the display name of the problem instance.
	Problem string `json:"problem"`
	// Solver names the algorithm that produced the labelling.
	Solver string `json:"solver"`
	// Class is the complexity class of the problem: what the run proves
	// (a successful synthesis proves Θ(log* n)) or the paper's known
	// classification for the registered problem.
	Class Class `json:"class"`
	// Labels is the labelling in the problem's SFT alphabet, indexed by
	// node. It is nil for problems without an SFT encoding in this
	// codebase (the L_M gadget); Decoded then carries the labelling.
	Labels []int `json:"labels,omitempty"`
	// Decoded optionally carries the solver-native structure: a
	// *lclgrid.EdgeColors for edge colourings, []lm.Label for L_M. It is
	// not part of the JSON wire form.
	Decoded any `json:"-"`
	// Rounds is the exact LOCAL round account of the run, including
	// power-graph simulation overheads.
	Rounds int `json:"rounds"`
	// Verification reports whether the labelling was checked.
	Verification VerifyStatus `json:"verification"`
	// CacheHit reports that the run reused an engine-cached synthesis
	// instead of re-running the SAT synthesizer.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Note is a short solver-specific detail for humans (chosen
	// parameters, fallback paths).
	Note string `json:"note,omitempty"`
	// Elapsed is the wall-clock duration of the request, stamped by
	// Engine.Solve and Engine.SolveBatch (zero when the solver adapter is
	// called directly). It marshals as integer nanoseconds.
	Elapsed time.Duration `json:"elapsed_ns,omitempty"`
	// Trace records the fate of every stage of the Plan the engine
	// executed for the request — skipped strategies, failed attempts and
	// the stage that produced this result, in plan order. It is stamped
	// by Engine.Solve only (nil when a solver adapter is called
	// directly) and is deliberately excluded from Result's wire form so
	// service output is stable; each TraceStep is itself
	// JSON-marshallable (see the TraceStep schema), so callers that want
	// the trace on the wire marshal res.Trace explicitly. `lclgrid
	// explain` prints the corresponding plan without solving.
	Trace []TraceStep `json:"-"`
}

// String implements fmt.Stringer with a one-line summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s via %s: %s, %d rounds, %s", r.Problem, r.Solver, r.Class, r.Rounds, r.Verification)
	if r.Note != "" {
		s += " (" + r.Note + ")"
	}
	return s
}

// Options collects the per-call knobs of Solver.Solve and the batch
// execution knobs of Engine.SolveBatch. Construct with the With*
// functional options; zero knobs select the registered solver's
// defaults. Request-level knobs arrive through SolveRequest fields when
// solving through Engine.Solve.
type Options struct {
	// Verify enables checking the labelling against the problem
	// definition (default true).
	Verify bool
	// Power forces the synthesis path with this anchor power; 0 keeps
	// the solver's default strategy.
	Power int
	// H, W override the anchor window shape when Power is set; 0 selects
	// DefaultWindow(Power).
	H, W int
	// MaxPower bounds the powers tried by auto-classification solvers
	// (default 3, the paper's largest).
	MaxPower int
	// Ell is the §8 ball parameter for the direct 4-colouring; 0 retries
	// automatically.
	Ell int
	// EdgeParams are the §10 constants; the zero value selects the
	// paper's defaults.
	EdgeParams EdgeColorParams
	// MaxSteps bounds the Turing-machine simulation of L_M solvers
	// (default 100).
	MaxSteps int
	// Workers bounds the worker pool of Engine.SolveBatch; 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Option is a functional option for Solver.Solve (all knobs) and
// Engine.SolveBatch (batch-level knobs only — WithWorkers; per-request
// knobs travel inside each SolveRequest).
type Option func(*Options)

func buildOptions(opts []Option) Options {
	o := Options{Verify: true, MaxPower: 3, MaxSteps: 100}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// withOptions replaces the whole option set at once; the engine uses it
// to hand a SolveRequest's resolved options to a solver adapter.
func withOptions(o Options) Option { return func(dst *Options) { *dst = o } }

// WithVerify toggles labelling verification (on by default).
func WithVerify(v bool) Option { return func(o *Options) { o.Verify = v } }

// WithPower forces synthesis with anchor power k instead of the
// registered solver's default strategy.
func WithPower(k int) Option { return func(o *Options) { o.Power = k } }

// WithWindow overrides the anchor window shape used with WithPower.
func WithWindow(h, w int) Option { return func(o *Options) { o.H, o.W = h, w } }

// WithMaxPower bounds the anchor powers tried by auto-classifying
// solvers.
func WithMaxPower(k int) Option { return func(o *Options) { o.MaxPower = k } }

// WithEll fixes the §8 ball parameter instead of the automatic retry.
func WithEll(ell int) Option { return func(o *Options) { o.Ell = ell } }

// WithEdgeColorParams overrides the §10 constants.
func WithEdgeColorParams(p EdgeColorParams) Option {
	return func(o *Options) { o.EdgeParams = p }
}

// WithMaxSteps bounds the Turing-machine simulation of L_M solvers.
func WithMaxSteps(n int) Option { return func(o *Options) { o.MaxSteps = n } }

// WithWorkers bounds the Engine.SolveBatch worker pool (default
// runtime.GOMAXPROCS(0)).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }
