package lclgrid_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	lclgrid "lclgrid"
)

// tableBackedSpecs returns every registered spec windowed labeling can
// serve: the ones carrying normal-form synthesis hints.
func tableBackedSpecs(t *testing.T) []*lclgrid.ProblemSpec {
	t.Helper()
	var specs []*lclgrid.ProblemSpec
	for _, spec := range lclgrid.DefaultRegistry().Specs() {
		if len(spec.Attempts) > 0 {
			specs = append(specs, spec)
		}
	}
	if len(specs) < 4 {
		t.Fatalf("expected several table-backed specs, got %d", len(specs))
	}
	return specs
}

// TestLabelWindowMatchesSolve is the subsystem's equivalence proof at
// the API level: for every table-backed catalogue key, tiling a small
// torus with LabelWindow calls — including windows that wrap both seams
// — reproduces the full-grid Solve labels byte for byte under the same
// AffineIDs assignment.
func TestLabelWindowMatchesSolve(t *testing.T) {
	eng := lclgrid.NewEngine()
	for _, spec := range tableBackedSpecs(t) {
		spec := spec
		t.Run(spec.Key, func(t *testing.T) {
			side := spec.SmallestSide()
			g := lclgrid.Square(side)
			n := g.N()
			for _, seed := range []int64{0, 7} {
				full, err := eng.Solve(bg, lclgrid.SolveRequest{
					Key: spec.Key, Torus: g, IDs: lclgrid.AffineIDs(n, seed),
				})
				if err != nil {
					t.Fatalf("seed %d: Solve: %v", seed, err)
				}
				// Tile the torus from an origin outside [0, side) so every
				// window exercises coordinate wrap-around somewhere.
				const tw, th = 7, 5
				checked := 0
				for y0 := -3; y0 < side-3; y0 += th {
					for x0 := -2; x0 < side-2; x0 += tw {
						w, h := tw, th
						if x0+w > side-2 {
							w = side - 2 - x0
						}
						if y0+h > side-3 {
							h = side - 3 - y0
						}
						res, err := eng.LabelWindow(bg, lclgrid.LabelRequest{
							Key: spec.Key, N: side, Seed: seed,
							X: x0, Y: y0, W: w, H: h,
						})
						if err != nil {
							t.Fatalf("seed %d window (%d,%d): %v", seed, x0, y0, err)
						}
						for r := 0; r < h; r++ {
							for c := 0; c < w; c++ {
								x := ((x0+c)%side + side) % side
								y := ((y0+r)%side + side) % side
								if got, want := res.Labels[r*w+c], full.Labels[y*side+x]; got != want {
									t.Fatalf("seed %d node (%d,%d): window label %d, full-grid label %d", seed, x, y, got, want)
								}
								checked++
							}
						}
					}
				}
				if checked != n {
					t.Fatalf("seed %d: tiled %d nodes, torus has %d", seed, checked, n)
				}
			}
		})
	}
}

// TestLabelWindowWarmCacheZeroSyntheses pins the headline property: on a
// warm engine a LabelWindow call over a torus four orders of magnitude
// past the materializing path's node cap does zero SAT work.
func TestLabelWindowWarmCacheZeroSyntheses(t *testing.T) {
	eng := lclgrid.NewEngine()
	first, err := eng.LabelWindow(bg, lclgrid.LabelRequest{
		Key: "mis", N: 16, W: 4, H: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first call on a cold engine reported a cache hit")
	}
	misses := eng.CacheStats().Misses
	res, err := eng.LabelWindow(bg, lclgrid.LabelRequest{
		Key:   "mis",
		Sides: []int{100_000, 100_000}, // 10^10 nodes
		Seed:  7,
		X:     99_997, Y: -1, W: 6, H: 4, // wraps both seams
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("warm call did not report a cache hit")
	}
	if got := eng.CacheStats().Misses; got != misses {
		t.Errorf("warm call synthesized: misses %d -> %d", misses, got)
	}
	st := res.Stats
	if st.WindowNodes != 24 {
		t.Errorf("window nodes = %d, want 24", st.WindowNodes)
	}
	// O(window + halo): the anchor work must stay within a small constant
	// factor of the window, nowhere near the 10^10 grid nodes.
	if st.AnchorNodes > 10_000 {
		t.Errorf("anchor evaluations = %d on a 6x4 window; expected O(window+halo)", st.AnchorNodes)
	}
	if res.Rounds <= 0 {
		t.Errorf("rounds = %d, want positive", res.Rounds)
	}
}

// TestLabelWindowDeterministic pins the property the HTTP ETag and CI
// fixture rely on: identical requests produce identical responses, byte
// for byte, across engines.
func TestLabelWindowDeterministic(t *testing.T) {
	req := lclgrid.LabelRequest{
		Key: "mis", Sides: []int{100_000, 99_990}, Seed: 11,
		X: -5, Y: 99_988, W: 9, H: 3,
	}
	a, err := lclgrid.NewEngine().LabelWindow(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lclgrid.NewEngine().LabelWindow(bg, req)
	if err != nil {
		t.Fatal(err)
	}
	b.CacheHit = a.CacheHit // the only field allowed to differ
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("responses differ:\n  %+v\n  %+v", a, b)
	}
}

// TestLabelWindowLattice checks the opt-in periodic-anchor fast path:
// the labeling differs from exact mode but still verifies against the
// problem definition, needs zero halo, and is rejected on shapes the
// lattice cannot tile consistently.
func TestLabelWindowLattice(t *testing.T) {
	eng := lclgrid.NewEngine()
	spec, err := lclgrid.DefaultRegistry().Lookup("mis")
	if err != nil {
		t.Fatal(err)
	}
	mod := lclgrid.LatticeModulus(1)
	side := spec.SmallestSide()
	for side%mod != 0 {
		side++
	}
	g := lclgrid.Square(side)
	res, err := eng.LabelWindow(bg, lclgrid.LabelRequest{
		Key: "mis", N: side, Mode: lclgrid.LabelModeLattice,
		X: 0, Y: 0, W: side, H: side,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.CheckResult(g, &lclgrid.Result{Labels: res.Labels}); err != nil {
		t.Errorf("lattice labeling does not verify: %v", err)
	}
	if res.Stats.HaloNodes != 0 {
		t.Errorf("lattice mode reported %d halo nodes, want 0", res.Stats.HaloNodes)
	}

	// A side not divisible by the modulus cannot host the lattice.
	_, err = eng.LabelWindow(bg, lclgrid.LabelRequest{
		Key: "mis", N: side + 1, Mode: lclgrid.LabelModeLattice, W: 2, H: 2,
	})
	var reqErr *lclgrid.RequestError
	if !errors.As(err, &reqErr) {
		t.Errorf("lattice on an indivisible side: got %v, want a RequestError", err)
	}
}

// TestLabelWindowRequestErrors checks that every client-side planning
// failure surfaces as a RequestError (HTTP 400), never a server fault.
func TestLabelWindowRequestErrors(t *testing.T) {
	eng := lclgrid.NewEngine()
	cases := []struct {
		name string
		req  lclgrid.LabelRequest
		want string
	}{
		{"unknown key", lclgrid.LabelRequest{Key: "nope", W: 1, H: 1}, "unknown problem"},
		{"non-table key", lclgrid.LabelRequest{Key: "is", W: 1, H: 1}, "no normal-form synthesis hint"},
		{"missing key", lclgrid.LabelRequest{W: 1, H: 1}, "needs a problem key"},
		{"bad window", lclgrid.LabelRequest{Key: "mis", W: 0, H: 3}, "window must be positive"},
		{"huge side", lclgrid.LabelRequest{Key: "mis", N: 2_000_000, W: 1, H: 1}, "exceeds the label-request bound"},
		{"torus too small", lclgrid.LabelRequest{Key: "mis", Sides: []int{4, 4}, W: 1, H: 1}, "below every normal form"},
		{"bad mode", lclgrid.LabelRequest{Key: "mis", W: 1, H: 1, Mode: "psychic"}, "unknown label mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := eng.LabelWindow(bg, tc.req)
			var reqErr *lclgrid.RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("got %v, want a RequestError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestExportGridMatchesSolve streams a whole small grid through
// ExportGrid and checks the reassembled labels equal the full-grid
// Solve, that bands arrive in order with bounded height, and that an
// emit error aborts the stream (the graceful-drain path).
func TestExportGridMatchesSolve(t *testing.T) {
	eng := lclgrid.NewEngine()
	const side = 13
	g := lclgrid.Square(side)
	full, err := eng.Solve(bg, lclgrid.SolveRequest{
		Key: "mis", Torus: g, IDs: lclgrid.AffineIDs(g.N(), 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, g.N())
	nextY, bands := 0, 0
	err = eng.ExportGrid(bg, lclgrid.ExportRequest{
		Key: "mis", N: side, Seed: 3, BandRows: 4,
	}, func(b lclgrid.LabelBand) error {
		if b.Y != nextY {
			t.Errorf("band starts at row %d, want %d", b.Y, nextY)
		}
		if b.Rows < 1 || b.Rows > 4 {
			t.Errorf("band height %d, want 1..4", b.Rows)
		}
		if len(b.Labels) != b.Rows*side {
			t.Errorf("band carries %d labels, want %d", len(b.Labels), b.Rows*side)
		}
		copy(labels[b.Y*side:], b.Labels)
		nextY += b.Rows
		bands++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nextY != side {
		t.Fatalf("bands covered %d rows, torus has %d", nextY, side)
	}
	if want := (side + 3) / 4; bands != want {
		t.Errorf("got %d bands, want %d", bands, want)
	}
	for v := range labels {
		if labels[v] != full.Labels[v] {
			t.Fatalf("node %d: export label %d, full-grid label %d", v, labels[v], full.Labels[v])
		}
	}

	// A failing emit (client gone) aborts the stream with that error.
	boom := errors.New("client gone")
	calls := 0
	err = eng.ExportGrid(bg, lclgrid.ExportRequest{Key: "mis", N: side, BandRows: 4},
		func(lclgrid.LabelBand) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Errorf("emit error: got %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Errorf("emit called %d times after failing, want 1", calls)
	}
}

// windowEvents is a WindowObserver recording event counts.
type windowEvents struct {
	lclgrid.NopObserver
	starts, ends, errs int
}

func (w *windowEvents) WindowStart(lclgrid.LabelRequest) { w.starts++ }
func (w *windowEvents) WindowEnd(_ lclgrid.LabelRequest, _ lclgrid.WindowStats, err error, _ time.Duration) {
	w.ends++
	if err != nil {
		w.errs++
	}
}

// TestWindowObserverEvents checks the side-interface fan-out: observers
// implementing WindowObserver see window events, and errors are counted.
func TestWindowObserverEvents(t *testing.T) {
	rec := &windowEvents{}
	eng := lclgrid.NewEngine(lclgrid.WithObserver(rec))
	if _, err := eng.LabelWindow(bg, lclgrid.LabelRequest{Key: "mis", N: 16, W: 2, H: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.LabelWindow(bg, lclgrid.LabelRequest{Key: "nope", W: 1, H: 1}); err == nil {
		t.Fatal("expected an error for an unknown key")
	}
	if rec.starts != 2 || rec.ends != 2 || rec.errs != 1 {
		t.Errorf("observer saw starts=%d ends=%d errs=%d, want 2/2/1", rec.starts, rec.ends, rec.errs)
	}
}
