package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// startPprof opens an opt-in debug listener serving the net/http/pprof
// endpoints on their own mux, so profiling never rides the production
// listener's port (or its middleware: no admission bound, body cap or
// request timeout applies here). Callers gate it behind a -pprof flag
// and should bind loopback; an empty addr is a no-op. A non-nil traces
// handler additionally mounts the process's recent-trace buffer at
// /debug/traces, next to the profiles it contextualises.
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	curl http://127.0.0.1:6060/debug/pprof/heap > heap.pb.gz
//	curl http://127.0.0.1:6060/debug/traces?min_ms=50
func startPprof(addr string, out io.Writer, traces http.Handler) error {
	if addr == "" {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if traces != nil {
		mux.Handle("/debug/traces", traces)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l) //nolint:errcheck // debug listener lives for the process
	fmt.Fprintf(out, "lclgrid: pprof on http://%s/debug/pprof/\n", l.Addr())
	return nil
}
