package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	lclgrid "lclgrid"
)

// withTestRegistry routes every engine the subcommands build through a
// custom registry for the duration of the test.
func withTestRegistry(t *testing.T, reg *lclgrid.Registry) {
	t.Helper()
	old := newEngine
	newEngine = func(opts ...lclgrid.EngineOption) *lclgrid.Engine {
		return lclgrid.NewEngine(append(opts, lclgrid.WithRegistry(reg))...)
	}
	t.Cleanup(func() { newEngine = old })
}

// partialRegistry returns a catalogue with one warmable synthesis key
// ("good": MIS, k=1 3×3 admits a table) and one unwarmable one ("bad":
// 2-colouring is global, so every attempt shape is UNSAT).
func partialRegistry(t *testing.T) *lclgrid.Registry {
	t.Helper()
	reg := lclgrid.NewRegistry()
	specs := []*lclgrid.ProblemSpec{
		{
			Key: "good", Name: "maximal independent set", Dims: 2,
			Class: lclgrid.ClassLogStar, MinSide: 12,
			Problem:  func() *lclgrid.Problem { return lclgrid.MIS(2).Problem },
			Attempts: []lclgrid.SynthAttempt{{K: 1, H: 3, W: 3}},
		},
		{
			Key: "bad", Name: "2-colouring", Dims: 2,
			Class: lclgrid.ClassGlobal, MinSide: 12,
			Problem:  func() *lclgrid.Problem { return lclgrid.VertexColoring(2, 2) },
			Attempts: []lclgrid.SynthAttempt{{K: 1, H: 3, W: 2}},
		},
	}
	for _, s := range specs {
		if err := reg.Register(s); err != nil {
			t.Fatalf("register %s: %v", s.Key, err)
		}
	}
	return reg
}

// TestWarmPartialFailure pins the `lclgrid warm` contract when part of
// the catalogue cannot be warmed: the sweep finishes, the unwarmable
// key is reported in a non-nil error (a non-zero process exit in main),
// the stats line counts the failure, and the keys that did warm are
// persisted to the cache directory.
func TestWarmPartialFailure(t *testing.T) {
	withTestRegistry(t, partialRegistry(t))
	dir := t.TempDir()

	var out bytes.Buffer
	err := cmdWarm(bg, []string{"-cache-dir", dir}, &out)
	if err == nil {
		t.Fatal("cmdWarm succeeded over an unwarmable key; main would exit zero")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("warm error does not name the unwarmable key: %v", err)
	}
	for _, want := range []string{"2 problems examined", "1 warmed", "1 failed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("warm stats line missing %q: %s", want, out.String())
		}
	}

	// The warmed key was persisted despite the failure: a fresh engine
	// over the same directory re-warms it with zero syntheses.
	var out2 bytes.Buffer
	if err := cmdWarm(bg, []string{"-cache-dir", dir, "-problems", "good"}, &out2); err != nil {
		t.Fatalf("re-warm of the good key failed: %v", err)
	}
	for _, want := range []string{"1 warmed", "0 syntheses performed"} {
		if !strings.Contains(out2.String(), want) {
			t.Errorf("re-warm stats line missing %q: %s", want, out2.String())
		}
	}
}

// TestWarmPartialFailureStatsPrintedBeforeError checks the operator
// still sees how far the sweep got: the stats line is printed even when
// cmdWarm returns the error.
func TestWarmPartialFailureStatsPrintedBeforeError(t *testing.T) {
	withTestRegistry(t, partialRegistry(t))
	var out bytes.Buffer
	if err := cmdWarm(bg, []string{"-problems", "bad"}, &out); err == nil {
		t.Fatal("warming only the unwarmable key succeeded")
	}
	if !strings.Contains(out.String(), "1 failed") {
		t.Errorf("no stats line on failure: %q", out.String())
	}
}

// TestVersionPrintsBuildInfo checks `lclgrid version` reports the
// module and toolchain from the embedded build info.
func TestVersionPrintsBuildInfo(t *testing.T) {
	var out bytes.Buffer
	if err := cmdVersion(&out); err != nil {
		t.Fatalf("cmdVersion: %v", err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "lclgrid ") {
		t.Errorf("version line %q does not start with the binary name", got)
	}
	if !strings.Contains(got, "go1") {
		t.Errorf("version line %q does not name the Go toolchain", got)
	}
}

// TestMainUnknownSubcommand re-executes the test binary as `lclgrid
// bogus` and checks the process exits non-zero with the subcommand list
// on stderr.
func TestMainUnknownSubcommand(t *testing.T) {
	if os.Getenv("LCLGRID_TEST_MAIN") == "1" {
		os.Args = []string{"lclgrid", "bogus"}
		main()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestMainUnknownSubcommand")
	cmd.Env = append(os.Environ(), "LCLGRID_TEST_MAIN=1")
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() == 0 {
		t.Fatalf("expected a non-zero exit, got err=%v:\n%s", err, out)
	}
	for _, want := range []string{`unknown subcommand "bogus"`, "usage:", "serve", "version"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("stderr missing %q:\n%s", want, out)
		}
	}
}

// syncBuffer is a concurrency-safe writer: cmdServe logs from the serve
// goroutine while the test polls for the bound address.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeCommandBootsWarmsAndDrains is the CLI-level serve smoke: a
// warm boot on an ephemeral port, one solve over HTTP, metrics showing
// it (and the warm keeping syntheses off the serving path), then a
// clean drain on context cancellation (the SIGTERM path in main).
func TestServeCommandBootsWarmsAndDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a real server")
	}
	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- cmdServe(ctx, []string{
			"-addr", "127.0.0.1:0", "-warm",
			"-cache-dir", t.TempDir(), "-max-inflight", "4",
		}, &out)
	}()

	addrRe := regexp.MustCompile(`serving on (http://[^\s]+)`)
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not report its address:\n%s", out.String())
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited early: %v\n%s", err, out.String())
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Warm runs in the background after the listener opens; /readyz
	// holds 503 until the sweep finishes. Wait for readiness before
	// asserting warm-dependent behaviour.
	for {
		rresp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		rresp.Body.Close()
		if rresp.StatusCode == http.StatusOK {
			break
		}
		if rresp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz while warming: %d", rresp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready:\n%s", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "warmed") {
		t.Errorf("no warm-on-boot line in:\n%s", out.String())
	}

	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(`{"key":"5col","n":12}`))
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"cache_hit":true`) {
		t.Errorf("warm-booted solve was not a cache hit: %s", body)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"lclgrid_requests_total 1",
		fmt.Sprintf("lclgrid_http_requests_total{path=%q,code=\"200\"} 1", "/v1/solve"),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve did not drain cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not exit after cancellation")
	}
	if !strings.Contains(out.String(), "drained") {
		t.Errorf("no drain message in:\n%s", out.String())
	}
}
