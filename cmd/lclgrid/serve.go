package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"time"

	lclgrid "lclgrid"
)

// cmdServe boots the HTTP serving subsystem: the Engine mounted behind
// POST /v1/solve, POST /v1/batch (JSONL streaming), POST /v1/explain,
// GET /v1/problems, GET /healthz and GET /metrics (Prometheus text
// format), with bounded in-flight admission, per-request timeouts,
// request body limits and graceful drain on SIGINT/SIGTERM.
//
//	lclgrid serve -addr 127.0.0.1:8080 -cache-dir .cache -warm
//
// -warm pre-synthesizes the whole catalogue before the listener opens,
// so the first request of every problem is served from the cache; with
// -cache-dir the warmed tables persist and a restarted server boots
// warm with zero syntheses.
func cmdServe(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks an ephemeral port)")
	workers := fs.Int("workers", 0, "worker pool size per /v1/batch stream (0 = GOMAXPROCS)")
	synthWorkers := fs.Int("synth-workers", 0, "concurrent synthesis candidates per racing sweep (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persist synthesized tables under this directory")
	warm := fs.Bool("warm", false, "pre-synthesize the registry catalogue before accepting traffic")
	timeout := fs.Duration("timeout", lclgrid.DefaultRequestTimeout, "per-request solve deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", lclgrid.DefaultMaxInflight, "admission bound on concurrent solve/batch requests (0 = unbounded)")
	maxBody := fs.Int64("max-body", lclgrid.DefaultMaxBodyBytes, "request body size cap in bytes (0 = unbounded)")
	drain := fs.Duration("drain", lclgrid.DefaultDrainTimeout, "graceful-shutdown drain window for in-flight requests")
	verbose := fs.Bool("v", false, "log engine events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	metrics := lclgrid.NewMetricsObserver()
	eng, err := buildEngine(*verbose, *cacheDir,
		lclgrid.WithObserver(metrics), lclgrid.WithSynthWorkers(*synthWorkers))
	if err != nil {
		return err
	}
	if *warm {
		start := time.Now()
		ws, err := eng.Warm(ctx)
		if err != nil {
			return fmt.Errorf("warm-on-boot: %w", err)
		}
		fmt.Fprintf(out, "lclgrid: warmed %d/%d problems (%d syntheses) in %v\n",
			ws.Warmed, ws.Problems, ws.Syntheses, time.Since(start).Round(time.Millisecond))
	}

	srv := lclgrid.NewServer(eng,
		lclgrid.WithMetricsObserver(metrics),
		lclgrid.WithMaxInflight(*maxInflight),
		lclgrid.WithRequestTimeout(*timeout),
		lclgrid.WithMaxBodyBytes(*maxBody),
		lclgrid.WithBatchWorkers(*workers),
		lclgrid.WithDrainTimeout(*drain),
	)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lclgrid: serving on http://%s\n", l.Addr())
	if err := srv.Serve(ctx, l); err != nil {
		return err
	}
	fmt.Fprintln(out, "lclgrid: drained in-flight requests, shutting down")
	return nil
}

// cmdVersion prints the module version and the VCS revision embedded by
// the Go toolchain (debug.ReadBuildInfo), so a deployed binary can name
// the commit it was built from.
func cmdVersion(out io.Writer) error {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return errors.New("no build info embedded in this binary")
	}
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	line := "lclgrid " + version
	var rev, vcsTime string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			vcsTime = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		line += " rev " + rev
		if dirty {
			line += "+dirty"
		}
		if vcsTime != "" {
			line += " (" + vcsTime + ")"
		}
	}
	line += " " + bi.GoVersion
	_, err := fmt.Fprintln(out, line)
	return err
}

// unknownSubcommand reports an unrecognised subcommand on stderr with
// the full subcommand list, for a non-zero exit in main.
func unknownSubcommand(name string) {
	fmt.Fprintf(os.Stderr, "lclgrid: unknown subcommand %q\n", name)
	usage()
}
