package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime/debug"
	"sync/atomic"
	"time"

	lclgrid "lclgrid"
	"lclgrid/internal/ring"
)

// cmdServe boots the HTTP serving subsystem: the Engine mounted behind
// POST /v1/solve, POST /v1/batch (JSONL streaming), POST /v1/explain,
// GET /v1/problems, GET /healthz, GET /readyz and GET /metrics
// (Prometheus text format), with bounded in-flight admission,
// per-request timeouts, request body limits and graceful drain on
// SIGINT/SIGTERM.
//
//	lclgrid serve -addr 127.0.0.1:8080 -cache-dir .cache -warm
//
// -warm pre-synthesizes the catalogue in the background once the
// listener is up; /readyz answers 503 until the sweep completes, so a
// supervisor holds traffic while the replica warms without declaring it
// dead. With -cache-dir the warmed tables persist and a restarted
// server warms with zero syntheses. -problems-dir persists user problem
// registrations (POST /v1/problems) the same way: on boot they
// re-register into the catalogue and join the warm sweep, so a restart
// with both directories re-serves user problems with zero syntheses.
//
// Fleet flags:
//
//   - -remote-cache URL layers the shared cache service under the local
//     cache (see `lclgrid cachesvc`): tables synthesized anywhere in the
//     fleet become local hits, and the lease protocol (-lease-ttl,
//     -cache-wait) makes each cold synthesis happen exactly once
//     cluster-wide.
//   - -self and -peers place this replica on the fleet's consistent-hash
//     ring: -warm then only synthesizes the catalogue slice this replica
//     owns, and the rest of its owned slice is pulled from the shared
//     store instead of re-synthesized.
//   - -cache-service additionally mounts the blob/lease service under
//     /v1/cache/ on this replica, so a small fleet can share one
//     replica's cache instead of running a separate cachesvc.
func cmdServe(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks an ephemeral port)")
	workers := fs.Int("workers", 0, "worker pool size per /v1/batch stream (0 = GOMAXPROCS)")
	synthWorkers := fs.Int("synth-workers", 0, "concurrent synthesis candidates per racing sweep (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "persist synthesized tables under this directory")
	problemsDir := fs.String("problems-dir", "", "persist user-registered problem definitions (POST /v1/problems) under this directory; they re-register on boot")
	warm := fs.Bool("warm", false, "pre-synthesize the registry catalogue in the background; /readyz gates on completion")
	timeout := fs.Duration("timeout", lclgrid.DefaultRequestTimeout, "per-request solve deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", lclgrid.DefaultMaxInflight, "admission bound on concurrent solve/batch requests (0 = unbounded)")
	maxBody := fs.Int64("max-body", lclgrid.DefaultMaxBodyBytes, "request body size cap in bytes (0 = unbounded)")
	drain := fs.Duration("drain", lclgrid.DefaultDrainTimeout, "graceful-shutdown drain window for in-flight requests")
	remoteCache := fs.String("remote-cache", "", "base URL of the shared cache service (e.g. http://cache:8090)")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second, "cluster synthesis lease TTL (with -remote-cache)")
	cacheWait := fs.Duration("cache-wait", 60*time.Second, "longest wait on another replica's in-flight synthesis before synthesizing locally")
	self := fs.String("self", "", "this replica's name on the fleet ring (must appear in -peers)")
	peers := fs.String("peers", "", "comma-separated names of every fleet replica (enables ring-sliced warming)")
	cacheService := fs.Bool("cache-service", false, "mount the blob/lease cache service under /v1/cache/ (backed by -cache-dir when set)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (debug only; e.g. 127.0.0.1:6060)")
	verbose := fs.Bool("v", false, "log engine events to stderr")
	logFormat := fs.String("log", "text", `structured log format: "text" or "json"`)
	slowReq := fs.Duration("slow", 0, "log the full span tree of any request slower than this (0 = never)")
	traceBuffer := fs.Int("trace-buffer", lclgrid.DefaultTraceBufferSize, "completed traces kept for GET /debug/traces (0 disables tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	traces, tracesHandler := newTraceBuffer(*traceBuffer, *logFormat, *verbose, *slowReq)
	if err := startPprof(*pprofAddr, out, tracesHandler); err != nil {
		return err
	}

	metrics := lclgrid.NewMetricsObserver()
	metrics.SetBuildInfo(buildIdentity())
	if traces != nil {
		metrics.SetTraceStatsFunc(traces.Stats)
	}
	engineOpts := []lclgrid.EngineOption{
		lclgrid.WithObserver(metrics), lclgrid.WithSynthWorkers(*synthWorkers),
	}
	// With a remote cache the layering is memory → disk → fleet: the
	// explicit stack replaces buildEngine's cache-dir handling.
	var remote *lclgrid.RemoteCache
	builderCacheDir := *cacheDir
	if *remoteCache != "" {
		var inner lclgrid.SynthCache = lclgrid.NewMemoryCache()
		if *cacheDir != "" {
			var err error
			inner, err = lclgrid.NewDiskCache(*cacheDir, inner)
			if err != nil {
				return err
			}
			builderCacheDir = ""
		}
		var err error
		remote, err = lclgrid.NewRemoteCache(*remoteCache, inner,
			lclgrid.WithLeaseTTL(*leaseTTL),
			lclgrid.WithLeaseWait(*cacheWait),
			lclgrid.WithRemoteObserver(metrics),
		)
		if err != nil {
			return err
		}
		builderCacheDir = ""
		engineOpts = append(engineOpts, lclgrid.WithCache(remote))
	}
	eng, err := buildEngine(*verbose, *logFormat, builderCacheDir, engineOpts...)
	if err != nil {
		return err
	}

	// Ring membership: -peers names every replica, -self this one. Warm
	// then covers only the owned catalogue slice.
	owns, err := ringOwnership(*self, *peers)
	if err != nil {
		return err
	}

	// Persisted user problems re-register before the listener opens, so
	// the registry (and the warm sweep below) serves them from the first
	// request — a restart with the same -problems-dir and -cache-dir
	// re-solves user problems with zero syntheses.
	var problemStore lclgrid.ProblemStore
	if *problemsDir != "" {
		problemStore, err = lclgrid.NewDirProblemStore(*problemsDir)
		if err != nil {
			return err
		}
		restored := 0
		for _, sp := range problemStore.List() {
			if _, _, derr := eng.DefineProblem(sp.Def); derr != nil {
				fmt.Fprintf(os.Stderr, "lclgrid: problems-dir: skipping %s: %v\n", sp.Key, derr)
				continue
			}
			restored++
		}
		if restored > 0 {
			fmt.Fprintf(out, "lclgrid: restored %d user problem(s) from %s\n", restored, *problemsDir)
		}
	}

	serverOpts := []lclgrid.ServerOption{
		lclgrid.WithMetricsObserver(metrics),
		lclgrid.WithMaxInflight(*maxInflight),
		lclgrid.WithRequestTimeout(*timeout),
		lclgrid.WithMaxBodyBytes(*maxBody),
		lclgrid.WithBatchWorkers(*workers),
		lclgrid.WithDrainTimeout(*drain),
	}
	if traces != nil {
		serverOpts = append(serverOpts, lclgrid.WithServerTracing(traces))
	}
	if problemStore != nil {
		serverOpts = append(serverOpts, lclgrid.WithProblemStore(problemStore))
	}
	if *cacheService {
		var store lclgrid.BlobStore
		if *cacheDir != "" {
			store, err = lclgrid.NewDirBlobStore(*cacheDir)
			if err != nil {
				return err
			}
		}
		serverOpts = append(serverOpts, lclgrid.WithCacheService(lclgrid.NewCacheServer(store)))
	}

	// Readiness: unready until warm-on-boot finishes (immediately ready
	// without -warm). The warm sweep runs in the background after the
	// listener opens — liveness (/healthz) is up the whole time, and the
	// supervisor watches /readyz to start routing.
	var warming atomic.Bool
	warming.Store(*warm)
	serverOpts = append(serverOpts, lclgrid.WithReadyCheck(func() error {
		if warming.Load() {
			return errors.New("lclgrid: warm-on-boot in progress")
		}
		return nil
	}))

	srv := lclgrid.NewServer(eng, serverOpts...)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lclgrid: serving on http://%s\n", l.Addr())

	if *warm {
		go func() {
			defer warming.Store(false)
			start := time.Now()
			if remote != nil {
				// Pull the owned slice from the shared store first: every
				// record pulled is a synthesis the sweep below skips.
				if n, err := remote.PullOwned(ctx, owns); err == nil && n > 0 {
					fmt.Fprintf(out, "lclgrid: pulled %d cached tables from the fleet store\n", n)
				}
			}
			keys, any := ownedKeys(eng, owns)
			if !any {
				fmt.Fprintln(out, "lclgrid: warm-on-boot: this replica owns no catalogue keys")
				return
			}
			ws, err := eng.Warm(ctx, keys...)
			if err != nil {
				if ctx.Err() != nil {
					return // shutting down mid-warm
				}
				// A partially-warm replica still serves (cold keys just pay
				// their synthesis on first request) — readiness proceeds.
				fmt.Fprintf(os.Stderr, "lclgrid: warm-on-boot: %v\n", err)
			}
			fmt.Fprintf(out, "lclgrid: warmed %d/%d problems (%d syntheses) in %v\n",
				ws.Warmed, ws.Problems, ws.Syntheses, time.Since(start).Round(time.Millisecond))
		}()
	}

	if err := srv.Serve(ctx, l); err != nil {
		return err
	}
	fmt.Fprintln(out, "lclgrid: drained in-flight requests, shutting down")
	return nil
}

// ringOwnership turns the -self/-peers flags into the ownership
// predicate warm-on-boot filters with. Without -peers every key is
// owned (nil predicate); with them, -self must name one of the peers.
func ringOwnership(self, peers string) (func(lclgrid.SynthKey) bool, error) {
	if peers == "" {
		if self != "" {
			return nil, errors.New("-self needs -peers (the full replica list)")
		}
		return nil, nil
	}
	members := splitList(peers)
	if self == "" {
		return nil, errors.New("-peers needs -self (this replica's name)")
	}
	found := false
	for _, m := range members {
		if m == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("-self %q is not in -peers %q", self, peers)
	}
	r, err := ring.New(members, 0)
	if err != nil {
		return nil, err
	}
	return func(key lclgrid.SynthKey) bool {
		return r.Owns(self, key.Fingerprint)
	}, nil
}

// ownedKeys filters the registry catalogue to the keys whose problem
// fingerprint this replica owns (every key when owns is nil). The
// second result is false when the replica owns nothing — a legal
// outcome on a big fleet with a small catalogue, and one the caller
// must distinguish from "warm everything" (Warm's zero-key default).
func ownedKeys(eng *lclgrid.Engine, owns func(lclgrid.SynthKey) bool) ([]string, bool) {
	if owns == nil {
		return nil, true // Warm's default: the whole catalogue
	}
	var keys []string
	for _, key := range eng.Registry().Keys() {
		spec, err := eng.Registry().Lookup(key)
		if err != nil || spec.Problem == nil {
			keys = append(keys, key) // direct/skipped keys cost Warm nothing
			continue
		}
		if owns(lclgrid.SynthKey{Fingerprint: spec.Problem().Fingerprint()}) {
			keys = append(keys, key)
		}
	}
	return keys, len(keys) > 0
}

// vcsRevision extracts the (shortened) VCS revision from embedded build
// info, with the commit timestamp when recorded and whether the working
// tree was dirty. Empty rev when the binary was built outside a
// checkout.
func vcsRevision(bi *debug.BuildInfo) (rev, vcsTime string, dirty bool) {
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.time":
			vcsTime = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev, vcsTime, dirty
}

// buildIdentity names this binary for the lclgrid_build_info metric:
// the module version and VCS revision from debug.ReadBuildInfo, with
// "unknown" placeholders when the toolchain embedded nothing.
func buildIdentity() (version, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown", "unknown"
	}
	version = bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	rev, _, dirty := vcsRevision(bi)
	if rev == "" {
		return version, "unknown"
	}
	if dirty {
		rev += "+dirty"
	}
	return version, rev
}

// cmdVersion prints the module version and the VCS revision embedded by
// the Go toolchain (debug.ReadBuildInfo), so a deployed binary can name
// the commit it was built from.
func cmdVersion(out io.Writer) error {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return errors.New("no build info embedded in this binary")
	}
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	line := "lclgrid " + version
	rev, vcsTime, dirty := vcsRevision(bi)
	if rev != "" {
		line += " rev " + rev
		if dirty {
			line += "+dirty"
		}
		if vcsTime != "" {
			line += " (" + vcsTime + ")"
		}
	}
	line += " " + bi.GoVersion
	_, err := fmt.Fprintln(out, line)
	return err
}

// unknownSubcommand reports an unrecognised subcommand on stderr with
// the full subcommand list, for a non-zero exit in main.
func unknownSubcommand(name string) {
	fmt.Fprintf(os.Stderr, "lclgrid: unknown subcommand %q\n", name)
	usage()
}
