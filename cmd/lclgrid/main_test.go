package main

import "testing"

func TestProblemByName(t *testing.T) {
	tests := []struct {
		name   string
		labels int
		ok     bool
	}{
		{"4col", 4, true},
		{"3col", 3, true},
		{"5edgecol", 120, true},
		{"mis", 16, true},
		{"matching", 5, true},
		{"is", 2, true},
		{"orient134", 9, true}, // C(4,1)+C(4,3)+C(4,4) labels
		{"orient2", 6, true},   // C(4,2) labels
		{"nope", 0, false},
		{"orient9", 0, false},
	}
	for _, tt := range tests {
		p, err := problemByName(tt.name)
		if tt.ok != (err == nil) {
			t.Errorf("%s: err = %v, ok want %v", tt.name, err, tt.ok)
			continue
		}
		if err == nil && p.K() != tt.labels {
			t.Errorf("%s: K = %d, want %d", tt.name, p.K(), tt.labels)
		}
	}
}

func TestCmdTable(t *testing.T) {
	if err := cmdTable(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClassify(t *testing.T) {
	if err := cmdClassify([]string{"-problem", "is", "-maxk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSynth(t *testing.T) {
	if err := cmdSynth([]string{"-problem", "5col", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSynth([]string{"-problem", "3col", "-k", "1"}); err == nil {
		t.Error("3-colouring synthesis at k=1 should fail")
	}
}

func TestCmdRun(t *testing.T) {
	if err := cmdRun([]string{"-problem", "5col", "-k", "1", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
}
