package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	lclgrid "lclgrid"
)

var bg = context.Background()

// TestLookup exercises the registry resolution the CLI relies on,
// including the parameterised families the old name switch supported.
func TestLookup(t *testing.T) {
	tests := []struct {
		name   string
		labels int
		ok     bool
	}{
		{"4col", 4, true},
		{"3col", 3, true},
		{"5edgecol", 120, true},
		{"mis", 16, true},
		{"matching", 5, true},
		{"is", 2, true},
		{"orient134", 9, true}, // C(4,1)+C(4,3)+C(4,4) labels
		{"orient2", 6, true},   // C(4,2) labels
		{"lm:halt", 0, true},   // no SFT alphabet
		{"nope", 0, false},
		{"orient9", 0, false},
	}
	for _, tt := range tests {
		spec, err := lookup(tt.name)
		if tt.ok != (err == nil) {
			t.Errorf("%s: err = %v, ok want %v", tt.name, err, tt.ok)
			continue
		}
		if err == nil && spec.NumLabels != tt.labels {
			t.Errorf("%s: NumLabels = %d, want %d", tt.name, spec.NumLabels, tt.labels)
		}
	}
}

// TestUnknownKeyEnumerates checks the discoverability requirement: an
// unknown problem error must name the valid keys.
func TestUnknownKeyEnumerates(t *testing.T) {
	_, err := lookup("nope")
	if err == nil {
		t.Fatal("lookup of unknown key succeeded")
	}
	for _, want := range []string{"4col", "mis", "5edgecol", "lm:halt", "<k>col"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-key error does not mention %q: %v", want, err)
		}
	}
}

func TestCmdList(t *testing.T) {
	var out bytes.Buffer
	if err := cmdList(nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"KEY", "4col", "Θ(log* n)", "lm:halt", "families:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "STRATEGY") {
		t.Error("bare list must not print the STRATEGY column")
	}
}

// TestCmdListVerbose: -v adds the plan-hint column, so the registered
// class, minimum side and attempt shapes cross-check `lclgrid explain`.
func TestCmdListVerbose(t *testing.T) {
	var out bytes.Buffer
	if err := cmdList([]string{"-v"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"STRATEGY",
		"synthesis k=3 7×5 (side ≥ 28)", // 4col
		"k=1 3×3 (side ≥ 12) | k=2 5×5 (side ≥ 20)", // orientation race
		"constant fill",                     // is / orient2
		"Θ(n) brute force",                  // 3col
		"direct: §10 direct edge colouring", // 5edgecol
		"direct: §6 L_M construction",       // lm:halt
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list -v output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCmdExplain: the explain subcommand prints the ranked plan as JSON
// without solving — and, by construction, without a SAT call (the
// process-wide engine's cache counters stay untouched).
func TestCmdExplain(t *testing.T) {
	before := engine.CacheStats().Misses
	var out bytes.Buffer
	if err := cmdExplain([]string{`{"key":"4col","n":8}`}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	var plan lclgrid.Plan
	if err := json.Unmarshal(out.Bytes(), &plan); err != nil {
		t.Fatalf("explain output is not a JSON plan: %v\n%s", err, out.String())
	}
	if plan.Key != "4col" || len(plan.Strategies) != 2 {
		t.Fatalf("plan = %+v, want 4col with synthesis+baseline stages", plan)
	}
	if plan.Strategies[0].Kind != lclgrid.StrategySynthesis || plan.Strategies[0].Skip == "" {
		t.Errorf("first stage = %+v, want synthesis skipped (8 < MinTorusSide 28)", plan.Strategies[0])
	}
	if plan.Strategies[1].Kind != lclgrid.StrategyBaseline || !plan.Strategies[1].Fallback {
		t.Errorf("second stage = %+v, want the fallback baseline", plan.Strategies[1])
	}
	if got := engine.CacheStats().Misses; got != before {
		t.Errorf("explain performed %d SAT syntheses, want 0", got-before)
	}
	// The request document also arrives over stdin.
	out.Reset()
	if err := cmdExplain([]string{"-compact"}, strings.NewReader(`{"key":"is","n":4}`), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"constant-fill"`) {
		t.Errorf("stdin explain output missing the constant stage: %s", out.String())
	}
	if err := cmdExplain(nil, strings.NewReader(""), &out); err == nil {
		t.Error("explain with no request document must fail")
	}
}

// TestCmdBatchExplain: `batch -explain` turns request lines into plan
// lines without solving anything.
func TestCmdBatchExplain(t *testing.T) {
	in := strings.NewReader(`{"key":"orient134","n":20}` + "\n" + `{"key":"nope"}` + "\n")
	var out bytes.Buffer
	if err := cmdBatch(bg, []string{"-explain"}, in, &out); err != nil {
		t.Fatal(err)
	}
	lines := decodeBatchLines(t, out.Bytes())
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), out.String())
	}
	if lines[0].Plan == nil || lines[0].Result != nil {
		t.Fatalf("line 0 = %+v, want a plan and no result", lines[0])
	}
	if got := len(lines[0].Plan.Strategies); got != 2 {
		t.Errorf("orient134 plan has %d stages, want synthesis+baseline", got)
	}
	if atts := lines[0].Plan.Strategies[0].Attempts; len(atts) != 2 || atts[0].MinSide != 12 || atts[1].MinSide != 20 {
		t.Errorf("orient134 synthesis attempts = %+v, want k=1 (min 12) and k=2 (min 20)", atts)
	}
	if lines[1].Error == "" {
		t.Error("unknown key must produce an error line in explain mode")
	}
}

func TestCmdTable(t *testing.T) {
	if err := cmdTable(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClassify(t *testing.T) {
	if err := cmdClassify(bg, []string{"-problem", "is", "-maxk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSynth(t *testing.T) {
	if err := cmdSynth(bg, []string{"-problem", "5col", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSynth(bg, []string{"-problem", "3col", "-k", "1"}); err == nil {
		t.Error("3-colouring synthesis at k=1 should fail")
	}
}

func TestCmdRun(t *testing.T) {
	// Registry solver path.
	if err := cmdRun(bg, []string{"-problem", "5col", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
	// Forced synthesis path.
	if err := cmdRun(bg, []string{"-problem", "5col", "-k", "1", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
	// Default side from the spec.
	if err := cmdRun(bg, []string{"-problem", "mis"}); err != nil {
		t.Fatal(err)
	}
}

// decodeBatchLines parses cmdBatch's JSONL output.
func decodeBatchLines(t *testing.T, out []byte) []batchLine {
	t.Helper()
	var lines []batchLine
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line batchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("output line %d is not JSON: %v\n%s", len(lines), err, sc.Text())
		}
		lines = append(lines, line)
	}
	return lines
}

// TestCmdBatch is the JSONL serving contract: one request line in, one
// JSON result line out.
func TestCmdBatch(t *testing.T) {
	in := strings.NewReader(`{"key":"4col","n":16}` + "\n")
	var out bytes.Buffer
	if err := cmdBatch(bg, nil, in, &out); err != nil {
		t.Fatal(err)
	}
	lines := decodeBatchLines(t, out.Bytes())
	if len(lines) != 1 {
		t.Fatalf("got %d output lines, want exactly 1:\n%s", len(lines), out.String())
	}
	line := lines[0]
	if line.Error != "" || line.Result == nil {
		t.Fatalf("request failed: %+v", line)
	}
	if line.Index != 0 || line.Key != "4col" {
		t.Errorf("line does not echo the request: %+v", line)
	}
	if line.Result.Verification != lclgrid.Verified {
		t.Errorf("result not verified: %v", line.Result)
	}
	if len(line.Result.Labels) != 16*16 {
		t.Errorf("result carries %d labels, want 256", len(line.Result.Labels))
	}
}

// TestCmdBatchMixed streams several requests, including failures, and
// checks -ordered output order, per-request errors and the
// -labels=false stripping.
func TestCmdBatchMixed(t *testing.T) {
	reqs := []string{
		`{"key":"5col","n":16,"seed":1}`,
		`{"key":"nope"}`,
		`{"key":"2col","n":5}`,
		`{"key":"5col","n":16,"seed":2}`,
	}
	in := strings.NewReader(strings.Join(reqs, "\n") + "\n")
	var out bytes.Buffer
	if err := cmdBatch(bg, []string{"-labels=false", "-workers", "2", "-ordered"}, in, &out); err != nil {
		t.Fatal(err)
	}
	lines := decodeBatchLines(t, out.Bytes())
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out.String())
	}
	for i, line := range lines {
		if line.Index != i {
			t.Errorf("line %d has index %d; -ordered output must preserve input order", i, line.Index)
		}
	}
	if lines[0].Error != "" || lines[3].Error != "" {
		t.Errorf("good requests failed: %+v / %+v", lines[0], lines[3])
	}
	if lines[1].Error == "" || lines[2].Error == "" {
		t.Errorf("bad requests succeeded: %+v / %+v", lines[1], lines[2])
	}
	if len(lines[0].Result.Labels) != 0 {
		t.Errorf("-labels=false left %d labels in the result", len(lines[0].Result.Labels))
	}
}

// TestCmdBatchUnordered: the default (streaming) output carries every
// request exactly once — indexes form a permutation and each line
// echoes its own request's key — even when completion order differs
// from input order.
func TestCmdBatchUnordered(t *testing.T) {
	reqs := []string{
		`{"key":"5col","n":16,"seed":1}`,
		`{"key":"is","n":4}`,
		`{"key":"mis","n":12}`,
		`{"key":"5col","n":16,"seed":2}`,
		`{"key":"nope"}`,
	}
	wantKeys := []string{"5col", "is", "mis", "5col", "nope"}
	in := strings.NewReader(strings.Join(reqs, "\n") + "\n")
	var out bytes.Buffer
	if err := cmdBatch(bg, []string{"-workers", "4"}, in, &out); err != nil {
		t.Fatal(err)
	}
	lines := decodeBatchLines(t, out.Bytes())
	if len(lines) != len(reqs) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(reqs), out.String())
	}
	seen := make(map[int]batchLine)
	for _, line := range lines {
		if _, dup := seen[line.Index]; dup {
			t.Fatalf("index %d emitted twice", line.Index)
		}
		seen[line.Index] = line
	}
	for i, want := range wantKeys {
		line, ok := seen[i]
		if !ok {
			t.Fatalf("no output line for request %d", i)
		}
		if line.Key != want {
			t.Errorf("line for request %d echoes key %q, want %q", i, line.Key, want)
		}
	}
	if seen[4].Error == "" {
		t.Error("unknown-key request did not produce an error line")
	}
}

// TestCmdBatchCacheDir: a second batch invocation over the same
// -cache-dir is served from disk (the result records the cache hit and
// the engine is a fresh process-equivalent instance).
func TestCmdBatchCacheDir(t *testing.T) {
	dir := t.TempDir()
	run := func() []batchLine {
		in := strings.NewReader(`{"key":"5col","n":16}` + "\n")
		var out bytes.Buffer
		if err := cmdBatch(bg, []string{"-cache-dir", dir}, in, &out); err != nil {
			t.Fatal(err)
		}
		return decodeBatchLines(t, out.Bytes())
	}
	first := run()
	if len(first) != 1 || first[0].Error != "" {
		t.Fatalf("first run: %+v", first)
	}
	if first[0].Result.CacheHit {
		t.Error("first run claims a cache hit on an empty cache directory")
	}
	second := run()
	if len(second) != 1 || second[0].Error != "" {
		t.Fatalf("second run: %+v", second)
	}
	if !second[0].Result.CacheHit {
		t.Error("second run with the same -cache-dir did not hit the disk cache")
	}
}

// TestCmdWarm: warming a cache directory makes a rerun perform zero
// syntheses — the CLI face of the disk round-trip contract.
func TestCmdWarm(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := cmdWarm(bg, []string{"-problems", "5col,mis,is", "-cache-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	first := out.String()
	if !strings.Contains(first, "2 warmed") || !strings.Contains(first, "1 skipped") {
		t.Errorf("first warm output: %q, want 2 warmed (5col, mis) and 1 skipped (is)", first)
	}
	if strings.Contains(first, " 0 syntheses") {
		t.Errorf("first warm performed no syntheses: %q", first)
	}
	out.Reset()
	if err := cmdWarm(bg, []string{"-problems", "5col,mis,is", "-cache-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	second := out.String()
	if !strings.Contains(second, "0 syntheses performed") {
		t.Errorf("re-warm over a warm directory synthesized again: %q", second)
	}
	if err := cmdWarm(bg, []string{"-problems", "nope"}, &out); err == nil {
		t.Error("warming an unknown key must fail")
	}
}

// TestCmdBatchBadJSON: a malformed line fails the command after the
// preceding complete requests were served.
func TestCmdBatchBadJSON(t *testing.T) {
	in := strings.NewReader(`{"key":"5col","n":16}` + "\n" + `{not json}` + "\n")
	var out bytes.Buffer
	if err := cmdBatch(bg, nil, in, &out); err == nil {
		t.Fatal("malformed JSONL must fail the command")
	}
}

// TestCmdBatchCancelledEmitsConsumedLines: every request the command
// consumes produces exactly one output line even when the context is
// already dead, and the cancellation surfaces as a non-zero exit.
func TestCmdBatchCancelledEmitsConsumedLines(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	in := strings.NewReader(
		`{"key":"5col","n":16}` + "\n" + `{"key":"mis","n":12}` + "\n" + `{"key":"is","n":4}` + "\n")
	var out bytes.Buffer
	err := cmdBatch(ctx, nil, in, &out)
	if err == nil {
		t.Fatal("cancelled batch with unserved input must fail the command")
	}
	lines := decodeBatchLines(t, out.Bytes())
	for i, line := range lines {
		if line.Index != i {
			t.Errorf("line %d has index %d", i, line.Index)
		}
		if line.Error == "" {
			t.Errorf("line %d: want a context error, got %+v", i, line)
		}
	}
	// Which select branch wins the race with a dead context is not
	// deterministic, so the command may stop consuming at any point —
	// but it must never consume a request without emitting its line,
	// and it performed zero syntheses either way.
	if len(lines) > 3 {
		t.Errorf("got %d lines for 3 requests", len(lines))
	}
}
