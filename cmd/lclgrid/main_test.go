package main

import (
	"os"
	"strings"
	"testing"
)

// TestLookup exercises the registry resolution the CLI relies on,
// including the parameterised families the old name switch supported.
func TestLookup(t *testing.T) {
	tests := []struct {
		name   string
		labels int
		ok     bool
	}{
		{"4col", 4, true},
		{"3col", 3, true},
		{"5edgecol", 120, true},
		{"mis", 16, true},
		{"matching", 5, true},
		{"is", 2, true},
		{"orient134", 9, true}, // C(4,1)+C(4,3)+C(4,4) labels
		{"orient2", 6, true},   // C(4,2) labels
		{"lm:halt", 0, true},   // no SFT alphabet
		{"nope", 0, false},
		{"orient9", 0, false},
	}
	for _, tt := range tests {
		spec, err := lookup(tt.name)
		if tt.ok != (err == nil) {
			t.Errorf("%s: err = %v, ok want %v", tt.name, err, tt.ok)
			continue
		}
		if err == nil && spec.NumLabels != tt.labels {
			t.Errorf("%s: NumLabels = %d, want %d", tt.name, spec.NumLabels, tt.labels)
		}
	}
}

// TestUnknownKeyEnumerates checks the discoverability requirement: an
// unknown problem error must name the valid keys.
func TestUnknownKeyEnumerates(t *testing.T) {
	_, err := lookup("nope")
	if err == nil {
		t.Fatal("lookup of unknown key succeeded")
	}
	for _, want := range []string{"4col", "mis", "5edgecol", "lm:halt", "<k>col"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-key error does not mention %q: %v", want, err)
		}
	}
}

func TestCmdList(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "list")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := cmdList(f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"KEY", "4col", "Θ(log* n)", "lm:halt", "families:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTable(t *testing.T) {
	if err := cmdTable(); err != nil {
		t.Fatal(err)
	}
}

func TestCmdClassify(t *testing.T) {
	if err := cmdClassify([]string{"-problem", "is", "-maxk", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdSynth(t *testing.T) {
	if err := cmdSynth([]string{"-problem", "5col", "-k", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSynth([]string{"-problem", "3col", "-k", "1"}); err == nil {
		t.Error("3-colouring synthesis at k=1 should fail")
	}
}

func TestCmdRun(t *testing.T) {
	// Registry solver path.
	if err := cmdRun([]string{"-problem", "5col", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
	// Forced synthesis path.
	if err := cmdRun([]string{"-problem", "5col", "-k", "1", "-n", "16"}); err != nil {
		t.Fatal(err)
	}
	// Default side from the spec.
	if err := cmdRun([]string{"-problem", "mis"}); err != nil {
		t.Fatal(err)
	}
}
