package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	lclgrid "lclgrid"
)

// cmdLabels labels one window of an arbitrarily large torus through
// Engine.LabelWindow: `lclgrid labels -problem mis -sides 100000x100000
// -x 12345 -y 99999 -w 8 -h 6`. With a warm -cache-dir this does zero
// SAT work — the whole point of the windowed path.
func cmdLabels(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("labels", flag.ExitOnError)
	name := fs.String("problem", "mis", "problem key (table-backed; see `lclgrid list`)")
	n := fs.Int("n", 0, "torus side for an n×n square (0 = smallest the normal form supports)")
	sides := fs.String("sides", "", "torus shape NXxNY (overrides -n; sides up to 10^6 each)")
	seed := fs.Int64("seed", 0, "identifier seed (0 = sequential; see AffineIDs)")
	x := fs.Int("x", 0, "window origin, east coordinate (wraps)")
	y := fs.Int("y", 0, "window origin, north coordinate (wraps)")
	w := fs.Int("w", 8, "window width")
	h := fs.Int("h", 8, "window height")
	mode := fs.String("mode", "", `anchor mode: "exact" (default; matches full-grid run) or "lattice" (periodic anchors, needs sides divisible by the lattice modulus)`)
	k := fs.Int("k", 0, "force synthesis with this anchor power (0 = registry hints)")
	cacheDir := fs.String("cache-dir", "", "directory for the persistent synthesis cache")
	verbose := fs.Bool("v", false, "log engine events to stderr")
	logFormat := fs.String("log", "text", `structured log format: "text" or "json"`)
	jsonOut := fs.Bool("json", false, "print the full LabelResponse as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := lclgrid.LabelRequest{
		Key: *name, N: *n, Seed: *seed,
		X: *x, Y: *y, W: *w, H: *h,
		Mode: *mode, Power: *k,
	}
	if *sides != "" {
		parts := strings.SplitN(*sides, "x", 2)
		if len(parts) != 2 {
			return fmt.Errorf("-sides wants NXxNY, got %q", *sides)
		}
		nx, err := strconv.Atoi(parts[0])
		if err != nil {
			return fmt.Errorf("-sides: %v", err)
		}
		ny, err := strconv.Atoi(parts[1])
		if err != nil {
			return fmt.Errorf("-sides: %v", err)
		}
		req.Sides, req.N = []int{nx, ny}, 0
	}
	eng, err := buildEngine(*verbose, *logFormat, *cacheDir)
	if err != nil {
		return err
	}
	res, err := eng.LabelWindow(ctx, req)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprintf(out, "%s on %d×%d torus, window %dx%d at (%d,%d), mode %s (k=%d %dx%d, cache hit %v, %d rounds)\n",
		res.Problem, res.Sides[0], res.Sides[1], res.W, res.H, res.X, res.Y, res.Mode,
		res.Attempt.K, res.Attempt.H, res.Attempt.W, res.CacheHit, res.Rounds)
	// Rows print north to south so the output reads like a map.
	for r := res.H - 1; r >= 0; r-- {
		row := make([]string, res.W)
		for c := 0; c < res.W; c++ {
			row[c] = strconv.Itoa(res.Labels[r*res.W+c])
		}
		fmt.Fprintln(out, strings.Join(row, " "))
	}
	st := res.Stats
	fmt.Fprintf(out, "work: %d window nodes, %d anchor evaluations (%d halo, radius %d), %d colour cells\n",
		st.WindowNodes, st.AnchorNodes, st.HaloNodes, st.HaloRadius, st.ColorNodes)
	return nil
}
