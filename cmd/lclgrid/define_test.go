package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	lclgrid "lclgrid"
)

const defineDoc = `{"name":"cli 3-colouring","dims":2,"labels":["1","2","3"],` +
	`"allow":[[["1","2"],["1","3"],["2","1"],["2","3"],["3","1"],["3","2"]],` +
	`[["1","2"],["1","3"],["2","1"],["2","3"],["3","1"],["3","2"]]]}`

// TestCmdDefine registers a DSL definition against a live server and
// checks the human-readable summary: key, fingerprint, ranked plan, and
// the idempotency notice on a re-run.
func TestCmdDefine(t *testing.T) {
	ts := httptest.NewServer(lclgrid.NewServer(lclgrid.NewEngine()))
	defer ts.Close()

	var out bytes.Buffer
	if err := cmdDefine(bg, []string{"-server", ts.URL, defineDoc}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	first := out.String()
	for _, want := range []string{"key:", "user:", "(created)", "fingerprint:", "plan:", "baseline"} {
		if !strings.Contains(first, want) {
			t.Errorf("define output missing %q:\n%s", want, first)
		}
	}

	// Re-defining is idempotent on the fingerprint.
	out.Reset()
	if err := cmdDefine(bg, []string{"-server", ts.URL, defineDoc}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "already registered") {
		t.Errorf("re-define output missing the idempotency notice:\n%s", out.String())
	}

	// The definition may arrive on stdin, and -compact prints the raw
	// response document.
	out.Reset()
	if err := cmdDefine(bg, []string{"-server", ts.URL, "-compact"}, strings.NewReader(defineDoc), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"fingerprint":`) {
		t.Errorf("compact output is not the response document:\n%s", out.String())
	}
}

// TestCmdDefineRejectsLocally: structural defects fail before any round
// trip — the same message the server would send, minus the network.
func TestCmdDefineRejectsLocally(t *testing.T) {
	var out bytes.Buffer
	err := cmdDefine(bg, []string{"-server", "http://127.0.0.1:1", `{"dims":2,"labels":["a"],"allow":[[["a","zzz"]],[]]}`}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "not in the alphabet") {
		t.Fatalf("want a local validation error, got %v", err)
	}
	if err := cmdDefine(bg, []string{"-server", "http://127.0.0.1:1"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("empty input must fail with usage guidance")
	}
}

// TestCmdListSource: list -v carries the SOURCE column separating
// builtin catalogue entries from parameterised families.
func TestCmdListSource(t *testing.T) {
	var out bytes.Buffer
	if err := cmdList([]string{"-v"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SOURCE") {
		t.Fatalf("list -v output missing the SOURCE column:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "builtin") {
		t.Errorf("list -v output names no builtin source:\n%s", out.String())
	}
}
