// Command lclgrid is the command-line front end of the reproduction. All
// subcommands resolve problems through the package Registry and solve
// through the synthesis-caching Engine:
//
//	lclgrid list                     print the problem registry
//	lclgrid experiments [-id E3]     regenerate the paper's tables/figures
//	lclgrid classify -problem 4col   run the one-sided classification oracle
//	lclgrid synth -problem 4col -k 3 synthesize a normal-form algorithm
//	lclgrid run -problem 4col        solve on an n×n torus via the registry's solver
//	lclgrid table                    print the Theorem 22 orientation table
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	lclgrid "lclgrid"
	"lclgrid/internal/experiments"
	"lclgrid/internal/orient"
)

// engine is the process-wide solving service; every subcommand goes
// through it, so repeated syntheses within one invocation are cached.
var engine = lclgrid.NewEngine()

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Stdout)
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "table":
		err = cmdTable()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lclgrid:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lclgrid <list|experiments|classify|synth|run|table> [flags]")
}

// lookup resolves a problem key against the engine's registry.
func lookup(key string) (*lclgrid.ProblemSpec, error) {
	return engine.Registry().Lookup(key)
}

// cmdList prints the registry contents so the CLI is discoverable.
func cmdList(w *os.File) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "KEY\tPROBLEM\tDIMS\tLABELS\tCLASS\tMIN SIDE")
	for _, spec := range engine.Registry().Specs() {
		labels := fmt.Sprint(spec.NumLabels)
		if spec.NumLabels == 0 {
			labels = "-"
		}
		side := fmt.Sprint(spec.MinSide)
		if spec.SideModulus > 1 {
			side += fmt.Sprintf(" (mult of %d)", spec.SideModulus)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			spec.Key, spec.Name, spec.Dims, labels, spec.Class, side)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfamilies: <k>col, <k>edgecol, orient<digits 0-4>")
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "", "run a single experiment id (e.g. E3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range experiments.All() {
		if *id != "" && e.ID != *id {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	maxK := fs.Int("maxk", 3, "largest anchor power to try")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if spec.Problem == nil {
		fmt.Printf("%s: %s (by Theorem 3 the oracle does not apply to L_M)\n", spec.Name, spec.Class)
		return nil
	}
	p := spec.Problem()
	res := engine.Classify(p, *maxK)
	fmt.Printf("%s: %s (registry: %s)\n", p, res.Class, spec.Class)
	for _, a := range res.Attempts {
		fmt.Printf("  k=%d window %dx%d tiles=%d success=%v\n", a.K, a.H, a.W, a.NumTiles, a.Success)
	}
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	k := fs.Int("k", 3, "anchor power")
	h := fs.Int("h", 0, "window height (0 = paper default)")
	w := fs.Int("w", 0, "window width (0 = paper default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if spec.Problem == nil {
		return fmt.Errorf("%s has no SFT form to synthesize against", spec.Name)
	}
	p := spec.Problem()
	if *h == 0 || *w == 0 {
		*h, *w = lclgrid.DefaultWindow(*k)
	}
	alg, cached, err := engine.Synthesize(p, *k, *h, *w)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %s: k=%d window %dx%d tiles=%d decisions=%d conflicts=%d cached=%v\n",
		p.Name(), alg.K, alg.H, alg.W, alg.Graph.NumTiles(),
		alg.SolverStats.Decisions, alg.SolverStats.Conflicts, cached)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	k := fs.Int("k", 0, "force synthesis with this anchor power (0 = registry solver)")
	n := fs.Int("n", 0, "torus side (0 = smallest the solver supports)")
	seed := fs.Int64("seed", 1, "identifier seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("torus side must be positive, got %d", *n)
	}
	if *n == 0 {
		// Pick the smallest side the registered solver supports. An
		// explicit -n is honoured even when it violates the side hints:
		// running a global problem on an "impossible" torus is exactly
		// how unsolvability certificates are produced.
		*n = spec.SmallestSide()
	}
	var opts []lclgrid.Option
	if *k > 0 {
		opts = append(opts, lclgrid.WithPower(*k))
	}
	g := lclgrid.Square(*n)
	res, err := engine.Solve(*name, g, lclgrid.PermutedIDs(g.N(), *seed), opts...)
	if err != nil {
		return err
	}
	fmt.Printf("%s on %d×%d torus: %v (log*(n²)=%d)\n", spec.Name, *n, *n, res, lclgrid.LogStar(*n**n))
	return nil
}

func cmdTable() error {
	fmt.Println("Theorem 22: X-orientation classification")
	for _, row := range orient.Table() {
		fmt.Printf("X=%-12v %s\n", row.X, row.Class)
	}
	return nil
}
