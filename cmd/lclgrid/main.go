// Command lclgrid is the command-line front end of the reproduction. All
// subcommands resolve problems through the package Registry and solve
// through the synthesis-caching Engine under a signal-cancellable
// context (Ctrl-C aborts an in-flight SAT synthesis cleanly):
//
//	lclgrid list [-v]                print the problem registry (-v adds plan hints and sources)
//	lclgrid explain '<request>'      print the ranked solve plan without solving
//	lclgrid define '<problem-def>'   register a table-DSL problem on a running server
//	lclgrid experiments [-id E3]     regenerate the paper's tables/figures
//	lclgrid classify -problem 4col   run the one-sided classification oracle
//	lclgrid synth -problem 4col -k 3 synthesize a normal-form algorithm
//	lclgrid run -problem 4col        solve on an n×n torus via the registry's solver
//	lclgrid labels -problem mis      label one window of an arbitrarily large torus
//	lclgrid batch [-workers 8]       stream JSONL SolveRequests from stdin
//	lclgrid serve [-addr host:port]  serve solve/batch/explain over HTTP with Prometheus metrics
//	lclgrid cachesvc [-dir d]        serve the fleet's shared blob/lease cache
//	lclgrid gateway -shards a,b      front a fleet: route and fan out by fingerprint
//	lclgrid warm [-cache-dir d]      pre-synthesize the registry catalogue
//	lclgrid table                    print the Theorem 22 orientation table
//	lclgrid version                  print the module version and VCS revision
//
// batch, serve and warm accept -cache-dir to persist synthesized lookup
// tables across invocations, and -v to log engine events to stderr as
// structured slog lines (-log json switches them to JSON);
// `batch -explain` prints each request's plan as JSONL instead of
// solving, and `serve -warm` pre-synthesizes the catalogue before the
// listener opens.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	lclgrid "lclgrid"
	"lclgrid/internal/experiments"
	"lclgrid/internal/orient"
)

// engine is the process-wide solving service for the subcommands without
// engine flags; batch and warm build their own (cache directory and
// observer are per-invocation configuration).
var engine = lclgrid.NewEngine()

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One signal-scoped context for the whole invocation: Ctrl-C (or a
	// supervisor's SIGTERM) cancels in-flight solves at their next
	// checkpoint instead of killing the process mid-write — and tells
	// `serve` to drain gracefully.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:], os.Stdout)
	case "explain":
		err = cmdExplain(os.Args[2:], os.Stdin, os.Stdout)
	case "define":
		err = cmdDefine(ctx, os.Args[2:], os.Stdin, os.Stdout)
	case "experiments":
		err = cmdExperiments(ctx, os.Args[2:])
	case "classify":
		err = cmdClassify(ctx, os.Args[2:])
	case "synth":
		err = cmdSynth(ctx, os.Args[2:])
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "labels":
		err = cmdLabels(ctx, os.Args[2:], os.Stdout)
	case "batch":
		err = cmdBatch(ctx, os.Args[2:], os.Stdin, os.Stdout)
	case "serve":
		err = cmdServe(ctx, os.Args[2:], os.Stdout)
	case "cachesvc":
		err = cmdCachesvc(ctx, os.Args[2:], os.Stdout)
	case "gateway":
		err = cmdGateway(ctx, os.Args[2:], os.Stdout)
	case "warm":
		err = cmdWarm(ctx, os.Args[2:], os.Stdout)
	case "table":
		err = cmdTable()
	case "version":
		err = cmdVersion(os.Stdout)
	default:
		unknownSubcommand(os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lclgrid:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lclgrid <list|explain|define|experiments|classify|synth|run|labels|batch|serve|cachesvc|gateway|warm|table|version> [flags]")
}

// newEngine is the engine constructor behind buildEngine — a variable so
// tests can inject a custom registry (e.g. an unwarmable catalogue for
// the warm partial-failure tests) under the real subcommand code paths.
var newEngine = lclgrid.NewEngine

// buildEngine constructs the engine for subcommands with engine flags:
// an optional disk-persisted synthesis cache, an optional structured
// stderr event logger (-v; -log selects text or json), and any extra
// engine options the subcommand needs (metrics observers, synthesis
// worker bounds).
func buildEngine(verbose bool, logFormat, cacheDir string, extra ...lclgrid.EngineOption) (*lclgrid.Engine, error) {
	var opts []lclgrid.EngineOption
	if cacheDir != "" {
		cache, err := lclgrid.NewDiskCache(cacheDir, lclgrid.NewMemoryCache())
		if err != nil {
			return nil, err
		}
		opts = append(opts, lclgrid.WithCache(cache))
	}
	if verbose {
		opts = append(opts, lclgrid.WithObserver(newSlogObserver(newLogger(logFormat, verbose))))
	}
	opts = append(opts, extra...)
	return newEngine(opts...), nil
}

// newLogger builds the process's structured logger: slog to stderr,
// "json" for machine-readable lines, anything else the text handler.
// Verbose invocations log at Debug (every engine event), quiet ones at
// Info.
func newLogger(format string, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// slogObserver is the -v observer: one structured log line per engine
// event (the successor of the ad-hoc printf logger — same events, but
// each field is queryable and `-log json` makes them machine-readable).
type slogObserver struct {
	l *slog.Logger
}

func newSlogObserver(l *slog.Logger) *slogObserver {
	return &slogObserver{l: l.With(slog.String("component", "engine"))}
}

func reqLabel(req lclgrid.SolveRequest) string {
	name := req.Key
	if name == "" && req.Problem != nil {
		name = req.Problem.Name()
	}
	switch {
	case len(req.Sides) > 0:
		return fmt.Sprintf("%s sides=%v", name, req.Sides)
	case req.N > 0:
		return fmt.Sprintf("%s n=%d", name, req.N)
	}
	return name
}

func (o *slogObserver) RequestStart(req lclgrid.SolveRequest) {
	o.l.Debug("request start", "req", reqLabel(req))
}

func (o *slogObserver) RequestEnd(req lclgrid.SolveRequest, res *lclgrid.Result, err error) {
	if err != nil {
		o.l.Info("request end", "req", reqLabel(req), "error", err.Error())
		return
	}
	o.l.Debug("request end", "req", reqLabel(req), "solver", res.Solver,
		"rounds", res.Rounds, "elapsed", res.Elapsed.Round(time.Microsecond).String())
}

func (o *slogObserver) SynthesisStart(key lclgrid.SynthKey) {
	o.l.Debug("synthesis start", "key", key.String())
}

func (o *slogObserver) SynthesisEnd(key lclgrid.SynthKey, elapsed time.Duration, err error) {
	if err != nil {
		o.l.Info("synthesis end", "key", key.String(), "elapsed", elapsed.Round(time.Microsecond).String(), "error", err.Error())
		return
	}
	o.l.Debug("synthesis end", "key", key.String(), "elapsed", elapsed.Round(time.Microsecond).String())
}

func (o *slogObserver) CacheHit(key lclgrid.SynthKey) {
	o.l.Debug("cache hit", "key", key.String())
}

func (o *slogObserver) CacheMiss(key lclgrid.SynthKey) {
	o.l.Debug("cache miss", "key", key.String())
}

func (o *slogObserver) CacheEvict(key lclgrid.SynthKey) {
	o.l.Debug("cache evict", "key", key.String())
}

func (o *slogObserver) Fallback(req lclgrid.SolveRequest, cause error) {
	o.l.Info("fallback to Θ(n) baseline", "req", reqLabel(req), "cause", cause.Error())
}

func (o *slogObserver) PlanBuilt(req lclgrid.SolveRequest, plan *lclgrid.Plan) {
	kinds := make([]string, len(plan.Strategies))
	for i := range plan.Strategies {
		kinds[i] = string(plan.Strategies[i].Kind)
		if plan.Strategies[i].Skip != "" {
			kinds[i] += "(skip)"
		}
	}
	o.l.Debug("plan built", "req", reqLabel(req), "plan", strings.Join(kinds, " → "))
}

func (o *slogObserver) StrategyStart(req lclgrid.SolveRequest, s *lclgrid.PlannedStrategy) {
	o.l.Debug("strategy start", "req", reqLabel(req), "kind", string(s.Kind))
}

func (o *slogObserver) StrategyEnd(req lclgrid.SolveRequest, s *lclgrid.PlannedStrategy, res *lclgrid.Result, err error) {
	if err != nil {
		o.l.Info("strategy end", "req", reqLabel(req), "kind", string(s.Kind), "error", err.Error())
		return
	}
	o.l.Debug("strategy end", "req", reqLabel(req), "kind", string(s.Kind), "solver", res.Solver)
}

// WindowStart implements lclgrid.WindowObserver.
func (o *slogObserver) WindowStart(req lclgrid.LabelRequest) {
	o.l.Debug("window start", "key", req.Key)
}

// WindowEnd implements lclgrid.WindowObserver.
func (o *slogObserver) WindowEnd(req lclgrid.LabelRequest, stats lclgrid.WindowStats, err error, elapsed time.Duration) {
	if err != nil {
		o.l.Info("window end", "key", req.Key, "elapsed", elapsed.Round(time.Microsecond).String(), "error", err.Error())
		return
	}
	o.l.Debug("window end", "key", req.Key, "elapsed", elapsed.Round(time.Microsecond).String(),
		"window_nodes", stats.WindowNodes, "halo_nodes", stats.HaloNodes)
}

// lookup resolves a problem key against the engine's registry.
func lookup(key string) (*lclgrid.ProblemSpec, error) {
	return engine.Registry().Lookup(key)
}

// cmdList prints the registry contents so the CLI is discoverable; -v
// adds each spec's plan hint (the strategy column), so the registered
// class, minimum torus side and attempt shapes are cross-checkable
// against `lclgrid explain` output.
func cmdList(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	verbose := fs.Bool("v", false, "include each key's plan hint (strategy and attempt shapes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	header := "KEY\tPROBLEM\tDIMS\tLABELS\tCLASS\tMIN SIDE"
	if *verbose {
		header += "\tSOURCE\tSTRATEGY"
	}
	fmt.Fprintln(tw, header)
	for _, spec := range engine.Registry().Specs() {
		labels := fmt.Sprint(spec.NumLabels)
		if spec.NumLabels == 0 {
			labels = "-"
		}
		side := fmt.Sprint(spec.MinSide)
		if spec.SideModulus > 1 {
			side += fmt.Sprintf(" (mult of %d)", spec.SideModulus)
		}
		line := fmt.Sprintf("%s\t%s\t%d\t%s\t%s\t%s",
			spec.Key, spec.Name, spec.Dims, labels, spec.Class, side)
		if *verbose {
			line += "\t" + spec.SourceLabel() + "\t" + spec.StrategySummary(engine)
		}
		fmt.Fprintln(tw, line)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfamilies: <k>col, <k>edgecol, orient<digits 0-4>")
	return nil
}

// cmdExplain prints the ranked Plan for one SolveRequest without
// solving it — and, because planning performs no SAT work, without any
// synthesis cost:
//
//	lclgrid explain '{"key":"4col","n":8}'
//
// The request is the same JSON document `lclgrid batch` consumes (read
// from stdin when no argument is given). -compact prints one line
// instead of indented JSON.
func cmdExplain(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	compact := fs.Bool("compact", false, "print the plan as a single JSON line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if doc == "" {
		data, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		doc = strings.TrimSpace(string(data))
	}
	if doc == "" {
		return fmt.Errorf("explain needs a JSON SolveRequest (argument or stdin), e.g. '{\"key\":\"4col\",\"n\":8}'")
	}
	var req lclgrid.SolveRequest
	if err := json.Unmarshal([]byte(doc), &req); err != nil {
		return fmt.Errorf("bad request document: %w", err)
	}
	plan, err := engine.Plan(req)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(plan)
}

func cmdExperiments(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "", "run a single experiment id (e.g. E3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range experiments.All() {
		if err := ctx.Err(); err != nil {
			// A signal landing inside a non-engine experiment (pure
			// computation, ctx unused) is still honoured between
			// experiments.
			return err
		}
		if *id != "" && e.ID != *id {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(ctx, os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdClassify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	maxK := fs.Int("maxk", 3, "largest anchor power to try")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if spec.Problem == nil {
		fmt.Printf("%s: %s (by Theorem 3 the oracle does not apply to L_M)\n", spec.Name, spec.Class)
		return nil
	}
	p := spec.Problem()
	res := engine.Classify(ctx, p, *maxK)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("%s: %s (registry: %s)\n", p, res.Class, spec.Class)
	for _, a := range res.Attempts {
		status := fmt.Sprintf("success=%v", a.Success)
		if a.Aborted {
			// A race loser cancelled by the winner proves nothing about
			// its shape — do not render it like a refuted (UNSAT) one.
			status = "aborted (cancelled by the winning candidate)"
		}
		fmt.Printf("  k=%d window %dx%d tiles=%d %s\n", a.K, a.H, a.W, a.NumTiles, status)
	}
	return nil
}

func cmdSynth(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	k := fs.Int("k", 3, "anchor power")
	h := fs.Int("h", 0, "window height (0 = paper default)")
	w := fs.Int("w", 0, "window width (0 = paper default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if spec.Problem == nil {
		return fmt.Errorf("%s has no SFT form to synthesize against", spec.Name)
	}
	p := spec.Problem()
	if *h == 0 || *w == 0 {
		*h, *w = lclgrid.DefaultWindow(*k)
	}
	alg, cached, err := engine.Synthesize(ctx, p, *k, *h, *w)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %s: k=%d window %dx%d tiles=%d decisions=%d conflicts=%d cached=%v\n",
		p.Name(), alg.K, alg.H, alg.W, alg.Graph.NumTiles(),
		alg.SolverStats.Decisions, alg.SolverStats.Conflicts, cached)
	return nil
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	k := fs.Int("k", 0, "force synthesis with this anchor power (0 = registry solver)")
	n := fs.Int("n", 0, "torus side (0 = smallest the solver supports)")
	seed := fs.Int64("seed", 1, "identifier seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("torus side must be positive, got %d", *n)
	}
	if *n == 0 {
		// Pick the smallest side the registered solver supports. An
		// explicit -n is honoured even when it violates the side hints:
		// running a global problem on an "impossible" torus is exactly
		// how unsolvability certificates are produced.
		*n = spec.SmallestSide()
	}
	// Pass explicit IDs rather than Seed: the request's Seed field treats
	// 0 as "sequential", but the flag's -seed 0 means the seed-0
	// permutation (the historical CLI behaviour).
	res, err := engine.Solve(ctx, lclgrid.SolveRequest{
		Key: *name, N: *n, IDs: lclgrid.PermutedIDs(*n**n, *seed), Power: *k,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %d×%d torus: %v (log*(n²)=%d, %v)\n", spec.Name, *n, *n, res, lclgrid.LogStar(*n**n), res.Elapsed.Round(time.Microsecond))
	return nil
}

func cmdWarm(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("warm", flag.ExitOnError)
	problems := fs.String("problems", "", "comma-separated registry keys (empty = every registered key)")
	cacheDir := fs.String("cache-dir", "", "persist synthesized tables under this directory")
	verbose := fs.Bool("v", false, "log engine events to stderr")
	logFormat := fs.String("log", "text", `structured log format: "text" or "json"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, err := buildEngine(*verbose, *logFormat, *cacheDir)
	if err != nil {
		return err
	}
	var keys []string
	if *problems != "" {
		for _, k := range strings.Split(*problems, ",") {
			if k = strings.TrimSpace(k); k != "" {
				keys = append(keys, k)
			}
		}
	}
	start := time.Now()
	ws, err := eng.Warm(ctx, keys...)
	// Print the (possibly partial) stats even on failure: the operator
	// should see how far the sweep got before the error.
	line := fmt.Sprintf("warm: %d problems examined, %d warmed, %d skipped (no synthesis), %d syntheses performed",
		ws.Problems, ws.Warmed, ws.Skipped, ws.Syntheses)
	if ws.Failed > 0 {
		line += fmt.Sprintf(", %d failed", ws.Failed)
	}
	fmt.Fprintf(out, "%s, %v\n", line, time.Since(start).Round(time.Millisecond))
	return err
}

// batchLine is one JSONL output record of `lclgrid batch`: the index and
// key echo the request; exactly one of result, plan (-explain mode) and
// error is present.
type batchLine struct {
	Index  int             `json:"index"`
	Key    string          `json:"key,omitempty"`
	Result *lclgrid.Result `json:"result,omitempty"`
	Plan   *lclgrid.Plan   `json:"plan,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// decodedRequest is one element of the background decode stream: a
// request, or the decode error that ended the stream.
type decodedRequest struct {
	req lclgrid.SolveRequest
	err error
}

// cmdBatch streams JSONL SolveRequests from in to out end to end: a
// background goroutine decodes requests, the engine's SolveStream pulls
// them into a bounded worker pool as workers free up, and each result is
// encoded the moment it completes — by default in completion order
// (each line's "index" identifies its request), with -ordered buffering
// only as much as needed to restore input order. Memory stays
// O(workers) on the default path however long the input stream is.
// Per-request failures become {"error": ...} lines and do not fail the
// process; I/O and decode errors do, and a deadline/cancel that cost
// requests (failed them or stopped consumption early) sets a non-zero
// exit.
func cmdBatch(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "deadline for the whole batch (0 = none)")
	labels := fs.Bool("labels", true, "include the labelling in result lines")
	stats := fs.Bool("stats", false, "print aggregate batch stats to stderr")
	ordered := fs.Bool("ordered", false, "emit results in input order instead of completion order")
	explain := fs.Bool("explain", false, "print each request's ranked plan instead of solving it")
	cacheDir := fs.String("cache-dir", "", "persist synthesized tables under this directory")
	verbose := fs.Bool("v", false, "log engine events to stderr")
	logFormat := fs.String("log", "text", `structured log format: "text" or "json"`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	eng, err := buildEngine(*verbose, *logFormat, *cacheDir)
	if err != nil {
		return err
	}

	// The decoder goroutine is the only reader of `in`; it ends the
	// stream by closing the channel (after an error element for anything
	// but EOF). It may outlive cmdBatch blocked in Decode — that is fine,
	// the process is about to exit and nothing waits on it.
	reqCh := make(chan decodedRequest)
	go func() {
		defer close(reqCh)
		dec := json.NewDecoder(bufio.NewReader(in))
		for {
			var req lclgrid.SolveRequest
			if err := dec.Decode(&req); err != nil {
				if err != io.EOF {
					reqCh <- decodedRequest{err: err}
				}
				return
			}
			reqCh <- decodedRequest{req: req}
		}
	}()

	if *explain {
		// Plan-only mode: every request becomes a plan line, no solver
		// runs and (planning is probe-only) no SAT call is made.
		enc := json.NewEncoder(out)
		index := 0
		for d := range reqCh {
			if d.err != nil {
				return fmt.Errorf("request %d: %w", index, d.err)
			}
			line := batchLine{Index: index, Key: d.req.Key}
			if plan, err := eng.Plan(d.req); err != nil {
				line.Error = err.Error()
			} else {
				line.Plan = plan
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
			index++
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return nil
	}

	// keys echoes each request's problem key onto its output line; the
	// map holds only in-flight indexes (deleted once emitted), keeping
	// the streaming path O(workers). It is written by the request
	// sequence (SolveStream's producer goroutine) and read by the
	// consuming loop below.
	var (
		keyMu sync.Mutex
		keys  = make(map[int]string)
	)
	// produceErr is written by the request sequence and read only after
	// the stream is fully drained (the stream's goroutines form the
	// happens-before edge).
	var produceErr error
	consumed := 0
	reqSeq := func(yield func(lclgrid.SolveRequest) bool) {
		// consume records one decoded element's bookkeeping (key echo,
		// decode-error formatting) and hands the request to the stream;
		// it reports whether the sequence should keep going.
		consume := func(d decodedRequest, ok bool) bool {
			if !ok {
				return false // clean EOF
			}
			if d.err != nil {
				produceErr = fmt.Errorf("request %d: %w", consumed, d.err)
				return false
			}
			keyMu.Lock()
			keys[consumed] = d.req.Key
			keyMu.Unlock()
			consumed++
			return yield(d.req)
		}
		for {
			select {
			case d, ok := <-reqCh:
				if !consume(d, ok) {
					return
				}
			case <-ctx.Done():
				// Expired while waiting for input. A deadline firing right
				// as the input finishes must not fail a fully-served
				// batch, so re-check the channel without blocking: a clean
				// close is EOF, a pending request is consumed (it still
				// gets its one — ctx-error — output line) and only then is
				// the run marked truncated.
				select {
				case d, ok := <-reqCh:
					if ok && d.err == nil {
						produceErr = ctx.Err()
					}
					consume(d, ok)
				default:
					produceErr = ctx.Err()
				}
				return
			}
		}
	}

	enc := json.NewEncoder(out)
	var total lclgrid.BatchStats
	var itemCtxErr error
	start := time.Now()
	emit := func(it lclgrid.BatchItem) error {
		keyMu.Lock()
		key := keys[it.Index]
		delete(keys, it.Index)
		keyMu.Unlock()
		line := batchLine{Index: it.Index, Key: key}
		total.Requests++
		if it.Err != nil {
			total.Errors++
			line.Error = it.Err.Error()
			if lclgrid.IsContextError(it.Err) {
				itemCtxErr = it.Err
			}
		} else {
			if it.Result != nil && it.Result.CacheHit {
				total.CacheHits++
			}
			line.Result = it.Result
			if !*labels && line.Result != nil {
				stripped := *line.Result
				stripped.Labels = nil
				line.Result = &stripped
			}
		}
		return enc.Encode(line)
	}

	stream := eng.SolveStream(ctx, reqSeq, lclgrid.WithWorkers(*workers))
	if *ordered {
		stream = lclgrid.Reordered(stream)
	}
	for it := range stream {
		if err := emit(it); err != nil {
			return err
		}
	}
	total.Wall = time.Since(start)

	if *stats {
		fmt.Fprintf(os.Stderr, "batch: %d requests, %d errors, %d cache hits, %v wall\n",
			total.Requests, total.Errors, total.CacheHits, total.Wall.Round(time.Millisecond))
	}
	if produceErr != nil && !lclgrid.IsContextError(produceErr) {
		return produceErr // a decode error names its request
	}
	if itemCtxErr != nil {
		return itemCtxErr
	}
	return produceErr
}

func cmdTable() error {
	fmt.Println("Theorem 22: X-orientation classification")
	for _, row := range orient.Table() {
		fmt.Printf("X=%-12v %s\n", row.X, row.Class)
	}
	return nil
}
