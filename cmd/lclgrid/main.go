// Command lclgrid is the command-line front end of the reproduction:
//
//	lclgrid experiments [-id E3]     regenerate the paper's tables/figures
//	lclgrid classify -problem 4col   run the one-sided classification oracle
//	lclgrid synth -problem 4col -k 3 synthesize a normal-form algorithm
//	lclgrid run -problem 4col -n 28  synthesize, run on an n×n torus, verify
//	lclgrid table                    print the Theorem 22 orientation table
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	lclgrid "lclgrid"
	"lclgrid/internal/experiments"
	"lclgrid/internal/orient"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "synth":
		err = cmdSynth(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "table":
		err = cmdTable()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lclgrid:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lclgrid <experiments|classify|synth|run|table> [flags]")
}

func problemByName(name string) (*lclgrid.Problem, error) {
	switch {
	case strings.HasSuffix(name, "edgecol"):
		var k int
		if _, err := fmt.Sscanf(name, "%dedgecol", &k); err != nil {
			return nil, fmt.Errorf("bad problem %q", name)
		}
		return lclgrid.EdgeColoring(k, 2).Problem, nil
	case strings.HasSuffix(name, "col"):
		var k int
		if _, err := fmt.Sscanf(name, "%dcol", &k); err != nil {
			return nil, fmt.Errorf("bad problem %q", name)
		}
		return lclgrid.VertexColoring(k, 2), nil
	case name == "mis":
		return lclgrid.MIS(2).Problem, nil
	case name == "matching":
		return lclgrid.MaximalMatching(2).Problem, nil
	case name == "is":
		return lclgrid.IndependentSet(2), nil
	case strings.HasPrefix(name, "orient"):
		var x []int
		for _, ch := range name[len("orient"):] {
			if ch < '0' || ch > '4' {
				return nil, fmt.Errorf("bad orientation spec %q", name)
			}
			x = append(x, int(ch-'0'))
		}
		return lclgrid.XOrientation(x, 2).Problem, nil
	default:
		return nil, fmt.Errorf("unknown problem %q (try 4col, 5edgecol, mis, matching, is, orient134)", name)
	}
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "", "run a single experiment id (e.g. E3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range experiments.All() {
		if *id != "" && e.ID != *id {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem name")
	maxK := fs.Int("maxk", 3, "largest anchor power to try")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := problemByName(*name)
	if err != nil {
		return err
	}
	res := lclgrid.ClassifyOracle(p, *maxK)
	fmt.Printf("%s: %s\n", p, res.Class)
	for _, a := range res.Attempts {
		fmt.Printf("  k=%d window %dx%d tiles=%d success=%v\n", a.K, a.H, a.W, a.NumTiles, a.Success)
	}
	return nil
}

func cmdSynth(args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem name")
	k := fs.Int("k", 3, "anchor power")
	h := fs.Int("h", 0, "window height (0 = paper default)")
	w := fs.Int("w", 0, "window width (0 = paper default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := problemByName(*name)
	if err != nil {
		return err
	}
	if *h == 0 || *w == 0 {
		*h, *w = lclgrid.DefaultWindow(*k)
	}
	alg, err := lclgrid.Synthesize(p, *k, *h, *w)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %s: k=%d window %dx%d tiles=%d decisions=%d conflicts=%d\n",
		p.Name(), alg.K, alg.H, alg.W, alg.Graph.NumTiles(),
		alg.SolverStats.Decisions, alg.SolverStats.Conflicts)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem name")
	k := fs.Int("k", 3, "anchor power")
	n := fs.Int("n", 28, "torus side")
	seed := fs.Int64("seed", 1, "identifier seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := problemByName(*name)
	if err != nil {
		return err
	}
	h, w := lclgrid.DefaultWindow(*k)
	alg, err := lclgrid.Synthesize(p, *k, h, w)
	if err != nil {
		return err
	}
	g := lclgrid.Square(*n)
	out, rounds, err := alg.Run(g, lclgrid.PermutedIDs(g.N(), *seed))
	if err != nil {
		return err
	}
	if err := p.Verify(g, out); err != nil {
		return fmt.Errorf("output failed verification: %w", err)
	}
	fmt.Printf("%s on %d×%d torus: verified, %d rounds (log*(n²)=%d)\n",
		p.Name(), *n, *n, rounds.Total(), lclgrid.LogStar(*n**n))
	return nil
}

func cmdTable() error {
	fmt.Println("Theorem 22: X-orientation classification")
	for _, row := range orient.Table() {
		fmt.Printf("X=%-12v %s\n", row.X, row.Class)
	}
	return nil
}
