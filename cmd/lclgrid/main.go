// Command lclgrid is the command-line front end of the reproduction. All
// subcommands resolve problems through the package Registry and solve
// through the synthesis-caching Engine under a signal-cancellable
// context (Ctrl-C aborts an in-flight SAT synthesis cleanly):
//
//	lclgrid list                     print the problem registry
//	lclgrid experiments [-id E3]     regenerate the paper's tables/figures
//	lclgrid classify -problem 4col   run the one-sided classification oracle
//	lclgrid synth -problem 4col -k 3 synthesize a normal-form algorithm
//	lclgrid run -problem 4col        solve on an n×n torus via the registry's solver
//	lclgrid batch [-workers 8]       serve JSONL SolveRequests from stdin
//	lclgrid table                    print the Theorem 22 orientation table
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"text/tabwriter"
	"time"

	lclgrid "lclgrid"
	"lclgrid/internal/experiments"
	"lclgrid/internal/orient"
)

// engine is the process-wide solving service; every subcommand goes
// through it, so repeated syntheses within one invocation are cached.
var engine = lclgrid.NewEngine()

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// One signal-scoped context for the whole invocation: Ctrl-C cancels
	// in-flight solves at their next checkpoint instead of killing the
	// process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Stdout)
	case "experiments":
		err = cmdExperiments(ctx, os.Args[2:])
	case "classify":
		err = cmdClassify(ctx, os.Args[2:])
	case "synth":
		err = cmdSynth(ctx, os.Args[2:])
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "batch":
		err = cmdBatch(ctx, os.Args[2:], os.Stdin, os.Stdout)
	case "table":
		err = cmdTable()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lclgrid:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: lclgrid <list|experiments|classify|synth|run|batch|table> [flags]")
}

// lookup resolves a problem key against the engine's registry.
func lookup(key string) (*lclgrid.ProblemSpec, error) {
	return engine.Registry().Lookup(key)
}

// cmdList prints the registry contents so the CLI is discoverable.
func cmdList(w *os.File) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "KEY\tPROBLEM\tDIMS\tLABELS\tCLASS\tMIN SIDE")
	for _, spec := range engine.Registry().Specs() {
		labels := fmt.Sprint(spec.NumLabels)
		if spec.NumLabels == 0 {
			labels = "-"
		}
		side := fmt.Sprint(spec.MinSide)
		if spec.SideModulus > 1 {
			side += fmt.Sprintf(" (mult of %d)", spec.SideModulus)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\n",
			spec.Key, spec.Name, spec.Dims, labels, spec.Class, side)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfamilies: <k>col, <k>edgecol, orient<digits 0-4>")
	return nil
}

func cmdExperiments(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("id", "", "run a single experiment id (e.g. E3)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, e := range experiments.All() {
		if err := ctx.Err(); err != nil {
			// A signal landing inside a non-engine experiment (pure
			// computation, ctx unused) is still honoured between
			// experiments.
			return err
		}
		if *id != "" && e.ID != *id {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(ctx, os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdClassify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	maxK := fs.Int("maxk", 3, "largest anchor power to try")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if spec.Problem == nil {
		fmt.Printf("%s: %s (by Theorem 3 the oracle does not apply to L_M)\n", spec.Name, spec.Class)
		return nil
	}
	p := spec.Problem()
	res := engine.Classify(ctx, p, *maxK)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("%s: %s (registry: %s)\n", p, res.Class, spec.Class)
	for _, a := range res.Attempts {
		fmt.Printf("  k=%d window %dx%d tiles=%d success=%v\n", a.K, a.H, a.W, a.NumTiles, a.Success)
	}
	return nil
}

func cmdSynth(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	k := fs.Int("k", 3, "anchor power")
	h := fs.Int("h", 0, "window height (0 = paper default)")
	w := fs.Int("w", 0, "window width (0 = paper default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if spec.Problem == nil {
		return fmt.Errorf("%s has no SFT form to synthesize against", spec.Name)
	}
	p := spec.Problem()
	if *h == 0 || *w == 0 {
		*h, *w = lclgrid.DefaultWindow(*k)
	}
	alg, cached, err := engine.Synthesize(ctx, p, *k, *h, *w)
	if err != nil {
		return err
	}
	fmt.Printf("synthesized %s: k=%d window %dx%d tiles=%d decisions=%d conflicts=%d cached=%v\n",
		p.Name(), alg.K, alg.H, alg.W, alg.Graph.NumTiles(),
		alg.SolverStats.Decisions, alg.SolverStats.Conflicts, cached)
	return nil
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	name := fs.String("problem", "4col", "problem key (see `lclgrid list`)")
	k := fs.Int("k", 0, "force synthesis with this anchor power (0 = registry solver)")
	n := fs.Int("n", 0, "torus side (0 = smallest the solver supports)")
	seed := fs.Int64("seed", 1, "identifier seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := lookup(*name)
	if err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("torus side must be positive, got %d", *n)
	}
	if *n == 0 {
		// Pick the smallest side the registered solver supports. An
		// explicit -n is honoured even when it violates the side hints:
		// running a global problem on an "impossible" torus is exactly
		// how unsolvability certificates are produced.
		*n = spec.SmallestSide()
	}
	// Pass explicit IDs rather than Seed: the request's Seed field treats
	// 0 as "sequential", but the flag's -seed 0 means the seed-0
	// permutation (the historical CLI behaviour).
	res, err := engine.Solve(ctx, lclgrid.SolveRequest{
		Key: *name, N: *n, IDs: lclgrid.PermutedIDs(*n**n, *seed), Power: *k,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %d×%d torus: %v (log*(n²)=%d, %v)\n", spec.Name, *n, *n, res, lclgrid.LogStar(*n**n), res.Elapsed.Round(time.Microsecond))
	return nil
}

// batchLine is one JSONL output record of `lclgrid batch`: the index and
// key echo the request; exactly one of result and error is present.
type batchLine struct {
	Index  int             `json:"index"`
	Key    string          `json:"key,omitempty"`
	Result *lclgrid.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// decodedRequest is one element of the background decode stream: a
// request, or the decode error that ended the stream.
type decodedRequest struct {
	req lclgrid.SolveRequest
	err error
}

// cmdBatch streams JSONL SolveRequests from in to out: a background
// goroutine decodes requests, the main loop dispatches whatever has
// arrived (up to -chunk per worker-pool round) and writes one JSON
// result line per request, in input order. A slow producer therefore
// gets each request served as it arrives rather than waiting for a full
// chunk, and the batch deadline fires even while blocked on input.
// Per-request failures become {"error": ...} lines and do not fail the
// process; I/O and decode errors do, and a deadline/cancel that cost
// requests (failed them or left input unserved) sets a non-zero exit.
func cmdBatch(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	chunk := fs.Int("chunk", 64, "max requests dispatched per worker-pool round")
	timeout := fs.Duration("timeout", 0, "deadline for the whole batch (0 = none)")
	labels := fs.Bool("labels", true, "include the labelling in result lines")
	stats := fs.Bool("stats", false, "print aggregate batch stats to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chunk < 1 {
		return fmt.Errorf("chunk must be positive, got %d", *chunk)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The decoder goroutine is the only reader of `in`; it ends the
	// stream by closing the channel (after an error element for anything
	// but EOF). It may outlive cmdBatch blocked in Decode — that is fine,
	// the process is about to exit and nothing waits on it.
	reqCh := make(chan decodedRequest)
	go func() {
		defer close(reqCh)
		dec := json.NewDecoder(bufio.NewReader(in))
		for {
			var req lclgrid.SolveRequest
			if err := dec.Decode(&req); err != nil {
				if err != io.EOF {
					reqCh <- decodedRequest{err: err}
				}
				return
			}
			reqCh <- decodedRequest{req: req}
		}
	}()

	enc := json.NewEncoder(out)
	var total lclgrid.BatchStats
	index := 0
	var ctxFailed, decodeErr error
	eof := false
	for !eof && decodeErr == nil && ctxFailed == nil {
		reqs := make([]lclgrid.SolveRequest, 0, *chunk)
		// Block for the round's first request — or the deadline.
		select {
		case d, ok := <-reqCh:
			switch {
			case !ok:
				eof = true
			case d.err != nil:
				decodeErr = fmt.Errorf("request %d: %w", index, d.err)
			default:
				reqs = append(reqs, d.req)
			}
		case <-ctx.Done():
			// Expired while waiting for input: unless the stream is
			// cleanly finished, input may remain unserved — signal the
			// truncation instead of exiting 0 on a cut-short batch. A
			// request already decoded still gets its (ctx-error) output
			// line: every consumed request must produce exactly one line.
			select {
			case d, ok := <-reqCh:
				switch {
				case !ok:
					eof = true
				case d.err != nil:
					decodeErr = fmt.Errorf("request %d: %w", index, d.err)
				default:
					reqs = append(reqs, d.req)
					ctxFailed = ctx.Err()
				}
			default:
				ctxFailed = ctx.Err()
			}
		}
		// Greedily take whatever else has already arrived, without
		// blocking, so a fast producer still gets full pool rounds.
		for len(reqs) > 0 && len(reqs) < *chunk && decodeErr == nil {
			select {
			case d, ok := <-reqCh:
				switch {
				case !ok:
					eof = true
				case d.err != nil:
					decodeErr = fmt.Errorf("request %d: %w", index+len(reqs), d.err)
				default:
					reqs = append(reqs, d.req)
					continue
				}
			default:
			}
			break
		}
		items, st := engine.SolveBatch(ctx, reqs, lclgrid.WithWorkers(*workers))
		total.Add(st)
		for i, it := range items {
			line := batchLine{Index: index + i, Key: reqs[i].Key}
			if it.Err != nil {
				line.Error = it.Err.Error()
				if lclgrid.IsContextError(it.Err) {
					ctxFailed = it.Err
				}
			} else {
				line.Result = it.Result
				if !*labels && line.Result != nil {
					stripped := *line.Result
					stripped.Labels = nil
					line.Result = &stripped
				}
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		index += len(items)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "batch: %d requests, %d errors, %d cache hits, %v wall\n",
			total.Requests, total.Errors, total.CacheHits, total.Wall.Round(time.Millisecond))
	}
	if decodeErr != nil {
		return decodeErr
	}
	return ctxFailed
}

func cmdTable() error {
	fmt.Println("Theorem 22: X-orientation classification")
	for _, row := range orient.Table() {
		fmt.Printf("X=%-12v %s\n", row.X, row.Class)
	}
	return nil
}
