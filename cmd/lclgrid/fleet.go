package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	lclgrid "lclgrid"
)

// newTraceBuffer builds a process's trace ring from its tracing flags —
// nil (tracing disabled) when size <= 0 — plus the /debug/traces
// handler startPprof mounts. The buffer logs through the structured
// logger so slow requests dump their span tree to stderr.
func newTraceBuffer(size int, logFormat string, verbose bool, slow time.Duration) (*lclgrid.TraceBuffer, http.Handler) {
	if size <= 0 {
		return nil, nil
	}
	buf := lclgrid.NewTraceBuffer(size)
	buf.SetLogger(newLogger(logFormat, verbose), slow)
	return buf, buf.Handler()
}

// splitList splits a comma-separated flag value, trimming whitespace
// and dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// cmdCachesvc runs the standalone fleet cache service: the blob store
// (GET/PUT/HEAD/DELETE /cache/{name}) plus the synthesis-lease
// endpoints (/lease/{name}) that serve replicas use to make each cold
// synthesis happen exactly once cluster-wide.
//
//	lclgrid cachesvc -addr 127.0.0.1:8090 -dir /var/lib/lclgrid/cache
//
// With -dir the blobs live in the same one-file-per-table layout as a
// replica's -cache-dir, so an existing warmed cache directory can be
// promoted to the fleet store as-is. Without -dir the store is
// in-memory and dies with the process.
func cmdCachesvc(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cachesvc", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address (host:port; :0 picks an ephemeral port)")
	dir := fs.String("dir", "", "persist blobs under this directory (empty = in-memory)")
	maxBlob := fs.Int64("max-blob", lclgrid.DefaultMaxBlobBytes, "largest accepted blob in bytes")
	drain := fs.Duration("drain", lclgrid.DefaultDrainTimeout, "graceful-shutdown drain window for in-flight requests")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (debug only; e.g. 127.0.0.1:6060)")
	verbose := fs.Bool("v", false, "log slow-request span trees at debug level too")
	logFormat := fs.String("log", "text", `structured log format: "text" or "json"`)
	slowReq := fs.Duration("slow", 0, "log the full span tree of any cache/lease request slower than this (0 = never)")
	traceBuffer := fs.Int("trace-buffer", lclgrid.DefaultTraceBufferSize, "completed traces kept for GET /debug/traces (0 disables tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	traces, tracesHandler := newTraceBuffer(*traceBuffer, *logFormat, *verbose, *slowReq)
	if err := startPprof(*pprofAddr, out, tracesHandler); err != nil {
		return err
	}

	var store lclgrid.BlobStore
	if *dir != "" {
		var err error
		store, err = lclgrid.NewDirBlobStore(*dir)
		if err != nil {
			return err
		}
	}
	csOpts := []lclgrid.CacheServerOption{
		lclgrid.WithMaxBlobBytes(*maxBlob),
		lclgrid.WithCacheDrainTimeout(*drain),
	}
	if traces != nil {
		csOpts = append(csOpts, lclgrid.WithCacheTracing(traces))
	}
	cs := lclgrid.NewCacheServer(store, csOpts...)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lclgrid: cache service on http://%s\n", l.Addr())
	if err := cs.Serve(ctx, l); err != nil {
		return err
	}
	fmt.Fprintln(out, "lclgrid: cache service drained, shutting down")
	return nil
}

// cmdGateway runs the fleet front door: a single host:port that routes
// /v1/solve, /v1/explain, /v1/labels and /v1/export to the shard owning
// each problem's fingerprint on the consistent-hash ring, and fans
// /v1/batch documents across shards, merging the result streams back
// into one JSONL response (ordered with ?ordered=1).
//
//	lclgrid gateway -addr :8080 -shards replica1:8081,replica2:8082
//
// Shard names double as ring members, so the gateway and a replica
// started with `-self replica1:8081 -peers replica1:8081,replica2:8082`
// agree on who owns what. Unreachable shards are retried on the next
// ring member; /readyz answers 503 until at least one shard probes
// healthy.
func cmdGateway(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks an ephemeral port)")
	shards := fs.String("shards", "", "comma-separated shard addresses (required; e.g. host1:8081,host2:8082)")
	timeout := fs.Duration("timeout", lclgrid.DefaultRequestTimeout, "per-request upstream deadline (0 = none)")
	maxInflight := fs.Int("max-inflight", lclgrid.DefaultMaxInflight, "admission bound on concurrent solve/batch requests (0 = unbounded)")
	maxBody := fs.Int64("max-body", lclgrid.DefaultMaxBodyBytes, "request body size cap in bytes (0 = unbounded)")
	drain := fs.Duration("drain", lclgrid.DefaultDrainTimeout, "graceful-shutdown drain window for in-flight requests")
	probe := fs.Duration("probe-interval", 5*time.Second, "shard health probe period")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (debug only; e.g. 127.0.0.1:6060)")
	verbose := fs.Bool("v", false, "log every routed request at debug level")
	logFormat := fs.String("log", "text", `structured log format: "text" or "json"`)
	slowReq := fs.Duration("slow", 0, "log the full span tree of any routed request slower than this (0 = never)")
	traceBuffer := fs.Int("trace-buffer", lclgrid.DefaultTraceBufferSize, "completed traces kept for GET /debug/traces (0 disables tracing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards == "" {
		return fmt.Errorf("gateway: -shards is required (comma-separated shard addresses)")
	}
	traces, tracesHandler := newTraceBuffer(*traceBuffer, *logFormat, *verbose, *slowReq)
	if err := startPprof(*pprofAddr, out, tracesHandler); err != nil {
		return err
	}

	metrics := lclgrid.NewMetricsObserver()
	metrics.SetBuildInfo(buildIdentity())
	gwOpts := []lclgrid.GatewayOption{
		lclgrid.WithGatewayMetrics(metrics),
		lclgrid.WithGatewayMaxInflight(*maxInflight),
		lclgrid.WithGatewayMaxBodyBytes(*maxBody),
		lclgrid.WithGatewayRequestTimeout(*timeout),
		lclgrid.WithGatewayDrainTimeout(*drain),
		lclgrid.WithGatewayProbeInterval(*probe),
	}
	if traces != nil {
		metrics.SetTraceStatsFunc(traces.Stats)
		gwOpts = append(gwOpts, lclgrid.WithGatewayTracing(traces))
	}
	gw, err := lclgrid.NewGateway(splitList(*shards), gwOpts...)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "lclgrid: gateway on http://%s routing %d shards\n", l.Addr(), len(gw.Shards()))
	if err := gw.Serve(ctx, l); err != nil {
		return err
	}
	fmt.Fprintln(out, "lclgrid: gateway drained, shutting down")
	return nil
}
