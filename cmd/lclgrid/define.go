package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"

	lclgrid "lclgrid"
)

// cmdDefine registers a table-DSL problem definition against a running
// server (POST /v1/problems) and prints the registered key, the
// canonical fingerprint and the ranked plan the server would execute:
//
//	lclgrid define -server http://127.0.0.1:8080 \
//	  '{"name":"my-3col","dims":2,"labels":["r","g","b"],"allow":[[...],[...]]}'
//
// The definition is read from the argument or stdin (the same
// convention as `lclgrid explain`). Registration is idempotent on the
// fingerprint: re-defining an existing problem — or a differently
// stated equivalent that normalizes to the same tables — reports the
// existing key. -compact prints the server's raw response document
// instead of the human-readable summary.
func cmdDefine(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("define", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "base URL of a running `lclgrid serve`")
	compact := fs.Bool("compact", false, "print the server's response as a single JSON line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc := strings.TrimSpace(strings.Join(fs.Args(), " "))
	if doc == "" {
		data, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		doc = strings.TrimSpace(string(data))
	}
	if doc == "" {
		return fmt.Errorf("define needs a JSON ProblemDef (argument or stdin), e.g. '{\"dims\":2,\"labels\":[\"a\",\"b\"],\"allow\":[[[\"a\",\"b\"],[\"b\",\"a\"]],[[\"a\",\"b\"],[\"b\",\"a\"]]]}'")
	}

	// Validate locally before the round trip: a malformed or out-of-bounds
	// document fails with the same message the server would send, minus
	// the network.
	var def lclgrid.ProblemDef
	if err := json.Unmarshal([]byte(doc), &def); err != nil {
		return fmt.Errorf("bad problem definition: %w", err)
	}
	if err := def.Validate(); err != nil {
		return err
	}

	base := strings.TrimRight(strings.TrimSpace(*server), "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/problems", bytes.NewReader([]byte(doc)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		var ed struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &ed) == nil && ed.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, ed.Error)
		}
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if *compact {
		_, err := fmt.Fprintln(out, strings.TrimSpace(string(body)))
		return err
	}

	var dr struct {
		Key         string        `json:"key"`
		Fingerprint string        `json:"fingerprint"`
		Created     bool          `json:"created"`
		Plan        *lclgrid.Plan `json:"plan"`
	}
	if err := json.Unmarshal(body, &dr); err != nil {
		return fmt.Errorf("bad server response: %w", err)
	}
	status := "already registered (idempotent on fingerprint)"
	if dr.Created {
		status = "created"
	}
	fmt.Fprintf(out, "key:         %s (%s)\n", dr.Key, status)
	fmt.Fprintf(out, "fingerprint: %s\n", dr.Fingerprint)
	if dr.Plan != nil {
		fmt.Fprintf(out, "plan:        %s on a %v torus\n", dr.Plan.Problem, dr.Plan.Sides)
		for i, s := range dr.Plan.Strategies {
			line := fmt.Sprintf("  %d. %-10s %s", i+1, s.Kind, s.Reason)
			if s.Skip != "" {
				line += " [skipped: " + s.Skip + "]"
			}
			fmt.Fprintln(out, line)
		}
	}
	return nil
}
