// Benchcmp guards the benchmark suite against gross regressions in CI.
// It reads two `go test -bench -json` outputs — a committed baseline
// (BENCH_<pr>.json) and a fresh head run — extracts every "Benchmark...
// ns/op" result, and fails when a benchmark disappeared or slowed past
// -max-ratio. Single-iteration CI runs on shared runners are noisy, so
// the default ratio is deliberately loose: this catches accidental
// quadratic blowups and deleted coverage, not percent-level drift.
//
//	go test -run '^$' -bench . -benchtime 1x -json ./... > bench.json
//	go run ./cmd/benchcmp -base BENCH_6.json -head bench.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of test2json's event schema benchcmp needs.
// Test carries the benchmark name even when the runner splits the name
// and the "N ns/op" result into separate output events.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBench extracts Benchmark name → ns/op from a `go test -json`
// stream. Sub-benchmarks keep their full slash-joined names; a
// benchmark that appears twice keeps its last result.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	results := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var ev testEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate raw `go test -bench` output so the baseline can be
			// regenerated without the -json flag.
			ev = testEvent{Action: "output", Output: string(line) + "\n"}
		}
		if ev.Action != "output" {
			continue
		}
		fields := strings.Fields(ev.Output)
		// Either "BenchmarkName-8 \t 10 \t 123456 ns/op ..." on one line,
		// or just "10 \t 123456 ns/op" with the name in ev.Test.
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i - 1
				break
			}
		}
		if nsIdx < 1 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx], 64)
		if err != nil {
			continue
		}
		name := ev.Test
		if strings.HasPrefix(fields[0], "Benchmark") {
			name = fields[0]
		}
		if !strings.HasPrefix(name, "Benchmark") {
			continue
		}
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so runs from different machines compare.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		results[name] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return results, nil
}

func main() {
	base := flag.String("base", "", "baseline `go test -json` bench output (committed)")
	head := flag.String("head", "", "head `go test -json` bench output (fresh run)")
	maxRatio := flag.Float64("max-ratio", 8, "fail when head ns/op exceeds base ns/op by this factor")
	flag.Parse()
	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "usage: benchcmp -base BENCH_N.json -head bench.json [-max-ratio 8]")
		os.Exit(2)
	}
	baseRes, err := parseBench(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	headRes, err := parseBench(*head)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	names := make([]string, 0, len(baseRes))
	for name := range baseRes {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		baseNs := baseRes[name]
		headNs, ok := headRes[name]
		if !ok {
			fmt.Printf("MISSING  %-40s baseline %.0f ns/op, absent from head\n", name, baseNs)
			failed = true
			continue
		}
		ratio := headNs / baseNs
		status := "ok"
		if ratio > *maxRatio {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-9s %-40s %12.0f -> %12.0f ns/op  (%.2fx)\n", status, name, baseNs, headNs, ratio)
	}
	for name := range headRes {
		if _, ok := baseRes[name]; !ok {
			fmt.Printf("new       %-40s %12.0f ns/op (not in baseline)\n", name, headRes[name])
		}
	}
	if failed {
		fmt.Println("benchcmp: gross regression or lost coverage against the committed baseline")
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d benchmarks within %.1fx of the baseline\n", len(names), *maxRatio)
}
