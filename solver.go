package lclgrid

import (
	"context"
	"errors"
	"fmt"

	"lclgrid/internal/core"
	"lclgrid/internal/edgecolor"
	"lclgrid/internal/lcl"
	"lclgrid/internal/lm"
	"lclgrid/internal/local"
	"lclgrid/internal/vertexcolor"
)

// Solver is the uniform "solve LCL problem P on torus T" interface: every
// algorithm of the paper — synthesized normal forms, the direct §8/§10
// algorithms, the Θ(n) brute force, the L_M constructions — is exposed as
// an adapter implementing it. Solvers are safe for concurrent use.
type Solver interface {
	// Name identifies the algorithm for Result.Solver.
	Name() string
	// Solve runs the algorithm on the torus with the given identifier
	// assignment (nil selects sequential identifiers) and returns a
	// structured Result. The labelling is verified unless
	// WithVerify(false) is passed. Cancelling ctx aborts the run: an
	// already-cancelled context returns its error before any work, and
	// solvers backed by a SAT search (synthesis, global brute force)
	// abort an in-flight search at the next checkpoint.
	Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error)
}

// ErrUnsolvable reports that the problem has no solution at all on the
// given torus (an unsolvability certificate, e.g. 2-colouring an odd
// torus).
var ErrUnsolvable = errors.New("lclgrid: problem has no solution on this torus")

func fillIDs(t *Torus, ids []int) []int {
	if ids == nil {
		return SequentialIDs(t.N())
	}
	return ids
}

// verifyInto checks the labelling and stamps the Result, translating a
// rejection into an error.
func verifyInto(p *Problem, t *Torus, res *Result, o *Options) error {
	if !o.Verify {
		res.Verification = Unverified
		return nil
	}
	if err := p.Verify(t, res.Labels); err != nil {
		res.Verification = VerifyFailed
		return fmt.Errorf("lclgrid: %s output rejected: %w", res.Solver, err)
	}
	res.Verification = Verified
	return nil
}

// --- Synthesized normal forms (§7) -----------------------------------------

// SynthAttempt is one (power, window) shape a SynthesisSolver tries.
type SynthAttempt struct {
	K int `json:"k"`
	H int `json:"h"`
	W int `json:"w"`
}

// SynthesisSolver solves a problem by a synthesized normal-form algorithm
// A' ∘ S_k (§7). With an Engine attached, multiple attempts race
// concurrently (bounded by the engine's WithSynthWorkers) and the first
// shape to admit a lookup table wins, cancelling the rest; without one,
// attempts are tried strictly in order. Synthesis goes through the
// Engine's cache when one is attached, so repeated solves pay the SAT
// cost once per problem fingerprint.
type SynthesisSolver struct {
	Problem  *Problem
	Attempts []SynthAttempt
	// Engine, when non-nil, provides cached (and racing) synthesis.
	Engine *Engine
}

// NewSynthesisSolver returns a solver trying the single shape (k, h, w);
// h = w = 0 selects DefaultWindow(k).
func NewSynthesisSolver(e *Engine, p *Problem, k, h, w int) *SynthesisSolver {
	if h == 0 || w == 0 {
		h, w = DefaultWindow(k)
	}
	return &SynthesisSolver{Problem: p, Attempts: []SynthAttempt{{k, h, w}}, Engine: e}
}

// Name implements Solver.
func (s *SynthesisSolver) Name() string { return "normal-form synthesis" }

// synthesize runs one attempt, through the engine cache when available.
func (s *SynthesisSolver) synthesize(ctx context.Context, a SynthAttempt) (*core.Synthesized, bool, error) {
	if s.Engine != nil {
		return s.Engine.Synthesize(ctx, s.Problem, a.K, a.H, a.W)
	}
	alg, err := core.Synthesize(ctx, s.Problem, a.K, a.H, a.W)
	return alg, false, err
}

// attemptFits reports whether the torus meets the attempt shape's
// minimum side — the fail-fast check run before paying for a synthesis
// the torus cannot use.
func attemptFits(t *Torus, a SynthAttempt) bool {
	min := core.MinTorusSideFor(a.K, a.H, a.W)
	return t.Dim() != 2 || (t.NX() >= min && t.NY() >= min)
}

// Solve implements Solver.
func (s *SynthesisSolver) Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	attempts := s.Attempts
	if o.Power > 0 {
		h, w := o.H, o.W
		if h == 0 || w == 0 {
			h, w = DefaultWindow(o.Power)
		}
		attempts = []SynthAttempt{{o.Power, h, w}}
	}
	if len(attempts) == 0 {
		// A solver nobody gave attempt shapes to has not proven anything
		// unsatisfiable — say so instead of blaming the SAT solver.
		return nil, fmt.Errorf("lclgrid: synthesis solver for %s has no attempts configured (set Attempts or force a power)", s.Problem.Name())
	}
	// Fail fast before paying for syntheses the torus cannot run: the
	// minimum side depends only on the attempt's shape.
	fitting := make([]SynthAttempt, 0, len(attempts))
	var tooSmallErr error
	for _, a := range attempts {
		if attemptFits(t, a) {
			fitting = append(fitting, a)
		} else if tooSmallErr == nil {
			tooSmallErr = core.TorusTooSmallError(a.K, a.H, a.W)
		}
	}
	if len(fitting) == 0 {
		return nil, fmt.Errorf("lclgrid: no normal-form table for %s at the tried shapes: %w", s.Problem.Name(), tooSmallErr)
	}

	var alg *core.Synthesized
	var winner SynthAttempt
	var cached bool
	var err error
	if s.Engine != nil {
		// Race the candidate shapes concurrently: the first lookup table
		// wins and the engine cancels the remaining searches. The engine
		// degrades to the strict sequential sweep itself when the worker
		// budget (or the attempt list) is 1.
		alg, winner, cached, err = s.Engine.raceSynthesize(ctx, s.Problem, fitting)
	} else {
		// No engine: strictly sequential, uncached synthesis. Like the
		// race, the reported failure is the first in schedule order.
		var firstErr error
		for _, a := range fitting {
			alg, cached, err = s.synthesize(ctx, a)
			if err == nil {
				winner = a
				break
			}
			if isCtxErr(err) {
				return nil, err
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		if alg == nil {
			err = firstErr
		}
	}
	if alg == nil {
		if isCtxErr(err) {
			return nil, err
		}
		if tooSmallErr != nil {
			// Some shapes never ran because the torus is too small; report
			// that alongside the failures so Engine-level fallback to the
			// Θ(n) baseline still triggers regardless of attempt order.
			err = fmt.Errorf("%w (and: %v)", tooSmallErr, err)
		}
		return nil, fmt.Errorf("lclgrid: no normal-form table for %s at the tried shapes: %w", s.Problem.Name(), err)
	}

	out, rounds, err := alg.Run(t, fillIDs(t, ids))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Problem:  s.Problem.Name(),
		Solver:   s.Name(),
		Class:    ClassLogStar, // a successful synthesis proves Θ(log* n)
		Labels:   out,
		Rounds:   rounds.Total(),
		CacheHit: cached,
		Note:     fmt.Sprintf("k=%d window %dx%d, %d tiles", winner.K, winner.H, winner.W, alg.Graph.NumTiles()),
	}
	if err := verifyInto(s.Problem, t, res, &o); err != nil {
		return res, err
	}
	return res, nil
}

// --- Global brute force (Θ(n) baseline) ------------------------------------

// GlobalSolver solves by the Θ(n) gather-and-solve baseline: every node
// collects the whole torus (Diameter rounds) and the tiling is decided by
// the SAT encoding of core.SolveGlobal. It doubles as the unsolvability
// certificate generator: ErrUnsolvable is returned when no labelling
// exists.
type GlobalSolver struct {
	Problem *Problem
	// KnownClass is the paper's classification of the problem, recorded
	// in the Result (ClassUnknown when only conjectured).
	KnownClass Class
}

// Name implements Solver.
func (s *GlobalSolver) Name() string { return "global brute force" }

// Solve implements Solver.
func (s *GlobalSolver) Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	out, ok, rounds, err := core.SolveGlobalWithRounds(ctx, s.Problem, t)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("lclgrid: %s on torus %v: %w", s.Problem.Name(), t.Sides(), ErrUnsolvable)
	}
	res := &Result{
		Problem: s.Problem.Name(),
		Solver:  s.Name(),
		Class:   s.KnownClass,
		Labels:  out,
		Rounds:  rounds.Total(),
		Note:    "gathered the whole torus",
	}
	if err := verifyInto(s.Problem, t, res, &o); err != nil {
		return res, err
	}
	return res, nil
}

// --- Constant solutions (O(1) problems) ------------------------------------

// ConstantSolver solves trivial problems in zero rounds by filling the
// grid with a constant solution label (§6: exactly the O(1) problems on
// toroidal grids admit one).
type ConstantSolver struct {
	Problem *Problem
}

// Name implements Solver.
func (s *ConstantSolver) Name() string { return "constant fill" }

// Solve implements Solver.
func (s *ConstantSolver) Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	consts := s.Problem.ConstantSolutions()
	if len(consts) == 0 {
		return nil, fmt.Errorf("lclgrid: %s has no constant solution (not an O(1) problem)", s.Problem.Name())
	}
	out := make([]int, t.N())
	for v := range out {
		out[v] = consts[0]
	}
	res := &Result{
		Problem: s.Problem.Name(),
		Solver:  s.Name(),
		Class:   ClassO1,
		Labels:  out,
		Rounds:  0,
		Note:    fmt.Sprintf("constant label %q", s.Problem.Label(consts[0])),
	}
	if err := verifyInto(s.Problem, t, res, &o); err != nil {
		return res, err
	}
	return res, nil
}

// --- Direct 4-colouring (§8) ------------------------------------------------

// FourColorSolver runs the §8 direct algorithm: a proper 4-colouring of a
// d-dimensional torus (d >= 2) in Θ(log* n) rounds, retrying the ball
// parameter ℓ until the conflict colouring succeeds (or using the fixed ℓ
// of WithEll).
type FourColorSolver struct{}

// Name implements Solver.
func (FourColorSolver) Name() string { return "§8 direct 4-colouring" }

// Solve implements Solver.
func (s FourColorSolver) Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	ids = fillIDs(t, ids)
	var rounds local.Rounds
	var out []int
	var ell int
	var err error
	if o.Ell > 0 {
		ell = o.Ell
		out, err = vertexcolor.Run(t, ids, ell, &rounds)
	} else {
		out, ell, err = vertexcolor.RunAuto(t, ids, &rounds)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		// Name the problem through the catalogue constructor so the
		// display name agrees with the registry and verifier everywhere.
		Problem: lcl.VertexColoring(4, t.Dim()).Name(),
		Solver:  s.Name(),
		Class:   ClassLogStar,
		Labels:  out,
		Rounds:  rounds.Total(),
		Note:    fmt.Sprintf("ell=%d", ell),
	}
	if err := verifyInto(lcl.VertexColoring(4, t.Dim()), t, res, &o); err != nil {
		return res, err
	}
	return res, nil
}

// --- Direct (2d+1)-edge colouring (§10) -------------------------------------

// EdgeColorSolver runs the §10 direct algorithm: a proper
// (2d+1)-edge-colouring in Θ(log* n) rounds. KColors >= 2d+1 selects the
// SFT alphabet the result is encoded in (a proper 5-colouring is a proper
// k-colouring for every k >= 5). The paper's default constants require
// torus sides above 679 for d = 2; override with WithEdgeColorParams.
type EdgeColorSolver struct {
	KColors int
	Params  EdgeColorParams
}

// Name implements Solver.
func (s *EdgeColorSolver) Name() string { return "§10 direct edge colouring" }

// Solve implements Solver.
func (s *EdgeColorSolver) Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	params := s.Params
	if o.EdgeParams != (EdgeColorParams{}) {
		params = o.EdgeParams
	}
	colors, rounds, err := edgecolor.Run(t, fillIDs(t, ids), params)
	if err != nil {
		return nil, err
	}
	kc := s.KColors
	if kc == 0 {
		kc = 2*t.Dim() + 1
	}
	ep := lcl.EdgeColoring(kc, t.Dim())
	labels, err := colors.ToLabels(ep)
	if err != nil {
		return nil, fmt.Errorf("lclgrid: edge colouring does not encode into the %d-colour SFT alphabet: %w", kc, err)
	}
	res := &Result{
		Problem: ep.Name(),
		Solver:  s.Name(),
		Class:   ClassLogStar,
		Labels:  labels,
		Decoded: colors,
		Rounds:  rounds.Total(),
		Note:    fmt.Sprintf("%d row colours plus one special cutting colour", 2*t.Dim()),
	}
	if err := verifyInto(ep.Problem, t, res, &o); err != nil {
		return res, err
	}
	return res, nil
}

// --- The L_M undecidability gadget (§6) --------------------------------------

// LMSolver solves the L_M problem for a fixed machine M: when M halts
// within MaxSteps and the torus sides are multiples of the tile size, the
// Θ(log* n)-style P2 tiling is constructed; otherwise it falls back to
// the P1 escape (a proper 3-colouring), which is inherently Θ(n). The
// labelling is returned in Result.Decoded as []lm.Label (L_M has no int
// SFT encoding in this codebase).
type LMSolver struct {
	LM *LMProblem
	// Halts records whether M is known to halt (fixes Result.Class:
	// Θ(log* n) for halting machines, Θ(n) otherwise — Theorem 3).
	Halts bool
}

// Name implements Solver.
func (s *LMSolver) Name() string { return "§6 L_M construction" }

// Solve implements Solver.
func (s *LMSolver) Solve(ctx context.Context, t *Torus, ids []int, opts ...Option) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	class := ClassGlobal
	if s.Halts {
		class = ClassLogStar
	}
	res := &Result{
		Problem: fmt.Sprintf("L_M for %s", s.LM.M.Name),
		Solver:  s.Name(),
		Class:   class,
	}
	if labels, m, err := s.solveP2(t, o.MaxSteps); err == nil {
		res.Decoded = labels
		// Every node reads its tile from anchors within the tile size in
		// each coordinate: a constant-radius gather once anchors exist.
		res.Rounds = 2 * m
		res.Note = fmt.Sprintf("P2 lattice tiling, tile size %d", m)
	} else {
		labels, rounds, p1err := s.LM.SolveP1(t)
		if p1err != nil {
			return nil, fmt.Errorf("lclgrid: L_M P2 construction failed (%v) and P1 escape failed: %w", err, p1err)
		}
		res.Decoded = labels
		res.Rounds = rounds.Total()
		res.Note = fmt.Sprintf("P1 3-colouring escape (P2 unavailable: %v)", err)
	}
	if o.Verify {
		if err := s.LM.Verify(t, res.Decoded.([]lm.Label)); err != nil {
			res.Verification = VerifyFailed
			return res, fmt.Errorf("lclgrid: L_M output rejected: %w", err)
		}
		res.Verification = Verified
	}
	return res, nil
}

// solveP2 attempts the P2 lattice construction and reports the tile size
// used.
func (s *LMSolver) solveP2(t *Torus, maxSteps int) ([]lm.Label, int, error) {
	table, err := s.LM.M.Run(maxSteps)
	if err != nil {
		return nil, 0, err
	}
	labels, err := s.LM.SolveLattice(t, maxSteps)
	if err != nil {
		return nil, 0, err
	}
	return labels, lm.TileSize(table.Steps), nil
}
