package lclgrid

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestValidateRejects pins the wire-validation bounds: every document a
// network front end must refuse before any engine work, each with the
// field the error should name.
func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		req  SolveRequest
		want string // substring of the error
	}{
		{"no problem", SolveRequest{N: 8}, "names no problem"},
		{"both sources", SolveRequest{Key: "4col", Problem: VertexColoring(4, 2)}, "choose one"},
		{"negative n", SolveRequest{Key: "4col", N: -4}, "must be positive"},
		{"huge n", SolveRequest{Key: "4col", N: 1_000_000_000}, "exceeds the request bound"},
		{"overflowing n", SolveRequest{Key: "4col", N: 3_100_000_000}, "exceeds the request bound"},
		{"zero side", SolveRequest{Key: "4col", Sides: []int{8, 0}}, "side 0 < 1"},
		{"negative side", SolveRequest{Key: "4col", Sides: []int{8, -2}}, "side -2 < 1"},
		{"huge sides", SolveRequest{Key: "4col", Sides: []int{1 << 15, 1 << 15}}, "exceeds the request bound"},
		{"too many dims", SolveRequest{Key: "4col", Sides: []int{2, 2, 2, 2, 2, 2, 2, 2, 2}}, "dimensions"},
		{"huge ids", SolveRequest{Key: "4col", IDs: make([]int, maxRequestNodes+1)}, "ids"},
		{"negative power", SolveRequest{Key: "4col", Power: -1}, `"power"`},
		{"huge power", SolveRequest{Key: "4col", Power: 99}, "anchor power"},
		{"negative window", SolveRequest{Key: "4col", Power: 1, H: -3}, `"h"`},
		{"huge window", SolveRequest{Key: "4col", Power: 1, H: 3, W: 1000}, "anchor window"},
		{"negative max power", SolveRequest{Key: "4col", MaxPower: -2}, `"max_power"`},
		{"negative ell", SolveRequest{Key: "4col", Ell: -1}, `"ell"`},
		{"negative max steps", SolveRequest{Key: "4col", MaxSteps: -1}, `"max_steps"`},
		{"huge max steps", SolveRequest{Key: "4col", MaxSteps: 1 << 30}, "max_steps"},
		{"huge ell", SolveRequest{Key: "4col", Ell: 1 << 20}, "ell"},
		{"negative edge k", SolveRequest{Key: "5edgecol", EdgeParams: EdgeColorParams{K: -1}}, "edge_params.K"},
		{"huge edge k", SolveRequest{Key: "5edgecol", EdgeParams: EdgeColorParams{K: 1_000_000, RowSpacing: 10, MoveCap: 10}}, "edge_params.K"},
		{"huge edge spacing", SolveRequest{Key: "5edgecol", EdgeParams: EdgeColorParams{K: 3, RowSpacing: 1 << 30}}, "edge_params"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tt.req)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

// TestValidateAccepts checks that every legitimate request shape passes:
// the wire guard must not reject real traffic.
func TestValidateAccepts(t *testing.T) {
	ok := []SolveRequest{
		{Key: "4col"},
		{Key: "4col", N: 32, Seed: 7},
		{Key: "orient134", Sides: []int{16, 20}, Power: 1},
		{Key: "5edgecol", N: 680},
		{Key: "4col", N: 1024}, // the largest square the wire accepts
		{Problem: VertexColoring(4, 2), N: 12, MaxPower: 3},
		{Key: "lm:halt", MaxSteps: 500},
		{Key: "4col", N: 8, IDs: make([]int, 64)},
		{Key: "5edgecol", N: 680, EdgeParams: EdgeColorParams{K: 3, RowSpacing: 338, MoveCap: 156}},
	}
	for _, req := range ok {
		if err := req.Validate(); err != nil {
			t.Errorf("Validate rejected legitimate request %+v: %v", req, err)
		}
	}
}

// TestPlanValidates checks the planner runs wire validation before
// resolving anything: a huge-N document fails with the bound error
// instead of attempting the n² allocation (or overflowing n²).
func TestPlanValidates(t *testing.T) {
	eng := NewEngine()
	for _, doc := range []string{
		`{"key":"4col","n":1000000000}`,
		`{"key":"4col","n":3100000000}`,
		`{"key":"4col","sides":[1073741824,1073741824]}`,
		`{"key":"4col","power":-3}`,
	} {
		var req SolveRequest
		if err := json.Unmarshal([]byte(doc), &req); err != nil {
			t.Fatalf("unmarshal %s: %v", doc, err)
		}
		if _, err := eng.Plan(req); err == nil {
			t.Errorf("Plan accepted %s", doc)
		}
	}
}

// TestRequestErrorClassification checks every planning failure surfaces
// from Engine.Solve as a *RequestError — what lets a service map client
// errors to 400 without re-planning — while solver outcomes do not.
func TestRequestErrorClassification(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	var reqErr *RequestError
	for _, req := range []SolveRequest{
		{Key: "nope", N: 8},
		{N: 8},
		{Key: "4col", N: 1 << 20},
		{Key: "4col", N: 8, IDs: []int{1, 2}},
	} {
		_, err := eng.Solve(ctx, req)
		if err == nil || !errors.As(err, &reqErr) {
			t.Errorf("Solve(%+v) err = %v, want a *RequestError", req, err)
		}
	}
	// An unsolvable instance is a solver outcome, not a request error.
	_, err := eng.Solve(ctx, SolveRequest{Key: "2col", N: 5})
	if err == nil || errors.As(err, &reqErr) {
		t.Errorf("unsolvable-instance err = %v, must not be a *RequestError", err)
	}
	if !errors.Is(err, ErrUnsolvable) {
		t.Errorf("unsolvable-instance err = %v, want ErrUnsolvable", err)
	}
}

// FuzzSolveRequestJSON fuzzes the wire decoder end to end: any byte
// string that decodes into a SolveRequest and passes Validate must plan
// without panicking, overflowing, or allocating beyond the request
// bounds — the exact exposure of the JSONL batch front end and the
// HTTP serving subsystem. Validation failures and plan errors are fine;
// crashes and runaway allocations are the bugs this hunts.
func FuzzSolveRequestJSON(f *testing.F) {
	seeds := []string{
		`{"key":"4col","n":32}`,
		`{"key":"orient134","sides":[16,20],"power":1}`,
		`{"key":"5col","n":12,"seed":7,"no_verify":true}`,
		`{"key":"mis","ids":[1,2,3]}`,
		`{"n":1000000000}`,
		`{"key":"4col","n":3100000000}`,
		`{"key":"4col","sides":[0]}`,
		`{"key":"4col","sides":[-1,4]}`,
		`{"key":"2col","n":-8}`,
		`{"key":"4col","power":99,"h":-1,"w":70000}`,
		`{"key":"lm:halt","max_steps":2000000000}`,
		`{"key":"1024col","n":12}`,
		`{"key":"orient01234","n":12}`,
		`{"sides":[2,2,2,2,2,2,2,2,2]}`,
		`{"key":"4col","edge_params":{}}`,
		`[]`,
		`{"key":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	eng := NewEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		var req SolveRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a SolveRequest document; nothing to check
		}
		if err := req.Validate(); err != nil {
			return // rejected at the wire, as intended
		}
		// A validated request must be plannable without a panic. Planning
		// is probe-only (no SAT work), so this is cheap even for the
		// largest shapes the bounds admit.
		plan, err := eng.Plan(req)
		if err == nil && plan == nil {
			t.Fatal("Plan returned nil plan and nil error")
		}
	})
}
