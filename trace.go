package lclgrid

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// This file is the fleet's dependency-free distributed tracing: a
// Trace/Span model with W3C traceparent propagation, so one request
// entering the gateway, the shard that serves it, and the cachesvc
// lease/blob calls it triggers all share a single trace id. Completed
// traces land in a bounded in-memory ring buffer (TraceBuffer) exposed
// at GET /debug/traces on every fleet process; the trace id is echoed
// as an X-Trace-Id response header, on JSONL batch lines, and in error
// bodies so clients can quote it in bug reports.
//
// The design is context-first: the Observer callbacks deliberately
// carry no context, so spans ride context.Context through the seams
// that already have one (HTTP middleware, plan execution, synthesis,
// remote-cache coordination). Every Span method is nil-safe — code on
// an untraced path (CLI solves, warm sweeps, benchmarks without a
// buffer) calls straight through at near-zero cost.

// TraceparentHeader is the W3C trace-context propagation header
// ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>").
const TraceparentHeader = "Traceparent"

// TraceIDHeader is the response header echoing the request's trace id.
const TraceIDHeader = "X-Trace-Id"

// Trace is one request's span collection. A Trace is created at the
// process boundary (StartTrace for a fresh trace, JoinTrace when a
// traceparent header carries one in), grows spans via StartSpan on the
// request's context, and is deposited into a TraceBuffer by Finish.
// All methods are safe for concurrent use — batch fan-out and racing
// syntheses start spans from many goroutines at once.
type Trace struct {
	mu      sync.Mutex
	id      string
	service string
	parent  string // remote parent span id; "" when this process started the trace
	root    *Span
	spans   []*Span
}

// Span is one timed operation inside a Trace. The zero of everything —
// a nil *Span — is a valid no-op span, so instrumentation sites never
// need to guard for the untraced case.
type Span struct {
	tr      *Trace
	id      string
	parent  string
	name    string
	start   time.Time
	elapsed time.Duration
	ended   bool
	errMsg  string
	attrs   []string // flat key/value pairs; rendered to a map at document time
}

// newHexID returns 2n random hex characters (the traceparent id
// alphabet). math/rand/v2's ChaCha8 generator is seeded from system
// entropy and costs no syscall per id — ids need uniqueness, not
// secrecy, and a crypto/rand read per span is measurable on the ~100µs
// cached-solve path.
func newHexID(n int) string {
	const hexDigits = "0123456789abcdef"
	buf := make([]byte, 2*n)
	for i := 0; i < len(buf); i += 16 {
		v := rand.Uint64()
		for j := 0; j < 16 && i+j < len(buf); j++ {
			buf[i+j] = hexDigits[v&0xf]
			v >>= 4
		}
	}
	// The all-zero id is the spec's invalid value; vanishingly unlikely,
	// trivially avoided.
	zero := true
	for _, c := range buf {
		if c != '0' {
			zero = false
			break
		}
	}
	if zero {
		buf[0] = '1'
	}
	return string(buf)
}

// StartTrace begins a fresh trace rooted at a span named name, owned by
// the named service ("serve", "gateway", "cachesvc").
func StartTrace(service, name string) *Trace {
	return newTrace(service, name, newHexID(16), "")
}

// JoinTrace begins this process's segment of a trace started elsewhere:
// the trace id is shared, the remote caller's span id becomes the root
// span's parent. An invalid trace id falls back to a fresh trace.
func JoinTrace(service, name, traceID, parentSpanID string) *Trace {
	if !isHexID(traceID, 32) {
		return StartTrace(service, name)
	}
	if !isHexID(parentSpanID, 16) {
		parentSpanID = ""
	}
	return newTrace(service, name, traceID, parentSpanID)
}

func newTrace(service, name, id, parent string) *Trace {
	t := &Trace{id: id, service: service, parent: parent}
	root := &Span{tr: t, id: newHexID(8), parent: parent, name: name, start: time.Now()}
	t.root = root
	t.spans = []*Span{root}
	return t
}

// ID returns the 32-hex-character trace id.
func (t *Trace) ID() string { return t.id }

// Root returns the trace's root span (the one covering the whole
// request in this process).
func (t *Trace) Root() *Span { return t.root }

func (t *Trace) startSpan(name string, parent *Span) *Span {
	sp := &Span{tr: t, id: newHexID(8), name: name, start: time.Now()}
	if parent != nil {
		sp.parent = parent.id
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Finish ends the root span and deposits the trace into buf (nil buf
// skips the deposit). The trace is rendered into a TraceDoc lazily when
// the buffer is read — keeping the per-request cost to a ring insert.
// Spans still running when the trace is read — a batch fan-out
// goroutine draining after the client went away — appear in the
// document marked unfinished.
func (t *Trace) Finish(buf *TraceBuffer) {
	t.root.End()
	buf.Add(t)
}

// rootElapsed returns the root span's elapsed time (live while it is
// still running).
func (t *Trace) rootElapsed() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root.ended {
		return t.root.elapsed
	}
	return time.Since(t.root.start)
}

// document snapshots the span set as a parent→children tree.
func (t *Trace) document() *TraceDoc {
	t.mu.Lock()
	defer t.mu.Unlock()
	base := t.root.start
	byID := make(map[string]*SpanDoc, len(t.spans))
	for _, sp := range t.spans {
		d := &SpanDoc{
			ID:      sp.id,
			Name:    sp.name,
			StartMS: durationMS(sp.start.Sub(base)),
			Error:   sp.errMsg,
		}
		if sp.ended {
			d.ElapsedMS = durationMS(sp.elapsed)
		} else {
			d.ElapsedMS = durationMS(time.Since(sp.start))
			d.Unfinished = true
		}
		if len(sp.attrs) > 0 {
			d.Attrs = make(map[string]string, len(sp.attrs)/2)
			for i := 0; i+1 < len(sp.attrs); i += 2 {
				d.Attrs[sp.attrs[i]] = sp.attrs[i+1]
			}
		}
		byID[sp.id] = d
	}
	var roots []*SpanDoc
	for _, sp := range t.spans { // creation order keeps children chronological
		d := byID[sp.id]
		if p, ok := byID[sp.parent]; ok && sp.parent != sp.id {
			p.Children = append(p.Children, d)
		} else {
			roots = append(roots, d)
		}
	}
	return &TraceDoc{
		TraceID:   t.id,
		Parent:    t.parent,
		Service:   t.service,
		Name:      t.root.name,
		Start:     t.root.start,
		ElapsedMS: byID[t.root.id].ElapsedMS,
		Spans:     roots,
	}
}

// End stamps the span's elapsed time. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if !s.ended {
		s.ended = true
		s.elapsed = time.Since(s.start)
	}
	s.tr.mu.Unlock()
}

// SetAttr records a key/value attribute on the span (a repeated key
// wins with its last value when the trace is documented). Safe on nil.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, key, value)
	s.tr.mu.Unlock()
}

// SetError records err's message on the span; nil err (and nil span)
// are no-ops.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.errMsg = err.Error()
	s.tr.mu.Unlock()
}

// TraceID returns the span's trace id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Traceparent renders the span as a W3C traceparent header value ("" on
// nil) — what an outbound HTTP request carries so the callee joins this
// trace as a child of this span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.tr.id + "-" + s.id + "-01"
}

// ParseTraceparent splits a W3C traceparent header value into its trace
// and parent-span ids. Only version 00 with non-zero ids is accepted.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !isHexID(traceID, 32) || !isHexID(spanID, 16) || !isHexID(h[53:], 2) {
		return "", "", false
	}
	return traceID, spanID, true
}

// isHexID reports whether s is exactly n lowercase-hex characters and
// not all zero (the traceparent spec's invalid id).
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		switch ch := s[i]; {
		case ch >= '1' && ch <= '9', ch >= 'a' && ch <= 'f':
			zero = false
		case ch == '0':
		default:
			return false
		}
	}
	return !zero
}

// --- context plumbing -------------------------------------------------------

type spanContextKey struct{}

// ContextWithSpan returns ctx carrying s as the current span (ctx
// unchanged when s is nil).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanContextKey{}, s)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanContextKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns a
// context carrying it. On an untraced context it returns (ctx, nil) —
// and every method of a nil span is a no-op, so call sites need no
// guard.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.startSpan(name, parent)
	return context.WithValue(ctx, spanContextKey{}, sp), sp
}

// TraceIDFromContext returns the context's trace id ("" when untraced) —
// what error bodies and JSONL batch lines stamp as trace_id.
func TraceIDFromContext(ctx context.Context) string {
	return SpanFromContext(ctx).TraceID()
}

// traceEvent records an instantaneous child span (cache hits and other
// point events worth seeing on the timeline). Unlike StartSpan it never
// derives a context — the event has no children.
func traceEvent(ctx context.Context, name string, attrs ...string) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return
	}
	sp := parent.tr.startSpan(name, parent)
	for i := 0; i+1 < len(attrs); i += 2 {
		sp.SetAttr(attrs[i], attrs[i+1])
	}
	sp.End()
}

// injectTraceparent stamps the context's current span onto an outbound
// request's headers; no-op on an untraced context.
func injectTraceparent(ctx context.Context, h http.Header) {
	if tp := SpanFromContext(ctx).Traceparent(); tp != "" {
		h.Set(TraceparentHeader, tp)
	}
}

// traceForRequest starts this process's trace for an inbound HTTP
// request: joining the caller's trace when a valid traceparent header
// is present, starting a fresh one otherwise.
func traceForRequest(service, name string, r *http.Request) *Trace {
	if tid, sid, ok := ParseTraceparent(r.Header.Get(TraceparentHeader)); ok {
		return JoinTrace(service, name, tid, sid)
	}
	return StartTrace(service, name)
}

// --- completed-trace documents ----------------------------------------------

// TraceDoc is one completed trace as served by GET /debug/traces: the
// identity, the owning service, and the span tree.
type TraceDoc struct {
	TraceID string `json:"trace_id"`
	// Parent is the remote caller's span id when this trace segment was
	// joined from a traceparent header.
	Parent  string    `json:"parent,omitempty"`
	Service string    `json:"service"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	// ElapsedMS is the root span's wall-clock duration in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Spans is the span tree; the first element is the root span.
	Spans []*SpanDoc `json:"spans"`
}

// SpanDoc is one span of a TraceDoc. StartMS is the offset from the
// trace's start.
type SpanDoc struct {
	ID        string            `json:"id"`
	Name      string            `json:"name"`
	StartMS   float64           `json:"start_ms"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Error     string            `json:"error,omitempty"`
	// Unfinished marks a span still running when the trace was
	// deposited (a fan-out goroutine draining past the response).
	Unfinished bool       `json:"unfinished,omitempty"`
	Children   []*SpanDoc `json:"children,omitempty"`
}

// durationMS renders a duration as milliseconds with microsecond
// precision.
func durationMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1e3
}

// --- the ring buffer --------------------------------------------------------

// DefaultTraceBufferSize is the ring capacity NewTraceBuffer uses when
// given a non-positive one.
const DefaultTraceBufferSize = 256

// TraceBuffer is a bounded ring of completed traces: the storage behind
// GET /debug/traces. Adding past capacity evicts the oldest trace and
// counts it as dropped — observability must never grow without bound.
// All methods are safe for concurrent use, and a nil *TraceBuffer is a
// valid no-op sink.
type TraceBuffer struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	count   int
	added   uint64
	dropped uint64
	logger  *slog.Logger
	slow    time.Duration
}

// NewTraceBuffer returns a ring buffer retaining the last capacity
// completed traces (DefaultTraceBufferSize when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceBufferSize
	}
	return &TraceBuffer{ring: make([]*Trace, capacity)}
}

// SetLogger attaches a structured logger: every deposited trace logs a
// Debug "request" line carrying trace_id/span correlation fields, and a
// trace slower than slowThreshold logs a Warn "slow request" line with
// its full span tree (0 disables the slow path).
func (b *TraceBuffer) SetLogger(l *slog.Logger, slowThreshold time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.logger = l
	b.slow = slowThreshold
	b.mu.Unlock()
}

// Add deposits a completed trace, evicting the oldest when full. Safe
// on a nil buffer (the untraced configuration).
func (b *TraceBuffer) Add(tr *Trace) {
	if b == nil || tr == nil {
		return
	}
	b.mu.Lock()
	if b.ring[b.next] != nil {
		b.dropped++
	}
	b.ring[b.next] = tr
	b.next = (b.next + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	}
	b.added++
	logger, slow := b.logger, b.slow
	b.mu.Unlock()
	if logger == nil {
		return
	}
	elapsed := tr.rootElapsed()
	slowHit := slow > 0 && elapsed >= slow
	if !slowHit && !logger.Enabled(context.Background(), slog.LevelDebug) {
		return
	}
	attrs := []any{
		slog.String("trace_id", tr.id),
		slog.String("service", tr.service),
		slog.String("span", tr.root.name),
		slog.Float64("elapsed_ms", durationMS(elapsed)),
	}
	if slowHit {
		tree, _ := json.Marshal(tr.document().Spans)
		attrs = append(attrs, slog.String("slow_threshold", slow.String()), slog.String("spans", string(tree)))
		logger.Warn("slow request", attrs...)
		return
	}
	logger.Debug("request", attrs...)
}

// Stats returns the lifetime deposit and eviction counts (the
// lclgrid_traces_total / lclgrid_traces_dropped_total series).
func (b *TraceBuffer) Stats() (added, dropped uint64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.added, b.dropped
}

// Len returns the number of traces currently retained.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// Snapshot returns the retained traces rendered as documents, newest
// first, keeping only those at least min long (min <= 0 keeps
// everything). Rendering happens here, at read time, not on the
// request path.
func (b *TraceBuffer) Snapshot(min time.Duration) []*TraceDoc {
	if b == nil {
		return nil
	}
	minMS := durationMS(min)
	b.mu.Lock()
	traces := make([]*Trace, 0, b.count)
	for i := 1; i <= b.count; i++ {
		if tr := b.ring[((b.next-i)%len(b.ring)+len(b.ring))%len(b.ring)]; tr != nil {
			traces = append(traces, tr)
		}
	}
	b.mu.Unlock()
	out := make([]*TraceDoc, 0, len(traces))
	for _, tr := range traces {
		doc := tr.document()
		if doc.ElapsedMS < minMS {
			continue
		}
		out = append(out, doc)
	}
	return out
}

// TracesPage is the GET /debug/traces response document.
type TracesPage struct {
	// Count is the number of traces returned (after the min_ms filter).
	Count int `json:"count"`
	// Added and Dropped are the buffer's lifetime deposit and eviction
	// counts; Dropped > 0 means the window slid past older traces.
	Added   uint64      `json:"added"`
	Dropped uint64      `json:"dropped"`
	Traces  []*TraceDoc `json:"traces"`
}

// Handler serves the buffer as GET /debug/traces: the retained traces
// newest first, ?min_ms=N keeping only traces at least N milliseconds
// long (the slow-request filter).
func (b *TraceBuffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			httpError(w, r, http.StatusMethodNotAllowed, fmt.Errorf("lclgrid: %s not allowed on /debug/traces", r.Method))
			return
		}
		var min time.Duration
		if raw := r.URL.Query().Get("min_ms"); raw != "" {
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil || v < 0 {
				httpError(w, r, http.StatusBadRequest, fmt.Errorf("lclgrid: bad min_ms %q", raw))
				return
			}
			min = time.Duration(v * float64(time.Millisecond))
		}
		traces := b.Snapshot(min)
		added, dropped := b.Stats()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(TracesPage{Count: len(traces), Added: added, Dropped: dropped, Traces: traces})
	})
}
