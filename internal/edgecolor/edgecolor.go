// Package edgecolor implements the (2d+1)-edge-colouring algorithm of
// §10 of the paper for d-dimensional toroidal grids, in Θ(log* n)
// rounds, together with the matching impossibility (Theorem 21): no
// 2d-edge-colouring exists when n is odd.
//
// The algorithm follows the paper's structure: for every dimension q a
// j,k-independent set I_q is computed (per-row maximal independent sets,
// then phased eastward moves ordered by an L∞-distance colouring until
// the radius-2k balls are pairwise disjoint); each node of I_q marks one
// edge of its own q-row inside its radius-k ball, avoiding marked edges
// of other dimensions; marked edges get the special colour 2d+1 and cut
// every row into bounded segments, which alternate the two colours
// reserved for their dimension.
//
// The paper's worst-case constants (row spacing 2(4k+1)^d with k = 2d)
// force grids with millions of nodes, so the constants are parameters
// here; every invariant the proofs rely on (ball disjointness, row
// coverage, mark availability) is asserted at runtime, and the resulting
// colouring is verified by the caller. See DESIGN.md for the
// substitution note.
package edgecolor

import (
	"fmt"

	"lclgrid/internal/coloring"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

// Params are the constants of the algorithm. Zero values select defaults
// scaled for test-sized grids.
type Params struct {
	// K is the ball radius; the paper uses k = 2d, and needs 2k > 4(d-1)
	// for mark availability.
	K int
	// RowSpacing is the distance of the initial per-row maximal
	// independent sets (paper: 2(4k+1)^d).
	RowSpacing int
	// MoveCap bounds the eastward movement per node (paper:
	// (4k+1)^d - (4k+1)); the implementation errors out if a node cannot
	// settle within the cap.
	MoveCap int
}

// DefaultParams returns the paper's constants for a d-dimensional grid
// with the smallest ball radius satisfying the marking requirement
// 2k > 4(d-1): row spacing 2(4k+1)^d and movement cap
// (4k+1)^d - (4k+1) (§10). These guarantee the free-slot counting
// argument of Lemma 19; they force torus sides above 2·RowSpacing+2
// (679 for d = 2).
func DefaultParams(d int) Params {
	k := 2*d - 1
	if k < 3 {
		k = 3
	}
	ball := 1
	for i := 0; i < d; i++ {
		ball *= 4*k + 1
	}
	return Params{K: k, RowSpacing: 2 * ball, MoveCap: ball - (4*k + 1)}
}

// Colorer runs the §10 algorithm.
type Colorer struct {
	t      *grid.Torus
	params Params
	ids    []int
	rounds *local.Rounds
	// members[q][v] marks v ∈ I_q.
	members [][]bool
	// marked[q][v] marks the positive dimension-q edge of v as special.
	marked [][]bool
}

// Run executes the algorithm and returns a proper (2d+1)-edge-colouring
// together with its round account.
func Run(t *grid.Torus, ids []int, params Params) (*lcl.EdgeColors, *local.Rounds, error) {
	d := t.Dim()
	if params.K == 0 {
		params = DefaultParams(d)
	}
	c := &Colorer{t: t, params: params, ids: ids, rounds: &local.Rounds{}}
	for q := 0; q < d; q++ {
		if t.Side(q) <= 2*params.RowSpacing+2 {
			return nil, nil, fmt.Errorf("edgecolor: side %d too small for row spacing %d", t.Side(q), params.RowSpacing)
		}
	}
	c.members = make([][]bool, d)
	c.marked = make([][]bool, d)
	for q := 0; q < d; q++ {
		m, err := c.independentSet(q)
		if err != nil {
			return nil, nil, err
		}
		c.members[q] = m
	}
	for q := 0; q < d; q++ {
		if err := c.markEdges(q); err != nil {
			return nil, nil, err
		}
	}
	out, err := c.colorSegments()
	if err != nil {
		return nil, nil, err
	}
	return out, c.rounds, nil
}

// independentSet computes a j,k-independent set w.r.t. dimension q:
// per-q-row MIS of distance RowSpacing, then phased eastward moves until
// radius-2k balls (L∞) are pairwise disjoint.
func (c *Colorer) independentSet(q int) ([]bool, error) {
	t, k := c.t, c.params.K
	n := t.N()
	members := make([]bool, n)

	// Per-row ruling sets: every q-row is a directed cycle; compute a
	// spacing-RowSpacing ruling set by Cole–Vishkin 3-colouring followed
	// by iterated contraction (each round of MIS-of-the-virtual-cycle
	// doubles the minimum spacing). Rows run in parallel, so we account
	// the rounds of one row.
	rowLen := t.Side(q)
	maxRowRounds := 0
	c.forEachRow(q, func(row []int) {
		ids := make([]int, rowLen)
		for i, v := range row {
			ids[i] = c.ids[v]
		}
		set, r := rowRulingSet(ids, t.N(), c.params.RowSpacing)
		for i, v := range row {
			if set[i] {
				members[v] = true
			}
		}
		if r > maxRowRounds {
			maxRowRounds = r
		}
	})
	c.rounds.Add(maxRowRounds)

	// Distance colouring for the phases: members within L∞ distance 4k
	// must get different colours (the paper colours the whole grid with an
	// (8k+1)^d-colour distance-4k colouring; colouring the member conflict
	// graph is equivalent for the phase schedule and has far fewer
	// classes).
	var memberList []int
	memberPos := make([]int, n)
	for v := 0; v < n; v++ {
		memberPos[v] = -1
		if members[v] {
			memberPos[v] = len(memberList)
			memberList = append(memberList, v)
		}
	}
	offsets4k := t.BallOffsets(4*k, grid.LInf)
	mg := memberGraph{adj: make([][]int, len(memberList))}
	for i, v := range memberList {
		for _, off := range offsets4k {
			if j := memberPos[t.ShiftVec(v, off)]; j >= 0 {
				mg.adj[i] = append(mg.adj[i], j)
			}
		}
	}
	mIDs := make([]int, len(memberList))
	for i, v := range memberList {
		mIDs[i] = c.ids[v]
	}
	var colRounds local.Rounds
	colors, numColors := coloring.LinialColor(&mg, mIDs, n, &colRounds)
	c.rounds.AddSimulated(colRounds.Total(), 4*k*t.Dim())

	// Phased eastward moves: in the phase of colour cc, members of that
	// colour whose radius-2k ball contains another member move east until
	// the ball is clear.
	offsets2k := t.BallOffsets(2*k, grid.LInf)
	ballBusy := func(v int) bool {
		for _, off := range offsets2k {
			if members[t.ShiftVec(v, off)] {
				return true
			}
		}
		return false
	}
	buckets := make([][]int, numColors)
	for i, v := range memberList {
		buckets[colors[i]] = append(buckets[colors[i]], v)
	}
	for cc := 0; cc < numColors; cc++ {
		moving := make([]int, 0, len(buckets[cc]))
		for _, v := range buckets[cc] {
			if members[v] && ballBusy(v) {
				moving = append(moving, v)
			}
		}
		for step := 0; len(moving) > 0; step++ {
			if step > c.params.MoveCap {
				return nil, fmt.Errorf("edgecolor: dimension %d: node could not settle within %d moves (raise RowSpacing)", q, c.params.MoveCap)
			}
			// Synchronous step: all moving nodes step east along their
			// q-row simultaneously.
			next := make([]int, 0, len(moving))
			for _, v := range moving {
				members[v] = false
			}
			stepped := make([]int, len(moving))
			for i, v := range moving {
				stepped[i] = t.Move(v, q, 1)
			}
			for _, v := range stepped {
				if members[v] {
					return nil, fmt.Errorf("edgecolor: dimension %d: mover collided with member", q)
				}
				members[v] = true
			}
			for _, v := range stepped {
				if ballBusy(v) {
					next = append(next, v)
				}
			}
			moving = next
		}
	}
	c.rounds.Add(numColors * (c.params.MoveCap + 1)) // phase schedule

	// Verify the two j,k-independence properties (§10, Definition 18).
	for v := 0; v < n; v++ {
		if !members[v] {
			continue
		}
		for _, off := range offsets2k {
			if members[t.ShiftVec(v, off)] {
				return nil, fmt.Errorf("edgecolor: dimension %d: radius-%d balls intersect", q, k)
			}
		}
	}
	covered := true
	c.forEachRow(q, func(row []int) {
		seen := false
		for _, v := range row {
			seen = seen || members[v]
		}
		covered = covered && seen
	})
	if !covered {
		return nil, fmt.Errorf("edgecolor: dimension %d: a row lost all members", q)
	}
	return members, nil
}

// rowRulingSet computes a ruling set of the directed cycle given by the
// row's identifiers: members pairwise further than minSpacing apart, with
// bounded gaps (every row keeps at least one member). It 3-colours the
// row with Cole–Vishkin, takes an MIS (spacing >= 2), and repeatedly
// takes an MIS of the virtual cycle of surviving members, doubling the
// minimum spacing per contraction. Rounds are accounted with the real
// distance of one virtual hop.
func rowRulingSet(ids []int, idSpace, minSpacing int) ([]bool, int) {
	n := len(ids)
	rounds := 0
	misOfCycle := func(memberIDs []int, hop int) []bool {
		m := len(memberIDs)
		cyc := grid.Cycle(m)
		var r local.Rounds
		colors := coloring.ThreeColorCycle(cyc, memberIDs, idSpace, &r)
		set := make([]bool, m)
		for cls := 0; cls < 3; cls++ {
			for v := 0; v < m; v++ {
				if colors[v] != cls {
					continue
				}
				if !set[cyc.Neighbor(v, 0)] && !set[cyc.Neighbor(v, 1)] {
					set[v] = true
				}
			}
		}
		// One virtual round costs hop real rounds.
		rounds += (r.Total() + 3) * hop
		return set
	}

	positions := make([]int, n)
	for i := range positions {
		positions[i] = i
	}
	current := ids
	spacing := 1
	hop := 1
	for spacing <= minSpacing && len(current) >= 3 {
		keep := misOfCycle(current, hop)
		var nextPos []int
		var nextIDs []int
		for i, k := range keep {
			if k {
				nextPos = append(nextPos, positions[i])
				nextIDs = append(nextIDs, current[i])
			}
		}
		positions, current = nextPos, nextIDs
		spacing *= 2
		hop *= 3 // virtual gaps at most triple per contraction
	}
	set := make([]bool, n)
	for _, p := range positions {
		set[p] = true
	}
	// Enforce the exact spacing bound: sweep out members too close to
	// their predecessor (deterministic, local within minSpacing).
	last := -1 << 30
	firstPos := -1
	for p := 0; p < n; p++ {
		if !set[p] {
			continue
		}
		if firstPos < 0 {
			firstPos = p
		}
		if p-last <= minSpacing {
			set[p] = false
			continue
		}
		last = p
	}
	if firstPos >= 0 && set[firstPos] && firstPos+n-last <= minSpacing && last != firstPos {
		set[firstPos] = false
	}
	rounds += minSpacing
	return set, rounds
}

// memberGraph is the conflict graph over I_q candidates used to schedule
// the move phases.
type memberGraph struct {
	adj [][]int
}

func (m *memberGraph) N() int                { return len(m.adj) }
func (m *memberGraph) Degree(v int) int      { return len(m.adj[v]) }
func (m *memberGraph) Neighbor(v, i int) int { return m.adj[v][i] }

// forEachRow invokes f on every q-row (node lists in +q order).
func (c *Colorer) forEachRow(q int, f func(row []int)) {
	t := c.t
	seen := make([]bool, t.N())
	for v := 0; v < t.N(); v++ {
		if seen[v] {
			continue
		}
		row := make([]int, 0, t.Side(q))
		u := v
		for {
			row = append(row, u)
			seen[u] = true
			u = t.Move(u, q, 1)
			if u == v {
				break
			}
		}
		f(row)
	}
}

// markEdges lets every member of I_q mark one dimension-q edge inside its
// radius-k ball on its own row, avoiding adjacency with existing marks.
func (c *Colorer) markEdges(q int) error {
	t, k := c.t, c.params.K
	c.marked[q] = make([]bool, t.N())
	adjacentMarked := func(v int) bool {
		// The positive q-edge of v is adjacent to a marked edge iff one
		// of its endpoints (v or v+e_q) touches any marked edge.
		for _, u := range []int{v, t.Move(v, q, 1)} {
			for dim := 0; dim < t.Dim(); dim++ {
				if c.marked[dim] != nil && (c.marked[dim][u] || c.marked[dim][t.Move(u, dim, -1)]) {
					return true
				}
			}
		}
		return false
	}
	for v := 0; v < t.N(); v++ {
		if !c.members[q][v] {
			continue
		}
		placed := false
		for off := -k; off < k && !placed; off++ {
			e := t.Move(v, q, off) // positive q-edge of e lies inside B∞(v, k)
			if !adjacentMarked(e) {
				c.marked[q][e] = true
				placed = true
			}
		}
		if !placed {
			return fmt.Errorf("edgecolor: dimension %d: no available edge to mark near node %d", q, v)
		}
	}
	c.rounds.Add(2*k + 1)
	return nil
}

// colorSegments assigns the special colour 2d to marked edges (0-based;
// the paper's colour 2d+1) and alternates colours 2q, 2q+1 on the
// segments between marked edges of every q-row.
func (c *Colorer) colorSegments() (*lcl.EdgeColors, error) {
	t := c.t
	d := t.Dim()
	out := lcl.NewEdgeColors(t)
	special := 2 * d
	var err error
	for q := 0; q < d; q++ {
		c.forEachRow(q, func(row []int) {
			if err != nil {
				return
			}
			// Find marked positions in this row.
			var cuts []int
			for i, v := range row {
				if c.marked[q][v] {
					cuts = append(cuts, i)
				}
			}
			if len(cuts) == 0 {
				err = fmt.Errorf("edgecolor: dimension %d: a row has no marked edge", q)
				return
			}
			L := len(row)
			for ci, start := range cuts {
				end := cuts[(ci+1)%len(cuts)]
				out.C[q][row[start]] = special
				// Alternate 2q, 2q+1 on the edges strictly between cuts.
				colorIdx := 0
				for i := (start + 1) % L; i != end; i = (i + 1) % L {
					out.C[q][row[i]] = 2*q + colorIdx
					colorIdx = 1 - colorIdx
				}
			}
		})
		if err != nil {
			return nil, err
		}
	}
	c.rounds.Add(2*c.params.RowSpacing + c.params.MoveCap + 2) // segment negotiation
	return out, nil
}

// NoEvenColoringOddN restates Theorem 21 as a checkable fact: on a
// d-dimensional torus with odd side product, every colour class of a
// 2d-edge-colouring would have to be a perfect matching of an odd number
// of nodes, which is impossible. It returns the parity witness n^d mod 2.
func NoEvenColoringOddN(t *grid.Torus) bool {
	return t.N()%2 == 1
}
