package edgecolor

import (
	"testing"

	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

// TestFiveColoring2D reproduces the d = 2 case of Theorem 15: a proper
// edge 5-colouring of the 2-dimensional torus in Θ(log* n) rounds, with
// the paper's constants (row spacing 2(4k+1)², k = 3), which require
// n >= 679.
func TestFiveColoring2D(t *testing.T) {
	n := 680
	g := grid.Square(n)
	out, rounds, err := Run(g, local.PermutedIDs(g.N(), 1), Params{})
	if err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	if err := out.VerifyProper(5); err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	if rounds.Total() <= 0 {
		t.Error("rounds not accounted")
	}

	// Every row in every dimension must contain at least one edge of the
	// special colour 4 (0-based; the paper's colour 2d+1), and the
	// remaining edges of a q-row use only the colours {2q, 2q+1}.
	for q := 0; q < 2; q++ {
		for r := 0; r < n; r++ {
			specials := 0
			for i := 0; i < n; i++ {
				var v int
				if q == 0 {
					v = g.At(i, r)
				} else {
					v = g.At(r, i)
				}
				c := out.C[q][v]
				switch c {
				case 4:
					specials++
				case 2 * q, 2*q + 1:
				default:
					t.Fatalf("dim %d row %d: colour %d outside palette", q, r, c)
				}
			}
			if specials == 0 {
				t.Fatalf("dim %d row %d has no special edge", q, r)
			}
		}
	}

	// Cross-check through the SFT representation.
	p := lcl.EdgeColoring(5, 2)
	lab, err := out.ToLabels(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(g, lab); err != nil {
		t.Fatalf("SFT verification failed: %v", err)
	}
}

func TestRejectsTooSmallTorus(t *testing.T) {
	g := grid.Square(10)
	if _, _, err := Run(g, local.SequentialIDs(g.N()), Params{}); err == nil {
		t.Error("expected error for small torus")
	}
}

// TestTheorem21Parity checks the 2d-colouring impossibility witness.
func TestTheorem21Parity(t *testing.T) {
	if !NoEvenColoringOddN(grid.Square(5)) {
		t.Error("odd torus should witness impossibility")
	}
	if NoEvenColoringOddN(grid.Square(6)) {
		t.Error("even torus admits 2d-colourings")
	}
}

func TestDefaultParams(t *testing.T) {
	p2 := DefaultParams(2)
	if p2.K != 3 || 2*p2.K <= 4*(2-1) {
		t.Errorf("d=2 params %+v violate 2k > 4(d-1)", p2)
	}
	p3 := DefaultParams(3)
	if 2*p3.K <= 4*(3-1) {
		t.Errorf("d=3 params %+v violate 2k > 4(d-1)", p3)
	}
}
