package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestAllExperiments runs every experiment end to end; each one asserts
// its paper-vs-measured agreement internally.
func TestAllExperiments(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(context.Background(), &sb); err != nil {
				t.Fatalf("%s (%s): %v\noutput so far:\n%s", e.ID, e.Title, err, sb.String())
			}
			if sb.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestAllIDsUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if len(seen) != 12 {
		t.Errorf("expected 12 experiments, got %d", len(seen))
	}
}

func TestE8RoundsFor4Coloring(t *testing.T) {
	r, err := E8RoundsFor4Coloring(28)
	if err != nil {
		t.Fatal(err)
	}
	if r <= 0 {
		t.Error("rounds must be positive")
	}
}

func TestMISRoundBound(t *testing.T) {
	if MISRoundBound(16, 1) <= 0 {
		t.Error("bound must be positive")
	}
}
