// Package experiments regenerates every quantitative claim of the paper:
// the Fig. 2 cycle classification, the §7 synthesis statistics, the
// colouring and orientation thresholds, the normal-form round scaling,
// the §6 undecidability construction, and the §9/§11 lower-bound
// invariants. Each experiment prints the paper's claim next to the
// measured value; EXPERIMENTS.md records a full run.
//
// All grid problems are resolved through the package-level Engine and its
// Registry — one shared synthesis cache across E1–E12, so e.g. the k = 3
// 4-colouring table is synthesized once even though E3, E8 and the
// benchmark harness all use it.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"

	lclgrid "lclgrid"
	"lclgrid/internal/coloring"
	"lclgrid/internal/coordination"
	"lclgrid/internal/grid"
	"lclgrid/internal/lm"
	"lclgrid/internal/logstar"
	"lclgrid/internal/orient"
	"lclgrid/internal/tiles"
)

// eng is the shared solving service: every experiment routes problem
// construction and solving through its Registry, and synthesis results
// are cached across experiments (and across repeated runs, e.g. the
// benchmark harness iterating over All()).
var eng = lclgrid.NewEngine()

// Experiment is a named, runnable reproduction of one paper artefact.
// Run honours ctx: experiments routed through the engine abort at the
// next synthesis checkpoint when the context is cancelled.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, w io.Writer) error
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig. 2: LCL classification on directed cycles", E1},
		{"E2", "§7 tile counts (16 for k=1 3×2; 2079 for k=3 7×5)", E2},
		{"E3", "§7 4-colouring synthesis (fails k=1,2; succeeds k=3)", E3},
		{"E4", "Lemma 23: {1,3,4}-orientation synthesized with k=1", E4},
		{"E5", "Thms 4+9: vertex colouring threshold (≤3 global, ≥4 log*)", E5},
		{"E6", "Thms 15+21: edge colouring threshold (2d global, 2d+1 log*)", E6},
		{"E7", "Thm 22: X-orientation classification, all 32 subsets", E7},
		{"E8", "Fig. 1/Thm 2: normal-form round scaling vs global baseline", E8},
		{"E9", "§6: L_M solvable iff M halts (undecidability gadget)", E9},
		{"E10", "§9 Lemmas 12+14: 3-colouring row invariant", E10},
		{"E11", "Thm 25: {0,3,4}-orientation vertical-edge invariant", E11},
		{"E12", "A.3 Thm 27: corner coordination Θ(√n) radius", E12},
	}
}

// problem resolves a registry key to its SFT problem.
func problem(key string) (*lclgrid.Problem, error) {
	spec, err := eng.Registry().Lookup(key)
	if err != nil {
		return nil, err
	}
	if spec.Problem == nil {
		return nil, fmt.Errorf("experiments: %s has no SFT form", key)
	}
	return spec.Problem(), nil
}

// E1 classifies the four Fig. 2 problems on directed cycles.
func E1(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "problem                      paper      measured")
	rows := []struct {
		p     *lclgrid.CycleProblem
		paper string
	}{
		{lclgrid.CycleIndependentSet(), "O(1)"},
		{lclgrid.CycleThreeColoring(), "Θ(log* n)"},
		{lclgrid.CycleMIS(), "Θ(log* n)"},
		{lclgrid.CycleTwoColoring(), "Θ(n)"},
	}
	for _, r := range rows {
		cls := r.p.Classify()
		fmt.Fprintf(w, "%-28s %-10s %s\n", r.p.Name(), r.paper, cls.Class)
		if cls.Class.String() != r.paper {
			return fmt.Errorf("E1: %s classified %v, paper says %s", r.p.Name(), cls.Class, r.paper)
		}
	}
	return nil
}

// E2 reproduces the §7 tile counts.
func E2(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "power  window  paper  measured")
	for _, row := range []struct{ k, h, wd, want int }{
		{1, 3, 2, 16},
		{3, 7, 5, 2079},
	} {
		got := tiles.Count(row.k, row.h, row.wd)
		fmt.Fprintf(w, "k=%d    %d×%d     %-6d %d\n", row.k, row.h, row.wd, row.want, got)
		if got != row.want {
			return fmt.Errorf("E2: k=%d %dx%d: got %d tiles, paper says %d", row.k, row.h, row.wd, got, row.want)
		}
	}
	return nil
}

// E3 runs the 4-colouring synthesis for k = 1, 2, 3 through the engine
// cache and then solves on a torus via the registry's solver.
func E3(ctx context.Context, w io.Writer) error {
	p, err := problem("4col")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "k  window  tiles  paper      measured")
	for _, row := range []struct {
		k, h, wd int
		want     bool
	}{
		{1, 3, 2, false}, {2, 5, 3, false}, {3, 7, 5, true},
	} {
		alg, _, err := eng.Synthesize(ctx, p, row.k, row.h, row.wd)
		ok := err == nil
		nt := tiles.Count(row.k, row.h, row.wd)
		fmt.Fprintf(w, "%d  %d×%d     %-6d %-10v %v\n", row.k, row.h, row.wd, nt, row.want, ok)
		if ok != row.want {
			return fmt.Errorf("E3: k=%d: synthesis success=%v, paper says %v", row.k, ok, row.want)
		}
		if ok {
			g := lclgrid.Square(28)
			res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "4col", Torus: g, Seed: 1})
			if err != nil {
				return fmt.Errorf("E3: %w", err)
			}
			fmt.Fprintf(w, "   run on 28×28 torus: %s 4-colouring, %d rounds, %d SAT conflicts\n",
				res.Verification, res.Rounds, alg.SolverStats.Conflicts)
		}
	}
	return nil
}

// E4 solves the two minimal Θ(log* n) orientation problems through the
// registry (synthesized with k = 1 per Lemma 23) and decodes the edge
// orientations.
func E4(ctx context.Context, w io.Writer) error {
	for _, row := range []struct {
		key string
		x   []int
	}{
		{"orient134", []int{1, 3, 4}},
		{"orient013", []int{0, 1, 3}},
	} {
		g := lclgrid.Square(16)
		res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: row.key, Torus: g, Seed: 2})
		if err != nil {
			return fmt.Errorf("E4: X=%v: %w", row.x, err)
		}
		op := lclgrid.XOrientation(row.x, 2)
		o := lclgrid.OrientationFromLabels(op, g, res.Labels)
		if err := o.VerifyX(row.x); err != nil {
			return err
		}
		fmt.Fprintf(w, "X=%v: %s (paper: k=1), %s on 16×16, %d rounds\n",
			row.x, res.Note, res.Verification, res.Rounds)
	}
	return nil
}

// E5 walks the vertex-colouring threshold.
func E5(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "k  paper      evidence")
	// k = 2: unsolvable on odd tori (global).
	if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "2col", N: 5}); !errors.Is(err, lclgrid.ErrUnsolvable) {
		return fmt.Errorf("E5: 2-colouring on odd torus: want ErrUnsolvable, got %v", err)
	}
	fmt.Fprintln(w, "2  Θ(n)       no solution on 5×5 (odd) torus: SAT certificate")
	// k = 3: synthesis fails through k = 3 (one-sided global evidence),
	// solutions exist (7×7).
	p3, err := problem("3col")
	if err != nil {
		return err
	}
	if oracle := eng.Classify(ctx, p3, 3); oracle.Class != lclgrid.ClassUnknown {
		return fmt.Errorf("E5: 3-colouring classified %v at maxK=3", oracle.Class)
	}
	if res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "3col", N: 7}); err != nil || res.Verification != lclgrid.Verified {
		return fmt.Errorf("E5: 3-colouring on 7×7: err=%v result=%v", err, res)
	}
	fmt.Fprintln(w, "3  Θ(n)       synthesis UNSAT for k=1..3; solvable on 7×7 (Thm 9 proves Ω(n))")
	// k = 4: synthesis succeeds (E3) and the §8 direct algorithm works.
	g := lclgrid.Square(128)
	res, err := lclgrid.FourColorSolver{}.Solve(ctx, g, lclgrid.PermutedIDs(g.N(), 4), lclgrid.WithEll(31))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "4  Θ(log* n)  synthesis k=3 (E3) + §8 algorithm %s on 128×128 (%s, %d rounds)\n",
		res.Verification, res.Note, res.Rounds)
	// k = 5: synthesis already at k = 1.
	p5, err := problem("5col")
	if err != nil {
		return err
	}
	if _, _, err := eng.Synthesize(ctx, p5, 1, 3, 2); err != nil {
		return fmt.Errorf("E5: 5-colouring failed at k=1: %w", err)
	}
	fmt.Fprintln(w, "5  Θ(log* n)  synthesis k=1 (3×2 windows)")
	return nil
}

// E6 walks the edge-colouring threshold for d = 2.
func E6(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "colours  paper      evidence")
	if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "4edgecol", N: 3}); !errors.Is(err, lclgrid.ErrUnsolvable) {
		return fmt.Errorf("E6: edge 4-colouring on odd torus: want ErrUnsolvable, got %v", err)
	}
	fmt.Fprintln(w, "4 (=2d)  Θ(n)       no solution on 3×3 (odd) torus: SAT certificate (Thm 21 parity)")
	if res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "4edgecol", N: 4}); err != nil || res.Verification != lclgrid.Verified {
		return fmt.Errorf("E6: edge 4-colouring should exist on 4×4: err=%v result=%v", err, res)
	}
	fmt.Fprintln(w, "4 (=2d)  —          solvable on even tori (4×4 SAT witness)")

	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "5edgecol", N: 680, Seed: 1})
	if err != nil {
		return err
	}
	if err := res.Decoded.(*lclgrid.EdgeColors).VerifyProper(5); err != nil {
		return err
	}
	fmt.Fprintf(w, "5 (=2d+1) Θ(log* n) §10 algorithm %s on 680×680 (paper constants k=3, spacing 338; %d rounds)\n",
		res.Verification, res.Rounds)
	return nil
}

// E7 prints the full Theorem 22 table and validates two global cases by
// unsolvability certificates (the Θ(log* n) cases are synthesized in E4).
func E7(ctx context.Context, w io.Writer) error {
	counts := map[lclgrid.Class]int{}
	for _, row := range orient.Table() {
		counts[row.Class]++
		fmt.Fprintf(w, "X=%-14s %s\n", fmt.Sprint(row.X), row.Class)
	}
	if counts[lclgrid.ClassO1] != 16 || counts[lclgrid.ClassLogStar] != 3 || counts[lclgrid.ClassGlobal] != 13 {
		return fmt.Errorf("E7: class counts %v do not match Thm 22", counts)
	}
	if _, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "orient13", N: 3}); !errors.Is(err, lclgrid.ErrUnsolvable) {
		return fmt.Errorf("E7: {1,3}-orientation on odd torus: want ErrUnsolvable, got %v (Lemma 24)", err)
	}
	fmt.Fprintln(w, "spot check: {1,3} unsolvable on 3×3 (Lemma 24); {1,3,4}/{0,1,3} synthesized (E4)")
	return nil
}

// E8 measures the Θ(log* n) vs Θ(n) round scaling of Fig. 1/Thm 2 using
// the k = 1 synthesized 5-colouring against the gather-and-solve
// baseline; the engine cache makes the per-size solves share one
// synthesis.
func E8(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "n      log*(n²)  normal-form rounds  global rounds (=diameter)")
	prev := 0
	for _, n := range []int{16, 32, 64, 128, 256} {
		g := lclgrid.Square(n)
		res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "5col", Torus: g, Seed: int64(n)})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %-9d %-19d %d\n", n, logstar.LogStar(n*n), res.Rounds, lclgrid.Diameter(g))
		if prev != 0 && res.Rounds > 3*prev {
			return fmt.Errorf("E8: rounds grew superlogarithmically: %d -> %d", prev, res.Rounds)
		}
		prev = res.Rounds
	}
	fmt.Fprintln(w, "normal-form rounds stay near-constant (log* growth); the baseline grows linearly.")
	return nil
}

// E9 exercises the §6 construction through the lm:halt and lm:loop
// registry entries: for a halting machine the solver produces a P2
// labelling accepted by the checker; for a non-halting machine anchored
// labellings are rejected and only the Θ(n) P1 escape remains.
func E9(ctx context.Context, w io.Writer) error {
	n := lm.TileSize(2) * 2
	g := lclgrid.Square(n)
	res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "lm:halt", Torus: g})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "halting M (writer-2, s=2): P2 labelling %s on %d×%d (%s)\n",
		res.Verification, n, n, res.Note)

	labels := res.Decoded.([]lm.Label)
	looper := lclgrid.LM(lclgrid.RightLooper())
	if err := looper.Verify(g, labels); err == nil {
		return fmt.Errorf("E9: anchored labelling accepted for non-halting machine")
	}
	fmt.Fprintln(w, "non-halting M (right-looper): anchored labellings rejected by the checker")

	resLoop, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "lm:loop", N: 9})
	if err != nil {
		return err
	}
	if resLoop.Class != lclgrid.ClassGlobal {
		return fmt.Errorf("E9: lm:loop classed %v, want Θ(n)", resLoop.Class)
	}
	fmt.Fprintf(w, "non-halting M: only the P1 (3-colouring) escape remains — Θ(n) (%d rounds on 9×9)\n", resLoop.Rounds)
	return nil
}

// E10 verifies the §9 row invariants on sampled greedy 3-colourings.
func E10(ctx context.Context, w io.Writer) error {
	for _, n := range []int{6, 9, 12} {
		g := grid.Square(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 3; trial++ {
			colors, ok := coordination.RandomThreeColoring(g, rng)
			if !ok {
				return fmt.Errorf("E10: no 3-colouring on %d×%d", n, n)
			}
			aux := coordination.BuildAux(g, coordination.MakeGreedy(g, colors))
			s, err := aux.Invariant()
			if err != nil {
				return fmt.Errorf("E10: n=%d: %w", n, err)
			}
			fmt.Fprintf(w, "n=%-3d trial=%d: all rows share s=%d (|s|<=n/2%s)\n",
				n, trial, s, oddNote(n))
		}
	}
	return nil
}

func oddNote(n int) string {
	if n%2 == 1 {
		return ", s odd"
	}
	return ""
}

// E11 verifies the Theorem 25 invariant on registry-solved
// {0,3,4}-orientations.
func E11(ctx context.Context, w io.Writer) error {
	for _, n := range []int{4, 6} {
		g := lclgrid.Square(n)
		res, err := eng.Solve(ctx, lclgrid.SolveRequest{Key: "orient034", Torus: g})
		if err != nil {
			return fmt.Errorf("E11: no {0,3,4}-orientation on %d×%d: %w", n, n, err)
		}
		op := lclgrid.XOrientation([]int{0, 3, 4}, 2)
		o := lclgrid.OrientationFromLabels(op, g, res.Labels)
		r, err := coordination.Orient034Invariant(o)
		if err != nil {
			return fmt.Errorf("E11: n=%d: %w", n, err)
		}
		fmt.Fprintf(w, "n=%d: vertical-edge invariant constant across rows, r(G)=%d\n", n, r)
	}
	return nil
}

// E12 measures the corner-coordination radius of Theorem 27.
func E12(ctx context.Context, w io.Writer) error {
	fmt.Fprintln(w, "m     n=m²    sight radius  2√n bound  ball size C(r+2,2) ok")
	for _, m := range []int{10, 25, 50, 100} {
		rad := coordination.CornerSightRadius(m)
		okBall := true
		for r := 0; r < m; r++ {
			if coordination.CornerBallSize(m, r) != (r+1)*(r+2)/2 {
				okBall = false
			}
		}
		if rad >= 2*m {
			return fmt.Errorf("E12: m=%d radius %d above bound", m, rad)
		}
		fmt.Fprintf(w, "%-5d %-7d %-13d %-10d %v\n", m, m*m, rad, 2*m, okBall)
	}
	return nil
}

// E8RoundsFor4Coloring reports the synthesized 4-colouring (k=3) round
// account for a given torus side; used by the benchmark harness.
func E8RoundsFor4Coloring(n int) (int, error) {
	res, err := eng.Solve(context.Background(), lclgrid.SolveRequest{Key: "4col", N: n, Seed: 1})
	if err != nil {
		return 0, err
	}
	return res.Rounds, nil
}

// MISRoundBound re-exports the anchor round bound for documentation
// purposes.
func MISRoundBound(n, k int) int {
	return coloring.MISRoundsUpperBound(grid.Square(n), k, grid.L1)
}
