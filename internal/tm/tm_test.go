package tm

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestHaltingWriterSteps(t *testing.T) {
	for steps := 1; steps <= 6; steps++ {
		m := HaltingWriter(steps)
		if err := m.Validate(); err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		table, err := m.Run(100)
		if err != nil {
			t.Fatalf("steps=%d: %v", steps, err)
		}
		if table.Steps != steps {
			t.Errorf("steps=%d: halted after %d", steps, table.Steps)
		}
		if table.Width != steps+1 {
			t.Errorf("steps=%d: width %d", steps, table.Width)
		}
		if len(table.Rows) != steps+1 {
			t.Errorf("steps=%d: %d rows", steps, len(table.Rows))
		}
	}
}

func TestRowsPaddedUniformly(t *testing.T) {
	table, err := HaltingWriter(4).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	for j, row := range table.Rows {
		if len(row) != table.Width {
			t.Fatalf("row %d has %d cells, want %d", j, len(row), table.Width)
		}
	}
}

func TestExactlyOneHeadPerRow(t *testing.T) {
	table, err := HaltingWriter(5).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	for j, row := range table.Rows {
		heads := 0
		for _, c := range row {
			if c.HasHead {
				heads++
			}
		}
		if heads != 1 {
			t.Fatalf("row %d has %d heads", j, heads)
		}
	}
}

func TestTransitionsConsistent(t *testing.T) {
	// Every consecutive row pair must differ only around the head, and
	// the change must match the machine's transition rule — the property
	// the §6 grid encoding checks with 2×2 windows.
	m := HaltingWriter(4)
	table, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j+1 < len(table.Rows); j++ {
		cur, next := table.Rows[j], table.Rows[j+1]
		headAt := -1
		for i, c := range cur {
			if c.HasHead {
				headAt = i
			}
		}
		rule := m.Delta[cur[headAt].State][cur[headAt].Sym]
		for i := range cur {
			switch {
			case i == headAt:
				if next[i].Sym != rule.Write {
					t.Fatalf("step %d: cell %d not rewritten", j, i)
				}
			default:
				if next[i].Sym != cur[i].Sym {
					t.Fatalf("step %d: cell %d changed away from head", j, i)
				}
			}
		}
		if !next[headAt+rule.Move].HasHead || next[headAt+rule.Move].State != rule.Next {
			t.Fatalf("step %d: head did not move correctly", j)
		}
	}
}

func TestNonHaltingMachines(t *testing.T) {
	if _, err := RightLooper().Run(5000); !errors.Is(err, ErrNoHalt) {
		t.Errorf("right-looper: err = %v, want ErrNoHalt", err)
	}
	if _, err := Zigzag(4).Run(5000); !errors.Is(err, ErrNoHalt) {
		t.Errorf("zigzag: err = %v, want ErrNoHalt", err)
	}
}

func TestZigzagStaysBounded(t *testing.T) {
	// The zigzag machine must keep its head within [0, width): Run only
	// errors on negative positions, so run it for a while and rely on
	// ErrNoHalt rather than a head error.
	if _, err := Zigzag(3).Run(1000); !errors.Is(err, ErrNoHalt) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateCatchesBadRules(t *testing.T) {
	bad := &Machine{
		Name: "bad", NumStates: 2, NumSymbols: 2,
		Halt:  []bool{false, true},
		Delta: [][]Rule{{{Write: 0, Move: 0, Next: 1}, {Write: 0, Move: 1, Next: 1}}, {}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("Move=0 should be rejected")
	}
	empty := &Machine{}
	if err := empty.Validate(); err == nil {
		t.Error("empty machine should be rejected")
	}
}

func TestHaltsAgreesWithRun(t *testing.T) {
	f := func(stepsRaw uint8) bool {
		steps := 1 + int(stepsRaw%5)
		return HaltingWriter(steps).Halts(steps+1) && !HaltingWriter(steps+2).Halts(steps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
