// Package tm implements deterministic single-tape Turing machines on a
// right-infinite tape, and their execution tables: the (s+1)×r tableaux
// that §6 of the paper embeds into grid labellings to prove that the
// Θ(log* n) / Θ(n) classification of LCL problems is undecidable.
package tm

import (
	"errors"
	"fmt"
)

// Blank is the blank tape symbol.
const Blank = 0

// Rule is a transition: write a symbol, move the head, enter a state.
type Rule struct {
	Write int
	Move  int // -1 (left) or +1 (right)
	Next  int
}

// Machine is a deterministic Turing machine. State 0 is the start state;
// states with Halt[q] true have no outgoing transitions.
type Machine struct {
	Name       string
	NumStates  int
	NumSymbols int
	Halt       []bool
	// Delta[q][a] is the transition taken in state q reading symbol a;
	// it is ignored for halting states.
	Delta [][]Rule
}

// Validate checks structural well-formedness.
func (m *Machine) Validate() error {
	if m.NumStates < 1 || m.NumSymbols < 1 {
		return errors.New("tm: need at least one state and symbol")
	}
	if len(m.Halt) != m.NumStates || len(m.Delta) != m.NumStates {
		return errors.New("tm: table sizes do not match NumStates")
	}
	for q := 0; q < m.NumStates; q++ {
		if m.Halt[q] {
			continue
		}
		if len(m.Delta[q]) != m.NumSymbols {
			return fmt.Errorf("tm: state %d has %d rules, want %d", q, len(m.Delta[q]), m.NumSymbols)
		}
		for a, r := range m.Delta[q] {
			if r.Write < 0 || r.Write >= m.NumSymbols || r.Next < 0 || r.Next >= m.NumStates || (r.Move != -1 && r.Move != 1) {
				return fmt.Errorf("tm: invalid rule for (state %d, symbol %d)", q, a)
			}
		}
	}
	return nil
}

// Cell is one entry of an execution table: a tape symbol, optionally
// together with the head and its state.
type Cell struct {
	Sym     int
	HasHead bool
	State   int
}

// Table is an execution table: Rows[j][i] is the content of tape cell i
// before step j, for j = 0..Steps; the machine halts after Steps steps
// (the head on the last row is in a halting state). Width is the number
// of tape cells used (r <= Steps+1 in the paper's notation).
type Table struct {
	Rows  [][]Cell
	Steps int
	Width int
}

// ErrNoHalt is returned by Run when the machine does not halt within the
// step bound.
var ErrNoHalt = errors.New("tm: machine did not halt within the step bound")

// Run executes the machine on the empty tape for at most maxSteps steps
// and returns its execution table. It returns ErrNoHalt if the machine is
// still running, and an error if the head ever moves left of cell 0 (§6
// machines run on a quarter-plane tableau).
func (m *Machine) Run(maxSteps int) (*Table, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	tape := []int{Blank}
	head, state := 0, 0
	var rows [][]Cell
	snapshot := func() {
		row := make([]Cell, len(tape))
		for i, a := range tape {
			row[i] = Cell{Sym: a}
		}
		row[head].HasHead = true
		row[head].State = state
		rows = append(rows, row)
	}
	for step := 0; ; step++ {
		snapshot()
		if m.Halt[state] {
			width := len(tape)
			// Pad all rows to the final width.
			for j := range rows {
				for len(rows[j]) < width {
					rows[j] = append(rows[j], Cell{Sym: Blank})
				}
			}
			return &Table{Rows: rows, Steps: step, Width: width}, nil
		}
		if step >= maxSteps {
			return nil, ErrNoHalt
		}
		r := m.Delta[state][tape[head]]
		tape[head] = r.Write
		head += r.Move
		state = r.Next
		if head < 0 {
			return nil, errors.New("tm: head moved left of cell 0")
		}
		if head == len(tape) {
			tape = append(tape, Blank)
		}
	}
}

// Halts reports whether the machine halts on the empty tape within
// maxSteps steps.
func (m *Machine) Halts(maxSteps int) bool {
	_, err := m.Run(maxSteps)
	return err == nil
}

// HaltingWriter returns a machine that writes `steps` ones while moving
// right and then halts; it halts on the empty tape in exactly `steps`
// steps.
func HaltingWriter(steps int) *Machine {
	if steps < 1 {
		panic("tm: steps must be >= 1")
	}
	// States 0..steps-1 write and move right; state `steps` halts.
	n := steps + 1
	m := &Machine{
		Name:       fmt.Sprintf("writer-%d", steps),
		NumStates:  n,
		NumSymbols: 2,
		Halt:       make([]bool, n),
		Delta:      make([][]Rule, n),
	}
	m.Halt[steps] = true
	for q := 0; q < steps; q++ {
		m.Delta[q] = []Rule{
			{Write: 1, Move: 1, Next: q + 1},
			{Write: 1, Move: 1, Next: q + 1},
		}
	}
	m.Delta[steps] = []Rule{}
	return m
}

// RightLooper returns a machine that moves right forever: it never halts
// on any input.
func RightLooper() *Machine {
	return &Machine{
		Name:       "right-looper",
		NumStates:  1,
		NumSymbols: 2,
		Halt:       []bool{false},
		Delta:      [][]Rule{{{Write: 1, Move: 1, Next: 0}, {Write: 1, Move: 1, Next: 0}}},
	}
}

// Zigzag returns a machine that bounces between cells 0 and width-1,
// writing alternating symbols forever; another non-halting example with
// bounded tape usage.
func Zigzag(width int) *Machine {
	if width < 2 {
		panic("tm: width must be >= 2")
	}
	// State encodes direction and position implicitly via tape marks:
	// simple two-state bouncer: state 0 moves right until it reads a 1,
	// state 1 moves left until it reads a 1 at cell 0... To keep the head
	// in [0, width) we pre-mark nothing and just bounce on step parity:
	// states 0..width-2 move right, then width-1..2(width-1)-1 move left.
	n := 2 * (width - 1)
	m := &Machine{
		Name:       fmt.Sprintf("zigzag-%d", width),
		NumStates:  n,
		NumSymbols: 2,
		Halt:       make([]bool, n),
		Delta:      make([][]Rule, n),
	}
	for q := 0; q < n; q++ {
		move := 1
		if q >= width-1 {
			move = -1
		}
		next := (q + 1) % n
		m.Delta[q] = []Rule{
			{Write: 1, Move: move, Next: next},
			{Write: 0, Move: move, Next: next},
		}
	}
	return m
}
