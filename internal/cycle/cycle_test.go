package cycle

import (
	"testing"

	"lclgrid/internal/core"
	"lclgrid/internal/grid"
	"lclgrid/internal/local"
)

// TestFigure2Classification reproduces the classification of Fig. 2:
// independent set is O(1) (self-loop), 3-colouring and MIS are Θ(log* n)
// (flexible states), 2-colouring is Θ(n).
func TestFigure2Classification(t *testing.T) {
	tests := []struct {
		p    *Problem
		want core.Class
	}{
		{IndependentSet(), core.ClassO1},
		{ThreeColoring(), core.ClassLogStar},
		{MIS(), core.ClassLogStar},
		{TwoColoring(), core.ClassGlobal},
	}
	for _, tt := range tests {
		got := tt.p.Classify()
		if got.Class != tt.want {
			t.Errorf("%s: class = %v, want %v", tt.p.Name(), got.Class, tt.want)
		}
	}
}

// TestMISFlexibilityMatchesPaper checks the Fig. 2 caption: in the MIS
// problem, state 00 has walks of lengths 3 and 5 back to itself, and
// hence closed walks of every length larger than 7 (the paper's
// coprime-sum bound). The exact analysis is sharper: the 01↔10 two-cycle
// makes the minimum flexibility 2.
func TestMISFlexibilityMatchesPaper(t *testing.T) {
	p := MIS()
	cls := p.Classify()
	if cls.Class != core.ClassLogStar {
		t.Fatalf("class = %v", cls.Class)
	}
	ng := p.NeighbourhoodGraph()
	node00 := -1
	for i := range ng.Seqs {
		if ng.NodeName(p, i) == "00" {
			node00 = i
		}
	}
	if node00 < 0 {
		t.Fatal("H node 00 missing")
	}
	// The paper's walks of lengths 3 and 5 through 00 exist, 1 and 2 do not.
	for _, l := range []int{3, 5} {
		if ng.G.Walk(node00, node00, l) == nil {
			t.Errorf("no closed walk of length %d through 00", l)
		}
	}
	for _, l := range []int{1, 2, 4} {
		if ng.G.Walk(node00, node00, l) != nil {
			t.Errorf("unexpected closed walk of length %d through 00", l)
		}
	}
	// "hence also of any length larger than 7":
	for l := 8; l <= 20; l++ {
		if ng.G.Walk(node00, node00, l) == nil {
			t.Errorf("no closed walk of length %d through 00", l)
		}
	}
	// Exact minimum flexibility over all states is 2 (the 01↔10 cycle).
	if cls.Flexibility != 2 {
		t.Errorf("minimum flexibility = %d, want 2", cls.Flexibility)
	}
}

func TestThreeColoringRuns(t *testing.T) {
	p := ThreeColoring()
	alg, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{8, 13, 64, 257} {
		c := grid.Cycle(n)
		for _, seed := range []int64{1, 9} {
			out, rounds, err := alg.Run(c, local.PermutedIDs(n, seed))
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := p.Verify(c, out); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if rounds.Total() <= 0 {
				t.Error("expected positive rounds")
			}
		}
	}
}

func TestMISRunsAndDecodes(t *testing.T) {
	p := MIS()
	alg, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{20, 33, 100} {
		c := grid.Cycle(n)
		out, _, err := alg.Run(c, local.PermutedIDs(n, 4))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Verify(c, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Decode to a set and check MIS on the cycle directly.
		for v := 0; v < n; v++ {
			succ, pred := out[(v+1)%n], out[(v+n-1)%n]
			if out[v] == 1 && (succ == 1 || pred == 1) {
				t.Fatalf("n=%d: adjacent members at %d", n, v)
			}
			if out[v] == 0 && succ == 0 && pred == 0 {
				t.Fatalf("n=%d: undominated node %d", n, v)
			}
		}
	}
}

func TestIndependentSetConstant(t *testing.T) {
	p := IndependentSet()
	alg, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	c := grid.Cycle(17)
	out, rounds, err := alg.Run(c, local.SequentialIDs(17))
	if err != nil {
		t.Fatal(err)
	}
	if rounds.Total() != 0 {
		t.Errorf("O(1) algorithm used %d rounds", rounds.Total())
	}
	if err := p.Verify(c, out); err != nil {
		t.Fatal(err)
	}
}

func TestTwoColoringGlobal(t *testing.T) {
	p := TwoColoring()
	alg, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	// Even n: solvable by brute force in Θ(n) rounds.
	c := grid.Cycle(12)
	out, rounds, err := alg.Run(c, local.SequentialIDs(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(c, out); err != nil {
		t.Fatal(err)
	}
	if rounds.Total() != core.Diameter(c) {
		t.Errorf("rounds = %d, want diameter %d", rounds.Total(), core.Diameter(c))
	}
	// Odd n: unsolvable.
	if _, _, err := alg.Run(grid.Cycle(13), local.SequentialIDs(13)); err == nil {
		t.Error("2-colouring of odd cycle should fail")
	}
}

// TestRadiusTwoProblem exercises r = 2: a spacing-constrained ruling set
// ("1"s pairwise more than 2 apart, no 5 consecutive "0"s) is flexible.
func TestRadiusTwoProblem(t *testing.T) {
	var windows [][]int
	for m := 0; m < 1<<5; m++ {
		w := make([]int, 5)
		ok := true
		ones := -1
		anyOne := false
		for j := 0; j < 5; j++ {
			w[j] = (m >> j) & 1
			if w[j] == 1 {
				anyOne = true
				if ones >= 0 && j-ones <= 2 {
					ok = false
				}
				ones = j
			}
		}
		if ok && anyOne {
			windows = append(windows, w)
		}
	}
	p := NewProblem("spacing-3 ruling set", []string{"0", "1"}, 2, windows)
	cls := p.Classify()
	if cls.Class != core.ClassLogStar {
		t.Fatalf("class = %v, want Θ(log* n)", cls.Class)
	}
	alg, err := p.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{25, 40} {
		c := grid.Cycle(n)
		out, _, err := alg.Run(c, local.PermutedIDs(n, 2))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Verify(c, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestThreeColoringFlexibilitySmall(t *testing.T) {
	// H of 3-colouring has 2- and 3-cycles through every node: flexibility 2.
	cls := ThreeColoring().Classify()
	if cls.Flexibility != 2 {
		t.Errorf("3-colouring flexibility = %d, want 2", cls.Flexibility)
	}
}

func TestVerifyRejectsBadWindows(t *testing.T) {
	p := ThreeColoring()
	c := grid.Cycle(6)
	lab := []int{0, 1, 0, 1, 0, 1}
	if err := p.Verify(c, lab); err != nil {
		t.Fatalf("alternating colouring should be fine: %v", err)
	}
	lab[3] = 1 // creates 1,1 adjacency? positions 3,4: 1,0 -- set both
	lab[4] = 1
	if err := p.Verify(c, lab); err == nil {
		t.Error("expected verification failure")
	}
}

func TestNeighbourhoodGraphShape(t *testing.T) {
	// MIS H-graph: nodes 00, 01, 10 (11 never occurs), as in Fig. 2.
	p := MIS()
	ng := p.NeighbourhoodGraph()
	if ng.G.N() != 3 {
		t.Errorf("MIS H has %d nodes, want 3", ng.G.N())
	}
	names := map[string]bool{}
	for i := range ng.Seqs {
		names[ng.NodeName(p, i)] = true
	}
	for _, want := range []string{"00", "01", "10"} {
		if !names[want] {
			t.Errorf("missing H node %s", want)
		}
	}
}

func TestFeasible(t *testing.T) {
	p := MIS()
	if !p.Feasible([]int{1, 0, 1}) {
		t.Error("101 should be feasible")
	}
	if p.Feasible([]int{1, 1, 0}) {
		t.Error("110 should be infeasible")
	}
}

func TestUnsolvableProblem(t *testing.T) {
	// A problem whose H is acyclic: label must strictly "increase", which
	// cannot close a cycle. No solutions for any n.
	var windows [][]int
	windows = append(windows, []int{0, 1, 2})
	p := NewProblem("strictly increasing", []string{"a", "b", "c"}, 1, windows)
	cls := p.Classify()
	if cls.Class != core.ClassGlobal || cls.Solvable {
		t.Errorf("got class=%v solvable=%v, want global unsolvable", cls.Class, cls.Solvable)
	}
	if _, err := p.Synthesize(); err == nil {
		t.Error("expected synthesis to fail for unsolvable problem")
	}
}
