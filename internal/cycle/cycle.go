// Package cycle implements the fully decidable LCL theory on directed
// cycles (§4 of the paper): every problem is represented by its output
// neighbourhood graph H, whose elementary properties — self-loops,
// flexible states, periods — determine the problem's complexity exactly,
// and from which asymptotically optimal algorithms are synthesized
// mechanically (Fig. 2).
package cycle

import (
	"fmt"
	"sort"
	"strings"

	"lclgrid/internal/coloring"
	"lclgrid/internal/core"
	"lclgrid/internal/dgraph"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

// Problem is an LCL problem on directed cycles: a finite alphabet and the
// set of feasible windows of 2r+1 consecutive output labels (read in the
// direction of the cycle's orientation).
type Problem struct {
	name    string
	labels  []string
	r       int
	windows [][]int
	feas    map[string]bool
}

// NewProblem constructs a cycle problem with checkability radius r from
// its feasible (2r+1)-windows.
func NewProblem(name string, labels []string, r int, windows [][]int) *Problem {
	p := &Problem{name: name, labels: append([]string(nil), labels...), r: r, feas: make(map[string]bool)}
	for _, w := range windows {
		if len(w) != 2*r+1 {
			panic(fmt.Sprintf("cycle: window %v has length %d, want %d", w, len(w), 2*r+1))
		}
		key := seqKey(w)
		if !p.feas[key] {
			p.feas[key] = true
			p.windows = append(p.windows, append([]int(nil), w...))
		}
	}
	return p
}

// FromSFT converts a 1-dimensional nearest-neighbour SFT problem into the
// window representation with r = 1.
func FromSFT(sp *lcl.Problem) *Problem {
	if sp.Dims() != 1 {
		panic("cycle: FromSFT needs a 1-dimensional problem")
	}
	k := sp.K()
	labels := make([]string, k)
	for i := range labels {
		labels[i] = sp.Label(i)
	}
	var windows [][]int
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			for c := 0; c < k; c++ {
				if sp.NodeOK(a) && sp.NodeOK(b) && sp.NodeOK(c) && sp.Allowed(0, a, b) && sp.Allowed(0, b, c) {
					windows = append(windows, []int{a, b, c})
				}
			}
		}
	}
	return NewProblem(sp.Name(), labels, 1, windows)
}

// Name returns the problem name.
func (p *Problem) Name() string { return p.name }

// K returns the alphabet size.
func (p *Problem) K() int { return len(p.labels) }

// R returns the checkability radius.
func (p *Problem) R() int { return p.r }

// Label returns the display name of label a.
func (p *Problem) Label(a int) string { return p.labels[a] }

// Windows returns the feasible windows (shared; do not modify).
func (p *Problem) Windows() [][]int { return p.windows }

// Feasible reports whether the given (2r+1)-window is feasible.
func (p *Problem) Feasible(w []int) bool { return p.feas[seqKey(w)] }

func seqKey(w []int) string {
	parts := make([]string, len(w))
	for i, x := range w {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// Verify checks a labelling of the directed cycle c: every window of
// 2r+1 consecutive labels must be feasible.
func (p *Problem) Verify(c *grid.Torus, labelling []int) error {
	if c.Dim() != 1 {
		return fmt.Errorf("cycle: need a directed cycle, got %d dimensions", c.Dim())
	}
	n := c.N()
	if len(labelling) != n {
		return fmt.Errorf("cycle: labelling has %d entries for %d nodes", len(labelling), n)
	}
	w := make([]int, 2*p.r+1)
	for v := 0; v < n; v++ {
		for j := range w {
			w[j] = labelling[(v+j)%n]
		}
		if !p.feas[seqKey(w)] {
			return fmt.Errorf("cycle: window %v starting at node %d is infeasible for %s", w, v, p.name)
		}
	}
	return nil
}

// NGraph is the output neighbourhood graph H of §4: one node per
// 2r-window occurring in a feasible window, one edge per feasible
// (2r+1)-window.
type NGraph struct {
	G     *dgraph.Graph
	Seqs  [][]int
	index map[string]int
}

// NeighbourhoodGraph builds H for the problem.
func (p *Problem) NeighbourhoodGraph() *NGraph {
	ng := &NGraph{index: make(map[string]int)}
	id := func(seq []int) int {
		key := seqKey(seq)
		if i, ok := ng.index[key]; ok {
			return i
		}
		i := len(ng.Seqs)
		ng.index[key] = i
		ng.Seqs = append(ng.Seqs, append([]int(nil), seq...))
		return i
	}
	type edge struct{ u, v int }
	var edges []edge
	for _, w := range p.windows {
		u := id(w[:len(w)-1])
		v := id(w[1:])
		edges = append(edges, edge{u, v})
	}
	ng.G = dgraph.New(len(ng.Seqs))
	seen := make(map[edge]bool)
	for _, e := range edges {
		if !seen[e] {
			seen[e] = true
			ng.G.AddEdge(e.u, e.v)
		}
	}
	return ng
}

// NodeName returns the label-sequence name of H-node i.
func (ng *NGraph) NodeName(p *Problem, i int) string {
	parts := make([]string, len(ng.Seqs[i]))
	for j, a := range ng.Seqs[i] {
		parts[j] = p.Label(a)
	}
	return strings.Join(parts, "")
}

// Classification is the §4 complexity analysis of a cycle problem.
type Classification struct {
	Class core.Class
	// SelfLoop is an H-node with a self-loop (constant solution), or -1.
	SelfLoop int
	// Flexible is a flexible H-node of minimum flexibility, or -1.
	Flexible int
	// Flexibility is the minimum k such that closed walks of every length
	// >= k exist through the Flexible node (0 if none).
	Flexibility int
	// Solvable reports whether any solution exists for at least one n
	// (H contains a cycle).
	Solvable bool
}

// Classify determines the complexity class of the problem on directed
// cycles (Claim 1): O(1) with a self-loop in H, Θ(log* n) with a flexible
// node, and Θ(n) otherwise. Everything is decidable in the 1-dimensional
// case, in contrast with 2-dimensional grids (§6).
func (p *Problem) Classify() Classification {
	ng := p.NeighbourhoodGraph()
	res := Classification{SelfLoop: -1, Flexible: -1}

	if loops := ng.G.SelfLoops(); len(loops) > 0 {
		res.Class = core.ClassO1
		res.SelfLoop = loops[0]
		res.Solvable = true
		return res
	}

	nv := ng.G.N()
	best, bestFlex := -1, 0
	for _, comp := range ng.G.SCCs() {
		if ng.G.Period(comp) != 1 {
			if ng.G.Period(comp) > 0 {
				res.Solvable = true // some cycle exists, periodic
			}
			continue
		}
		res.Solvable = true
		sort.Ints(comp)
		for _, u := range comp {
			flex, ok := flexibility(ng.G, u, nv)
			if ok && (best < 0 || flex < bestFlex) {
				best, bestFlex = u, flex
			}
		}
	}
	if best >= 0 {
		res.Class = core.ClassLogStar
		res.Flexible = best
		res.Flexibility = bestFlex
		return res
	}
	res.Class = core.ClassGlobal
	return res
}

// flexibility returns the smallest k such that closed walks of every
// length >= k through u exist, by explicit reachability up to the
// Wielandt-style bound nv²+2nv+4.
func flexibility(g *dgraph.Graph, u, nv int) (int, bool) {
	bound := nv*nv + 2*nv + 4
	reach := g.StepReachability(u, bound)
	k := bound + 1
	for l := bound; l >= 1; l-- {
		if !reach[l][u] {
			break
		}
		k = l
	}
	if k > bound-nv {
		return 0, false // not enough certified headroom: not flexible
	}
	return k, true
}

// Algorithm is a synthesized asymptotically optimal algorithm for a cycle
// problem, in the appropriate normal form for its class.
type Algorithm struct {
	P     *Problem
	Class Classification

	// O(1) case: the constant label.
	constLabel int

	// Θ(log* n) case: anchors carry the flexible window; gaps of length
	// i are filled with a precomputed closed walk of length i through it.
	ng       *NGraph
	anchorHN int
	k        int
	gapWalks map[int][]int // gap length -> H-node walk (length gap+1)
}

// Synthesize builds an optimal algorithm for the problem: O(1), Θ(log* n)
// normal form, or the Θ(n) brute-force solver, depending on its class.
func (p *Problem) Synthesize() (*Algorithm, error) {
	cls := p.Classify()
	alg := &Algorithm{P: p, Class: cls}
	switch cls.Class {
	case core.ClassO1:
		ng := p.NeighbourhoodGraph()
		alg.constLabel = ng.Seqs[cls.SelfLoop][0]
	case core.ClassLogStar:
		alg.ng = p.NeighbourhoodGraph()
		alg.anchorHN = cls.Flexible
		alg.k = cls.Flexibility
		alg.gapWalks = make(map[int][]int)
		for i := alg.k + 1; i <= 2*alg.k+1; i++ {
			w := alg.ng.G.Walk(cls.Flexible, cls.Flexible, i)
			if w == nil {
				return nil, fmt.Errorf("cycle: missing closed walk of length %d through flexible node", i)
			}
			alg.gapWalks[i] = w
		}
	case core.ClassGlobal:
		if !cls.Solvable {
			return nil, fmt.Errorf("cycle: %s has no solutions on any cycle", p.name)
		}
	}
	return alg, nil
}

// K returns the anchor spacing parameter of the Θ(log* n) normal form
// (the flexibility), or 0 for other classes.
func (a *Algorithm) K() int { return a.k }

// Run executes the algorithm on the directed cycle c and returns the
// labelling and exact round count. For global problems it runs the
// gather-and-solve brute force, failing when no solution exists for this
// n.
func (a *Algorithm) Run(c *grid.Torus, ids []int) ([]int, *local.Rounds, error) {
	if c.Dim() != 1 {
		return nil, nil, fmt.Errorf("cycle: need a directed cycle")
	}
	n := c.N()
	rounds := &local.Rounds{}
	switch a.Class.Class {
	case core.ClassO1:
		out := make([]int, n)
		for i := range out {
			out[i] = a.constLabel
		}
		return out, rounds, nil

	case core.ClassLogStar:
		if n < 2*a.k+2 {
			return nil, nil, fmt.Errorf("cycle: need n >= %d for anchor spacing k=%d", 2*a.k+2, a.k)
		}
		anchors := coloring.Anchors(c, a.k, grid.L1, ids, rounds)
		var pos []int
		for v := 0; v < n; v++ {
			if anchors[v] {
				pos = append(pos, v)
			}
		}
		out := make([]int, n)
		for i, p := range pos {
			next := pos[(i+1)%len(pos)]
			gap := ((next-p)%n + n) % n
			if gap == 0 {
				gap = n
			}
			walk, ok := a.gapWalks[gap]
			if !ok {
				return nil, nil, fmt.Errorf("cycle: anchor gap %d outside [k+1, 2k+1]=[%d,%d]", gap, a.k+1, 2*a.k+1)
			}
			for t := 0; t < gap; t++ {
				out[(p+t)%n] = a.ng.Seqs[walk[t]][0]
			}
		}
		rounds.Add(2*a.k + 1 + a.P.r) // local assembly within a bounded radius
		return out, rounds, nil

	default:
		// Brute force: gather the full cycle, then deterministically find
		// a closed walk of length n in H.
		rounds.Add(core.Diameter(c))
		ng := a.ng
		if ng == nil {
			ng = a.P.NeighbourhoodGraph()
		}
		for u := 0; u < ng.G.N(); u++ {
			if w := ng.G.Walk(u, u, n); w != nil {
				out := make([]int, n)
				for t := 0; t < n; t++ {
					out[t] = ng.Seqs[w[t]][0]
				}
				return out, rounds, nil
			}
		}
		return nil, nil, fmt.Errorf("cycle: %s has no solution on a cycle of length %d", a.P.name, n)
	}
}

// --- Catalogue: the Fig. 2 problems --------------------------------------

// TwoColoring returns proper 2-colouring of the cycle (Θ(n), Fig. 2).
func TwoColoring() *Problem { return FromSFT(lcl.VertexColoring(2, 1)) }

// ThreeColoring returns proper 3-colouring of the cycle (Θ(log* n)).
func ThreeColoring() *Problem { return FromSFT(lcl.VertexColoring(3, 1)) }

// MIS returns the maximal independent set problem on cycles in the
// paper's direct 0/1 formulation: a 1 has no neighbouring 1, a 0 has at
// least one neighbouring 1 (Θ(log* n); Fig. 2 shows state 00 flexible
// with walks of lengths 3 and 5).
func MIS() *Problem {
	var windows [][]int
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				if b == 1 && (a == 1 || c == 1) {
					continue
				}
				if b == 0 && a == 0 && c == 0 {
					continue
				}
				windows = append(windows, []int{a, b, c})
			}
		}
	}
	return NewProblem("maximal independent set", []string{"0", "1"}, 1, windows)
}

// IndependentSet returns the plain independent set problem (O(1): the
// all-0 labelling gives a self-loop in H).
func IndependentSet() *Problem { return FromSFT(lcl.IndependentSet(1)) }
