package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like the fleet's real keys: hex fingerprint + shape.
		out[i] = fmt.Sprintf("%064x-k3-7x5", i*2654435761)
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	members := []string{"shard-a:8080", "shard-b:8080", "shard-c:8080"}
	r1, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("two rings over the same members disagree on %q: %q vs %q", k, r1.Owner(k), r2.Owner(k))
		}
		s1, s2 := r1.Sequence(k), r2.Sequence(k)
		if fmt.Sprint(s1) != fmt.Sprint(s2) {
			t.Fatalf("sequence for %q differs: %v vs %v", k, s1, s2)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	ks := keys(4000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	want := len(ks) / len(members)
	for _, m := range members {
		if counts[m] < want/2 || counts[m] > want*2 {
			t.Errorf("member %q owns %d of %d keys; want roughly %d", m, counts[m], len(ks), want)
		}
	}
}

// TestRingRebalance is the consistent-hashing contract: adding one
// member to an N-member ring moves only the keys the new member gains
// (~1/(N+1) of them); every other key keeps its owner. A naive mod-N
// assignment would move ~N/(N+1) of the keys instead.
func TestRingRebalance(t *testing.T) {
	before, err := New([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ks := keys(4000)
	moved, movedToNew := 0, 0
	for _, k := range ks {
		if before.Owner(k) != after.Owner(k) {
			moved++
			if after.Owner(k) == "d" {
				movedToNew++
			}
		}
	}
	if moved != movedToNew {
		t.Errorf("%d keys moved between surviving members; consistent hashing must only move keys to the new member", moved-movedToNew)
	}
	// Expected fraction is 1/4; allow generous slack for hash variance.
	if moved < len(ks)/8 || moved > len(ks)/2 {
		t.Errorf("%d of %d keys moved to the new member; want about %d", moved, len(ks), len(ks)/4)
	}
}

func TestRingSequence(t *testing.T) {
	members := []string{"a", "b", "c"}
	r, err := New(members, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(100) {
		seq := r.Sequence(k)
		if len(seq) != len(members) {
			t.Fatalf("sequence for %q has %d members, want %d: %v", k, len(seq), len(members), seq)
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("sequence for %q starts with %q, owner is %q", k, seq[0], r.Owner(k))
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("sequence for %q repeats %q: %v", k, m, seq)
			}
			seen[m] = true
		}
	}
}

func TestRingOwns(t *testing.T) {
	r, err := New([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	ks := keys(200)
	for _, k := range ks {
		if r.Owns("a", k) != (r.Owner(k) == "a") {
			t.Fatalf("Owns disagrees with Owner for %q", k)
		}
		if r.Owns("a", k) {
			owned++
		}
	}
	if owned == 0 || owned == len(ks) {
		t.Fatalf("member a owns %d of %d keys; the split is degenerate", owned, len(ks))
	}
}
