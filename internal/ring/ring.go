// Package ring implements a deterministic consistent-hash ring: the
// routing layer of the sharded serving fleet. Members (shard names or
// addresses) are placed on a 64-bit hash circle at many virtual-node
// positions; a key is owned by the first member clockwise from the
// key's own hash point. The properties the fleet relies on:
//
//   - Deterministic: the ring is a pure function of (members, vnodes).
//     Every replica and every gateway that is configured with the same
//     member list computes the same ownership, with no coordination
//     traffic — which is what lets N `lclgrid serve` replicas partition
//     synthesis ownership of an unbounded fingerprint space.
//   - Balanced: with the default virtual-node count each member owns
//     ~1/N of the key space (see TestRingBalance).
//   - Stable under membership change: adding or removing one member
//     moves only the ~1/N of keys that member gains or loses; keys
//     owned by the surviving members stay put (see TestRingRebalance).
//
// Sequence returns every member in preference order for a key — the
// owner first, then the members that would take over if it failed —
// which is the retry order a gateway walks for idempotent requests.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the virtual-node count per member used when
// New is given a non-positive vnodes. 128 points per member keeps the
// ownership imbalance of small fleets within a few percent while the
// ring stays tiny (N*128 points, binary-searched).
const DefaultVirtualNodes = 128

// Ring is an immutable consistent-hash ring. Construct with New; a nil
// or empty ring owns nothing. Safe for concurrent use (all methods are
// read-only after construction).
type Ring struct {
	members []string
	vnodes  int
	points  []point // sorted by hash, ties broken by member index
}

// point is one virtual node: a position on the hash circle and the
// member that owns the arc ending there.
type point struct {
	hash   uint64
	member int // index into members
}

// New builds the ring for the given members with vnodes virtual nodes
// per member (non-positive selects DefaultVirtualNodes). Duplicate and
// empty member names are rejected — a duplicated member would silently
// own twice the key space.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members))
	ms := make([]string, len(members))
	for i, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: member %d is empty", i)
		}
		if seen[m] {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
		seen[m] = true
		ms[i] = m
	}
	r := &Ring{
		members: ms,
		vnodes:  vnodes,
		points:  make([]point, 0, len(ms)*vnodes),
	}
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:   hash64(fmt.Sprintf("%s#%d", m, v)),
				member: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit hash collision between virtual nodes is
		// vanishingly rare, but the tie-break keeps the ring a pure
		// function of its inputs rather than of sort stability.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// hash64 is the ring's hash function: FNV-64a followed by a
// splitmix64-style finalizer. Not cryptographic, but fast,
// dependency-free and stable across platforms and processes — the
// determinism the fleet needs. The finalizer matters: bare FNV over the
// short, highly correlated virtual-node labels ("a#0", "a#1", ...)
// clusters badly and skews member ownership by 2-3x; the avalanche mix
// restores per-member balance to a few percent.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Members returns the member list in construction order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Owner returns the member that owns key: the first virtual node
// clockwise from the key's hash point.
func (r *Ring) Owner(key string) string {
	return r.members[r.points[r.search(key)].member]
}

// Owns reports whether member owns key — the predicate a replica uses
// to select its warm-on-boot slice.
func (r *Ring) Owns(member, key string) bool {
	return r.Owner(key) == member
}

// Sequence returns every member in preference order for key: the owner
// first, then each distinct member encountered walking the circle — the
// takeover order if the owner fails, and therefore the retry order for
// idempotent requests.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.members))
	seen := make(map[int]bool, len(r.members))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// search returns the index of the first point at or clockwise-after the
// key's hash.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return i
}
