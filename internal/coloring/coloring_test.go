package coloring

import (
	"testing"

	"lclgrid/internal/grid"
	"lclgrid/internal/local"
	"lclgrid/internal/logstar"
)

func TestThreeColorCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 10, 63, 128, 1000} {
		for _, seed := range []int64{1, 2, 3} {
			c := grid.Cycle(n)
			ids := local.PermutedIDs(n, seed)
			var r local.Rounds
			colors := ThreeColorCycle(c, ids, n, &r)
			for v := 0; v < n; v++ {
				if colors[v] < 0 || colors[v] > 2 {
					t.Fatalf("n=%d: colour %d out of range", n, colors[v])
				}
			}
			if ok, e := IsProperColoring(c, colors); !ok {
				t.Fatalf("n=%d seed=%d: improper colouring at edge %v", n, seed, e)
			}
			if r.Total() != CVIterations(n+1)+3 {
				t.Errorf("n=%d: rounds=%d, want %d", n, r.Total(), CVIterations(n+1)+3)
			}
		}
	}
}

func TestThreeColorCycleAdversarialIDs(t *testing.T) {
	n := 256
	c := grid.Cycle(n)
	var r local.Rounds
	colors := ThreeColorCycle(c, local.ReversedIDs(n), n, &r)
	if ok, e := IsProperColoring(c, colors); !ok {
		t.Fatalf("improper colouring at edge %v", e)
	}
}

func TestCVIterationsGrowsLikeLogStar(t *testing.T) {
	// Round counts must grow very slowly (log*): the whole range up to
	// 2^30 stays within a handful of iterations, and is monotone.
	if CVIterations(1<<30) > 8 {
		t.Errorf("CVIterations(2^30) = %d, too large", CVIterations(1<<30))
	}
	if CVIterations(16) >= CVIterations(1<<30) {
		// weak monotonicity sanity: larger space needs at least as many.
		t.Errorf("iteration count not increasing: %d vs %d", CVIterations(16), CVIterations(1<<30))
	}
}

// cvProc runs Cole–Vishkin on the message-passing simulator for
// cross-validation: each round it sends its colour to its successor and
// steps on the colour received from its predecessor.
type cvProc struct {
	color int
	iters int
	done  int
}

func (p *cvProc) Step(round int, inbox []any) ([]any, bool) {
	if round > 1 {
		p.color = cvStep(p.color, inbox[1].(int))
		p.done++
	}
	if p.done == p.iters {
		return nil, true
	}
	// Send colour to successor (port 0); it arrives on their port 1.
	return []any{p.color, nil}, false
}

func TestCVOnMessagePassingSimulator(t *testing.T) {
	n := 100
	c := grid.Cycle(n)
	ids := local.PermutedIDs(n, 5)
	iters := CVIterations(n + 1)

	procs := make([]local.Proc, n)
	for v := 0; v < n; v++ {
		procs[v] = &cvProc{color: ids[v], iters: iters}
	}
	if _, err := local.Run(c, procs, 1000); err != nil {
		t.Fatal(err)
	}
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		colors[v] = procs[v].(*cvProc).color
		if colors[v] > 5 {
			t.Fatalf("node %d colour %d > 5 after CV iterations", v, colors[v])
		}
	}
	if ok, e := IsProperColoring(c, colors); !ok {
		t.Fatalf("simulator CV left improper colouring at %v", e)
	}

	// Cross-validate against the direct implementation (same schedule).
	direct := make([]int, n)
	copy(direct, ids)
	next := make([]int, n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			next[v] = cvStep(direct[v], direct[c.Neighbor(v, 1)])
		}
		copy(direct, next)
	}
	for v := 0; v < n; v++ {
		if direct[v] != colors[v] {
			t.Fatalf("node %d: simulator=%d direct=%d", v, colors[v], direct[v])
		}
	}
}

func TestLinialColorTorus(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		g := grid.Square(n)
		ids := local.PermutedIDs(g.N(), int64(n))
		var r local.Rounds
		colors, m := LinialColor(g, ids, g.N(), &r)
		if ok, e := IsProperColoring(g, colors); !ok {
			t.Fatalf("n=%d: improper at %v", n, e)
		}
		// Δ=4 ⇒ final space at most NextPrime(2·4)² = 121.
		if m > 121 && m > g.N()+1 {
			t.Errorf("n=%d: final colour space %d too large", n, m)
		}
		for _, c := range colors {
			if c < 0 || c >= m {
				t.Fatalf("colour %d outside space %d", c, m)
			}
		}
		// Reduction rounds happen only when the ID space exceeds the
		// O(Δ²) fixpoint (121 for Δ=4).
		if g.N()+1 > 121 && r.Total() == 0 {
			t.Error("expected at least one reduction round")
		}
	}
}

func TestLinialColorPowerGraph(t *testing.T) {
	g := grid.Square(12)
	p := grid.NewPower(g, 3, grid.L1) // Δ = 24
	ids := local.PermutedIDs(p.N(), 7)
	colors, m := LinialColor(p, ids, p.N(), nil)
	if ok, e := IsProperColoring(p, colors); !ok {
		t.Fatalf("improper at %v", e)
	}
	if want := logstar.NextPrime(48) * logstar.NextPrime(48); m > want {
		t.Errorf("final space %d > %d", m, want)
	}
}

func TestGreedyReduce(t *testing.T) {
	g := grid.Square(10)
	ids := local.PermutedIDs(g.N(), 11)
	colors, m := LinialColor(g, ids, g.N(), nil)
	var r local.Rounds
	reduced := GreedyReduce(g, colors, m, 5, &r)
	if ok, e := IsProperColoring(g, reduced); !ok {
		t.Fatalf("improper after reduction at %v", e)
	}
	for _, c := range reduced {
		if c < 0 || c >= 5 {
			t.Fatalf("colour %d outside target palette", c)
		}
	}
	if r.Total() != m-5 {
		t.Errorf("rounds = %d, want %d", r.Total(), m-5)
	}
}

func TestGreedyReduceRejectsImpossibleTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for target < Δ+1")
		}
	}()
	g := grid.Square(5)
	GreedyReduce(g, make([]int, g.N()), 10, 4, nil)
}

func TestMISFromColoring(t *testing.T) {
	g := grid.Square(9)
	ids := local.PermutedIDs(g.N(), 13)
	colors, m := LinialColor(g, ids, g.N(), nil)
	var r local.Rounds
	set := MISFromColoring(g, colors, m, &r)
	if err := IsMIS(g, set); err != nil {
		t.Fatal(err)
	}
	if r.Total() != m {
		t.Errorf("rounds = %d, want %d", r.Total(), m)
	}
}

func TestAnchors(t *testing.T) {
	for _, tc := range []struct {
		n, k int
		norm grid.Norm
	}{
		{12, 1, grid.L1}, {12, 2, grid.L1}, {16, 3, grid.L1}, {12, 2, grid.LInf},
	} {
		g := grid.Square(tc.n)
		ids := local.PermutedIDs(g.N(), int64(tc.n*10+tc.k))
		var r local.Rounds
		anchors := Anchors(g, tc.k, tc.norm, ids, &r)
		p := grid.NewPower(g, tc.k, tc.norm)
		if err := IsMIS(p, anchors); err != nil {
			t.Fatalf("n=%d k=%d %v: %v", tc.n, tc.k, tc.norm, err)
		}
		// Explicit distance form of the MIS property.
		for u := 0; u < g.N(); u++ {
			if !anchors[u] {
				continue
			}
			for v := u + 1; v < g.N(); v++ {
				if anchors[v] && g.Dist(u, v, tc.norm) <= tc.k {
					t.Fatalf("anchors %d,%d at distance <= k", u, v)
				}
			}
		}
		if r.Total() == 0 {
			t.Error("anchors should cost rounds")
		}
	}
}

func TestAnchorsRoundsScaledByOverhead(t *testing.T) {
	g := grid.Square(12)
	ids := local.SequentialIDs(g.N())
	var r1, r3 local.Rounds
	Anchors(g, 1, grid.L1, ids, &r1)
	Anchors(g, 3, grid.L1, ids, &r3)
	if r3.Total() <= r1.Total() {
		t.Errorf("k=3 rounds (%d) should exceed k=1 rounds (%d)", r3.Total(), r1.Total())
	}
}

func TestMISRoundsUpperBound(t *testing.T) {
	g := grid.Square(16)
	b := MISRoundsUpperBound(g, 1, grid.L1)
	if b <= 0 {
		t.Error("bound must be positive")
	}
	var r local.Rounds
	Anchors(g, 1, grid.L1, local.PermutedIDs(g.N(), 3), &r)
	if r.Total() > b {
		t.Errorf("actual rounds %d exceed reported bound %d", r.Total(), b)
	}
}

func TestIsMISDetectsViolations(t *testing.T) {
	g := grid.Square(4)
	all := make([]bool, g.N())
	if err := IsMIS(g, all); err == nil {
		t.Error("empty set should not be maximal")
	}
	for i := range all {
		all[i] = true
	}
	if err := IsMIS(g, all); err == nil {
		t.Error("full set should not be independent")
	}
}
