// Package coloring implements the classic distributed symmetry-breaking
// toolbox the paper builds on: Cole–Vishkin 3-colouring of directed cycles
// [13], Linial's colour reduction for bounded-degree graphs [30], greedy
// colour reduction, and maximal independent sets obtained by sweeping
// colour classes. Together these yield the problem-independent component
// S_k of the paper's normal form (§5, §7): a maximal independent set of
// the k-th power of the grid ("anchors") in O(log* n) rounds.
//
// All functions account their exact round complexity through a
// *local.Rounds accumulator, including the multiplicative overhead of
// simulating power graphs on the underlying torus.
package coloring

import (
	"fmt"
	"math/bits"

	"lclgrid/internal/grid"
	"lclgrid/internal/local"
	"lclgrid/internal/logstar"
)

// --- Cole–Vishkin on directed cycles ------------------------------------

// cvBound returns the colour-space bound after one Cole–Vishkin step
// applied to colours in [0, m).
func cvBound(m int) int {
	if m <= 6 {
		return m
	}
	L := logstar.Log2Ceil(m)
	return 2 * L
}

// CVIterations returns the number of Cole–Vishkin iterations needed to
// reduce a colour space of size m to at most 6 colours. All nodes compute
// this locally from n, so they stop simultaneously.
func CVIterations(m int) int {
	it := 0
	for m > 6 {
		m = cvBound(m)
		it++
	}
	return it
}

// ThreeColorCycle computes a proper 3-colouring of the directed cycle c
// (a 1-dimensional torus; port 0 = successor) from unique identifiers in
// [1, idSpace], in O(log* n) rounds: CVIterations(idSpace) reduction
// rounds to reach 6 colours, then 3 rounds to remove colours 5, 4, 3.
func ThreeColorCycle(c *grid.Torus, ids []int, idSpace int, r *local.Rounds) []int {
	n := c.N()
	if n < 3 {
		panic("coloring: cycle too short")
	}
	colors := make([]int, n)
	copy(colors, ids)

	iters := CVIterations(idSpace + 1)
	next := make([]int, n)
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			pred := c.Neighbor(v, 1)
			next[v] = cvStep(colors[v], colors[pred])
		}
		copy(colors, next)
	}
	if r != nil {
		r.Add(iters)
	}

	// Shift down from 6 to 3 colours: one colour class per round.
	for drop := 5; drop >= 3; drop-- {
		for v := 0; v < n; v++ {
			if colors[v] != drop {
				next[v] = colors[v]
				continue
			}
			succ, pred := c.Neighbor(v, 0), c.Neighbor(v, 1)
			next[v] = freeColor3(colors[succ], colors[pred])
		}
		copy(colors, next)
	}
	if r != nil {
		r.Add(3)
	}
	return colors
}

// cvStep maps the node colour and its predecessor's colour to the new
// colour 2i+b, where i is the lowest bit position at which they differ and
// b the node's bit there.
func cvStep(own, pred int) int {
	diff := own ^ pred
	if diff == 0 {
		panic("coloring: Cole-Vishkin step on equal colours (not a proper colouring)")
	}
	i := bits.TrailingZeros(uint(diff))
	b := (own >> i) & 1
	return 2*i + b
}

// freeColor3 returns the smallest colour in {0,1,2} different from a and b.
func freeColor3(a, b int) int {
	for c := 0; c < 3; c++ {
		if c != a && c != b {
			return c
		}
	}
	panic("unreachable")
}

// --- Linial colour reduction on bounded-degree graphs --------------------

// linialParams returns the polynomial degree d and prime q that minimise
// the post-reduction colour space q² for one Linial step on a colour space
// of size m with maximum degree maxDeg. The constraints are q > maxDeg·d
// (so a good evaluation point exists) and q^(d+1) >= m (so every colour
// fits in d+1 base-q digits). The iterated fixpoint is at most
// NextPrime(2·maxDeg)², i.e. O(Δ²) colours.
func linialParams(m, maxDeg int) (d, q int) {
	if maxDeg < 1 {
		maxDeg = 1
	}
	bestD, bestQ := 0, 0
	for dd := 1; ; dd++ {
		if bestQ > 0 && maxDeg*dd >= bestQ {
			break // larger d cannot beat the current best q
		}
		qq := logstar.NextPrime(maxDeg * dd)
		for !powAtLeast(qq, dd+1, m) {
			qq = logstar.NextPrime(qq)
		}
		if bestQ == 0 || qq < bestQ {
			bestD, bestQ = dd, qq
		}
	}
	return bestD, bestQ
}

// powAtLeast reports whether q^e >= m, without overflow.
func powAtLeast(q, e, m int) bool {
	p := 1
	for i := 0; i < e; i++ {
		p *= q
		if p >= m {
			return true
		}
	}
	return p >= m
}

// LinialColor computes a proper colouring of g with O(Δ²) colours (at
// most NextPrime(2Δ)²), starting from unique identifiers in [1, idSpace],
// using iterated Linial colour reduction. One communication round per
// iteration; the iteration count is O(log* idSpace) and is derived from
// idSpace alone so that all nodes stop simultaneously.
//
// It returns the colouring and the size of the final colour space.
func LinialColor(g local.Graph, ids []int, idSpace int, r *local.Rounds) ([]int, int) {
	n := g.N()
	maxDeg := local.MaxDegree(g)
	colors := make([]int, n)
	copy(colors, ids)
	m := idSpace + 1

	rounds := 0
	for {
		d, q := linialParams(m, maxDeg)
		if q*q >= m {
			// No further progress possible.
			break
		}
		colors = linialStep(g, colors, d, q)
		m = q * q
		rounds++
	}
	if r != nil {
		r.Add(rounds)
	}
	return colors, m
}

// linialStep performs one colour-reduction round: every node interprets
// its colour as a polynomial of degree <= d over F_q and picks the
// smallest evaluation point x on which it differs from all neighbours,
// producing the new colour x*q + p(x).
func linialStep(g local.Graph, colors []int, d, q int) []int {
	n := g.N()
	next := make([]int, n)
	digitsBuf := make([]int, d+1)
	nbrDigits := make([]int, d+1)
	for v := 0; v < n; v++ {
		toDigits(colors[v], q, digitsBuf)
		deg := g.Degree(v)
		chosen := -1
	candidates:
		for x := 0; x < q; x++ {
			pv := evalPoly(digitsBuf, x, q)
			for i := 0; i < deg; i++ {
				u := g.Neighbor(v, i)
				toDigits(colors[u], q, nbrDigits)
				if evalPoly(nbrDigits, x, q) == pv {
					continue candidates
				}
			}
			chosen = x*q + pv
			break
		}
		if chosen < 0 {
			panic(fmt.Sprintf("coloring: no good evaluation point at node %d (q=%d, d=%d)", v, q, d))
		}
		next[v] = chosen
	}
	return next
}

// toDigits writes the base-q digits of c into out (least significant
// first).
func toDigits(c, q int, out []int) {
	for i := range out {
		out[i] = c % q
		c /= q
	}
	if c != 0 {
		panic("coloring: colour does not fit in digit budget")
	}
}

// evalPoly evaluates the polynomial with the given coefficients (degree
// ordered low to high) at x over F_q.
func evalPoly(coeffs []int, x, q int) int {
	acc := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % q
	}
	return acc
}

// LinialSchedule returns the (d, q) parameter pairs the LinialColor
// fixpoint iteration uses for the given identifier space and degree
// bound, plus the final colour-space size. It mirrors LinialColor's loop
// exactly (same linialParams, same stopping rule), which is what lets a
// windowed evaluator replay individual colour choices for single nodes
// without materialising the full-graph colouring.
func LinialSchedule(idSpace, maxDeg int) (params [][2]int, finalColors int) {
	m := idSpace + 1
	var out [][2]int
	for {
		d, q := linialParams(m, maxDeg)
		if q*q >= m {
			return out, m
		}
		out = append(out, [2]int{d, q})
		m = q * q
	}
}

// LinialChoose performs a single node's colour choice of one Linial
// reduction step, given its own colour and its neighbours' colours in
// the pre-step colour space: the smallest evaluation point x on which
// the node's polynomial differs from every neighbour's, encoded as
// x*q + p(x). It is the per-node body of linialStep, exposed so
// windowed evaluation computes the exact colour linialStep would.
// Returns -1 when no evaluation point separates the node, which cannot
// happen for a proper colouring with q > maxDeg·d.
func LinialChoose(own int, nbrs []int, d, q int) int {
	digitsBuf := make([]int, d+1)
	nbrDigits := make([]int, d+1)
	toDigits(own, q, digitsBuf)
candidates:
	for x := 0; x < q; x++ {
		pv := evalPoly(digitsBuf, x, q)
		for _, c := range nbrs {
			toDigits(c, q, nbrDigits)
			if evalPoly(nbrDigits, x, q) == pv {
				continue candidates
			}
		}
		return x*q + pv
	}
	return -1
}

// --- Greedy reduction and MIS sweeps -------------------------------------

// GreedyReduce reduces a proper colouring with colour space [0, from) to
// the colour space [0, target), where target must be at least Δ+1. One
// colour class acts per round (classes are independent sets, so
// simultaneous recolouring is safe); from-target rounds total.
func GreedyReduce(g local.Graph, colors []int, from, target int, r *local.Rounds) []int {
	maxDeg := local.MaxDegree(g)
	if target < maxDeg+1 {
		panic(fmt.Sprintf("coloring: target %d < Δ+1 = %d", target, maxDeg+1))
	}
	out := make([]int, len(colors))
	copy(out, colors)
	buckets := bucketize(out, from)
	for c := from - 1; c >= target; c-- {
		for _, v := range buckets[c] {
			out[v] = smallestFree(g, out, v, target)
		}
	}
	if r != nil {
		r.Add(from - target)
	}
	return out
}

// smallestFree returns the smallest colour in [0, limit) not used by any
// neighbour of v.
func smallestFree(g local.Graph, colors []int, v, limit int) int {
	deg := g.Degree(v)
	taken := make(map[int]bool, deg)
	for i := 0; i < deg; i++ {
		taken[colors[g.Neighbor(v, i)]] = true
	}
	for c := 0; c < limit; c++ {
		if !taken[c] {
			return c
		}
	}
	panic("coloring: no free colour (degree bound violated)")
}

// MISFromColoring computes a maximal independent set of g by sweeping the
// colour classes of a proper colouring in increasing order: a node joins
// when its round arrives and no neighbour has joined. numColors rounds.
func MISFromColoring(g local.Graph, colors []int, numColors int, r *local.Rounds) []bool {
	inSet := make([]bool, g.N())
	buckets := bucketize(colors, numColors)
	for c := 0; c < numColors; c++ {
		for _, v := range buckets[c] {
			join := true
			for i := 0; i < g.Degree(v); i++ {
				if inSet[g.Neighbor(v, i)] {
					join = false
					break
				}
			}
			if join {
				inSet[v] = true
			}
		}
	}
	if r != nil {
		r.Add(numColors)
	}
	return inSet
}

func bucketize(colors []int, numColors int) [][]int {
	buckets := make([][]int, numColors)
	for v, c := range colors {
		if c < 0 || c >= numColors {
			panic(fmt.Sprintf("coloring: colour %d out of range [0,%d)", c, numColors))
		}
		buckets[c] = append(buckets[c], v)
	}
	return buckets
}

// --- Anchors: the problem-independent component S_k ----------------------

// Anchors computes a maximal independent set of the k-th power of the
// torus t under the given norm — the anchor set used by the paper's
// normal-form algorithms (§5, §7). The algorithm colours the power graph
// with Linial reduction and sweeps colour classes; every power-graph round
// is accounted with the simulation overhead on t. Identifiers must lie in
// [1, t.N()]; use AnchorsIDSpace for larger identifier spaces.
func Anchors(t *grid.Torus, k int, norm grid.Norm, ids []int, r *local.Rounds) []bool {
	return AnchorsIDSpace(t, k, norm, ids, t.N(), r)
}

// AnchorsIDSpace is Anchors for identifiers drawn from [1, idSpace]; it
// is used when a subgraph (e.g. a single grid row) runs the algorithm
// with the global identifier assignment.
func AnchorsIDSpace(t *grid.Torus, k int, norm grid.Norm, ids []int, idSpace int, r *local.Rounds) []bool {
	p := grid.NewPower(t, k, norm)
	var inner local.Rounds
	colors, m := LinialColor(p, ids, idSpace, &inner)
	set := MISFromColoring(p, colors, m, &inner)
	if r != nil {
		r.AddSimulated(inner.Total(), p.SimulationOverhead())
	}
	return set
}

// MISRoundsUpperBound returns the deterministic round bound of Anchors for
// a given torus size and power, for reporting purposes: the Linial
// iteration count plus the sweep length, times the simulation overhead.
func MISRoundsUpperBound(t *grid.Torus, k int, norm grid.Norm) int {
	p := grid.NewPower(t, k, norm)
	maxDeg := local.MaxDegree(p)
	m := t.N() + 1
	iters := 0
	for {
		_, q := linialParams(m, maxDeg)
		if q*q >= m {
			break
		}
		m = q * q
		iters++
	}
	return (iters + m) * p.SimulationOverhead()
}

// --- Verification helpers -------------------------------------------------

// IsProperColoring reports whether colors is a proper vertex colouring of
// g, returning an offending edge if not.
func IsProperColoring(g local.Graph, colors []int) (bool, [2]int) {
	for v := 0; v < g.N(); v++ {
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if colors[u] == colors[v] {
				return false, [2]int{v, u}
			}
		}
	}
	return true, [2]int{}
}

// IsMIS reports whether set is a maximal independent set of g: no two
// adjacent members, and every non-member has a member neighbour.
func IsMIS(g local.Graph, set []bool) error {
	for v := 0; v < g.N(); v++ {
		dominated := set[v]
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if set[u] {
				if set[v] {
					return fmt.Errorf("adjacent members %d and %d", v, u)
				}
				dominated = true
			}
		}
		if !dominated {
			return fmt.Errorf("node %d neither in set nor dominated", v)
		}
	}
	return nil
}
