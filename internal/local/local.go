// Package local implements the LOCAL model of distributed computing
// (§3 of the paper): a synchronous network of processors on the nodes of a
// graph, with unique identifiers and unbounded messages, where the
// complexity measure is the number of communication rounds. A time-t
// algorithm is equivalently a function from radius-t neighbourhood views
// to local outputs.
//
// The package provides
//
//   - the Graph adjacency interface shared by all distributed algorithms,
//   - a faithful synchronous message-passing simulator (Run),
//   - a state-exchange helper (SyncRounds) for algorithms expressed in the
//     "read neighbours' states each round" style, which is equivalent in
//     the LOCAL model (messages have unbounded size),
//   - identifier assignments, and
//   - a Rounds accumulator for exact round accounting, including the
//     multiplicative overhead of simulating power graphs.
package local

import (
	"errors"
	"fmt"
	"math/rand"
)

// Graph is the adjacency interface of the network topology. Implementations
// must be simple in the sense that the neighbour lists of a node contain no
// duplicates.
type Graph interface {
	// N returns the number of nodes; nodes are 0..N()-1.
	N() int
	// Degree returns the number of neighbours of v.
	Degree(v int) int
	// Neighbor returns the i-th neighbour of v, 0 <= i < Degree(v).
	Neighbor(v, i int) int
}

// MaxDegree returns the maximum degree of g.
func MaxDegree(g Graph) int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// SequentialIDs returns the identifier assignment id[v] = v+1.
func SequentialIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// PermutedIDs returns a deterministic pseudorandom permutation of
// {1, ..., n} as the identifier assignment; the same seed yields the same
// assignment. The LOCAL model guarantees only uniqueness and a poly(n)
// identifier space, so algorithms must work for every seed.
func PermutedIDs(n int, seed int64) []int {
	ids := SequentialIDs(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	return ids
}

// ReversedIDs returns id[v] = n-v, an adversarial assignment that defeats
// naive "smallest ID wins" heuristics along one sweep direction.
func ReversedIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = n - i
	}
	return ids
}

// Rounds accumulates the round complexity of a composite algorithm.
type Rounds struct {
	total int
}

// Add records n additional communication rounds.
func (r *Rounds) Add(n int) { r.total += n }

// AddSimulated records n rounds of an algorithm executed on a power graph
// whose simulation on the base graph costs overhead base rounds per
// simulated round (§8: k for G^(k), k·d for G^[k]).
func (r *Rounds) AddSimulated(n, overhead int) { r.total += n * overhead }

// Total returns the accumulated number of rounds.
func (r *Rounds) Total() int { return r.total }

// SyncRounds executes the given number of synchronous rounds of a
// state-exchange algorithm: in every round each node computes its next
// state from its own state and its neighbours' current states. The update
// function receives the node, the round (starting at 0), the node's state
// and a neighbour accessor; it must not read any other state. Updates are
// applied simultaneously (double buffering), as in the LOCAL model.
func SyncRounds[S any](g Graph, state []S, rounds int, step func(v, round int, self S, nbr func(i int) S) S) {
	n := g.N()
	next := make([]S, n)
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			nbr := func(i int) S { return state[g.Neighbor(v, i)] }
			next[v] = step(v, r, state[v], nbr)
		}
		copy(state, next)
	}
}

// Proc is a process in the message-passing simulator. All processes start
// in round 1 and run until they halt.
type Proc interface {
	// Step is called once per round. inbox holds the messages delivered
	// this round, indexed by the port they arrived on (nil entries for
	// none; in round 1 the inbox is all nil). The returned outbox is
	// indexed by port (nil entries send nothing; a short or nil outbox
	// sends nothing on the remaining ports). Returning halt stops the
	// process; a halted process neither sends nor receives.
	Step(round int, inbox []any) (outbox []any, halt bool)
}

// ErrMaxRounds is returned by Run when processes are still running after
// the allowed number of rounds.
var ErrMaxRounds = errors.New("local: maximum number of rounds exceeded")

// Run executes the synchronous message-passing simulation of the given
// processes (one per node of g) until all of them halt, and returns the
// number of rounds executed. It fails with ErrMaxRounds if some process
// is still running after maxRounds rounds.
func Run(g Graph, procs []Proc, maxRounds int) (rounds int, err error) {
	n := g.N()
	if len(procs) != n {
		return 0, fmt.Errorf("local: %d processes for %d nodes", len(procs), n)
	}
	reverse, err := reversePorts(g)
	if err != nil {
		return 0, err
	}
	running := n
	halted := make([]bool, n)
	inboxes := make([][]any, n)
	nextInboxes := make([][]any, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]any, g.Degree(v))
		nextInboxes[v] = make([]any, g.Degree(v))
	}
	for round := 1; running > 0; round++ {
		if round > maxRounds {
			return round - 1, ErrMaxRounds
		}
		for v := 0; v < n; v++ {
			clearMsgs(nextInboxes[v])
		}
		for v := 0; v < n; v++ {
			if halted[v] {
				continue
			}
			outbox, halt := procs[v].Step(round, inboxes[v])
			for port, msg := range outbox {
				if msg == nil {
					continue
				}
				u := g.Neighbor(v, port)
				nextInboxes[u][reverse[v][port]] = msg
			}
			if halt {
				halted[v] = true
				running--
			}
		}
		inboxes, nextInboxes = nextInboxes, inboxes
		rounds = round
	}
	return rounds, nil
}

func clearMsgs(msgs []any) {
	for i := range msgs {
		msgs[i] = nil
	}
}

// reversePorts computes, for every node v and port i, the port of
// g.Neighbor(v, i) that leads back to v. It fails if the graph is not
// symmetric or a neighbour list contains duplicates.
func reversePorts(g Graph) ([][]int, error) {
	n := g.N()
	rev := make([][]int, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(v)
		rev[v] = make([]int, deg)
		seen := make(map[int]bool, deg)
		for i := 0; i < deg; i++ {
			u := g.Neighbor(v, i)
			if seen[u] {
				return nil, fmt.Errorf("local: node %d has duplicate neighbour %d", v, u)
			}
			seen[u] = true
			back := -1
			for j := 0; j < g.Degree(u); j++ {
				if g.Neighbor(u, j) == v {
					back = j
					break
				}
			}
			if back < 0 {
				return nil, fmt.Errorf("local: edge %d->%d has no reverse", v, u)
			}
			rev[v][i] = back
		}
	}
	return rev, nil
}

// GatherBall returns, for every node v, the list of nodes within graph
// distance t of v (including v), in BFS order. It models the standard
// "collect the radius-t view" step of a time-t LOCAL algorithm; callers
// must account t rounds.
func GatherBall(g Graph, v, t int) []int {
	dist := map[int]int{v: 0}
	order := []int{v}
	for head := 0; head < len(order); head++ {
		u := order[head]
		if dist[u] == t {
			continue
		}
		for i := 0; i < g.Degree(u); i++ {
			w := g.Neighbor(u, i)
			if _, ok := dist[w]; !ok {
				dist[w] = dist[u] + 1
				order = append(order, w)
			}
		}
	}
	return order
}
