package local

import (
	"sort"
	"testing"
	"testing/quick"

	"lclgrid/internal/grid"
)

func TestIDsUnique(t *testing.T) {
	for _, ids := range [][]int{SequentialIDs(50), PermutedIDs(50, 1), PermutedIDs(50, 7), ReversedIDs(50)} {
		seen := make(map[int]bool)
		for _, id := range ids {
			if id < 1 || id > 50 {
				t.Fatalf("id %d out of range", id)
			}
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}
}

func TestPermutedIDsDeterministic(t *testing.T) {
	a, b := PermutedIDs(20, 42), PermutedIDs(20, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PermutedIDs not deterministic for equal seeds")
		}
	}
}

func TestRounds(t *testing.T) {
	var r Rounds
	r.Add(3)
	r.AddSimulated(5, 4)
	if r.Total() != 23 {
		t.Errorf("Total = %d, want 23", r.Total())
	}
}

func TestMaxDegree(t *testing.T) {
	g := grid.Square(5)
	if MaxDegree(g) != 4 {
		t.Error("torus max degree should be 4")
	}
	p := grid.NewPower(g, 2, grid.L1)
	if MaxDegree(p) != 12 {
		t.Error("power max degree should be 12")
	}
}

func TestSyncRoundsFloodMax(t *testing.T) {
	// Flooding the maximum ID for t rounds makes every node know the max
	// ID within distance t.
	g := grid.Square(6)
	ids := PermutedIDs(g.N(), 3)
	state := append([]int(nil), ids...)
	tRounds := 4
	SyncRounds(g, state, tRounds, func(v, round, self int, nbr func(i int) int) int {
		best := self
		for i := 0; i < g.Degree(v); i++ {
			if x := nbr(i); x > best {
				best = x
			}
		}
		return best
	})
	for v := 0; v < g.N(); v++ {
		want := 0
		for u := 0; u < g.N(); u++ {
			if g.Dist(u, v, grid.L1) <= tRounds && ids[u] > want {
				want = ids[u]
			}
		}
		if state[v] != want {
			t.Fatalf("node %d: flooded max = %d, want %d", v, state[v], want)
		}
	}
}

func TestSyncRoundsSimultaneity(t *testing.T) {
	// On a directed 2-coloured update, simultaneity matters: a sequential
	// (non-double-buffered) implementation would converge differently.
	c := grid.Cycle(4)
	state := []int{1, 0, 0, 0}
	SyncRounds(c, state, 1, func(v, round, self int, nbr func(i int) int) int {
		return nbr(1) // copy predecessor's value
	})
	want := []int{0, 1, 0, 0}
	for i := range want {
		if state[i] != want[i] {
			t.Fatalf("state = %v, want %v", state, want)
		}
	}
}

// broadcastProc floods its ID and halts after a fixed number of rounds.
type broadcastProc struct {
	best   int
	degree int
	limit  int
}

func (p *broadcastProc) Step(round int, inbox []any) ([]any, bool) {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if v := m.(int); v > p.best {
			p.best = v
		}
	}
	if round >= p.limit {
		return nil, true
	}
	out := make([]any, p.degree)
	for i := range out {
		out[i] = p.best
	}
	return out, false
}

func TestRunBroadcast(t *testing.T) {
	g := grid.Square(5)
	ids := PermutedIDs(g.N(), 9)
	procs := make([]Proc, g.N())
	limit := 6
	for v := range procs {
		procs[v] = &broadcastProc{best: ids[v], degree: g.Degree(v), limit: limit}
	}
	rounds, err := Run(g, procs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != limit {
		t.Errorf("rounds = %d, want %d", rounds, limit)
	}
	// After limit rounds each node has seen IDs from distance <= limit-1
	// (messages sent in round 1 arrive in round 2).
	for v := 0; v < g.N(); v++ {
		want := 0
		for u := 0; u < g.N(); u++ {
			if g.Dist(u, v, grid.L1) <= limit-1 && ids[u] > want {
				want = ids[u]
			}
		}
		got := procs[v].(*broadcastProc).best
		if got != want {
			t.Fatalf("node %d best = %d, want %d", v, got, want)
		}
	}
}

type neverHalt struct{}

func (neverHalt) Step(int, []any) ([]any, bool) { return nil, false }

func TestRunMaxRounds(t *testing.T) {
	g := grid.Cycle(3)
	procs := []Proc{neverHalt{}, neverHalt{}, neverHalt{}}
	if _, err := Run(g, procs, 10); err != ErrMaxRounds {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
}

func TestRunProcCountMismatch(t *testing.T) {
	g := grid.Cycle(3)
	if _, err := Run(g, []Proc{neverHalt{}}, 10); err == nil {
		t.Error("expected error for wrong proc count")
	}
}

func TestGatherBall(t *testing.T) {
	g := grid.Square(7)
	v := g.At(3, 3)
	ball := GatherBall(g, v, 2)
	sort.Ints(ball)
	var want []int
	for u := 0; u < g.N(); u++ {
		if g.Dist(u, v, grid.L1) <= 2 {
			want = append(want, u)
		}
	}
	if len(ball) != len(want) {
		t.Fatalf("ball size = %d, want %d", len(ball), len(want))
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("ball = %v, want %v", ball, want)
		}
	}
}

func TestGatherBallRadiusProperty(t *testing.T) {
	g := grid.Square(9)
	f := func(a uint8, r uint8) bool {
		v := int(a) % g.N()
		t := int(r % 5)
		ball := GatherBall(g, v, t)
		return len(ball) == ballSize(g, v, t)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func ballSize(g *grid.Torus, v, t int) int {
	c := 0
	for u := 0; u < g.N(); u++ {
		if g.Dist(u, v, grid.L1) <= t {
			c++
		}
	}
	return c
}
