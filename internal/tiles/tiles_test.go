package tiles

import (
	"math/rand"
	"sort"
	"testing"

	"lclgrid/internal/grid"
)

// paperTiles16 is the explicit list of 3×2 tiles for k=1 printed in §7 of
// the paper, transcribed row by row.
var paperTiles16 = []string{
	"00|00|10", "00|00|01", "00|10|00", "00|10|01",
	"00|01|00", "00|01|10", "10|00|00", "10|00|10",
	"10|00|01", "10|01|00", "10|01|10", "01|00|00",
	"01|00|10", "01|00|01", "01|10|00", "01|10|01",
}

func TestEnumerateMatchesPaperListK1(t *testing.T) {
	got := Enumerate(1, 3, 2)
	if len(got) != 16 {
		t.Fatalf("k=1 3×2: %d tiles, paper says 16", len(got))
	}
	gotKeys := make([]string, len(got))
	for i, p := range got {
		gotKeys[i] = p.Key()
	}
	want := append([]string(nil), paperTiles16...)
	sort.Strings(gotKeys)
	sort.Strings(want)
	for i := range want {
		if gotKeys[i] != want[i] {
			t.Fatalf("tile set differs from the paper's list:\n got %v\nwant %v", gotKeys, want)
		}
	}
}

func TestEnumerateMatchesPaperCountK3(t *testing.T) {
	// §7: "synthesis succeeds with k = 3 for e.g. 7×5 tiles ... it turns
	// out that we only need to consider 2079 tiles."
	if got := Count(3, 7, 5); got != 2079 {
		t.Fatalf("k=3 7×5: %d tiles, paper says 2079", got)
	}
}

// TestEnumeratePackedMatchesEnumerate pins the packed fast path to the
// Pattern-based enumeration across a spread of geometries: same count,
// same tiles, same (lexicographic) order, with bit i of each key equal
// to cell i in row-major order.
func TestEnumeratePackedMatchesEnumerate(t *testing.T) {
	ctx := t.Context()
	for _, g := range []struct{ k, h, w int }{
		{1, 3, 2}, {1, 3, 3}, {2, 5, 4}, {3, 7, 5}, {1, 1, 1}, {2, 8, 8},
	} {
		pats := Enumerate(g.k, g.h, g.w)
		keys, err := EnumeratePacked(ctx, g.k, g.h, g.w)
		if err != nil {
			t.Fatalf("k=%d %dx%d: %v", g.k, g.h, g.w, err)
		}
		if len(keys) != len(pats) {
			t.Fatalf("k=%d %dx%d: packed %d tiles, Enumerate %d", g.k, g.h, g.w, len(keys), len(pats))
		}
		for i, p := range pats {
			var want uint64
			for bit, set := range p.Bits {
				if set {
					want |= 1 << bit
				}
			}
			if keys[i] != want {
				t.Fatalf("k=%d %dx%d tile %d: packed key %064b, want %064b (%s)",
					g.k, g.h, g.w, i, keys[i], want, p.Key())
			}
		}
	}
	if _, err := EnumeratePacked(ctx, 1, 9, 8); err == nil {
		t.Error("9x8 exceeds 64 cells; EnumeratePacked should refuse")
	}
}

func TestAllZeroNotATileForTightWindows(t *testing.T) {
	// §7 analysis: the all-zero 3×2 window cannot be completed, because
	// the two middle cells force margin anchors that conflict.
	for _, p := range Enumerate(1, 3, 2) {
		all0 := true
		for _, b := range p.Bits {
			if b {
				all0 = false
				break
			}
		}
		if all0 {
			t.Fatal("all-zero pattern should not be a tile for k=1, 3×2")
		}
	}
}

func TestAllZeroIsATileForSmallWindows(t *testing.T) {
	// A 1×1 window of an MIS can certainly be all zero.
	found := false
	for _, p := range Enumerate(1, 1, 1) {
		if !p.Bits[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("all-zero 1×1 pattern must be a tile")
	}
}

func TestTileIndependence(t *testing.T) {
	for _, tc := range []struct{ k, h, w int }{{1, 3, 3}, {2, 5, 4}, {3, 7, 5}} {
		for _, p := range Enumerate(tc.k, tc.h, tc.w) {
			var ones []cell
			for r := 0; r < p.H; r++ {
				for c := 0; c < p.W; c++ {
					if p.Get(r, c) {
						ones = append(ones, cell{r, c})
					}
				}
			}
			for i := range ones {
				for j := i + 1; j < len(ones); j++ {
					if dist(ones[i], ones[j]) <= tc.k {
						t.Fatalf("k=%d: tile %s has anchors at distance <= k", tc.k, p.Key())
					}
				}
			}
		}
	}
}

// greedyPowerMIS builds an MIS of G^(k) on the torus with a randomised
// greedy order.
func greedyPowerMIS(g *grid.Torus, k int, rng *rand.Rand) []bool {
	p := grid.NewPower(g, k, grid.L1)
	order := rng.Perm(g.N())
	set := make([]bool, g.N())
	for _, v := range order {
		ok := true
		for i := 0; i < p.Degree(v); i++ {
			if set[p.Neighbor(v, i)] {
				ok = false
				break
			}
		}
		if ok {
			set[v] = true
		}
	}
	// Maximality pass.
	for v := 0; v < g.N(); v++ {
		dominated := set[v]
		for i := 0; i < p.Degree(v) && !dominated; i++ {
			dominated = set[p.Neighbor(v, i)]
		}
		if !dominated {
			set[v] = true
		}
	}
	return set
}

func TestRealizedWindowsAreTiles(t *testing.T) {
	// Every window observed in an actual MIS of G^(k) on a large torus
	// must be one of the enumerated tiles (realisable ⊆ extendable).
	for _, tc := range []struct{ k, h, w int }{{1, 3, 2}, {2, 5, 3}, {3, 7, 5}} {
		index := make(map[string]bool)
		for _, p := range Enumerate(tc.k, tc.h, tc.w) {
			index[p.Key()] = true
		}
		g := grid.Square(8 * tc.k)
		rng := rand.New(rand.NewSource(int64(tc.k)))
		for trial := 0; trial < 3; trial++ {
			set := greedyPowerMIS(g, tc.k, rng)
			for y := 0; y < g.NY(); y++ {
				for x := 0; x < g.NX(); x++ {
					win := g.WindowPattern(set, x, y, tc.h, tc.w)
					key := (Pattern{H: tc.h, W: tc.w, Bits: win}).Key()
					if !index[key] {
						t.Fatalf("k=%d: realised window %s not in tile set", tc.k, key)
					}
				}
			}
		}
	}
}

func TestSubPattern(t *testing.T) {
	p, err := ParsePattern("101|010|001")
	if err != nil {
		t.Fatal(err)
	}
	s := p.Sub(1, 1, 2, 2)
	if s.Key() != "10|01" {
		t.Errorf("Sub = %s", s.Key())
	}
}

func TestKeyParseRoundTrip(t *testing.T) {
	for _, p := range Enumerate(2, 4, 3) {
		q, err := ParsePattern(p.Key())
		if err != nil {
			t.Fatalf("ParsePattern(%s): %v", p.Key(), err)
		}
		if q.Key() != p.Key() || q.H != p.H || q.W != p.W {
			t.Fatalf("round trip failed for %s", p.Key())
		}
	}
}

func TestParsePatternMalformed(t *testing.T) {
	for _, bad := range []string{"", "10|1", "1|10", "10||10", "1x|00", "10|0 "} {
		if _, err := ParsePattern(bad); err == nil {
			t.Errorf("ParsePattern(%q): expected error, got nil", bad)
		}
	}
}

func TestEdgeTileCountsConsistent(t *testing.T) {
	// Every (h+1)×w tile restricts to two h×w tiles; so the edge-tile
	// count is at least the node-tile count (tiles extend both ways).
	nodeTiles := Count(1, 3, 2)
	vert := Enumerate(1, 4, 2)
	index := make(map[string]bool)
	for _, p := range Enumerate(1, 3, 2) {
		index[p.Key()] = true
	}
	for _, p := range vert {
		top := p.Sub(0, 0, 3, 2)
		bottom := p.Sub(1, 0, 3, 2)
		if !index[top.Key()] || !index[bottom.Key()] {
			t.Fatalf("edge tile %s restricts to a non-tile", p.Key())
		}
	}
	if len(vert) < nodeTiles {
		t.Errorf("vertical edge tiles (%d) fewer than node tiles (%d)", len(vert), nodeTiles)
	}
}
