// Package tiles enumerates the anchor-pattern tiles of §7 / Appendix A.1
// of the paper: the h×w 0/1 windows that can occur when a maximal
// independent set of G^(k) — the k-th (L1) power of the two-dimensional
// grid — is observed through an h×w window.
//
// A pattern is a tile iff it extends to an MIS of the infinite grid.
// Following A.1, this holds iff (a) its 1-cells are pairwise at L1
// distance greater than k and (b) every window cell left undominated by
// the pattern can be dominated by an independent set of "margin" cells
// (cells outside the window within distance k of it) that is also
// independent of the pattern. Condition (b) is decided by a small
// backtracking search over the margin (the paper suggests a SAT solver or
// a tailored backtrack search in the style of Knuth's dancing links).
//
// The enumeration is bitset-based: every window and margin cell gets a
// precomputed 256-bit domination mask (the cells within L1 distance k),
// so independence checks, undominated-set tracking and the fail-first
// margin search are word operations with no per-node allocation. All
// window shapes through k=4 fit in 256 bits; larger geometries fall back
// to a coordinate-based search.
//
// The paper reports 16 tiles for k=1 with 3×2 windows (listed explicitly
// in §7) and 2079 tiles for k=3 with 7×5 windows; package tests reproduce
// both counts.
package tiles

import (
	"context"
	"fmt"
	"math/bits"
	"strings"
)

// Pattern is an h×w 0/1 window in screen coordinates (row 0 is the
// northernmost row), stored row-major.
type Pattern struct {
	H, W int
	Bits []bool
}

// Get returns the bit at row r, column c.
func (p Pattern) Get(r, c int) bool { return p.Bits[r*p.W+c] }

// Key returns a canonical string key ("rows of 0/1 joined by |").
func (p Pattern) Key() string {
	var b strings.Builder
	for r := 0; r < p.H; r++ {
		if r > 0 {
			b.WriteByte('|')
		}
		for c := 0; c < p.W; c++ {
			if p.Get(r, c) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// ParsePattern parses the Key format back into a Pattern. It returns an
// error for malformed keys: empty rows, ragged rows (rows of unequal
// width) or characters other than '0' and '1'.
func ParsePattern(s string) (Pattern, error) {
	rows := strings.Split(s, "|")
	h, w := len(rows), len(rows[0])
	if w == 0 {
		return Pattern{}, fmt.Errorf("tiles: empty row in pattern key %q", s)
	}
	bits := make([]bool, h*w)
	for r, row := range rows {
		if len(row) != w {
			return Pattern{}, fmt.Errorf("tiles: ragged pattern key %q: row %d has width %d, want %d", s, r, len(row), w)
		}
		for c := 0; c < w; c++ {
			switch row[c] {
			case '1':
				bits[r*w+c] = true
			case '0':
			default:
				return Pattern{}, fmt.Errorf("tiles: invalid character %q in pattern key %q", row[c], s)
			}
		}
	}
	return Pattern{H: h, W: w, Bits: bits}, nil
}

// Sub extracts the h×w sub-pattern whose north-west corner is at
// (r0, c0).
func (p Pattern) Sub(r0, c0, h, w int) Pattern {
	bits := make([]bool, h*w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			bits[r*w+c] = p.Get(r0+r, c0+c)
		}
	}
	return Pattern{H: h, W: w, Bits: bits}
}

// cell is a lattice cell in window coordinates; the window occupies
// rows [0,h) and columns [0,w), the margin lies outside.
type cell struct{ r, c int }

func dist(a, b cell) int {
	dr, dc := a.r-b.r, a.c-b.c
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// --- 256-bit cell sets ----------------------------------------------------

// bs256 is a fixed 256-bit set over cell indices: window cells first
// (index r*w+c, matching Pattern bit order), margin cells after.
type bs256 [4]uint64

func (b *bs256) set(i int)     { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bs256) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bs256) or(o bs256) bs256 {
	return bs256{b[0] | o[0], b[1] | o[1], b[2] | o[2], b[3] | o[3]}
}

func (b bs256) and(o bs256) bs256 {
	return bs256{b[0] & o[0], b[1] & o[1], b[2] & o[2], b[3] & o[3]}
}

func (b bs256) andNot(o bs256) bs256 {
	return bs256{b[0] &^ o[0], b[1] &^ o[1], b[2] &^ o[2], b[3] &^ o[3]}
}

func (b bs256) intersects(o bs256) bool {
	return b[0]&o[0]|b[1]&o[1]|b[2]&o[2]|b[3]&o[3] != 0
}

func (b bs256) isZero() bool { return b[0]|b[1]|b[2]|b[3] == 0 }

func (b bs256) count() int {
	return bits.OnesCount64(b[0]) + bits.OnesCount64(b[1]) +
		bits.OnesCount64(b[2]) + bits.OnesCount64(b[3])
}

// --- bitset enumerator ----------------------------------------------------

// fastEnum is the bitset enumerator: fixed geometry for one call, with a
// precomputed domination mask per cell.
type fastEnum struct {
	k, h, w int
	nWin    int     // number of window cells (= h*w)
	dom     []bs256 // per cell: all cells within L1 distance k (incl. self)
	winMask bs256
	marMask bs256
	steps   int
	err     error
}

// newFastEnum builds the bitset enumerator, or returns nil when the
// window+margin geometry does not fit in 256 bits.
func newFastEnum(k, h, w int) *fastEnum {
	cells := make([]cell, 0, (h+2*k)*(w+2*k))
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			cells = append(cells, cell{r, c})
		}
	}
	nWin := len(cells)
	for r := -k; r < h+k; r++ {
		for c := -k; c < w+k; c++ {
			if r >= 0 && r < h && c >= 0 && c < w {
				continue
			}
			if distToWindow(cell{r, c}, h, w) <= k {
				cells = append(cells, cell{r, c})
			}
		}
	}
	if len(cells) > 256 {
		return nil
	}
	e := &fastEnum{k: k, h: h, w: w, nWin: nWin, dom: make([]bs256, len(cells))}
	for i, a := range cells {
		if i < nWin {
			e.winMask.set(i)
		} else {
			e.marMask.set(i)
		}
		for j, b := range cells {
			if dist(a, b) <= k {
				e.dom[i].set(j)
			}
		}
	}
	return e
}

// run enumerates all tiles in lexicographic bit-string order, calling
// emit with each tile's anchor set (window bits only are meaningful).
func (e *fastEnum) run(ctx context.Context, emit func(anchors bs256)) error {
	e.err = nil
	e.steps = 0
	e.rec(ctx, 0, bs256{}, bs256{}, e.marMask, emit)
	return e.err
}

func (e *fastEnum) rec(ctx context.Context, idx int, anchors, dominated, cand bs256, emit func(bs256)) {
	if e.err != nil {
		return
	}
	e.steps++
	if e.steps%ctxCheckInterval == 0 {
		if err := ctx.Err(); err != nil {
			e.err = err
			return
		}
	}
	if idx == e.nWin {
		undom := e.winMask.andNot(dominated)
		if undom.isZero() || e.search(undom, cand) {
			emit(anchors)
		}
		return
	}
	// Case 0: cell not an anchor.
	e.rec(ctx, idx+1, anchors, dominated, cand, emit)
	// Case 1: cell is an anchor, if independent from previous anchors.
	if e.dom[idx].intersects(anchors) {
		return
	}
	a := anchors
	a.set(idx)
	e.rec(ctx, idx+1, a, dominated.or(e.dom[idx]), cand.andNot(e.dom[idx]), emit)
}

// search decides condition (b): can the undominated window cells be
// dominated by an independent subset of the remaining margin candidates?
// Fail-first: branch on the cell with the fewest available dominators.
func (e *fastEnum) search(undom, cand bs256) bool {
	if undom.isZero() {
		return true
	}
	best, bestCnt := -1, 0
	var bestOpts bs256
	for wi := 0; wi < 4; wi++ {
		word := undom[wi]
		for word != 0 {
			u := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			opts := e.dom[u].and(cand)
			cnt := opts.count()
			if cnt == 0 {
				return false
			}
			if best < 0 || cnt < bestCnt {
				best, bestCnt, bestOpts = u, cnt, opts
			}
		}
	}
	for wi := 0; wi < 4; wi++ {
		word := bestOpts[wi]
		for word != 0 {
			m := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if e.search(undom.andNot(e.dom[m]), cand.andNot(e.dom[m])) {
				return true
			}
		}
	}
	return false
}

// --- public API -----------------------------------------------------------

// Enumerate returns all tiles for the given power k and window dimensions
// h×w, in lexicographic order of their bit strings. It is
// EnumerateContext with a background context (never interrupted).
func Enumerate(k, h, w int) []Pattern {
	out, _ := EnumerateContext(context.Background(), k, h, w)
	return out
}

// ctxCheckInterval is how many backtrack steps pass between ctx.Err()
// checkpoints in EnumerateContext.
const ctxCheckInterval = 4096

// EnumerateContext is Enumerate under a context: the backtracking search
// checks ctx.Err() every ctxCheckInterval steps, so a cancel or an
// expired deadline aborts a large enumeration (k = 3 with 7×5 windows
// visits millions of partial patterns) promptly with the context's error.
func EnumerateContext(ctx context.Context, k, h, w int) ([]Pattern, error) {
	if k < 1 || h < 1 || w < 1 {
		panic("tiles: parameters must be positive")
	}
	if e := newFastEnum(k, h, w); e != nil {
		var out []Pattern
		err := e.run(ctx, func(anchors bs256) {
			bits := make([]bool, h*w)
			for i := range bits {
				bits[i] = anchors.has(i)
			}
			out = append(out, Pattern{H: h, W: w, Bits: bits})
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return enumerateSlow(ctx, k, h, w)
}

// EnumeratePacked returns the tiles for the given parameters as packed
// uint64 window keys — bit r*w+c is set iff the cell at (r, c) is an
// anchor — in the same order as Enumerate. It requires h*w <= 64 and
// performs no per-tile Pattern allocation on the bitset path.
func EnumeratePacked(ctx context.Context, k, h, w int) ([]uint64, error) {
	if k < 1 || h < 1 || w < 1 {
		panic("tiles: parameters must be positive")
	}
	if h*w > 64 {
		return nil, fmt.Errorf("tiles: %dx%d window does not fit a packed uint64 key", h, w)
	}
	if e := newFastEnum(k, h, w); e != nil {
		var out []uint64
		err := e.run(ctx, func(anchors bs256) {
			out = append(out, anchors[0])
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	pats, err := enumerateSlow(ctx, k, h, w)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(pats))
	for i, p := range pats {
		var key uint64
		for j, b := range p.Bits {
			if b {
				key |= 1 << uint(j)
			}
		}
		out[i] = key
	}
	return out, nil
}

// Count returns the number of tiles for the given parameters.
func Count(k, h, w int) int { return len(Enumerate(k, h, w)) }

// distToWindow returns the L1 distance from a cell to the h×w window
// rectangle.
func distToWindow(m cell, h, w int) int {
	dr, dc := 0, 0
	if m.r < 0 {
		dr = -m.r
	} else if m.r >= h {
		dr = m.r - h + 1
	}
	if m.c < 0 {
		dc = -m.c
	} else if m.c >= w {
		dc = m.c - w + 1
	}
	return dr + dc
}

// --- coordinate-based fallback (geometries beyond 256 cells) --------------

// enumerator holds the fixed geometry for one enumerateSlow call.
type enumerator struct {
	k, h, w int
	window  []cell
	margin  []cell
}

func enumerateSlow(ctx context.Context, k, h, w int) ([]Pattern, error) {
	e := &enumerator{k: k, h: h, w: w}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			e.window = append(e.window, cell{r, c})
		}
	}
	for r := -k; r < h+k; r++ {
		for c := -k; c < w+k; c++ {
			if r >= 0 && r < h && c >= 0 && c < w {
				continue
			}
			if distToWindow(cell{r, c}, h, w) <= k {
				e.margin = append(e.margin, cell{r, c})
			}
		}
	}

	var out []Pattern
	var ctxErr error
	steps := 0
	ones := make([]cell, 0, h*w)
	bits := make([]bool, h*w)
	var rec func(idx int)
	rec = func(idx int) {
		if ctxErr != nil {
			return
		}
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return
			}
		}
		if idx == len(e.window) {
			if e.extendable(ones) {
				out = append(out, Pattern{H: h, W: w, Bits: append([]bool(nil), bits...)})
			}
			return
		}
		// Case 0: cell not an anchor.
		rec(idx + 1)
		// Case 1: cell is an anchor, if independent from previous anchors.
		cand := e.window[idx]
		for _, o := range ones {
			if dist(o, cand) <= e.k {
				return
			}
		}
		bits[idx] = true
		ones = append(ones, cand)
		rec(idx + 1)
		ones = ones[:len(ones)-1]
		bits[idx] = false
	}
	rec(0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// extendable decides condition (b): the undominated window cells can be
// dominated by an independent margin set compatible with the anchors.
func (e *enumerator) extendable(ones []cell) bool {
	var undominated []cell
	for _, u := range e.window {
		dominated := false
		for _, o := range ones {
			if dist(u, o) <= e.k {
				dominated = true
				break
			}
		}
		if !dominated {
			undominated = append(undominated, u)
		}
	}
	if len(undominated) == 0 {
		return true
	}
	// Margin candidates that are independent of the window anchors.
	var candidates []cell
	for _, m := range e.margin {
		ok := true
		for _, o := range ones {
			if dist(m, o) <= e.k {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, m)
		}
	}
	return e.search(undominated, candidates, nil)
}

// search tries to dominate all cells in undominated using an independent
// subset of candidates (each already independent of the window anchors),
// also independent of the cells in chosen.
func (e *enumerator) search(undominated, candidates, chosen []cell) bool {
	if len(undominated) == 0 {
		return true
	}
	// Pick the undominated cell with the fewest available dominators
	// (fail-first) and branch on them.
	bestIdx, bestOpts := -1, []cell(nil)
	for i, u := range undominated {
		var opts []cell
		for _, m := range candidates {
			if dist(m, u) > e.k {
				continue
			}
			ok := true
			for _, ch := range chosen {
				if dist(m, ch) <= e.k {
					ok = false
					break
				}
			}
			if ok {
				opts = append(opts, m)
			}
		}
		if len(opts) == 0 {
			return false
		}
		if bestIdx < 0 || len(opts) < len(bestOpts) {
			bestIdx, bestOpts = i, opts
		}
	}
	for _, m := range bestOpts {
		var rest []cell
		for _, u := range undominated {
			if dist(m, u) > e.k {
				rest = append(rest, u)
			}
		}
		if e.search(rest, candidates, append(chosen, m)) {
			return true
		}
	}
	return false
}
