// Package tiles enumerates the anchor-pattern tiles of §7 / Appendix A.1
// of the paper: the h×w 0/1 windows that can occur when a maximal
// independent set of G^(k) — the k-th (L1) power of the two-dimensional
// grid — is observed through an h×w window.
//
// A pattern is a tile iff it extends to an MIS of the infinite grid.
// Following A.1, this holds iff (a) its 1-cells are pairwise at L1
// distance greater than k and (b) every window cell left undominated by
// the pattern can be dominated by an independent set of "margin" cells
// (cells outside the window within distance k of it) that is also
// independent of the pattern. Condition (b) is decided by a small
// backtracking search over the margin (the paper suggests a SAT solver or
// a tailored backtrack search in the style of Knuth's dancing links).
//
// The paper reports 16 tiles for k=1 with 3×2 windows (listed explicitly
// in §7) and 2079 tiles for k=3 with 7×5 windows; package tests reproduce
// both counts.
package tiles

import (
	"context"
	"strings"
)

// Pattern is an h×w 0/1 window in screen coordinates (row 0 is the
// northernmost row), stored row-major.
type Pattern struct {
	H, W int
	Bits []bool
}

// Get returns the bit at row r, column c.
func (p Pattern) Get(r, c int) bool { return p.Bits[r*p.W+c] }

// Key returns a canonical string key ("rows of 0/1 joined by |").
func (p Pattern) Key() string {
	var b strings.Builder
	for r := 0; r < p.H; r++ {
		if r > 0 {
			b.WriteByte('|')
		}
		for c := 0; c < p.W; c++ {
			if p.Get(r, c) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	return b.String()
}

// ParsePattern parses the Key format back into a Pattern.
func ParsePattern(s string) Pattern {
	rows := strings.Split(s, "|")
	h, w := len(rows), len(rows[0])
	bits := make([]bool, h*w)
	for r, row := range rows {
		for c := 0; c < w; c++ {
			bits[r*w+c] = row[c] == '1'
		}
	}
	return Pattern{H: h, W: w, Bits: bits}
}

// Sub extracts the h×w sub-pattern whose north-west corner is at
// (r0, c0).
func (p Pattern) Sub(r0, c0, h, w int) Pattern {
	bits := make([]bool, h*w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			bits[r*w+c] = p.Get(r0+r, c0+c)
		}
	}
	return Pattern{H: h, W: w, Bits: bits}
}

// cell is a lattice cell in window coordinates; the window occupies
// rows [0,h) and columns [0,w), the margin lies outside.
type cell struct{ r, c int }

func dist(a, b cell) int {
	dr, dc := a.r-b.r, a.c-b.c
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return dr + dc
}

// enumerator holds the fixed geometry for one Enumerate call.
type enumerator struct {
	k, h, w int
	window  []cell
	margin  []cell
}

// Enumerate returns all tiles for the given power k and window dimensions
// h×w, in lexicographic order of their bit strings. It is
// EnumerateContext with a background context (never interrupted).
func Enumerate(k, h, w int) []Pattern {
	out, _ := EnumerateContext(context.Background(), k, h, w)
	return out
}

// ctxCheckInterval is how many backtrack steps pass between ctx.Err()
// checkpoints in EnumerateContext.
const ctxCheckInterval = 4096

// EnumerateContext is Enumerate under a context: the backtracking search
// checks ctx.Err() every ctxCheckInterval steps, so a cancel or an
// expired deadline aborts a large enumeration (k = 3 with 7×5 windows
// visits millions of partial patterns) promptly with the context's error.
func EnumerateContext(ctx context.Context, k, h, w int) ([]Pattern, error) {
	if k < 1 || h < 1 || w < 1 {
		panic("tiles: parameters must be positive")
	}
	e := &enumerator{k: k, h: h, w: w}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			e.window = append(e.window, cell{r, c})
		}
	}
	for r := -k; r < h+k; r++ {
		for c := -k; c < w+k; c++ {
			if r >= 0 && r < h && c >= 0 && c < w {
				continue
			}
			if e.distToWindow(cell{r, c}) <= k {
				e.margin = append(e.margin, cell{r, c})
			}
		}
	}

	var out []Pattern
	var ctxErr error
	steps := 0
	ones := make([]cell, 0, h*w)
	bits := make([]bool, h*w)
	var rec func(idx int)
	rec = func(idx int) {
		if ctxErr != nil {
			return
		}
		steps++
		if steps%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return
			}
		}
		if idx == len(e.window) {
			if e.extendable(ones) {
				out = append(out, Pattern{H: h, W: w, Bits: append([]bool(nil), bits...)})
			}
			return
		}
		// Case 0: cell not an anchor.
		rec(idx + 1)
		// Case 1: cell is an anchor, if independent from previous anchors.
		cand := e.window[idx]
		for _, o := range ones {
			if dist(o, cand) <= e.k {
				return
			}
		}
		bits[idx] = true
		ones = append(ones, cand)
		rec(idx + 1)
		ones = ones[:len(ones)-1]
		bits[idx] = false
	}
	rec(0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// Count returns the number of tiles for the given parameters.
func Count(k, h, w int) int { return len(Enumerate(k, h, w)) }

// distToWindow returns the L1 distance from a cell to the window
// rectangle.
func (e *enumerator) distToWindow(m cell) int {
	dr, dc := 0, 0
	if m.r < 0 {
		dr = -m.r
	} else if m.r >= e.h {
		dr = m.r - e.h + 1
	}
	if m.c < 0 {
		dc = -m.c
	} else if m.c >= e.w {
		dc = m.c - e.w + 1
	}
	return dr + dc
}

// extendable decides condition (b): the undominated window cells can be
// dominated by an independent margin set compatible with the anchors.
func (e *enumerator) extendable(ones []cell) bool {
	var undominated []cell
	for _, u := range e.window {
		dominated := false
		for _, o := range ones {
			if dist(u, o) <= e.k {
				dominated = true
				break
			}
		}
		if !dominated {
			undominated = append(undominated, u)
		}
	}
	if len(undominated) == 0 {
		return true
	}
	// Margin candidates that are independent of the window anchors.
	var candidates []cell
	for _, m := range e.margin {
		ok := true
		for _, o := range ones {
			if dist(m, o) <= e.k {
				ok = false
				break
			}
		}
		if ok {
			candidates = append(candidates, m)
		}
	}
	return e.search(undominated, candidates, nil)
}

// search tries to dominate all cells in undominated using an independent
// subset of candidates (each already independent of the window anchors),
// also independent of the cells in chosen.
func (e *enumerator) search(undominated, candidates, chosen []cell) bool {
	if len(undominated) == 0 {
		return true
	}
	// Pick the undominated cell with the fewest available dominators
	// (fail-first) and branch on them.
	bestIdx, bestOpts := -1, []cell(nil)
	for i, u := range undominated {
		var opts []cell
		for _, m := range candidates {
			if dist(m, u) > e.k {
				continue
			}
			ok := true
			for _, ch := range chosen {
				if dist(m, ch) <= e.k {
					ok = false
					break
				}
			}
			if ok {
				opts = append(opts, m)
			}
		}
		if len(opts) == 0 {
			return false
		}
		if bestIdx < 0 || len(opts) < len(bestOpts) {
			bestIdx, bestOpts = i, opts
		}
	}
	for _, m := range bestOpts {
		var rest []cell
		for _, u := range undominated {
			if dist(m, u) > e.k {
				rest = append(rest, u)
			}
		}
		if e.search(rest, candidates, append(chosen, m)) {
			return true
		}
	}
	return false
}
