// Package core implements the paper's primary contribution: the speed-up
// theorem and normal form for Θ(log* n) LCL problems on toroidal grids
// (§5), the automatic synthesis of asymptotically optimal algorithms (§7),
// the Θ(n) brute-force baseline, and the one-sided classification oracle
// built from them.
//
// The normal form is A = A' ∘ S_k: S_k computes a maximal independent set
// of the k-th power of the grid (the "anchors", problem-independent,
// Θ(log* n) rounds), and A' is a finite lookup table from the h×w window
// of anchor bits around a node to the node's output label. Synthesis
// reduces the construction of A' to a constraint-satisfaction problem on
// the neighbourhood graph of anchor tiles, solved with the CDCL solver.
package core

import (
	"context"
	"fmt"
	"sync"

	"lclgrid/internal/tiles"
)

// TileGraph is the neighbourhood graph H of §7: nodes are the h×w anchor
// tiles for MIS-in-G^(k); a horizontal edge connects the two h×w
// restrictions of every h×(w+1) tile (west tile → east tile), a vertical
// edge the two restrictions of every (h+1)×w tile (south tile → north
// tile).
type TileGraph struct {
	K, H, W int
	Tiles   []tiles.Pattern
	Index   map[string]int
	// HEdges[i] = {west tile index, east tile index}.
	HEdges [][2]int
	// VEdges[i] = {south tile index, north tile index}.
	VEdges [][2]int

	// bitOnce guards the lazy integer-keyed index; TileGraphs are always
	// shared by pointer (engine cache, singleflight), never copied.
	bitOnce sync.Once
	bitIdx  map[uint64]int
	bitOK   bool
}

// patternBits packs an h×w anchor pattern into a uint64 key, bit r*w+c
// for the cell at row r, column c. Only valid when h*w <= 64.
func patternBits(p tiles.Pattern) uint64 {
	var key uint64
	for i, b := range p.Bits {
		if b {
			key |= 1 << i
		}
	}
	return key
}

// BitIndex returns the integer-keyed tile index: the map from the packed
// uint64 form of each tile (see patternBits) to its tile number. The
// index is built lazily on first use — which covers both construction
// paths, BuildTileGraph and SynthesizedWire.Decode — and ok is false when
// the window does not fit in 64 bits (h*w > 64), in which case callers
// fall back to the string-keyed Index. Safe for concurrent use.
func (tg *TileGraph) BitIndex() (map[uint64]int, bool) {
	tg.bitOnce.Do(func() {
		if tg.H*tg.W > 64 {
			return
		}
		tg.bitIdx = make(map[uint64]int, len(tg.Tiles))
		for i, p := range tg.Tiles {
			tg.bitIdx[patternBits(p)] = i
		}
		tg.bitOK = true
	})
	return tg.bitIdx, tg.bitOK
}

// BuildTileGraph enumerates the tiles and edges for power k and window
// dimensions h×w. The three tile enumerations dominate synthesis time for
// large powers, so they run under ctx and a cancel aborts construction
// with the context's error.
//
// When the joint windows fit in 64 bits the whole construction is done on
// packed uint64 keys (the patternBits/BitIndex encoding): joint tiles are
// restricted to their two sub-tiles by bit extraction and resolved through
// the integer-keyed index, with no Pattern.Key string ever built for a
// joint. Larger geometries use the string-keyed path.
func BuildTileGraph(ctx context.Context, k, h, w int) (*TileGraph, error) {
	if h*(w+1) <= 64 && (h+1)*w <= 64 {
		return buildTileGraphPacked(ctx, k, h, w)
	}
	tls, err := tiles.EnumerateContext(ctx, k, h, w)
	if err != nil {
		return nil, err
	}
	tg := &TileGraph{
		K:     k,
		H:     h,
		W:     w,
		Tiles: tls,
		Index: make(map[string]int),
	}
	for i, p := range tg.Tiles {
		tg.Index[p.Key()] = i
	}
	hJoints, err := tiles.EnumerateContext(ctx, k, h, w+1)
	if err != nil {
		return nil, err
	}
	for _, joint := range hJoints {
		west, east := joint.Sub(0, 0, h, w), joint.Sub(0, 1, h, w)
		wi, ok1 := tg.Index[west.Key()]
		ei, ok2 := tg.Index[east.Key()]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: horizontal joint tile %s restricts to a non-tile", joint.Key())
		}
		tg.HEdges = append(tg.HEdges, [2]int{wi, ei})
	}
	vJoints, err := tiles.EnumerateContext(ctx, k, h+1, w)
	if err != nil {
		return nil, err
	}
	for _, joint := range vJoints {
		north, south := joint.Sub(0, 0, h, w), joint.Sub(1, 0, h, w)
		ni, ok1 := tg.Index[north.Key()]
		si, ok2 := tg.Index[south.Key()]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: vertical joint tile %s restricts to a non-tile", joint.Key())
		}
		tg.VEdges = append(tg.VEdges, [2]int{si, ni})
	}
	return tg, nil
}

// unpackPattern expands a packed uint64 window key back into a Pattern.
func unpackPattern(key uint64, h, w int) tiles.Pattern {
	bits := make([]bool, h*w)
	for i := range bits {
		bits[i] = key&(1<<uint(i)) != 0
	}
	return tiles.Pattern{H: h, W: w, Bits: bits}
}

// buildTileGraphPacked is the uint64-keyed construction used when every
// joint window fits a packed key.
func buildTileGraphPacked(ctx context.Context, k, h, w int) (*TileGraph, error) {
	keys, err := tiles.EnumeratePacked(ctx, k, h, w)
	if err != nil {
		return nil, err
	}
	tg := &TileGraph{
		K:      k,
		H:      h,
		W:      w,
		Tiles:  make([]tiles.Pattern, len(keys)),
		Index:  make(map[string]int, len(keys)),
		bitIdx: make(map[uint64]int, len(keys)),
		bitOK:  true,
	}
	tg.bitOnce.Do(func() {}) // the lazy index is pre-built
	for i, key := range keys {
		tg.Tiles[i] = unpackPattern(key, h, w)
		tg.Index[tg.Tiles[i].Key()] = i
		tg.bitIdx[key] = i
	}
	hJoints, err := tiles.EnumeratePacked(ctx, k, h, w+1)
	if err != nil {
		return nil, err
	}
	rowMask := uint64(1)<<uint(w) - 1
	jointRowMask := uint64(1)<<uint(w+1) - 1
	for _, joint := range hJoints {
		var west, east uint64
		for r := 0; r < h; r++ {
			row := joint >> uint(r*(w+1)) & jointRowMask
			west |= (row & rowMask) << uint(r*w)
			east |= (row >> 1) << uint(r*w)
		}
		wi, ok1 := tg.bitIdx[west]
		ei, ok2 := tg.bitIdx[east]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: horizontal joint tile %s restricts to a non-tile", unpackPattern(joint, h, w+1).Key())
		}
		tg.HEdges = append(tg.HEdges, [2]int{wi, ei})
	}
	vJoints, err := tiles.EnumeratePacked(ctx, k, h+1, w)
	if err != nil {
		return nil, err
	}
	winMask := uint64(1)<<uint(h*w) - 1
	for _, joint := range vJoints {
		north := joint & winMask
		south := joint >> uint(w)
		ni, ok1 := tg.bitIdx[north]
		si, ok2 := tg.bitIdx[south]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: vertical joint tile %s restricts to a non-tile", unpackPattern(joint, h+1, w).Key())
		}
		tg.VEdges = append(tg.VEdges, [2]int{si, ni})
	}
	return tg, nil
}

// NumTiles returns the number of tiles (nodes of H).
func (tg *TileGraph) NumTiles() int { return len(tg.Tiles) }
