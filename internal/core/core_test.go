package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"lclgrid/internal/coloring"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
	"lclgrid/internal/tiles"
)

func TestBuildTileGraphK1(t *testing.T) {
	tg, err := BuildTileGraph(context.Background(), 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tg.NumTiles() != 16 {
		t.Fatalf("tiles = %d, want 16", tg.NumTiles())
	}
	if len(tg.HEdges) != tiles.Count(1, 3, 3) {
		t.Errorf("HEdges = %d, want %d", len(tg.HEdges), tiles.Count(1, 3, 3))
	}
	if len(tg.VEdges) != tiles.Count(1, 4, 2) {
		t.Errorf("VEdges = %d, want %d", len(tg.VEdges), tiles.Count(1, 4, 2))
	}
}

func TestDefaultWindow(t *testing.T) {
	if h, w := DefaultWindow(1); h != 3 || w != 2 {
		t.Errorf("k=1 window = %dx%d, want 3x2", h, w)
	}
	if h, w := DefaultWindow(3); h != 7 || w != 5 {
		t.Errorf("k=3 window = %dx%d, want 7x5", h, w)
	}
}

// TestSynthesize4ColouringMatchesPaper reproduces the central §7 numbers:
// 4-colouring synthesis fails for k = 1 and k = 2 and succeeds for k = 3
// with 7×5 windows over exactly 2079 tiles.
func TestSynthesize4ColouringMatchesPaper(t *testing.T) {
	p := lcl.VertexColoring(4, 2)
	if _, err := Synthesize(context.Background(), p, 1, 3, 2); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("k=1: err = %v, want ErrUnsatisfiable", err)
	}
	if _, err := Synthesize(context.Background(), p, 2, 5, 3); !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("k=2: err = %v, want ErrUnsatisfiable", err)
	}
	alg, err := Synthesize(context.Background(), p, 3, 7, 5)
	if err != nil {
		t.Fatalf("k=3: %v", err)
	}
	if alg.Graph.NumTiles() != 2079 {
		t.Errorf("k=3 tile count = %d, paper says 2079", alg.Graph.NumTiles())
	}
}

func TestSynthesized4ColouringRuns(t *testing.T) {
	p := lcl.VertexColoring(4, 2)
	alg, err := Synthesize(context.Background(), p, 3, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if alg.MinTorusSide() > 28 {
		t.Fatalf("MinTorusSide = %d, expected <= 28", alg.MinTorusSide())
	}
	for _, n := range []int{28, 31} {
		g := grid.Square(n)
		for _, seed := range []int64{1, 2} {
			out, rounds, err := alg.Run(g, local.PermutedIDs(g.N(), seed))
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := p.Verify(g, out); err != nil {
				t.Fatalf("n=%d seed=%d: invalid 4-colouring: %v", n, seed, err)
			}
			if rounds.Total() <= 0 {
				t.Error("rounds not accounted")
			}
		}
	}
}

// TestSynthesizeOrientation134 reproduces Lemma 23: {1,3,4}-orientation
// is synthesizable with k = 1.
func TestSynthesizeOrientation134(t *testing.T) {
	op := lcl.XOrientation([]int{1, 3, 4}, 2)
	alg, err := Synthesize(context.Background(), op.Problem, 1, 3, 3)
	if err != nil {
		t.Fatalf("k=1: %v", err)
	}
	g := grid.Square(16)
	out, _, err := alg.Run(g, local.PermutedIDs(g.N(), 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Verify(g, out); err != nil {
		t.Fatalf("invalid SFT labelling: %v", err)
	}
	o := lcl.OrientationFromLabels(op, g, out)
	if err := o.VerifyX([]int{1, 3, 4}); err != nil {
		t.Fatalf("decoded orientation invalid: %v", err)
	}
}

// TestSynthesizeMIS shows the oracle also covers the classic MIS problem
// at k = 1 (anchors themselves are a valid solution).
func TestSynthesizeMIS(t *testing.T) {
	mp := lcl.MIS(2)
	alg, err := Synthesize(context.Background(), mp.Problem, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.Square(14)
	out, _, err := alg.Run(g, local.PermutedIDs(g.N(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Verify(g, out); err != nil {
		t.Fatalf("invalid labelling: %v", err)
	}
	set := lcl.SetFromMISLabels(mp, out)
	if err := coloring.IsMIS(g, set); err != nil {
		t.Fatalf("decoded set is not an MIS: %v", err)
	}
}

func TestSynthesize3ColouringFails(t *testing.T) {
	p := lcl.VertexColoring(3, 2)
	for k := 1; k <= 2; k++ {
		h, w := DefaultWindow(k)
		if _, err := Synthesize(context.Background(), p, k, h, w); !errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("k=%d: err = %v, want ErrUnsatisfiable", k, err)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	p := lcl.VertexColoring(5, 2)
	a1, err1 := Synthesize(context.Background(), p, 1, 3, 2)
	a2, err2 := Synthesize(context.Background(), p, 1, 3, 2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a1.Table {
		if a1.Table[i] != a2.Table[i] {
			t.Fatal("synthesis is not deterministic")
		}
	}
}

func TestSynthesizeRejectsNon2D(t *testing.T) {
	if _, err := Synthesize(context.Background(), lcl.VertexColoring(3, 1), 1, 3, 2); err == nil {
		t.Error("expected dimension error")
	}
}

func TestRunRejectsSmallTorus(t *testing.T) {
	p := lcl.VertexColoring(5, 2)
	alg, err := Synthesize(context.Background(), p, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.Square(6)
	if _, _, err := alg.Run(g, local.SequentialIDs(g.N())); err == nil {
		t.Error("expected error on too-small torus")
	}
}

func TestSolveGlobalColourings(t *testing.T) {
	// 2-colouring: solvable iff n even (global problem).
	if _, ok, err := SolveGlobal(context.Background(), lcl.VertexColoring(2, 2), grid.Square(5)); ok || err != nil {
		t.Errorf("2-colouring on odd torus should be unsolvable (ok=%v err=%v)", ok, err)
	}
	g := grid.Square(6)
	sol, ok, err := SolveGlobal(context.Background(), lcl.VertexColoring(2, 2), g)
	if !ok || err != nil {
		t.Fatalf("2-colouring on even torus should be solvable (err=%v)", err)
	}
	if err := lcl.VertexColoring(2, 2).Verify(g, sol); err != nil {
		t.Fatal(err)
	}
	// 3-colouring solvable on 7×7 (global in time, but solutions exist).
	g7 := grid.Square(7)
	sol, ok, err = SolveGlobal(context.Background(), lcl.VertexColoring(3, 2), g7)
	if !ok || err != nil {
		t.Fatalf("3-colouring on 7×7 should be solvable (err=%v)", err)
	}
	if err := lcl.VertexColoring(3, 2).Verify(g7, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSolveGlobalEdgeColouringParity(t *testing.T) {
	// Thm 21: no edge 2d-colouring for odd n.
	if _, ok, err := SolveGlobal(context.Background(), lcl.EdgeColoring(4, 2).Problem, grid.Square(3)); ok || err != nil {
		t.Errorf("edge 4-colouring on odd torus should be unsolvable (ok=%v err=%v)", ok, err)
	}
	g := grid.Square(4)
	ep := lcl.EdgeColoring(4, 2)
	sol, ok, err := SolveGlobal(context.Background(), ep.Problem, g)
	if !ok || err != nil {
		t.Fatalf("edge 4-colouring on even torus should be solvable (err=%v)", err)
	}
	if err := ep.Verify(g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSolveGlobalOrientationParity(t *testing.T) {
	// Lemma 24: no {1,3}-orientation for odd n.
	if _, ok, err := SolveGlobal(context.Background(), lcl.XOrientation([]int{1, 3}, 2).Problem, grid.Square(3)); ok || err != nil {
		t.Errorf("{1,3}-orientation on odd torus should be unsolvable (ok=%v err=%v)", ok, err)
	}
}

func TestClassifyOracle(t *testing.T) {
	if res := ClassifyOracle(context.Background(), lcl.IndependentSet(2), 1); res.Class != ClassO1 {
		t.Errorf("independent set class = %v, want O(1)", res.Class)
	}
	if res := ClassifyOracle(context.Background(), lcl.XOrientation([]int{2}, 2).Problem, 1); res.Class != ClassO1 {
		t.Errorf("X={2} class = %v, want O(1)", res.Class)
	}
	res := ClassifyOracle(context.Background(), lcl.VertexColoring(5, 2), 1)
	if res.Class != ClassLogStar || res.Alg == nil {
		t.Errorf("5-colouring class = %v, want Θ(log* n)", res.Class)
	}
	res = ClassifyOracle(context.Background(), lcl.VertexColoring(3, 2), 2)
	if res.Class != ClassUnknown {
		t.Errorf("3-colouring class = %v, want unknown", res.Class)
	}
	if len(res.Attempts) == 0 {
		t.Error("expected recorded attempts")
	}
}

// TestSynthesizeCancelled checks the ctx plumbing end to end at the core
// layer: a pre-cancelled context aborts before the SAT search, and a
// context cancelled mid-search aborts an in-flight synthesis at the next
// checkpoint instead of running to completion.
func TestSynthesizeCancelled(t *testing.T) {
	p := lcl.VertexColoring(4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Synthesize(ctx, p, 3, 7, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Mid-flight: 3-colouring at k=4 is a multi-second UNSAT search; a
	// 20ms deadline must abort it long before the search would finish.
	ctx, cancel = context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Synthesize(ctx, lcl.VertexColoring(3, 2), 4, 9, 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline: err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancel took %v, checkpoints are not being honoured", elapsed)
	}
}

func TestClassTextRoundTrip(t *testing.T) {
	for _, c := range []Class{ClassUnknown, ClassO1, ClassLogStar, ClassGlobal} {
		b, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Class
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != c {
			t.Errorf("class %v round-tripped to %v via %q", c, back, b)
		}
	}
	var c Class
	if err := c.UnmarshalText([]byte("nope")); err == nil {
		t.Error("unknown token must not unmarshal")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassO1: "O(1)", ClassLogStar: "Θ(log* n)", ClassGlobal: "Θ(n)",
	} {
		if c.String() != want {
			t.Errorf("String(%d) = %s", int(c), c)
		}
	}
}

func TestDiameter(t *testing.T) {
	if Diameter(grid.Square(8)) != 8 {
		t.Error("8×8 diameter should be 8")
	}
	if Diameter(grid.Square(7)) != 6 {
		t.Error("7×7 diameter should be 6")
	}
	if Diameter(grid.MustNew(5, 9, 4)) != 2+4+2 {
		t.Error("3-D diameter wrong")
	}
}

func TestSolveGlobalWithRounds(t *testing.T) {
	g := grid.Square(6)
	_, ok, rounds, err := SolveGlobalWithRounds(context.Background(), lcl.VertexColoring(3, 2), g)
	if !ok || err != nil || rounds.Total() != Diameter(g) {
		t.Errorf("rounds = %d, want %d", rounds.Total(), Diameter(g))
	}
}

func TestGatherRadius(t *testing.T) {
	alg := &Synthesized{H: 7, W: 5, OffR: 3, OffC: 2}
	if alg.GatherRadius() != 3+2 {
		t.Errorf("GatherRadius = %d, want 5", alg.GatherRadius())
	}
}

// gatedSynth builds a SynthesizeFunc for the racing-oracle tests: the
// winner shape returns a real synthesized table after winnerDelay, every
// other shape blocks until its context is cancelled. Fully deterministic:
// the loser can only ever end as an abort.
func gatedSynth(t *testing.T, winH, winW int, winnerDelay time.Duration) SynthesizeFunc {
	t.Helper()
	real, err := Synthesize(context.Background(), lcl.VertexColoring(5, 2), 1, winH, winW)
	if err != nil {
		t.Fatalf("building the winner table: %v", err)
	}
	return func(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error) {
		if h == winH && w == winW {
			select {
			case <-time.After(winnerDelay):
				return real, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

// TestClassifyOracleRaceCancelsLoser: when one window of a power admits
// a table, the race cancels the other candidate — the blocked loser is
// released by the derived context (the test would deadlock otherwise)
// and recorded as an aborted attempt, never as a refuted shape.
func TestClassifyOracleRaceCancelsLoser(t *testing.T) {
	synth := gatedSynth(t, 3, 3, 10*time.Millisecond)
	res := ClassifyOracleRace(context.Background(), synth, nil, lcl.VertexColoring(5, 2), 1, 2)
	if res.Err != nil {
		t.Fatalf("oracle aborted: %v", res.Err)
	}
	if res.Class != ClassLogStar || res.Alg == nil || res.Alg.H != 3 || res.Alg.W != 3 {
		t.Fatalf("class %v alg %+v, want Θ(log* n) via the 3×3 winner", res.Class, res.Alg)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("attempts = %+v, want both k=1 windows recorded", res.Attempts)
	}
	byShape := map[[2]int]Attempt{}
	for _, a := range res.Attempts {
		byShape[[2]int{a.H, a.W}] = a
	}
	if a := byShape[[2]int{3, 3}]; !a.Success || a.Aborted {
		t.Errorf("winner attempt = %+v, want Success without Aborted", a)
	}
	if a := byShape[[2]int{3, 2}]; a.Success || !a.Aborted {
		t.Errorf("loser attempt = %+v, want Aborted without Success", a)
	}
}

// TestClassifyOracleRaceSequential: workers = 1 preserves the historic
// strictly ordered sweep — the first window of the schedule wins before
// the second is ever tried.
func TestClassifyOracleRaceSequential(t *testing.T) {
	calls := 0
	synth := func(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error) {
		calls++
		return Synthesize(ctx, p, k, h, w)
	}
	res := ClassifyOracleRace(context.Background(), synth, nil, lcl.VertexColoring(5, 2), 1, 1)
	if res.Class != ClassLogStar || res.Alg == nil {
		t.Fatalf("class = %v, want Θ(log* n)", res.Class)
	}
	if res.Alg.H != 3 || res.Alg.W != 2 {
		t.Errorf("sequential winner = %dx%d, want the schedule-first 3x2 window", res.Alg.H, res.Alg.W)
	}
	if calls != 1 {
		t.Errorf("sequential sweep made %d synth calls before succeeding, want 1", calls)
	}
}

// TestClassifyOracleRaceParentCancel: a parent cancellation surfaces in
// OracleResult.Err, not as a classification.
func TestClassifyOracleRaceParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	synth := func(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error) {
		cancel() // the sweep dies under its first synthesis
		<-ctx.Done()
		return nil, ctx.Err()
	}
	res := ClassifyOracleRace(ctx, synth, nil, lcl.VertexColoring(5, 2), 1, 2)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("res.Err = %v, want context.Canceled", res.Err)
	}
	if res.Class != ClassUnknown {
		t.Errorf("aborted oracle claims class %v", res.Class)
	}
}

// TestClassifyOracleProbe: probe-positive shapes are resolved through
// the synth func synchronously (cache replay) before any race is
// launched, so a warm re-classification of a known shape never starts
// speculative work.
func TestClassifyOracleProbe(t *testing.T) {
	real, err := Synthesize(context.Background(), lcl.VertexColoring(5, 2), 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var raced bool
	synth := func(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error) {
		if h == 3 && w == 2 {
			return real, nil // the "cached" replay
		}
		raced = true
		return nil, ErrUnsatisfiable
	}
	probe := func(k, h, w int) bool { return h == 3 && w == 2 }
	res := ClassifyOracleRace(context.Background(), synth, probe, lcl.VertexColoring(5, 2), 1, 2)
	if res.Class != ClassLogStar || res.Alg == nil {
		t.Fatalf("class = %v, want Θ(log* n) from the probed shape", res.Class)
	}
	if raced {
		t.Error("probe-positive success still launched the unknown candidate")
	}
}
