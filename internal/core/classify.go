package core

import (
	"context"
	"errors"
	"fmt"

	"lclgrid/internal/lcl"
)

// Class is a complexity class of LCL problems on toroidal grids. The
// paper's classification theorem shows these three classes are exhaustive
// for deterministic algorithms; deciding between LogStar and Global is
// undecidable in general (§6), so the oracle below is one-sided.
type Class int

const (
	// ClassUnknown means bounded synthesis failed: the problem is
	// conjectured global, but no proof is produced (§7's one-sided
	// oracle semantics).
	ClassUnknown Class = iota
	// ClassO1 marks trivial problems: a constant label tiles the grid.
	ClassO1
	// ClassLogStar marks problems with a synthesized normal-form
	// algorithm, hence complexity Θ(log* n).
	ClassLogStar
	// ClassGlobal marks problems proven global by external arguments
	// (e.g. the §9/§11 lower bounds or unsolvability for infinitely
	// many n); the oracle itself never returns it.
	ClassGlobal
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassO1:
		return "O(1)"
	case ClassLogStar:
		return "Θ(log* n)"
	case ClassGlobal:
		return "Θ(n)"
	default:
		return "unknown (conjectured Θ(n))"
	}
}

// classTokens are the stable ASCII wire names of the classes, used by the
// JSON request/response encoding (MarshalText/UnmarshalText).
var classTokens = map[Class]string{
	ClassUnknown: "unknown",
	ClassO1:      "O(1)",
	ClassLogStar: "logstar",
	ClassGlobal:  "global",
}

// MarshalText encodes the class as its stable wire token ("unknown",
// "O(1)", "logstar", "global"), making Class round-trippable through
// encoding/json.
func (c Class) MarshalText() ([]byte, error) {
	tok, ok := classTokens[c]
	if !ok {
		return nil, fmt.Errorf("core: cannot marshal invalid class %d", int(c))
	}
	return []byte(tok), nil
}

// UnmarshalText decodes a wire token produced by MarshalText.
func (c *Class) UnmarshalText(b []byte) error {
	for cls, tok := range classTokens {
		if tok == string(b) {
			*c = cls
			return nil
		}
	}
	return fmt.Errorf("core: unknown class token %q", b)
}

// Attempt records one synthesis attempt made by the oracle.
type Attempt struct {
	K, H, W  int
	NumTiles int
	Success  bool
}

// OracleResult is the outcome of ClassifyOracle.
type OracleResult struct {
	Class    Class
	Alg      *Synthesized // non-nil iff Class == ClassLogStar
	Attempts []Attempt
	// Err is non-nil when the oracle was aborted by its context before the
	// shape schedule completed; Class is then ClassUnknown and must not be
	// interpreted as a classification.
	Err error
}

// SynthesizeFunc is the synthesis dependency of the oracle; callers with
// a cache (lclgrid.Engine) substitute their memoised variant.
type SynthesizeFunc func(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error)

// ClassifyOracle implements the §7 synthesis-as-oracle procedure: trivial
// problems are detected exactly (constant solutions are decidable on
// toroidal grids); otherwise normal-form synthesis is attempted for
// k = 1..maxK with the default and square window shapes. If synthesis
// succeeds the problem is Θ(log* n) and an optimal algorithm is returned;
// if all attempts fail the result is ClassUnknown — the caller may
// conjecture the problem global, but (Thm 3) no terminating procedure can
// confirm this in general. Cancelling ctx aborts the schedule; the
// context's error is recorded in OracleResult.Err.
func ClassifyOracle(ctx context.Context, p *lcl.Problem, maxK int) OracleResult {
	return ClassifyOracleWith(ctx, Synthesize, p, maxK)
}

// ClassifyOracleWith is ClassifyOracle with the synthesis step supplied
// by the caller; the oracle's shape schedule and one-sided semantics are
// identical.
func ClassifyOracleWith(ctx context.Context, synth SynthesizeFunc, p *lcl.Problem, maxK int) OracleResult {
	if len(p.ConstantSolutions()) > 0 {
		return OracleResult{Class: ClassO1}
	}
	res := OracleResult{Class: ClassUnknown}
	if p.Dims() != 2 {
		// Normal-form synthesis is implemented for 2-dimensional problems
		// only; for other dimensions the oracle simply has no attempts to
		// make and the classification stays open (callers fall back to
		// the Θ(n) baseline).
		return res
	}
	for k := 1; k <= maxK; k++ {
		for _, win := range windowsForK(k) {
			alg, err := synth(ctx, p, k, win[0], win[1])
			att := Attempt{K: k, H: win[0], W: win[1], Success: err == nil}
			if alg != nil {
				att.NumTiles = alg.Graph.NumTiles()
			}
			res.Attempts = append(res.Attempts, att)
			if err == nil {
				res.Class = ClassLogStar
				res.Alg = alg
				return res
			}
			if IsContextError(err) {
				res.Err = err
				return res
			}
			if !errors.Is(err, ErrUnsatisfiable) {
				// Construction errors are bugs, not UNSAT results.
				panic(fmt.Sprintf("core: synthesis failed structurally: %v", err))
			}
		}
	}
	return res
}

// windowsForK returns the window shapes the oracle tries for a given
// power: the paper's default shape and the square shape.
func windowsForK(k int) [][2]int {
	h, w := DefaultWindow(k)
	if h == 2*k+1 && w == 2*k+1 {
		return [][2]int{{h, w}}
	}
	return [][2]int{{h, w}, {2*k + 1, 2*k + 1}}
}
