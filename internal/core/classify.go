package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"lclgrid/internal/lcl"
)

// Class is a complexity class of LCL problems on toroidal grids. The
// paper's classification theorem shows these three classes are exhaustive
// for deterministic algorithms; deciding between LogStar and Global is
// undecidable in general (§6), so the oracle below is one-sided.
type Class int

const (
	// ClassUnknown means bounded synthesis failed: the problem is
	// conjectured global, but no proof is produced (§7's one-sided
	// oracle semantics).
	ClassUnknown Class = iota
	// ClassO1 marks trivial problems: a constant label tiles the grid.
	ClassO1
	// ClassLogStar marks problems with a synthesized normal-form
	// algorithm, hence complexity Θ(log* n).
	ClassLogStar
	// ClassGlobal marks problems proven global by external arguments
	// (e.g. the §9/§11 lower bounds or unsolvability for infinitely
	// many n); the oracle itself never returns it.
	ClassGlobal
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassO1:
		return "O(1)"
	case ClassLogStar:
		return "Θ(log* n)"
	case ClassGlobal:
		return "Θ(n)"
	default:
		return "unknown (conjectured Θ(n))"
	}
}

// classTokens are the stable ASCII wire names of the classes, used by the
// JSON request/response encoding (MarshalText/UnmarshalText).
var classTokens = map[Class]string{
	ClassUnknown: "unknown",
	ClassO1:      "O(1)",
	ClassLogStar: "logstar",
	ClassGlobal:  "global",
}

// MarshalText encodes the class as its stable wire token ("unknown",
// "O(1)", "logstar", "global"), making Class round-trippable through
// encoding/json.
func (c Class) MarshalText() ([]byte, error) {
	tok, ok := classTokens[c]
	if !ok {
		return nil, fmt.Errorf("core: cannot marshal invalid class %d", int(c))
	}
	return []byte(tok), nil
}

// UnmarshalText decodes a wire token produced by MarshalText.
func (c *Class) UnmarshalText(b []byte) error {
	for cls, tok := range classTokens {
		if tok == string(b) {
			*c = cls
			return nil
		}
	}
	return fmt.Errorf("core: unknown class token %q", b)
}

// Attempt records one synthesis attempt made by the oracle.
type Attempt struct {
	K, H, W  int
	NumTiles int
	Success  bool
	// Aborted marks an attempt cancelled by the racing sweep: another
	// window of the same power found a table first, so this candidate's
	// search was stopped without an answer. An aborted attempt proves
	// nothing about its shape.
	Aborted bool
}

// OracleResult is the outcome of ClassifyOracle.
type OracleResult struct {
	Class    Class
	Alg      *Synthesized // non-nil iff Class == ClassLogStar
	Attempts []Attempt
	// Err is non-nil when the oracle was aborted by its context before the
	// shape schedule completed; Class is then ClassUnknown and must not be
	// interpreted as a classification.
	Err error
}

// SynthesizeFunc is the synthesis dependency of the oracle; callers with
// a cache (lclgrid.Engine) substitute their memoised variant.
type SynthesizeFunc func(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error)

// CacheProbe reports whether a completed synthesis outcome for shape
// (k, h, w) is already cached. The racing oracle resolves probe-positive
// windows synchronously first — those are cheap cache lookups through the
// synth func — so a warm re-classification never launches (and then
// aborts) speculative SAT work for shapes whose answer is already known.
type CacheProbe func(k, h, w int) bool

// ClassifyOracle implements the §7 synthesis-as-oracle procedure: trivial
// problems are detected exactly (constant solutions are decidable on
// toroidal grids); otherwise normal-form synthesis is attempted for
// k = 1..maxK with the default and square window shapes. If synthesis
// succeeds the problem is Θ(log* n) and an optimal algorithm is returned;
// if all attempts fail the result is ClassUnknown — the caller may
// conjecture the problem global, but (Thm 3) no terminating procedure can
// confirm this in general. Cancelling ctx aborts the schedule; the
// context's error is recorded in OracleResult.Err.
func ClassifyOracle(ctx context.Context, p *lcl.Problem, maxK int) OracleResult {
	return ClassifyOracleWith(ctx, Synthesize, p, maxK)
}

// ClassifyOracleWith is ClassifyOracle with the synthesis step supplied
// by the caller. The per-k window candidates race concurrently (up to
// GOMAXPROCS at a time); the one-sided semantics and the
// smallest-power-first schedule are identical to the sequential oracle —
// racing happens only between windows of the same power, so the returned
// algorithm always has the smallest k that admits a table.
func ClassifyOracleWith(ctx context.Context, synth SynthesizeFunc, p *lcl.Problem, maxK int) OracleResult {
	return ClassifyOracleRace(ctx, synth, nil, p, maxK, runtime.GOMAXPROCS(0))
}

// ClassifyOracleRace is the full-control variant of the oracle: probe
// (may be nil) short-circuits windows whose outcome is already cached,
// and workers bounds how many window candidates synthesize concurrently
// within one power (1 selects the historic strictly sequential sweep).
// When a window admits a table, the remaining candidates of that power
// are cancelled through a derived context and recorded with
// Attempt.Aborted set.
func ClassifyOracleRace(ctx context.Context, synth SynthesizeFunc, probe CacheProbe, p *lcl.Problem, maxK, workers int) OracleResult {
	if len(p.ConstantSolutions()) > 0 {
		return OracleResult{Class: ClassO1}
	}
	res := OracleResult{Class: ClassUnknown}
	if p.Dims() != 2 {
		// Normal-form synthesis is implemented for 2-dimensional problems
		// only; for other dimensions the oracle simply has no attempts to
		// make and the classification stays open (callers fall back to
		// the Θ(n) baseline).
		return res
	}
	if workers < 1 {
		workers = 1
	}
	for k := 1; k <= maxK; k++ {
		// Cached windows first: their outcomes replay from the cache with
		// no SAT work, so a cached success ends the sweep before any
		// speculative synthesis is launched.
		var unknown [][2]int
		for _, win := range windowsForK(k) {
			if probe == nil || !probe(k, win[0], win[1]) {
				unknown = append(unknown, win)
				continue
			}
			alg, err := synth(ctx, p, k, win[0], win[1])
			if done := res.recordAttempt(k, win, alg, err); done {
				return res
			}
		}
		alg, err := raceWindows(ctx, synth, p, k, unknown, workers, &res)
		if err != nil {
			res.Err = err
			return res
		}
		if alg != nil {
			res.Class = ClassLogStar
			res.Alg = alg
			return res
		}
	}
	return res
}

// recordAttempt appends one completed attempt and reports whether the
// sweep is finished (success or abort); structural failures panic, as
// they are bugs rather than UNSAT results.
func (res *OracleResult) recordAttempt(k int, win [2]int, alg *Synthesized, err error) bool {
	att := Attempt{K: k, H: win[0], W: win[1], Success: err == nil}
	if alg != nil {
		att.NumTiles = alg.Graph.NumTiles()
	}
	res.Attempts = append(res.Attempts, att)
	switch {
	case err == nil:
		res.Class = ClassLogStar
		res.Alg = alg
		return true
	case IsContextError(err):
		res.Err = err
		return true
	case !errors.Is(err, ErrUnsatisfiable):
		// Construction errors are bugs, not UNSAT results.
		panic(fmt.Sprintf("core: synthesis failed structurally: %v", err))
	}
	return false
}

// raceWindows synthesizes the window candidates of one power
// concurrently (bounded by workers) under a derived context: the first
// success cancels the rest. It appends every candidate's attempt record
// to res in schedule order and returns the winning algorithm (nil when
// every candidate completed UNSAT) or the parent context's error.
func raceWindows(ctx context.Context, synth SynthesizeFunc, p *lcl.Problem, k int, wins [][2]int, workers int, res *OracleResult) (*Synthesized, error) {
	if len(wins) == 0 {
		return nil, nil
	}
	if len(wins) == 1 || workers == 1 {
		// Nothing to race: keep the exact sequential schedule (and its
		// deterministic attempt order).
		for _, win := range wins {
			alg, err := synth(ctx, p, k, win[0], win[1])
			if done := res.recordAttempt(k, win, alg, err); done {
				return res.Alg, res.Err
			}
		}
		return nil, nil
	}

	type outcome struct {
		alg      *Synthesized
		err      error
		panicked any
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	sem := make(chan struct{}, workers)
	outs := make([]outcome, len(wins))
	var winner atomic.Int32
	winner.Store(-1)
	var wg sync.WaitGroup
	for i := range wins {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-raceCtx.Done():
				// Cancelled while queued: this candidate never ran.
				outs[i].err = raceCtx.Err()
				return
			}
			// A panic below (user-supplied problem callbacks run inside
			// the synthesis) must reach the oracle's caller, not kill the
			// process from a bare goroutine.
			defer func() {
				if r := recover(); r != nil {
					outs[i].panicked = r
				}
			}()
			alg, err := synth(raceCtx, p, k, wins[i][0], wins[i][1])
			outs[i].alg, outs[i].err = alg, err
			if err == nil {
				winner.CompareAndSwap(-1, int32(i))
				cancel() // first success stops the remaining candidates
			}
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if outs[i].panicked != nil {
			panic(outs[i].panicked)
		}
	}
	// Record every candidate in schedule order. A candidate that lost the
	// winner race but still completed successfully keeps Success — its
	// table is real (and cached by memoised synth funcs) even though the
	// oracle returns the race winner's algorithm.
	w := winner.Load()
	for i, win := range wins {
		att := Attempt{K: k, H: win[0], W: win[1]}
		switch {
		case outs[i].err == nil && outs[i].alg != nil:
			att.Success = true
			att.NumTiles = outs[i].alg.Graph.NumTiles()
		case IsContextError(outs[i].err):
			att.Aborted = true
		}
		res.Attempts = append(res.Attempts, att)
	}
	if w >= 0 {
		return outs[w].alg, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// No winner and no abort: every candidate ran to completion, so any
	// non-UNSAT failure is structural.
	for i := range outs {
		if err := outs[i].err; err != nil && !errors.Is(err, ErrUnsatisfiable) && !IsContextError(err) {
			panic(fmt.Sprintf("core: synthesis failed structurally: %v", err))
		}
	}
	return nil, nil
}

// OracleSchedule returns the (k, h, w) shapes the oracle tries through
// maxK, in schedule order — the planner uses it to explain what a
// classification would synthesize without running anything.
func OracleSchedule(maxK int) [][3]int {
	var out [][3]int
	for k := 1; k <= maxK; k++ {
		for _, win := range windowsForK(k) {
			out = append(out, [3]int{k, win[0], win[1]})
		}
	}
	return out
}

// windowsForK returns the window shapes the oracle tries for a given
// power: the paper's default shape and the square shape.
func windowsForK(k int) [][2]int {
	h, w := DefaultWindow(k)
	if h == 2*k+1 && w == 2*k+1 {
		return [][2]int{{h, w}}
	}
	return [][2]int{{h, w}, {2*k + 1, 2*k + 1}}
}
