package core

import (
	"context"

	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
	"lclgrid/internal/sat"
)

// Diameter returns the diameter of the torus (the number of rounds a
// gather-everything algorithm needs): the sum over dimensions of
// floor(side/2) for the L1 metric.
func Diameter(t *grid.Torus) int {
	d := 0
	for i := 0; i < t.Dim(); i++ {
		d += t.Side(i) / 2
	}
	return d
}

// SolveGlobal decides whether the LCL problem p is solvable on the torus
// t and returns a solution if so. It encodes the tiling directly as SAT
// (one variable per node and label) — this is the Θ(n) brute-force
// baseline of §7 ("gather the entire input at a single node and solve the
// problem globally") as well as the (un)solvability certificate generator
// used for global problems such as 2-colouring on odd tori. A cancelled
// ctx aborts the SAT search and surfaces the context's error; in that
// case the solvability answer is meaningless and must be ignored.
func SolveGlobal(ctx context.Context, p *lcl.Problem, t *grid.Torus) ([]int, bool, error) {
	n, kk := t.N(), p.K()
	s := sat.NewSolver(n * kk)
	v := func(node, a int) int { return node*kk + a }
	for node := 0; node < n; node++ {
		lits := make([]sat.Lit, 0, kk)
		for a := 0; a < kk; a++ {
			if p.NodeOK(a) {
				lits = append(lits, sat.Pos(v(node, a)))
			} else {
				s.AddClause(sat.Neg(v(node, a)))
			}
		}
		s.AddClause(lits...)
	}
	for node := 0; node < n; node++ {
		for dim := 0; dim < t.Dim(); dim++ {
			u := t.Move(node, dim, 1)
			for a := 0; a < kk; a++ {
				if !p.NodeOK(a) {
					continue
				}
				for b := 0; b < kk; b++ {
					if !p.NodeOK(b) {
						continue
					}
					if !p.Allowed(dim, a, b) {
						s.AddClause(sat.Neg(v(node, a)), sat.Neg(v(u, b)))
					}
				}
			}
		}
	}
	ok, err := s.SolveContext(ctx)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	out := make([]int, n)
	for node := 0; node < n; node++ {
		out[node] = -1
		for a := 0; a < kk; a++ {
			if p.NodeOK(a) && s.Value(v(node, a)) {
				out[node] = a
				break
			}
		}
	}
	return out, true, nil
}

// SolveGlobalWithRounds is SolveGlobal with the round accounting of the
// brute-force LOCAL algorithm it models: every node gathers the whole
// labelled torus (Diameter rounds) and deterministically solves the
// tiling, so all nodes agree on the same solution.
func SolveGlobalWithRounds(ctx context.Context, p *lcl.Problem, t *grid.Torus) ([]int, bool, *local.Rounds, error) {
	rounds := &local.Rounds{}
	rounds.Add(Diameter(t))
	out, ok, err := SolveGlobal(ctx, p, t)
	return out, ok, rounds, err
}
