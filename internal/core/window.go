package core

import (
	"context"
	"fmt"
	"math/bits"

	"lclgrid/internal/coloring"
	"lclgrid/internal/grid"
	"lclgrid/internal/tiles"
)

// This file implements coordinate-addressed (windowed) evaluation of a
// synthesized normal form A = A' ∘ S_k: labeling an arbitrary rectangle
// of a torus without ever materialising O(n) state. It works because
// every ingredient of the normal form is a local function of node
// coordinates:
//
//   - identifiers come from a deterministic coordinate-addressable
//     assignment (AffineID), so id(v) is O(1);
//   - each Linial colour-reduction level is a function of the previous
//     level on the node's k-ball, so colour(level, v) is computable by
//     bounded recursion (the schedule is replayed with
//     coloring.LinialSchedule / coloring.LinialChoose, so values agree
//     with the full-graph LinialColor exactly);
//   - MIS membership after the colour-class sweep satisfies
//     member(v) ⇔ no power-neighbour u with colour(u) < colour(v) is a
//     member — same-coloured neighbours cannot exist under a proper
//     colouring, so the sweep order inside a colour class is irrelevant
//     and the recursion (over strictly decreasing colours) terminates;
//   - the output label is the table entry of the h×w anchor window.
//
// All recursions are memoized per evaluator, so the state is
// O(window + halo): the halo is the set of nodes outside the requested
// rectangle whose colours or membership the recursion touches, bounded
// by k·(levels + finalColours) in each direction.

// WindowStats describes the work a windowed evaluation performed; all
// counts are cumulative across LabelRect calls (and survive Reset).
type WindowStats struct {
	// WindowNodes is the number of labels produced.
	WindowNodes int `json:"window_nodes"`
	// AnchorNodes is the number of distinct nodes whose MIS membership
	// was evaluated (zero in lattice mode, where membership is a
	// closed-form test).
	AnchorNodes int `json:"anchor_nodes"`
	// ColorNodes is the number of memoized colour cells computed across
	// all Linial levels.
	ColorNodes int `json:"color_nodes"`
	// HaloNodes is the number of membership evaluations at nodes outside
	// the requested rectangle.
	HaloNodes int `json:"halo_nodes"`
	// HaloRadius is the largest L1 distance from the rectangle at which
	// a membership evaluation happened.
	HaloRadius int `json:"halo_radius"`
	// Lattice reports whether the periodic-anchor fast path served the
	// evaluation.
	Lattice bool `json:"lattice,omitempty"`
}

// splitmix64 is the SplitMix64 finalizer, used to derive the affine
// identifier parameters from a seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mulmod returns a*b mod m without overflow, for a, b < m.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi, lo, m)
	return r
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// affineParams derives the multiplier and offset of the seed's affine
// identifier permutation: a is forced coprime to n so v ↦ (a·v + b) mod n
// is a bijection.
func affineParams(n uint64, seed int64) (a, b uint64) {
	h := splitmix64(uint64(seed))
	a = h % n
	h = splitmix64(h)
	b = h % n
	if a == 0 {
		a = 1
	}
	for gcd64(a, n) != 1 {
		a++
		if a >= n {
			a = 1
		}
	}
	return a, b
}

// AffineID returns the identifier windowed evaluation assigns to node v
// of an n-node torus under the given seed: seed 0 is the sequential
// assignment v+1 (matching local.SequentialIDs), any other seed selects
// the affine permutation 1 + ((a·v + b) mod n) with a coprime to n.
// Unlike the shuffle-based PermutedIDs, the assignment is O(1) per node,
// which is what makes it usable on 10^12-node tori.
func AffineID(n int, seed int64, v int) int {
	if seed == 0 {
		return v + 1
	}
	a, b := affineParams(uint64(n), seed)
	m := uint64(n)
	return 1 + int((mulmod(a, uint64(v), m)+b)%m)
}

// AffineIDs materialises AffineID for all n nodes — for small tori only
// (equivalence tests and full-grid Run comparisons).
func AffineIDs(n int, seed int64) []int {
	ids := make([]int, n)
	if seed == 0 {
		for v := range ids {
			ids[v] = v + 1
		}
		return ids
	}
	a, b := affineParams(uint64(n), seed)
	m := uint64(n)
	for v := range ids {
		ids[v] = 1 + int((mulmod(a, uint64(v), m)+b)%m)
	}
	return ids
}

// LatticeModulus returns the period of the perfect Lee code used by the
// periodic-anchor fast path for power k: anchors sit at
// ((k+1)·x + k·y) ≡ 0 (mod 2k²+2k+1), which is an MIS of G^(k) under L1.
// The lattice is consistent with the torus wrap-around iff both sides
// are multiples of the modulus.
func LatticeModulus(k int) int { return 2*k*k + 2*k + 1 }

// WindowEvaluator labels rectangles of a torus from a cached Synthesized
// table with O(window + halo) work and memory. An evaluator is bound to
// one (algorithm, torus, seed, mode) tuple and is not safe for
// concurrent use; construction is cheap apart from the one-time Linial
// schedule derivation (sub-second even for 10^12-node tori).
type WindowEvaluator struct {
	alg     *Synthesized
	t       *grid.Torus
	seed    int64
	lattice bool
	latM    int

	// Deterministic-ID parameters (seed != 0).
	affA, affB uint64

	// Linial replay state (exact mode only).
	offs   [][]int  // ball offsets of G^(k) = power-graph neighbourhood
	levels [][2]int // (d, q) per colour-reduction level
	finalM int      // final colour-space size

	colorMemo  []map[int]int // colorMemo[l][v] = colour of v after level l+1
	memberMemo map[int]int8  // 1 in MIS, 0 not

	// Rectangle being evaluated, normalised, for halo accounting.
	rx, ry, rw, rh int

	stats WindowStats
}

// NewWindowEvaluator builds a windowed evaluator for alg on torus t.
// Seed selects the identifier assignment (see AffineID). In lattice mode
// the anchor MIS is the periodic perfect code instead of the
// identifier-driven Linial/MIS construction: a valid labeling computed
// in O(1) per node with zero halo, but a different one from full-grid
// Run, and only available when both torus sides are multiples of
// LatticeModulus(alg.K).
func NewWindowEvaluator(alg *Synthesized, t *grid.Torus, seed int64, lattice bool) (*WindowEvaluator, error) {
	if t.Dim() != 2 {
		return nil, fmt.Errorf("core: windowed evaluation runs on 2-dimensional tori, got %d dimensions", t.Dim())
	}
	if min := alg.MinTorusSide(); t.NX() < min || t.NY() < min {
		return nil, TorusTooSmallError(alg.K, alg.H, alg.W)
	}
	e := &WindowEvaluator{alg: alg, t: t, seed: seed, lattice: lattice}
	if lattice {
		e.latM = LatticeModulus(alg.K)
		if t.NX()%e.latM != 0 || t.NY()%e.latM != 0 {
			return nil, fmt.Errorf("core: lattice mode needs both torus sides divisible by %d (k=%d), got %dx%d", e.latM, alg.K, t.NX(), t.NY())
		}
		e.stats.Lattice = true
		return e, nil
	}
	if seed != 0 {
		e.affA, e.affB = affineParams(uint64(t.N()), seed)
	}
	e.offs = t.BallOffsets(alg.K, grid.L1)
	// Sides >= MinTorusSide > 2k+1, so the k-ball never self-overlaps and
	// every node of the power graph has degree len(offs) — the uniform
	// maxDeg LinialColor derives via local.MaxDegree.
	e.levels, e.finalM = coloring.LinialSchedule(t.N(), len(e.offs))
	e.Reset()
	return e, nil
}

// Reset drops the memoized colour and membership state while keeping the
// derived Linial schedule, bounding resident memory across successive
// rectangles (the streaming whole-grid export resets between bands).
// Stats are cumulative and survive a Reset.
func (e *WindowEvaluator) Reset() {
	if e.lattice {
		return
	}
	e.colorMemo = make([]map[int]int, len(e.levels))
	for i := range e.colorMemo {
		e.colorMemo[i] = make(map[int]int)
	}
	e.memberMemo = make(map[int]int8)
}

// Stats returns the cumulative work counters.
func (e *WindowEvaluator) Stats() WindowStats { return e.stats }

// Rounds returns the synchronous round count of the simulated
// distributed algorithm on this torus — identical to the Rounds total
// Synthesized.Run reports (Linial iterations plus the colour-class
// sweep, times the power-graph simulation overhead, plus the window
// gather). Lattice mode needs no symmetry breaking, only the gather.
func (e *WindowEvaluator) Rounds() int {
	if e.lattice {
		return e.alg.GatherRadius()
	}
	return (len(e.levels)+e.finalM)*e.alg.K + e.alg.GatherRadius()
}

// id returns the identifier of node v (see AffineID).
func (e *WindowEvaluator) id(v int) int {
	if e.seed == 0 {
		return v + 1
	}
	m := uint64(e.t.N())
	return 1 + int((mulmod(e.affA, uint64(v), m)+e.affB)%m)
}

// color returns node v's colour after l levels of Linial reduction
// (level 0 is the identifier). Memoized; values agree exactly with what
// the full-graph LinialColor computes because both replay the same
// schedule and the same per-node choice.
func (e *WindowEvaluator) color(l, v int) int {
	if l == 0 {
		return e.id(v)
	}
	if c, ok := e.colorMemo[l-1][v]; ok {
		return c
	}
	d, q := e.levels[l-1][0], e.levels[l-1][1]
	own := e.color(l-1, v)
	nbrs := make([]int, len(e.offs))
	for i, off := range e.offs {
		nbrs[i] = e.color(l-1, e.t.ShiftVec(v, off))
	}
	c := coloring.LinialChoose(own, nbrs, d, q)
	if c < 0 {
		panic(fmt.Sprintf("core: no Linial evaluation point at node %d (q=%d, d=%d) — colouring not proper", v, q, d))
	}
	e.colorMemo[l-1][v] = c
	e.stats.ColorNodes++
	return c
}

// member reports whether node v is an anchor. In exact mode it evaluates
// the colour-class sweep of MISFromColoring pointwise: v joins iff no
// power-neighbour with a strictly smaller final colour joined (a proper
// colouring has no same-coloured power-neighbours, and larger colours
// act in later sweep rounds, so this is the whole condition). The
// recursion is over strictly decreasing colours and therefore acyclic.
func (e *WindowEvaluator) member(v int) bool {
	if e.lattice {
		x, y := e.t.XY(v)
		return ((e.alg.K+1)*x+e.alg.K*y)%e.latM == 0
	}
	if m, ok := e.memberMemo[v]; ok {
		return m == 1
	}
	last := len(e.levels)
	cv := e.color(last, v)
	in := true
	for _, off := range e.offs {
		u := e.t.ShiftVec(v, off)
		if e.color(last, u) < cv && e.member(u) {
			in = false
			break
		}
	}
	if in {
		e.memberMemo[v] = 1
	} else {
		e.memberMemo[v] = 0
	}
	e.noteAnchor(v)
	return in
}

// noteAnchor accounts a membership evaluation against the halo counters.
func (e *WindowEvaluator) noteAnchor(v int) {
	e.stats.AnchorNodes++
	x, y := e.t.XY(v)
	dx := axisDist(x, e.rx, e.rw, e.t.NX())
	dy := axisDist(y, e.ry, e.rh, e.t.NY())
	if dx == 0 && dy == 0 {
		return
	}
	e.stats.HaloNodes++
	if d := dx + dy; d > e.stats.HaloRadius {
		e.stats.HaloRadius = d
	}
}

// axisDist returns the toroidal distance from coordinate p to the
// interval [start, start+length) on a cycle of the given side.
func axisDist(p, start, length, side int) int {
	q := ((p-start)%side + side) % side
	if q < length {
		return 0
	}
	back := q - (length - 1)
	forward := side - q
	if forward < back {
		return forward
	}
	return back
}

// LabelRect labels the w×h rectangle whose south-west origin is node
// (x0, y0): the result is row-major with labels[r*w+c] the label of node
// ((x0+c) mod NX, (y0+r) mod NY). Negative or oversized origins wrap.
// For the full-grid rectangle (0, 0, NX, NY) the result slice is indexed
// exactly like Run's label array. The context is checked once per row so
// a server deadline can stop a large window promptly.
func (e *WindowEvaluator) LabelRect(ctx context.Context, x0, y0, w, h int) ([]int, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("core: window dimensions must be positive, got %dx%d", w, h)
	}
	nx, ny := e.t.NX(), e.t.NY()
	e.rx, e.ry = ((x0%nx)+nx)%nx, ((y0%ny)+ny)%ny
	e.rw, e.rh = w, h
	if e.rw > nx {
		e.rw = nx
	}
	if e.rh > ny {
		e.rh = ny
	}
	bitIdx, bitOK := e.alg.Graph.BitIndex()
	out := make([]int, w*h)
	for r := 0; r < h; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for c := 0; c < w; c++ {
			lab, err := e.label(x0+c, y0+r, bitIdx, bitOK)
			if err != nil {
				return nil, err
			}
			out[r*w+c] = lab
		}
	}
	e.stats.WindowNodes += w * h
	return out, nil
}

// label computes the output label of the node at (x, y) by gathering its
// h×w anchor window and probing the tile table.
func (e *WindowEvaluator) label(x, y int, bitIdx map[uint64]int, bitOK bool) (int, error) {
	s := e.alg
	if bitOK {
		var key uint64
		bit := 0
		for r := 0; r < s.H; r++ {
			for c := 0; c < s.W; c++ {
				if e.member(e.t.At(x-s.OffC+c, y+s.OffR-r)) {
					key |= 1 << bit
				}
				bit++
			}
		}
		ti, ok := bitIdx[key]
		if !ok {
			return 0, notTileError(s, key, e.t.At(x, y))
		}
		return s.Table[ti], nil
	}
	win := make([]bool, s.H*s.W)
	bit := 0
	for r := 0; r < s.H; r++ {
		for c := 0; c < s.W; c++ {
			win[bit] = e.member(e.t.At(x-s.OffC+c, y+s.OffR-r))
			bit++
		}
	}
	key := (tiles.Pattern{H: s.H, W: s.W, Bits: win}).Key()
	ti, ok := s.Graph.Index[key]
	if !ok {
		return 0, fmt.Errorf("core: observed window %s at node %d is not a tile (torus too small or anchors invalid)", key, e.t.At(x, y))
	}
	return s.Table[ti], nil
}
