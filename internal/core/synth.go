package core

import (
	"context"
	"errors"
	"fmt"

	"lclgrid/internal/coloring"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
	"lclgrid/internal/sat"
	"lclgrid/internal/tiles"
)

// ErrUnsatisfiable is returned by Synthesize when no lookup table exists
// for the given power and window dimensions. Per §7 this does not prove
// the problem global — a larger k or window may succeed — which is
// exactly why classification is only one-sided.
var ErrUnsatisfiable = errors.New("core: no normal-form table for these parameters")

// ErrTorusTooSmall is returned by Synthesized.Run when the torus is below
// the normal form's MinTorusSide: the window-plus-margin regions no
// longer embed isometrically, so the lookup table does not apply. The
// problem itself may still be solvable on the torus by other means (the
// Θ(n) baseline).
var ErrTorusTooSmall = errors.New("core: torus too small for this normal form")

// TorusTooSmallError builds the canonical ErrTorusTooSmall-wrapping
// error for a shape — shared by the pre-synthesis fail-fast check and
// Synthesized.Run so the message cannot drift between them.
func TorusTooSmallError(k, h, w int) error {
	return fmt.Errorf("%w: side must be at least %d for k=%d, %dx%d windows", ErrTorusTooSmall, MinTorusSideFor(k, h, w), k, h, w)
}

// IsContextError reports whether err is a context cancellation or
// deadline expiry — the predicate the singleflight cache, the oracle and
// the solver adapters all share to recognise an aborted (as opposed to
// failed) operation.
func IsContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Synthesized is a synthesized normal-form algorithm A = A' ∘ S_k for an
// LCL problem on 2-dimensional grids: anchors are an MIS of G^(k), and
// Table maps the h×w anchor window around a node (the node sits at
// window position (OffR, OffC)) to its output label.
type Synthesized struct {
	Problem *lcl.Problem
	K       int
	H, W    int
	// OffR, OffC is the node's position inside its window.
	OffR, OffC int
	Graph      *TileGraph
	// Table[tileIndex] = output label.
	Table []int
	// SolverStats records the statistics of the successful SAT call.
	SolverStats sat.Stats
}

// DefaultWindow returns the window dimensions used by the paper's
// experiments for a given power: h = 2k+1 rows, w = max(2, 2k-1) columns
// (3×2 for k = 1, 7×5 for k = 3).
func DefaultWindow(k int) (h, w int) {
	h = 2*k + 1
	w = 2*k - 1
	if w < 2 {
		w = 2
	}
	return h, w
}

// Synthesize searches for a normal-form lookup table for problem p with
// anchor power k and window dimensions h×w, following §7: it builds the
// neighbourhood graph of tiles and solves the induced constraint
// satisfaction problem with the CDCL SAT solver. The problem must be
// 2-dimensional. Cancelling ctx (or letting its deadline expire) aborts
// an in-flight SAT search promptly; the context's error is returned
// unwrapped so callers can detect it with errors.Is.
func Synthesize(ctx context.Context, p *lcl.Problem, k, h, w int) (*Synthesized, error) {
	if p.Dims() != 2 {
		return nil, fmt.Errorf("core: synthesis implemented for 2-dimensional problems, %s is %d-dimensional", p.Name(), p.Dims())
	}
	if k < 1 || h < 1 || w < 1 {
		// These parameters arrive from the wire (SolveRequest.Power/H/W);
		// reject them here rather than reaching the tile enumerator's
		// panic.
		return nil, fmt.Errorf("core: synthesis parameters must be positive, got k=%d window %dx%d", k, h, w)
	}
	tg, err := BuildTileGraph(ctx, k, h, w)
	if err != nil {
		return nil, err
	}
	table, stats, err := solveTileCSP(ctx, p, tg)
	if err != nil {
		return nil, err
	}
	return &Synthesized{
		Problem:     p,
		K:           k,
		H:           h,
		W:           w,
		OffR:        h / 2,
		OffC:        w / 2,
		Graph:       tg,
		Table:       table,
		SolverStats: stats,
	}, nil
}

// cspEncoding is the problem-level structure of the tile CSP, shared by
// every window shape of the same problem: the partition of labels into
// node-valid and node-invalid, and per dimension the forbidden label
// pairs. Precomputing it turns the per-edge encoding loop into pure
// index arithmetic — no Allowed/NodeOK callback runs per edge.
type cspEncoding struct {
	kk        int
	okLabels  []int
	badLabels []int
	forb      [2][][2]int // per dimension, forbidden (a, b) pairs among OK labels
}

func newCSPEncoding(p *lcl.Problem) *cspEncoding {
	enc := &cspEncoding{kk: p.K()}
	for a := 0; a < enc.kk; a++ {
		if p.NodeOK(a) {
			enc.okLabels = append(enc.okLabels, a)
		} else {
			enc.badLabels = append(enc.badLabels, a)
		}
	}
	for dim := 0; dim < 2; dim++ {
		for _, a := range enc.okLabels {
			for _, b := range enc.okLabels {
				if !p.Allowed(dim, a, b) {
					enc.forb[dim] = append(enc.forb[dim], [2]int{a, b})
				}
			}
		}
	}
	return enc
}

// encodeTileCSP adds the CSP clauses for tile graph tg to s over the
// variable block starting at base: variable base + t*kk + a is "tile t
// outputs label a"; every tile holds at least one valid label, and the
// per-dimension relations hold across every edge of the tile graph.
// At-most-one constraints are unnecessary because all edge constraints
// are negative: any chosen label among a tile's true variables works.
//
// If act >= 0, the positive at-least-one clauses are guarded with ¬act,
// so the shape's constraints only bind under the assumption act. The
// negative clauses need no guard — the all-false assignment satisfies
// them — which keeps them binary (the solver's fastest clause form) and
// lets one solver host many shapes at once.
func encodeTileCSP(s *sat.Solver, enc *cspEncoding, tg *TileGraph, base, act int) {
	nt, kk := tg.NumTiles(), enc.kk
	lits := make([]sat.Lit, 0, kk+1)
	for t := 0; t < nt; t++ {
		for _, a := range enc.badLabels {
			s.AddClause(sat.Neg(base + t*kk + a))
		}
		lits = lits[:0]
		if act >= 0 {
			lits = append(lits, sat.Neg(act))
		}
		for _, a := range enc.okLabels {
			lits = append(lits, sat.Pos(base+t*kk+a))
		}
		s.AddClause(lits...)
	}
	// West tile is the node and east tile its dim-0 successor; south tile
	// the node and north tile its dim-1 successor.
	for dim, edges := range [2][][2]int{tg.HEdges, tg.VEdges} {
		for _, e := range edges {
			b1, b2 := base+e[0]*kk, base+e[1]*kk
			for _, pr := range enc.forb[dim] {
				s.AddClause(sat.Neg(b1+pr[0]), sat.Neg(b2+pr[1]))
			}
		}
	}
}

// extractTable reads the tile labelling out of the solver's model.
func extractTable(s *sat.Solver, enc *cspEncoding, tg *TileGraph, base int) ([]int, error) {
	nt, kk := tg.NumTiles(), enc.kk
	table := make([]int, nt)
	for t := 0; t < nt; t++ {
		table[t] = -1
		for _, a := range enc.okLabels {
			if s.Value(base + t*kk + a) {
				table[t] = a
				break
			}
		}
		if table[t] < 0 {
			return nil, errors.New("core: SAT model leaves a tile unlabelled")
		}
	}
	return table, nil
}

// solveTileCSP encodes and solves the tile-labelling CSP for one shape in
// a fresh solver.
func solveTileCSP(ctx context.Context, p *lcl.Problem, tg *TileGraph) ([]int, sat.Stats, error) {
	enc := newCSPEncoding(p)
	s := sat.NewSolver(tg.NumTiles() * enc.kk)
	encodeTileCSP(s, enc, tg, 0, -1)
	ok, err := s.SolveContext(ctx)
	if err != nil {
		return nil, s.Stats, err
	}
	if !ok {
		return nil, s.Stats, ErrUnsatisfiable
	}
	table, err := extractTable(s, enc, tg, 0)
	if err != nil {
		return nil, s.Stats, err
	}
	return table, s.Stats, nil
}

// MinTorusSideFor returns the smallest torus side on which a normal form
// with anchor power k and h×w windows is guaranteed correct:
// window-plus-margin regions must embed isometrically in the plane so
// that every observed window is one of the enumerated tiles. It depends
// only on the shape, so callers can reject too-small tori before paying
// for a synthesis.
func MinTorusSideFor(k, h, w int) int {
	m := h + 1
	if w+1 > m {
		m = w + 1
	}
	return 2 * (m + 2*k)
}

// MinTorusSide returns MinTorusSideFor the algorithm's own shape.
func (s *Synthesized) MinTorusSide() int {
	return MinTorusSideFor(s.K, s.H, s.W)
}

// GatherRadius returns the radius (in grid hops) a node needs to see its
// whole anchor window: the largest L1 distance from the node's window
// position to a window corner.
func (s *Synthesized) GatherRadius() int {
	maxR := s.OffR
	if s.H-1-s.OffR > maxR {
		maxR = s.H - 1 - s.OffR
	}
	maxC := s.OffC
	if s.W-1-s.OffC > maxC {
		maxC = s.W - 1 - s.OffC
	}
	return maxR + maxC
}

// Run executes the normal-form algorithm on the torus t with the given
// identifier assignment: S_k computes the anchors in O(log* n) rounds,
// then every node reads its anchor window and outputs the table entry.
// The returned Rounds reflects the full account, including power-graph
// simulation overhead and the window gather.
func (s *Synthesized) Run(t *grid.Torus, ids []int) ([]int, *local.Rounds, error) {
	if t.Dim() != 2 {
		return nil, nil, errors.New("core: synthesized algorithms run on 2-dimensional tori")
	}
	if min := s.MinTorusSide(); t.NX() < min || t.NY() < min {
		return nil, nil, TorusTooSmallError(s.K, s.H, s.W)
	}
	rounds := &local.Rounds{}
	anchors := coloring.Anchors(t, s.K, grid.L1, ids, rounds)
	out, err := s.Apply(t, anchors)
	if err != nil {
		return nil, nil, err
	}
	rounds.Add(s.GatherRadius())
	return out, rounds, nil
}

// Apply evaluates only the constant-time component A' on a precomputed
// anchor set: every node looks up its window pattern in the table. The
// probe goes through the integer-keyed tile index (zero allocations per
// node); windows wider than 64 bits fall back to the string-keyed index.
func (s *Synthesized) Apply(t *grid.Torus, anchors []bool) ([]int, error) {
	out := make([]int, t.N())
	if idx, ok := s.Graph.BitIndex(); ok {
		nx := t.NX()
		for v := 0; v < t.N(); v++ {
			x, y := v%nx, v/nx
			var key uint64
			bit := 0
			for r := 0; r < s.H; r++ {
				for c := 0; c < s.W; c++ {
					if anchors[t.At(x-s.OffC+c, y+s.OffR-r)] {
						key |= 1 << bit
					}
					bit++
				}
			}
			ti, found := idx[key]
			if !found {
				return nil, notTileError(s, key, v)
			}
			out[v] = s.Table[ti]
		}
		return out, nil
	}
	for v := 0; v < t.N(); v++ {
		x, y := t.XY(v)
		win := t.WindowPattern(anchors, x-s.OffC, y+s.OffR, s.H, s.W)
		key := (tiles.Pattern{H: s.H, W: s.W, Bits: win}).Key()
		ti, ok := s.Graph.Index[key]
		if !ok {
			return nil, fmt.Errorf("core: observed window %s at node %d is not a tile (torus too small or anchors invalid)", key, v)
		}
		out[v] = s.Table[ti]
	}
	return out, nil
}

// notTileError reconstructs the human-readable pattern string from a
// packed window key for the (never expected) tile-miss error path.
func notTileError(s *Synthesized, key uint64, v int) error {
	bits := make([]bool, s.H*s.W)
	for i := range bits {
		bits[i] = key&(1<<i) != 0
	}
	pat := tiles.Pattern{H: s.H, W: s.W, Bits: bits}
	return fmt.Errorf("core: observed window %s at node %d is not a tile (torus too small or anchors invalid)", pat.Key(), v)
}
