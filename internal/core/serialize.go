package core

import (
	"fmt"

	"lclgrid/internal/tiles"
)

// SynthesizedWire is the persistence form of a Synthesized normal-form
// algorithm: everything Run/Apply need — the shape, the node's window
// offset, the tile set and the lookup table — in a JSON-encodable
// struct. The problem itself is function-valued and cannot be
// serialized; only its display name rides along for humans inspecting a
// cache directory, and Decode leaves Synthesized.Problem nil (the
// lookup table is a pure label-index function, so callers attach their
// own problem when they need one — the disk cache is keyed by the
// problem fingerprint, which guarantees the table matches). The tile
// graph's edges and the SAT statistics are synthesis-time artefacts and
// are not persisted either.
type SynthesizedWire struct {
	// Problem is the display name of the problem the table was
	// synthesized for (informational only).
	Problem string `json:"problem,omitempty"`
	K       int    `json:"k"`
	H       int    `json:"h"`
	W       int    `json:"w"`
	OffR    int    `json:"off_r"`
	OffC    int    `json:"off_c"`
	// Tiles holds the canonical tile keys (tiles.Pattern.Key format:
	// rows of 0/1 joined by '|'), in table order.
	Tiles []string `json:"tiles"`
	// Table[i] is the output label index for Tiles[i].
	Table []int `json:"table"`
}

// Wire returns the persistence form of the algorithm.
func (s *Synthesized) Wire() *SynthesizedWire {
	w := &SynthesizedWire{
		K:    s.K,
		H:    s.H,
		W:    s.W,
		OffR: s.OffR,
		OffC: s.OffC,
	}
	if s.Problem != nil {
		w.Problem = s.Problem.Name()
	}
	w.Tiles = make([]string, len(s.Graph.Tiles))
	for i, p := range s.Graph.Tiles {
		w.Tiles[i] = p.Key()
	}
	w.Table = append([]int(nil), s.Table...)
	return w
}

// Decode validates the wire form and rebuilds the runnable algorithm.
// The input may come from a cache file on disk, so every structural
// invariant is checked — shape positivity, tile-key geometry,
// duplicate tiles, table length and label-index sign — and a violation
// is an error, never a panic. The rebuilt algorithm has a nil Problem
// and an empty SolverStats, and its tile graph carries no edges (they
// are only needed during synthesis); label indices cannot be
// range-checked without the problem, which is why callers should keep
// verification on for disk-loaded tables.
func (w *SynthesizedWire) Decode() (*Synthesized, error) {
	if w.K < 1 || w.H < 1 || w.W < 1 {
		return nil, fmt.Errorf("core: wire form has non-positive shape k=%d window %dx%d", w.K, w.H, w.W)
	}
	if w.OffR < 0 || w.OffR >= w.H || w.OffC < 0 || w.OffC >= w.W {
		return nil, fmt.Errorf("core: wire form offset (%d,%d) outside the %dx%d window", w.OffR, w.OffC, w.H, w.W)
	}
	if len(w.Tiles) == 0 {
		return nil, fmt.Errorf("core: wire form has no tiles")
	}
	if len(w.Table) != len(w.Tiles) {
		return nil, fmt.Errorf("core: wire form has %d table entries for %d tiles", len(w.Table), len(w.Tiles))
	}
	tg := &TileGraph{
		K:     w.K,
		H:     w.H,
		W:     w.W,
		Tiles: make([]tiles.Pattern, len(w.Tiles)),
		Index: make(map[string]int, len(w.Tiles)),
	}
	for i, key := range w.Tiles {
		p, err := parseTileKey(key, w.H, w.W)
		if err != nil {
			return nil, fmt.Errorf("core: wire tile %d: %w", i, err)
		}
		if _, dup := tg.Index[key]; dup {
			return nil, fmt.Errorf("core: wire tile %d duplicates key %s", i, key)
		}
		tg.Tiles[i] = p
		tg.Index[key] = i
	}
	for i, lbl := range w.Table {
		if lbl < 0 {
			return nil, fmt.Errorf("core: wire table entry %d is negative (%d)", i, lbl)
		}
	}
	return &Synthesized{
		K:     w.K,
		H:     w.H,
		W:     w.W,
		OffR:  w.OffR,
		OffC:  w.OffC,
		Graph: tg,
		Table: append([]int(nil), w.Table...),
	}, nil
}

// parseTileKey parses one canonical tile key, insisting on the exact
// h×w geometry on top of tiles.ParsePattern's own well-formedness checks
// (cache files are not trusted to be well-formed).
func parseTileKey(key string, h, w int) (tiles.Pattern, error) {
	p, err := tiles.ParsePattern(key)
	if err != nil {
		return tiles.Pattern{}, err
	}
	if p.H != h || p.W != w {
		return tiles.Pattern{}, fmt.Errorf("key %q is %dx%d, want %dx%d", key, p.H, p.W, h, w)
	}
	return p, nil
}
