package core

import (
	"context"
	"testing"

	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
)

func TestAffineIDsBijection(t *testing.T) {
	for _, n := range []int{1, 2, 16, 144, 145} {
		for _, seed := range []int64{0, 1, 7, -3, 1 << 40} {
			ids := AffineIDs(n, seed)
			seen := make(map[int]bool, n)
			for v, id := range ids {
				if id < 1 || id > n {
					t.Fatalf("n=%d seed=%d: id(%d) = %d out of [1, %d]", n, seed, v, id, n)
				}
				if seen[id] {
					t.Fatalf("n=%d seed=%d: duplicate id %d", n, seed, id)
				}
				seen[id] = true
				if got := AffineID(n, seed, v); got != id {
					t.Fatalf("n=%d seed=%d: AffineID(%d) = %d, AffineIDs gives %d", n, seed, v, got, id)
				}
			}
			if seed == 0 && ids[0] != 1 {
				t.Fatalf("seed 0 must be sequential, ids[0] = %d", ids[0])
			}
		}
	}
}

func TestAxisDist(t *testing.T) {
	cases := []struct{ p, start, length, side, want int }{
		{3, 2, 4, 10, 0}, // inside
		{2, 2, 4, 10, 0}, // at start
		{5, 2, 4, 10, 0}, // at end
		{6, 2, 4, 10, 1}, // one past the end
		{1, 2, 4, 10, 1}, // one before the start
		{9, 2, 4, 10, 3}, // wraps: forward 3 to start
		{8, 2, 4, 10, 3}, // back 3 to end cell 5
		{0, 8, 4, 10, 0}, // interval wraps over the seam
		{5, 8, 4, 10, 3}, // gap midpoint-ish
	}
	for _, c := range cases {
		if got := axisDist(c.p, c.start, c.length, c.side); got != c.want {
			t.Errorf("axisDist(%d, [%d,+%d), side %d) = %d, want %d", c.p, c.start, c.length, c.side, got, c.want)
		}
	}
}

func TestBitIndexMatchesStringIndex(t *testing.T) {
	tg, err := BuildTileGraph(context.Background(), 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	idx, ok := tg.BitIndex()
	if !ok {
		t.Fatal("3x3 window should have a bit index")
	}
	if len(idx) != len(tg.Index) {
		t.Fatalf("bit index has %d entries, string index %d", len(idx), len(tg.Index))
	}
	for i, p := range tg.Tiles {
		if got := idx[patternBits(p)]; got != i {
			t.Errorf("tile %d maps to %d through the bit index", i, got)
		}
	}
}

// TestWindowEvaluatorMatchesRun is the core equivalence property: tiling
// a torus with LabelRect calls — including wrap-around rectangles —
// reproduces the full-grid Run labels byte for byte under the same
// identifier assignment, and reports the same round count.
func TestWindowEvaluatorMatchesRun(t *testing.T) {
	ctx := context.Background()
	mp := lcl.MIS(2)
	alg, err := Synthesize(ctx, mp.Problem, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range [][2]int{{12, 12}, {13, 17}} {
		g := grid.MustNew(dims[0], dims[1])
		for _, seed := range []int64{0, 7} {
			want, rounds, err := alg.Run(g, AffineIDs(g.N(), seed))
			if err != nil {
				t.Fatalf("%v seed=%d: Run: %v", dims, seed, err)
			}
			ev, err := NewWindowEvaluator(alg, g, seed, false)
			if err != nil {
				t.Fatalf("%v seed=%d: %v", dims, seed, err)
			}
			if ev.Rounds() != rounds.Total() {
				t.Errorf("%v seed=%d: evaluator rounds %d, Run rounds %d", dims, seed, ev.Rounds(), rounds.Total())
			}
			// Full-grid rectangle: indexed exactly like Run's labels.
			got, err := ev.LabelRect(ctx, 0, 0, g.NX(), g.NY())
			if err != nil {
				t.Fatalf("%v seed=%d: LabelRect: %v", dims, seed, err)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%v seed=%d: label[%d] = %d, Run gives %d", dims, seed, v, got[v], want[v])
				}
			}
			// Wrap-around and interior rectangles tile the torus too.
			rects := [][4]int{
				{0, 0, 5, 4},
				{-2, -3, 6, 7},                 // wraps both seams
				{g.NX() - 1, g.NY() - 1, 3, 3}, // wraps north-east
				{3, 2, g.NX(), 2},              // full-width band
			}
			for _, rc := range rects {
				x0, y0, w, h := rc[0], rc[1], rc[2], rc[3]
				win, err := ev.LabelRect(ctx, x0, y0, w, h)
				if err != nil {
					t.Fatalf("%v seed=%d rect %v: %v", dims, seed, rc, err)
				}
				for r := 0; r < h; r++ {
					for c := 0; c < w; c++ {
						v := g.At(x0+c, y0+r)
						if win[r*w+c] != want[v] {
							t.Fatalf("%v seed=%d rect %v: (%d,%d) = %d, Run gives %d", dims, seed, rc, c, r, win[r*w+c], want[v])
						}
					}
				}
			}
			st := ev.Stats()
			if st.AnchorNodes == 0 || st.ColorNodes == 0 {
				t.Errorf("%v seed=%d: no work accounted: %+v", dims, seed, st)
			}
			if st.AnchorNodes > g.N() {
				t.Errorf("%v seed=%d: %d anchor evaluations for an %d-node torus", dims, seed, st.AnchorNodes, g.N())
			}
		}
	}
}

// TestWindowEvaluatorLattice checks the periodic-anchor fast path: a
// valid labeling with zero symmetry-breaking work, gated on the torus
// shape.
func TestWindowEvaluatorLattice(t *testing.T) {
	ctx := context.Background()
	mp := lcl.MIS(2)
	alg, err := Synthesize(ctx, mp.Problem, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m := LatticeModulus(1); m != 5 {
		t.Fatalf("LatticeModulus(1) = %d, want 5", m)
	}
	g := grid.MustNew(15, 20)
	ev, err := NewWindowEvaluator(alg, g, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ev.LabelRect(ctx, 0, 0, g.NX(), g.NY())
	if err != nil {
		t.Fatal(err)
	}
	if err := mp.Verify(g, labels); err != nil {
		t.Fatalf("lattice labeling invalid: %v", err)
	}
	st := ev.Stats()
	if !st.Lattice || st.AnchorNodes != 0 || st.HaloNodes != 0 {
		t.Errorf("lattice stats: %+v", st)
	}
	if ev.Rounds() != alg.GatherRadius() {
		t.Errorf("lattice rounds = %d, want gather radius %d", ev.Rounds(), alg.GatherRadius())
	}
	// Shape gate: 16 is not a multiple of 5.
	if _, err := NewWindowEvaluator(alg, grid.Square(16), 0, true); err == nil {
		t.Fatal("lattice mode accepted a 16x16 torus")
	}
	// Exact mode has no such gate.
	if _, err := NewWindowEvaluator(alg, grid.Square(16), 0, false); err != nil {
		t.Fatalf("exact mode rejected a 16x16 torus: %v", err)
	}
}

// TestWindowEvaluatorHugeTorus drives a window of a 10^5×10^5 torus —
// 10^10 nodes, far beyond anything materialisable — and checks the work
// stays O(window + halo).
func TestWindowEvaluatorHugeTorus(t *testing.T) {
	ctx := context.Background()
	mp := lcl.MIS(2)
	alg, err := Synthesize(ctx, mp.Problem, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := grid.MustNew(100_000, 100_000)
	ev, err := NewWindowEvaluator(alg, g, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := ev.LabelRect(ctx, 99_998, 99_999, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 48 {
		t.Fatalf("got %d labels", len(labels))
	}
	st := ev.Stats()
	if st.AnchorNodes > 100_000 {
		t.Errorf("anchor evaluations %d not O(window+halo)", st.AnchorNodes)
	}
	t.Logf("stats: %+v, rounds %d", st, ev.Rounds())
}
