package core

import (
	"context"
	"fmt"

	"lclgrid/internal/lcl"
	"lclgrid/internal/sat"
)

// SynthSweep synthesizes normal forms for one problem across a sequence
// of window shapes incrementally. All shapes share a single SAT solver:
// each shape gets a fresh block of variables plus one activation
// literal, its positive at-least-one clauses are guarded with the
// activation's negation, and the shape is decided with
// SolveAssuming(activation). The negative forbidden-pair clauses — the
// overwhelming majority of the encoding — are satisfied by the all-false
// assignment and need no guard, so they stay binary. Everything the
// solver learns (clause database, variable activities, saved phases)
// carries over to the next shape, which is what the oracle's sequential
// window sweep and Engine.Warm exploit.
//
// A SynthSweep is NOT safe for concurrent use; it is meant for exactly
// the sequential sweeps above. After a context abort the shared solver's
// pending encoding is in an undefined partial state, so the sweep marks
// itself dead and later calls transparently fall back to fresh
// per-shape solvers.
type SynthSweep struct {
	p    *lcl.Problem
	enc  *cspEncoding
	s    *sat.Solver
	prev sat.Stats
	dead bool
}

// NewSynthSweep returns an incremental synthesizer for p. The shared
// solver is created lazily on the first Synthesize call.
func NewSynthSweep(p *lcl.Problem) *SynthSweep {
	return &SynthSweep{p: p}
}

// Synthesize is Synthesize for the sweep's problem, reusing the shared
// solver. It matches core.Synthesize's contract: ErrUnsatisfiable when
// no table exists for the shape, the context's error on abort.
func (sw *SynthSweep) Synthesize(ctx context.Context, k, h, w int) (*Synthesized, error) {
	if sw.dead {
		return Synthesize(ctx, sw.p, k, h, w)
	}
	if sw.p.Dims() != 2 {
		return nil, fmt.Errorf("core: synthesis implemented for 2-dimensional problems, %s is %d-dimensional", sw.p.Name(), sw.p.Dims())
	}
	if k < 1 || h < 1 || w < 1 {
		return nil, fmt.Errorf("core: synthesis parameters must be positive, got k=%d window %dx%d", k, h, w)
	}
	tg, err := BuildTileGraph(ctx, k, h, w)
	if err != nil {
		return nil, err
	}
	if sw.s == nil {
		sw.s = sat.NewSolver(0)
		sw.enc = newCSPEncoding(sw.p)
	}
	nt := tg.NumTiles()
	base := sw.s.AddVars(nt*sw.enc.kk + 1)
	act := base + nt*sw.enc.kk
	encodeTileCSP(sw.s, sw.enc, tg, base, act)
	ok, err := sw.s.SolveAssuming(ctx, sat.Pos(act))
	stats := statsDelta(sw.s.Stats, sw.prev)
	sw.prev = sw.s.Stats
	if err != nil {
		sw.dead = true
		return nil, err
	}
	if !ok {
		// The guarded encoding is always satisfiable with the activation
		// false, so a refusal is specifically this shape's. Retire the
		// shape before moving on: a unit ¬act keeps later searches from
		// ever re-exploring its constraints.
		sw.s.AddClause(sat.Neg(act))
		return nil, ErrUnsatisfiable
	}
	table, err := extractTable(sw.s, sw.enc, tg, base)
	if err != nil {
		return nil, err
	}
	// Retire this shape too (after reading the model — AddClause drops
	// back to decision level 0): if the sweep continues, the next shape
	// should not pay to re-satisfy this one.
	sw.s.AddClause(sat.Neg(act))
	return &Synthesized{
		Problem:     sw.p,
		K:           k,
		H:           h,
		W:           w,
		OffR:        h / 2,
		OffC:        w / 2,
		Graph:       tg,
		Table:       table,
		SolverStats: stats,
	}, nil
}

// statsDelta returns the per-call statistics of an incremental solve:
// the shared solver's cumulative counters minus their values before the
// call.
func statsDelta(cur, prev sat.Stats) sat.Stats {
	return sat.Stats{
		Decisions:  cur.Decisions - prev.Decisions,
		Conflicts:  cur.Conflicts - prev.Conflicts,
		Propagated: cur.Propagated - prev.Propagated,
		Learned:    cur.Learned - prev.Learned,
		Restarts:   cur.Restarts - prev.Restarts,
		Aborts:     cur.Aborts - prev.Aborts,
		Minimized:  cur.Minimized - prev.Minimized,
		Reductions: cur.Reductions - prev.Reductions,
		Deleted:    cur.Deleted - prev.Deleted,
	}
}
