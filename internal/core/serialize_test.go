package core

import (
	"context"
	"encoding/json"
	"testing"

	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

// TestSynthesizedWireRoundTrip: Wire → JSON → Decode reproduces an
// algorithm that runs identically to the original.
func TestSynthesizedWireRoundTrip(t *testing.T) {
	p := lcl.VertexColoring(5, 2)
	alg, err := Synthesize(context.Background(), p, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(alg.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var wire SynthesizedWire
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.Problem != p.Name() {
		t.Errorf("wire problem name %q, want %q", wire.Problem, p.Name())
	}
	back, err := wire.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if back.Problem != nil {
		t.Error("decoded algorithm must not invent a problem")
	}
	if back.K != alg.K || back.H != alg.H || back.W != alg.W || back.OffR != alg.OffR || back.OffC != alg.OffC {
		t.Errorf("shape mismatch: %+v vs %+v", back, alg)
	}
	if back.Graph.NumTiles() != alg.Graph.NumTiles() {
		t.Errorf("tiles %d, want %d", back.Graph.NumTiles(), alg.Graph.NumTiles())
	}
	g := grid.Square(16)
	ids := local.PermutedIDs(g.N(), 7)
	want, wantRounds, err := alg.Run(g, ids)
	if err != nil {
		t.Fatal(err)
	}
	got, gotRounds, err := back.Run(g, ids)
	if err != nil {
		t.Fatal(err)
	}
	if wantRounds.Total() != gotRounds.Total() {
		t.Errorf("rounds %d, want %d", gotRounds.Total(), wantRounds.Total())
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("label %d differs: %d vs %d", i, got[i], want[i])
		}
	}
	if err := p.Verify(g, got); err != nil {
		t.Errorf("decoded algorithm's output rejected: %v", err)
	}
}

// TestSynthesizedWireDecodeRejectsCorruption: every structural
// invariant of the wire form is validated — corrupted cache files must
// fail decoding, never panic at Run time.
func TestSynthesizedWireDecodeRejectsCorruption(t *testing.T) {
	p := lcl.VertexColoring(5, 2)
	alg, err := Synthesize(context.Background(), p, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	good := alg.Wire()
	mutate := func(fn func(w *SynthesizedWire)) *SynthesizedWire {
		data, _ := json.Marshal(good)
		var w SynthesizedWire
		if err := json.Unmarshal(data, &w); err != nil {
			t.Fatal(err)
		}
		fn(&w)
		return &w
	}
	cases := map[string]*SynthesizedWire{
		"zero shape":      mutate(func(w *SynthesizedWire) { w.K = 0 }),
		"offset outside":  mutate(func(w *SynthesizedWire) { w.OffR = w.H }),
		"no tiles":        mutate(func(w *SynthesizedWire) { w.Tiles = nil; w.Table = nil }),
		"table too short": mutate(func(w *SynthesizedWire) { w.Table = w.Table[:1] }),
		"negative label":  mutate(func(w *SynthesizedWire) { w.Table[0] = -1 }),
		"bad tile rows":   mutate(func(w *SynthesizedWire) { w.Tiles[0] = "01" }),
		"bad tile width":  mutate(func(w *SynthesizedWire) { w.Tiles[0] = "0|0|0" }),
		"bad tile chars":  mutate(func(w *SynthesizedWire) { w.Tiles[0] = "0x|00|00" }),
		"duplicate tile":  mutate(func(w *SynthesizedWire) { w.Tiles[1] = w.Tiles[0] }),
	}
	for name, w := range cases {
		if _, err := w.Decode(); err == nil {
			t.Errorf("%s: Decode accepted a corrupt wire form", name)
		}
	}
	if _, err := good.Decode(); err != nil {
		t.Errorf("pristine wire form rejected: %v", err)
	}
}
