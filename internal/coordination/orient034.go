package coordination

import (
	"fmt"

	"lclgrid/internal/lcl"
)

// Orient034Invariant computes the Theorem 25 vertical-edge invariant of a
// {0,3,4}-orientation and checks that it is identical for every row of
// vertical edges, returning the common value r(G).
//
// Following the proof: the i-th vertical row of edges connects vertex
// rows i and i+1. An edge in column x is labelled 0 if one of its
// endpoints has in-degree 0; otherwise, with u⁻ and u⁺ the in-degree-0
// vertices of rows i and i+1 in the columns closest to the left and to
// the right of x, the label is +1 (edge oriented north) or -1 (south)
// when u⁻ and u⁺ are at odd walking distance, and 0 otherwise.
func Orient034Invariant(o *lcl.Orientation) (int, error) {
	t := o.T
	if t.Dim() != 2 {
		return 0, fmt.Errorf("coordination: need a 2-dimensional torus")
	}
	if err := o.VerifyX([]int{0, 3, 4}); err != nil {
		return 0, err
	}
	nx, ny := t.NX(), t.NY()
	indeg := make([]int, t.N())
	for v := range indeg {
		indeg[v] = o.InDegree(v)
	}

	rowValue := func(i int) (int, error) {
		top := (i + 1) % ny
		// zeroAt[c] reports whether column c holds an in-degree-0 vertex
		// in row i or i+1 (never both: two 0s cannot be adjacent).
		zeroAt := make([]int, nx) // row of the zero, or -1
		for c := 0; c < nx; c++ {
			zeroAt[c] = -1
			if indeg[t.At(c, i)] == 0 {
				zeroAt[c] = i
			}
			if indeg[t.At(c, top)] == 0 {
				if zeroAt[c] >= 0 {
					return 0, fmt.Errorf("coordination: vertically adjacent in-degree-0 nodes in column %d", c)
				}
				zeroAt[c] = top
			}
		}
		sum := 0
		for x := 0; x < nx; x++ {
			lo, hi := t.At(x, i), t.At(x, top)
			if indeg[lo] == 0 || indeg[hi] == 0 {
				continue
			}
			// Closest zero columns to the left and right.
			lc, rc := -1, -1
			for d := 1; d <= nx; d++ {
				c := ((x-d)%nx + nx) % nx
				if zeroAt[c] >= 0 {
					lc = c
					break
				}
			}
			for d := 1; d <= nx; d++ {
				c := (x + d) % nx
				if zeroAt[c] >= 0 {
					rc = c
					break
				}
			}
			if lc < 0 || rc < 0 {
				return 0, fmt.Errorf("coordination: no in-degree-0 vertices near column %d", x)
			}
			// Walking distance from u⁻ to u⁺ eastwards through column x.
			dx := ((rc-lc)%nx + nx) % nx
			drow := 0
			if zeroAt[lc] != zeroAt[rc] {
				drow = 1
			}
			if (dx+drow)%2 == 0 {
				continue
			}
			// Odd distance: +1 if the edge points north (up), -1 south.
			if o.Out[1][lo] {
				sum++
			} else {
				sum--
			}
		}
		return sum, nil
	}

	r0, err := rowValue(0)
	if err != nil {
		return 0, err
	}
	for i := 1; i < ny; i++ {
		ri, err := rowValue(i)
		if err != nil {
			return 0, err
		}
		if ri != r0 {
			return 0, fmt.Errorf("coordination: vertical-edge invariant differs: r(0)=%d r(%d)=%d", r0, i, ri)
		}
	}
	if abs(r0) > nx/2 {
		return 0, fmt.Errorf("coordination: |r(G)|=%d exceeds n/2", abs(r0))
	}
	return r0, nil
}
