package coordination

import (
	"context"
	"math/rand"
	"testing"

	"lclgrid/internal/core"
	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
	"lclgrid/internal/local"
)

func TestMakeGreedyAndCheck(t *testing.T) {
	g := grid.Square(9)
	// (x+y) mod 3 colouring, shifted to 1..3; it is already greedy, and
	// MakeGreedy must keep it proper.
	colors := make([]int, g.N())
	for v := range colors {
		x, y := g.XY(v)
		colors[v] = (x+y)%3 + 1
	}
	if err := IsGreedy3Coloring(g, colors); err != nil {
		t.Fatalf("diagonal colouring should be greedy: %v", err)
	}
	greedy := MakeGreedy(g, colors)
	if err := IsGreedy3Coloring(g, greedy); err != nil {
		t.Fatalf("MakeGreedy broke the colouring: %v", err)
	}
}

func TestMakeGreedyFixesLazyColoring(t *testing.T) {
	// Recolour a diagonal colouring by swapping colours 1→3: many nodes
	// now lack smaller-colour neighbours; MakeGreedy must repair it.
	g := grid.Square(6)
	colors := make([]int, g.N())
	for v := range colors {
		x, y := g.XY(v)
		colors[v] = []int{3, 2, 1}[(x+y)%3]
	}
	greedy := MakeGreedy(g, colors)
	if err := IsGreedy3Coloring(g, greedy); err != nil {
		t.Fatalf("not greedy after MakeGreedy: %v", err)
	}
}

// TestThreeColoringInvariant verifies the §9 machinery (Lemmas 12 and 14)
// on sampled greedy 3-colourings: the row sums of the auxiliary graph are
// equal on every row, bounded by n/2, and odd for odd n.
func TestThreeColoringInvariant(t *testing.T) {
	for _, n := range []int{6, 9, 12} {
		g := grid.Square(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for trial := 0; trial < 5; trial++ {
			colors, ok := RandomThreeColoring(g, rng)
			if !ok {
				t.Fatalf("n=%d: no 3-colouring found", n)
			}
			greedy := MakeGreedy(g, colors)
			if err := IsGreedy3Coloring(g, greedy); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			aux := BuildAux(g, greedy)
			s, err := aux.Invariant()
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			if n%2 == 1 && s%2 == 0 {
				t.Fatalf("n=%d: even invariant %d on odd torus", n, s)
			}
		}
	}
}

func TestInvariantOddTorusNonZero(t *testing.T) {
	// On odd tori the invariant is odd, hence non-zero: the colouring
	// carries Ω(n) bits of global coordination (the heart of Thm 9).
	g := grid.Square(9)
	rng := rand.New(rand.NewSource(7))
	colors, ok := RandomThreeColoring(g, rng)
	if !ok {
		t.Fatal("no colouring")
	}
	aux := BuildAux(g, MakeGreedy(g, colors))
	s, err := aux.Invariant()
	if err != nil {
		t.Fatal(err)
	}
	if s == 0 {
		t.Error("invariant must be odd (non-zero) on an odd torus")
	}
}

func TestAuxGraphDegrees(t *testing.T) {
	// Every colour-3 node has in-degree = out-degree ∈ {1, 2} in H
	// (§9: "each node has either in-degree 1 and out-degree 1, or
	// in-degree 2 and out-degree 2").
	g := grid.Square(9)
	rng := rand.New(rand.NewSource(3))
	colors, ok := RandomThreeColoring(g, rng)
	if !ok {
		t.Fatal("no colouring")
	}
	greedy := MakeGreedy(g, colors)
	aux := BuildAux(g, greedy)
	for v := 0; v < g.N(); v++ {
		if greedy[v] != 3 {
			if len(aux.Out[v]) != 0 || len(aux.In[v]) != 0 {
				t.Fatalf("non-colour-3 node %d has H edges", v)
			}
			continue
		}
		if len(aux.Out[v]) != len(aux.In[v]) {
			t.Fatalf("node %d: in-degree %d != out-degree %d", v, len(aux.In[v]), len(aux.Out[v]))
		}
		if d := len(aux.Out[v]); d > 2 {
			t.Fatalf("node %d: H degree %d > 2", v, d)
		}
	}
}

// TestOrient034Invariant verifies the Theorem 25 vertical-edge invariant
// on a solver-generated {0,3,4}-orientation.
func TestOrient034Invariant(t *testing.T) {
	op := lcl.XOrientation([]int{0, 3, 4}, 2)
	for _, n := range []int{4, 6} {
		g := grid.Square(n)
		sol, ok, err := core.SolveGlobal(context.Background(), op.Problem, g)
		if !ok || err != nil {
			t.Fatalf("n=%d: no {0,3,4}-orientation found (err=%v)", n, err)
		}
		if err := op.Verify(g, sol); err != nil {
			t.Fatal(err)
		}
		o := lcl.OrientationFromLabels(op, g, sol)
		if _, err := Orient034Invariant(o); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestOrient034InvariantRejectsWrongX(t *testing.T) {
	g := grid.Square(4)
	o := lcl.NewOrientation(g) // in-degree 2 everywhere
	if _, err := Orient034Invariant(o); err == nil {
		t.Error("expected error for non-{0,3,4} orientation")
	}
}

func TestRectGraph(t *testing.T) {
	r := Rect{W: 4, H: 3}
	if r.N() != 12 {
		t.Fatal("N wrong")
	}
	if r.Degree(0) != 2 {
		t.Error("corner degree should be 2")
	}
	if r.Degree(r.at(1, 0)) != 3 {
		t.Error("border degree should be 3")
	}
	if r.Degree(r.at(1, 1)) != 4 {
		t.Error("interior degree should be 4")
	}
	if len(r.Corners()) != 4 {
		t.Error("4 corners expected")
	}
	// Degree must match the number of valid Neighbor indices, and all
	// neighbours must be at grid distance 1.
	for v := 0; v < r.N(); v++ {
		for i := 0; i < r.Degree(v); i++ {
			u := r.Neighbor(v, i)
			x1, y1 := r.xy(v)
			x2, y2 := r.xy(u)
			if abs(x1-x2)+abs(y1-y2) != 1 {
				t.Fatalf("neighbor %d of %d not adjacent", u, v)
			}
		}
	}
	var _ local.Graph = r
}

// TestProposition28 checks the corner ball-size formula C(r+2, 2).
func TestProposition28(t *testing.T) {
	for _, m := range []int{5, 8, 13} {
		for rad := 0; rad < m; rad++ {
			want := (rad + 1) * (rad + 2) / 2
			if got := CornerBallSize(m, rad); got != want {
				t.Fatalf("m=%d r=%d: ball=%d want C(r+2,2)=%d", m, rad, got, want)
			}
		}
	}
}

// TestCornerSightRadiusIsSqrtN checks the Θ(√n) scaling of Theorem 27:
// the corner sees another corner at radius m-1 < 2√n for n = m² nodes.
func TestCornerSightRadiusIsSqrtN(t *testing.T) {
	for _, m := range []int{4, 9, 16, 25} {
		rad := CornerSightRadius(m)
		if rad != m-1 {
			t.Fatalf("m=%d: sight radius %d", m, rad)
		}
		if rad >= 2*m { // 2√n = 2m
			t.Fatalf("m=%d: radius %d exceeds the 2√n bound", m, rad)
		}
	}
}
