package coordination

// Corner coordination (Appendix A.3): an engineered LCL problem on
// general bounded-degree graphs with complexity Θ(√n). The upper bound
// rests on Proposition 28: on a clean (non-toroidal) grid, the radius-r
// ball around a corner node that has seen no other corner or broken node
// contains C(r+2, 2) nodes, so within 2√n rounds a corner must see
// another corner or a broken node.

// Rect is a non-toroidal w×h grid graph (degree 2 at corners, 3 on
// borders, 4 inside). It implements local.Graph.
type Rect struct {
	W, H int
}

// N returns the number of nodes.
func (r Rect) N() int { return r.W * r.H }

// xy returns the coordinates of node v.
func (r Rect) xy(v int) (int, int) { return v % r.W, v / r.W }

// at returns the node at (x, y).
func (r Rect) at(x, y int) int { return y*r.W + x }

// Degree returns the number of neighbours of v.
func (r Rect) Degree(v int) int {
	x, y := r.xy(v)
	d := 4
	if x == 0 || x == r.W-1 {
		d--
	}
	if y == 0 || y == r.H-1 {
		d--
	}
	return d
}

// Neighbor returns the i-th neighbour of v.
func (r Rect) Neighbor(v, i int) int {
	x, y := r.xy(v)
	var nbrs []int
	if x+1 < r.W {
		nbrs = append(nbrs, r.at(x+1, y))
	}
	if x > 0 {
		nbrs = append(nbrs, r.at(x-1, y))
	}
	if y+1 < r.H {
		nbrs = append(nbrs, r.at(x, y+1))
	}
	if y > 0 {
		nbrs = append(nbrs, r.at(x, y-1))
	}
	return nbrs[i]
}

// Corners returns the four corner nodes (degree 2).
func (r Rect) Corners() []int {
	return []int{r.at(0, 0), r.at(r.W-1, 0), r.at(0, r.H-1), r.at(r.W-1, r.H-1)}
}

// CornerBallSize returns the number of nodes within distance rad of the
// (0,0) corner of an m×m grid; for rad < m this is C(rad+2, 2) =
// (rad+1)(rad+2)/2 (Proposition 28).
func CornerBallSize(m, rad int) int {
	count := 0
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			if x+y <= rad {
				count++
			}
		}
	}
	return count
}

// CornerSightRadius returns the smallest radius at which the (0,0)
// corner of an m×m grid sees another corner: the Θ(√n) upper bound of
// Theorem 27 in action (the radius is m-1 = Θ(√n) for n = m² nodes,
// comfortably below the 2√n bound).
func CornerSightRadius(m int) int {
	// The nearest other corners are (m-1, 0) and (0, m-1).
	return m - 1
}
