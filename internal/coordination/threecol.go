// Package coordination implements the lower-bound machinery of §9 and
// §11 of the paper, and the Θ(√n) corner-coordination problem of
// Appendix A.3.
//
// The §9 proof that 3-colouring is global reduces the q-sum coordination
// problem on directed cycles (Theorem 10) to 3-colouring: every greedy
// 3-colouring of the torus induces, through an auxiliary directed graph
// on its colour-3 nodes, a per-row integer that is (Lemma 12) the same on
// every row, has (Lemma 14) the parity of n, and is bounded by n/2 —
// exactly the properties that make the coordination problem require Ω(n)
// rounds. This package constructs the auxiliary graph and these
// invariants so they can be verified computationally on real colourings,
// and likewise the vertical-edge invariant of Theorem 25 for
// {0,3,4}-orientations.
package coordination

import (
	"fmt"
	"math/rand"

	"lclgrid/internal/grid"
	"lclgrid/internal/lcl"
)

// IsGreedy3Coloring checks that colors (values 1..3) form a proper greedy
// 3-colouring of the 2-dimensional torus t: adjacent nodes differ, every
// colour-2 node has a colour-1 neighbour, and every colour-3 node has
// both colour-1 and colour-2 neighbours (§9's preprocessing assumption).
func IsGreedy3Coloring(t *grid.Torus, colors []int) error {
	for v := 0; v < t.N(); v++ {
		c := colors[v]
		if c < 1 || c > 3 {
			return fmt.Errorf("coordination: node %d has colour %d outside 1..3", v, c)
		}
		seen := [4]bool{}
		for p := 0; p < 4; p++ {
			u := t.Neighbor(v, p)
			if colors[u] == c {
				return fmt.Errorf("coordination: monochromatic edge %d-%d", v, u)
			}
			seen[colors[u]] = true
		}
		if c >= 2 && !seen[1] {
			return fmt.Errorf("coordination: colour-%d node %d has no colour-1 neighbour", c, v)
		}
		if c == 3 && !seen[2] {
			return fmt.Errorf("coordination: colour-3 node %d has no colour-2 neighbour", v)
		}
	}
	return nil
}

// MakeGreedy turns any proper 3-colouring into a greedy one by repeatedly
// recolouring nodes to their smallest available colour until fixpoint
// (§9: "by adding a constant-round preprocessing step, we may assume A
// produces a greedy colouring").
func MakeGreedy(t *grid.Torus, colors []int) []int {
	out := append([]int(nil), colors...)
	for changed := true; changed; {
		changed = false
		for v := 0; v < t.N(); v++ {
			used := [5]bool{}
			for p := 0; p < 4; p++ {
				used[out[t.Neighbor(v, p)]] = true
			}
			for c := 1; c <= 3; c++ {
				if !used[c] {
					if c < out[v] {
						out[v] = c
						changed = true
					}
					break
				}
			}
		}
	}
	return out
}

// Aux is the §9 auxiliary directed graph H on the colour-3 nodes of a
// greedy 3-colouring: a directed edge connects diagonal colour-3 nodes
// whose two common neighbours have colours 1 and 2, oriented so that the
// colour-1 neighbour lies to the left of the edge (Fig. 5).
type Aux struct {
	T      *grid.Torus
	Colors []int
	// Out[v] and In[v] list H-neighbours of v (empty for non-colour-3
	// nodes).
	Out, In [][]int
}

// BuildAux constructs the auxiliary graph for a greedy 3-colouring.
func BuildAux(t *grid.Torus, colors []int) *Aux {
	a := &Aux{T: t, Colors: colors, Out: make([][]int, t.N()), In: make([][]int, t.N())}
	for v := 0; v < t.N(); v++ {
		if colors[v] != 3 {
			continue
		}
		x, y := t.XY(v)
		// Consider the two "forward" diagonals from v to avoid double
		// counting: NE (+1,+1) and NW (-1,+1).
		for _, d := range [][2]int{{1, 1}, {-1, 1}} {
			u := t.At(x+d[0], y+d[1])
			if colors[u] != 3 {
				continue
			}
			// Common neighbours of the diagonal pair.
			w1 := t.At(x+d[0], y) // horizontal step first
			w2 := t.At(x, y+d[1]) // vertical step first
			c1, c2 := colors[w1], colors[w2]
			if !(c1 == 1 && c2 == 2 || c1 == 2 && c2 == 1) {
				continue
			}
			// Orient so that the colour-1 node is to the left. For the
			// direction (dx,dy), offset (ax,ay) is left iff dx*ay-dy*ax>0.
			// w2-v = (0, dy): cross = dx*dy; w1-v = (dx, 0): cross = -dy*dx.
			var from, to int
			if (c2 == 1) == (d[0]*d[1] > 0) {
				from, to = v, u
			} else {
				from, to = u, v
			}
			a.Out[from] = append(a.Out[from], to)
			a.In[to] = append(a.In[to], from)
		}
	}
	return a
}

// RowLabel returns the Lemma 14 label ℓ(v) ∈ {-1, 0, 1} of a node: +1 if
// v is a colour-3 node with unique H-in-neighbour on the row south of it
// and unique H-out-neighbour on the row north of it (a northbound
// intersection), -1 for the reverse, 0 otherwise.
func (a *Aux) RowLabel(v int) int {
	if a.Colors[v] != 3 || len(a.In[v]) != 1 || len(a.Out[v]) != 1 {
		return 0
	}
	_, y := a.T.XY(v)
	_, yu := a.T.XY(a.In[v][0])
	_, yw := a.T.XY(a.Out[v][0])
	n := a.T.NY()
	south := (y - 1 + n) % n
	north := (y + 1) % n
	switch {
	case yu == south && yw == north:
		return 1
	case yu == north && yw == south:
		return -1
	default:
		return 0
	}
}

// RowSum returns s_r = Σ ℓ(v) over row r.
func (a *Aux) RowSum(r int) int {
	sum := 0
	for x := 0; x < a.T.NX(); x++ {
		sum += a.RowLabel(a.T.At(x, r))
	}
	return sum
}

// Invariant verifies the §9 invariants on a greedy 3-colouring and
// returns the common row sum: every row has the same sum (Lemma 12 /
// corollary), |s| <= n/2 and s odd when n is odd (Lemma 14).
func (a *Aux) Invariant() (int, error) {
	n := a.T.NY()
	s := a.RowSum(0)
	for r := 1; r < n; r++ {
		if sr := a.RowSum(r); sr != s {
			return 0, fmt.Errorf("coordination: row sums differ: s_0=%d s_%d=%d", s, r, sr)
		}
	}
	if abs(s) > a.T.NX()/2 {
		return 0, fmt.Errorf("coordination: |s|=%d exceeds n/2", abs(s))
	}
	if a.T.NX()%2 == 1 && s%2 == 0 {
		return 0, fmt.Errorf("coordination: s=%d even on odd torus", s)
	}
	return s, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// RandomThreeColoring produces a proper 3-colouring of the torus by
// randomised backtracking (node order row-major, colour order shuffled
// per node). It is used to sample diverse colourings for invariant
// checks; it fails only if the torus admits no 3-colouring.
func RandomThreeColoring(t *grid.Torus, rng *rand.Rand) ([]int, bool) {
	colors := make([]int, t.N())
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == t.N() {
			return lcl.VertexColoring(3, 2).Verify(t, toZeroBased(colors)) == nil
		}
		perm := rng.Perm(3)
		for _, ci := range perm {
			c := ci + 1
			ok := true
			// Check already-assigned neighbours (west and south, plus
			// wrap-around edges once the far side is known).
			for p := 0; p < 4; p++ {
				u := t.Neighbor(v, p)
				if u < v && colors[u] == c {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			colors[v] = c
			if rec(v + 1) {
				return true
			}
		}
		colors[v] = 0
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return colors, true
}

func toZeroBased(colors []int) []int {
	out := make([]int, len(colors))
	for i, c := range colors {
		out[i] = c - 1
	}
	return out
}
