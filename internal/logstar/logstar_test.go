package logstar

import (
	"testing"
	"testing/quick"
)

func TestLogStar(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 3}, {17, 4},
		{65536, 4}, {65537, 5}, {1 << 20, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestLogStarMonotone(t *testing.T) {
	prev := 0
	for n := 1; n < 100000; n++ {
		cur := LogStar(n)
		if cur < prev {
			t.Fatalf("LogStar not monotone at n=%d: %d < %d", n, cur, prev)
		}
		prev = cur
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := Log2Ceil(tt.n); got != tt.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestGCD(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {17, 13, 1},
		{-12, 18, 6}, {12, -18, 6}, {100, 100, 100},
	}
	for _, tt := range tests {
		if got := GCD(tt.a, tt.b); got != tt.want {
			t.Errorf("GCD(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestGCDProperties(t *testing.T) {
	// gcd divides both arguments and is symmetric.
	f := func(a, b int16) bool {
		x, y := int(a), int(b)
		g := GCD(x, y)
		if g != GCD(y, x) {
			return false
		}
		if g == 0 {
			return x == 0 && y == 0
		}
		return x%g == 0 && y%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true, 97: true, 7919: true}
	for n := -5; n < 100; n++ {
		want := primes[n]
		if n >= 2 {
			want = trialDivision(n)
		}
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func trialDivision(n int) bool {
	for d := 2; d < n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return n >= 2
}

func TestNextPrime(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 2}, {1, 2}, {2, 3}, {3, 5}, {4, 5}, {24, 29}, {89, 97}, {544, 547},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.n); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestNextPrimeIsPrimeAndMinimal(t *testing.T) {
	for n := 0; n < 2000; n++ {
		p := NextPrime(n)
		if !IsPrime(p) || p <= n {
			t.Fatalf("NextPrime(%d) = %d invalid", n, p)
		}
		for q := n + 1; q < p; q++ {
			if IsPrime(q) {
				t.Fatalf("NextPrime(%d) = %d skipped prime %d", n, p, q)
			}
		}
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {9, 3, 3}, {10, 3, 4},
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAbs(t *testing.T) {
	if Abs(-3) != 3 || Abs(3) != 3 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
}
