// Package logstar provides the small number-theoretic utilities the
// symmetry-breaking algorithms of the paper rely on: the iterated
// logarithm log*, primality testing and prime search (for Linial's
// colour-reduction polynomials), and gcd (for the flexibility analysis of
// output-neighbourhood graphs on cycles).
package logstar

// LogStar returns log*(n): the number of times log2 must be iterated,
// starting from n, before the result is at most 1. LogStar(n) = 0 for
// n <= 1.
func LogStar(n int) int {
	count := 0
	for n > 1 {
		n = Log2Ceil(n)
		count++
	}
	return count
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) int {
	b := -1
	for n > 0 {
		n >>= 1
		b++
	}
	return b
}

// Log2Ceil returns ceil(log2(n)) for n >= 1, and 0 for n <= 1.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	b := log2(n - 1)
	return b + 1
}

// GCD returns the greatest common divisor of a and b; GCD(0, 0) = 0.
// Negative inputs are treated by absolute value.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// IsPrime reports whether n is a prime number.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime strictly greater than n.
func NextPrime(n int) int {
	if n < 1 {
		n = 1
	}
	for p := n + 1; ; p++ {
		if IsPrime(p) {
			return p
		}
	}
}

// CeilDiv returns ceil(a/b) for b > 0.
func CeilDiv(a, b int) int {
	return (a + b - 1) / b
}

// Abs returns the absolute value of x.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
