package dgraph

import (
	"sort"
	"testing"
)

func TestSelfLoops(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	g.AddEdge(2, 0)
	if g.HasSelfLoop(0) || !g.HasSelfLoop(1) || g.HasSelfLoop(2) {
		t.Error("self-loop detection wrong")
	}
	if got := g.SelfLoops(); len(got) != 1 || got[0] != 1 {
		t.Errorf("SelfLoops = %v", got)
	}
}

func sortComps(comps [][]int) [][]int {
	for _, c := range comps {
		sort.Ints(c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

func TestSCCs(t *testing.T) {
	// Two SCCs: {0,1,2} cycle, {3} sink, {4,5} 2-cycle.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 4)
	comps := sortComps(g.SCCs())
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if len(comps) != len(want) {
		t.Fatalf("got %d comps: %v", len(comps), comps)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("comp %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("comp %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestSCCsSingletons(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if comps := g.SCCs(); len(comps) != 4 {
		t.Errorf("path graph should have 4 singleton SCCs, got %v", comps)
	}
}

func TestPeriod(t *testing.T) {
	// Directed 4-cycle: period 4.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	if p := g.Period([]int{0, 1, 2, 3}); p != 4 {
		t.Errorf("4-cycle period = %d, want 4", p)
	}

	// 4-cycle plus a chord creating a 3-cycle: gcd(4,3)=1.
	g2 := New(4)
	for i := 0; i < 4; i++ {
		g2.AddEdge(i, (i+1)%4)
	}
	g2.AddEdge(2, 0)
	if p := g2.Period([]int{0, 1, 2, 3}); p != 1 {
		t.Errorf("period with coprime cycles = %d, want 1", p)
	}

	// Self-loop: period 1.
	g3 := New(1)
	g3.AddEdge(0, 0)
	if p := g3.Period([]int{0}); p != 1 {
		t.Errorf("self-loop period = %d, want 1", p)
	}

	// Trivial SCC: period 0.
	g4 := New(2)
	g4.AddEdge(0, 1)
	if p := g4.Period([]int{0}); p != 0 {
		t.Errorf("trivial SCC period = %d, want 0", p)
	}
}

func TestPeriodBipartiteCycle(t *testing.T) {
	// Two 2-cycles sharing structure: 0<->1, all walks have even length.
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if p := g.Period([]int{0, 1}); p != 2 {
		t.Errorf("period = %d, want 2", p)
	}
}

func TestStepReachability(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	reach := g.StepReachability(0, 6)
	for l := 0; l <= 6; l++ {
		for v := 0; v < 3; v++ {
			want := v == l%3
			if reach[l][v] != want {
				t.Fatalf("reach[%d][%d] = %v, want %v", l, v, reach[l][v], want)
			}
		}
	}
}

func TestWalk(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)

	for _, length := range []int{3, 4, 6, 7, 8} {
		w := g.Walk(0, 0, length)
		if w == nil {
			t.Fatalf("no walk of length %d found", length)
		}
		checkWalk(t, g, w, 0, 0, length)
	}
	if w := g.Walk(0, 0, 1); w != nil {
		t.Errorf("unexpected walk of length 1: %v", w)
	}
	if w := g.Walk(0, 0, 2); w != nil {
		t.Errorf("unexpected walk of length 2: %v", w)
	}
	// Length 5 = 3+... only cycles of length 3 and 4 through 0: 5 impossible? 3+4=7, 3,4,6,7,8...
	if w := g.Walk(0, 0, 5); w != nil {
		t.Errorf("unexpected walk of length 5: %v", w)
	}
}

func checkWalk(t *testing.T, g *Graph, walk []int, src, dst, length int) {
	t.Helper()
	if len(walk) != length+1 {
		t.Fatalf("walk %v has %d edges, want %d", walk, len(walk)-1, length)
	}
	if walk[0] != src || walk[len(walk)-1] != dst {
		t.Fatalf("walk %v endpoints wrong", walk)
	}
	for i := 0; i+1 < len(walk); i++ {
		ok := false
		for _, w := range g.Out(walk[i]) {
			if w == walk[i+1] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("walk %v uses missing edge %d->%d", walk, walk[i], walk[i+1])
		}
	}
}

func TestWalkZeroLength(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if w := g.Walk(0, 0, 0); len(w) != 1 || w[0] != 0 {
		t.Errorf("zero-length walk = %v", w)
	}
	if w := g.Walk(0, 1, 0); w != nil {
		t.Errorf("zero-length walk to other node should be nil, got %v", w)
	}
}

func TestValidate(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}
