// Package dgraph provides a small directed-graph substrate used by the
// 1-dimensional (cycle) LCL theory of §4 of the paper: the
// output-neighbourhood graph H of an LCL problem is a digraph whose
// strongly connected structure and cycle-length arithmetic (periods,
// flexibility) determine the problem's distributed complexity.
package dgraph

import (
	"fmt"

	"lclgrid/internal/logstar"
)

// Graph is a directed graph on nodes 0..n-1. The zero value is an empty
// graph with no nodes; construct with New.
type Graph struct {
	out [][]int
	in  [][]int
	m   int
}

// New returns an empty directed graph with n nodes.
func New(n int) *Graph {
	return &Graph{out: make([][]int, n), in: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge adds the directed edge u -> v. Parallel edges are permitted but
// never useful for the analyses in this package.
func (g *Graph) AddEdge(u, v int) {
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	g.m++
}

// Out returns the out-neighbours of u (shared slice; do not modify).
func (g *Graph) Out(u int) []int { return g.out[u] }

// In returns the in-neighbours of u (shared slice; do not modify).
func (g *Graph) In(u int) []int { return g.in[u] }

// HasSelfLoop reports whether node u has an edge to itself.
func (g *Graph) HasSelfLoop(u int) bool {
	for _, v := range g.out[u] {
		if v == u {
			return true
		}
	}
	return false
}

// SelfLoops returns all nodes with a self-loop.
func (g *Graph) SelfLoops() []int {
	var out []int
	for u := 0; u < g.N(); u++ {
		if g.HasSelfLoop(u) {
			out = append(out, u)
		}
	}
	return out
}

// SCCs returns the strongly connected components of the graph (Tarjan's
// algorithm, iterative). Every node appears in exactly one component;
// components are returned in reverse topological order.
func (g *Graph) SCCs() [][]int {
	n := g.N()
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	type frame struct {
		v, i int
	}
	for root := 0; root < n; root++ {
		if index[root] >= 0 {
			continue
		}
		var call []frame
		call = append(call, frame{root, 0})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.i < len(g.out[f.v]) {
				w := g.out[f.v][f.i]
				f.i++
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// Period returns the period of the strongly connected component comp: the
// gcd of the lengths of all closed walks inside it. It returns 0 if the
// component contains no edges (a trivial SCC). A period of 1 means the
// component is aperiodic, which for the §4 theory makes its nodes
// "flexible".
func (g *Graph) Period(comp []int) int {
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	// BFS layering from comp[0]; gcd of (level[u]+1-level[w]) over
	// intra-component edges u->w gives the period.
	level := make(map[int]int, len(comp))
	root := comp[0]
	level[root] = 0
	queue := []int{root}
	period := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.out[u] {
			if !inComp[w] {
				continue
			}
			if lw, ok := level[w]; ok {
				period = logstar.GCD(period, level[u]+1-lw)
			} else {
				level[w] = level[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return logstar.Abs(period)
}

// StepReachability returns a table reach[l][v] that reports whether v is
// reachable from src by a walk of exactly l edges, for 0 <= l <= maxSteps.
func (g *Graph) StepReachability(src, maxSteps int) [][]bool {
	reach := make([][]bool, maxSteps+1)
	reach[0] = make([]bool, g.N())
	reach[0][src] = true
	for l := 1; l <= maxSteps; l++ {
		cur := make([]bool, g.N())
		prev := reach[l-1]
		for u := 0; u < g.N(); u++ {
			if !prev[u] {
				continue
			}
			for _, w := range g.out[u] {
				cur[w] = true
			}
		}
		reach[l] = cur
	}
	return reach
}

// Walk returns a walk from src to dst of exactly length edges, or nil if
// none exists.
func (g *Graph) Walk(src, dst, length int) []int {
	if length < 0 {
		return nil
	}
	// Backward reachability: can[l][v] == true iff dst is reachable from v
	// in exactly l steps.
	can := make([][]bool, length+1)
	can[0] = make([]bool, g.N())
	can[0][dst] = true
	for l := 1; l <= length; l++ {
		cur := make([]bool, g.N())
		for u := 0; u < g.N(); u++ {
			for _, w := range g.out[u] {
				if can[l-1][w] {
					cur[u] = true
					break
				}
			}
		}
		can[l] = cur
	}
	if !can[length][src] {
		return nil
	}
	walk := make([]int, 0, length+1)
	walk = append(walk, src)
	v := src
	for l := length; l > 0; l-- {
		for _, w := range g.out[v] {
			if can[l-1][w] {
				walk = append(walk, w)
				v = w
				break
			}
		}
	}
	return walk
}

// Validate checks internal consistency (edge endpoints in range); it is
// used by tests.
func (g *Graph) Validate() error {
	for u := range g.out {
		for _, v := range g.out[u] {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("dgraph: edge %d->%d out of range", u, v)
			}
		}
	}
	return nil
}
