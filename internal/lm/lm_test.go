package lm

import (
	"strings"
	"testing"

	"lclgrid/internal/grid"
	"lclgrid/internal/tm"
)

func TestTMHaltingWriter(t *testing.T) {
	m := tm.HaltingWriter(3)
	table, err := m.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if table.Steps != 3 {
		t.Errorf("steps = %d, want 3", table.Steps)
	}
	if table.Width != 4 {
		t.Errorf("width = %d, want 4", table.Width)
	}
	// Row 0 is the empty tape with the head on cell 0 in state 0.
	if !table.Rows[0][0].HasHead || table.Rows[0][0].State != 0 || table.Rows[0][0].Sym != tm.Blank {
		t.Error("initial row wrong")
	}
	// Final row: cells 0..2 hold 1, head on cell 3 in the halting state.
	last := table.Rows[table.Steps]
	for i := 0; i < 3; i++ {
		if last[i].Sym != 1 {
			t.Errorf("final row cell %d = %d, want 1", i, last[i].Sym)
		}
	}
	if !last[3].HasHead || !m.Halt[last[3].State] {
		t.Error("head/halting state missing on final row")
	}
}

func TestTMNonHalting(t *testing.T) {
	if tm.RightLooper().Halts(10000) {
		t.Error("right-looper must not halt")
	}
	if tm.Zigzag(3).Halts(10000) {
		t.Error("zigzag must not halt")
	}
	if !tm.HaltingWriter(2).Halts(10) {
		t.Error("writer must halt")
	}
}

func TestTMValidate(t *testing.T) {
	m := tm.HaltingWriter(2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &tm.Machine{NumStates: 1, NumSymbols: 1, Halt: []bool{false}, Delta: [][]tm.Rule{{{Write: 5, Move: 1}}}}
	if err := bad.Validate(); err == nil {
		t.Error("expected validation error")
	}
}

// TestSolveLatticeVerifies is the heart of E9: for a halting machine the
// P2 labelling exists, is constructed by the solver, and passes the §6
// local checker.
func TestSolveLatticeVerifies(t *testing.T) {
	for _, steps := range []int{1, 2, 3} {
		m := tm.HaltingWriter(steps)
		p := New(m)
		size := TileSize(steps)
		for _, mult := range []int{1, 2} {
			n := size * (1 + mult)
			g := grid.Square(n)
			labels, err := p.SolveLattice(g, 100)
			if err != nil {
				t.Fatalf("steps=%d n=%d: %v", steps, n, err)
			}
			if err := p.Verify(g, labels); err != nil {
				t.Fatalf("steps=%d n=%d: checker rejected solver output: %v", steps, n, err)
			}
		}
	}
}

func TestSolveLatticeRejectsNonHalting(t *testing.T) {
	p := New(tm.RightLooper())
	if _, err := p.SolveLattice(grid.Square(16), 1000); err == nil {
		t.Error("expected failure for non-halting machine")
	}
}

func TestSolveP1Verifies(t *testing.T) {
	p := New(tm.RightLooper())
	for _, n := range []int{6, 9, 8} {
		g := grid.Square(n)
		labels, rounds, err := p.SolveP1(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Verify(g, labels); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rounds.Total() < n/2 {
			t.Errorf("n=%d: P1 rounds %d below diameter scale", n, rounds.Total())
		}
	}
}

func TestVerifyRejectsMixedParts(t *testing.T) {
	p := New(tm.HaltingWriter(1))
	g := grid.Square(8)
	labels := make([]Label, g.N())
	for v := range labels {
		labels[v] = Label{P1: true, Color: 1 + (v % 3)}
	}
	labels[3].P1 = false
	if err := p.Verify(g, labels); err == nil || !strings.Contains(err.Error(), "mixes") {
		t.Errorf("expected mixed-part error, got %v", err)
	}
}

func TestVerifyRejectsTamperedTable(t *testing.T) {
	m := tm.HaltingWriter(2)
	p := New(m)
	n := TileSize(2) * 2
	g := grid.Square(n)
	labels, err := p.SolveLattice(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Find an anchor and corrupt a table cell east of it.
	for v := range labels {
		if labels[v].Q == TypeA {
			x, y := g.XY(v)
			u := g.At(x+1, y)
			bad := *labels[u].Cell
			bad.Sym = 1 - bad.Sym
			labels[u].Cell = &bad
			break
		}
	}
	if err := p.Verify(g, labels); err == nil {
		t.Error("tampered execution table accepted")
	}
}

func TestVerifyRejectsBrokenDiagonalColoring(t *testing.T) {
	m := tm.HaltingWriter(1)
	p := New(m)
	n := TileSize(1) * 2
	g := grid.Square(n)
	labels, err := p.SolveLattice(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one quadrant node's colour bit: its diagonal must clash.
	for v := range labels {
		if labels[v].Q == TypeSW && labels[v].Cell == nil {
			labels[v].X = 1 - labels[v].X
			break
		}
	}
	if err := p.Verify(g, labels); err == nil {
		t.Error("broken diagonal 2-colouring accepted")
	}
}

func TestVerifyRejectsAnchorForNonHalting(t *testing.T) {
	// Build a syntactically plausible labelling with an anchor for a
	// non-halting machine: the checker must reject it because no finite
	// execution table exists.
	halting := New(tm.HaltingWriter(1))
	n := TileSize(1) * 2
	g := grid.Square(n)
	labels, err := halting.SolveLattice(g, 100)
	if err != nil {
		t.Fatal(err)
	}
	looper := New(tm.RightLooper())
	if err := looper.Verify(g, labels); err == nil {
		t.Error("anchored labelling accepted for a non-halting machine")
	}
}

func TestTypeForMatchesPaperEquations(t *testing.T) {
	tests := []struct {
		dx, dy int
		want   Type
	}{
		{0, 0, TypeA},
		{2, -1, TypeNW}, {-1, -3, TypeNE}, {1, 2, TypeSW}, {-2, 4, TypeSE},
		{0, -2, TypeN}, {0, 3, TypeS}, {-1, 0, TypeE}, {3, 0, TypeW},
	}
	for _, tt := range tests {
		if got := typeFor(tt.dx, tt.dy); got != tt.want {
			t.Errorf("typeFor(%d,%d) = %v, want %v", tt.dx, tt.dy, got, tt.want)
		}
	}
}

func TestDiagStepPointsTowardsAnchor(t *testing.T) {
	// Following diag from any non-anchor offset must strictly decrease
	// the L1 distance to the anchor.
	for dx := -4; dx <= 4; dx++ {
		for dy := -4; dy <= 4; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			q := typeFor(dx, dy)
			sx, sy := diagStep(q)
			ndx, ndy := dx+sx, dy+sy
			if abs(ndx)+abs(ndy) >= abs(dx)+abs(dy) {
				t.Fatalf("diag of type %v at (%d,%d) does not approach anchor", q, dx, dy)
			}
		}
	}
}
