// Package lm implements the LCL problem L_M of §6 of the paper: the
// labelling problem, parameterised by a Turing machine M, that is
// solvable in Θ(log* n) if M halts on the empty tape and requires Θ(n)
// otherwise — the reduction that makes the Θ(log* n)/Θ(n) classification
// of LCL problems on grids undecidable (Theorem 3).
//
// L_M is the disjoint union of two labellings: P1 is a proper
// 3-colouring (always solvable, but global by Theorem 9), and P2 is a
// tiling labelling in which every node carries a type pointing towards an
// anchor, diagonals are 2-coloured, and each anchor is the bottom-left
// corner of a complete encoding of M's execution table. The package
// provides a checker implementing the §6 local rules and a solver that
// constructs valid P2 labellings for halting machines.
package lm

import (
	"errors"
	"fmt"

	"lclgrid/internal/grid"
	"lclgrid/internal/local"
	"lclgrid/internal/tm"
)

// Type is a node type of the P2 labelling: the anchor type A, four
// quadrant types and four border types. Quadrant and border types name
// the direction of the step towards the anchor (the paper's diag
// operator).
type Type int

// The nine node types of §6.
const (
	TypeA Type = iota
	TypeNW
	TypeNE
	TypeSE
	TypeSW
	TypeN
	TypeS
	TypeE
	TypeW
)

var typeNames = [...]string{"A", "NW", "NE", "SE", "SW", "N", "S", "E", "W"}

// String implements fmt.Stringer.
func (q Type) String() string { return typeNames[q] }

// diagStep returns the coordinate offset of the diag operator for each
// type (paper: NW(v) = (x-1, y+1), NE(v) = (x+1, y+1), SE = (x+1, y-1),
// SW = (x-1, y-1), N = (x, y+1), S = (x, y-1), E = (x+1, y), W = (x-1, y)).
func diagStep(q Type) (dx, dy int) {
	switch q {
	case TypeNW:
		return -1, 1
	case TypeNE:
		return 1, 1
	case TypeSE:
		return 1, -1
	case TypeSW:
		return -1, -1
	case TypeN:
		return 0, 1
	case TypeS:
		return 0, -1
	case TypeE:
		return 1, 0
	case TypeW:
		return -1, 0
	default:
		return 0, 0
	}
}

// Label is a node label of L_M: either a P1 colour or a P2 tuple of
// type, diagonal colour bit and optional execution-table cell.
type Label struct {
	// P1 selects the 3-colouring part; Color is then in 1..3.
	P1    bool
	Color int
	// P2 part: the node type, the diagonal 2-colouring bit, and the
	// execution-table cell carried by the node (nil for none).
	Q    Type
	X    int
	Cell *tm.Cell
}

// Problem is the LCL problem L_M for a fixed machine M.
type Problem struct {
	M *tm.Machine
}

// New returns the L_M problem for machine m.
func New(m *tm.Machine) *Problem { return &Problem{M: m} }

// allowedDiag lists the permitted diag types per type (§6 rules (1)-(4)
// for quadrants; borders must repeat or reach the anchor).
var allowedDiag = map[Type][]Type{
	TypeNE: {TypeNE, TypeN, TypeE, TypeA},
	TypeSE: {TypeSE, TypeS, TypeE, TypeA},
	TypeSW: {TypeSW, TypeS, TypeW, TypeA},
	TypeNW: {TypeNW, TypeN, TypeW, TypeA},
	TypeN:  {TypeN, TypeA},
	TypeS:  {TypeS, TypeA},
	TypeE:  {TypeE, TypeA},
	TypeW:  {TypeW, TypeA},
}

// Verify checks a labelling against the local rules of L_M. The step
// bound for simulating M is derived from the torus size: a valid
// execution table must fit on the torus, so machines that run longer
// cannot be encoded.
func (p *Problem) Verify(t *grid.Torus, labels []Label) error {
	if t.Dim() != 2 {
		return errors.New("lm: need a 2-dimensional torus")
	}
	if len(labels) != t.N() {
		return fmt.Errorf("lm: %d labels for %d nodes", len(labels), t.N())
	}
	p1 := labels[0].P1
	for v, l := range labels {
		if l.P1 != p1 {
			return fmt.Errorf("lm: node %d mixes P1 and P2 labellings", v)
		}
	}
	if p1 {
		return p.verifyP1(t, labels)
	}
	return p.verifyP2(t, labels)
}

func (p *Problem) verifyP1(t *grid.Torus, labels []Label) error {
	for v := 0; v < t.N(); v++ {
		c := labels[v].Color
		if c < 1 || c > 3 {
			return fmt.Errorf("lm: node %d has P1 colour %d outside 1..3", v, c)
		}
		for _, dim := range []int{0, 1} {
			u := t.Move(v, dim, 1)
			if labels[u].Color == c {
				return fmt.Errorf("lm: P1 monochromatic edge %d-%d", v, u)
			}
		}
	}
	return nil
}

func (p *Problem) verifyP2(t *grid.Torus, labels []Label) error {
	at := func(v int, dx, dy int) int {
		x, y := t.XY(v)
		return t.At(x+dx, y+dy)
	}
	q := func(v int) Type { return labels[v].Q }

	for v := 0; v < t.N(); v++ {
		l := labels[v]
		switch l.Q {
		case TypeA:
			// Anchor surroundings (§6): Q(N)=S, Q(NE)=SW, Q(E)=W,
			// Q(SE)=NW, Q(S)=N, Q(SW)=NE, Q(W)=E, Q(NW)=SE.
			checks := []struct {
				dx, dy int
				want   Type
			}{
				{0, 1, TypeS}, {1, 1, TypeSW}, {1, 0, TypeW}, {1, -1, TypeNW},
				{0, -1, TypeN}, {-1, -1, TypeNE}, {-1, 0, TypeE}, {-1, 1, TypeSE},
			}
			for _, c := range checks {
				if got := q(at(v, c.dx, c.dy)); got != c.want {
					return fmt.Errorf("lm: anchor %d has %v at offset (%d,%d), want %v", v, got, c.dx, c.dy, c.want)
				}
			}
		default:
			dx, dy := diagStep(l.Q)
			d := at(v, dx, dy)
			ok := false
			for _, a := range allowedDiag[l.Q] {
				if q(d) == a {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("lm: node %d type %v has diag type %v", v, l.Q, q(d))
			}
			// Diagonal 2-colouring.
			if q(d) == l.Q && labels[d].X == l.X {
				return fmt.Errorf("lm: monochromatic diagonal %d (type %v)", v, l.Q)
			}
			// Border flanking rules.
			switch l.Q {
			case TypeN:
				if q(at(v, -1, 0)) != TypeNE || q(at(v, 1, 0)) != TypeNW {
					return fmt.Errorf("lm: N node %d not flanked by NE/NW", v)
				}
			case TypeS:
				if q(at(v, -1, 0)) != TypeSE || q(at(v, 1, 0)) != TypeSW {
					return fmt.Errorf("lm: S node %d not flanked by SE/SW", v)
				}
			case TypeE:
				if q(at(v, 0, 1)) != TypeSE || q(at(v, 0, -1)) != TypeNE {
					return fmt.Errorf("lm: E node %d not flanked by SE/NE", v)
				}
			case TypeW:
				if q(at(v, 0, 1)) != TypeSW || q(at(v, 0, -1)) != TypeNW {
					return fmt.Errorf("lm: W node %d not flanked by SW/NW", v)
				}
			}
		}
		// Execution-table content may only sit on A, S, W, SW nodes.
		if l.Cell != nil {
			switch l.Q {
			case TypeA, TypeS, TypeW, TypeSW:
			default:
				return fmt.Errorf("lm: node %d of type %v carries table content", v, l.Q)
			}
		}
	}

	// Execution tables: every anchor must be the bottom-left corner of a
	// complete encoding of M's run; every table cell must match; no
	// content may exist outside anchors' tables.
	bound := t.N()
	table, err := p.M.Run(bound)
	hasAnchor := false
	claimed := make([]bool, t.N())
	for v := 0; v < t.N(); v++ {
		if labels[v].Q != TypeA {
			continue
		}
		hasAnchor = true
		if err != nil {
			return fmt.Errorf("lm: labelling has an anchor but %s does not halt within %d steps", p.M.Name, bound)
		}
		if table.Steps+1 > t.NY() || table.Width > t.NX() {
			return fmt.Errorf("lm: execution table (%d×%d) does not fit the torus", table.Steps+1, table.Width)
		}
		for j := 0; j <= table.Steps; j++ {
			for i := 0; i < table.Width; i++ {
				u := at(v, i, j)
				claimed[u] = true
				want := table.Rows[j][i]
				got := labels[u].Cell
				if got == nil || *got != want {
					return fmt.Errorf("lm: node %d does not carry table cell (%d,%d) of %s", u, i, j, p.M.Name)
				}
			}
		}
	}
	for v := 0; v < t.N(); v++ {
		if labels[v].Cell != nil && !claimed[v] {
			return fmt.Errorf("lm: node %d carries table content outside every table", v)
		}
	}
	_ = hasAnchor // a P2 labelling without anchors is legal only through the type rules, which force Ω(n) structure (§6)
	return nil
}

// TileSize returns the anchor spacing used by the solver for a machine
// halting in s steps: 4(s+1), the paper's MIS power.
func TileSize(s int) int { return 4 * (s + 1) }

// SolveLattice constructs a valid P2 labelling for a halting machine on a
// torus whose sides are multiples of the tile size, using a regular
// anchor lattice (perfectly rectangular tiles). This is the
// deterministic reference construction used to validate the checker; see
// SolveP2 for the distributed construction with anchors from a maximal
// independent set.
func (p *Problem) SolveLattice(t *grid.Torus, maxSteps int) ([]Label, error) {
	table, err := p.M.Run(maxSteps)
	if err != nil {
		return nil, err
	}
	m := TileSize(table.Steps)
	if t.NX()%m != 0 || t.NY()%m != 0 {
		return nil, fmt.Errorf("lm: torus sides must be multiples of %d", m)
	}
	anchors := make([]bool, t.N())
	for y := 0; y < t.NY(); y += m {
		for x := 0; x < t.NX(); x += m {
			anchors[t.At(x, y)] = true
		}
	}
	return p.labelFromAnchors(t, anchors, table, m)
}

// labelFromAnchors labels the torus given an anchor set: each node joins
// the tile of a nearest anchor (lexicographic (|dx|, |dy|, anchor) key
// among anchors within distance maxDist in each coordinate), takes its
// type from its position relative to the anchor (§6 equations (1)-(2)),
// 2-colours its diagonal by parity, and table cells are written from
// each anchor.
func (p *Problem) labelFromAnchors(t *grid.Torus, anchors []bool, table *tm.Table, maxDist int) ([]Label, error) {
	n := t.N()
	labels := make([]Label, n)
	nx, ny := t.NX(), t.NY()
	wrap := func(d, side int) int {
		d %= side
		if d > side/2 {
			d -= side
		}
		if d < -(side-1)/2 {
			d += side
		}
		return d
	}
	for v := 0; v < n; v++ {
		x, y := t.XY(v)
		bestDX, bestDY, bestA := 0, 0, -1
		for dy := -maxDist; dy <= maxDist; dy++ {
			for dx := -maxDist; dx <= maxDist; dx++ {
				a := t.At(x+dx, y+dy)
				if !anchors[a] {
					continue
				}
				adx, ady := wrap(dx, nx), wrap(dy, ny)
				if bestA < 0 || lexLess(adx, ady, a, bestDX, bestDY, bestA) {
					bestDX, bestDY, bestA = adx, ady, a
				}
			}
		}
		if bestA < 0 {
			return nil, fmt.Errorf("lm: node %d has no anchor within distance %d", v, maxDist)
		}
		// Relative position of the node w.r.t. its anchor is (-bestDX,
		// -bestDY)... bestDX is the offset from node to anchor, so the
		// node sits at (dxu, dyu) = (-bestDX, -bestDY) from the anchor.
		dxu, dyu := -bestDX, -bestDY
		labels[v] = Label{Q: typeFor(dxu, dyu), X: parityFor(dxu, dyu)}
	}
	// Write the execution tables.
	for v := 0; v < n; v++ {
		if labels[v].Q != TypeA {
			continue
		}
		x, y := t.XY(v)
		for j := 0; j <= table.Steps; j++ {
			for i := 0; i < table.Width; i++ {
				c := table.Rows[j][i]
				labels[t.At(x+i, y+j)].Cell = &c
			}
		}
	}
	return labels, nil
}

// lexLess compares anchor-offset keys: smaller |dx| first, preferring the
// western anchor on exact x-ties, then smaller |dy| preferring the
// southern anchor, and finally the anchor id. The sign preferences are
// translation invariant, so regular lattices produce seam-free tilings.
func lexLess(dx1, dy1, a1, dx2, dy2, a2 int) bool {
	k1 := [5]int{abs(dx1), signRank(dx1), abs(dy1), signRank(dy1), a1}
	k2 := [5]int{abs(dx2), signRank(dx2), abs(dy2), signRank(dy2), a2}
	for i := range k1 {
		if k1[i] != k2[i] {
			return k1[i] < k2[i]
		}
	}
	return false
}

// signRank prefers negative offsets (anchor to the west / south).
func signRank(d int) int {
	if d < 0 {
		return 0
	}
	return 1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// typeFor returns the §6 type of a node at offset (dx, dy) from its
// anchor (equations (1) and (2)): e.g. NW if x_u > x and y_u < y.
func typeFor(dx, dy int) Type {
	switch {
	case dx == 0 && dy == 0:
		return TypeA
	case dx > 0 && dy < 0:
		return TypeNW
	case dx < 0 && dy < 0:
		return TypeNE
	case dx > 0 && dy > 0:
		return TypeSW
	case dx < 0 && dy > 0:
		return TypeSE
	case dx == 0 && dy < 0:
		return TypeN
	case dx == 0 && dy > 0:
		return TypeS
	case dx < 0 && dy == 0:
		return TypeE
	default:
		return TypeW
	}
}

// parityFor 2-colours the diagonals: following diag towards the anchor
// decreases min(|dx|, |dy|) on quadrants and |dx|+|dy| on borders by one
// each step, so the parity alternates along every maximal diagonal.
func parityFor(dx, dy int) int {
	adx, ady := abs(dx), abs(dy)
	if adx == 0 || ady == 0 {
		return (adx + ady) % 2
	}
	if adx < ady {
		return adx % 2
	}
	return ady % 2
}

// SolveP1 returns the P1 escape hatch: a proper 3-colouring computed by
// the global brute force; valid for every machine but inherently Θ(n)
// (Theorem 9).
func (p *Problem) SolveP1(t *grid.Torus) ([]Label, *local.Rounds, error) {
	rounds := &local.Rounds{}
	rounds.Add(t.NX()/2 + t.NY()/2)
	colors, ok := threeColorTorus(t)
	if !ok {
		return nil, nil, errors.New("lm: no 3-colouring exists")
	}
	labels := make([]Label, t.N())
	for v := range labels {
		labels[v] = Label{P1: true, Color: colors[v]}
	}
	return labels, rounds, nil
}

// threeColorTorus produces a proper 3-colouring directly when a side is
// divisible by 3 and by backtracking otherwise.
func threeColorTorus(t *grid.Torus) ([]int, bool) {
	n := t.N()
	colors := make([]int, n)
	if t.NX()%3 == 0 {
		for v := 0; v < n; v++ {
			x, y := t.XY(v)
			colors[v] = (x+y)%3 + 1
		}
		return colors, true
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == n {
			return true
		}
		for c := 1; c <= 3; c++ {
			ok := true
			for port := 0; port < 4; port++ {
				u := t.Neighbor(v, port)
				if (u < v || colors[u] != 0) && colors[u] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = 0
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return colors, true
}
