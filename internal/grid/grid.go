// Package grid implements the toroidal d-dimensional grid graphs of the
// paper (§3): node set [n_1]×...×[n_d], edges between nodes at L1 distance
// 1 (coordinates modulo the side lengths), with a globally consistent
// orientation: every node knows which incident edge increases or decreases
// each coordinate. The package also provides graph powers with respect to
// the L1 norm (written G^(k) in the paper) and the L∞ norm (G^[k], §8).
//
// Conventions used throughout the repository:
//
//   - Dimension 0 is "x" with the positive direction called east;
//     dimension 1 is "y" with the positive direction called north.
//   - Port 2i on a node is the edge in the positive direction of dimension
//     i, and port 2i+1 the negative direction. In two dimensions the ports
//     are therefore E, W, N, S in that order.
//   - Two-dimensional h×w windows are written in "screen" coordinates:
//     row 0 is the northernmost row, rows grow southward, columns grow
//     eastward. This matches the figures in the paper.
package grid

import (
	"errors"
	"fmt"
)

// Norm selects the metric used for balls and graph powers.
type Norm int

// The two norms used by the paper: L1 (grid distance; powers written
// G^(k)) and L∞ (powers written G^[k]).
const (
	L1 Norm = iota
	LInf
)

// String implements fmt.Stringer.
func (m Norm) String() string {
	switch m {
	case L1:
		return "L1"
	case LInf:
		return "LInf"
	default:
		return fmt.Sprintf("Norm(%d)", int(m))
	}
}

// Port directions for two-dimensional grids.
const (
	East  = 0
	West  = 1
	North = 2
	South = 3
)

// Torus is a d-dimensional toroidal grid graph. The zero value is not
// usable; construct with New, MustNew or Square.
type Torus struct {
	dims    []int
	strides []int
	n       int
}

// New creates a toroidal grid with the given side lengths, one per
// dimension. All sides must be at least 1 and at least one dimension must
// be given.
func New(dims ...int) (*Torus, error) {
	if len(dims) == 0 {
		return nil, errors.New("grid: need at least one dimension")
	}
	n := 1
	strides := make([]int, len(dims))
	for i, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("grid: dimension %d has side %d < 1", i, d)
		}
		strides[i] = n
		n *= d
	}
	return &Torus{dims: append([]int(nil), dims...), strides: strides, n: n}, nil
}

// MustNew is New but panics on error; intended for tests and constants.
func MustNew(dims ...int) *Torus {
	t, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// Square returns the 2-dimensional n×n torus of the paper's main setting.
func Square(n int) *Torus { return MustNew(n, n) }

// Cycle returns the 1-dimensional torus, i.e. the directed n-cycle of §4.
// Port 0 leads to the successor (consistent orientation), port 1 to the
// predecessor.
func Cycle(n int) *Torus { return MustNew(n) }

// Dim returns the number of dimensions d.
func (t *Torus) Dim() int { return len(t.dims) }

// Side returns the side length of dimension i.
func (t *Torus) Side(i int) int { return t.dims[i] }

// Sides returns a copy of the side lengths.
func (t *Torus) Sides() []int { return append([]int(nil), t.dims...) }

// N returns the number of nodes.
func (t *Torus) N() int { return t.n }

// Degree returns the degree of node v in the port-numbered graph, always
// 2d. For sides < 3 some ports lead to coinciding nodes; the algorithms in
// this repository require sides of at least 3 (the paper assumes n large).
func (t *Torus) Degree(int) int { return 2 * len(t.dims) }

// Neighbor returns the node reached from v through the given port
// (port 2i = positive direction of dimension i, 2i+1 = negative).
func (t *Torus) Neighbor(v, port int) int {
	dim := port / 2
	if port%2 == 0 {
		return t.Move(v, dim, 1)
	}
	return t.Move(v, dim, -1)
}

// Move returns the node at coordinate offset delta from v along dimension
// dim, wrapping around the torus.
func (t *Torus) Move(v, dim, delta int) int {
	side := t.dims[dim]
	stride := t.strides[dim]
	c := (v / stride) % side
	nc := ((c+delta)%side + side) % side
	return v + (nc-c)*stride
}

// Coords returns the coordinate vector of node v as a fresh slice.
func (t *Torus) Coords(v int) []int {
	out := make([]int, len(t.dims))
	t.CoordsInto(v, out)
	return out
}

// CoordsInto writes the coordinate vector of node v into out, which must
// have length Dim().
func (t *Torus) CoordsInto(v int, out []int) {
	for i, d := range t.dims {
		out[i] = v % d
		v /= d
	}
}

// Index returns the node with the given coordinates. Coordinates are
// reduced modulo the side lengths, so negative and overflowing values are
// valid.
func (t *Torus) Index(coords ...int) int {
	if len(coords) != len(t.dims) {
		panic(fmt.Sprintf("grid: Index got %d coordinates for %d dimensions", len(coords), len(t.dims)))
	}
	v := 0
	for i := len(coords) - 1; i >= 0; i-- {
		d := t.dims[i]
		c := ((coords[i] % d) + d) % d
		v = v*d + c
	}
	return v
}

// ShiftVec returns the node at coordinate offset off (length Dim()) from v.
func (t *Torus) ShiftVec(v int, off []int) int {
	for i, delta := range off {
		if delta != 0 {
			v = t.Move(v, i, delta)
		}
	}
	return v
}

// coordDist returns the toroidal distance between coordinates a and b in a
// dimension with the given side.
func coordDist(a, b, side int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if side-d < d {
		d = side - d
	}
	return d
}

// Dist returns the toroidal distance between u and v under the given norm.
// The L1 distance equals the graph distance in the torus.
func (t *Torus) Dist(u, v int, norm Norm) int {
	total := 0
	for i, side := range t.dims {
		stride := t.strides[i]
		cu := (u / stride) % side
		cv := (v / stride) % side
		d := coordDist(cu, cv, side)
		if norm == L1 {
			total += d
		} else if d > total {
			total = d
		}
	}
	return total
}

// BallOffsets returns all nonzero canonical coordinate offsets with the
// given norm at most k on this torus. Offsets are canonicalised modulo the
// side lengths so every returned offset reaches a distinct node different
// from the origin; on small tori the ball can wrap and contain fewer
// offsets than on the infinite grid.
func (t *Torus) BallOffsets(k int, norm Norm) [][]int {
	if k < 0 {
		return nil
	}
	var out [][]int
	seen := make(map[string]bool)
	off := make([]int, len(t.dims))
	var rec func(dim, budget int)
	rec = func(dim, budget int) {
		if dim == len(t.dims) {
			canon := make([]int, len(off))
			key := ""
			zero := true
			for i, o := range off {
				d := t.dims[i]
				canon[i] = ((o % d) + d) % d
				if canon[i] != 0 {
					zero = false
				}
				key += fmt.Sprintf("%d,", canon[i])
			}
			// Offsets that canonicalise to zero reach the node itself on
			// this torus (wrapped balls) and are excluded.
			if zero || seen[key] {
				return
			}
			seen[key] = true
			out = append(out, append([]int(nil), off...))
			return
		}
		lim := k
		if norm == L1 {
			lim = budget
		}
		for o := -lim; o <= lim; o++ {
			off[dim] = o
			nb := budget
			if norm == L1 {
				if o < 0 {
					nb = budget + o
				} else {
					nb = budget - o
				}
			}
			rec(dim+1, nb)
		}
		off[dim] = 0
	}
	rec(0, k)
	return out
}

// Power is the k-th power of a torus under a norm: same node set, with u
// and v adjacent iff their distance is at most k. It implements the
// local.Graph interface.
type Power struct {
	t    *Torus
	k    int
	norm Norm
	offs [][]int
}

// NewPower constructs the k-th power of t under the given norm. k must be
// at least 1.
func NewPower(t *Torus, k int, norm Norm) *Power {
	if k < 1 {
		panic("grid: power exponent must be >= 1")
	}
	return &Power{t: t, k: k, norm: norm, offs: t.BallOffsets(k, norm)}
}

// Base returns the underlying torus.
func (p *Power) Base() *Torus { return p.t }

// K returns the power exponent.
func (p *Power) K() int { return p.k }

// Norm returns the norm of the power.
func (p *Power) Norm() Norm { return p.norm }

// N returns the number of nodes.
func (p *Power) N() int { return p.t.N() }

// Degree returns the degree of v in the power graph.
func (p *Power) Degree(int) int { return len(p.offs) }

// Neighbor returns the i-th neighbor of v in the power graph.
func (p *Power) Neighbor(v, i int) int { return p.t.ShiftVec(v, p.offs[i]) }

// SimulationOverhead returns the multiplicative round overhead of
// simulating one round of an algorithm on this power graph with messages
// on the underlying torus: k for the L1 norm and k·d for L∞ (the paper's
// ‖·‖1 ≤ d‖·‖∞ bound, §8).
func (p *Power) SimulationOverhead() int {
	if p.norm == L1 {
		return p.k
	}
	return p.k * p.t.Dim()
}

// --- Two-dimensional helpers -------------------------------------------

// NX returns the x side length of a 2-dimensional torus.
func (t *Torus) NX() int { return t.dims[0] }

// NY returns the y side length of a 2-dimensional torus.
func (t *Torus) NY() int { return t.dims[1] }

// XY returns the (x, y) coordinates of node v on a 2-dimensional torus.
func (t *Torus) XY(v int) (x, y int) {
	return v % t.dims[0], v / t.dims[0]
}

// At returns the node at coordinates (x, y) on a 2-dimensional torus,
// reducing modulo the sides.
func (t *Torus) At(x, y int) int { return t.Index(x, y) }

// WindowPattern extracts an h×w window in screen coordinates (row 0 =
// northernmost) whose north-west cell lies at (x0, y0). Entry r*w+c of the
// result is in[At(x0+c, y0-r)]. Valid for 2-dimensional tori only.
func (t *Torus) WindowPattern(in []bool, x0, y0, h, w int) []bool {
	out := make([]bool, h*w)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			out[r*w+c] = in[t.At(x0+c, y0-r)]
		}
	}
	return out
}
