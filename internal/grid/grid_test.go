package grid

import (
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no dims should fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("New(4, 0) should fail")
	}
	if _, err := New(3, 4, 5); err != nil {
		t.Errorf("New(3,4,5) failed: %v", err)
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	for _, dims := range [][]int{{7}, {4, 6}, {3, 5, 4}, {2, 3, 2, 3}} {
		g := MustNew(dims...)
		for v := 0; v < g.N(); v++ {
			c := g.Coords(v)
			if got := g.Index(c...); got != v {
				t.Fatalf("dims %v: Index(Coords(%d)) = %d", dims, v, got)
			}
		}
	}
}

func TestIndexModularReduction(t *testing.T) {
	g := Square(5)
	if g.Index(-1, 0) != g.Index(4, 0) {
		t.Error("negative x not wrapped")
	}
	if g.Index(7, 12) != g.Index(2, 2) {
		t.Error("overflow not wrapped")
	}
}

func TestNeighborPortsInverse(t *testing.T) {
	g := MustNew(5, 7, 3)
	for v := 0; v < g.N(); v++ {
		for d := 0; d < g.Dim(); d++ {
			plus, minus := 2*d, 2*d+1
			if g.Neighbor(g.Neighbor(v, plus), minus) != v {
				t.Fatalf("ports %d/%d not inverse at v=%d", plus, minus, v)
			}
		}
	}
}

func TestNeighbor2DDirections(t *testing.T) {
	g := Square(6)
	v := g.At(2, 3)
	if x, y := g.XY(g.Neighbor(v, East)); x != 3 || y != 3 {
		t.Errorf("East(2,3) = (%d,%d)", x, y)
	}
	if x, y := g.XY(g.Neighbor(v, West)); x != 1 || y != 3 {
		t.Errorf("West(2,3) = (%d,%d)", x, y)
	}
	if x, y := g.XY(g.Neighbor(v, North)); x != 2 || y != 4 {
		t.Errorf("North(2,3) = (%d,%d)", x, y)
	}
	if x, y := g.XY(g.Neighbor(v, South)); x != 2 || y != 2 {
		t.Errorf("South(2,3) = (%d,%d)", x, y)
	}
}

func TestDistSymmetricAndTriangle(t *testing.T) {
	g := MustNew(6, 5)
	for _, norm := range []Norm{L1, LInf} {
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if g.Dist(u, v, norm) != g.Dist(v, u, norm) {
					t.Fatalf("dist not symmetric (%v)", norm)
				}
			}
		}
		f := func(a, b, c uint8) bool {
			u, v, w := int(a)%g.N(), int(b)%g.N(), int(c)%g.N()
			return g.Dist(u, w, norm) <= g.Dist(u, v, norm)+g.Dist(v, w, norm)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("triangle inequality (%v): %v", norm, err)
		}
	}
}

func TestDistMatchesBFS(t *testing.T) {
	// L1 distance on the torus must equal graph (hop) distance.
	g := MustNew(5, 4)
	src := g.At(1, 2)
	dist := bfs(g, src)
	for v := 0; v < g.N(); v++ {
		if dist[v] != g.Dist(src, v, L1) {
			t.Fatalf("node %d: bfs=%d l1=%d", v, dist[v], g.Dist(src, v, L1))
		}
	}
}

func bfs(g *Torus, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Degree(v); p++ {
			u := g.Neighbor(v, p)
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

func TestBallOffsetsCounts(t *testing.T) {
	g := Square(50) // large enough that no wrapping occurs for small k
	tests := []struct {
		k    int
		norm Norm
		want int // ball size minus centre
	}{
		{1, L1, 4},
		{2, L1, 12},
		{3, L1, 24}, // 2k(k+1) in 2D
		{1, LInf, 8},
		{2, LInf, 24}, // (2k+1)^2 - 1
	}
	for _, tt := range tests {
		got := len(g.BallOffsets(tt.k, tt.norm))
		if got != tt.want {
			t.Errorf("BallOffsets(k=%d, %v) = %d offsets, want %d", tt.k, tt.norm, got, tt.want)
		}
	}
}

func TestBallOffsetsWrapDedup(t *testing.T) {
	// On a 3×3 torus the L1 ball of radius 2 covers everything: 8 offsets.
	g := Square(3)
	if got := len(g.BallOffsets(2, L1)); got != 8 {
		t.Errorf("wrapped ball offsets = %d, want 8", got)
	}
}

func TestBallOffsetsMatchDist(t *testing.T) {
	g := MustNew(7, 6)
	for _, norm := range []Norm{L1, LInf} {
		for k := 1; k <= 3; k++ {
			offs := g.BallOffsets(k, norm)
			v := g.At(3, 2)
			inBall := make(map[int]bool)
			for _, off := range offs {
				inBall[g.ShiftVec(v, off)] = true
			}
			for u := 0; u < g.N(); u++ {
				want := u != v && g.Dist(u, v, norm) <= k
				if inBall[u] != want {
					t.Fatalf("norm %v k=%d node %d: inBall=%v want %v", norm, k, u, inBall[u], want)
				}
			}
		}
	}
}

func TestPowerGraph(t *testing.T) {
	g := Square(10)
	p := NewPower(g, 2, L1)
	if p.N() != 100 {
		t.Fatal("power N wrong")
	}
	if p.Degree(0) != 12 {
		t.Fatalf("power degree = %d, want 12", p.Degree(0))
	}
	v := g.At(4, 4)
	for i := 0; i < p.Degree(v); i++ {
		u := p.Neighbor(v, i)
		if d := g.Dist(u, v, L1); d < 1 || d > 2 {
			t.Fatalf("power neighbor at distance %d", d)
		}
	}
	if p.SimulationOverhead() != 2 {
		t.Error("L1 power overhead should be k")
	}
	pinf := NewPower(g, 3, LInf)
	if pinf.SimulationOverhead() != 6 {
		t.Error("LInf power overhead should be k*d")
	}
}

func TestWindowPattern(t *testing.T) {
	g := Square(8)
	in := make([]bool, g.N())
	in[g.At(2, 5)] = true // should appear at row 0, col 0 for window NW=(2,5)
	in[g.At(3, 4)] = true // row 1, col 1
	in[g.At(4, 3)] = true // row 2, col 2
	w := g.WindowPattern(in, 2, 5, 3, 3)
	want := []bool{
		true, false, false,
		false, true, false,
		false, false, true,
	}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("window cell %d = %v, want %v (window %v)", i, w[i], want[i], w)
		}
	}
}

func TestWindowPatternWraps(t *testing.T) {
	g := Square(4)
	in := make([]bool, g.N())
	in[g.At(0, 0)] = true
	// Window with NW corner at (3, 0): cell (r=0,c=1) is (0, 0).
	w := g.WindowPattern(in, 3, 0, 2, 2)
	if !w[1] {
		t.Errorf("expected wrap-around hit at row 0 col 1: %v", w)
	}
}

func TestMoveLargeDelta(t *testing.T) {
	g := Square(5)
	v := g.At(1, 1)
	if g.Move(v, 0, 7) != g.At(3, 1) {
		t.Error("Move +7 mod 5 failed")
	}
	if g.Move(v, 1, -6) != g.At(1, 0) {
		t.Error("Move -6 mod 5 failed")
	}
}

func TestCycle(t *testing.T) {
	c := Cycle(5)
	if c.Dim() != 1 || c.N() != 5 {
		t.Fatal("cycle shape wrong")
	}
	if c.Neighbor(4, 0) != 0 || c.Neighbor(0, 1) != 4 {
		t.Error("cycle successor/predecessor wrong")
	}
}
