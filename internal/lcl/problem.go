// Package lcl defines locally checkable labelling problems on oriented
// toroidal grids (§3 of the paper) and a catalogue of the concrete
// problems the paper studies.
//
// Problems are represented in nearest-neighbour subshift-of-finite-type
// (SFT) form: a finite label alphabet, one binary relation per grid
// dimension constraining the labels of a node and its positive-direction
// neighbour, and a unary predicate on labels. §3 of the paper shows that
// every radius-r LCL normalises to this radius-1 form with an enlarged
// alphabet (outputs become claimed neighbourhoods); the catalogue encodes
// edge labellings (edge colourings, orientations, matchings) as per-node
// tuples of half-edge labels with consistency relations, which is exactly
// that normalisation.
package lcl

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"lclgrid/internal/grid"
)

// Problem is an LCL problem in nearest-neighbour SFT form on d-dimensional
// oriented tori. Construct with NewProblem or the catalogue functions.
type Problem struct {
	name   string
	labels []string
	dims   int
	// allowed[i][a*K+b] reports whether label a on node u and label b on
	// the node one step in the positive direction of dimension i may
	// coexist.
	allowed [][]bool
	nodeOK  []bool
}

// NewProblem constructs a problem over the given label names on
// dims-dimensional grids. The allow predicate is consulted once per
// (dimension, label pair) at construction; nodeOK may be nil, meaning all
// labels are valid on their own.
func NewProblem(name string, labels []string, dims int, allow func(dim, a, b int) bool, nodeOK func(a int) bool) *Problem {
	if len(labels) == 0 {
		panic("lcl: problem needs at least one label")
	}
	if dims < 1 {
		panic("lcl: problem needs at least one dimension")
	}
	k := len(labels)
	p := &Problem{
		name:    name,
		labels:  append([]string(nil), labels...),
		dims:    dims,
		allowed: make([][]bool, dims),
		nodeOK:  make([]bool, k),
	}
	for i := 0; i < dims; i++ {
		p.allowed[i] = make([]bool, k*k)
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				p.allowed[i][a*k+b] = allow(i, a, b)
			}
		}
	}
	for a := 0; a < k; a++ {
		p.nodeOK[a] = nodeOK == nil || nodeOK(a)
	}
	return p
}

// Name returns the problem's display name.
func (p *Problem) Name() string { return p.name }

// K returns the alphabet size.
func (p *Problem) K() int { return len(p.labels) }

// Dims returns the number of grid dimensions the problem is defined on.
func (p *Problem) Dims() int { return p.dims }

// Label returns the display name of label a.
func (p *Problem) Label(a int) string { return p.labels[a] }

// LabelIndex returns the index of the label with the given name, or -1.
func (p *Problem) LabelIndex(name string) int {
	for i, l := range p.labels {
		if l == name {
			return i
		}
	}
	return -1
}

// Allowed reports whether label a on a node and label b on its
// positive-direction neighbour in dimension dim are compatible.
func (p *Problem) Allowed(dim, a, b int) bool {
	return p.allowed[dim][a*len(p.labels)+b]
}

// NodeOK reports whether label a is valid on a node in isolation.
func (p *Problem) NodeOK(a int) bool { return p.nodeOK[a] }

// ConstantSolutions returns the labels that can fill the entire grid by
// themselves; the problem is O(1)-solvable on toroidal grids iff this set
// is non-empty (§6: "only trivial problems ... admit an O(1)-time
// solution in toroidal grids").
func (p *Problem) ConstantSolutions() []int {
	var out []int
	for a := 0; a < p.K(); a++ {
		ok := p.nodeOK[a]
		for i := 0; ok && i < p.dims; i++ {
			ok = p.Allowed(i, a, a)
		}
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// Verify checks a labelling of the torus t against the problem. It
// returns nil if every node predicate and every edge relation holds. The
// torus dimension must match the problem's.
func (p *Problem) Verify(t *grid.Torus, labelling []int) error {
	if t.Dim() != p.dims {
		return fmt.Errorf("lcl: %s is %d-dimensional, torus is %d-dimensional", p.name, p.dims, t.Dim())
	}
	if len(labelling) != t.N() {
		return fmt.Errorf("lcl: labelling has %d entries for %d nodes", len(labelling), t.N())
	}
	k := p.K()
	for v := 0; v < t.N(); v++ {
		a := labelling[v]
		if a < 0 || a >= k {
			return fmt.Errorf("lcl: node %d has label %d outside alphabet", v, a)
		}
		if !p.nodeOK[a] {
			return fmt.Errorf("lcl: node %d has invalid label %s", v, p.labels[a])
		}
		for i := 0; i < p.dims; i++ {
			u := t.Move(v, i, 1)
			b := labelling[u]
			if b < 0 || b >= k {
				return fmt.Errorf("lcl: node %d has label %d outside alphabet", u, b)
			}
			if !p.Allowed(i, a, b) {
				return fmt.Errorf("lcl: edge %d->%d (dim %d) violates %s: %s | %s",
					v, u, i, p.name, p.labels[a], p.labels[b])
			}
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (p *Problem) String() string {
	return fmt.Sprintf("%s (%d labels, %d-dimensional)", p.name, p.K(), p.dims)
}

// Fingerprint returns a canonical content hash of the problem: the label
// names, the per-dimension relation bitmaps and the node predicate, but
// not the display name. Two problems with the same fingerprint are the
// same constraint system, so synthesized lookup tables (which are pure
// label-index functions) can be shared between them; engine-level
// synthesis caches key on this value.
func (p *Problem) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeInt(p.dims)
	writeInt(len(p.labels))
	for _, l := range p.labels {
		writeInt(len(l))
		h.Write([]byte(l))
	}
	pack := func(bits []bool) {
		b := byte(0)
		for i, ok := range bits {
			if ok {
				b |= 1 << (i % 8)
			}
			if i%8 == 7 {
				h.Write([]byte{b})
				b = 0
			}
		}
		if len(bits)%8 != 0 {
			h.Write([]byte{b})
		}
	}
	pack(p.nodeOK)
	for _, rel := range p.allowed {
		pack(rel)
	}
	return hex.EncodeToString(h.Sum(nil))
}
